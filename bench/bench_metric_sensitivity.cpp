// Which safety metrics separate disturbed from undisturbed driving?
//
// §II.B surveys candidate metrics and §VII calls for evaluating more of
// them; the paper itself used TTC + SRR + collisions. This bench computes
// the whole catalogue implemented in metrics/ (SRR, TTC, SDLP, steering
// entropy, brake-reaction time, headway distribution) on golden vs faulty
// runs of three subjects, plus the experience-performance correlation
// matrix of research question 2.
#include <cstdio>

#include "core/correlation.hpp"
#include "metrics/extended.hpp"
#include "metrics/srr.hpp"

using namespace rdsim;

namespace {

void compare_metrics(const core::SubjectResult& subject, const sim::RoadNetwork& road) {
  const auto& golden = subject.golden.trace;
  const auto& faulty = subject.faulty.trace;

  metrics::SrrAnalyzer srr;
  metrics::TtcAnalyzer ttc;
  const double alpha = metrics::steering_entropy_alpha(golden);

  const auto row = [&](const char* name, double g, double f) {
    const double delta = g != 0.0 ? (f - g) / std::fabs(g) * 100.0 : 0.0;
    std::printf("  %-22s %9.3f %9.3f  %+7.1f%%\n", name, g, f, delta);
  };

  std::printf("%s (golden vs faulty, %% change)\n", subject.profile.id.c_str());
  row("SRR [rev/min]", srr.analyze(golden).rate_per_min,
      srr.analyze(faulty).rate_per_min);
  const auto tg = ttc.summarize(ttc.series(golden));
  const auto tf = ttc.summarize(ttc.series(faulty));
  row("TTC min [s]", tg.valid() ? tg.min.value() : 0.0, tf.valid() ? tf.min.value() : 0.0);
  row("TTC avg [s]", tg.valid() ? tg.avg.value() : 0.0, tf.valid() ? tf.avg.value() : 0.0);
  row("SDLP [m]", metrics::lane_position_deviation(golden, road).sdlp.value(),
      metrics::lane_position_deviation(faulty, road).sdlp.value());
  row("steering entropy [bit]", metrics::steering_entropy(golden, alpha).entropy,
      metrics::steering_entropy(faulty, alpha).entropy);
  const auto brg = metrics::brake_reactions(golden);
  const auto brf = metrics::brake_reactions(faulty);
  auto mean_reaction = [](const std::vector<metrics::BrakeReaction>& v) {
    if (v.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& r : v) sum += r.reaction.value();
    return sum / static_cast<double>(v.size());
  };
  row("brake reaction [s]", mean_reaction(brg), mean_reaction(brf));
  row("headway < 2 s [frac]", metrics::headway_distribution(golden).below_2s,
      metrics::headway_distribution(faulty).below_2s);
  row("collisions", static_cast<double>(golden.collisions.size()),
      static_cast<double>(faulty.collisions.size()));
  std::printf("\n");
}

}  // namespace

int main() {
  const auto road = sim::make_town05_route();
  core::ExperimentHarness harness;
  core::CampaignResult campaign;
  for (int idx : {1, 4, 9}) {  // T2, T5, T10
    std::printf("[running subject %d golden+faulty...]\n", idx + 1);
    campaign.subjects.push_back(harness.run_subject(core::make_roster()[idx]));
  }
  std::printf("\n");
  for (const auto& subject : campaign.subjects) compare_metrics(subject, road);

  std::fputs(core::render_correlations(campaign).c_str(), stdout);
  std::printf("\n(The paper could not compute these correlations: 10 of 11\n"
              "subjects had gaming experience. With three subjects here the\n"
              "matrix is illustrative; run the full campaign for n = 11.)\n");
  return 0;
}
