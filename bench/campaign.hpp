// Shared helper for the table benches: runs the 12-subject campaign once
// per process and caches the result.
#pragma once

#include <chrono>
#include <cstdio>

#include "core/report.hpp"

namespace bench_helper {

inline const rdsim::core::CampaignResult& campaign() {
  static const rdsim::core::CampaignResult result = [] {
    const auto t0 = std::chrono::steady_clock::now();
    rdsim::core::ExperimentHarness harness{};
    auto r = harness.run_campaign();
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("[campaign: 12 subjects x (golden + faulty) in %.1f s wall]\n\n",
                std::chrono::duration<double>(t1 - t0).count());
    return r;
  }();
  return result;
}

}  // namespace bench_helper
