// Shared helper for the table benches: the 12-subject campaign, computed at
// most once for the *whole bench suite*. The first binary to need it runs
// the campaign (on the parallel runner) and saves the serialized result to a
// fingerprint-keyed temp artifact; every later binary deserializes that blob
// and verifies its embedded campaign hash instead of paying the full
// simulation cost again. Delete the artifact (or set RDSIM_CAMPAIGN_CACHE to
// a fresh directory) to force a re-run.
//
// Set RDSIM_OBS=1 in the environment (with observability compiled in) to run
// the campaign with an obs::CampaignCollector attached: a fresh run then
// also writes BENCH_obs.json and campaign_sample.trace.json next to the
// binary. Obs-instrumented artifacts are cache-keyed separately — the
// campaign bytes are identical, but a plain cache hit could not regenerate
// the obs side artifacts.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/campaign_hash.hpp"
#include "core/campaign_io.hpp"
#include "core/report.hpp"
#include "obs/report.hpp"

namespace bench_helper {

inline bool obs_requested() {
  if (!rdsim::obs::compiled_in()) return false;
  const char* env = std::getenv("RDSIM_OBS");
  return env != nullptr && *env != '\0' && std::string_view{env} != "0";
}

inline const rdsim::core::CampaignResult& campaign() {
  static const rdsim::core::CampaignResult result = [] {
    const rdsim::core::ExperimentConfig config{};
    const bool with_obs = obs_requested();
    const std::string cache_path =
        rdsim::core::campaign_cache_path(config, with_obs);
    if (auto cached = rdsim::core::load_campaign(cache_path)) {
      std::printf("[campaign: cache hit %s, hash %016llx]\n\n", cache_path.c_str(),
                  static_cast<unsigned long long>(rdsim::check::campaign_hash(*cached)));
      return std::move(*cached);
    }
    const auto t0 = std::chrono::steady_clock::now();
    rdsim::core::ExperimentHarness harness{config};
    rdsim::obs::CampaignCollector collector;
    if (with_obs) harness.set_collector(&collector);
    auto r = harness.run_campaign_parallel(/*n_workers=*/0);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("[campaign: 12 subjects x (golden + faulty) in %.1f s wall, hash %016llx]\n",
                std::chrono::duration<double>(t1 - t0).count(),
                static_cast<unsigned long long>(rdsim::check::campaign_hash(r)));
    if (with_obs) {
      collector.write_report("BENCH_obs.json");
      collector.write_trace("campaign_sample.trace.json");
      std::printf("[campaign: obs report BENCH_obs.json, trace campaign_sample.trace.json]\n");
    }
    if (rdsim::core::save_campaign(cache_path, r)) {
      std::printf("[campaign: cached to %s]\n\n", cache_path.c_str());
    } else {
      std::printf("[campaign: could not write cache %s]\n\n", cache_path.c_str());
    }
    return r;
  }();
  return result;
}

}  // namespace bench_helper
