// Regenerates Table II: Summary for Faults Injected — the number of
// injections of each fault type (5/25/50 ms delay, 2/5 % loss) per test
// subject, with totals. Paper totals: 20/30/24/31/29, 134 overall, with
// 10-14 faults per subject.
#include <cstdio>

#include "campaign.hpp"

int main() {
  const auto& campaign = bench_helper::campaign();
  std::fputs(rdsim::core::report::render_table2(campaign).c_str(), stdout);
  std::printf("\nPaper reference: per-subject totals 10-14; column totals "
              "20 / 30 / 24 / 31 / 29; grand total 134.\n");
  return 0;
}
