// Ablation: the paper's test setup deliberately had *no* safety measures
// (§I); the methodology exists to design them. This bench closes that loop:
// it re-runs heavy-fault scenarios with the SafetyMonitor enabled (degraded-
// mode braking when the command stream goes stale) and reports how the
// safety metrics move.
#include <cstdio>

#include "core/teleop.hpp"
#include "metrics/srr.hpp"
#include "metrics/ttc.hpp"

using namespace rdsim;

namespace {

core::RunResult run_route(const core::SubjectProfile& profile, net::FaultSpec fault,
                          bool monitor) {
  core::RunConfig rc;
  rc.run_id = monitor ? "guarded" : "bare";
  rc.subject_id = profile.id;
  rc.driver = profile.driver;
  rc.seed = profile.seed ^ 0xabcdef;
  rc.fault_injected = true;
  rc.safety.enabled = monitor;
  // Tighter than the 350 ms default: the uplink stalls of a 5 % loss fault
  // are ~200-450 ms, so the watchdog must trip inside them to matter.
  rc.safety.max_command_age = units::Seconds{0.25};
  rc.safety.speed_cap = units::MetersPerSecond{3.0};
  const auto scenario = sim::make_test_route_scenario();
  for (const auto& poi : scenario.pois) rc.plan.push_back({poi.name, fault});
  core::TeleopSession session{std::move(rc), scenario};
  return session.run();
}

void report_case(const char* fault_name, net::FaultSpec fault) {
  std::printf("-- fault: %s --\n", fault_name);
  std::printf("%-4s %-22s %-22s %s\n", "", "without monitor", "with monitor", "");
  std::printf("%-4s %-6s %-7s %-7s %-6s %-7s %-7s %s\n", "subj", "crash", "minTTC",
              "dur[s]", "crash", "minTTC", "dur[s]", "activations");
  const auto roster = core::make_roster();
  for (int idx : {3, 5, 9}) {  // a typical and the two risk-prone subjects
    const auto& profile = roster[static_cast<std::size_t>(idx)];
    const auto bare = run_route(profile, fault, false);
    const auto guarded = run_route(profile, fault, true);
    metrics::TtcAnalyzer ttc;
    const auto tb = ttc.summarize(ttc.series(bare.trace));
    const auto tg = ttc.summarize(ttc.series(guarded.trace));
    std::printf("%-4s %-6zu %-7.2f %-7.0f %-6zu %-7.2f %-7.0f %llu\n",
                profile.id.c_str(), bare.trace.collisions.size(),
                tb.valid() ? tb.min.value() : -1.0, bare.duration.value(),
                guarded.trace.collisions.size(), tg.valid() ? tg.min.value() : -1.0,
                guarded.duration.value(),
                static_cast<unsigned long long>(guarded.safety_activations));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Safety-monitor ablation: degraded-mode braking when the uplink\n"
              "command age exceeds 250 ms. Expectation: the monitor trips inside\n"
              "the loss-fault stalls and softens those crashes; a *constant*\n"
              "50 ms delay is invisible to a command-age watchdog (age stays\n"
              "~85 ms), so its crashes persist - a design-loop insight the\n"
              "methodology is meant to surface.\n\n");
  report_case("5% packet loss", {net::FaultKind::kPacketLoss, 0.05});
  report_case("50ms delay", {net::FaultKind::kDelay, 50.0});
  report_case("200ms delay", {net::FaultKind::kDelay, 200.0});
  return 0;
}
