// Regenerates the §VI.E collision analysis.
//
// Paper: of 11 participants, 2 collided in the golden run and 8 in the
// faulty run, and only two fault types led to crashes — 50 ms delay and
// 5 % packet loss.
#include <cstdio>

#include "campaign.hpp"

int main() {
  const auto& campaign = bench_helper::campaign();
  std::fputs(rdsim::core::report::render_collision_analysis(campaign).c_str(), stdout);
  std::printf("\nPaper reference: golden 2/11, faulty 8/11; crashes only under "
              "50ms delay and 5%% loss.\n");
  return 0;
}
