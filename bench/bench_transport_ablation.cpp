// Ablation of DESIGN.md decision #1: TCP-like reliable transport (as the
// paper's CARLA setup uses) versus latest-wins UDP-style datagrams (as many
// production teleoperation stacks use). Under loss, TCP stalls and freezes;
// UDP drops frames but never blocks — the fault *symptom* changes even
// though the injected fault is identical.
#include <cstdio>

#include "core/teleop.hpp"
#include "metrics/srr.hpp"

using namespace rdsim;

namespace {

void run_case(const char* transport, bool datagram, net::FaultSpec fault) {
  core::RunConfig rc;
  rc.run_id = "ablation";
  rc.subject_id = "T5";
  rc.driver = core::make_roster()[4].driver;
  rc.seed = 4242;
  rc.rds.datagram_video = datagram;
  rc.rds.datagram_commands = datagram;
  const auto scenario = sim::make_following_scenario();
  if (fault.kind != net::FaultKind::kNone) {
    rc.fault_injected = true;
    for (const auto& poi : scenario.pois) rc.plan.push_back({poi.name, fault});
  }
  core::TeleopSession session{std::move(rc), scenario};
  const auto r = session.run();
  metrics::SrrAnalyzer srr;
  std::printf("%-10s %-10s: frames %4llu/%-4llu frozen %5.1f%% longest %4.0fms "
              "SRR %5.1f qoe %.1f crash %zu\n",
              transport,
              fault.kind == net::FaultKind::kNone ? "none" : fault.label().c_str(),
              static_cast<unsigned long long>(r.frames_displayed),
              static_cast<unsigned long long>(r.frames_encoded),
              100.0 * r.qoe.frozen_fraction(), r.qoe.longest_freeze.value() * 1e3,
              srr.analyze(r.trace).rate_per_min, r.qoe.score(),
              r.trace.collisions.size());
}

}  // namespace

int main() {
  std::printf("Transport ablation on the vehicle-following scenario.\n"
              "tcp = reliable stream (paper's CARLA setup), udp = latest-wins datagrams.\n\n");
  for (const auto fault :
       {net::FaultSpec{net::FaultKind::kNone, 0.0},
        net::FaultSpec{net::FaultKind::kPacketLoss, 0.02},
        net::FaultSpec{net::FaultKind::kPacketLoss, 0.05},
        net::FaultSpec{net::FaultKind::kPacketLoss, 0.10},
        net::FaultSpec{net::FaultKind::kDelay, 50.0},
        net::FaultSpec{net::FaultKind::kDelay, 200.0}}) {
    run_case("tcp", false, fault);
    run_case("udp", true, fault);
  }
  std::printf("\nExpected: under loss, tcp shows freezes (frozen%%, longest) while\n"
              "udp shows dropped frames (displayed < encoded) but less freezing;\n"
              "under heavy delay both stale, tcp additionally throughput-collapses.\n");
  return 0;
}
