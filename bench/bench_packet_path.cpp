// Packet-path microbenchmark and zero-allocation gate.
//
// Exercises the redesigned qdisc/channel API end to end and emits
// BENCH_packet_path.json with three families of numbers:
//
//   qdisc    raw NetemQdisc enqueue->heap->dequeue throughput (packets/s)
//   steady   reliable stream over a disturbed channel: segment throughput,
//            payload bandwidth, and heap allocations per tick / per segment
//            once the payload pool is warm
//   idle     cost of polling an idle channel+router, which the event-driven
//            next_event_at() early-out makes O(1) — gated at ZERO heap
//            allocations per idle tick (non-zero exit otherwise)
//
// Two correctness gates make this a regression bench rather than a stopwatch:
//   - the delivered-byte digest of the steady scenario must be identical on
//     a fresh channel and on one whose payload pool was pre-warmed with junk
//     buffers (pooling may change where bytes live, never what they are);
//   - the digest must be reproducible across two runs (exit 1 otherwise).
//
//   usage: bench_packet_path [--quick] [--out FILE] [seed]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "check/hash.hpp"
#include "net/reliable_stream.hpp"
#include "util/alloc_hook.hpp"

using namespace rdsim;

namespace {

double wall_seconds(const std::chrono::steady_clock::time_point t0,
                    const std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ScenarioResult {
  std::uint64_t digest{0};
  std::uint64_t segments{0};
  std::uint64_t payload_bytes{0};
  std::uint64_t ticks{0};
  double wall_s{0.0};
  std::uint64_t allocs_measured{0};  ///< over the second (warm) half
  std::uint64_t ticks_measured{0};
  std::uint64_t segments_measured{0};
};

/// Reliable video-style stream over `netem delay 20ms 5ms loss 2% reorder 10%`:
/// one 30 kB frame every 33 ms, polled at 5 ms ticks, delivered bytes digested.
ScenarioResult run_scenario(std::uint64_t seed, std::uint64_t ticks, bool prewarm_pool) {
  net::TrafficControl tc{seed};
  net::Channel ch{tc, "lo"};

  if (prewarm_pool) {
    // Populate freelists with odd-capacity junk so a pooling bug that leaks
    // buffer contents or capacities into behaviour would change the digest.
    for (std::size_t i = 0; i < 32; ++i) {
      net::Payload junk(64u << (i % 5), static_cast<std::uint8_t>(i));
      ch.recycle(std::move(junk));
    }
  }

  tc.execute("qdisc add dev lo root netem delay 20ms 5ms loss 2% reorder 10%");
  net::PacketRouter router{ch};
  net::ReliableStream stream{router, ch, 1, net::LinkDirection::kDownlink};

  check::Fnv1a digest;
  ScenarioResult r;
  r.ticks = ticks;
  constexpr std::int64_t kTickUs = 5000;
  constexpr std::uint64_t kFrameEveryTicks = 7;  // ~35 ms cadence
  constexpr std::size_t kFrameBytes = 30000;

  net::Payload frame(kFrameBytes);
  std::uint32_t fill = static_cast<std::uint32_t>(seed) | 1u;
  util::AllocCounter allocs;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t tick = 0; tick < ticks; ++tick) {
    if (tick == ticks / 2) {
      // Second half only: pools and transport windows are warm.
      allocs.reset();
      r.segments_measured = r.segments;
    }
    const util::TimePoint now = util::TimePoint::from_micros(
        static_cast<std::int64_t>(tick) * kTickUs);
    if (tick % kFrameEveryTicks == 0) {
      for (auto& b : frame) {
        fill = fill * 1664525u + 1013904223u;  // LCG, deterministic filler
        b = static_cast<std::uint8_t>(fill >> 24);
      }
      stream.send_message(frame, kFrameBytes, now);
    }
    router.poll(now);
    stream.step(now);
    while (auto msg = stream.pop_delivered()) {
      digest.u32(msg->message_id);
      digest.u64(msg->bytes.size());
      digest.update(msg->bytes.data(), msg->bytes.size());
      r.payload_bytes += msg->bytes.size();
    }
    r.segments = stream.stats().segments_sent + stream.stats().retransmits_rto +
                 stream.stats().retransmits_fast;
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = wall_seconds(t0, t1);
  r.allocs_measured = allocs.delta();
  r.ticks_measured = ticks - ticks / 2;
  r.segments_measured = r.segments - r.segments_measured;
  digest.u64(stream.stats().messages_delivered);
  digest.u64(ch.stats(net::LinkDirection::kDownlink).bytes_sent);
  r.digest = digest.digest();
  return r;
}

/// Raw qdisc hot loop: batches through the netem timer heap.
double qdisc_packets_per_second(std::uint64_t packets) {
  net::NetemConfig cfg;
  cfg.delay = util::Duration::millis(10);
  cfg.jitter = util::Duration::millis(3);
  net::NetemQdisc q{cfg, 42};
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t released = 0;
  std::int64_t t_us = 0;
  class Count final : public net::PacketSink {
   public:
    std::uint64_t n{0};
    net::Payload kept;  ///< last payload, recycled as the next enqueue
    void accept(net::Packet&& p) override {
      ++n;
      kept = std::move(p.payload);
    }
  } sink;
  sink.kept.resize(1200);
  for (std::uint64_t i = 0; i < packets; ++i) {
    net::Packet p;
    p.id = i;
    p.payload = std::move(sink.kept);
    p.wire_size = 1500;
    const util::TimePoint now = util::TimePoint::from_micros(t_us);
    q.enqueue(std::move(p), now);
    t_us += 100;
    if (sink.kept.empty()) sink.kept.resize(1200);
    if (const auto next = q.next_event_at(); next && *next <= now) {
      q.dequeue_ready(now, sink);
    }
  }
  q.clear();
  released = sink.n;
  const auto t1 = std::chrono::steady_clock::now();
  const double s = wall_seconds(t0, t1);
  return s > 0.0 ? static_cast<double>(packets + released) / s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  std::uint64_t ticks = 200000;      // 1000 s virtual
  std::uint64_t idle_ticks = 2000000;
  std::uint64_t qdisc_packets = 2000000;
  std::string out_path = "BENCH_packet_path.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      ticks = 20000;
      idle_ticks = 200000;
      qdisc_packets = 200000;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  std::printf("packet path bench: seed %llu, %llu ticks\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(ticks));

  // Raw qdisc throughput.
  const double qdisc_pps = qdisc_packets_per_second(qdisc_packets);
  std::printf("  qdisc       : %.2fM packets/s through the netem timer heap\n",
              qdisc_pps / 1e6);

  // Steady-state stream scenario, three runs: fresh, repeat, pre-warmed pool.
  const ScenarioResult fresh = run_scenario(seed, ticks, /*prewarm_pool=*/false);
  const ScenarioResult repeat = run_scenario(seed, ticks, /*prewarm_pool=*/false);
  const ScenarioResult warmed = run_scenario(seed, ticks, /*prewarm_pool=*/true);
  const bool reproducible = fresh.digest == repeat.digest;
  const bool pool_transparent = fresh.digest == warmed.digest;
  const double seg_per_s =
      fresh.wall_s > 0.0 ? static_cast<double>(fresh.segments) / fresh.wall_s : 0.0;
  const double mb_per_s = fresh.wall_s > 0.0
                              ? static_cast<double>(fresh.payload_bytes) / 1e6 / fresh.wall_s
                              : 0.0;
  const double allocs_per_tick =
      fresh.ticks_measured > 0
          ? static_cast<double>(fresh.allocs_measured) /
                static_cast<double>(fresh.ticks_measured)
          : 0.0;
  const double allocs_per_segment =
      fresh.segments_measured > 0
          ? static_cast<double>(fresh.allocs_measured) /
                static_cast<double>(fresh.segments_measured)
          : 0.0;
  std::printf("  steady      : %.0f segments/s, %.1f MB/s delivered, "
              "%.3f allocs/tick (warm), %.3f allocs/segment\n",
              seg_per_s, mb_per_s, allocs_per_tick, allocs_per_segment);
  std::printf("  digest      : %016llx  repeat %s, pre-warmed pool %s\n",
              static_cast<unsigned long long>(fresh.digest),
              reproducible ? "identical" : "MISMATCH",
              pool_transparent ? "identical" : "MISMATCH");

  // Idle path: nothing in flight, nothing may allocate.
  std::uint64_t idle_allocs = 0;
  double idle_ns = 0.0;
  {
    net::TrafficControl tc{seed};
    net::Channel ch{tc, "lo"};
    net::PacketRouter router{ch};
    router.poll(util::TimePoint{});  // settle lazy init outside the window
    util::AllocCounter allocs;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < idle_ticks; ++i) {
      router.poll(util::TimePoint::from_micros(static_cast<std::int64_t>(i) * 5000));
    }
    const auto t1 = std::chrono::steady_clock::now();
    idle_allocs = allocs.delta();
    idle_ns = wall_seconds(t0, t1) * 1e9 / static_cast<double>(idle_ticks);
  }
  std::printf("  idle        : %.1f ns/tick, %llu allocations over %llu ticks\n",
              idle_ns, static_cast<unsigned long long>(idle_allocs),
              static_cast<unsigned long long>(idle_ticks));

  char hash_buf[32];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(fresh.digest));
  std::ofstream json{out_path, std::ios::trunc};
  json << "{\n"
       << "  \"bench\": \"packet_path\",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"ticks\": " << ticks << ",\n"
       << "  \"qdisc_packets_per_s\": " << qdisc_pps << ",\n"
       << "  \"steady\": {\n"
       << "    \"segments_per_s\": " << seg_per_s << ",\n"
       << "    \"delivered_mb_per_s\": " << mb_per_s << ",\n"
       << "    \"allocs_per_tick_warm\": " << allocs_per_tick << ",\n"
       << "    \"allocs_per_segment_warm\": " << allocs_per_segment << ",\n"
       << "    \"digest\": \"" << hash_buf << "\",\n"
       << "    \"repeat_identical\": " << (reproducible ? "true" : "false") << ",\n"
       << "    \"pool_transparent\": " << (pool_transparent ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"idle\": {\n"
       << "    \"ns_per_tick\": " << idle_ns << ",\n"
       << "    \"ticks\": " << idle_ticks << ",\n"
       << "    \"allocations\": " << idle_allocs << "\n"
       << "  }\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!reproducible || !pool_transparent) {
    std::fprintf(stderr, "FAIL: delivered-stream digest diverged\n");
    return 1;
  }
  if (idle_allocs != 0) {
    std::fprintf(stderr, "FAIL: idle tick allocated (%llu allocations)\n",
                 static_cast<unsigned long long>(idle_allocs));
    return 1;
  }
  return 0;
}
