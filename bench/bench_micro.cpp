// google-benchmark micro benchmarks: costs of the building blocks — netem
// qdisc operations, reliable-stream throughput, simulator stepping, metric
// computation, and a full teleoperation tick.
#include <benchmark/benchmark.h>

#include "core/teleop.hpp"
#include "metrics/srr.hpp"
#include "metrics/ttc.hpp"

using namespace rdsim;

namespace {

void BM_NetemEnqueueDequeue(benchmark::State& state) {
  net::NetemConfig cfg;
  cfg.delay = util::Duration::millis(5);
  cfg.jitter = util::Duration::millis(1);
  cfg.loss_probability = units::Probability{0.02};
  net::NetemQdisc q{cfg, 1};
  std::uint64_t id = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    net::Packet p;
    p.id = ++id;
    p.wire_size = 1000;
    q.enqueue(std::move(p), util::TimePoint::from_micros(t));
    t += 100;
    benchmark::DoNotOptimize(q.drain(util::TimePoint::from_micros(t - 5000)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetemEnqueueDequeue);

void BM_TcRuleParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::parse_netem("delay 50ms 10ms 25% loss 2% reorder 25% gap 5 rate 10mbit"));
  }
}
BENCHMARK(BM_TcRuleParse);

void BM_ReliableStreamRoundTrip(benchmark::State& state) {
  net::TrafficControl tc;
  net::Channel channel{tc, "lo"};
  net::PacketRouter router{channel};
  net::StreamConfig cfg;
  cfg.mtu = 65000;
  net::ReliableStream stream{router, channel, 1, net::LinkDirection::kDownlink, cfg};
  std::int64_t t = 0;
  const net::Payload msg(256, 0x5A);
  for (auto _ : state) {
    t += 1000;
    stream.send_message(msg, 65000, util::TimePoint::from_micros(t));
    router.poll(util::TimePoint::from_micros(t));
    stream.step(util::TimePoint::from_micros(t));
    while (stream.pop_delivered()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReliableStreamRoundTrip);

void BM_WorldPhysicsStep(benchmark::State& state) {
  sim::World world{sim::make_town05_route()};
  sim::ScenarioRuntime runtime{sim::make_test_route_scenario(), world};
  sim::VehicleControl c;
  c.throttle = 0.4;
  world.apply_ego_control(c);
  for (auto _ : state) {
    world.step(units::Seconds{0.01});
    runtime.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorldPhysicsStep);

void BM_RoadProjection(benchmark::State& state) {
  const auto road = sim::make_town05_route();
  double s = 0.0;
  for (auto _ : state) {
    const auto pose = road.sample_offset(s, 1.0);
    benchmark::DoNotOptimize(road.project(pose.position, s));
    s += 2.0;
    if (s > road.length()) s = 0.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RoadProjection);

void BM_FrameEncodeDecode(benchmark::State& state) {
  sim::World world{sim::make_town05_route()};
  sim::ScenarioRuntime runtime{sim::make_test_route_scenario(), world};
  world.step(units::Seconds{0.01});
  const auto frame = world.snapshot();
  for (auto _ : state) {
    const auto bytes = frame.encode();
    benchmark::DoNotOptimize(sim::WorldFrame::decode(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_TeleopTick(benchmark::State& state) {
  const auto make_session = [] {
    core::RunConfig rc;
    rc.run_id = "bm";
    rc.subject_id = "bm";
    rc.driver = core::DriverParams{};
    rc.seed = 5;
    return std::make_unique<core::TeleopSession>(std::move(rc),
                                                 sim::make_test_route_scenario());
  };
  auto session = make_session();
  for (auto _ : state) {
    if (!session->step()) {
      // A session holds a finite number of ticks; start a fresh run off the
      // clock when the benchmark outlasts it.
      state.PauseTiming();
      session = make_session();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TeleopTick);

const trace::RunTrace& bench_trace() {
  static const trace::RunTrace trace = [] {
    core::RunConfig rc;
    rc.run_id = "bm";
    rc.subject_id = "bm";
    rc.driver = core::DriverParams{};
    rc.seed = 5;
    core::TeleopSession session{std::move(rc), sim::make_following_scenario()};
    return session.run().trace;
  }();
  return trace;
}

void BM_TtcAnalysis(benchmark::State& state) {
  metrics::TtcAnalyzer ttc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ttc.summarize(ttc.series(bench_trace())));
  }
}
BENCHMARK(BM_TtcAnalysis);

void BM_SrrAnalysis(benchmark::State& state) {
  metrics::SrrAnalyzer srr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(srr.analyze(bench_trace()));
  }
}
BENCHMARK(BM_SrrAnalysis);

void BM_TraceCsvRoundTrip(benchmark::State& state) {
  const auto& trace = bench_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::RunTrace::from_csv(
        trace.ego_csv(), trace.others_csv(), trace.events_csv()));
  }
}
BENCHMARK(BM_TraceCsvRoundTrip);

}  // namespace

BENCHMARK_MAIN();
