// Regenerates Table IV: Statistics for SRR (reversals per minute).
//
// Shape expectations from §VI.D: column averages — NFI lowest (~5), all
// fault columns above NFI, the three delay columns similar to each other,
// and 5 % packet loss the highest of all.
#include <cstdio>

#include "campaign.hpp"

using namespace rdsim;

int main() {
  const auto& campaign = bench_helper::campaign();
  std::fputs(core::report::render_table4(campaign, /*mask_like_paper=*/false).c_str(),
             stdout);
  std::printf("\n--- masked like the paper (x = data the paper lost) ---\n");
  std::fputs(core::report::render_table4(campaign, /*mask_like_paper=*/true).c_str(),
             stdout);

  const auto rows = core::report::srr_rows(campaign);
  util::RunningStats nfi;
  std::map<std::string, util::RunningStats> cols;
  for (const auto& row : rows) {
    if (row.nfi) nfi.add(*row.nfi);
    for (const auto& [label, v] : row.cells) {
      if (v) cols[label].add(*v);
    }
  }
  std::printf("\nShape summary (column means, rev/min):\n  NFI %.2f", nfi.mean());
  for (const auto& label : core::report::fault_labels()) {
    std::printf("  %s %.2f", label.c_str(), cols[label].mean());
  }
  std::printf("\n  paper: NFI 5.04 | 5ms 7.57 | 25ms 7.85 | 50ms 7.66 | 2%% 7.71 | 5%% 9.18\n");
  return 0;
}
