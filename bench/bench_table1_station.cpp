// Prints Table I: the driving-station technical specification this testbed
// models, plus the derived timing parameters the models actually consume.
#include <cstdio>

#include "core/report.hpp"

int main() {
  const rdsim::core::StationConfig station{};
  std::fputs(rdsim::core::report::render_table1(station).c_str(), stdout);
  std::printf("\nDerived model parameters:\n");
  std::printf("  display latency  %.0f ms\n", station.display_latency.value());
  std::printf("  input latency    %.0f ms\n", station.input_latency.value());
  std::printf("  wheel range      %.0f deg lock-to-lock\n", station.wheel_range_deg);
  const rdsim::core::VideoConfig video{};
  std::printf("  video frame      %.1f MB on the wire (raw sensor stream)\n",
              video.frame_wire_bytes / 1e6);
  return 0;
}
