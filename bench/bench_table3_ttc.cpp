// Regenerates Table III: Statistics for TTC (max / average / minimum, in
// seconds) per subject and fault type, NFI = golden run.
//
// Shape expectations from §VI.C: average and maximum TTC lower in faulty
// runs than NFI for most tests; minimum TTC often *higher* under faults
// (subjects drive more cautiously); with a 6 s violation threshold, 5 %
// packet loss violates while 5 ms delay does not.
#include <cstdio>

#include "campaign.hpp"

using namespace rdsim;

int main() {
  const auto& campaign = bench_helper::campaign();
  std::fputs(core::report::render_table3(campaign, /*mask_like_paper=*/false).c_str(),
             stdout);
  std::printf("\n--- masked to the subjects the paper could report (T5..T12) ---\n");
  std::fputs(core::report::render_table3(campaign, /*mask_like_paper=*/true).c_str(),
             stdout);

  // Key shape checks printed explicitly.
  const auto rows = core::report::ttc_rows(campaign);
  int avg_lower = 0, avg_total = 0, min_higher = 0, min_total = 0;
  int viol_5pct = 0, viol_5ms = 0;
  for (const auto& row : rows) {
    if (!row.nfi) continue;
    for (const auto& [label, cell] : row.cells) {
      if (!cell) continue;
      ++avg_total;
      if (cell->avg < row.nfi->avg) ++avg_lower;
      ++min_total;
      if (cell->min > row.nfi->min) ++min_higher;
      if (label == "5%") viol_5pct += static_cast<int>(cell->violations);
      if (label == "5ms") viol_5ms += static_cast<int>(cell->violations);
    }
  }
  std::printf("\nShape summary:\n");
  std::printf("  fault cells with avg TTC below the subject's NFI: %d / %d\n", avg_lower,
              avg_total);
  std::printf("  fault cells with min TTC above the subject's NFI: %d / %d\n", min_higher,
              min_total);
  std::printf("  TTC<6s violation samples under 5%% loss: %d, under 5ms delay: %d\n",
              viol_5pct, viol_5ms);
  return 0;
}
