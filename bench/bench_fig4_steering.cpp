// Regenerates Figure 4: steering profile of the same slalom driven in the
// golden run (bottom) and the faulty run (top).
//
// The paper's key reading of the figure: the driver needs visibly longer to
// navigate the same scenario under faults — ~19 s for the three-vehicle
// lane-change sequence in the golden run vs ~33 s in the faulty run — and
// the steering trace shows larger, longer compensation movements.
#include <cstdio>

#include "core/teleop.hpp"
#include "metrics/safety.hpp"
#include "metrics/srr.hpp"

using namespace rdsim;

namespace {

core::RunResult drive_slalom(bool faulty) {
  core::RunConfig rc;
  rc.run_id = faulty ? "fig4-FI" : "fig4-NFI";
  rc.subject_id = "T5";
  rc.fault_injected = faulty;
  rc.driver = core::make_roster()[4].driver;
  rc.seed = faulty ? 1007 : 1003;
  const auto scenario = sim::make_test_route_scenario();
  if (faulty) {
    // 5 % packet loss across the slalom, the fault the paper found worst.
    rc.plan.push_back({"slalom-1", {net::FaultKind::kPacketLoss, 0.05}});
    rc.plan.push_back({"slalom-2", {net::FaultKind::kPacketLoss, 0.05}});
  }
  core::TeleopSession session{std::move(rc), scenario};
  return session.run();
}

void emit_series(const char* name, const trace::RunTrace& trace) {
  // The slalom occupies route arc length 600..840 m; convert to a window of
  // travelled distance and print a decimated steering series.
  std::printf("# %s: t[s] steer[frac] speed[m/s]\n", name);
  double travelled = 0.0;
  for (std::size_t i = 1; i < trace.ego.size(); ++i) {
    const auto& a = trace.ego[i - 1];
    const auto& b = trace.ego[i];
    travelled += std::hypot(b.x - a.x, b.y - a.y);
    if (travelled >= 590.0 && travelled <= 850.0 && i % 4 == 0) {
      std::printf("%s %.2f %.4f %.2f\n", name, b.t, b.steer, b.speed());
    }
  }
}

}  // namespace

int main() {
  const auto golden = drive_slalom(false);
  const auto faulty = drive_slalom(true);

  emit_series("NFI", golden.trace);
  emit_series("FI", faulty.trace);

  const auto t_golden = metrics::traversal_time(golden.trace, units::Meters{600.0}, units::Meters{840.0});
  const auto t_faulty = metrics::traversal_time(faulty.trace, units::Meters{600.0}, units::Meters{840.0});
  metrics::SrrAnalyzer srr;

  std::printf("\nFig. 4 summary (three-vehicle slalom, route 600-840 m):\n");
  if (t_golden) std::printf("  golden-run traversal: %5.1f s\n", t_golden->value());
  if (t_faulty) std::printf("  faulty-run traversal: %5.1f s\n", t_faulty->value());
  if (t_golden && t_faulty) {
    std::printf("  ratio: %.2fx  (paper: ~19 s vs ~33 s = 1.74x)\n",
                *t_faulty / *t_golden);
  }
  std::printf("  slalom SRR golden %.1f vs faulty %.1f rev/min\n",
              srr.analyze_window(golden.trace, units::Seconds{55.0}, units::Seconds{95.0}).rate_per_min,
              srr.analyze_window(faulty.trace, units::Seconds{55.0}, units::Seconds{95.0}).rate_per_min);
  std::printf("  collisions golden %zu, faulty %zu\n",
              golden.trace.collisions.size(), faulty.trace.collisions.size());
  return 0;
}
