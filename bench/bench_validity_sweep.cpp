// Regenerates the §VIII validity observations:
//
//   Simulator:       delay >100 ms made it difficult to drive and >200 ms
//                    stopped the simulator responding; 1 % loss had no
//                    significant effect, 10 % made it very difficult.
//   Model vehicle:   delay >20 ms degraded driving, >100 ms impossible;
//                    7 % loss had a conscious impact, 10 % impossible.
//
// The sweep drives the following scenario under each sustained fault level
// and reports drivability indicators: completion, mean display staleness,
// effective frame rate, SRR, minimum TTC and collisions.
#include <cstdio>

#include "core/teleop.hpp"
#include "metrics/srr.hpp"
#include "metrics/ttc.hpp"

using namespace rdsim;

namespace {

struct SweepPoint {
  net::FaultSpec fault;
  const char* note;
};

void sweep(const char* title, const core::RdsConfig& rds, double scenario_scale,
           double speed_scale) {
  std::printf("%s\n", title);
  std::printf("%-12s %-9s %-8s %-9s %-8s %-8s %-6s %s\n", "fault", "complete",
              "fps_eff", "stale_ms", "SRR", "minTTC", "crash", "assessment");

  const SweepPoint points[] = {
      {{net::FaultKind::kNone, 0.0}, "baseline"},
      {{net::FaultKind::kDelay, 5.0}, ""},
      {{net::FaultKind::kDelay, 20.0}, "model-vehicle degradation threshold"},
      {{net::FaultKind::kDelay, 25.0}, ""},
      {{net::FaultKind::kDelay, 50.0}, ""},
      {{net::FaultKind::kDelay, 100.0}, "paper: difficult (sim), impossible (model)"},
      {{net::FaultKind::kDelay, 200.0}, "paper: simulator stops responding"},
      {{net::FaultKind::kPacketLoss, 0.01}, "paper: no significant effect"},
      {{net::FaultKind::kPacketLoss, 0.02}, ""},
      {{net::FaultKind::kPacketLoss, 0.05}, ""},
      {{net::FaultKind::kPacketLoss, 0.07}, "paper: conscious impact (model)"},
      {{net::FaultKind::kPacketLoss, 0.10}, "paper: very difficult / impossible"},
  };

  for (const auto& point : points) {
    core::RunConfig rc;
    rc.run_id = "sweep";
    rc.subject_id = "sweep";
    rc.rds = rds;
    rc.driver = core::DriverParams{};
    // The operator's internal plant model matches what they drive.
    rc.driver.vehicle_wheelbase_m = rds.vehicle.wheelbase.value();
    rc.driver.vehicle_max_steer_deg = rds.vehicle.max_steer_deg;
    // Metric gains scale with the world: errors shrink with the geometry,
    // so per-metre gains must grow to keep the same authority.
    rc.driver.near_gain /= rds.road_scale;
    rc.driver.min_lookahead_m *= rds.road_scale;
    rc.driver.idm_min_gap_m *= rds.road_scale;
    rc.driver.position_noise_m *= rds.road_scale;
    rc.driver.startle_jump_m_per_s *= rds.road_scale;
    rc.driver.staleness_noise_gain *= rds.road_scale;
    rc.seed = 77;

    // Scale the course for the slower model vehicle.
    sim::Scenario scenario = sim::make_following_scenario();
    if (scenario_scale != 1.0) {
      scenario.end *= scenario_scale;
      scenario.time_limit = units::Seconds{300.0};
      for (auto& instr : scenario.instructions) {
        instr.from *= scenario_scale;
        instr.to *= scenario_scale;
        instr.target_speed *= speed_scale;
      }
      for (auto& poi : scenario.pois) {
        poi.from *= scenario_scale;
        poi.to *= scenario_scale;
      }
      scenario.ego_initial_speed *= speed_scale;
      scenario.populate = {};  // drive the scaled course alone
    }
    if (point.fault.kind != net::FaultKind::kNone) {
      rc.fault_injected = true;
      for (const auto& poi : scenario.pois) rc.plan.push_back({poi.name, point.fault});
      // Also cover the whole run: sustained fault, as in the paper's
      // validity checks.
      rc.plan.clear();
    }
    core::TeleopSession session{std::move(rc), scenario};
    if (point.fault.kind != net::FaultKind::kNone) {
      session.injector().inject(point.fault, session.now());
    }
    const auto result = session.run();

    metrics::SrrAnalyzer srr;
    metrics::TtcAnalyzer ttc;
    const auto srr_r = srr.analyze(result.trace);
    const auto ttc_r = ttc.summarize(ttc.series(result.trace));
    const double fps =
        result.duration.value() > 0.0
            ? static_cast<double>(result.frames_displayed) / result.duration.value()
            : 0.0;
    const double stale_ms = result.qoe.mean_staleness().value() * 1e3;

    const char* label = point.fault.kind == net::FaultKind::kNone
                            ? "none"
                            : nullptr;
    char buf[32];
    if (label == nullptr) {
      std::snprintf(buf, sizeof buf, "%s %s",
                    net::to_string(point.fault.kind).c_str(),
                    point.fault.label().c_str());
      label = buf;
    }
    std::printf("%-12s %-9s %-8.1f %-9.0f %-8.1f %-8.2f %-6zu %s\n", label,
                result.completed ? "yes" : "NO", fps, stale_ms,
                srr_r.rate_per_min, ttc_r.valid() ? ttc_r.min.value() : -1.0,
                result.trace.collisions.size(), point.note);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  sweep("=== Full-size RDS (CARLA-like simulator rig) ===", core::RdsConfig{}, 1.0,
        1.0);
  // The model vehicle is driven near its top speed relative to its size —
  // which is why the paper found it degrading at *lower* fault levels than
  // the simulator.
  sweep("=== Scaled-down model vehicle (smartphone link) ===",
        core::RdsConfig::scaled_model_vehicle(), 0.25, 0.38);
  std::printf("Expected shape: staleness and SRR grow with fault severity;\n"
              "delays cost throughput (fps collapse at 100-200 ms); loss is\n"
              "benign at 1%%, noticeable at 2-5%%, and crippling at 10%%. The\n"
              "model vehicle degrades at lower fault levels than the simulator.\n");
  return 0;
}
