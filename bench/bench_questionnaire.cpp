// Regenerates the §VI.F questionnaire summary.
//
// Paper: 10/11 gaming experience (1 recent), 9/11 racing games, 6 with no
// driving-station experience (3 a few times, 2 once), QoE mean 2.81
// (min 2, max 4), 11/11 consider virtual testing useful, 5/11 felt the
// faults.
#include <cstdio>

#include "campaign.hpp"

int main() {
  const auto& campaign = bench_helper::campaign();
  std::fputs(rdsim::core::report::render_questionnaire(campaign).c_str(), stdout);
  return 0;
}
