// Paired mitigation ablation, measured end-to-end on the full campaign.
//
// The paper's headline result is that crashes concentrate under 50 ms delay
// and 5 % packet loss; its setup deliberately ran without countermeasures.
// This bench runs the SAME campaign twice at the same seed — identical
// subjects, identical fault plans (the plan RNG stream is independent of
// mitigation) — once bare and once with the rdsim::mitigate stack enabled,
// and reports what the governor + MRM buy (collisions) and what they cost
// (steering-reversal rate, completion time, standstill time).
//
// The baseline reuses the shared bench campaign cache; the mitigated twin is
// cached under its own config fingerprint (the mitigation knobs fold into
// experiment_config_fingerprint).
#include <chrono>
#include <cstdio>

#include "campaign.hpp"
#include "metrics/srr.hpp"

using namespace rdsim;

namespace {

const core::CampaignResult& mitigated_campaign() {
  static const core::CampaignResult result = [] {
    core::ExperimentConfig config{};
    config.mitigation.enabled = true;
    const std::string cache_path = core::campaign_cache_path(config);
    if (auto cached = core::load_campaign(cache_path)) {
      std::printf("[mitigated campaign: cache hit %s]\n\n", cache_path.c_str());
      return std::move(*cached);
    }
    const auto t0 = std::chrono::steady_clock::now();
    core::ExperimentHarness harness{config};
    auto r = harness.run_campaign_parallel(/*n_workers=*/0);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("[mitigated campaign: %.1f s wall, hash %016llx]\n",
                std::chrono::duration<double>(t1 - t0).count(),
                static_cast<unsigned long long>(check::campaign_hash(r)));
    if (core::save_campaign(cache_path, r)) {
      std::printf("[mitigated campaign: cached to %s]\n\n", cache_path.c_str());
    }
    return r;
  }();
  return result;
}

double mean_fi_srr(const core::CampaignResult& campaign) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& row : core::report::srr_rows(campaign)) {
    if (row.fi.has_value()) {
      sum += *row.fi;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double total_standstill(const core::CampaignResult& campaign) {
  double sum = 0.0;
  for (const core::SubjectResult* s : campaign.included()) {
    sum += metrics::standstill_time(s->faulty.trace).value();
  }
  return sum;
}

}  // namespace

int main() {
  std::printf(
      "Mitigation ablation: paired campaigns at seed %llu. The mitigated twin\n"
      "runs the identical fault plans behind the LinkQualityEstimator ->\n"
      "DegradationGovernor -> CommandWatchdog/MRM stack. Question: does the\n"
      "stack recover the 50 ms / 5 %% crash cases, and at what cost?\n\n",
      static_cast<unsigned long long>(core::ExperimentConfig{}.seed));

  const core::CampaignResult& baseline = bench_helper::campaign();
  const core::CampaignResult& mitigated = mitigated_campaign();

  std::printf("%s\n", core::report::render_mitigation_ablation(baseline, mitigated).c_str());
  std::printf("%s\n", core::report::render_mitigation(mitigated).c_str());

  std::printf("Cost metrics (FI runs, included subjects)\n");
  std::printf("  %-28s%-10.1f%.1f\n", "mean steering SRR [rev/min]",
              mean_fi_srr(baseline), mean_fi_srr(mitigated));
  std::printf("  %-28s%-10.1f%.1f\n", "total standstill time [s]",
              total_standstill(baseline), total_standstill(mitigated));
  return 0;
}
