// Campaign scaling bench: serial runner vs the thread-pool runner at
// 1/2/4/8 workers. Verifies that every parallel configuration reproduces the
// serial campaign_hash bit-for-bit (exits non-zero otherwise) and emits the
// measurements as BENCH_campaign.json.
//
// Also measures observability overhead: one more serial campaign with an
// obs::CampaignCollector attached and every instrument live. The hash must
// still match (exit-code gated), and the wall-time delta against the plain
// serial run is reported as overhead_pct in BENCH_obs.json, together with
// the collector's full metric report; the per-run trace goes to
// campaign_sample.trace.json.
//
//   usage: bench_campaign_scaling [--quick] [--out FILE] [seed]
//
// --quick caps each run at 20 simulated seconds — same code path, miniature
// cost — for CI artifact generation on small machines. Speedup is physically
// bounded by the host: on a single-core container every worker count
// measures ~1x; the ≥3x-at-8-workers target needs ≥8 hardware threads.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign_hash.hpp"
#include "core/experiment.hpp"
#include "obs/report.hpp"

using namespace rdsim;

namespace {

double wall_seconds(const std::chrono::steady_clock::time_point t0,
                    const std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg;
  std::string out_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.run_time_limit = units::Seconds{20.0};
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      cfg.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("campaign scaling: seed %llu, %s route, %u hardware thread(s)\n",
              static_cast<unsigned long long>(cfg.seed),
              cfg.run_time_limit > units::Seconds{0.0} ? "capped" : "full", hw);

  const core::ExperimentHarness harness{cfg};

  const auto s0 = std::chrono::steady_clock::now();
  const core::CampaignResult serial = harness.run_campaign();
  const auto s1 = std::chrono::steady_clock::now();
  const double serial_s = wall_seconds(s0, s1);
  const std::uint64_t serial_hash = check::campaign_hash(serial);
  std::printf("  serial      : %7.2f s   hash %016llx\n", serial_s,
              static_cast<unsigned long long>(serial_hash));

  struct Row {
    std::size_t workers;
    double wall_s;
    double speedup;
    std::uint64_t hash;
    bool bit_identical;
  };
  std::vector<Row> rows;
  bool all_identical = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::CampaignResult parallel = harness.run_campaign_parallel(workers);
    const auto t1 = std::chrono::steady_clock::now();
    Row row;
    row.workers = workers;
    row.wall_s = wall_seconds(t0, t1);
    row.speedup = row.wall_s > 0.0 ? serial_s / row.wall_s : 0.0;
    row.hash = check::campaign_hash(parallel);
    row.bit_identical = row.hash == serial_hash;
    all_identical = all_identical && row.bit_identical;
    std::printf("  %2zu worker(s): %7.2f s   hash %016llx   speedup %.2fx   %s\n",
                row.workers, row.wall_s, static_cast<unsigned long long>(row.hash),
                row.speedup, row.bit_identical ? "bit-identical" : "HASH MISMATCH");
    rows.push_back(row);
  }

  // Observability overhead: serial again, collector attached, obs on.
  obs::set_enabled(true);
  core::ExperimentHarness obs_harness{cfg};
  obs::CampaignCollector collector;
  obs_harness.set_collector(&collector);
  const auto o0 = std::chrono::steady_clock::now();
  const core::CampaignResult observed = obs_harness.run_campaign();
  const auto o1 = std::chrono::steady_clock::now();
  const double obs_s = wall_seconds(o0, o1);
  const std::uint64_t obs_hash = check::campaign_hash(observed);
  const bool obs_identical = obs_hash == serial_hash;
  const double overhead_pct =
      serial_s > 0.0 ? 100.0 * (obs_s - serial_s) / serial_s : 0.0;
  std::printf("  obs enabled : %7.2f s   hash %016llx   overhead %+.1f%%   %s\n",
              obs_s, static_cast<unsigned long long>(obs_hash), overhead_pct,
              obs_identical ? "bit-identical" : "HASH MISMATCH");

  std::ofstream json{out_path, std::ios::trunc};
  json << "{\n"
       << "  \"bench\": \"campaign_scaling\",\n"
       << "  \"seed\": " << cfg.seed << ",\n"
       << "  \"subjects\": " << serial.subjects.size() << ",\n"
       << "  \"run_time_limit\": " << cfg.run_time_limit.value() << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n";
  char hash_buf[32];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(serial_hash));
  json << "  \"serial\": { \"wall_s\": " << serial_s << ", \"campaign_hash\": \""
       << hash_buf << "\" },\n"
       << "  \"parallel\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                  static_cast<unsigned long long>(row.hash));
    json << "    { \"workers\": " << row.workers << ", \"wall_s\": " << row.wall_s
         << ", \"speedup\": " << row.speedup << ", \"campaign_hash\": \"" << hash_buf
         << "\", \"bit_identical\": " << (row.bit_identical ? "true" : "false")
         << " }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  {
    char hash_hex[32];
    std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                  static_cast<unsigned long long>(obs_hash));
    std::ofstream obs_json{"BENCH_obs.json", std::ios::trunc};
    obs_json << "{\n"
             << "  \"bench\": \"campaign_obs_overhead\",\n"
             << "  \"seed\": " << cfg.seed << ",\n"
             << "  \"compiled_in\": " << (obs::compiled_in() ? "true" : "false")
             << ",\n"
             << "  \"baseline_wall_s\": " << serial_s << ",\n"
             << "  \"obs_wall_s\": " << obs_s << ",\n"
             << "  \"overhead_pct\": " << overhead_pct << ",\n"
             << "  \"campaign_hash\": \"" << hash_hex << "\",\n"
             << "  \"bit_identical\": " << (obs_identical ? "true" : "false")
             << ",\n"
             << "  \"report\": " << collector.report_json() << "}\n";
    collector.write_trace("campaign_sample.trace.json");
    std::printf("wrote BENCH_obs.json and campaign_sample.trace.json\n");
  }

  if (!all_identical || !obs_identical) {
    std::fprintf(stderr, "FAIL: campaign hash diverged from serial baseline\n");
    return 1;
  }
  return 0;
}
