#!/usr/bin/env python3
"""Determinism lint for rdsim's src/ tree (wired into ctest as `determinism_lint`).

The testbed's reproducibility contract is that one seed fully determines a
campaign. This lint fails the build when known nondeterminism hazards enter
first-party code:

  rule `raw-rand`        : libc rand()/srand()/random() anywhere in src/
  rule `random-device`   : std::random_device outside src/util/rng.*
  rule `wall-clock`      : wall/monotonic clocks (std::chrono::*_clock, time(),
                           gettimeofday, clock_gettime, localtime, gmtime) in
                           simulation/step paths (everything except src/util,
                           where no clock use exists either, but timers for
                           profiling tools may one day live there explicitly)
  rule `unordered-iter`  : std::unordered_map/set in src/ — iteration order is
                           implementation-defined and has repeatedly leaked
                           into trace output in comparable codebases; use
                           std::map / sorted vectors, or suppress per line
  rule `uninit-member`   : serialized packet/frame/trace struct members without
                           a default member initializer (the bytes feed hashes
                           and the wire format, so indeterminate values break
                           replay comparison)

A line can be suppressed with a trailing `// lint:allow(<rule>)` comment.
Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.hpp", "*.cpp")

# Files whose structs cross a serialization or hashing boundary, and the
# structs audited in each. Members of these structs must have default member
# initializers so padding-free field state is never indeterminate.
SERIALIZED_STRUCTS = {
    "src/net/packet.hpp": ["Packet", "QdiscStats"],
    "src/sim/frame.hpp": ["ActorSnapshot", "WorldFrame"],
    "src/sim/types.hpp": ["VehicleControl", "KinematicState", "BoundingBox",
                          "WeatherConfig"],
    "src/trace/trace.hpp": ["EgoSample", "OtherSample", "CollisionRecord",
                            "LaneInvasionRecord", "FaultRecord"],
}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

RAW_RAND_RE = re.compile(r"(?<![\w:])(?:s?rand|random|rand_r|drand48|lrand48)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"std::random_device")
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system|steady|high_resolution)_clock"
    r"|(?<![\w:.])(?:time|gettimeofday|clock_gettime|clock|localtime|gmtime)\s*\("
)
UNORDERED_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)")


def strip_comments_and_strings(line: str) -> str:
    """Remove // comments and string/char literal contents (keeps quotes)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Violation:
    def __init__(self, rule: str, path: Path, line_no: int, text: str):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.text = text

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.text.strip()}"


def allowed_rules(line: str) -> set[str]:
    return set(ALLOW_RE.findall(line))


def scan_file(path: Path, rel: str) -> list[Violation]:
    violations: list[Violation] = []
    in_block_comment = False
    is_rng_impl = rel.startswith("src/util/rng")

    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        allowed = allowed_rules(raw)

        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2:]
        code = strip_comments_and_strings(line)

        def report(rule: str) -> None:
            if rule not in allowed:
                violations.append(Violation(rule, path, line_no, raw))

        if RAW_RAND_RE.search(code):
            report("raw-rand")
        if not is_rng_impl and RANDOM_DEVICE_RE.search(code):
            report("random-device")
        if WALL_CLOCK_RE.search(code):
            report("wall-clock")
        if UNORDERED_RE.search(code):
            report("unordered-iter")

    return violations


# Member declaration inside a struct body: `Type name;` with no `{...}` or
# `= ...` initializer. Lines containing `(` are functions; `using`, `static`,
# `friend`, access specifiers and comments are skipped.
MEMBER_DECL_RE = re.compile(r"^\s*[\w:<>,&\s\*]+\s[\w\[\]]+\s*;\s*(//.*)?$")
MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:using |typedef |static |friend |public:|private:|protected:|//|#|$)"
)


def audit_struct(lines: list[str], start: int, path: Path,
                 struct_name: str) -> list[Violation]:
    """Scan one struct body for members lacking default initializers."""
    violations: list[Violation] = []
    depth = 0
    opened = False
    i = start
    while i < len(lines):
        raw = lines[i]
        depth += raw.count("{") - raw.count("}")
        if not opened and "{" in raw:
            opened = True
            i += 1
            continue
        if opened and depth <= 0:
            break
        if opened and depth == 1:
            code = strip_comments_and_strings(raw)
            if (not MEMBER_SKIP_RE.match(code)
                    and "(" not in code
                    and "=" not in code
                    and "{" not in code
                    and MEMBER_DECL_RE.match(code)
                    and "uninit-member" not in allowed_rules(raw)):
                violations.append(Violation(
                    "uninit-member", path, i + 1,
                    f"{raw.strip()}  (member of {struct_name} lacks a default "
                    "initializer)"))
        i += 1
    return violations


def scan_serialized_structs(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for rel, structs in SERIALIZED_STRUCTS.items():
        path = root / rel
        if not path.is_file():
            print(f"config error: {rel} listed in SERIALIZED_STRUCTS but missing",
                  file=sys.stderr)
            sys.exit(2)
        lines = path.read_text().splitlines()
        for struct_name in structs:
            decl = re.compile(rf"^\s*struct {struct_name}\b")
            for i, line in enumerate(lines):
                if decl.match(line):
                    violations.extend(audit_struct(lines, i, path, struct_name))
                    break
            else:
                print(f"config error: struct {struct_name} not found in {rel}",
                      file=sys.stderr)
                sys.exit(2)
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[1],
                        help="repository root (contains src/)")
    args = parser.parse_args()

    src = args.root / "src"
    if not src.is_dir():
        print(f"usage error: {src} is not a directory", file=sys.stderr)
        return 2

    violations: list[Violation] = []
    for glob in SOURCE_GLOBS:
        for path in sorted(src.rglob(glob)):
            violations.extend(scan_file(path, path.relative_to(args.root).as_posix()))
    violations.extend(scan_serialized_structs(args.root))

    if violations:
        print(f"determinism lint: {len(violations)} violation(s)", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
