#!/usr/bin/env python3
"""Determinism lint (ctest `determinism_lint`) — shim over tools/rdsim_lint.

The rule set lives in tools/rdsim_lint/rules/determinism.py; this entry
point exists so the historical ctest name and `tools/lint_determinism.py`
muscle memory keep working. Equivalent to:

    python3 -m tools.rdsim_lint.cli --rules determinism [args...]

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tools.rdsim_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["--rules", "determinism", *sys.argv[1:]]))
