#!/usr/bin/env python3
"""Observability lint for rdsim's src/ tree (wired into ctest as `obs_lint`).

The obs layer stays deterministic and cheap only if instrumentation follows
three conventions; this lint fails the build when first-party code drifts:

  rule `metric-registration` : obs::register_counter/gauge/timer/histogram
                               calls in src/ outside src/obs/catalog.cpp.
                               Registration takes a lock and metric identity
                               must be static, so all first-party ids live in
                               the catalog (declared in obs/catalog.hpp).
                               Tests and benches may register test.* metrics.
  rule `hot-path-literal`    : a string literal inside an RDSIM_OBS_* macro
                               invocation or Context hot-path call
                               (count/gauge_set/observe/timer_add/span_open/
                               instant). Hot paths must pass MetricIds from
                               the catalog, never name strings — there is no
                               by-name lookup on the sample path.
  rule `duplicate-name`      : the same metric name string registered twice
                               in src/obs/catalog.cpp (registration would
                               throw at static-init time, which surfaces as
                               an opaque pre-main abort; catch it in lint).
  rule `catalog-undeclared`  : a metric registered in catalog.cpp whose id
                               constant is not declared in catalog.hpp (the
                               id would be unreachable from instrumentation).

A line can be suppressed with a trailing `// lint:allow(<rule>)` comment.
Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.hpp", "*.cpp")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

REGISTER_RE = re.compile(r"\bregister_(?:counter|gauge|timer|histogram)\s*\(")
# RDSIM_OBS_COUNT / _GAUGE_SET / _OBSERVE / _TIMER / _EVENT invocations and the
# Context hot-path methods; a '"' in the argument list is a name string on a
# sample path.
HOT_MACRO_RE = re.compile(
    r"RDSIM_OBS_(?:COUNT|GAUGE_SET|OBSERVE|TIMER|EVENT)\s*\(([^)]*)"
)
HOT_METHOD_RE = re.compile(
    r"(?:->|\.)\s*(?:count|gauge_set|observe|timer_add|span_open|instant)"
    r"\s*\(([^)]*)"
)
REGISTER_NAME_RE = re.compile(
    r"\bregister_(?:counter|gauge|timer|histogram)\s*\(\s*\"([^\"]+)\""
)
DECLARED_ID_RE = re.compile(r"\bextern\s+const\s+MetricId\s+(k\w+)\s*;")
DEFINED_ID_RE = re.compile(r"\bconst\s+MetricId\s+(k\w+)\s*=")

# Files allowed to call register_* besides the catalog: the registry
# implementation itself (declarations + definition of the functions).
REGISTRATION_IMPL = ("src/obs/metrics.hpp", "src/obs/metrics.cpp")
CATALOG_CPP = "src/obs/catalog.cpp"
CATALOG_HPP = "src/obs/catalog.hpp"


def strip_comments(line: str, in_block: bool) -> tuple[str, bool]:
    """Drop // and /* */ comment text (strings are kept — the rules here are
    *about* string literals on instrumentation lines)."""
    if in_block:
        end = line.find("*/")
        if end < 0:
            return "", True
        line = line[end + 2:]
    start = line.find("/*")
    if start >= 0:
        end = line.find("*/", start + 2)
        if end < 0:
            return line[:start], True
        return line[:start] + line[end + 2:], False
    cut = line.find("//")
    if cut >= 0:
        line = line[:cut]
    return line, False


class Violation:
    def __init__(self, rule: str, path: Path, line_no: int, text: str):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.text = text

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.text.strip()}"


def scan_file(path: Path, rel: str) -> list[Violation]:
    violations: list[Violation] = []
    in_block = False
    may_register = rel in REGISTRATION_IMPL or rel == CATALOG_CPP

    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        allowed = set(ALLOW_RE.findall(raw))
        code, in_block = strip_comments(raw, in_block)

        def report(rule: str) -> None:
            if rule not in allowed:
                violations.append(Violation(rule, path, line_no, raw))

        if not may_register and REGISTER_RE.search(code):
            report("metric-registration")
        for match in HOT_MACRO_RE.finditer(code):
            if '"' in match.group(1):
                report("hot-path-literal")
        for match in HOT_METHOD_RE.finditer(code):
            if '"' in match.group(1):
                report("hot-path-literal")
    return violations


def check_catalog(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    cpp = root / CATALOG_CPP
    hpp = root / CATALOG_HPP
    if not cpp.is_file() or not hpp.is_file():
        return violations

    declared = set(DECLARED_ID_RE.findall(hpp.read_text()))
    seen_names: dict[str, int] = {}
    for line_no, raw in enumerate(cpp.read_text().splitlines(), start=1):
        allowed = set(ALLOW_RE.findall(raw))
        name_match = REGISTER_NAME_RE.search(raw)
        if name_match:
            name = name_match.group(1)
            if name in seen_names and "duplicate-name" not in allowed:
                violations.append(Violation(
                    "duplicate-name", cpp, line_no,
                    f'"{name}" first registered on line {seen_names[name]}'))
            seen_names.setdefault(name, line_no)
        for ident in DEFINED_ID_RE.findall(raw):
            if ident not in declared and "catalog-undeclared" not in allowed:
                violations.append(Violation("catalog-undeclared", cpp, line_no, raw))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, required=True,
                        help="repository root (contains src/)")
    args = parser.parse_args()

    src = args.root / "src"
    if not src.is_dir():
        print(f"obs_lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    violations: list[Violation] = []
    for glob in SOURCE_GLOBS:
        for path in sorted(src.rglob(glob)):
            rel = path.relative_to(args.root).as_posix()
            violations.extend(scan_file(path, rel))
    violations.extend(check_catalog(args.root))

    for violation in violations:
        print(violation)
    if violations:
        print(f"obs_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("obs_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
