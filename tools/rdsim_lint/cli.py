"""Command-line entry point for rdsim_lint.

    python -m tools.rdsim_lint.cli [--root DIR] [--rules a,b,c]
                                   [--json FILE] [--dot FILE] [--list]

Runs the selected rules (default: all) over <root>/src and prints one line
per violation plus a per-rule summary. `--json` additionally writes the
machine-readable report (schema rdsim.lint/1); `--dot` writes the layer
dependency graph when the layering rule ran.

Exit codes: 0 clean · 1 violations · 2 configuration/usage error.

The legacy tools/lint_*.py scripts are thin shims over this module, kept so
existing ctest names and muscle memory continue to work.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):  # executed as a script, not a module
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]))
    from tools.rdsim_lint.cli import main  # noqa: F811
    raise SystemExit(main())

from .engine import ConfigError, Report, SourceTree, run_rules
from .rules import ALL_RULES


def repo_root_default() -> Path:
    return Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rdsim_lint",
        description="C++-aware static analysis for the rdsim tree")
    parser.add_argument("--root", type=Path, default=repo_root_default(),
                        help="repository root (default: this checkout)")
    parser.add_argument("--rules", default="all",
                        help="comma-separated rule set (default: all); "
                             "known: " + ", ".join(ALL_RULES))
    parser.add_argument("--json", type=Path, default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--dot", type=Path, default=None, metavar="FILE",
                        help="write the layer dependency graph (DOT) to FILE")
    parser.add_argument("--list", action="store_true",
                        help="list known rules and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-violation lines (summary only)")
    return parser


def select_rules(spec: str) -> list:
    if spec == "all":
        names = list(ALL_RULES)
    else:
        names = [n.strip() for n in spec.split(",") if n.strip()]
        unknown = [n for n in names if n not in ALL_RULES]
        if unknown:
            raise ConfigError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(ALL_RULES)}")
    return [ALL_RULES[n]() for n in names]


def render(report: Report, quiet: bool) -> None:
    if not quiet:
        for violation in report.violations:
            print(violation)
    counts = report.counts()
    if counts:
        print(f"\nrdsim_lint: {len(report.violations)} violation(s) "
              f"across rules [{', '.join(report.rules)}]:")
        for rule, count in counts.items():
            print(f"  {rule:>18}: {count}")
    else:
        print(f"rdsim_lint: clean ({', '.join(report.rules)})")
    for note in report.notes:
        print(f"note: {note}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in ALL_RULES:
            print(name)
        return 0
    try:
        rules = select_rules(args.rules)
        tree = SourceTree(args.root)
        report = run_rules(tree, rules)
    except ConfigError as err:
        print(f"rdsim_lint: configuration error: {err}", file=sys.stderr)
        return 2
    render(report, args.quiet)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(report.to_json())
        print(f"json report: {args.json}")
    if args.dot is not None:
        layering = next((r for r in rules if r.name == "layering"), None)
        if layering is None:
            print("rdsim_lint: --dot requires the layering rule",
                  file=sys.stderr)
            return 2
        args.dot.parent.mkdir(parents=True, exist_ok=True)
        args.dot.write_text(layering.dot())
        print(f"layer graph: {args.dot}")
    return 1 if report.violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
