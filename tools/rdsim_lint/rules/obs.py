"""Observability lint (ctest `obs_lint`).

The obs layer stays deterministic and cheap only if instrumentation follows
the catalog conventions; this rule set fails the build when first-party code
drifts:

  metric-registration  obs::register_counter/gauge/timer/histogram calls in
                       src/ outside src/obs/catalog.cpp (registration takes a
                       lock and metric identity must be static)
  hot-path-literal     a string literal inside an RDSIM_OBS_* macro
                       invocation or Context hot-path call — hot paths must
                       pass MetricIds from the catalog, never name strings
  duplicate-name       the same metric name registered twice in catalog.cpp
                       (would throw at static-init time)
  catalog-undeclared   a metric registered in catalog.cpp whose id constant
                       is not declared in catalog.hpp

These rules are *about* string literals, so they run on the engine's
comment-stripped-but-strings-kept view of each file.
"""

from __future__ import annotations

import re

from ..engine import SourceTree, Violation

REGISTER_RE = re.compile(r"\bregister_(?:counter|gauge|timer|histogram)\s*\(")
HOT_MACRO_RE = re.compile(
    r"RDSIM_OBS_(?:COUNT|GAUGE_SET|OBSERVE|TIMER|EVENT)\s*\(([^)]*)"
)
HOT_METHOD_RE = re.compile(
    r"(?:->|\.)\s*(?:count|gauge_set|observe|timer_add|span_open|instant)"
    r"\s*\(([^)]*)"
)
REGISTER_NAME_RE = re.compile(
    r"\bregister_(?:counter|gauge|timer|histogram)\s*\(\s*\"([^\"]+)\""
)
DECLARED_ID_RE = re.compile(r"\bextern\s+const\s+MetricId\s+(k\w+)\s*;")
DEFINED_ID_RE = re.compile(r"\bconst\s+MetricId\s+(k\w+)\s*=")

# Files allowed to call register_* besides the catalog: the registry
# implementation itself (declarations + definition of the functions).
REGISTRATION_IMPL = ("src/obs/metrics.hpp", "src/obs/metrics.cpp")
CATALOG_CPP = "src/obs/catalog.cpp"
CATALOG_HPP = "src/obs/catalog.hpp"


class ObsRule:
    name = "obs"

    def check(self, tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        for sf in tree.files:
            may_register = sf.rel in REGISTRATION_IMPL or sf.rel == CATALOG_CPP
            for line_no, code in enumerate(sf.code_lines, start=1):
                raw = sf.raw_lines[line_no - 1].strip()
                if not may_register and REGISTER_RE.search(code):
                    violations.append(Violation(
                        "metric-registration", sf.rel, line_no, raw))
                for match in HOT_MACRO_RE.finditer(code):
                    if '"' in match.group(1):
                        violations.append(Violation(
                            "hot-path-literal", sf.rel, line_no, raw))
                for match in HOT_METHOD_RE.finditer(code):
                    if '"' in match.group(1):
                        violations.append(Violation(
                            "hot-path-literal", sf.rel, line_no, raw))
        violations.extend(self._check_catalog(tree))
        return violations

    @staticmethod
    def _check_catalog(tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        cpp_file = tree.file(CATALOG_CPP)
        hpp_file = tree.file(CATALOG_HPP)
        if cpp_file is None or hpp_file is None:
            return violations

        declared = set(DECLARED_ID_RE.findall(hpp_file.raw))
        seen_names: dict[str, int] = {}
        for line_no, code in enumerate(cpp_file.code_lines, start=1):
            name_match = REGISTER_NAME_RE.search(code)
            if name_match:
                name = name_match.group(1)
                if name in seen_names:
                    violations.append(Violation(
                        "duplicate-name", CATALOG_CPP, line_no,
                        f'"{name}" first registered on line '
                        f"{seen_names[name]}"))
                seen_names.setdefault(name, line_no)
            for ident in DEFINED_ID_RE.findall(code):
                if ident not in declared:
                    violations.append(Violation(
                        "catalog-undeclared", CATALOG_CPP, line_no,
                        f"{ident} defined in the catalog but not declared "
                        "in catalog.hpp"))
        return violations


def make_rule() -> ObsRule:
    return ObsRule()
