"""Rule registry for rdsim_lint.

Each module exposes a factory `make_rule()` returning an engine-compatible
rule object. `ALL_RULES` maps the CLI/ctest names to those factories; order
here is the order rules run and report.
"""

from __future__ import annotations

from . import determinism, fields, layering, obs, threads, units

ALL_RULES = {
    "determinism": determinism.make_rule,
    "units": units.make_rule,
    "obs": obs.make_rule,
    "fields": fields.make_rule,
    "layering": layering.make_rule,
    "threads": threads.make_rule,
}
