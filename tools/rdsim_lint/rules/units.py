"""Units lint (ctest `units_lint`).

`src/util/units.hpp` makes physical units part of the type system. This rule
set keeps the migration from regressing:

  raw-unit-suffix   a raw `double`/`float` declaration whose name ends in a
                    unit suffix (_ms, _s, _us, _mps, _kmh, _mps2, _bps, _m —
                    including trailing-underscore members). New code must use
                    the strong types. *Ratchet*: files listed in BASELINE
                    keep their audited count of deliberate raw declarations;
                    a file may go below its baseline (the entry must then be
                    lowered) but never above, and unlisted files are clean.
  magic-conversion  hand-written unit-conversion constants outside the units
                    layer — every conversion factor lives exactly once in
                    src/util/units.hpp (or src/util/time.hpp).
"""

from __future__ import annotations

import re

from ..engine import SourceTree, Violation

# Files allowed to contain conversion constants: the units layer itself and
# the integer-microsecond virtual clock it is built on.
CONVERSION_LAYER = {
    "src/util/units.hpp",
    "src/util/units.cpp",
    "src/util/time.hpp",
}

# Audited raw-suffix declaration counts (matching lines per file). These are
# deliberate: serialized wire/trace formats stay raw doubles (stable layout,
# wrapped at call sites), DriverParams documents each gain's unit per field,
# filters and the road builder are generic numeric utilities. Ratchet: lower
# these when a file migrates further; never raise one. Re-measured when the
# lint moved onto the rdsim_lint engine — every entry equals its head count.
BASELINE = {
    # 19 documented DriverParams model gains; display_staleness() migrated to
    # units::Seconds when the mitigation estimator started consuming it.
    "src/core/driver.hpp": 19,
    "src/util/filters.hpp": 5,
    "src/util/filters.cpp": 2,
    "src/sim/road.hpp": 4,
    "src/sim/road.cpp": 4,
    "src/trace/trace.hpp": 2,
    "src/sim/rpc.hpp": 1,
    "src/sim/frame.hpp": 1,
}

RAW_SUFFIX_RE = re.compile(
    r"\b(?:double|float)\s+[A-Za-z_][A-Za-z_0-9]*"
    r"_(?:ms|s|us|mps|kmh|mps2|bps|m)_?\b"
)

MAGIC_CONVERSION_RE = re.compile(
    r"\b1e3(?![0-9])"           # ms <-> s factor (1e300 sentinels excluded)
    r"|(?<![\d.])3\.6(?![\d])"  # km/h <-> m/s factor
    r"|\*\s*1000\.0\b"          # tc decimal kilo step
    r"|/\s*8\.0\b"              # bits -> bytes
)


class UnitsRule:
    name = "units"

    def __init__(self, baseline: dict[str, int] | None = None):
        self.baseline = BASELINE if baseline is None else baseline

    def check(self, tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        for sf in tree.files:
            if sf.rel in CONVERSION_LAYER:
                continue
            suffix_hits: list[Violation] = []
            for line_no, code in enumerate(sf.masked_lines, start=1):
                allowed = sf.allowed(line_no)
                raw = sf.raw_lines[line_no - 1].strip()
                if ("raw-unit-suffix" not in allowed
                        and RAW_SUFFIX_RE.search(code)):
                    suffix_hits.append(Violation(
                        "raw-unit-suffix", sf.rel, line_no, raw))
                if ("magic-conversion" not in allowed
                        and MAGIC_CONVERSION_RE.search(code)):
                    violations.append(Violation(
                        "magic-conversion", sf.rel, line_no, raw))

            budget = self.baseline.get(sf.rel, 0)
            if len(suffix_hits) > budget:
                violations.extend(suffix_hits)
                violations.append(Violation(
                    "raw-unit-suffix", sf.rel, 0,
                    f"ratchet: {len(suffix_hits)} raw-unit-suffix "
                    f"declarations, baseline allows {budget} — use the "
                    "units:: strong types"))
            elif len(suffix_hits) < budget:
                violations.append(Violation(
                    "raw-unit-suffix", sf.rel, 0,
                    f"ratchet: baseline {budget} but only {len(suffix_hits)} "
                    "raw-unit-suffix declarations remain — lower BASELINE in "
                    "tools/rdsim_lint/rules/units.py to lock in the progress"))
        return violations


def make_rule() -> UnitsRule:
    return UnitsRule()
