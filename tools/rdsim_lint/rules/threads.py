"""Thread-primitive lint (ctest `threads_lint`).

Clang's `-Wthread-safety` analysis only sees locks whose types carry
capability attributes, and libstdc++'s `std::mutex` carries none. The repo
therefore routes every lock through the annotated wrappers in
`src/util/thread_annotations.hpp` (`util::Mutex`, `util::MutexLock`); this
rule keeps raw primitives from creeping back in, because every raw
`std::mutex` is a hole in the analysis:

  raw-mutex   std::mutex / timed_mutex / recursive_mutex / shared_mutex /
              lock_guard / unique_lock / scoped_lock / condition_variable
              anywhere in src/ outside the wrapper header itself.
              (std::condition_variable_any is fine — it locks any lockable,
              including util::MutexLock, so waits stay inside annotated
              scopes.)

Escape: `// lint:allow(raw-mutex: reason)` for the rare interop site.
"""

from __future__ import annotations

import re

from ..engine import SourceTree, Violation

WRAPPER_HEADER = "src/util/thread_annotations.hpp"

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?!_any))\b"
)


class ThreadsRule:
    name = "threads"

    def check(self, tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        for sf in tree.files:
            if sf.rel == WRAPPER_HEADER:
                continue
            for line_no, code in enumerate(sf.masked_lines, start=1):
                if RAW_MUTEX_RE.search(code):
                    violations.append(Violation(
                        "raw-mutex", sf.rel, line_no,
                        sf.raw_lines[line_no - 1].strip()
                        + "  (use util::Mutex / util::MutexLock from "
                        "util/thread_annotations.hpp so clang thread-safety "
                        "analysis sees the lock)"))
        return violations


def make_rule() -> ThreadsRule:
    return ThreadsRule()
