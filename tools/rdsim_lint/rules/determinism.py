"""Determinism lint (ctest `determinism_lint`).

The testbed's reproducibility contract is that one seed fully determines a
campaign. This rule set fails the build when known nondeterminism hazards
enter first-party code:

  raw-rand        libc rand()/srand()/random() anywhere in src/
  random-device   std::random_device outside src/util/rng.*
  wall-clock      wall/monotonic clocks (std::chrono::*_clock, time(),
                  gettimeofday, clock_gettime, localtime, gmtime) in
                  simulation/step paths
  unordered-iter  std::unordered_map/set in src/ — iteration order is
                  implementation-defined and leaks into trace output
  uninit-member   serialized packet/frame/trace struct members without a
                  default member initializer (the bytes feed hashes and the
                  wire format, so indeterminate values break replay)

Ported onto the rdsim_lint engine: matching now runs on comment/string/
raw-string-aware masked text, and the uninit-member audit uses the shared
struct extractor instead of a line regex.
"""

from __future__ import annotations

import re

from ..engine import ConfigError, SourceTree, Violation

# Files whose structs cross a serialization or hashing boundary, and the
# structs audited in each. Members must carry default member initializers so
# field state is never indeterminate.
SERIALIZED_STRUCTS = {
    "src/net/packet.hpp": ["Packet", "QdiscStats"],
    "src/sim/frame.hpp": ["ActorSnapshot", "WorldFrame"],
    "src/sim/types.hpp": ["VehicleControl", "KinematicState", "BoundingBox",
                          "WeatherConfig"],
    "src/trace/trace.hpp": ["EgoSample", "OtherSample", "CollisionRecord",
                            "LaneInvasionRecord", "FaultRecord"],
}

RAW_RAND_RE = re.compile(
    r"(?<![\w:])(?:s?rand|random|rand_r|drand48|lrand48)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"std::random_device")
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system|steady|high_resolution)_clock"
    r"|(?<![\w:.])(?:time|gettimeofday|clock_gettime|clock|localtime|gmtime)\s*\("
)
UNORDERED_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)")


class DeterminismRule:
    name = "determinism"

    def __init__(self, serialized_structs: dict[str, list[str]] | None = None):
        self.serialized_structs = (SERIALIZED_STRUCTS
                                   if serialized_structs is None
                                   else serialized_structs)

    def check(self, tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        for sf in tree.files:
            is_rng_impl = sf.rel.startswith("src/util/rng")
            for line_no, code in enumerate(sf.masked_lines, start=1):
                def report(rule: str) -> None:
                    violations.append(Violation(
                        rule, sf.rel, line_no,
                        sf.raw_lines[line_no - 1].strip()))

                if RAW_RAND_RE.search(code):
                    report("raw-rand")
                if not is_rng_impl and RANDOM_DEVICE_RE.search(code):
                    report("random-device")
                if WALL_CLOCK_RE.search(code):
                    report("wall-clock")
                if UNORDERED_RE.search(code):
                    report("unordered-iter")
        violations.extend(self._audit_serialized(tree))
        return violations

    def _audit_serialized(self, tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        index = tree.struct_index()
        for rel, struct_names in self.serialized_structs.items():
            if tree.file(rel) is None:
                raise ConfigError(
                    f"{rel} listed in SERIALIZED_STRUCTS but missing from "
                    "the tree — update tools/rdsim_lint/rules/determinism.py")
            for struct_name in struct_names:
                matches = [s for s in index.find(struct_name)
                           if s.file == rel]
                if not matches:
                    raise ConfigError(
                        f"struct {struct_name} not found in {rel} "
                        "(SERIALIZED_STRUCTS is stale)")
                for struct in matches:
                    for member in struct.members:
                        if member.has_init:
                            continue
                        violations.append(Violation(
                            "uninit-member", rel, member.line,
                            f"{struct.name}::{member.name} is serialized but "
                            "lacks a default member initializer"))
        return violations


def make_rule() -> DeterminismRule:
    return DeterminismRule()
