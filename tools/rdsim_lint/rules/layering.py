"""Layering lint (ctest `layering_lint`).

The build graph is a DAG and the `#include` graph must mirror it. Each
src/ subdirectory is one layer; a file may include only files of its own
layer or a lower-ranked one:

    rank 0  base         src/util/thread_annotations.hpp  (dependency-free)
    rank 0  check-core   src/check/{contracts,hash,replay}.*  (includes base only)
    rank 1  util         src/util/
    rank 2  obs          src/obs/
    rank 3  net          src/net/
    rank 4  sim          src/sim/
    rank 5  trace        src/trace/
    rank 6  check-replay src/check/frame_hash.*  (hashes sim/trace state)
    rank 7  metrics      src/metrics/
    rank 8  mitigate     src/mitigate/
    rank 9  core         src/core/

(The check directory holds two layers: the dependency-free contract/hash/
replay primitives that everything may use, and the frame-hash replay checker
that sits above sim and trace. This mirrors the rdsim_check /
rdsim_check_replay split in src/CMakeLists.txt.)

Rules:

  layer-violation   file includes a header from a higher-ranked layer
                    (a back-edge; would make the dependency graph cyclic)
  include-cycle     a cycle in the file-level include graph, reported once
                    per cycle at its lexicographically-smallest file
  dangling-include  a quoted include that resolves to no file in the tree
  missing-include   a file names entities from layer namespace `X::` (or
                    `rdsim::X::`) without directly including any header of
                    that layer — it compiles only via transitive includes,
                    which header refactors then silently break

The rule keeps the full graph; `dot()` renders the layer-aggregated
dependency graph (violating edges in red) for the CI artifact.
"""

from __future__ import annotations

import re
from pathlib import PurePosixPath

from .. import cpp
from ..engine import ConfigError, SourceTree, Violation

#: directory name -> layer name
DIR_LAYER = {
    "check": "check-core",
    "util": "util",
    "obs": "obs",
    "net": "net",
    "sim": "sim",
    "trace": "trace",
    "metrics": "metrics",
    "mitigate": "mitigate",
    "core": "core",
}

#: per-file overrides of the directory mapping
FILE_LAYER = {
    "src/check/frame_hash.hpp": "check-replay",
    "src/check/frame_hash.cpp": "check-replay",
    # Dependency-free annotation macros; rank 0 so even check-core can carry
    # thread-safety annotations without inverting the check < util ordering.
    "src/util/thread_annotations.hpp": "base",
}

RANK = {
    "base": 0,
    "check-core": 0,
    "util": 1,
    "obs": 2,
    "net": 3,
    "sim": 4,
    "trace": 5,
    "check-replay": 6,
    "metrics": 7,
    "mitigate": 8,
    "core": 9,
}

#: namespace -> directory for the missing-include check. Only top-level
#: layer namespaces are mapped; sub-namespaces (units::, …) stay with their
#: header and are covered transitively by their layer's own hygiene.
NAMESPACE_DIR = {
    "check": "check",
    "util": "util",
    "obs": "obs",
    "net": "net",
    "sim": "sim",
    "trace": "trace",
    "metrics": "metrics",
    "mitigate": "mitigate",
    "core": "core",
}

_NS_USE_RE = re.compile(
    r"(?<![\w:])(?:rdsim::)?"
    r"(check|util|obs|net|sim|trace|metrics|mitigate|core)::"
)


def file_layer(rel: str) -> str | None:
    override = FILE_LAYER.get(rel)
    if override is not None:
        return override
    parts = PurePosixPath(rel).parts
    if len(parts) < 3 or parts[0] != "src":
        return None
    return DIR_LAYER.get(parts[1])


class LayeringRule:
    name = "layering"

    def __init__(self) -> None:
        self.notes: list[str] = []
        #: file-level include graph: rel -> [(line, included rel)]
        self.includes: dict[str, list[tuple[int, str]]] = {}
        #: layer-level aggregate: (src layer, dst layer) -> edge count
        self.layer_edges: dict[tuple[str, str], int] = {}
        #: layer-level edges that violate the DAG
        self.bad_layer_edges: set[tuple[str, str]] = set()

    # -- include resolution --------------------------------------------------

    @staticmethod
    def _resolve(including: str, path: str, tree: SourceTree) -> str | None:
        """Quoted includes are repo-relative ("net/packet.hpp" style) in this
        codebase, but tolerate sibling-relative too."""
        for candidate in (f"src/{path}",
                          str(PurePosixPath(including).parent / path)):
            if tree.file(candidate) is not None:
                return candidate
        return None

    def check(self, tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        self.includes = {}
        self.layer_edges = {}
        self.bad_layer_edges = set()

        for sf in tree.files:
            layer = file_layer(sf.rel)
            if layer is None:
                raise ConfigError(
                    f"{sf.rel} belongs to no known layer — extend DIR_LAYER "
                    "in tools/rdsim_lint/rules/layering.py and document the "
                    "new layer's rank in docs/correctness.md")
            resolved: list[tuple[int, str]] = []
            for line_no, path in cpp.parse_includes(sf.code_lines):
                target = self._resolve(sf.rel, path, tree)
                if target is None:
                    violations.append(Violation(
                        "dangling-include", sf.rel, line_no,
                        f'#include "{path}" resolves to no file under src/'))
                    continue
                resolved.append((line_no, target))
                target_layer = file_layer(target)
                key = (layer, target_layer)
                if layer != target_layer:
                    self.layer_edges[key] = self.layer_edges.get(key, 0) + 1
                if RANK[target_layer] > RANK[layer]:
                    self.bad_layer_edges.add(key)
                    violations.append(Violation(
                        "layer-violation", sf.rel, line_no,
                        f"{layer} (rank {RANK[layer]}) must not include "
                        f"{target} from layer {target_layer} "
                        f"(rank {RANK[target_layer]})"))
            self.includes[sf.rel] = resolved

        violations.extend(self._find_cycles())
        violations.extend(self._missing_includes(tree))
        return violations

    # -- cycles --------------------------------------------------------------

    def _find_cycles(self) -> list[Violation]:
        violations: list[Violation] = []
        WHITE, GREY, BLACK = 0, 1, 2
        color = {rel: WHITE for rel in self.includes}
        stack: list[str] = []
        reported: set[frozenset[str]] = set()

        def visit(rel: str) -> None:
            color[rel] = GREY
            stack.append(rel)
            for _line, target in self.includes.get(rel, ()):
                if color.get(target, BLACK) == WHITE:
                    visit(target)
                elif color.get(target) == GREY:
                    cycle = stack[stack.index(target):] + [target]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        anchor = min(cycle)
                        violations.append(Violation(
                            "include-cycle", anchor, 0,
                            "include cycle: " + " -> ".join(cycle)))
            stack.pop()
            color[rel] = BLACK

        for rel in sorted(self.includes):
            if color[rel] == WHITE:
                visit(rel)
        return violations

    # -- namespace-use hygiene -----------------------------------------------

    def _missing_includes(self, tree: SourceTree) -> list[Violation]:
        violations: list[Violation] = []
        for sf in tree.files:
            own_dir = PurePosixPath(sf.rel).parts[1]
            directly_included_dirs = {
                PurePosixPath(target).parts[1]
                for _line, target in self.includes.get(sf.rel, ())
            }
            # a .cpp gets its own header's includes for free only if it
            # includes that header — which the resolver already tracks, so no
            # special case is needed.
            first_use: dict[str, int] = {}
            for line_no, code in enumerate(sf.masked_lines, start=1):
                if "namespace" in code:
                    continue  # namespace declarations are not uses
                for m in _NS_USE_RE.finditer(code):
                    ns = m.group(1)
                    if ns not in first_use:
                        first_use[ns] = line_no
            for ns, line_no in sorted(first_use.items(),
                                      key=lambda kv: kv[1]):
                need_dir = NAMESPACE_DIR[ns]
                if need_dir == own_dir or need_dir in directly_included_dirs:
                    continue
                violations.append(Violation(
                    "missing-include", sf.rel, line_no,
                    f"uses {ns}:: but includes no header from src/{need_dir}/"
                    " — add the direct include instead of relying on "
                    "transitive includes"))
        return violations

    # -- DOT artifact ----------------------------------------------------------

    def dot(self) -> str:
        """Layer-aggregated dependency graph, violating edges in red."""
        lines = [
            "// rdsim layer dependency graph (generated by rdsim_lint)",
            "digraph rdsim_layers {",
            "  rankdir=BT;",
            '  node [shape=box, fontname="monospace"];',
        ]
        used = {l for edge in self.layer_edges for l in edge}
        for layer in sorted(used, key=lambda l: RANK[l]):
            lines.append(f'  "{layer}" [label="{layer}\\nrank {RANK[layer]}"];')
        for (src, dst), count in sorted(self.layer_edges.items()):
            style = ', color=red, penwidth=2' if (src, dst) in \
                self.bad_layer_edges else ''
            lines.append(
                f'  "{src}" -> "{dst}" [label="{count}"{style}];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def make_rule() -> LayeringRule:
    return LayeringRule()
