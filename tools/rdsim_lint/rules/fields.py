"""Hash-field-coverage lint (ctest `fields_lint`).

`src/core/campaign_fields.hpp` enumerates, once per struct, every field that
the campaign hash, serializer and deserializer fold. The one remaining way to
break the bit-exact-replay contract *silently* is to add a member to one of
those structs and forget to list it: the member escapes hashing and
serialization and nothing fails until two campaigns diverge.

This rule closes that gap statically:

  unhashed   a data member of a struct covered by campaign_fields.hpp that is
             neither folded by any field list nor explicitly annotated
             `// lint:allow(unhashed: reason)` on its declaration line

Coverage is computed from the field lists themselves, with no per-struct
configuration to drift:

  * every `template <...> // T: [const] Name  void x_fields(Ar& ar, T& v)`
    function is parsed; member paths `v.a.b.c` in its body mark `Name::a`
    covered, then recurse into the declared type of `a` for `b`, and so on —
    so nested config structs (EstimatorConfig, GovernorConfig, StateLimits…)
    are checked without being named anywhere;
  * `ar.vec(v.member, [](Ar& a, auto& e) { … e.x … })` resolves the element
    type of `member` from the struct index (std::vector<X> -> X) and treats
    the lambda body as covering X;
  * cross-function evidence merges: `r.mitigation.enabled` in run_fields
    covers MitigationSummary::enabled even though mitigation_summary_fields
    never touches it (it is the opt_block presence flag).

A struct is audited as soon as any field list touches it; every audited
member must then be covered or carry the `unhashed` escape with a reason.
"""

from __future__ import annotations

import re

from .. import cpp
from ..engine import ConfigError, SourceFile, SourceTree, Violation

FIELDS_FILE = "src/core/campaign_fields.hpp"

_T_HINT_RE = re.compile(r"//\s*T:\s*\[const\]\s*([\w:]+)")
_SIGNATURE_RE = re.compile(r"\bvoid\s+(\w+)\s*\(\s*Ar&\s*(\w+)\s*,\s*T&\s*(\w+)\s*\)")
_VEC_LAMBDA_RE = re.compile(
    r"\.vec\(\s*(\w+)\.((?:\w+\.)*\w+)\s*,\s*\[[^\]]*\]\s*"
    r"\(\s*Ar&\s*(\w+)\s*,\s*auto&\s*(\w+)\s*\)")
_LAMBDA_AR_RE = re.compile(r"\[[^\]]*\]\s*\(\s*Ar&\s*(\w+)\s*[,)]")
_PATH_RE = re.compile(r"\b([A-Za-z_]\w*)\.((?:\w+\.)*\w+)\b")


class FieldFunction:
    def __init__(self, name: str, struct_hint: str, param: str, body: str,
                 line: int):
        self.name = name
        self.struct_hint = struct_hint
        self.param = param
        self.body = body
        self.line = line


def parse_field_functions(sf: SourceFile) -> list[FieldFunction]:
    """Field-list functions with their `// T: [const] Struct` hints."""
    functions: list[FieldFunction] = []
    masked = sf.masked_text
    # Hints live in comments, so scan the raw text for them and associate
    # each with the next function signature in the masked text.
    for hint in _T_HINT_RE.finditer(sf.raw):
        sig = _SIGNATURE_RE.search(masked, hint.start())
        if sig is None:
            continue
        between = masked[hint.end():sig.start()]
        if between.count("\n") > 3:
            continue  # stray comment, not adjacent to a signature
        open_brace = masked.find("{", sig.end())
        if open_brace < 0:
            continue
        depth = 0
        end = open_brace
        for i in range(open_brace, len(masked)):
            if masked[i] == "{":
                depth += 1
            elif masked[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        line = masked.count("\n", 0, sig.start()) + 1
        functions.append(FieldFunction(
            name=sig.group(1), struct_hint=hint.group(1),
            param=sig.group(3), body=masked[open_brace + 1:end], line=line))
    return functions


class FieldsRule:
    name = "fields"

    def __init__(self, fields_file: str = FIELDS_FILE):
        self.fields_file = fields_file
        self.notes: list[str] = []

    # -- type resolution ---------------------------------------------------

    def _resolve(self, index: cpp.StructIndex, name: str) -> cpp.Struct | None:
        candidates = index.find(name)
        if not candidates:
            return None
        if len(candidates) > 1:
            raise ConfigError(
                f"struct name '{name}' is ambiguous across "
                f"{sorted({c.file for c in candidates})}; qualify the "
                "// T: hint in campaign_fields.hpp")
        return candidates[0]

    def _member_struct(self, index: cpp.StructIndex, struct: cpp.Struct,
                       member_name: str) -> cpp.Struct | None:
        for member in struct.members:
            if member.name == member_name:
                return self._resolve(index,
                                     cpp.simple_type_name(member.type))
        return None

    def _element_struct(self, index: cpp.StructIndex, struct: cpp.Struct,
                        path: list[str]) -> cpp.Struct | None:
        """Struct of the vector element at `path` below `struct`."""
        current = struct
        for component in path[:-1]:
            current = self._member_struct(index, current, component)
            if current is None:
                return None
        for member in current.members:
            if member.name == path[-1]:
                elem = cpp.element_type(member.type)
                if elem is None:
                    return None
                return self._resolve(index, cpp.simple_type_name(elem))
        return None

    # -- coverage ----------------------------------------------------------

    def _add_path(self, index: cpp.StructIndex, covered: dict,
                  struct: cpp.Struct, components: list[str]) -> None:
        if not components:
            return
        head = components[0]
        if not any(m.name == head for m in struct.members):
            return  # not a data member (method call, or would not compile)
        covered.setdefault(struct.qualified, set()).add(head)
        if len(components) > 1:
            nested = self._member_struct(index, struct, head)
            if nested is not None:
                self._add_path(index, covered, nested, components[1:])

    def check(self, tree: SourceTree) -> list[Violation]:
        sf = tree.file(self.fields_file)
        if sf is None:
            self.notes = [f"fields: {self.fields_file} not present — skipped"]
            return []
        index = tree.struct_index()
        functions = parse_field_functions(sf)
        if not functions:
            raise ConfigError(
                f"{self.fields_file} contains no '// T: [const] …' field-list "
                "functions — the fields lint has nothing to anchor on")

        covered: dict[str, set[str]] = {}   # qualified name -> member names
        audited: dict[str, cpp.Struct] = {}

        for fn in functions:
            root = self._resolve(index, fn.struct_hint)
            if root is None:
                raise ConfigError(
                    f"{self.fields_file}: function {fn.name} is hinted as "
                    f"'// T: [const] {fn.struct_hint}' but no such struct "
                    "exists in src/")
            audited[root.qualified] = root

            # archive parameter names never denote hashed objects
            archives = {"ar"}
            for m in _LAMBDA_AR_RE.finditer(fn.body):
                archives.add(m.group(1))

            # bindings: object parameter names -> struct they denote
            bindings: dict[str, cpp.Struct] = {fn.param: root}
            for m in _VEC_LAMBDA_RE.finditer(fn.body):
                outer, path, _ar, elem_param = (m.group(1), m.group(2),
                                                m.group(3), m.group(4))
                outer_struct = bindings.get(outer)
                if outer_struct is None:
                    continue
                elem = self._element_struct(index, outer_struct,
                                            path.split("."))
                if elem is None:
                    continue  # vector of scalars
                existing = bindings.get(elem_param)
                if existing is not None and existing is not elem:
                    raise ConfigError(
                        f"{self.fields_file}: lambda parameter "
                        f"'{elem_param}' in {fn.name} is reused for two "
                        "different element types; rename one")
                bindings[elem_param] = elem
                audited[elem.qualified] = elem

            for m in _PATH_RE.finditer(fn.body):
                binding, path = m.group(1), m.group(2)
                if binding in archives:
                    continue
                target = bindings.get(binding)
                if target is None:
                    continue
                self._add_path(index, covered, target, path.split("."))

        # every struct that received coverage is audited too (nested configs)
        for qualified in covered:
            if qualified not in audited:
                for structs in index.by_name.values():
                    for s in structs:
                        if s.qualified == qualified:
                            audited[qualified] = s

        violations: list[Violation] = []
        for qualified in sorted(audited):
            struct = audited[qualified]
            hashed = covered.get(qualified, set())
            for member in struct.members:
                if member.name in hashed:
                    continue
                violations.append(Violation(
                    "unhashed", struct.file, member.line,
                    f"{struct.name}::{member.name} is not folded by any "
                    f"field list in {self.fields_file} — add it to the "
                    "struct's *_fields function (campaign-hash-affecting!) "
                    "or annotate the member with "
                    "// lint:allow(unhashed: reason)"))
        return violations


def make_rule() -> FieldsRule:
    return FieldsRule()
