"""C++ source-text tooling shared by every rdsim lint rule.

Three layers, all deterministic and dependency-free:

  clean()           one-pass state machine producing two views of a file that
                    stay byte-aligned with the original: `masked` (comments
                    stripped AND string/char-literal contents blanked) and
                    `code` (comments stripped, string literals kept). Handles
                    line/block comments, char literals (including digit
                    separators like 1'000'000), escapes, and raw strings
                    R"delim(...)delim" — the cases the old per-line regex
                    lints could not.

  parse_includes()  `#include "..."` extraction from the `code` view.

  StructIndex       a lightweight struct/class member extractor over the
                    `masked` view: records every struct's members (name,
                    declared type, line, default-initializer presence) while
                    skipping member functions, nested-type bodies, using/
                    typedef/static/friend declarations and access specifiers.
                    Namespace and outer-struct context is tracked so indexed
                    names can be disambiguated.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Cleaning


@dataclass
class CleanText:
    """Two comment-free views of one file, byte-aligned with the original."""

    masked: str  #: comments stripped, string/char contents blanked
    code: str    #: comments stripped, string literals kept

    def masked_lines(self) -> list[str]:
        return self.masked.splitlines()

    def code_lines(self) -> list[str]:
        return self.code.splitlines()


_RAW_OPEN_RE = re.compile(r'R"([^ ()\\\t\n]{0,16})\(')


def clean(text: str) -> CleanText:
    """Strip comments; blank string/char contents in the masked view."""
    masked: list[str] = []
    code: list[str] = []
    i = 0
    n = len(text)

    def emit(ch: str) -> None:
        masked.append(ch)
        code.append(ch)

    def emit_string_char(ch: str) -> None:
        masked.append(ch if ch == "\n" else " ")
        code.append(ch)

    def emit_comment_char(ch: str) -> None:
        masked.append(ch if ch == "\n" else " ")
        code.append(ch if ch == "\n" else " ")

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""

        if ch == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                emit_comment_char(text[i])
                i += 1
            continue

        if ch == "/" and nxt == "*":  # block comment
            emit_comment_char(ch)
            emit_comment_char(nxt)
            i += 2
            while i < n:
                if text[i] == "*" and i + 1 < n and text[i + 1] == "/":
                    emit_comment_char("*")
                    emit_comment_char("/")
                    i += 2
                    break
                emit_comment_char(text[i])
                i += 1
            continue

        if ch == "R" and nxt == '"':  # raw string literal
            m = _RAW_OPEN_RE.match(text, i)
            if m is not None:
                delim = m.group(1)
                closer = ")" + delim + '"'
                end = text.find(closer, m.end())
                if end < 0:
                    end = n  # unterminated; treat rest of file as literal
                emit(ch)  # R
                emit('"')
                for j in range(i + 2, min(end + len(closer), n)):
                    emit_string_char(text[j])
                i = end + len(closer) if end < n else n
                continue

        if ch == '"':  # string literal
            emit(ch)
            i += 1
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n:
                    emit_string_char(text[i])
                    emit_string_char(text[i + 1])
                    i += 2
                    continue
                if text[i] == '"':
                    emit(text[i])
                    i += 1
                    break
                emit_string_char(text[i])
                i += 1
            continue

        if ch == "'":
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() or prev == "_":
                # digit separator (1'000'000) or suffix context — not a char
                emit(ch)
                i += 1
                continue
            emit(ch)
            i += 1
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n:
                    emit_string_char(text[i])
                    emit_string_char(text[i + 1])
                    i += 2
                    continue
                if text[i] == "'":
                    emit(text[i])
                    i += 1
                    break
                emit_string_char(text[i])
                i += 1
            continue

        emit(ch)
        i += 1

    return CleanText(masked="".join(masked), code="".join(code))


# --------------------------------------------------------------------------
# lint:allow escapes

# Grammar: `// lint:allow(rule)` or `// lint:allow(rule: reason)`. Multiple
# escapes may share one line. Rule names are kebab-case.
ALLOW_RE = re.compile(r"lint:allow\(([a-z][a-z0-9-]*)(?:\s*:[^)]*)?\)")


def allowed_rules(raw_line: str) -> set[str]:
    return set(ALLOW_RE.findall(raw_line))


# --------------------------------------------------------------------------
# Includes

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def parse_includes(code_lines: list[str]) -> list[tuple[int, str]]:
    """(line_no, path) for every quoted include, 1-based line numbers."""
    found: list[tuple[int, str]] = []
    for line_no, line in enumerate(code_lines, start=1):
        m = _INCLUDE_RE.match(line)
        if m is not None:
            found.append((line_no, m.group(1)))
    return found


# --------------------------------------------------------------------------
# Struct / member extraction


@dataclass
class Member:
    name: str
    type: str
    line: int          #: 1-based line of the declarator
    has_init: bool     #: default member initializer (`{...}` or `= ...`)


@dataclass
class Struct:
    name: str
    qualified: str     #: namespace/outer-struct qualified, '::'-joined
    file: str          #: repo-relative path
    line: int
    kind: str          #: "struct" | "class"
    members: list[Member] = field(default_factory=list)


# Annotation macros that may trail a member declarator; stripped before
# classification so `std::deque<T> q_ RDSIM_GUARDED_BY(mutex_);` still parses
# as a data member, not a function.
_ATTR_MACRO_RE = re.compile(r"\bRDSIM_[A-Z_]+\s*\([^()]*\)|\[\[[^\]]*\]\]")

_DECL_START_RE = re.compile(r"\b(struct|class)\s+([A-Za-z_]\w*)")
_NAMESPACE_RE = re.compile(r"\bnamespace\s+((?:[A-Za-z_]\w*)(?:::[A-Za-z_]\w*)*)?\s*\{")
_SKIP_KEYWORDS_RE = re.compile(r"\b(?:using|typedef|static|friend|operator|template)\b")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _line_of(offset: int, newline_offsets: list[int]) -> int:
    return bisect.bisect_right(newline_offsets, offset) + 1


class _StatementParser:
    """Splits a struct body into top-level statements and classifies them."""

    def __init__(self, masked: str, newline_offsets: list[int], rel: str):
        self.masked = masked
        self.newlines = newline_offsets
        self.rel = rel

    def parse_members(self, struct: Struct, body_start: int, body_end: int,
                      index: "StructIndex", context: list[str]) -> None:
        """Walk [body_start, body_end) collecting members; nested struct
        definitions recurse into the index with `context` extended."""
        i = body_start
        stmt_start = i
        paren_depth = 0
        saw_paren = False
        while i < body_end:
            ch = self.masked[i]
            if ch == "(":
                paren_depth += 1
                saw_paren = True
            elif ch == ")":
                paren_depth = max(0, paren_depth - 1)
            elif ch == ":" and paren_depth == 0:
                # access specifier (`public:`) — only when the statement so
                # far is exactly one of the three keywords.
                head = self.masked[stmt_start:i].strip()
                if head in ("public", "private", "protected"):
                    stmt_start = i + 1
                    saw_paren = False
            elif ch == "{":
                head = self.masked[stmt_start:i]
                nested = _DECL_START_RE.search(head)
                if (nested is not None and not saw_paren
                        and not re.search(r"\benum\s+(struct|class)?\s*$",
                                          head[:nested.start()])):
                    close = self._matching_brace(i, body_end)
                    # re-anchor the match against the full text so offsets
                    # and line numbers are absolute
                    abs_decl = _DECL_START_RE.search(
                        self.masked, stmt_start + nested.start(), i)
                    index._index_struct(self.rel, abs_decl, i, close, context)
                    i = close + 1
                    stmt_start = i
                    # swallow a trailing `;` (and any declarator — not used
                    # in this codebase — is intentionally not re-parsed)
                    while stmt_start < body_end and \
                            self.masked[stmt_start] in " \t\n;":
                        stmt_start += 1
                    i = stmt_start
                    saw_paren = False
                    continue
                if saw_paren or _SKIP_KEYWORDS_RE.search(head) or \
                        nested is not None or "enum" in head:
                    # function body / nested enum / lambda-ish — skip it
                    close = self._matching_brace(i, body_end)
                    i = close + 1
                    stmt_start = i
                    # function bodies need no trailing `;`
                    while stmt_start < body_end and \
                            self.masked[stmt_start] in " \t\n;":
                        stmt_start += 1
                    i = stmt_start
                    saw_paren = False
                    continue
                # brace initializer on a member — consume it, stay in stmt
                i = self._matching_brace(i, body_end) + 1
                continue
            elif ch == ";" and paren_depth == 0:
                self._classify(struct, stmt_start, i)
                stmt_start = i + 1
                saw_paren = False
            i += 1

    def _matching_brace(self, open_idx: int, limit: int) -> int:
        depth = 0
        i = open_idx
        while i < limit:
            if self.masked[i] == "{":
                depth += 1
            elif self.masked[i] == "}":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return limit - 1

    def _classify(self, struct: Struct, start: int, end: int) -> None:
        text = self.masked[start:end]
        stripped = _ATTR_MACRO_RE.sub(" ", text)
        if not stripped.strip():
            return
        if _SKIP_KEYWORDS_RE.search(stripped):
            return
        if "(" in self._outside_braces(stripped):
            return  # function / constructor declaration
        for name, has_init, rel_off in self._declarators(stripped):
            line = _line_of(start + rel_off, self.newlines)
            decl_type = self._declared_type(stripped)
            struct.members.append(Member(name, decl_type, line, has_init))

    @staticmethod
    def _outside_braces(text: str) -> str:
        out = []
        depth = 0
        for ch in text:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth = max(0, depth - 1)
            elif depth == 0:
                out.append(ch)
        return "".join(out)

    @staticmethod
    def _top_level_commas(text: str) -> list[int]:
        spots = []
        angle = brace = paren = 0
        for i, ch in enumerate(text):
            if ch == "<":
                angle += 1
            elif ch == ">":
                angle = max(0, angle - 1)
            elif ch == "{":
                brace += 1
            elif ch == "}":
                brace = max(0, brace - 1)
            elif ch == "(":
                paren += 1
            elif ch == ")":
                paren = max(0, paren - 1)
            elif ch == "," and angle == brace == paren == 0:
                spots.append(i)
        return spots

    def _declarators(self, text: str) -> list[tuple[str, bool, int]]:
        """(name, has_init, offset-in-text) per declarator in a member stmt."""
        chunks: list[tuple[int, str]] = []
        prev = 0
        for comma in self._top_level_commas(text):
            chunks.append((prev, text[prev:comma]))
            prev = comma + 1
        chunks.append((prev, text[prev:]))

        out: list[tuple[str, bool, int]] = []
        for base, chunk in chunks:
            # name = last identifier before any top-level `{` or `=`
            cut = len(chunk)
            angle = 0
            for i, ch in enumerate(chunk):
                if ch == "<":
                    angle += 1
                elif ch == ">":
                    angle = max(0, angle - 1)
                elif ch in "{=" and angle == 0:
                    cut = i
                    break
            head = chunk[:cut]
            idents = [m for m in _IDENT_RE.finditer(head)]
            if not idents:
                continue
            last = idents[-1]
            # skip array brackets: `double a[3]` — name is still `a`
            name = last.group(0)
            if name in ("const", "constexpr", "mutable", "volatile", "auto"):
                continue
            has_init = cut < len(chunk)
            out.append((name, has_init, base + last.start()))
        return out

    @staticmethod
    def _declared_type(text: str) -> str:
        """Everything before the last identifier of the first declarator."""
        cut = len(text)
        angle = 0
        for i, ch in enumerate(text):
            if ch == "<":
                angle += 1
            elif ch == ">":
                angle = max(0, angle - 1)
            elif ch in "{=" and angle == 0:
                cut = i
                break
        head = text[:cut]
        idents = list(_IDENT_RE.finditer(head))
        if len(idents) < 2:
            return head.strip()
        return head[:idents[-1].start()].strip().rstrip("&").strip()


class StructIndex:
    """All struct/class definitions found across a set of files."""

    def __init__(self) -> None:
        self.by_name: dict[str, list[Struct]] = {}

    def add_file(self, rel: str, masked: str) -> None:
        newline_offsets = [i for i, ch in enumerate(masked) if ch == "\n"]
        self._scan(rel, masked, 0, len(masked), [], newline_offsets)

    # -- lookup ------------------------------------------------------------

    def find(self, name: str) -> list[Struct]:
        """Match by simple or partially-qualified name (`net::StreamStats`)."""
        simple = name.split("::")[-1]
        candidates = self.by_name.get(simple, [])
        if len(candidates) <= 1 or "::" not in name:
            return candidates
        suffix = name
        narrowed = [s for s in candidates
                    if s.qualified.endswith(suffix) or s.qualified == suffix]
        return narrowed or candidates

    # -- scanning ----------------------------------------------------------

    def _scan(self, rel: str, masked: str, start: int, end: int,
              context: list[str], newline_offsets: list[int]) -> None:
        """Find namespace blocks and struct definitions in [start, end)."""
        self._newlines = newline_offsets
        i = start
        while i < end:
            ns = _NAMESPACE_RE.search(masked, i, end)
            decl = _DECL_START_RE.search(masked, i, end)
            if ns is None and decl is None:
                return
            if decl is None or (ns is not None and ns.start() < decl.start()):
                body_open = masked.index("{", ns.start())
                close = self._match(masked, body_open, end)
                parts = (ns.group(1) or "").split("::") if ns.group(1) else []
                self._scan(rel, masked, body_open + 1, close,
                           context + parts, newline_offsets)
                i = close + 1
                continue
            # struct/class decl — find `{` or `;` first
            if self._preceded_by_enum(masked, decl.start()):
                i = decl.end()
                continue
            j = decl.end()
            while j < end and masked[j] not in "{;(":
                j += 1
            if j >= end or masked[j] != "{":
                i = decl.end()
                continue
            close = self._match(masked, j, end)
            self._index_struct(rel, decl, j, close, context)
            i = close + 1

    @staticmethod
    def _preceded_by_enum(masked: str, at: int) -> bool:
        head = masked[max(0, at - 16):at]
        return bool(re.search(r"\benum\s+$", head))

    @staticmethod
    def _match(masked: str, open_idx: int, limit: int) -> int:
        depth = 0
        for i in range(open_idx, limit):
            if masked[i] == "{":
                depth += 1
            elif masked[i] == "}":
                depth -= 1
                if depth == 0:
                    return i
        return limit - 1

    def _index_struct(self, rel: str, decl: "re.Match[str]", body_open: int,
                      body_close: int, context: list[str]) -> None:
        masked = decl.string
        name = decl.group(2)
        qualified = "::".join(context + [name])
        struct = Struct(name=name, qualified=qualified, file=rel,
                        line=_line_of(decl.start(), self._newlines),
                        kind=decl.group(1))
        parser = _StatementParser(masked, self._newlines, rel)
        parser.parse_members(struct, body_open + 1, body_close, self,
                             context + [name])
        self.by_name.setdefault(name, []).append(struct)


VECTOR_RE = re.compile(r"^(?:std::)?vector\s*<\s*(.+?)\s*>$")


def element_type(type_str: str) -> str | None:
    """`std::vector<X>` -> `X`, else None."""
    m = VECTOR_RE.match(type_str.strip())
    return m.group(1) if m is not None else None


def simple_type_name(type_str: str) -> str:
    """Strip qualifiers/namespaces: `const net::StreamStats&` -> StreamStats."""
    t = type_str.strip()
    t = re.sub(r"\b(?:const|mutable|volatile)\b", " ", t)
    t = t.replace("&", " ").replace("*", " ").strip()
    return t.split("::")[-1].strip()
