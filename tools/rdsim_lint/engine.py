"""Engine for rdsim_lint: file loading, escapes, reports, rule running.

A rule is any object with a `name` attribute and a
`check(tree: SourceTree) -> list[Violation]` method. The engine loads the
`src/` tree once (raw lines plus the two cleaned views from cpp.clean()),
runs each rule, drops violations whose line carries a matching
`// lint:allow(rule[: reason])` escape, and renders text / JSON reports.

Exit-code contract (shared by cli.py and the legacy shims):
  0 clean · 1 violations · 2 configuration/usage error (ConfigError).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from . import cpp

SOURCE_GLOBS = ("*.hpp", "*.cpp")


class ConfigError(Exception):
    """A lint's repo-specific configuration no longer matches the tree."""


@dataclass
class Violation:
    rule: str
    file: str      #: repo-relative path ('' for tree-wide findings)
    line: int      #: 1-based; 0 for file/tree-wide findings
    message: str

    def __str__(self) -> str:
        where = f"{self.file}:{self.line}" if self.line else (self.file or "-")
        return f"{where}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "message": self.message}


class SourceFile:
    def __init__(self, root: Path, path: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.raw = path.read_text()
        self.raw_lines = self.raw.splitlines()
        cleaned = cpp.clean(self.raw)
        #: comments stripped AND string/char contents blanked
        self.masked_lines = cleaned.masked_lines()
        self.masked_text = cleaned.masked
        #: comments stripped, string literals kept (for rules *about* strings)
        self.code_lines = cleaned.code_lines()
        self._allows: dict[int, set[str]] = {}
        for line_no, raw_line in enumerate(self.raw_lines, start=1):
            rules = cpp.allowed_rules(raw_line)
            if rules:
                self._allows[line_no] = rules

    def allowed(self, line_no: int) -> set[str]:
        return self._allows.get(line_no, set())


class SourceTree:
    """All first-party sources under <root>/src, loaded once."""

    def __init__(self, root: Path):
        self.root = root
        src = root / "src"
        if not src.is_dir():
            raise ConfigError(f"no src/ directory under {root}")
        paths: list[Path] = []
        for glob in SOURCE_GLOBS:
            paths.extend(src.rglob(glob))
        self.files = [SourceFile(root, p) for p in sorted(paths)]
        self._by_rel = {f.rel: f for f in self.files}
        self._struct_index: cpp.StructIndex | None = None

    def file(self, rel: str) -> SourceFile | None:
        return self._by_rel.get(rel)

    def struct_index(self) -> cpp.StructIndex:
        """Struct/member index over every header (built lazily, shared)."""
        if self._struct_index is None:
            index = cpp.StructIndex()
            for f in self.files:
                if f.rel.endswith(".hpp"):
                    index.add_file(f.rel, f.masked_text)
            self._struct_index = index
        return self._struct_index


@dataclass
class Report:
    root: str
    rules: list[str]
    violations: list[Violation]
    notes: list[str] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.rule] = out.get(v.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": "rdsim.lint/1",
                "root": self.root,
                "rules": self.rules,
                "clean": not self.violations,
                "counts": self.counts(),
                "violations": [v.to_json() for v in self.violations],
                "notes": self.notes,
            },
            indent=2) + "\n"


def run_rules(tree: SourceTree, rules: list) -> Report:
    """Run rules and apply line-level lint:allow escapes uniformly."""
    violations: list[Violation] = []
    notes: list[str] = []
    for rule in rules:
        found = rule.check(tree)
        for v in found:
            sf = tree.file(v.file)
            if sf is not None and v.rule in sf.allowed(v.line):
                continue
            violations.append(v)
        notes.extend(getattr(rule, "notes", []))
    return Report(root=str(tree.root), rules=[r.name for r in rules],
                  violations=violations, notes=notes)
