"""rdsim_lint — shared C++-aware lint framework for the rdsim repository.

One engine (tools/rdsim_lint/engine.py) owns file loading, comment/string/
raw-string-aware cleaning, `// lint:allow(rule[: reason])` escapes, baselines,
and JSON violation reports. Individual analyses live in tools/rdsim_lint/rules/
and are registered by name; `cli.py` is the single entry point wired into
ctest and CI. See docs/correctness.md ("Static analysis") for the rule
catalogue and escape grammar.
"""

from .engine import ConfigError, SourceFile, SourceTree, Violation, run_rules

__all__ = [
    "ConfigError",
    "SourceFile",
    "SourceTree",
    "Violation",
    "run_rules",
]
