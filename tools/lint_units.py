#!/usr/bin/env python3
"""Units lint for rdsim's src/ tree (wired into ctest as `units_lint`).

`src/util/units.hpp` makes physical units part of the type system: Seconds,
Millis, Meters, MetersPerSecond, BytesPerSecond, Probability. This lint keeps
the migration from regressing:

  rule `raw-unit-suffix`  : a raw `double`/`float` declaration whose name ends
                            in a unit suffix (_ms, _s, _us, _mps, _kmh, _mps2,
                            _bps, _m — including trailing-underscore members
                            like `tau_s_`). New code must use the strong types;
                            a suffix-on-double is the pre-migration idiom.
  rule `magic-conversion` : hand-written unit-conversion constants outside the
                            units layer — `1e3` (ms<->s), `3.6` (km/h<->m/s),
                            `* 1000.0` / `/ 8.0` (tc bit-rate family). Every
                            conversion factor must live in src/util/units.hpp
                            (or src/util/time.hpp for the integer-microsecond
                            clock) so it exists exactly once.

The suffix rule is a *ratchet*: files listed in BASELINE keep their audited
count of deliberate raw declarations (wire formats, the DriverParams model
whose gains are documented per-field, dimensionless filter cores). A file may
go below its baseline (tighten the entry when it does) but never above, and
files not listed must be clean.

A line can be suppressed with a trailing `// lint:allow(<rule>)` comment.
Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.hpp", "*.cpp")

# Files allowed to contain conversion constants: the units layer itself and
# the integer-microsecond virtual clock it is built on.
CONVERSION_LAYER = {
    "src/util/units.hpp",
    "src/util/units.cpp",
    "src/util/time.hpp",
}

# Audited raw-suffix declaration counts (matching lines per file). These are
# deliberate: serialized wire/trace formats stay raw doubles (stable layout,
# wrapped at call sites), DriverParams documents each gain's unit per field,
# filters and the road builder are generic numeric utilities. Ratchet: lower
# these when a file migrates further; never raise one.
BASELINE = {
    # 19 documented DriverParams model gains; display_staleness() migrated to
    # units::Seconds when the mitigation estimator started consuming it.
    "src/core/driver.hpp": 19,
    "src/util/filters.hpp": 5,
    "src/util/filters.cpp": 2,
    "src/sim/road.hpp": 4,
    "src/sim/road.cpp": 4,
    "src/trace/trace.hpp": 2,
    "src/sim/rpc.hpp": 1,
    "src/sim/frame.hpp": 1,
}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

RAW_SUFFIX_RE = re.compile(
    r"\b(?:double|float)\s+[A-Za-z_][A-Za-z_0-9]*"
    r"_(?:ms|s|us|mps|kmh|mps2|bps|m)_?\b"
)

MAGIC_CONVERSION_RE = re.compile(
    r"\b1e3(?![0-9])"          # ms <-> s factor (1e300 sentinels excluded)
    r"|(?<![\d.])3\.6(?![\d])"  # km/h <-> m/s factor
    r"|\*\s*1000\.0\b"          # tc decimal kilo step
    r"|/\s*8\.0\b"              # bits -> bytes
)


def strip_comments_and_strings(line: str) -> str:
    """Remove // comments and string/char literal contents (keeps quotes)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Violation:
    def __init__(self, rule: str, path: Path, line_no: int, text: str):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.text = text

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.text.strip()}"


def scan_file(path: Path, rel: str) -> tuple[list[Violation], list[Violation]]:
    """Returns (hard violations, raw-suffix hits subject to the ratchet)."""
    hard: list[Violation] = []
    suffix_hits: list[Violation] = []
    in_block_comment = False
    in_conversion_layer = rel in CONVERSION_LAYER

    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        allowed = set(ALLOW_RE.findall(raw))

        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2:]
        code = strip_comments_and_strings(line)

        if (not in_conversion_layer and "raw-unit-suffix" not in allowed
                and RAW_SUFFIX_RE.search(code)):
            suffix_hits.append(Violation("raw-unit-suffix", path, line_no, raw))
        if (not in_conversion_layer and "magic-conversion" not in allowed
                and MAGIC_CONVERSION_RE.search(code)):
            hard.append(Violation("magic-conversion", path, line_no, raw))

    return hard, suffix_hits


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root containing src/")
    args = parser.parse_args()

    src = args.root / "src"
    if not src.is_dir():
        print(f"units lint: no src/ under {args.root}", file=sys.stderr)
        return 2

    violations: list[Violation] = []
    ratchet_errors: list[str] = []

    for glob in SOURCE_GLOBS:
        for path in sorted(src.rglob(glob)):
            rel = path.relative_to(args.root).as_posix()
            hard, suffix_hits = scan_file(path, rel)
            violations.extend(hard)

            budget = BASELINE.get(rel, 0)
            if len(suffix_hits) > budget:
                violations.extend(suffix_hits)
                ratchet_errors.append(
                    f"{rel}: {len(suffix_hits)} raw-unit-suffix declarations, "
                    f"baseline allows {budget} — use the units:: strong types")
            elif len(suffix_hits) < budget:
                ratchet_errors.append(
                    f"{rel}: baseline {budget} but only {len(suffix_hits)} "
                    f"raw-unit-suffix declarations remain — lower BASELINE in "
                    f"tools/lint_units.py to lock in the progress")

    for v in violations:
        print(v)
    for msg in ratchet_errors:
        print(f"ratchet: {msg}")
    if violations or ratchet_errors:
        print(f"\nunits lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("units lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
