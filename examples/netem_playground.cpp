// NETEM playground: the network substrate by itself.
//
// Issues the same tc command lines the paper's rig used against the
// emulated loopback device, pushes a reliable stream across it, and prints
// what each disturbance does to delivery latency and retransmissions.
//
//   usage: netem_playground ["netem args"]
//   e.g.:  netem_playground "delay 50ms 10ms loss 2%"
#include <cstdio>
#include <string>

#include "net/reliable_stream.hpp"
#include "util/stats.hpp"

using namespace rdsim;
using util::Duration;
using util::TimePoint;

namespace {

void run_with_rule(const std::string& rule) {
  net::TrafficControl tc;
  net::Channel channel{tc, "lo"};
  net::PacketRouter router{channel};
  net::StreamConfig cfg;
  cfg.mtu = 65000;
  net::ReliableStream stream{router, channel, 1, net::LinkDirection::kDownlink, cfg};

  if (!rule.empty()) {
    const std::string command = "tc qdisc add dev lo root netem " + rule;
    std::printf("$ %s\n", command.c_str());
    tc.execute(command);
  } else {
    std::printf("$ (no rule: default pfifo)\n");
  }

  // Send 30 fps of 256 KB "frames" for five seconds.
  TimePoint now;
  util::RunningStats latency_ms;
  int delivered = 0;
  std::int64_t next_frame_us = 0;
  while (now.to_seconds() < 5.0) {
    if (now.count_micros() >= next_frame_us) {
      stream.send_message(net::Payload(128, 0x42), 256000, now);
      next_frame_us += 33333;
    }
    router.poll(now);
    stream.step(now);
    while (auto msg = stream.pop_delivered()) {
      latency_ms.add(msg->latency().to_millis());
      ++delivered;
    }
    now += Duration::millis(1);
  }

  const auto& s = stream.stats();
  std::printf("  delivered %d frames | latency mean %.1f ms (min %.1f, max %.1f)\n",
              delivered, latency_ms.mean(), latency_ms.min(), latency_ms.max());
  std::printf("  retransmits: %llu rto + %llu fast | srtt %.1f ms | acks %llu\n\n",
              static_cast<unsigned long long>(s.retransmits_rto),
              static_cast<unsigned long long>(s.retransmits_fast), s.srtt.value(),
              static_cast<unsigned long long>(s.acks_sent));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    run_with_rule(argv[1]);
    return 0;
  }
  std::printf("netem playground: a TCP-like stream under each paper fault\n\n");
  for (const char* rule :
       {"", "delay 5ms", "delay 25ms", "delay 50ms", "loss 2%", "loss 5%",
        "delay 50ms 10ms distribution normal loss 2%", "loss gemodel 1% 10%",
        "rate 30mbit", "corrupt 2%", "duplicate 5%", "delay 40ms reorder 25% gap 5"}) {
    run_with_rule(rule);
  }
  return 0;
}
