// Offline analysis CLI: reads the §V.F CSV logs written by scenario_lab /
// full_campaign (or by an external rig using the same schema) and prints the
// full metric report — the pipeline the paper ran over its recorded data.
//
//   usage: analyze_trace <stem>            (expects <stem>_ego.csv,
//                                           <stem>_others.csv,
//                                           <stem>_events.csv)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "metrics/extended.hpp"
#include "metrics/srr.hpp"
#include "metrics/safety.hpp"

using namespace rdsim;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: analyze_trace <stem>\n");
    return 1;
  }
  const std::string stem = argv[1];
  const auto run = trace::RunTrace::from_csv(slurp(stem + "_ego.csv"),
                                             slurp(stem + "_others.csv"),
                                             slurp(stem + "_events.csv"));
  if (run.ego.empty()) {
    std::fprintf(stderr, "no ego samples in %s_ego.csv\n", stem.c_str());
    return 1;
  }

  std::printf("trace %s: %.1f s, %zu ego samples, %zu other-actor samples\n",
              stem.c_str(), run.duration_s(), run.ego.size(), run.others.size());

  metrics::TtcAnalyzer ttc;
  const auto series = ttc.series(run);
  const auto ts = ttc.summarize(series);
  if (ts.valid()) {
    std::printf("TTC:     min %.2f avg %.2f max %.2f s | %zu samples, %zu < 6 s "
                "(TET %.1f s)\n",
                ts.min.value(), ts.avg.value(), ts.max.value(), ts.samples, ts.violations,
                metrics::time_exposed_ttc(series, units::Seconds{6.0}, units::Seconds{0.05})
                    .value());
  } else {
    std::printf("TTC:     no lead-following samples\n");
  }

  metrics::SrrAnalyzer srr;
  const auto sr = srr.analyze(run);
  std::printf("SRR:     %.1f reversals/min (%zu reversals)\n", sr.rate_per_min,
              sr.reversals);

  const auto entropy = metrics::steering_entropy(run);
  if (entropy.valid()) {
    std::printf("entropy: %.2f bit (alpha %.4f)\n", entropy.entropy, entropy.alpha);
  }

  const auto driving = metrics::analyze_driving(run);
  std::printf("speed:   mean %.1f max %.1f m/s | brake applications %zu\n",
              driving.speed.mean(), driving.speed.max(), driving.brake_applications);
  std::printf("lane:    %zu invasions (%zu solid)\n", driving.lane_invasions,
              driving.solid_line_invasions);

  const auto headway = metrics::headway_distribution(run);
  if (headway.valid()) {
    std::printf("headway: median %.2f s | below 2 s %.0f%% | below 1 s %.0f%%\n",
                headway.median.value(), 100.0 * headway.below_2s, 100.0 * headway.below_1s);
  }

  const auto reactions = metrics::brake_reactions(run);
  if (!reactions.empty()) {
    double sum = 0.0;
    for (const auto& r : reactions) sum += r.reaction.value();
    std::printf("brake reaction: %zu episodes, mean %.2f s\n", reactions.size(),
                sum / static_cast<double>(reactions.size()));
  }

  const auto collisions = metrics::analyze_collisions(run);
  std::printf("collisions: %zu\n", collisions.total);
  for (const auto& c : collisions.collisions) {
    std::printf("  t=%.1f s vs %s%s%s\n", c.record.t, c.record.other_kind.c_str(),
                c.fault_active ? " during fault " : "",
                c.fault_active ? c.fault_label.c_str() : "");
  }
  const auto windows = run.fault_windows();
  if (!windows.empty()) {
    std::printf("fault windows:\n");
    for (const auto& w : windows) {
      std::printf("  %-6s %s  %.1f - %.1f s\n", w.label.c_str(), w.fault_type.c_str(),
                  w.start, w.stop);
    }
  }
  return 0;
}
