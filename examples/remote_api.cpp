// CARLA-client-style usage of the simulator's RPC API: connect, spawn road
// users, set the weather, subscribe to the frame stream, and drive the ego
// with a trivial keyboard-free controller — all across the emulated network,
// with a netem rule injected halfway through to show meta-commands and
// frames degrading together.
#include <cstdio>

#include "sim/rpc.hpp"

using namespace rdsim;
using util::Duration;
using util::TimePoint;

int main() {
  sim::World world{sim::make_town05_route()};
  net::TrafficControl tc;
  net::Channel channel{tc, "lo"};
  net::PacketRouter router{channel};
  sim::RpcTransport transport{router, channel};
  sim::SimServer server{world, transport};
  server.set_frame_wire_bytes(500000);
  sim::SimClient client{transport};

  TimePoint now;
  auto pump = [&](Duration d) {
    const TimePoint end = now + d;
    while (now < end) {
      now += Duration::millis(1);
      world.step(units::Seconds{0.001});
      router.poll(now);
      server.step(now);
      client.step(now);
    }
  };
  auto wait_for = [&](std::uint32_t id) {
    for (int i = 0; i < 10000; ++i) {
      if (auto resp = client.take_response(id)) return *resp;
      pump(Duration::millis(1));
    }
    std::fprintf(stderr, "rpc timeout\n");
    std::exit(1);
  };

  std::printf("connecting...\n");
  wait_for(client.hello());

  std::printf("spawning ego + lead vehicle, switching to night...\n");
  const auto ego = wait_for(client.spawn_vehicle(sim::ActorKind::kVehicle, 0.0, 0.0,
                                                 8.0, "ego"));
  const auto lead = wait_for(client.spawn_vehicle(sim::ActorKind::kVehicle, 60.0, 0.0,
                                                  8.0, "lead"));
  world.designate_ego(ego.actor);
  sim::WeatherConfig weather;
  weather.night = true;
  wait_for(client.set_weather(weather));
  wait_for(client.subscribe_frames(20.0));

  std::printf("driving for 20 s; injecting 'netem delay 100ms' at t=10 s...\n\n");
  int frames = 0;
  double worst_gap_ms = 0.0;
  TimePoint last_frame = now;
  bool injected = false;
  while (now.to_seconds() < 20.0) {
    if (!injected && now.to_seconds() >= 10.0) {
      tc.execute("tc qdisc add dev lo root netem delay 100ms");
      injected = true;
      std::printf("t=%.1fs  injected delay 100ms (watch the frame gaps)\n",
                  now.to_seconds());
    }
    if (auto frame = client.take_frame()) {
      ++frames;
      worst_gap_ms = std::max(worst_gap_ms, (now - last_frame).to_millis());
      last_frame = now;
      // A minimal remote controller: keep ~10 m/s using the frame's own ego
      // state (stale under the fault, exactly like the real thing).
      sim::VehicleControl c;
      const double speed = frame->ego.state.velocity.norm();
      c.throttle = speed < 10.0 ? 0.5 : 0.0;
      client.apply_control(ego.actor, c);
    }
    pump(Duration::millis(5));
  }
  (void)lead;
  std::printf("\nreceived %d frames; worst inter-frame gap %.0f ms\n", frames,
              worst_gap_ms);
  std::printf("server served %llu requests, streamed %llu frames\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.frames_streamed()));
  const auto snap = wait_for(client.get_snapshot());
  if (snap.ok && snap.snapshot) {
    std::printf("final snapshot: ego at (%.1f, %.1f), night=%s\n",
                snap.snapshot->ego.state.position.x, snap.snapshot->ego.state.position.y,
                snap.snapshot->weather.night ? "true" : "false");
  }
  return 0;
}
