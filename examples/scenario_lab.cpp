// Scenario lab: drive one scenario with one subject under one fault and
// write the paper's §V.F CSV logs next to a metric summary.
//
//   usage: scenario_lab [scenario] [subject 1-12] [fault] [value]
//     scenario: route | following | slalom | overtake   (default: slalom)
//     fault:    none | delay | loss                     (default: none)
//   e.g.:  scenario_lab slalom 5 loss 0.05
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/teleop.hpp"
#include "metrics/safety.hpp"
#include "metrics/srr.hpp"
#include "metrics/ttc.hpp"

using namespace rdsim;

int main(int argc, char** argv) {
  const std::string scenario_name = argc > 1 ? argv[1] : "slalom";
  const int subject_idx = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::string fault_kind = argc > 3 ? argv[3] : "none";
  const double fault_value = argc > 4 ? std::atof(argv[4]) : 0.0;

  sim::Scenario scenario;
  if (scenario_name == "route") {
    scenario = sim::make_test_route_scenario();
  } else if (scenario_name == "following") {
    scenario = sim::make_following_scenario();
  } else if (scenario_name == "overtake") {
    scenario = sim::make_overtake_scenario();
  } else {
    scenario = sim::make_slalom_scenario();
  }

  const auto roster = core::make_roster();
  if (subject_idx < 1 || subject_idx > 12) {
    std::fprintf(stderr, "subject must be 1..12\n");
    return 1;
  }
  const auto& profile = roster[static_cast<std::size_t>(subject_idx - 1)];

  core::RunConfig rc;
  rc.run_id = profile.id + "-" + scenario.name;
  rc.subject_id = profile.id;
  rc.driver = profile.driver;
  rc.seed = profile.seed;
  if (fault_kind == "delay") {
    rc.fault_injected = true;
    for (const auto& poi : scenario.pois) {
      rc.plan.push_back({poi.name, {net::FaultKind::kDelay, fault_value}});
    }
  } else if (fault_kind == "loss") {
    rc.fault_injected = true;
    for (const auto& poi : scenario.pois) {
      rc.plan.push_back({poi.name, {net::FaultKind::kPacketLoss, fault_value}});
    }
  }

  std::printf("running %s with %s (%s %s)...\n", scenario.name.c_str(),
              profile.id.c_str(), fault_kind.c_str(),
              argc > 4 ? argv[4] : "-");
  core::TeleopSession session{std::move(rc), scenario};
  const auto result = session.run();

  // §V.F logging: ego channel, other vehicles, events (collisions, lane
  // invasions, fault injections).
  const std::string stem = profile.id + "_" + scenario.name;
  std::ofstream ego{stem + "_ego.csv"};
  std::ofstream others{stem + "_others.csv"};
  std::ofstream events{stem + "_events.csv"};
  result.trace.write_csv(ego, others, events);
  std::printf("wrote %s_{ego,others,events}.csv\n\n", stem.c_str());

  metrics::TtcAnalyzer ttc;
  metrics::SrrAnalyzer srr;
  const auto ttc_stats = ttc.summarize(ttc.series(result.trace));
  const auto srr_stats = srr.analyze(result.trace);
  const auto driving = metrics::analyze_driving(result.trace);

  std::printf("run:        %s in %.1f s (%s)\n", result.completed ? "completed" : "DNF",
              result.duration.value(), result.trace.run_id.c_str());
  if (ttc_stats.valid()) {
    std::printf("TTC:        min %.2f avg %.2f max %.2f s (%zu samples, %zu below 6 s)\n",
                ttc_stats.min, ttc_stats.avg, ttc_stats.max, ttc_stats.samples,
                ttc_stats.violations);
  }
  std::printf("SRR:        %.1f reversals/min\n", srr_stats.rate_per_min);
  std::printf("speed:      mean %.1f m/s, max %.1f m/s\n", driving.speed.mean(),
              driving.speed.max());
  std::printf("events:     %zu collisions, %zu lane invasions (%zu solid)\n",
              result.trace.collisions.size(), driving.lane_invasions,
              driving.solid_line_invasions);
  std::printf("video:      %llu frames shown, frozen %.1f%%, QoE %.1f/5\n",
              static_cast<unsigned long long>(result.frames_displayed),
              100.0 * result.qoe.frozen_fraction(), result.qoe.score());
  return 0;
}
