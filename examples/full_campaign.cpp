// Full §V test process: 12 subjects x (golden run + faulty run) with
// randomized fault plans, questionnaire collection, and every paper table
// printed at the end. Optionally dumps all raw traces as CSV.
//
//   usage: full_campaign [--dump-traces] [--workers N] [seed]
//
// --workers N runs the subjects on the thread-pool campaign runner (N=0
// means hardware concurrency); the result — including the campaign hash
// printed at the end — is bit-identical to the serial run.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/campaign_hash.hpp"
#include "core/report.hpp"

using namespace rdsim;

int main(int argc, char** argv) {
  bool dump = false;
  bool parallel = false;
  std::size_t workers = 0;
  core::ExperimentConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump-traces") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      parallel = true;
      workers = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      cfg.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  std::printf("running campaign (seed %llu): 12 subjects, golden + faulty runs%s...\n\n",
              static_cast<unsigned long long>(cfg.seed),
              parallel ? " (parallel)" : "");
  core::ExperimentHarness harness{cfg};
  const auto campaign =
      parallel ? harness.run_campaign_parallel(workers) : harness.run_campaign();

  std::fputs(core::report::render_table1(cfg.rds.station).c_str(), stdout);
  std::printf("\n");
  std::fputs(core::report::render_table2(campaign).c_str(), stdout);
  std::printf("\n");
  std::fputs(core::report::render_table3(campaign).c_str(), stdout);
  std::printf("\n");
  std::fputs(core::report::render_table4(campaign).c_str(), stdout);
  std::printf("\n");
  std::fputs(core::report::render_collision_analysis(campaign).c_str(), stdout);
  std::printf("\n");
  std::fputs(core::report::render_questionnaire(campaign).c_str(), stdout);

  if (dump) {
    for (const auto& subject : campaign.subjects) {
      for (const auto* run : {&subject.golden, &subject.faulty}) {
        const std::string stem = run->trace.run_id;
        std::ofstream ego{stem + "_ego.csv"};
        std::ofstream others{stem + "_others.csv"};
        std::ofstream events{stem + "_events.csv"};
        run->trace.write_csv(ego, others, events);
      }
    }
    std::printf("\nwrote 24 x 3 trace CSV files to the working directory\n");
  }
  std::printf("\ncampaign hash: %016llx\n",
              static_cast<unsigned long long>(check::campaign_hash(campaign)));
  return 0;
}
