// Quickstart: one remote-driving run over an emulated network.
//
// Runs the vehicle-following scenario twice with the same synthetic driver:
// once with a clean network and once with a `netem loss 5%` rule active
// while following the lead vehicle, then prints the safety metrics the
// paper uses (TTC, SRR, collisions) side by side.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/report.hpp"

using namespace rdsim;

namespace {

core::RunResult drive(bool faulty) {
  core::RunConfig rc;
  rc.run_id = faulty ? "demo-FI" : "demo-NFI";
  rc.subject_id = "demo";
  rc.fault_injected = faulty;
  if (faulty) {
    rc.plan.push_back({"following", {net::FaultKind::kPacketLoss, 0.05}});
  }
  rc.driver = core::make_roster().at(4).driver;  // T5's parameters
  rc.seed = 42;
  core::TeleopSession session{std::move(rc), sim::make_following_scenario()};
  return session.run();
}

void summarize(const char* name, const core::RunResult& result) {
  metrics::TtcAnalyzer ttc;
  metrics::SrrAnalyzer srr;
  const auto series = ttc.series(result.trace);
  const auto ttc_stats = ttc.summarize(series);
  const auto srr_stats = srr.analyze(result.trace);

  std::printf("%-10s duration %6.1f s  completed %s\n", name, result.duration.value(),
              result.completed ? "yes" : "NO");
  std::printf("  video: %llu frames encoded, %llu displayed, %llu rto-retx, srtt %.1f ms\n",
              (unsigned long long)result.frames_encoded,
              (unsigned long long)result.frames_displayed,
              (unsigned long long)result.video_stats.retransmits_rto,
              result.video_stats.srtt.value());
  if (ttc_stats.valid()) {
    std::printf("  TTC  : min %.2f  avg %.2f  max %.2f  (violations<6s: %zu of %zu)\n",
                ttc_stats.min, ttc_stats.avg, ttc_stats.max, ttc_stats.violations,
                ttc_stats.samples);
  } else {
    std::printf("  TTC  : no samples\n");
  }
  std::printf("  SRR  : %.1f reversals/min (%zu reversals over %.0f s)\n",
              srr_stats.rate_per_min, srr_stats.reversals, srr_stats.duration.value());
  std::printf("  QoE  : %.1f / 5 (frozen %.1f%% of the time)\n", result.qoe.score(),
              100.0 * result.qoe.frozen_fraction());
  std::printf("  collisions: %zu, lane invasions: %zu\n", result.trace.collisions.size(),
              result.trace.lane_invasions.size());
}

}  // namespace

int main() {
  std::printf("rdsim quickstart: golden run vs 5%% packet loss\n\n");
  const auto golden = drive(false);
  const auto faulty = drive(true);
  summarize("golden", golden);
  std::printf("\n");
  summarize("5% loss", faulty);
  return 0;
}
