#include <gtest/gtest.h>

#include "core/subjects.hpp"

namespace rdsim::core {
namespace {

TEST(Roster, TwelveSubjectsT7Excluded) {
  const auto roster = make_roster();
  ASSERT_EQ(roster.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(roster[static_cast<std::size_t>(i)].id, "T" + std::to_string(i + 1));
    EXPECT_EQ(roster[static_cast<std::size_t>(i)].index, i + 1);
  }
  int excluded = 0;
  for (const auto& s : roster) {
    if (s.excluded()) ++excluded;
  }
  EXPECT_EQ(excluded, 1);
  EXPECT_TRUE(roster[6].left_hand_driving);  // T7
  EXPECT_TRUE(roster[6].driver.mirrored_steering);
}

TEST(Roster, DeterministicForSameSeed) {
  const auto a = make_roster(99);
  const auto b = make_roster(99);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].driver.reaction_time_s, b[i].driver.reaction_time_s);
    EXPECT_DOUBLE_EQ(a[i].driver.steer_noise, b[i].driver.steer_noise);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
  const auto c = make_roster(100);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].driver.reaction_time_s != c[i].driver.reaction_time_s) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Roster, ExperienceDistributionMatchesQuestionnaire) {
  // §VI.F: 10/11 gaming (1 recent), 9/11 racing, 6 none / 3 few / 2 once.
  const auto roster = make_roster();
  int gaming = 0, recent = 0, racing = 0, none = 0, few = 0, once = 0;
  for (const auto& s : roster) {
    if (s.excluded()) continue;
    if (s.gaming_experience) ++gaming;
    if (s.recent_gaming) ++recent;
    if (s.racing_game_experience) ++racing;
    if (s.station_experience == 0) ++none;
    if (s.station_experience == 2) ++few;
    if (s.station_experience == 1) ++once;
  }
  EXPECT_EQ(gaming, 10);
  EXPECT_EQ(recent, 1);
  EXPECT_EQ(racing, 9);
  EXPECT_EQ(none, 6);
  EXPECT_EQ(few, 3);
  EXPECT_EQ(once, 2);
}

TEST(Roster, ParametersWithinPlausibleHumanRanges) {
  for (const auto& s : make_roster()) {
    EXPECT_GE(s.driver.reaction_time_s, 0.15) << s.id;
    EXPECT_LE(s.driver.reaction_time_s, 0.65) << s.id;
    EXPECT_GE(s.driver.control_rate_hz, 6.0) << s.id;
    EXPECT_LE(s.driver.control_rate_hz, 18.0) << s.id;
    EXPECT_GE(s.driver.idm_time_headway_s, 0.4) << s.id;
    EXPECT_LE(s.driver.idm_time_headway_s, 2.0) << s.id;
    EXPECT_GT(s.driver.steer_noise, 0.0) << s.id;
  }
}

TEST(Roster, RiskProneSubjectsExist) {
  const auto roster = make_roster();
  // T6 and T10 are the §VI.E golden-run collision candidates: markedly
  // tighter headway than everyone else.
  EXPECT_LT(roster[5].driver.idm_time_headway_s, 0.7);
  EXPECT_LT(roster[9].driver.idm_time_headway_s, 0.7);
  int tight = 0;
  for (const auto& s : roster) {
    if (s.driver.idm_time_headway_s < 0.7) ++tight;
  }
  EXPECT_EQ(tight, 2);
}

TEST(Questionnaire, SummaryAggregates) {
  std::vector<QuestionnaireResponse> responses;
  for (int i = 0; i < 4; ++i) {
    QuestionnaireResponse q;
    q.subject = "T" + std::to_string(i);
    q.q1_gaming = i != 0;
    q.q2_racing = i > 1;
    q.q3_station_experience = i % 3;
    q.q4_qoe = 2.0 + i * 0.5;
    q.q5_virtual_testing_useful = true;
    q.q6_felt_difference = i == 3;
    responses.push_back(q);
  }
  const auto sum = summarize(responses);
  EXPECT_EQ(sum.respondents, 4u);
  EXPECT_EQ(sum.gaming, 3u);
  EXPECT_EQ(sum.racing, 2u);
  EXPECT_EQ(sum.no_station_experience, 2u);
  EXPECT_DOUBLE_EQ(sum.mean_qoe, (2.0 + 2.5 + 3.0 + 3.5) / 4.0);
  EXPECT_DOUBLE_EQ(sum.min_qoe, 2.0);
  EXPECT_DOUBLE_EQ(sum.max_qoe, 3.5);
  EXPECT_EQ(sum.virtual_testing_useful, 4u);
  EXPECT_EQ(sum.felt_difference, 1u);
}

TEST(Questionnaire, EmptySummary) {
  const auto sum = summarize({});
  EXPECT_EQ(sum.respondents, 0u);
  EXPECT_DOUBLE_EQ(sum.mean_qoe, 0.0);
}

}  // namespace
}  // namespace rdsim::core
