#include <gtest/gtest.h>

#include "core/driver.hpp"

namespace rdsim::core {
namespace {

using util::Duration;
using util::TimePoint;

/// Drives the DriverModel open-loop against a synthetic world: the harness
/// integrates a simple kinematic ego so the perception-action loop closes.
struct DriverHarness {
  DriverHarness()
      : road{sim::make_town05_route()},
        scenario{make_scenario()},
        driver{make_params(), &scenario, &road, util::Random{7, 1}} {
    state.position = road.sample(start_s, 0).position;
    state.heading = road.sample(start_s, 0).heading;
    state.velocity = util::Vec2::from_heading(state.heading) * 10.0;
  }

  static sim::Scenario make_scenario() {
    sim::Scenario sc;
    sc.ego_start_lane = 0;
    sc.end = units::Meters{2000.0};
    sc.instructions.push_back({units::Meters{0.0}, units::Meters{300.0}, 0,
                               units::MetersPerSecond{10.0}, units::Meters{0.0}, "cruise"});
    sc.instructions.push_back({units::Meters{300.0}, units::Meters{2000.0}, 1,
                               units::MetersPerSecond{10.0}, units::Meters{0.0}, "lane 1"});
    return sc;
  }

  static DriverParams make_params() {
    DriverParams p;
    p.steer_noise = 0.0;  // deterministic control for behavioural asserts
    p.position_noise_m = 0.0;
    return p;
  }

  /// Show the driver a perfect frame of the current state and advance the
  /// closed loop by dt at ~30 fps / 30 Hz commands.
  void run(double seconds, std::optional<sim::ActorSnapshot> other = {}) {
    const double dt = 1.0 / 30.0;
    for (double t = 0.0; t < seconds; t += dt) {
      now += Duration::seconds(dt);
      sim::WorldFrame frame;
      frame.frame_id = ++frame_id;
      frame.sim_time_us = now.count_micros();
      frame.ego.state = state;
      if (other) frame.others.push_back(*other);
      driver.observe({frame, now});
      control = driver.actuate(now);
      step_vehicle(dt);
    }
  }

  void step_vehicle(double dt) {
    // Minimal plant: direct steer-to-yaw, throttle/brake to accel.
    double speed = state.velocity.norm();
    const double accel = control.throttle * 2.5 - control.brake * 7.0 - 0.05;
    speed = std::max(0.0, speed + accel * dt);
    const double yaw_rate = speed * std::tan(control.steer * util::deg_to_rad(40.0)) / 2.7;
    state.heading = util::wrap_angle(state.heading + yaw_rate * dt);
    state.position += util::Vec2::from_heading(state.heading) * (speed * dt);
    state.velocity = util::Vec2::from_heading(state.heading) * speed;
  }

  double lateral() const { return road.project(state.position).lateral; }
  double track_s() const { return road.project(state.position).s; }

  sim::RoadNetwork road;
  sim::Scenario scenario;
  DriverModel driver;
  sim::KinematicState state;
  sim::VehicleControl control;
  TimePoint now;
  std::uint32_t frame_id{0};
  double start_s{50.0};
};

TEST(DriverModel, HoldsLaneOnStraight) {
  DriverHarness h;
  h.run(10.0);
  EXPECT_NEAR(h.lateral(), 0.0, 0.35);
  EXPECT_GT(h.track_s(), 120.0);  // kept moving at ~10 m/s
}

TEST(DriverModel, TracksInstructedSpeed) {
  DriverHarness h;
  h.run(15.0);
  EXPECT_NEAR(h.state.velocity.norm(), 10.0, 1.5);
}

TEST(DriverModel, ExecutesInstructedLaneChange) {
  DriverHarness h;
  h.run(40.0);  // crosses s=300 where the instruction switches to lane 1
  ASSERT_GT(h.track_s(), 350.0);
  EXPECT_NEAR(h.lateral(), 3.5, 0.4);
}

TEST(DriverModel, BrakesForStoppedLeadAhead) {
  DriverHarness h;
  sim::ActorSnapshot lead;
  lead.id = 2;
  lead.kind = sim::ActorKind::kStaticVehicle;
  lead.state.position = h.road.sample(h.start_s + 60.0, 0).position;
  h.run(12.0, lead);
  // Stopped (or nearly) behind the obstacle, no overrun.
  EXPECT_LT(h.state.velocity.norm(), 2.0);
  const double gap = (lead.state.position - h.state.position).norm();
  EXPECT_GT(gap, 3.0);
}

TEST(DriverModel, NoFramesMeansNoCommands) {
  DriverHarness h;
  // Without observe(), actuate should produce a neutral (held) command.
  const auto c = h.driver.actuate(TimePoint::from_seconds(1.0));
  EXPECT_DOUBLE_EQ(c.throttle, 0.0);
  EXPECT_DOUBLE_EQ(c.brake, 0.0);
}

TEST(DriverModel, StalenessReporting) {
  DriverHarness h;
  EXPECT_TRUE(std::isinf(h.driver.display_staleness(h.now).value()));
  h.run(1.0);
  EXPECT_LT(h.driver.display_staleness(h.now).value(), 0.05);
}

TEST(DriverModel, FrozenDisplaySlowsTheDriver) {
  DriverHarness h;
  h.run(8.0);
  const double speed_before = h.state.velocity.norm();
  // Freeze: keep actuating without new frames for 4 s (the display holds
  // the old image; the caution response lifts the throttle).
  const double dt = 1.0 / 30.0;
  for (double t = 0.0; t < 4.0; t += dt) {
    h.now += Duration::seconds(dt);
    h.control = h.driver.actuate(h.now);
    h.step_vehicle(dt);
  }
  EXPECT_LT(h.state.velocity.norm(), speed_before - 1.5);
}

TEST(DriverModel, StartleAfterFreezeRaisesSteeringActivity) {
  DriverHarness quiet;
  DriverHarness startled;
  quiet.run(5.0);
  startled.run(5.0);
  // quiet keeps a live display; startled gets a 0.5 s freeze then resumes.
  const double dt = 1.0 / 30.0;
  for (double t = 0.0; t < 0.5; t += dt) {
    startled.now += Duration::seconds(dt);
    startled.control = startled.driver.actuate(startled.now);
    startled.step_vehicle(dt);
  }
  // Resume frames for both and integrate |steer| activity.
  double act_quiet = 0.0;
  double act_startled = 0.0;
  double prev_q = quiet.control.steer;
  double prev_s = startled.control.steer;
  for (double t = 0.0; t < 1.5; t += dt) {
    quiet.run(dt);
    startled.run(dt);
    act_quiet += std::fabs(quiet.control.steer - prev_q);
    act_startled += std::fabs(startled.control.steer - prev_s);
    prev_q = quiet.control.steer;
    prev_s = startled.control.steer;
  }
  EXPECT_GT(act_startled, act_quiet);
}

TEST(DriverModel, MirroredSteeringDiffersFromNormal) {
  DriverHarness normal;
  DriverHarness mirrored;
  DriverParams p = DriverHarness::make_params();
  p.mirrored_steering = true;
  mirrored.driver = DriverModel{p, &mirrored.scenario, &mirrored.road,
                                util::Random{7, 1}};
  normal.run(10.0);
  mirrored.run(10.0);
  // The left-hand-drive habit produces a systematic lateral bias.
  EXPECT_GT(std::fabs(mirrored.lateral() - normal.lateral()), 0.15);
}

TEST(DriverModel, GivesCyclistsBerth) {
  DriverHarness h;
  sim::ActorSnapshot cyclist;
  cyclist.id = 3;
  cyclist.kind = sim::ActorKind::kCyclist;
  cyclist.bbox = sim::BoundingBox{0.9, 0.35};
  // Park the cyclist near the right edge 35 m ahead; the driver should
  // shift left while passing even without an instruction.
  const auto pose = h.road.sample_offset(h.start_s + 35.0, -1.45);
  cyclist.state.position = pose.position;
  cyclist.state.heading = pose.heading;
  h.run(3.0, cyclist);
  EXPECT_GT(h.lateral(), 0.35);
}

}  // namespace
}  // namespace rdsim::core
