// Golden-hash regression corpus for the deterministic campaign runner.
//
// Each entry pins the check::campaign_hash and the twelve per-subject hashes
// of a miniature campaign (time-capped runs, full pipeline) for one seed.
// The corpus fails on ANY behavioural drift in the simulator, network
// emulation, driver model, fault injection or aggregation — and then tells
// you where: first the first divergent subject, then (by re-running that
// subject twice with replay recorders) whether the drift is nondeterminism
// within this build, pinpointed to a tick, or an intentional behaviour
// change that requires regenerating the table below.
//
// To regenerate after an intentional change: run this test; the failure
// output prints the complete replacement table, copy-paste it over kGolden.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "check/replay.hpp"
#include "core/campaign_hash.hpp"
#include "core/experiment.hpp"
#include "obs/catalog.hpp"
#include "obs/report.hpp"

namespace rdsim::core {
namespace {

// Miniature campaigns: cap each run at 12 simulated seconds so the three
// corpus seeds and the worker-count sweep stay inside the unit-test budget
// while still exercising the full golden+faulty pipeline per subject.
constexpr double kGoldenTimeCapS = 12.0;

ExperimentConfig golden_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.run_time_limit = units::Seconds{kGoldenTimeCapS};
  return cfg;
}

// Serial reference campaigns, one per seed, shared by every test in this
// binary (the parallel sweep reuses the serial hash as its baseline).
const CampaignResult& golden_campaign(std::uint64_t seed) {
  static std::map<std::uint64_t, CampaignResult> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    it = cache.emplace(seed, ExperimentHarness{golden_config(seed)}.run_campaign())
             .first;
  }
  return it->second;
}

struct GoldenEntry {
  std::uint64_t seed;
  std::uint64_t campaign;
  std::uint64_t subjects[12];
};

// ---- golden corpus (regenerate via the failure output, see header) ----
constexpr GoldenEntry kGolden[] = {
    {7,
     0xf88122499647c945ULL,
     {0x6096682db6c44d8fULL, 0x8f39ea77c3515e1fULL, 0x0dc0d9ec70a48da4ULL,
      0xbcde8b61f074a706ULL, 0x3e20aee3ac8ee858ULL, 0xc00a6e7623798c8eULL,
      0xd6bdd3112ce7dfd3ULL, 0x456bd5e1acd8c440ULL, 0x8403b8ae67bfef6dULL,
      0x134b1ba7d770b753ULL, 0x5c3fe45004fb984cULL, 0x7cbe3ebce2db107aULL}},
    {11,
     0xe4bb1b2b3ba5e247ULL,
     {0x71bb6015f0c177bdULL, 0x7bee0a0823080fa4ULL, 0x7570e6ebb38ff46fULL,
      0xdbc867a1a1229b76ULL, 0x27fa0bfd4719252dULL, 0x4932a188affdbeb8ULL,
      0x9c8d1903320f162aULL, 0xfb47644d0b89ce69ULL, 0x11a7ad309e44d4f0ULL,
      0x83931f3b575f3567ULL, 0x5b31602e1e046d91ULL, 0x5cc7219bd8579067ULL}},
    {42,
     0xc7b32e6eba1c308cULL,
     {0x420441ed33c434eaULL, 0xe404e35ad9eebc4dULL, 0x7b48afd19a3f670fULL,
      0x8676df00a4e5bfaeULL, 0x15c040257a193c82ULL, 0xae285f9237fc956fULL,
      0xc98a0ebfc03f4e80ULL, 0xc972b3817d15d595ULL, 0xaf302fa4c383dbb2ULL,
      0x6a3ff982f60cb480ULL, 0x30a9bad75a131159ULL, 0x9e1dfb20891f99d8ULL}},
};

std::string render_replacement_table() {
  std::string out = "constexpr GoldenEntry kGolden[] = {\n";
  char buf[64];
  for (const GoldenEntry& entry : kGolden) {
    const CampaignResult& campaign = golden_campaign(entry.seed);
    std::snprintf(buf, sizeof buf, "    {%llu,\n     0x%016llxULL,\n     {",
                  static_cast<unsigned long long>(entry.seed),
                  static_cast<unsigned long long>(check::campaign_hash(campaign)));
    out += buf;
    for (std::size_t i = 0; i < campaign.subjects.size(); ++i) {
      std::snprintf(buf, sizeof buf, "0x%016llxULL",
                    static_cast<unsigned long long>(
                        check::hash_subject(campaign.subjects[i])));
      out += buf;
      if (i + 1 < campaign.subjects.size())
        out += (i % 3 == 2) ? ",\n      " : ", ";
    }
    out += "}},\n";
  }
  out += "};\n";
  return out;
}

// When a subject's hash drifted, separate "this build is nondeterministic"
// from "behaviour changed intentionally": re-run the same subject twice with
// replay recorders and diff the tick chains.
std::string diagnose_subject(const ExperimentHarness& harness,
                             const SubjectProfile& profile) {
  check::ReplayRecorder first_golden, first_faulty;
  check::ReplayRecorder second_golden, second_faulty;
  const SubjectResult a = harness.run_subject(profile, &first_golden, &first_faulty);
  const SubjectResult b = harness.run_subject(profile, &second_golden, &second_faulty);
  if (check::hash_subject(a) != check::hash_subject(b)) {
    const auto golden_diff = check::diff_replays(first_golden, second_golden);
    const auto faulty_diff = check::diff_replays(first_faulty, second_faulty);
    return "NONDETERMINISM within this build: subject " + profile.id +
           " differs between two serial re-runs.\n  golden run: " +
           golden_diff.summary() + "\n  faulty run: " + faulty_diff.summary();
  }
  return "subject " + profile.id +
         " reproduces within this build (two re-runs identical) — the drift "
         "vs the golden table is a behaviour change; if intentional, "
         "regenerate the table below.";
}

TEST(CampaignGolden, HashCorpusMatchesCheckedInTable) {
  for (const GoldenEntry& entry : kGolden) {
    const ExperimentHarness harness{golden_config(entry.seed)};
    const CampaignResult& campaign = golden_campaign(entry.seed);
    ASSERT_EQ(campaign.subjects.size(), 12u);

    if (check::campaign_hash(campaign) == entry.campaign) continue;

    // Drifted: pinpoint the first divergent subject, then classify.
    std::string detail = "campaign_hash drifted for seed " +
                         std::to_string(entry.seed) + ".\n";
    bool found = false;
    for (std::size_t i = 0; i < campaign.subjects.size(); ++i) {
      if (check::hash_subject(campaign.subjects[i]) != entry.subjects[i]) {
        detail += "first divergent subject: index " + std::to_string(i) + " (" +
                  campaign.subjects[i].profile.id + ")\n";
        detail += diagnose_subject(harness, campaign.subjects[i].profile) + "\n";
        found = true;
        break;
      }
    }
    if (!found) {
      detail +=
          "all 12 subject hashes match — drift is in campaign-level fields "
          "(config/aggregation).\n";
    }
    ADD_FAILURE() << detail
                  << "\nreplacement table:\n" << render_replacement_table();
    return;  // one table print is enough
  }
}

TEST(CampaignGolden, ParallelMatchesSerialForEveryWorkerCount) {
  for (const GoldenEntry& entry : kGolden) {
    const std::uint64_t serial_hash =
        check::campaign_hash(golden_campaign(entry.seed));
    const ExperimentHarness harness{golden_config(entry.seed)};
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      const CampaignResult parallel = harness.run_campaign_parallel(workers);
      ASSERT_EQ(check::campaign_hash(parallel), serial_hash)
          << "seed " << entry.seed << " workers " << workers;
    }
  }
}

TEST(CampaignGolden, ObservabilityDoesNotPerturbTheCampaign) {
  // The cardinal obs rule: with every instrument live — counters, gauges,
  // histograms, wall timers, spans — the campaign hash and all twelve
  // subject hashes must equal the checked-in corpus values, serially and at
  // every worker count. Observation reads sim state; it never touches an
  // RNG stream, the virtual clock, or any hashed value.
  obs::set_enabled(true);
  for (const GoldenEntry& entry : kGolden) {
    ExperimentHarness harness{golden_config(entry.seed)};
    obs::CampaignCollector collector;
    harness.set_collector(&collector);
    const CampaignResult observed = harness.run_campaign();
    ASSERT_EQ(check::campaign_hash(observed), entry.campaign)
        << "obs-enabled serial campaign drifted, seed " << entry.seed;
    for (std::size_t i = 0; i < observed.subjects.size(); ++i) {
      ASSERT_EQ(check::hash_subject(observed.subjects[i]), entry.subjects[i])
          << "obs-enabled subject hash drifted, seed " << entry.seed
          << " subject index " << i;
    }
#if RDSIM_OBS
    // The collector must actually have gathered data — an accidentally inert
    // instrumentation layer would make this whole test vacuous.
    ASSERT_EQ(collector.run_count(), 24u);  // 12 subjects x (NFI + FI)
    const obs::Context merged = collector.merged();
    EXPECT_GT(merged.counter(obs::metric::kNetemEnqueued) +
                  merged.counter(obs::metric::kFifoEnqueued),
              0u);
    EXPECT_GT(merged.counter(obs::metric::kStreamSegmentsTx), 0u);
    EXPECT_NE(merged.timer(obs::metric::kRunWall), nullptr);
#endif
  }

  // Worker sweep (seed 42 keeps the sweep inside the unit-test budget): the
  // pooled runner installs per-run contexts on whatever worker executes the
  // subject; hashes must still match the corpus bit-for-bit.
  const GoldenEntry& entry = kGolden[2];
  ASSERT_EQ(entry.seed, 42u);
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ExperimentHarness harness{golden_config(entry.seed)};
    obs::CampaignCollector collector;
    harness.set_collector(&collector);
    const CampaignResult observed = harness.run_campaign_parallel(workers);
    ASSERT_EQ(check::campaign_hash(observed), entry.campaign)
        << "obs-enabled parallel campaign drifted at " << workers << " workers";
#if RDSIM_OBS
    ASSERT_EQ(collector.run_count(), 24u) << workers << " workers";
#endif
  }
}

TEST(CampaignGolden, ObsAggregationIsWorkerCountIndependent) {
#if RDSIM_OBS
  // Deterministic metrics (everything except wall timers) must aggregate to
  // the same campaign report regardless of worker count: contexts merge in
  // run-id order, never completion order. Compare full per-run counter,
  // gauge and histogram state across worker counts.
  obs::set_enabled(true);
  const std::uint64_t seed = 42;
  auto collect = [&](std::size_t workers) {
    ExperimentHarness harness{golden_config(seed)};
    auto collector = std::make_unique<obs::CampaignCollector>();
    harness.set_collector(collector.get());
    harness.run_campaign_parallel(workers);
    return collector;
  };
  const auto reference = collect(1);
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const auto other = collect(workers);
    ASSERT_EQ(other->run_count(), reference->run_count());
    auto ref_it = reference->runs().begin();
    for (const auto& [run_id, context] : other->runs()) {
      ASSERT_EQ(run_id, ref_it->first);
      const obs::Context& ref_ctx = ref_it->second;
      for (obs::MetricId id = 0; id < obs::metric_count(); ++id) {
        const obs::MetricDef& def = obs::metric_def(id);
        if (def.kind == obs::MetricKind::kTimer) continue;  // wall-clock noise
        EXPECT_EQ(context.counter(id), ref_ctx.counter(id))
            << run_id << " " << def.name << " @ " << workers << " workers";
        const obs::HistogramCell* h = context.histogram(id);
        const obs::HistogramCell* rh = ref_ctx.histogram(id);
        ASSERT_EQ(h == nullptr, rh == nullptr) << run_id << " " << def.name;
        if (h != nullptr) {
          EXPECT_EQ(h->counts, rh->counts) << run_id << " " << def.name;
        }
      }
      EXPECT_EQ(context.spans().size(), ref_ctx.spans().size()) << run_id;
      ++ref_it;
    }
  }
#else
  GTEST_SKIP() << "observability compiled out";
#endif
}

// ---- mitigated corpus --------------------------------------------------
// The same miniature campaigns with the rdsim::mitigate stack enabled at its
// default thresholds. A second, independent table: the unmitigated corpus
// above proves the stack is bit-exactly inert when disabled; this one pins
// the mitigated behaviour itself against drift.

ExperimentConfig mitigated_config(std::uint64_t seed) {
  ExperimentConfig cfg = golden_config(seed);
  cfg.mitigation.enabled = true;
  return cfg;
}

const CampaignResult& mitigated_campaign(std::uint64_t seed) {
  static std::map<std::uint64_t, CampaignResult> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    it = cache
             .emplace(seed,
                      ExperimentHarness{mitigated_config(seed)}.run_campaign())
             .first;
  }
  return it->second;
}

// ---- mitigated golden corpus (regenerate via the failure output) ----
constexpr GoldenEntry kGoldenMitigated[] = {
    {7,
     0x5bde6b42557307c2ULL,
     {0xe4520281d74983ffULL, 0x6b5f5c282513905eULL, 0x56a371b4dda8e777ULL,
      0xc8198d332d656af2ULL, 0xdc0c5e202c06db70ULL, 0xfa2ecc1334d903a3ULL,
      0xac8b9f8852d073e3ULL, 0xb7fb41079d6f36d4ULL, 0xffa8b5283564f76dULL,
      0x4951ad3746f90816ULL, 0x6fb8f44d478ac60cULL, 0xc87062dd0d849ca7ULL}},
    {11,
     0x1c42d0d35be2f09eULL,
     {0x50426df62ea0e919ULL, 0x2ea542dc67d21400ULL, 0xc8414434fc02c1f3ULL,
      0x744333dde4274bcaULL, 0x3c2426fe2e48d241ULL, 0xd85ca8019127ef80ULL,
      0x716f25dbaad47712ULL, 0xbcd13ac0a283edb3ULL, 0x96caa372bf6a165dULL,
      0x0eab7a81cd36bf79ULL, 0x8a9ec84f2b2099ddULL, 0xe38778fa6826729bULL}},
    {42,
     0x6692e9547d0fa5f0ULL,
     {0xbf3b878dba2a0e12ULL, 0x9294ab9a568e27e4ULL, 0xbaa98f6e009e1166ULL,
      0x73d5570b9a309caeULL, 0x34cca7b9a0cda096ULL, 0x19361f7ec5415e17ULL,
      0xe972265c0cd8958cULL, 0x8dce7659c6b5574dULL, 0x259bc769605bc521ULL,
      0xa68124f3fac38633ULL, 0x760eda7b042b1e41ULL, 0x0c77ed972ea3c2fcULL}},
};

std::string render_mitigated_table() {
  std::string out = "constexpr GoldenEntry kGoldenMitigated[] = {\n";
  char buf[64];
  for (const GoldenEntry& entry : kGoldenMitigated) {
    const CampaignResult& campaign = mitigated_campaign(entry.seed);
    std::snprintf(buf, sizeof buf, "    {%llu,\n     0x%016llxULL,\n     {",
                  static_cast<unsigned long long>(entry.seed),
                  static_cast<unsigned long long>(check::campaign_hash(campaign)));
    out += buf;
    for (std::size_t i = 0; i < campaign.subjects.size(); ++i) {
      std::snprintf(buf, sizeof buf, "0x%016llxULL",
                    static_cast<unsigned long long>(
                        check::hash_subject(campaign.subjects[i])));
      out += buf;
      if (i + 1 < campaign.subjects.size())
        out += (i % 3 == 2) ? ",\n      " : ", ";
    }
    out += "}},\n";
  }
  out += "};\n";
  return out;
}

TEST(CampaignGoldenMitigated, HashCorpusMatchesCheckedInTable) {
  for (const GoldenEntry& entry : kGoldenMitigated) {
    const ExperimentHarness harness{mitigated_config(entry.seed)};
    const CampaignResult& campaign = mitigated_campaign(entry.seed);
    ASSERT_EQ(campaign.subjects.size(), 12u);
    if (check::campaign_hash(campaign) == entry.campaign) continue;

    std::string detail = "mitigated campaign_hash drifted for seed " +
                         std::to_string(entry.seed) + ".\n";
    for (std::size_t i = 0; i < campaign.subjects.size(); ++i) {
      if (check::hash_subject(campaign.subjects[i]) != entry.subjects[i]) {
        detail += "first divergent subject: index " + std::to_string(i) + " (" +
                  campaign.subjects[i].profile.id + ")\n";
        detail += diagnose_subject(harness, campaign.subjects[i].profile) + "\n";
        break;
      }
    }
    ADD_FAILURE() << detail << "\nreplacement table:\n"
                  << render_mitigated_table();
    return;
  }
}

TEST(CampaignGoldenMitigated, MitigationActuallyEngagesInTheCorpus) {
  // Guard against a vacuous mitigated corpus: across the three seeds the
  // governor must leave NOMINAL somewhere and the summaries must be present
  // on every run.
  double non_nominal_dwell = 0.0;
  std::uint64_t interventions = 0;
  for (const GoldenEntry& entry : kGoldenMitigated) {
    for (const SubjectResult& s : mitigated_campaign(entry.seed).subjects) {
      ASSERT_TRUE(s.golden.mitigation.enabled);
      ASSERT_TRUE(s.faulty.mitigation.enabled);
      non_nominal_dwell += s.faulty.mitigation.dwell_degraded.value() +
                           s.faulty.mitigation.dwell_impaired.value() +
                           s.faulty.mitigation.dwell_link_loss.value();
      interventions += s.faulty.mitigation.interventions;
    }
  }
  EXPECT_GT(non_nominal_dwell, 0.0);
  EXPECT_GT(interventions, 0u);
}

TEST(CampaignGoldenMitigated, ParallelMatchesSerialForEveryWorkerCount) {
  // Mitigation state lives entirely inside the per-run session (no RNG, no
  // globals), so the pooled runner must stay bit-identical with it enabled.
  const GoldenEntry& entry = kGoldenMitigated[2];
  ASSERT_EQ(entry.seed, 42u);
  const std::uint64_t serial_hash =
      check::campaign_hash(mitigated_campaign(entry.seed));
  const ExperimentHarness harness{mitigated_config(entry.seed)};
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const CampaignResult parallel = harness.run_campaign_parallel(workers);
    ASSERT_EQ(check::campaign_hash(parallel), serial_hash)
        << "mitigated campaign diverged at " << workers << " workers";
  }
}

TEST(CampaignGoldenMitigated, DisabledMitigationDoesNotChangeTheHash) {
  // The structural non-interference claim at the campaign level: a config
  // with mitigation disabled produces exactly the unmitigated corpus hash
  // (the opt_block folds nothing), so the two tables can never cross-talk.
  for (const GoldenEntry& entry : kGolden) {
    ExperimentConfig cfg = golden_config(entry.seed);
    cfg.mitigation.enabled = false;  // explicit: the default
    const CampaignResult campaign = ExperimentHarness{cfg}.run_campaign();
    ASSERT_EQ(check::campaign_hash(campaign), entry.campaign)
        << "disabled mitigation perturbed seed " << entry.seed;
    break;  // one seed proves the plumbing; the full corpus runs above
  }
}

TEST(CampaignGolden, SubjectHashesAreOrderIndependent) {
  // SplitMix sub-seeding makes each subject a pure function of (campaign
  // seed, roster index): running one subject in isolation must reproduce its
  // in-campaign result exactly.
  const std::uint64_t seed = 42;
  const CampaignResult& campaign = golden_campaign(seed);
  const ExperimentHarness harness{golden_config(seed)};
  for (const std::size_t i : {std::size_t{0}, std::size_t{5}, std::size_t{11}}) {
    const SubjectResult alone =
        harness.run_subject(campaign.subjects[i].profile);
    EXPECT_EQ(check::hash_subject(alone),
              check::hash_subject(campaign.subjects[i]))
        << "subject index " << i;
  }
}

}  // namespace
}  // namespace rdsim::core
