// Experiment harness and report builders. These use a single subject (not
// the full campaign) to stay fast; the integration suite covers the rest.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace rdsim::core {
namespace {

const SubjectResult& cached_subject() {
  static const SubjectResult result = [] {
    ExperimentHarness harness;
    return harness.run_subject(make_roster()[4]);  // T5
  }();
  return result;
}

CampaignResult tiny_campaign() {
  CampaignResult c;
  c.subjects.push_back(cached_subject());
  return c;
}

TEST(FaultPlan, RespectsWeightsAndCoverage) {
  ExperimentConfig cfg;
  ExperimentHarness harness{cfg};
  const auto scenario = sim::make_test_route_scenario();
  util::Random rng{5, 5};
  std::map<std::string, int> counts;
  int total = 0;
  for (int rep = 0; rep < 200; ++rep) {
    for (const auto& a : harness.make_fault_plan(scenario, rng)) {
      ++counts[a.fault.label()];
      ++total;
    }
  }
  // ~95% of 12 POIs over 200 reps.
  EXPECT_NEAR(total, 200 * 12 * 0.95, 200);
  // Weight ordering: 2% (31) >= 25ms (30) > 5ms (20).
  EXPECT_GT(counts["2%"], counts["5ms"]);
  EXPECT_GT(counts["25ms"], counts["5ms"]);
  for (const auto& label : report::fault_labels()) {
    EXPECT_GT(counts[label], 0) << label;
  }
}

TEST(RunSubject, ProducesGoldenAndFaultyRuns) {
  const SubjectResult& r = cached_subject();
  EXPECT_EQ(r.profile.id, "T5");
  EXPECT_FALSE(r.golden.trace.fault_injected_run);
  EXPECT_TRUE(r.faulty.trace.fault_injected_run);
  EXPECT_TRUE(r.golden.completed || r.golden.timed_out);
  EXPECT_TRUE(r.faulty.completed || r.faulty.timed_out);
  EXPECT_TRUE(r.golden.trace.faults.empty());
  EXPECT_FALSE(r.faulty.trace.faults.empty());
  // Paper: 10-14 faults per subject.
  int injections = 0;
  for (const auto& f : r.faulty.trace.faults) {
    if (f.added) ++injections;
  }
  EXPECT_GE(injections, 8);
  EXPECT_LE(injections, 14);
  // The questionnaire reflects the profile.
  EXPECT_EQ(r.questionnaire.subject, "T5");
  EXPECT_EQ(r.questionnaire.q1_gaming, r.profile.gaming_experience);
  EXPECT_GE(r.questionnaire.q4_qoe, 1.0);
  EXPECT_LE(r.questionnaire.q4_qoe, 5.0);
}

TEST(RunSubject, FaultyRunQoeWorseThanGolden) {
  const SubjectResult& r = cached_subject();
  EXPECT_LE(r.faulty.qoe.score(), r.golden.qoe.score());
  EXPECT_GT(r.faulty.qoe.frozen_fraction(), r.golden.qoe.frozen_fraction());
}

TEST(Report, Table2CountsMatchTrace) {
  const auto campaign = tiny_campaign();
  const auto rows = report::fault_count_rows(campaign);
  ASSERT_EQ(rows.size(), 1u);
  int total = 0;
  for (const auto& [label, c] : rows[0].counts) total += c;
  EXPECT_EQ(total, rows[0].total);
  int from_trace = 0;
  for (const auto& f : campaign.subjects[0].faulty.trace.faults) {
    if (f.added) ++from_trace;
  }
  EXPECT_EQ(rows[0].total, from_trace);
  const std::string table = report::render_table2(campaign);
  EXPECT_NE(table.find("T5"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
}

TEST(Report, Table3HasNfiBaseline) {
  const auto campaign = tiny_campaign();
  const auto rows = report::ttc_rows(campaign);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_TRUE(rows[0].nfi.has_value());  // the golden run follows a lead
  EXPECT_GT(rows[0].nfi->samples, 50u);
  EXPECT_GT(rows[0].nfi->max, rows[0].nfi->min);
  const std::string table = report::render_table3(campaign);
  EXPECT_NE(table.find("Maximum TTC"), std::string::npos);
  EXPECT_NE(table.find("Minimum TTC"), std::string::npos);
}

TEST(Report, Table4MaskingHidesPaperMissingCells) {
  const auto campaign = tiny_campaign();
  // T5 is not in any missing list, so masked == unmasked for this subject.
  EXPECT_EQ(report::render_table4(campaign, false).substr(0, 40),
            report::render_table4(campaign, true).substr(0, 40));
  EXPECT_TRUE(report::paper_missing_srr("T3", false));
  EXPECT_TRUE(report::paper_missing_srr("T8", true));
  EXPECT_FALSE(report::paper_missing_srr("T5", true));
  EXPECT_TRUE(report::paper_missing_ttc("T1"));
  EXPECT_FALSE(report::paper_missing_ttc("T9"));
}

TEST(Report, Table4RowsHaveFaultCells) {
  const auto campaign = tiny_campaign();
  const auto rows = report::srr_rows(campaign);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_TRUE(rows[0].nfi.has_value());
  ASSERT_TRUE(rows[0].fi.has_value());
  int present = 0;
  for (const auto& [label, v] : rows[0].cells) {
    if (v) ++present;
  }
  EXPECT_GE(present, 3);  // most fault types appear in a 10+-fault run
  EXPECT_TRUE(rows[0].avg.has_value());
}

TEST(Report, QuestionnaireRendering) {
  const auto campaign = tiny_campaign();
  const std::string q = report::render_questionnaire(campaign);
  EXPECT_NE(q.find("1 respondents"), std::string::npos);
  EXPECT_NE(q.find("QoE"), std::string::npos);
}

TEST(Report, Table1RendersStationSpec) {
  const std::string t = report::render_table1(StationConfig{});
  EXPECT_NE(t.find("Logitech G27"), std::string::npos);
  EXPECT_NE(t.find("Ubuntu 18.04"), std::string::npos);
  EXPECT_NE(t.find("RTX 3080"), std::string::npos);
}

TEST(Report, CollisionSummaryConsistent) {
  const auto campaign = tiny_campaign();
  const auto sum = report::collision_summary(campaign);
  EXPECT_EQ(sum.included_subjects, 1u);
  EXPECT_EQ(sum.golden_total_collisions,
            campaign.subjects[0].golden.trace.collisions.size());
  EXPECT_EQ(sum.faulty_total_collisions,
            campaign.subjects[0].faulty.trace.collisions.size());
}

TEST(CampaignResult, IncludedFiltersExcludedSubjects) {
  CampaignResult c;
  SubjectResult a;
  a.profile = make_roster()[0];  // T1
  SubjectResult b;
  b.profile = make_roster()[6];  // T7 (excluded)
  c.subjects.push_back(a);
  c.subjects.push_back(b);
  EXPECT_EQ(c.included().size(), 1u);
  EXPECT_EQ(c.included()[0]->profile.id, "T1");
}

}  // namespace
}  // namespace rdsim::core
