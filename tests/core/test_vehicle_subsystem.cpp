#include <gtest/gtest.h>

#include "core/vehicle_subsystem.hpp"

namespace rdsim::core {
namespace {

using util::Duration;
using util::TimePoint;

TEST(VehicleSubsystem, FramePacingMatchesConfiguredFps) {
  RdsConfig cfg;
  VehicleSubsystem vs{cfg, sim::make_following_scenario()};
  int frames = 0;
  for (int ms = 0; ms < 5000; ms += 2) {
    if (vs.maybe_encode_frame(TimePoint::from_micros(ms * 1000))) ++frames;
  }
  // §V.A: 25-30 fps. 5 s of video.
  EXPECT_GE(frames, 24 * 5);
  EXPECT_LE(frames, 31 * 5);
  EXPECT_EQ(vs.frames_encoded(), static_cast<std::uint64_t>(frames));
}

TEST(VehicleSubsystem, EncodedFrameDecodes) {
  RdsConfig cfg;
  VehicleSubsystem vs{cfg, sim::make_following_scenario()};
  const auto frame = vs.maybe_encode_frame(TimePoint{});
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->wire_size, cfg.video.frame_wire_bytes);
  const auto decoded = sim::WorldFrame::decode(frame->payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ego.id, vs.world().ego_id());
  EXPECT_FALSE(decoded->others.empty());  // the lead vehicle
}

TEST(VehicleSubsystem, AppliesLatestCommandOnly) {
  RdsConfig cfg;
  VehicleSubsystem vs{cfg, sim::make_following_scenario()};
  CommandMsg newer;
  newer.sequence = 10;
  newer.control.throttle = 0.9;
  newer.sent_at_us = 1000;
  vs.on_command(newer, TimePoint::from_micros(2000));
  CommandMsg stale;
  stale.sequence = 7;
  stale.control.throttle = 0.1;
  vs.on_command(stale, TimePoint::from_micros(3000));
  EXPECT_DOUBLE_EQ(vs.world().ego().vehicle().control().throttle, 0.9);
  EXPECT_EQ(vs.commands_applied(), 1u);
  EXPECT_EQ(vs.commands_stale(), 1u);
}

TEST(VehicleSubsystem, CommandAgeTracksQoS) {
  RdsConfig cfg;
  VehicleSubsystem vs{cfg, sim::make_following_scenario()};
  EXPECT_TRUE(std::isinf(vs.command_age(TimePoint{}).value()));
  CommandMsg cmd;
  cmd.sequence = 1;
  cmd.sent_at_us = TimePoint::from_seconds(1.0).count_micros();
  vs.on_command(cmd, TimePoint::from_seconds(1.05));
  EXPECT_NEAR(vs.command_age(TimePoint::from_seconds(1.25)).value(), 0.25, 1e-9);
}

TEST(VehicleSubsystem, PhysicsAdvancesScenario) {
  RdsConfig cfg;
  VehicleSubsystem vs{cfg, sim::make_following_scenario()};
  CommandMsg cmd;
  cmd.sequence = 1;
  cmd.control.throttle = 0.5;
  vs.on_command(cmd, TimePoint{});
  for (int i = 0; i < 500; ++i) vs.step_physics(units::Seconds{0.01});
  EXPECT_GT(vs.runtime().ego_position(), units::Meters{10.0});
  EXPECT_FALSE(vs.runtime().complete());
}

TEST(SafetyMonitor, EngagesOnStaleCommandsAndBrakes) {
  RdsConfig cfg;
  SafetyMonitorConfig safety;
  safety.enabled = true;
  safety.max_command_age = units::Seconds{0.3};
  VehicleSubsystem vs{cfg, sim::make_following_scenario(), safety};
  // Get the vehicle moving with a fresh command.
  CommandMsg cmd;
  cmd.sequence = 1;
  cmd.control.throttle = 0.8;
  cmd.sent_at_us = 0;
  vs.on_command(cmd, TimePoint{});
  for (int i = 0; i < 300; ++i) vs.step_physics(units::Seconds{0.01});  // 3 s, no new commands
  // Command age is now 3 s > 0.3 s: the monitor must be braking the car.
  EXPECT_TRUE(vs.safety_engaged());
  EXPECT_GE(vs.safety_activations(), 1u);
  const double speed_at_engage = vs.world().ego().vehicle().forward_speed();
  for (int i = 0; i < 300; ++i) vs.step_physics(units::Seconds{0.01});
  EXPECT_LT(vs.world().ego().vehicle().forward_speed(),
            std::max(speed_at_engage - 2.0, safety.speed_cap.value() + 0.5));
}

TEST(SafetyMonitor, DisengagesWhenCommandsResume) {
  RdsConfig cfg;
  SafetyMonitorConfig safety;
  safety.enabled = true;
  safety.max_command_age = units::Seconds{0.3};
  VehicleSubsystem vs{cfg, sim::make_following_scenario(), safety};
  CommandMsg cmd;
  cmd.sequence = 1;
  cmd.control.throttle = 0.8;
  cmd.sent_at_us = 0;
  vs.on_command(cmd, TimePoint{});
  for (int i = 0; i < 400; ++i) vs.step_physics(units::Seconds{0.01});
  ASSERT_TRUE(vs.safety_engaged());
  // Fresh commands resume; once slow enough, the monitor lets go.
  for (int i = 0; i < 600; ++i) {
    CommandMsg fresh;
    fresh.sequence = static_cast<std::uint32_t>(2 + i);
    fresh.control.throttle = 0.2;
    fresh.sent_at_us = vs.world().now().count_micros();
    vs.on_command(fresh, vs.world().now());
    vs.step_physics(units::Seconds{0.01});
  }
  EXPECT_FALSE(vs.safety_engaged());
}

TEST(SafetyMonitor, DisabledByDefault) {
  RdsConfig cfg;
  VehicleSubsystem vs{cfg, sim::make_following_scenario()};
  CommandMsg cmd;
  cmd.sequence = 1;
  cmd.control.throttle = 0.8;
  cmd.sent_at_us = 0;
  vs.on_command(cmd, TimePoint{});
  for (int i = 0; i < 500; ++i) vs.step_physics(units::Seconds{0.01});
  EXPECT_FALSE(vs.safety_engaged());
  EXPECT_EQ(vs.safety_activations(), 0u);
  EXPECT_GT(vs.world().ego().vehicle().forward_speed(), 5.0);
}

TEST(Protocol, CommandMsgRoundTrip) {
  CommandMsg m;
  m.sequence = 42;
  m.control.throttle = 0.5;
  m.control.steer = -0.25;
  m.control.brake = 0.1;
  m.control.reverse = true;
  m.control.hand_brake = true;
  m.sent_at_us = 123456789;
  m.based_on_frame = 777;
  const auto decoded = CommandMsg::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 42u);
  EXPECT_DOUBLE_EQ(decoded->control.steer, -0.25);
  EXPECT_TRUE(decoded->control.reverse);
  EXPECT_TRUE(decoded->control.hand_brake);
  EXPECT_EQ(decoded->sent_at_us, 123456789);
  EXPECT_EQ(decoded->based_on_frame, 777u);
  EXPECT_FALSE(CommandMsg::decode({1, 2, 3}).has_value());
}

}  // namespace
}  // namespace rdsim::core
