#include <gtest/gtest.h>

#include "core/correlation.hpp"
#include "core/training.hpp"

namespace rdsim::core {
namespace {

TEST(Training, ShrinksNoiseAndReactionTime) {
  const auto profile = make_roster()[2];  // T3: no prior station experience
  TrainingConfig cfg;
  cfg.minutes = 5.0;
  const auto result = run_training(profile, cfg);
  EXPECT_LT(result.adapted.driver.steer_noise, profile.driver.steer_noise);
  EXPECT_LT(result.adapted.driver.reaction_time_s, profile.driver.reaction_time_s);
  EXPECT_GT(result.improvement, 0.7);  // 5 min at tau 2 min
  EXPECT_LT(result.improvement, 1.0);
}

TEST(Training, PriorExperienceReducesAdaptation) {
  auto novice = make_roster()[2];   // station_experience 0
  auto veteran = make_roster()[8];  // station_experience 2
  // Equalize the driving parameters so only the experience level differs.
  veteran.driver = novice.driver;
  const auto r_novice = run_training(novice);
  const auto r_veteran = run_training(veteran);
  const double gain_novice =
      novice.driver.steer_noise - r_novice.adapted.driver.steer_noise;
  const double gain_veteran =
      veteran.driver.steer_noise - r_veteran.adapted.driver.steer_noise;
  EXPECT_GT(gain_novice, gain_veteran);
}

TEST(Training, DurationClampedToPaperBounds) {
  const auto profile = make_roster()[0];
  TrainingConfig too_long;
  too_long.minutes = 30.0;
  const auto result = run_training(profile, too_long);
  // Clamped to 5 minutes: the free drive cannot exceed the cap.
  EXPECT_LE(result.run.duration.value(), 5.0 * 60.0 + 5.0);
}

TEST(Training, RunsTheEmptyTown) {
  const auto result = run_training(make_roster()[4]);
  EXPECT_FALSE(result.run.trace.ego.empty());
  EXPECT_TRUE(result.run.trace.collisions.empty());  // nothing to hit
  EXPECT_TRUE(result.run.trace.others.empty());      // empty town
}

TEST(Correlation, FeaturesExtractedPerIncludedSubject) {
  // A small synthetic campaign: reuse one subject result twice under
  // different profiles so the correlation has variance to chew on.
  ExperimentHarness harness;
  CampaignResult campaign;
  campaign.subjects.push_back(harness.run_subject(make_roster()[3]));   // T4
  campaign.subjects.push_back(harness.run_subject(make_roster()[8]));   // T9
  const auto features = extract_features(campaign);
  ASSERT_EQ(features.size(), 2u);
  EXPECT_EQ(features[0].subject, "T4");
  EXPECT_GE(features[0].faulty_srr, 0.0);
  EXPECT_GE(features[1].qoe, 1.0);

  const auto rows = correlate(campaign);
  EXPECT_EQ(rows.size(), 15u);  // 3 experience x 5 performance
  // T4 has no gaming experience and T9 has: that axis has variance, so r is
  // defined (n=2 gives a degenerate +/-1, but defined).
  bool gaming_defined = false;
  for (const auto& row : rows) {
    if (row.experience == "gaming" && row.r.has_value()) gaming_defined = true;
  }
  EXPECT_TRUE(gaming_defined);

  const std::string report = render_correlations(campaign);
  EXPECT_NE(report.find("gaming"), std::string::npos);
  EXPECT_NE(report.find("n = 2"), std::string::npos);
}

}  // namespace
}  // namespace rdsim::core
