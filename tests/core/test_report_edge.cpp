// Edge cases of the report builders: empty campaigns, subjects with no
// usable windows, masked rendering.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace rdsim::core {
namespace {

TEST(ReportEdge, EmptyCampaignRendersHeadersOnly) {
  CampaignResult empty;
  const auto t2 = report::render_table2(empty);
  EXPECT_NE(t2.find("TABLE II"), std::string::npos);
  const auto t3 = report::render_table3(empty);
  EXPECT_NE(t3.find("Maximum TTC"), std::string::npos);
  const auto t4 = report::render_table4(empty);
  EXPECT_NE(t4.find("TABLE IV"), std::string::npos);
  const auto col = report::collision_summary(empty);
  EXPECT_EQ(col.included_subjects, 0u);
  EXPECT_EQ(report::fault_count_rows(empty).size(), 0u);
}

TEST(ReportEdge, SubjectWithoutDataYieldsEmptyCells) {
  CampaignResult campaign;
  SubjectResult s;
  s.profile = make_roster()[0];
  // Traces left empty: no samples at all.
  campaign.subjects.push_back(std::move(s));

  const auto ttc = report::ttc_rows(campaign);
  ASSERT_EQ(ttc.size(), 1u);
  EXPECT_FALSE(ttc[0].nfi.has_value());
  for (const auto& [label, cell] : ttc[0].cells) {
    EXPECT_FALSE(cell.has_value()) << label;
  }

  const auto srr = report::srr_rows(campaign);
  ASSERT_EQ(srr.size(), 1u);
  EXPECT_FALSE(srr[0].nfi.has_value());
  EXPECT_FALSE(srr[0].avg.has_value());

  // Rendering with empty cells must not crash and must print dashes.
  const auto rendered = report::render_table3(campaign);
  EXPECT_NE(rendered.find("-"), std::string::npos);
}

TEST(ReportEdge, FaultLabelsMatchPaperColumns) {
  const auto labels = report::fault_labels();
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], "5ms");
  EXPECT_EQ(labels[4], "5%");
}

TEST(ReportEdge, MitigationTableFallsBackWhenDisabled) {
  CampaignResult campaign;  // mitigation.enabled defaults to false
  const auto rendered = report::render_mitigation(campaign);
  EXPECT_NE(rendered.find("mitigation disabled"), std::string::npos);
}

TEST(ReportEdge, MitigationRowsReportTheFaultyRunSummary) {
  CampaignResult campaign;
  campaign.config.mitigation.enabled = true;
  SubjectResult s;
  s.profile = make_roster()[0];
  s.faulty.mitigation.enabled = true;
  s.faulty.mitigation.dwell_nominal = units::Seconds{7.5};
  s.faulty.mitigation.dwell_impaired = units::Seconds{2.5};
  s.faulty.mitigation.interventions = 42;
  s.faulty.mitigation.mrm_activations = 1;
  s.faulty.mitigation.mrm_time = units::Seconds{1.25};
  s.faulty.trace.collisions.push_back({3.0, 90, sim::ActorId{2}, "static_vehicle", 1.0});
  campaign.subjects.push_back(std::move(s));

  const auto rows = report::mitigation_rows(campaign);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].dwell_nominal.value(), 7.5);
  EXPECT_DOUBLE_EQ(rows[0].dwell_impaired.value(), 2.5);
  EXPECT_EQ(rows[0].interventions, 42u);
  EXPECT_EQ(rows[0].mrm_activations, 1u);
  EXPECT_EQ(rows[0].collisions, 1u);

  const auto rendered = report::render_mitigation(campaign);
  EXPECT_NE(rendered.find(rows[0].subject), std::string::npos);
  EXPECT_NE(rendered.find("42"), std::string::npos);

  // The ablation renderer pairs any two campaigns without crashing, even
  // when one side is empty.
  const CampaignResult empty;
  const auto ablation = report::render_mitigation_ablation(empty, campaign);
  EXPECT_NE(ablation.find("baseline"), std::string::npos);
  EXPECT_NE(ablation.find("mitigated"), std::string::npos);
}

TEST(ReportEdge, ExcludedSubjectNeverAppears) {
  CampaignResult campaign;
  SubjectResult t7;
  t7.profile = make_roster()[6];
  ASSERT_TRUE(t7.profile.excluded());
  campaign.subjects.push_back(std::move(t7));
  EXPECT_EQ(report::fault_count_rows(campaign).size(), 0u);
  EXPECT_EQ(report::ttc_rows(campaign).size(), 0u);
  EXPECT_EQ(report::srr_rows(campaign).size(), 0u);
  EXPECT_EQ(report::collision_summary(campaign).included_subjects, 0u);
}

TEST(ReportEdge, FaultWindowChangeSemantics) {
  // A change (inject while active) logs delete+add back-to-back; the window
  // pairing must produce two adjacent windows, not one corrupted one.
  trace::RunTrace t;
  trace::EgoSample e;
  e.t = 0.0;
  t.ego.push_back(e);
  e.t = 30.0;
  t.ego.push_back(e);
  t.faults.push_back({5.0, "delay", 5.0, true, "5ms"});
  t.faults.push_back({12.0, "delay", 5.0, false, "5ms"});
  t.faults.push_back({12.0, "loss", 0.05, true, "5%"});
  t.faults.push_back({20.0, "loss", 0.05, false, "5%"});
  const auto windows = t.fault_windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].label, "5ms");
  EXPECT_DOUBLE_EQ(windows[0].stop, 12.0);
  EXPECT_EQ(windows[1].label, "5%");
  EXPECT_DOUBLE_EQ(windows[1].start, 12.0);
}

}  // namespace
}  // namespace rdsim::core
