// Campaign serialization: round-trip fidelity (verified by campaign_hash),
// rejection of corrupt/truncated blobs, file save/load, and fingerprint
// sensitivity for the bench cache keys.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/campaign_hash.hpp"
#include "core/campaign_io.hpp"

namespace rdsim::core {
namespace {

// One miniature campaign shared by every test in this file (runs take ~2 s
// in total; the cap keeps the full route out of the unit-test budget).
const CampaignResult& mini_campaign() {
  static const CampaignResult campaign = [] {
    ExperimentConfig cfg;
    cfg.seed = 42;
    cfg.run_time_limit = units::Seconds{6.0};
    return ExperimentHarness{cfg}.run_campaign();
  }();
  return campaign;
}

TEST(CampaignIo, RoundTripPreservesCampaignHash) {
  const CampaignResult& campaign = mini_campaign();
  const std::uint64_t expected = check::campaign_hash(campaign);

  const std::vector<std::uint8_t> blob = serialize_campaign(campaign);
  const auto loaded = deserialize_campaign(blob);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(check::campaign_hash(*loaded), expected);
  EXPECT_EQ(loaded->subjects.size(), campaign.subjects.size());
  EXPECT_EQ(loaded->config.seed, campaign.config.seed);
  // Serialization itself is deterministic.
  EXPECT_EQ(serialize_campaign(*loaded), blob);
}

TEST(CampaignIo, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> blob = serialize_campaign(mini_campaign());
  ASSERT_GT(blob.size(), 16u);
  // Exhaustive on the header region, sampled beyond it (blobs are ~MBs).
  for (std::size_t cut = 0; cut < blob.size();
       cut = cut < 64 ? cut + 1 : cut + blob.size() / 97 + 1) {
    EXPECT_FALSE(deserialize_campaign(blob.data(), cut).has_value())
        << "cut " << cut << " of " << blob.size();
  }
}

TEST(CampaignIo, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> blob = serialize_campaign(mini_campaign());
  blob.push_back(0x00);
  EXPECT_FALSE(deserialize_campaign(blob).has_value());
}

TEST(CampaignIo, BitFlipsFailTheEmbeddedHashCheck) {
  const std::vector<std::uint8_t> blob = serialize_campaign(mini_campaign());
  // Flip one byte at several positions across the payload; either a field
  // fails to parse or the recomputed hash mismatches the embedded one.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{5}, blob.size() / 3, blob.size() / 2,
        blob.size() - 1}) {
    std::vector<std::uint8_t> corrupt = blob;
    corrupt[pos] ^= 0x40;
    EXPECT_FALSE(deserialize_campaign(corrupt).has_value()) << "pos " << pos;
  }
}

TEST(CampaignIo, SaveAndLoadRoundTripsThroughAFile) {
  const CampaignResult& campaign = mini_campaign();
  const std::string path =
      (std::filesystem::temp_directory_path() / "rdsim_test_campaign_io.bin")
          .string();
  ASSERT_TRUE(save_campaign(path, campaign));
  const auto loaded = load_campaign(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(check::campaign_hash(*loaded), check::campaign_hash(campaign));
  std::remove(path.c_str());
}

TEST(CampaignIo, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(load_campaign("/nonexistent/rdsim_no_such_file.bin").has_value());
  const std::string path =
      (std::filesystem::temp_directory_path() / "rdsim_test_campaign_bad.bin")
          .string();
  {
    std::ofstream f{path, std::ios::binary | std::ios::trunc};
    f << "not a campaign blob";
  }
  EXPECT_FALSE(load_campaign(path).has_value());
  std::remove(path.c_str());
}

TEST(CampaignIo, RoundTripPreservesMitigationBlocks) {
  // A mitigated campaign carries the opt_block payloads (config knobs and
  // per-run summaries); they must survive the wire format bit-exactly.
  ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.run_time_limit = units::Seconds{6.0};
  cfg.mitigation.enabled = true;
  const CampaignResult campaign = ExperimentHarness{cfg}.run_campaign();
  const std::uint64_t expected = check::campaign_hash(campaign);

  const std::vector<std::uint8_t> blob = serialize_campaign(campaign);
  const auto loaded = deserialize_campaign(blob);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(check::campaign_hash(*loaded), expected);
  ASSERT_TRUE(loaded->config.mitigation.enabled);
  EXPECT_EQ(loaded->config.mitigation.governor.min_dwell.value(),
            cfg.mitigation.governor.min_dwell.value());
  for (std::size_t i = 0; i < campaign.subjects.size(); ++i) {
    const mitigate::MitigationSummary& in = campaign.subjects[i].faulty.mitigation;
    const mitigate::MitigationSummary& out = loaded->subjects[i].faulty.mitigation;
    ASSERT_TRUE(out.enabled);
    EXPECT_EQ(out.transitions, in.transitions);
    EXPECT_EQ(out.mrm_activations, in.mrm_activations);
    EXPECT_EQ(out.dwell_degraded.value(), in.dwell_degraded.value());
    EXPECT_EQ(out.final_loss, in.final_loss);
  }
  EXPECT_EQ(serialize_campaign(*loaded), blob);
}

TEST(CampaignFingerprint, DistinguishesEveryCampaignShapingField) {
  const ExperimentConfig base;
  const std::uint64_t fp = experiment_config_fingerprint(base);
  EXPECT_EQ(fp, experiment_config_fingerprint(base));  // stable

  ExperimentConfig seed = base;
  seed.seed = 8;
  ExperimentConfig poi = base;
  poi.poi_fault_probability = 0.5;
  ExperimentConfig weights = base;
  weights.fault_weights[0] += 1.0;
  ExperimentConfig cap = base;
  cap.run_time_limit = units::Seconds{20.0};
  ExperimentConfig rds = base;
  rds.rds.station.video_fps = 29.0;
  ExperimentConfig safety = base;
  safety.safety.enabled = !safety.safety.enabled;
  ExperimentConfig mit = base;
  mit.mitigation.enabled = true;
  ExperimentConfig mit_knob = mit;
  mit_knob.mitigation.watchdog.deadline = units::Seconds{0.8};
  for (const auto* changed : {&seed, &poi, &weights, &cap, &rds, &safety, &mit}) {
    EXPECT_NE(experiment_config_fingerprint(*changed), fp);
  }
  // Two enabled campaigns with different thresholds must not share a cache.
  EXPECT_NE(experiment_config_fingerprint(mit_knob),
            experiment_config_fingerprint(mit));
}

TEST(CampaignFingerprint, CachePathIsKeyedByFingerprint) {
  const ExperimentConfig base;
  ExperimentConfig other = base;
  other.seed = 1234;
  EXPECT_NE(campaign_cache_path(base), campaign_cache_path(other));
  EXPECT_EQ(campaign_cache_path(base), campaign_cache_path(base));
}

TEST(CampaignFingerprint, CachePathSeparatesObsInstrumentedRuns) {
  // An obs-instrumented campaign produces side artifacts (report, trace) a
  // plain cache hit cannot regenerate, so the obs flag must key the path.
  const ExperimentConfig base;
  const std::string plain = campaign_cache_path(base, /*obs_instrumented=*/false);
  const std::string obs = campaign_cache_path(base, /*obs_instrumented=*/true);
  EXPECT_NE(plain, obs);
  EXPECT_EQ(plain, campaign_cache_path(base));  // default is un-instrumented
  EXPECT_NE(obs.find("_obs"), std::string::npos);
  EXPECT_EQ(plain.find("_obs"), std::string::npos);
}

}  // namespace
}  // namespace rdsim::core
