// Property sweep over the subject parameter space: on a clean link, every
// plausible operator must drive the focused scenarios without crashing —
// stability of the perception-control loop is a precondition for the fault
// study to mean anything.
#include <gtest/gtest.h>

#include "core/teleop.hpp"
#include "metrics/srr.hpp"

namespace rdsim::core {
namespace {

struct SubjectScenarioCase {
  int subject;           // 1..12
  const char* scenario;  // following | slalom | overtake
};

class CleanLinkStability : public ::testing::TestWithParam<SubjectScenarioCase> {};

sim::Scenario scenario_by_name(const std::string& name) {
  if (name == "following") return sim::make_following_scenario();
  if (name == "overtake") return sim::make_overtake_scenario();
  return sim::make_slalom_scenario();
}

TEST_P(CleanLinkStability, CompletesWithoutCollision) {
  const auto c = GetParam();
  const auto profile = make_roster()[static_cast<std::size_t>(c.subject - 1)];
  RunConfig rc;
  rc.run_id = profile.id + std::string{"-"} + c.scenario;
  rc.subject_id = profile.id;
  rc.driver = profile.driver;
  rc.seed = profile.seed;
  TeleopSession session{std::move(rc), scenario_by_name(c.scenario)};
  const RunResult r = session.run();
  EXPECT_TRUE(r.completed) << profile.id << " on " << c.scenario;
  EXPECT_TRUE(r.trace.collisions.empty()) << profile.id << " on " << c.scenario;

  // Steering must stay sane: baseline SRR in a plausible human band.
  metrics::SrrAnalyzer srr;
  const auto s = srr.analyze(r.trace);
  EXPECT_LT(s.rate_per_min, 40.0) << profile.id;
}

INSTANTIATE_TEST_SUITE_P(
    SubjectsByScenario, CleanLinkStability,
    ::testing::Values(SubjectScenarioCase{1, "following"},
                      SubjectScenarioCase{3, "following"},
                      SubjectScenarioCase{4, "slalom"},
                      SubjectScenarioCase{5, "slalom"},
                      SubjectScenarioCase{8, "overtake"},
                      SubjectScenarioCase{9, "slalom"},
                      SubjectScenarioCase{11, "overtake"},
                      SubjectScenarioCase{12, "following"}),
    [](const ::testing::TestParamInfo<SubjectScenarioCase>& param_info) {
      return "T" + std::to_string(param_info.param.subject) + "_" +
             param_info.param.scenario;
    });

class ExtremeDriverParams : public ::testing::TestWithParam<double> {};

TEST_P(ExtremeDriverParams, SlowReactionsStillStableOnCleanLink) {
  DriverParams d;
  d.reaction_time_s = GetParam();
  RunConfig rc;
  rc.run_id = "extreme";
  rc.subject_id = "X";
  rc.driver = d;
  rc.seed = 31;
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const RunResult r = session.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.trace.collisions.empty());
}

INSTANTIATE_TEST_SUITE_P(ReactionTimes, ExtremeDriverParams,
                         ::testing::Values(0.18, 0.35, 0.5, 0.65));

}  // namespace
}  // namespace rdsim::core
