// Closed-loop teleoperation sessions (integration of net + sim + driver).
#include <gtest/gtest.h>

#include "core/teleop.hpp"

namespace rdsim::core {
namespace {

RunConfig base_config(const char* id) {
  RunConfig rc;
  rc.run_id = id;
  rc.subject_id = "T0";
  rc.driver = DriverParams{};
  rc.seed = 11;
  return rc;
}

TEST(TeleopSession, GoldenRunCompletesCleanly) {
  TeleopSession session{base_config("golden"), sim::make_following_scenario()};
  const RunResult r = session.run();
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.timed_out);
  EXPECT_GT(r.frames_encoded, 1000u);
  EXPECT_GT(r.frames_displayed, 900u);
  EXPECT_TRUE(r.trace.collisions.empty());
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_GT(r.qoe.score(), 4.0);
  EXPECT_FALSE(r.trace.ego.empty());
}

TEST(TeleopSession, FaultPlanInjectsAndRemovesAtPoi) {
  RunConfig rc = base_config("fi");
  rc.fault_injected = true;
  rc.plan.push_back({"following", {net::FaultKind::kDelay, 25.0}});
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const RunResult r = session.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.faults_injected, 1u);
  // The log has a matched add/delete pair within the run.
  ASSERT_GE(r.trace.faults.size(), 2u);
  EXPECT_TRUE(r.trace.faults[0].added);
  EXPECT_EQ(r.trace.faults[0].fault_type, "delay");
  const auto windows = r.trace.fault_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_GT(windows[0].stop, windows[0].start + 3.0);  // situation-long
}

TEST(TeleopSession, DelayFaultRaisesLinkLatency) {
  RunConfig golden = base_config("g");
  TeleopSession gs{std::move(golden), sim::make_following_scenario()};
  const RunResult g = gs.run();

  RunConfig faulty = base_config("f");
  faulty.fault_injected = true;
  faulty.plan.push_back({"following", {net::FaultKind::kDelay, 50.0}});
  TeleopSession fs{std::move(faulty), sim::make_following_scenario()};
  const RunResult f = fs.run();

  EXPECT_GT(f.mean_downlink_latency.value(), g.mean_downlink_latency.value() + 5.0);
  EXPECT_GT(f.mean_uplink_latency.value(), g.mean_uplink_latency.value() + 5.0);  // bidirectional
}

TEST(TeleopSession, LossFaultCausesRetransmissions) {
  RunConfig rc = base_config("loss");
  rc.fault_injected = true;
  rc.plan.push_back({"following", {net::FaultKind::kPacketLoss, 0.05}});
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const RunResult r = session.run();
  EXPECT_GT(r.video_stats.retransmits_rto + r.video_stats.retransmits_fast, 10u);
  EXPECT_GT(r.qoe.frozen_time.value(), 0.05);  // visible stutter during the window
}

TEST(TeleopSession, DeterministicForSameSeed) {
  auto run_once = [] {
    RunConfig rc = base_config("det");
    rc.fault_injected = true;
    rc.plan.push_back({"following", {net::FaultKind::kPacketLoss, 0.02}});
    TeleopSession session{std::move(rc), sim::make_following_scenario()};
    return session.run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.trace.ego.size(), b.trace.ego.size());
  for (std::size_t i = 0; i < a.trace.ego.size(); i += 17) {
    EXPECT_DOUBLE_EQ(a.trace.ego[i].x, b.trace.ego[i].x) << i;
    EXPECT_DOUBLE_EQ(a.trace.ego[i].steer, b.trace.ego[i].steer) << i;
  }
  EXPECT_EQ(a.video_stats.retransmits_rto, b.video_stats.retransmits_rto);
}

TEST(TeleopSession, DifferentSeedsDiverge) {
  RunConfig a = base_config("a");
  a.seed = 1;
  RunConfig b = base_config("b");
  b.seed = 2;
  TeleopSession sa{std::move(a), sim::make_following_scenario()};
  TeleopSession sb{std::move(b), sim::make_following_scenario()};
  const auto ra = sa.run();
  const auto rb = sb.run();
  ASSERT_FALSE(ra.trace.ego.empty());
  ASSERT_FALSE(rb.trace.ego.empty());
  bool any_diff = false;
  const std::size_t n = std::min(ra.trace.ego.size(), rb.trace.ego.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ra.trace.ego[i].steer != rb.trace.ego[i].steer) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TeleopSession, DatagramTransportAblation) {
  RunConfig rc = base_config("dgram");
  rc.rds.datagram_video = true;
  rc.rds.datagram_commands = true;
  rc.fault_injected = true;
  rc.plan.push_back({"following", {net::FaultKind::kPacketLoss, 0.05}});
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const RunResult r = session.run();
  EXPECT_TRUE(r.completed);
  // No reliable-stream stats in datagram mode.
  EXPECT_EQ(r.video_stats.segments_sent, 0u);
  EXPECT_GT(r.frames_displayed, 500u);
}

TEST(TeleopSession, StepApiExposesProgress) {
  TeleopSession session{base_config("step"), sim::make_following_scenario()};
  EXPECT_FALSE(session.finished());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(session.step());
  }
  EXPECT_GT(session.now().to_seconds(), 2.0);
  EXPECT_GT(session.vehicle().runtime().ego_position(), units::Meters{5.0});
}

TEST(TeleopSession, QoeTransportCountersMirrorTheStreamStats) {
  // One source of truth: QoeStats::transport is the sum of the two streams'
  // own counters, never a second tally that could drift from them.
  RunConfig rc = base_config("transport");
  rc.fault_injected = true;
  rc.plan.push_back({"following", {net::FaultKind::kPacketLoss, 0.05}});
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const RunResult r = session.run();
  EXPECT_EQ(r.qoe.transport.retransmits_rto,
            r.video_stats.retransmits_rto + r.command_stats.retransmits_rto);
  EXPECT_EQ(r.qoe.transport.retransmits_fast,
            r.video_stats.retransmits_fast + r.command_stats.retransmits_fast);
  EXPECT_EQ(r.qoe.transport.stale_segments,
            r.video_stats.stale_segments + r.command_stats.stale_segments);
  // A 5 % loss window must actually produce retransmissions, or the
  // assertions above are vacuous.
  EXPECT_GT(r.qoe.transport.retransmits(), 0u);
}

TEST(TeleopSession, QoeTransportCountersAreZeroOnDatagramTransports) {
  RunConfig rc = base_config("transport_dgram");
  rc.rds.datagram_video = true;
  rc.rds.datagram_commands = true;
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const RunResult r = session.run();
  EXPECT_EQ(r.qoe.transport.retransmits(), 0u);
  EXPECT_EQ(r.qoe.transport.stale_segments, 0u);
}

TEST(TeleopSession, SevereDelayDegradesFeed) {
  RunConfig rc = base_config("severe");
  rc.fault_injected = true;
  rc.plan.push_back({"following", {net::FaultKind::kDelay, 200.0}});
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const RunResult r = session.run();
  // §VIII: >200 ms effectively stopped the feed — the sender must be
  // skipping frames and QoE must collapse during the fault window.
  EXPECT_GT(r.frames_skipped_sender, 20u);
  EXPECT_LT(r.qoe.score(), 4.0);
}

}  // namespace
}  // namespace rdsim::core
