#include <gtest/gtest.h>

#include "core/operator_subsystem.hpp"

namespace rdsim::core {
namespace {

using util::Duration;
using util::TimePoint;

// DriverModel borrows the scenario and road, so they must outlive every
// operator built here; function-local statics stay reachable (LSan-clean).
const sim::Scenario& shared_scenario() {
  static const sim::Scenario scenario = [] {
    sim::Scenario s;
    s.instructions.push_back({units::Meters{0.0}, units::Meters{5000.0}, 0,
                              units::MetersPerSecond{10.0}, units::Meters{0.0}, "cruise"});
    return s;
  }();
  return scenario;
}

const sim::RoadNetwork& shared_road() {
  static const sim::RoadNetwork road{sim::make_town05_route()};
  return road;
}

OperatorSubsystem make_operator(StationConfig station = {}) {
  return OperatorSubsystem{
      station, DriverModel{DriverParams{}, &shared_scenario(), &shared_road(),
                           util::Random{3, 3}}};
}

sim::WorldFrame frame_at(std::uint32_t id, TimePoint t) {
  sim::WorldFrame f;
  f.frame_id = id;
  f.sim_time_us = t.count_micros();
  f.ego.state.velocity = {10.0, 0.0};
  return f;
}

TEST(Operator, NoCommandsBeforeFirstFrame) {
  auto op = make_operator();
  EXPECT_FALSE(op.poll(TimePoint::from_seconds(0.1)).has_value());
  EXPECT_FALSE(op.poll(TimePoint::from_seconds(0.2)).has_value());
}

TEST(Operator, CommandsPacedAtConfiguredRate) {
  StationConfig station;
  station.command_rate_hz = 10.0;
  auto op = make_operator(station);
  op.on_frame(frame_at(1, TimePoint{}), TimePoint{});
  int commands = 0;
  for (int ms = 0; ms < 1000; ms += 5) {
    if (op.poll(TimePoint::from_micros(ms * 1000))) ++commands;
  }
  EXPECT_NEAR(commands, 10, 2);
}

TEST(Operator, CommandSequenceMonotonic) {
  auto op = make_operator();
  op.on_frame(frame_at(1, TimePoint{}), TimePoint{});
  std::uint32_t last = 0;
  for (int ms = 0; ms < 500; ms += 5) {
    if (auto cmd = op.poll(TimePoint::from_micros(ms * 1000))) {
      EXPECT_GT(cmd->sequence, last);
      last = cmd->sequence;
      EXPECT_EQ(cmd->based_on_frame, 1u);
    }
  }
  EXPECT_GT(last, 0u);
}

TEST(Operator, SupersededFramesDropped) {
  auto op = make_operator();
  op.on_frame(frame_at(5, TimePoint{}), TimePoint{});
  op.on_frame(frame_at(3, TimePoint{}), TimePoint{});  // late, already superseded
  EXPECT_EQ(op.displayed_frame_id(), 5u);
  EXPECT_EQ(op.frames_displayed(), 1u);
  EXPECT_EQ(op.frames_superseded(), 1u);
}

TEST(Operator, QoeTracksFreezes) {
  auto op = make_operator();
  // Smooth playback for 2 s at ~30 fps.
  std::uint32_t id = 0;
  for (int ms = 0; ms < 2000; ms += 33) {
    const auto t = TimePoint::from_micros(ms * 1000);
    op.on_frame(frame_at(++id, t), t);
    op.poll(t + Duration::millis(1));
  }
  const double frozen_smooth = op.qoe().frozen_time.value();
  // Then a 1.5 s freeze while polling continues.
  for (int ms = 2000; ms < 3500; ms += 33) {
    op.poll(TimePoint::from_micros(ms * 1000));
  }
  EXPECT_GT(op.qoe().frozen_time.value(), frozen_smooth + 1.0);
  EXPECT_GT(op.qoe().frozen_fraction(), 0.3);
}

TEST(Operator, QoeScoreDegradesWithFreezes) {
  auto smooth = make_operator();
  auto frozen = make_operator();
  std::uint32_t id = 0;
  for (int ms = 0; ms < 5000; ms += 33) {
    const auto t = TimePoint::from_micros(ms * 1000);
    smooth.on_frame(frame_at(++id, t), t);
    smooth.poll(t);
    // The frozen operator only gets every 12th frame (~0.4 s stalls).
    if (ms % 400 < 33) frozen.on_frame(frame_at(id, t), t);
    frozen.poll(t);
  }
  EXPECT_GT(smooth.qoe().score(), 4.5);
  EXPECT_LT(frozen.qoe().score(), smooth.qoe().score() - 1.0);
}

TEST(QoeStats, ScoreBounds) {
  QoeStats q;
  q.watch_time = units::Seconds{100.0};
  q.frozen_time = units::Seconds{95.0};
  q.freeze_episodes = 200;
  q.staleness_sum = units::Seconds{500.0};
  q.staleness_samples = 100;
  EXPECT_GE(q.score(), 1.0);
  QoeStats perfect;
  perfect.watch_time = units::Seconds{100.0};
  perfect.staleness_samples = 100;
  perfect.staleness_sum = units::Seconds{2.0};
  EXPECT_LE(perfect.score(), 5.0);
  EXPECT_GT(perfect.score(), 4.5);
}

}  // namespace
}  // namespace rdsim::core
