#include <gtest/gtest.h>

#include <limits>

#include "mitigate/mrm.hpp"

namespace rdsim::mitigate {
namespace {

using util::TimePoint;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr units::MetersPerSecond2 kFullBrake{8.0};
constexpr units::Seconds kDt{0.01};

MrmController make_mrm() { return MrmController{WatchdogConfig{}, kFullBrake}; }

sim::RoadProjection centered() { return {}; }

TEST(MrmController, DoesNotArmBeforeTheFirstCommand) {
  MrmController mrm = make_mrm();
  // +inf age = operator never had control: pre-handover grace.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(mrm.update(units::Seconds{kInf}, units::MetersPerSecond{10.0},
                            centered(), kDt, TimePoint::from_seconds(0.01 * i)));
  }
  EXPECT_EQ(mrm.watchdog_firings(), 0u);
  EXPECT_EQ(mrm.activations(), 0u);
}

TEST(MrmController, EngagesWhenCommandsGoStaleAndBrakes) {
  MrmController mrm = make_mrm();
  EXPECT_FALSE(mrm.update(units::Seconds{0.05}, units::MetersPerSecond{10.0},
                          centered(), kDt, TimePoint::from_seconds(0.0)));
  const auto control = mrm.update(units::Seconds{0.6}, units::MetersPerSecond{10.0},
                                  centered(), kDt, TimePoint::from_seconds(0.01));
  ASSERT_TRUE(control.has_value());
  EXPECT_TRUE(mrm.engaged());
  EXPECT_EQ(mrm.watchdog_firings(), 1u);
  EXPECT_EQ(mrm.activations(), 1u);
  EXPECT_DOUBLE_EQ(control->throttle, 0.0);
  // Service braking: 3.5 m/s² of an 8 m/s² plant.
  EXPECT_DOUBLE_EQ(control->brake, 3.5 / 8.0);
  EXPECT_DOUBLE_EQ(control->steer, 0.0);  // centred, aligned: no correction
}

TEST(MrmController, SteersBackTowardTheLaneCentre) {
  MrmController mrm = make_mrm();
  mrm.update(units::Seconds{0.05}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.0));
  sim::RoadProjection proj;
  proj.lane_offset = 1.0;    // one metre left of centre
  proj.heading_error = 0.1;  // pointing slightly left
  const auto control = mrm.update(units::Seconds{0.6}, units::MetersPerSecond{10.0},
                                  proj, kDt, TimePoint::from_seconds(0.01));
  ASSERT_TRUE(control.has_value());
  const WatchdogConfig cfg;
  // Left of centre and pointing left: both corrections steer right (negative).
  EXPECT_NEAR(control->steer,
              -(cfg.lane_gain * 1.0 + cfg.heading_gain * 0.1), 1e-12);
  EXPECT_LT(control->steer, 0.0);
}

TEST(MrmController, SteerAuthorityIsClamped) {
  MrmController mrm = make_mrm();
  mrm.update(units::Seconds{0.05}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.0));
  sim::RoadProjection proj;
  proj.lane_offset = -50.0;  // absurd offset must not command full lock
  const auto control = mrm.update(units::Seconds{0.6}, units::MetersPerSecond{10.0},
                                  proj, kDt, TimePoint::from_seconds(0.01));
  ASSERT_TRUE(control.has_value());
  EXPECT_DOUBLE_EQ(control->steer, WatchdogConfig{}.max_steer);
}

TEST(MrmController, HoldsTheVehicleAtStandstill) {
  MrmController mrm = make_mrm();
  mrm.update(units::Seconds{0.05}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.0));
  mrm.update(units::Seconds{0.6}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.01));
  ASSERT_TRUE(mrm.engaged());
  // Stopped, commands still stale: hold brake, stay engaged.
  const auto hold = mrm.update(units::Seconds{1.0}, units::MetersPerSecond{0.05},
                               centered(), kDt, TimePoint::from_seconds(0.02));
  ASSERT_TRUE(hold.has_value());
  EXPECT_DOUBLE_EQ(hold->brake, WatchdogConfig{}.hold_brake);
  EXPECT_TRUE(mrm.reached_standstill());
}

TEST(MrmController, ReleasesOnlyWhenStoppedAndCommandsAreFreshAgain) {
  MrmController mrm = make_mrm();
  mrm.update(units::Seconds{0.05}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.0));
  mrm.update(units::Seconds{0.6}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.01));
  ASSERT_TRUE(mrm.engaged());

  // Commands return mid-deceleration: the maneuver is committed, no release.
  EXPECT_TRUE(mrm.update(units::Seconds{0.05}, units::MetersPerSecond{6.0},
                         centered(), kDt, TimePoint::from_seconds(0.02))
                  .has_value());
  EXPECT_TRUE(mrm.engaged());

  // Stopped but commands stale again: still engaged.
  EXPECT_TRUE(mrm.update(units::Seconds{0.9}, units::MetersPerSecond{0.0},
                         centered(), kDt, TimePoint::from_seconds(0.03))
                  .has_value());

  // Stopped AND fresh: hand back to the operator.
  EXPECT_FALSE(mrm.update(units::Seconds{0.05}, units::MetersPerSecond{0.0},
                          centered(), kDt, TimePoint::from_seconds(0.04))
                   .has_value());
  EXPECT_FALSE(mrm.engaged());
  EXPECT_EQ(mrm.activations(), 1u);
}

TEST(MrmController, ReArmsForASecondEpisode) {
  MrmController mrm = make_mrm();
  mrm.update(units::Seconds{0.05}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.0));
  // Episode 1: engage, stop, release.
  mrm.update(units::Seconds{0.6}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.01));
  mrm.update(units::Seconds{0.7}, units::MetersPerSecond{0.0}, centered(), kDt,
             TimePoint::from_seconds(0.02));
  mrm.update(units::Seconds{0.05}, units::MetersPerSecond{0.0}, centered(), kDt,
             TimePoint::from_seconds(0.03));
  ASSERT_FALSE(mrm.engaged());
  // Episode 2.
  mrm.update(units::Seconds{0.6}, units::MetersPerSecond{8.0}, centered(), kDt,
             TimePoint::from_seconds(1.0));
  EXPECT_TRUE(mrm.engaged());
  EXPECT_EQ(mrm.activations(), 2u);
  EXPECT_EQ(mrm.watchdog_firings(), 2u);
}

TEST(MrmController, EngagedTimeAccumulatesWhileEngagedOnly) {
  MrmController mrm = make_mrm();
  mrm.update(units::Seconds{0.05}, units::MetersPerSecond{10.0}, centered(), kDt,
             TimePoint::from_seconds(0.0));
  EXPECT_DOUBLE_EQ(mrm.engaged_time().value(), 0.0);
  for (int i = 0; i < 10; ++i) {
    mrm.update(units::Seconds{0.6}, units::MetersPerSecond{10.0}, centered(), kDt,
               TimePoint::from_seconds(0.01 + 0.01 * i));
  }
  EXPECT_NEAR(mrm.engaged_time().value(), 0.1, 1e-12);
}

}  // namespace
}  // namespace rdsim::mitigate
