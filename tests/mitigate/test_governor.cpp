#include <gtest/gtest.h>

#include <vector>

#include "mitigate/governor.hpp"
#include "util/rng.hpp"

namespace rdsim::mitigate {
namespace {

using util::TimePoint;

LinkQuality quality(double rtt_ms, double loss, double staleness_s) {
  LinkQuality q;
  q.rtt = units::Millis{rtt_ms};
  q.rtt_valid = rtt_ms > 0.0;
  q.loss = loss;
  q.staleness = units::Seconds{staleness_s};
  q.staleness_valid = true;
  return q;
}

TEST(DegradationGovernor, StartsNominalAndStaysThereOnAHealthyLink) {
  DegradationGovernor gov{{}};
  for (int i = 0; i < 100; ++i) {
    gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(0.05 * i));
  }
  EXPECT_EQ(gov.state(), LinkState::kNominal);
  EXPECT_EQ(gov.transitions(), 0u);
}

TEST(DegradationGovernor, EntersTheStateWhoseThresholdIsExceeded) {
  GovernorConfig cfg;
  DegradationGovernor gov{cfg};
  gov.update(quality(50.0, 0.0, 0.05), TimePoint::from_seconds(0.0));
  EXPECT_EQ(gov.state(), LinkState::kDegraded);  // rtt >= 40 ms

  DegradationGovernor gov2{cfg};
  gov2.update(quality(15.0, 0.05, 0.05), TimePoint::from_seconds(0.0));
  EXPECT_EQ(gov2.state(), LinkState::kImpaired);  // loss >= 4 %
}

TEST(DegradationGovernor, EscalationJumpsLevelsDirectly) {
  DegradationGovernor gov{{}};
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(0.0));
  ASSERT_EQ(gov.state(), LinkState::kNominal);
  // A dead link (huge staleness) must not pass through DEGRADED first.
  gov.update(quality(15.0, 0.0, 2.0), TimePoint::from_seconds(1.5));
  EXPECT_EQ(gov.state(), LinkState::kLinkLoss);
  EXPECT_EQ(gov.transitions(), 1u);
}

TEST(DegradationGovernor, DeEscalationStepsOneLevelPerDwell) {
  GovernorConfig cfg;
  cfg.min_dwell = units::Seconds{1.0};
  DegradationGovernor gov{cfg};
  gov.update(quality(15.0, 0.0, 2.0), TimePoint::from_seconds(0.0));
  ASSERT_EQ(gov.state(), LinkState::kLinkLoss);

  // Fully recovered link: the governor walks back one level per dwell.
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(1.0));
  EXPECT_EQ(gov.state(), LinkState::kImpaired);
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(1.5));
  EXPECT_EQ(gov.state(), LinkState::kImpaired);  // dwell not yet served
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(2.0));
  EXPECT_EQ(gov.state(), LinkState::kDegraded);
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(3.0));
  EXPECT_EQ(gov.state(), LinkState::kNominal);
}

TEST(DegradationGovernor, HysteresisHoldsTheStateInsideTheExitBand) {
  GovernorConfig cfg;
  cfg.min_dwell = units::Seconds{0.0};  // isolate the hysteresis itself
  DegradationGovernor gov{cfg};
  gov.update(quality(45.0, 0.0, 0.05), TimePoint::from_seconds(0.0));
  ASSERT_EQ(gov.state(), LinkState::kDegraded);
  // 35 ms is below the 40 ms enter threshold but above 0.7 * 40 = 28 ms:
  // the state holds.
  gov.update(quality(35.0, 0.0, 0.05), TimePoint::from_seconds(0.05));
  EXPECT_EQ(gov.state(), LinkState::kDegraded);
  // Below the exit threshold it releases.
  gov.update(quality(20.0, 0.0, 0.05), TimePoint::from_seconds(0.10));
  EXPECT_EQ(gov.state(), LinkState::kNominal);
}

TEST(DegradationGovernor, DwellAccountingCoversTheWholeTimeline) {
  DegradationGovernor gov{{}};
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(0.0));
  gov.update(quality(100.0, 0.0, 0.05), TimePoint::from_seconds(2.0));
  ASSERT_EQ(gov.state(), LinkState::kImpaired);
  gov.finalize(TimePoint::from_seconds(5.0));
  EXPECT_DOUBLE_EQ(gov.dwell(LinkState::kNominal).value(), 2.0);
  EXPECT_DOUBLE_EQ(gov.dwell(LinkState::kImpaired).value(), 3.0);
  const double total = gov.dwell(LinkState::kNominal).value() +
                       gov.dwell(LinkState::kDegraded).value() +
                       gov.dwell(LinkState::kImpaired).value() +
                       gov.dwell(LinkState::kLinkLoss).value();
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(DegradationGovernor, NominalShapeIsBitExactPassThrough) {
  DegradationGovernor gov{{}};
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(0.0));
  const sim::VehicleControl in{0.73, -0.41, 0.02, false, false};
  const sim::VehicleControl out =
      gov.shape(in, units::MetersPerSecond{30.0}, TimePoint::from_seconds(0.0));
  EXPECT_EQ(out, in);
  EXPECT_EQ(gov.interventions(), 0u);
}

TEST(DegradationGovernor, DegradedShapeScalesThrottleAndCapsSpeed) {
  GovernorConfig cfg;
  DegradationGovernor gov{cfg};
  gov.update(quality(50.0, 0.0, 0.05), TimePoint::from_seconds(0.0));
  ASSERT_EQ(gov.state(), LinkState::kDegraded);

  // Under the cap: throttle scaled, no braking.
  sim::VehicleControl in{1.0, 0.0, 0.0, false, false};
  sim::VehicleControl out =
      gov.shape(in, units::MetersPerSecond{5.0}, TimePoint::from_seconds(0.0));
  EXPECT_DOUBLE_EQ(out.throttle, cfg.degraded.throttle_scale);
  EXPECT_DOUBLE_EQ(out.brake, 0.0);
  EXPECT_EQ(gov.interventions(), 1u);

  // Over the cap: throttle lifted, proportional brake.
  out = gov.shape(in, units::MetersPerSecond{15.0}, TimePoint::from_seconds(0.033));
  EXPECT_DOUBLE_EQ(out.throttle, 0.0);
  EXPECT_GT(out.brake, 0.0);
}

TEST(DegradationGovernor, SteeringRateIsLimitedFromTheDriversLastPosition) {
  GovernorConfig cfg;
  cfg.min_dwell = units::Seconds{0.0};
  DegradationGovernor gov{cfg};

  // One nominal shape records the wheel at -0.5.
  gov.update(quality(15.0, 0.0, 0.05), TimePoint::from_seconds(0.0));
  gov.shape({0.0, -0.5, 0.0, false, false}, units::MetersPerSecond{5.0},
            TimePoint::from_seconds(0.0));

  // Then the link degrades and the driver slams the wheel to +1.0. With the
  // degraded rate limit and dt = 0.1 s the wheel may move at most
  // steer_rate_limit * 0.1 — far short of the commanded position.
  gov.update(quality(50.0, 0.0, 0.05), TimePoint::from_seconds(0.05));
  ASSERT_EQ(gov.state(), LinkState::kDegraded);
  const sim::VehicleControl out =
      gov.shape({0.0, 1.0, 0.0, false, false}, units::MetersPerSecond{5.0},
                TimePoint::from_seconds(0.1));
  EXPECT_NEAR(out.steer, -0.5 + cfg.degraded.steer_rate_limit * 0.1, 1e-12);
}

// Satellite: 1000-iteration randomized hysteresis fuzz. Whatever quality
// sequence the link produces, the governor must never flap states faster
// than the configured dwell minimum, must keep its dwell accounting
// consistent with its transition count, and must stay monotone-safe.
TEST(DegradationGovernor, FuzzNeverFlapsFasterThanMinDwell) {
  util::Random rng{0xF17E57, 0x676f76ULL};  // seed-pinned: deterministic run
  for (int iter = 0; iter < 1000; ++iter) {
    GovernorConfig cfg;
    cfg.min_dwell = units::Seconds{rng.uniform(0.2, 2.0)};
    cfg.exit_margin = rng.uniform(0.3, 1.0);
    DegradationGovernor gov{cfg};

    double t = 0.0;
    double t_first = -1.0;  // dwell accounting starts at the first update
    double last_transition = 0.0;
    bool any_transition = false;
    std::uint64_t transitions_seen = 0;
    LinkState prev = gov.state();
    for (int step = 0; step < 60; ++step) {
      t += rng.uniform(0.01, 0.2);
      if (t_first < 0.0) t_first = t;
      // Adversarial quality: frequently straddles the thresholds.
      const LinkQuality q = quality(rng.uniform(0.0, 160.0),
                                    rng.uniform(0.0, 0.08),
                                    rng.uniform(0.0, 2.5));
      const LinkState next = gov.update(q, TimePoint::from_seconds(t));
      if (next != prev) {
        ++transitions_seen;
        if (any_transition) {
          ASSERT_GE(t - last_transition, cfg.min_dwell.value() - 1e-9)
              << "state flap faster than min_dwell at iter " << iter;
        }
        // De-escalation must be stepwise; escalation may jump.
        if (next < prev) {
          ASSERT_EQ(static_cast<int>(next), static_cast<int>(prev) - 1)
              << "de-escalation skipped a level at iter " << iter;
        }
        last_transition = t;
        any_transition = true;
        prev = next;
      }
    }
    ASSERT_EQ(gov.transitions(), transitions_seen);
    gov.finalize(TimePoint::from_seconds(t));
    double total = 0.0;
    for (std::size_t s = 0; s < kLinkStateCount; ++s) {
      total += gov.dwell(static_cast<LinkState>(s)).value();
    }
    ASSERT_NEAR(total, t - t_first, 1e-6)
        << "dwell accounting leaked time at iter " << iter;
  }
}

}  // namespace
}  // namespace rdsim::mitigate
