#include <gtest/gtest.h>

#include <limits>

#include "mitigate/link_quality.hpp"

namespace rdsim::mitigate {
namespace {

using util::TimePoint;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LinkQualityEstimator, ColdStartIsInvalidAndQuiet) {
  LinkQualityEstimator est{{}};
  // No streams, no frame displayed yet: the estimate refreshes but carries
  // nothing the governor could act on.
  EXPECT_TRUE(est.update(nullptr, nullptr, units::Seconds{kInf},
                         TimePoint::from_seconds(0.0)));
  EXPECT_FALSE(est.quality().rtt_valid);
  EXPECT_FALSE(est.quality().staleness_valid);
  EXPECT_DOUBLE_EQ(est.quality().loss, 0.0);
}

TEST(LinkQualityEstimator, SamplesAtTheConfiguredCadenceOnly) {
  EstimatorConfig cfg;
  cfg.update_period = units::Seconds{0.05};
  LinkQualityEstimator est{cfg};
  EXPECT_TRUE(est.update(nullptr, nullptr, units::Seconds{0.1},
                         TimePoint::from_seconds(0.0)));
  // Calls between refresh instants are no-ops.
  EXPECT_FALSE(est.update(nullptr, nullptr, units::Seconds{0.2},
                          TimePoint::from_seconds(0.01)));
  EXPECT_FALSE(est.update(nullptr, nullptr, units::Seconds{0.2},
                          TimePoint::from_seconds(0.049)));
  EXPECT_DOUBLE_EQ(est.quality().staleness.value(), 0.1);
  EXPECT_TRUE(est.update(nullptr, nullptr, units::Seconds{0.2},
                         TimePoint::from_seconds(0.05)));
  EXPECT_DOUBLE_EQ(est.quality().staleness.value(), 0.2);
}

TEST(LinkQualityEstimator, RttSeedsThenSmoothsTowardTheWorstStream) {
  EstimatorConfig cfg;
  cfg.rtt_alpha = 0.25;
  LinkQualityEstimator est{cfg};
  net::StreamStats video, command;
  video.srtt = units::Millis{20.0};
  command.srtt = units::Millis{60.0};

  est.update(&video, &command, units::Seconds{0.0}, TimePoint::from_seconds(0.0));
  ASSERT_TRUE(est.quality().rtt_valid);
  // First sample seeds the EWMA with the worst of the two streams.
  EXPECT_DOUBLE_EQ(est.quality().rtt.value(), 60.0);

  command.srtt = units::Millis{100.0};
  est.update(&video, &command, units::Seconds{0.0}, TimePoint::from_seconds(0.05));
  EXPECT_DOUBLE_EQ(est.quality().rtt.value(), 60.0 + 0.25 * (100.0 - 60.0));
}

TEST(LinkQualityEstimator, LossIsTheRetransmitFractionOfTheWindow) {
  EstimatorConfig cfg;
  cfg.loss_alpha = 1.0;  // no smoothing: expose the per-window sample
  LinkQualityEstimator est{cfg};
  net::StreamStats video;

  video.segments_sent = 90;
  video.retransmits_rto = 6;
  video.retransmits_fast = 4;
  est.update(&video, nullptr, units::Seconds{0.0}, TimePoint::from_seconds(0.0));
  EXPECT_DOUBLE_EQ(est.quality().loss, 10.0 / 100.0);

  // Next window: 100 more firsts, no new retransmits.
  video.segments_sent = 190;
  est.update(&video, nullptr, units::Seconds{0.0}, TimePoint::from_seconds(0.05));
  EXPECT_DOUBLE_EQ(est.quality().loss, 0.0);
}

TEST(LinkQualityEstimator, EmptyWindowKeepsThePreviousLossEstimate) {
  LinkQualityEstimator est{{}};
  net::StreamStats video;
  video.segments_sent = 50;
  video.retransmits_rto = 50;
  est.update(&video, nullptr, units::Seconds{0.0}, TimePoint::from_seconds(0.0));
  const double seeded = est.quality().loss;
  EXPECT_GT(seeded, 0.0);
  // No traffic at all in the next window: the estimate must hold, not decay
  // toward a fabricated zero sample.
  est.update(&video, nullptr, units::Seconds{0.0}, TimePoint::from_seconds(0.05));
  EXPECT_DOUBLE_EQ(est.quality().loss, seeded);
}

TEST(LinkQualityEstimator, DatagramOnlySessionsActOnStalenessAlone) {
  LinkQualityEstimator est{{}};
  est.update(nullptr, nullptr, units::Seconds{0.8}, TimePoint::from_seconds(0.0));
  EXPECT_FALSE(est.quality().rtt_valid);
  ASSERT_TRUE(est.quality().staleness_valid);
  EXPECT_DOUBLE_EQ(est.quality().staleness.value(), 0.8);
  EXPECT_DOUBLE_EQ(est.quality().loss, 0.0);
}

}  // namespace
}  // namespace rdsim::mitigate
