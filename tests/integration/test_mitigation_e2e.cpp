// End-to-end behaviour of the rdsim::mitigate stack in the closed teleop
// loop: the MRM acceptance scenario (total link loss past the watchdog
// deadline must produce a deterministic in-lane stop with zero collisions)
// and the non-interference guarantee (an enabled stack on a healthy link is
// bit-exact pass-through).
#include <gtest/gtest.h>

#include <cmath>

#include "core/teleop.hpp"

namespace rdsim::core {
namespace {

using util::TimePoint;

RunConfig mitigated_config(std::uint64_t seed) {
  RunConfig rc;
  rc.run_id = "mitigated";
  rc.subject_id = "T3";
  rc.driver = make_roster()[2].driver;
  rc.seed = seed;
  rc.mitigation.enabled = true;
  return rc;
}

TEST(MitigationE2E, TotalLinkLossTriggersInLaneMrmStop) {
  RunConfig rc = mitigated_config(303);
  rc.fault_injected = true;
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  // 100 % packet loss for 9 s, far beyond the 0.5 s watchdog deadline:
  // nothing crosses the link in either direction.
  session.injector().schedule({net::FaultKind::kPacketLoss, 1.0},
                              TimePoint::from_seconds(3.0),
                              TimePoint::from_seconds(12.0));

  bool stopped_during_outage = false;
  double stop_lane_offset = 0.0;
  while (session.step()) {
    const double t = session.now().to_seconds();
    if (t > 3.0 && t < 12.0 && session.vehicle().mrm() != nullptr &&
        session.vehicle().mrm()->engaged() &&
        session.vehicle().mrm()->reached_standstill() && !stopped_during_outage) {
      stopped_during_outage = true;
      stop_lane_offset = session.vehicle().world().project_ego().lane_offset;
    }
  }
  const RunResult r = session.run();

  // The MRM fired, reached a full stop inside the outage, and the stop was
  // in-lane: the vehicle held its lane centre, not a drift into the verge.
  ASSERT_TRUE(r.mitigation.enabled);
  EXPECT_GE(r.mitigation.watchdog_firings, 1u);
  EXPECT_GE(r.mitigation.mrm_activations, 1u);
  EXPECT_TRUE(r.mitigation.mrm_standstill);
  EXPECT_GT(r.mitigation.mrm_time.value(), 1.0);
  ASSERT_TRUE(stopped_during_outage);
  EXPECT_LT(std::abs(stop_lane_offset), 1.0);

  // Zero collisions, and the operator-side governor saw the outage too.
  EXPECT_TRUE(r.trace.collisions.empty());
  EXPECT_GT(r.mitigation.dwell_link_loss.value(), 0.0);

  // Once the link returns the operator resumes and the run finishes.
  EXPECT_TRUE(r.completed || r.timed_out);
}

TEST(MitigationE2E, MrmStopIsDeterministic) {
  auto run_once = [] {
    RunConfig rc = mitigated_config(303);
    rc.fault_injected = true;
    TeleopSession session{std::move(rc), sim::make_following_scenario()};
    session.injector().schedule({net::FaultKind::kPacketLoss, 1.0},
                                TimePoint::from_seconds(3.0),
                                TimePoint::from_seconds(12.0));
    return session.run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.trace.ego.size(), b.trace.ego.size());
  for (std::size_t i = 0; i < a.trace.ego.size(); ++i) {
    ASSERT_EQ(a.trace.ego[i].x, b.trace.ego[i].x) << "sample " << i;
    ASSERT_EQ(a.trace.ego[i].y, b.trace.ego[i].y) << "sample " << i;
    ASSERT_EQ(a.trace.ego[i].brake, b.trace.ego[i].brake) << "sample " << i;
  }
  EXPECT_EQ(a.mitigation.mrm_time.value(), b.mitigation.mrm_time.value());
  EXPECT_EQ(a.mitigation.transitions, b.mitigation.transitions);
}

TEST(MitigationE2E, EnabledStackOnHealthyLinkIsPassThrough) {
  // The governor must stay NOMINAL for the whole run and the trajectory must
  // be bit-identical to the unmitigated twin: enabling mitigation on a clean
  // link changes nothing but the summary block.
  auto run_with = [](bool enabled) {
    RunConfig rc;
    rc.run_id = enabled ? "mit" : "plain";
    rc.subject_id = "T2";
    rc.driver = make_roster()[1].driver;
    rc.seed = 202;
    rc.mitigation.enabled = enabled;
    TeleopSession session{std::move(rc), sim::make_following_scenario()};
    return session.run();
  };
  const RunResult plain = run_with(false);
  const RunResult mit = run_with(true);

  EXPECT_FALSE(plain.mitigation.enabled);
  ASSERT_TRUE(mit.mitigation.enabled);
  EXPECT_EQ(mit.mitigation.mrm_activations, 0u);
  EXPECT_EQ(mit.mitigation.interventions, 0u);
  EXPECT_DOUBLE_EQ(mit.mitigation.dwell_degraded.value(), 0.0);
  EXPECT_DOUBLE_EQ(mit.mitigation.dwell_impaired.value(), 0.0);
  EXPECT_DOUBLE_EQ(mit.mitigation.dwell_link_loss.value(), 0.0);

  ASSERT_EQ(plain.trace.ego.size(), mit.trace.ego.size());
  for (std::size_t i = 0; i < plain.trace.ego.size(); ++i) {
    ASSERT_EQ(plain.trace.ego[i].x, mit.trace.ego[i].x) << "sample " << i;
    ASSERT_EQ(plain.trace.ego[i].y, mit.trace.ego[i].y) << "sample " << i;
    ASSERT_EQ(plain.trace.ego[i].steer, mit.trace.ego[i].steer) << "sample " << i;
  }
  EXPECT_EQ(plain.completed, mit.completed);
  EXPECT_EQ(plain.duration.value(), mit.duration.value());
}

TEST(MitigationE2E, GovernorShapesCommandsUnderSustainedDelay) {
  // A constant 50 ms delay is invisible to the vehicle-side watchdog (the
  // command age stays far below the deadline) but the operator-side
  // estimator sees the RTT and the governor must degrade and intervene.
  auto run_with = [](bool enabled) {
    RunConfig rc;
    rc.run_id = enabled ? "gov" : "bare";
    rc.subject_id = "T6";
    rc.driver = make_roster()[5].driver;
    rc.seed = 606;
    rc.fault_injected = true;
    rc.mitigation.enabled = enabled;
    const auto scenario = sim::make_following_scenario();
    for (const auto& poi : scenario.pois) {
      rc.plan.push_back({poi.name, {net::FaultKind::kDelay, 50.0}});
    }
    TeleopSession session{std::move(rc), scenario};
    return session.run();
  };
  const RunResult r = run_with(true);
  ASSERT_TRUE(r.mitigation.enabled);
  EXPECT_GT(r.mitigation.dwell_degraded.value() +
                r.mitigation.dwell_impaired.value(),
            0.0);
  EXPECT_GT(r.mitigation.interventions, 0u);
  EXPECT_EQ(r.mitigation.mrm_activations, 0u);  // watchdog never trips
  EXPECT_TRUE(r.completed || r.timed_out);
}

}  // namespace
}  // namespace rdsim::core
