// End-to-end shape assertions on the full test route: the qualitative
// findings of the paper must hold for a representative subject.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace rdsim::core {
namespace {

struct RouteRuns {
  RunResult golden;
  RunResult heavy_loss;   // 5% loss at every POI
  RunResult light_delay;  // 5 ms delay at every POI
};

const RouteRuns& runs() {
  static const RouteRuns r = [] {
    const auto profile = make_roster()[8];  // T9: mid-skill subject
    auto run_with = [&](const char* id,
                        std::optional<net::FaultSpec> fault) {
      RunConfig rc;
      rc.run_id = id;
      rc.subject_id = profile.id;
      rc.driver = profile.driver;
      rc.seed = profile.seed;
      const auto scenario = sim::make_test_route_scenario();
      if (fault) {
        rc.fault_injected = true;
        for (const auto& poi : scenario.pois) rc.plan.push_back({poi.name, *fault});
      }
      TeleopSession session{std::move(rc), scenario};
      return session.run();
    };
    RouteRuns out;
    out.golden = run_with("golden", std::nullopt);
    out.heavy_loss = run_with("loss5", net::FaultSpec{net::FaultKind::kPacketLoss, 0.05});
    out.light_delay = run_with("delay5", net::FaultSpec{net::FaultKind::kDelay, 5.0});
    return out;
  }();
  return r;
}

TEST(EndToEnd, AllRunsFinishTheRoute) {
  EXPECT_TRUE(runs().golden.completed);
  EXPECT_TRUE(runs().light_delay.completed);
  EXPECT_TRUE(runs().heavy_loss.completed || runs().heavy_loss.timed_out);
}

TEST(EndToEnd, GoldenRunIsClean) {
  EXPECT_TRUE(runs().golden.trace.collisions.empty());
  EXPECT_GT(runs().golden.qoe.score(), 4.0);
}

TEST(EndToEnd, HeavyLossDegradesQoe) {
  // §VI.F: mean QoE of faulty runs 2.81 (min 2, max 4). Sustained 5 % loss
  // is worse than the paper's intermittent injection but must clearly sit
  // below the golden run.
  EXPECT_LT(runs().heavy_loss.qoe.score(), runs().golden.qoe.score() - 0.5);
  EXPECT_GT(runs().heavy_loss.qoe.frozen_fraction(),
            runs().golden.qoe.frozen_fraction() + 0.02);
}

TEST(EndToEnd, LightDelayIsBenign) {
  // §VI: "a 5ms delay does not cause significant violations".
  metrics::SrrAnalyzer srr;
  const double g = srr.analyze(runs().golden.trace).rate_per_min;
  const double d = srr.analyze(runs().light_delay.trace).rate_per_min;
  EXPECT_NEAR(d, g, std::max(2.5, 0.45 * g));
  EXPECT_TRUE(runs().light_delay.trace.collisions.empty());
}

TEST(EndToEnd, HeavyLossRaisesSrr) {
  metrics::SrrAnalyzer srr;
  const double g = srr.analyze(runs().golden.trace).rate_per_min;
  const double l = srr.analyze(runs().heavy_loss.trace).rate_per_min;
  EXPECT_GT(l, g);
}

TEST(EndToEnd, ManoeuvresTakeLongerUnderFaults) {
  // Fig. 4: the same slalom takes visibly longer in the faulty run.
  const auto golden_time =
      metrics::traversal_time(runs().golden.trace, units::Meters{600.0}, units::Meters{840.0});
  const auto faulty_time =
      metrics::traversal_time(runs().heavy_loss.trace, units::Meters{600.0},
                              units::Meters{840.0});
  ASSERT_TRUE(golden_time.has_value());
  if (faulty_time) {
    EXPECT_GT(*faulty_time, *golden_time * 1.05);
  }
}

TEST(EndToEnd, TtcComputableOnFollowingLegs) {
  metrics::TtcAnalyzer ttc;
  const auto series = ttc.series(runs().golden.trace);
  EXPECT_GT(series.size(), 100u);
  const auto stats = ttc.summarize(series);
  EXPECT_GT(stats.min, units::Seconds{0.0});
  EXPECT_LT(stats.min, units::Seconds{8.0});   // close-ish following happens
  EXPECT_GT(stats.max, units::Seconds{15.0});  // and relaxed following too
}

TEST(EndToEnd, LaneInvasionsRecordedDuringSlalom) {
  // The instructed slalom requires repeated lane changes: the lane-invasion
  // sensor must have fired several times even in the golden run.
  EXPECT_GE(runs().golden.trace.lane_invasions.size(), 4u);
}

}  // namespace
}  // namespace rdsim::core
