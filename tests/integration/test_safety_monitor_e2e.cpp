// End-to-end safety-monitor behaviour on a disturbed teleoperation session:
// the paper's "design loop" claim, verified in the closed loop rather than
// at the unit level.
#include <gtest/gtest.h>

#include "core/teleop.hpp"

namespace rdsim::core {
namespace {

RunResult run_following_with(net::FaultSpec fault, bool monitor) {
  RunConfig rc;
  rc.run_id = monitor ? "guarded" : "bare";
  rc.subject_id = "T6";
  rc.driver = make_roster()[5].driver;  // risk-prone subject
  rc.seed = 606;
  rc.fault_injected = true;
  rc.safety.enabled = monitor;
  rc.safety.max_command_age = units::Seconds{0.25};
  const auto scenario = sim::make_following_scenario();
  for (const auto& poi : scenario.pois) rc.plan.push_back({poi.name, fault});
  TeleopSession session{std::move(rc), scenario};
  return session.run();
}

TEST(SafetyMonitorE2E, EngagesDuringLossStalls) {
  const auto guarded =
      run_following_with({net::FaultKind::kPacketLoss, 0.08}, true);
  EXPECT_GT(guarded.safety_activations, 0u);
}

TEST(SafetyMonitorE2E, NeverEngagesOnCleanLink) {
  RunConfig rc;
  rc.run_id = "clean";
  rc.subject_id = "T5";
  rc.driver = make_roster()[4].driver;
  rc.seed = 505;
  rc.safety.enabled = true;
  rc.safety.max_command_age = units::Seconds{0.25};
  TeleopSession session{std::move(rc), sim::make_following_scenario()};
  const auto r = session.run();
  EXPECT_EQ(r.safety_activations, 0u);
  EXPECT_TRUE(r.completed);
}

TEST(SafetyMonitorE2E, ConstantModerateDelayIsInvisibleToWatchdog) {
  // The negative design-loop result: a command-age watchdog cannot see a
  // constant 50 ms delay (command age stays ~85 ms << 250 ms).
  const auto guarded = run_following_with({net::FaultKind::kDelay, 50.0}, true);
  EXPECT_EQ(guarded.safety_activations, 0u);
}

TEST(SafetyMonitorE2E, MonitorDoesNotPreventRunCompletion) {
  const auto guarded =
      run_following_with({net::FaultKind::kPacketLoss, 0.05}, true);
  EXPECT_TRUE(guarded.completed || guarded.timed_out);
  EXPECT_FALSE(guarded.trace.ego.empty());
}

}  // namespace
}  // namespace rdsim::core
