#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/csv.hpp"

namespace rdsim::util {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w{os};
  w.write_header({"a", "b"});
  w.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w{os};
  w.write_row({"has,comma", "has\"quote", "plain", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",plain,\"line\nbreak\"\n");
}

TEST(CsvWriter, FluentFields) {
  std::ostringstream os;
  CsvWriter w{os};
  w.field("x").field(1.5).field(static_cast<std::int64_t>(-7));
  w.end_row();
  EXPECT_EQ(os.str(), "x,1.5,-7\n");
}

TEST(CsvTable, ParsesSimpleDocument) {
  const auto t = CsvTable::parse("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(t.header().size(), 3u);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column("b"), 1);
  EXPECT_EQ(t.column("missing"), -1);
  EXPECT_DOUBLE_EQ(t.number(0, t.column("c")), 3.0);
  EXPECT_DOUBLE_EQ(t.number(1, t.column("a")), 4.0);
}

TEST(CsvTable, ParsesQuotedCells) {
  const auto t = CsvTable::parse("name,value\n\"x,y\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0)[0], "x,y");
  EXPECT_EQ(t.row(0)[1], "say \"hi\"");
}

TEST(CsvTable, HandlesCrLfAndMissingTrailingNewline) {
  const auto t = CsvTable::parse("a,b\r\n1,2\r\n3,4");
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.number(1, 1), 4.0);
}

TEST(CsvTable, NumberOnBadInputIsZero) {
  const auto t = CsvTable::parse("a\nnot-a-number\n");
  EXPECT_DOUBLE_EQ(t.number(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.number(5, 0), 0.0);   // row out of range
  EXPECT_DOUBLE_EQ(t.number(0, -1), 0.0);  // missing column
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::ostringstream os;
  CsvWriter w{os};
  w.write_header({"t", "label"});
  w.field(1.25).field("alpha,beta");
  w.end_row();
  w.field(2.5).field("plain");
  w.end_row();
  const auto t = CsvTable::parse(os.str());
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.number(0, 0), 1.25);
  EXPECT_EQ(t.row(0)[1], "alpha,beta");
  EXPECT_EQ(t.row(1)[1], "plain");
}

TEST(FormatNumber, CompactRepresentation) {
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(-42.0), "-42");
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_EQ(format_number(0.125), "0.125");
  EXPECT_EQ(format_number(std::nan("")), "nan");
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
}

}  // namespace
}  // namespace rdsim::util
