#include <gtest/gtest.h>

#include "util/delay_line.hpp"
#include "util/ring_buffer.hpp"

namespace rdsim::util {
namespace {

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb{4};
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> rb{3};
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), 5);
}

TEST(RingBuffer, AtIndexesFromFront) {
  RingBuffer<int> rb{3};
  rb.push(10);
  rb.push(20);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(1), 20);
  EXPECT_THROW(rb.at(2), std::out_of_range);
}

TEST(RingBuffer, ThrowsOnEmptyAccess) {
  RingBuffer<int> rb{2};
  EXPECT_THROW(rb.pop(), std::out_of_range);
  EXPECT_THROW(rb.front(), std::out_of_range);
}

TEST(RingBuffer, WrapsCorrectlyAfterManyOps) {
  RingBuffer<int> rb{4};
  for (int round = 0; round < 10; ++round) {
    rb.push(round * 2);
    rb.push(round * 2 + 1);
    EXPECT_EQ(rb.pop(), round * 2);
    EXPECT_EQ(rb.pop(), round * 2 + 1);
  }
}

TEST(RingBuffer, ZeroCapacityClampedToOne) {
  RingBuffer<int> rb{0};
  EXPECT_EQ(rb.capacity(), 1u);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.pop(), 2);
}

TEST(DelayLine, NothingVisibleBeforeDelayElapses) {
  DelayLine<int> dl{Duration::millis(100)};
  dl.push(TimePoint::from_micros(0), 42);
  EXPECT_FALSE(dl.read(TimePoint::from_micros(50000)).has_value());
  EXPECT_EQ(dl.read(TimePoint::from_micros(100000)).value(), 42);
}

TEST(DelayLine, ReturnsNewestVisibleValue) {
  DelayLine<int> dl{Duration::millis(10)};
  dl.push(TimePoint::from_micros(0), 1);
  dl.push(TimePoint::from_micros(5000), 2);
  dl.push(TimePoint::from_micros(50000), 3);
  // At t=20ms both 1 and 2 are visible; the newest wins.
  EXPECT_EQ(dl.read(TimePoint::from_micros(20000)).value(), 2);
  // Value 3 not yet visible; the last visible value is held.
  EXPECT_EQ(dl.read(TimePoint::from_micros(55000)).value(), 2);
  EXPECT_EQ(dl.read(TimePoint::from_micros(60000)).value(), 3);
}

TEST(DelayLine, HoldsLastValueForever) {
  DelayLine<int> dl{Duration::millis(1)};
  dl.push(TimePoint::from_micros(0), 9);
  EXPECT_EQ(dl.read(TimePoint::from_seconds(100.0)).value(), 9);
  EXPECT_EQ(dl.read(TimePoint::from_seconds(200.0)).value(), 9);
}

TEST(DelayLine, ClearResets) {
  DelayLine<int> dl{Duration::millis(1)};
  dl.push(TimePoint::from_micros(0), 9);
  dl.clear();
  EXPECT_FALSE(dl.read(TimePoint::from_seconds(1.0)).has_value());
  EXPECT_EQ(dl.pending(), 0u);
}

TEST(DelayLine, SetDelayAffectsVisibility) {
  DelayLine<int> dl{Duration::millis(100)};
  dl.push(TimePoint::from_micros(0), 5);
  dl.set_delay(Duration::millis(10));
  EXPECT_EQ(dl.read(TimePoint::from_micros(10000)).value(), 5);
}

}  // namespace
}  // namespace rdsim::util
