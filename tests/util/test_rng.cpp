#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "util/rng.hpp"

namespace rdsim::util {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a{42, 7};
  Pcg32 b{42, 7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a{1};
  Pcg32 b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a{42, 1};
  Pcg32 b{42, 2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 rng{123};
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Pcg32, NextBelowCoversRange) {
  Pcg32 rng{9};
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng{77};
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, ForkIsIndependent) {
  Pcg32 parent{5};
  Pcg32 child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u32() == child.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Random, UniformMean) {
  Random rng{2024};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Random, UniformRangeRespected) {
  Random rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Random, UniformIntInclusive) {
  Random rng{4};
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(7, 2), 7);  // degenerate: returns lo
}

TEST(Random, BernoulliRate) {
  Random rng{11};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Random, NormalMoments) {
  Random rng{13};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Random, NormalScaled) {
  Random rng{17};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Random, ExponentialMean) {
  Random rng{19};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
}

TEST(Random, WeightedIndexProportions) {
  Random rng{23};
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never picked
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Random, WeightedIndexDegenerate) {
  Random rng{29};
  EXPECT_EQ(rng.weighted_index({}), 0u);
  EXPECT_EQ(rng.weighted_index({0.0, 0.0}), 0u);
}

TEST(Splitmix64, MatchesReferenceVectors) {
  // Reference outputs of Vigna's splitmix64 for state 0, 1, 2, ... — the
  // same constants every public implementation uses.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(splitmix64(2), 0x975835de1c9756ceULL);
  EXPECT_EQ(splitmix64(0x123456789abcdefULL), splitmix64(0x123456789abcdefULL));
}

TEST(Splitmix64, AvalanchesOnSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits; this is
  // what makes neighbouring subject indices produce unrelated sub-seeds.
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = splitmix64(0xdeadbeefULL);
    const std::uint64_t b = splitmix64(0xdeadbeefULL ^ (1ULL << bit));
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 10) << "bit " << bit;
    EXPECT_LT(flipped, 54) << "bit " << bit;
  }
}

TEST(Splitmix64, SubjectSubSeedsAreDistinct) {
  // The roster derives seed_i = splitmix64(campaign ^ splitmix64(i)); no two
  // subjects across several campaigns may collide.
  std::set<std::uint64_t> seen;
  for (std::uint64_t campaign : {7ULL, 11ULL, 42ULL, 0ULL}) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      seen.insert(splitmix64(campaign ^ splitmix64(i)));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u);
}

TEST(Random, ShufflePermutes) {
  Random rng{31};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

}  // namespace
}  // namespace rdsim::util
