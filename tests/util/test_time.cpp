#include <gtest/gtest.h>

#include "util/time.hpp"

namespace rdsim::util {
namespace {

TEST(Duration, Construction) {
  EXPECT_EQ(Duration::micros(1500).count_micros(), 1500);
  EXPECT_EQ(Duration::millis(3).count_micros(), 3000);
  EXPECT_EQ(Duration::seconds(0.5).count_micros(), 500000);
  EXPECT_TRUE(Duration{}.is_zero());
  EXPECT_TRUE(Duration::millis(-1).is_negative());
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(10);
  const Duration b = Duration::millis(4);
  EXPECT_EQ((a + b).count_micros(), 14000);
  EXPECT_EQ((a - b).count_micros(), 6000);
  EXPECT_EQ((a * 3).count_micros(), 30000);
  EXPECT_EQ((3 * a).count_micros(), 30000);
  EXPECT_EQ((a / 2).count_micros(), 5000);
  EXPECT_EQ((-a).count_micros(), -10000);
  Duration c = a;
  c += b;
  EXPECT_EQ(c.count_micros(), 14000);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(250).to_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::millis(250).to_millis(), 250.0);
}

TEST(Duration, Comparison) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GE(Duration::millis(2), Duration::millis(2));
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::from_seconds(1.0);
  const TimePoint t1 = t0 + Duration::millis(500);
  EXPECT_EQ(t1.count_micros(), 1500000);
  EXPECT_EQ((t1 - t0).count_micros(), 500000);
  EXPECT_EQ((t1 - Duration::millis(500)), t0);
  TimePoint t2 = t0;
  t2 += Duration::seconds(2.0);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 3.0);
}

TEST(Duration, NegativeDurations) {
  const Duration neg = Duration::millis(-250);
  EXPECT_TRUE(neg.is_negative());
  EXPECT_FALSE(neg.is_zero());
  EXPECT_DOUBLE_EQ(neg.to_seconds(), -0.25);
  EXPECT_DOUBLE_EQ(neg.to_millis(), -250.0);
  EXPECT_EQ(-neg, Duration::millis(250));
  EXPECT_EQ(neg + Duration::millis(250), Duration{});
  EXPECT_LT(neg, Duration{});
  // Negative scaling flips sign; integer division truncates toward zero.
  EXPECT_EQ(Duration::micros(3) * -2, Duration::micros(-6));
  EXPECT_EQ(Duration::micros(-3) / 2, Duration::micros(-1));
}

TEST(Duration, MicrosecondResolutionRoundTrips) {
  // seconds() truncates to the microsecond grid; values on the grid are
  // exact both ways.
  EXPECT_EQ(Duration::seconds(0.000001).count_micros(), 1);
  EXPECT_EQ(Duration::seconds(1.5).count_micros(), 1500000);
  EXPECT_DOUBLE_EQ(Duration::micros(1).to_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(Duration::micros(1).to_millis(), 1e-3);
  // Sub-microsecond residue truncates (int64 cast, toward zero).
  EXPECT_EQ(Duration::seconds(0.0000014).count_micros(), 1);
  EXPECT_EQ(Duration::seconds(-0.0000014).count_micros(), -1);
  // Round-trip through to_seconds() is exact for on-grid values.
  const Duration d = Duration::micros(1234567);
  EXPECT_EQ(Duration::seconds(d.to_seconds()), d);
}

TEST(TimePoint, EdgeCases) {
  // The epoch is time zero; subtraction can go before it.
  const TimePoint epoch;
  const TimePoint before = epoch - Duration::millis(5);
  EXPECT_LT(before, epoch);
  EXPECT_EQ(before.count_micros(), -5000);
  EXPECT_EQ((epoch - before), Duration::millis(5));
  // from_seconds truncates to the microsecond grid like Duration::seconds.
  EXPECT_EQ(TimePoint::from_seconds(0.0000019).count_micros(), 1);
  EXPECT_EQ(TimePoint::from_micros(1500000), TimePoint::from_seconds(1.5));
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), TimePoint{});
  clock.advance(Duration::millis(20));
  clock.advance(Duration::millis(20));
  EXPECT_DOUBLE_EQ(clock.now().to_seconds(), 0.04);
  // Negative advances are ignored: the clock never goes backwards.
  clock.advance(Duration::millis(-100));
  EXPECT_DOUBLE_EQ(clock.now().to_seconds(), 0.04);
  clock.reset();
  EXPECT_EQ(clock.now(), TimePoint{});
}

}  // namespace
}  // namespace rdsim::util
