// Thread-pool semantics: task execution, parallel_for coverage, exception
// propagation, shutdown. These tests are the designated workload for the
// asan-ubsan and tsan presets — keep every assertion data-race-free (atomics
// or per-index slots only).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace rdsim::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkersMeansHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, SubmitFutureCarriesException) {
  ThreadPool pool{2};
  auto f = pool.submit([] { throw std::runtime_error{"task boom"}; });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  auto g = pool.submit([] {});
  EXPECT_NO_THROW(g.get());
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForWritesDisjointSlotsWithoutRaces) {
  // The campaign runner's exact access pattern: each index writes its own
  // element of a pre-sized vector, no synchronization between bodies.
  ThreadPool pool{8};
  const std::size_t n = 512;
  std::vector<std::size_t> out(n, 0);
  pool.parallel_for(n, [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoop) {
  ThreadPool pool{2};
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  // Deterministic error behavior: whichever worker finishes first, the
  // caller always sees the exception from the smallest failing index.
  ThreadPool pool{4};
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      pool.parallel_for(64, [](std::size_t i) {
        if (i == 13 || i == 40) {
          throw std::runtime_error{"index " + std::to_string(i)};
        }
      });
      FAIL() << "expected parallel_for to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 13");
    }
  }
}

TEST(ThreadPool, ParallelForFinishesAllWorkEvenWhenOneIndexThrows) {
  ThreadPool pool{4};
  const std::size_t n = 128;
  std::vector<std::atomic<int>> hits(n);
  try {
    pool.parallel_for(n, [&hits](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 7) throw std::runtime_error{"boom"};
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  // No task was abandoned: every index ran before the rethrow.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool{1};
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor joins after draining the queue.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ManyConcurrentParallelForsFromOnePool) {
  // parallel_for is re-entrant across calls (not nested): run several
  // batches back to back and check totals.
  ThreadPool pool{4};
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&total](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 10L * (99L * 100L / 2L));
}

}  // namespace
}  // namespace rdsim::util
