#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/filters.hpp"

namespace rdsim::util {
namespace {

TEST(FirstOrderLowPass, PrimesWithFirstSample) {
  FirstOrderLowPass lp{0.5};
  EXPECT_DOUBLE_EQ(lp.step(3.0, 0.01), 3.0);
}

TEST(FirstOrderLowPass, ConvergesToStep) {
  FirstOrderLowPass lp{0.1};
  lp.step(0.0, 0.01);
  double v = 0.0;
  for (int i = 0; i < 500; ++i) v = lp.step(1.0, 0.01);
  EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(FirstOrderLowPass, TimeConstantRoughlyRight) {
  // After one time constant the response to a unit step is ~63%.
  FirstOrderLowPass lp{0.5};
  lp.step(0.0, 0.001);
  double v = 0.0;
  for (int i = 0; i < 500; ++i) v = lp.step(1.0, 0.001);  // 0.5 s elapsed
  EXPECT_NEAR(v, 0.632, 0.02);
}

TEST(FirstOrderLowPass, ZeroTauPassesThrough) {
  FirstOrderLowPass lp{0.0};
  EXPECT_DOUBLE_EQ(lp.step(7.0, 0.01), 7.0);
  EXPECT_DOUBLE_EQ(lp.step(-3.0, 0.01), -3.0);
}

TEST(Butterworth, RejectsInvalidCutoff) {
  EXPECT_THROW(ButterworthLowPass(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ButterworthLowPass(60.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ButterworthLowPass(1.0, 0.0), std::invalid_argument);
}

TEST(Butterworth, UnityDcGain) {
  ButterworthLowPass lp{1.0, 50.0};
  double v = 0.0;
  for (int i = 0; i < 2000; ++i) v = lp.step(2.5);
  EXPECT_NEAR(v, 2.5, 1e-6);
}

TEST(Butterworth, AttenuatesAboveCutoff) {
  // 10 Hz sine through a 1 Hz filter at 100 Hz sampling: -40 dB/decade for a
  // 2nd-order filter means roughly 1% passband amplitude remains.
  ButterworthLowPass lp{1.0, 100.0};
  double peak = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = std::sin(2.0 * std::numbers::pi * 10.0 * i / 100.0);
    const double y = lp.step(x);
    if (i > 500) peak = std::max(peak, std::fabs(y));
  }
  EXPECT_LT(peak, 0.03);
}

TEST(Butterworth, PassesBelowCutoff) {
  ButterworthLowPass lp{5.0, 100.0};
  double peak = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double x = std::sin(2.0 * std::numbers::pi * 0.2 * i / 100.0);
    const double y = lp.step(x);
    if (i > 2000) peak = std::max(peak, std::fabs(y));
  }
  EXPECT_GT(peak, 0.97);
}

TEST(Butterworth, FiltFiltIsZeroPhase) {
  // The peak of a slow pulse should not shift in time.
  ButterworthLowPass lp{2.0, 100.0};
  std::vector<double> x(400, 0.0);
  for (int i = 150; i < 250; ++i) {
    x[static_cast<std::size_t>(i)] =
        std::sin(std::numbers::pi * (i - 150) / 100.0);
  }
  const auto y = lp.filtfilt(x);
  std::size_t argmax_x = 0;
  std::size_t argmax_y = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > x[argmax_x]) argmax_x = i;
    if (y[i] > y[argmax_y]) argmax_y = i;
  }
  EXPECT_NEAR(static_cast<double>(argmax_y), static_cast<double>(argmax_x), 3.0);
}

TEST(Butterworth, FilterPrimedAvoidsStartupTransient) {
  ButterworthLowPass lp{1.0, 100.0};
  const std::vector<double> constant(100, 5.0);
  const auto out = lp.filter(constant);
  for (double v : out) EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(RateLimiter, LimitsSlew) {
  RateLimiter rl{1.0};  // one unit per second
  EXPECT_DOUBLE_EQ(rl.step(10.0, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(rl.step(10.0, 0.1), 0.2);
  EXPECT_DOUBLE_EQ(rl.step(-10.0, 0.1), 0.1);
}

TEST(RateLimiter, ReachesTargetWithinLimit) {
  RateLimiter rl{100.0};
  EXPECT_DOUBLE_EQ(rl.step(0.5, 0.1), 0.5);
}

TEST(MovingAverage, SmoothsAndPreservesLength) {
  const std::vector<double> x{0, 0, 6, 0, 0};
  const auto y = moving_average(x, 3);
  ASSERT_EQ(y.size(), x.size());
  EXPECT_NEAR(y[2], 2.0, 1e-12);
  EXPECT_NEAR(y[1], 2.0, 1e-12);
}

TEST(MovingAverage, WindowOnePassesThrough) {
  const std::vector<double> x{1, 2, 3};
  EXPECT_EQ(moving_average(x, 1), x);
  EXPECT_TRUE(moving_average({}, 5).empty());
}

}  // namespace
}  // namespace rdsim::util
