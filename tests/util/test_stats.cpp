#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace rdsim::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    if (i % 2 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0).value(), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0).value(), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0).value(), 25.0);
  EXPECT_FALSE(percentile({}, 50.0).has_value());
  // Out-of-range quantiles clamp.
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0).value(), 40.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b).value(), 1.0, 1e-12);
  std::vector<double> c{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c).value(), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  EXPECT_FALSE(pearson({1.0}, {2.0}).has_value());
  EXPECT_FALSE(pearson({1, 2}, {1, 2, 3}).has_value());
  EXPECT_FALSE(pearson({1, 1, 1}, {1, 2, 3}).has_value());  // zero variance
}

TEST(WelchT, DetectsSeparatedMeans) {
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 30; ++i) {
    a.add(10.0 + (i % 3));
    b.add(20.0 + (i % 3));
  }
  const auto t = welch_t(a, b);
  ASSERT_TRUE(t.has_value());
  EXPECT_LT(*t, -10.0);  // strongly negative: a's mean below b's
}

TEST(WelchT, DegenerateInputs) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  b.add(2.0);
  b.add(2.0);
  EXPECT_FALSE(welch_t(a, b).has_value());  // a has < 2 samples
  RunningStats c, d;
  c.add(1.0);
  c.add(1.0);
  d.add(1.0);
  d.add(1.0);
  EXPECT_FALSE(welch_t(c, d).has_value());  // zero variance
}

}  // namespace
}  // namespace rdsim::util
