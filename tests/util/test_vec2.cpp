#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/vec2.hpp"

namespace rdsim::util {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2, BasicOps) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, -2.0};
  EXPECT_EQ(a + b, Vec2(4.0, 2.0));
  EXPECT_EQ(a - b, Vec2(2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(6.0, 8.0));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, Vec2(1.5, 2.0));
  EXPECT_EQ(-a, Vec2(-3.0, -4.0));
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 3.0 - 8.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -6.0 - 4.0);
}

TEST(Vec2, Normalized) {
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).normalized().norm(), 1.0);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});  // zero vector stays zero
}

TEST(Vec2, PerpIsCcw) {
  const Vec2 x{1.0, 0.0};
  EXPECT_EQ(x.perp(), Vec2(0.0, 1.0));
  EXPECT_DOUBLE_EQ(x.cross(x.perp()), 1.0);
}

TEST(Vec2, Rotation) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(v.rotated(kPi).x, -1.0, 1e-12);
}

TEST(Vec2, HeadingRoundTrip) {
  for (double h = -3.0; h <= 3.0; h += 0.37) {
    EXPECT_NEAR(Vec2::from_heading(h).heading(), h, 1e-12) << h;
  }
}

TEST(WrapAngle, WrapsIntoHalfOpenInterval) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle(kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(wrap_angle(2.0 * kPi + 0.1), 0.1, 1e-12);
  EXPECT_NEAR(wrap_angle(-2.0 * kPi - 0.1), -0.1, 1e-12);
  EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);  // pi maps to +pi
}

class WrapAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(WrapAngleSweep, EquivalentModulo2Pi) {
  const double a = GetParam();
  const double w = wrap_angle(a);
  EXPECT_GT(w, -kPi - 1e-12);
  EXPECT_LE(w, kPi + 1e-12);
  EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
  EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Angles, WrapAngleSweep,
                         ::testing::Values(-100.0, -7.7, -3.3, -0.5, 0.0, 0.5, 3.3, 7.7,
                                           42.0, 1234.5));

TEST(Scalars, ClampAndLerp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2), 90.0);
}

TEST(Pose, WorldLocalRoundTrip) {
  const Pose pose{{10.0, -5.0}, 0.7};
  const Vec2 p{3.0, 4.0};
  const Vec2 world = pose.to_world(p);
  const Vec2 back = pose.to_local(world);
  EXPECT_NEAR(back.x, p.x, 1e-12);
  EXPECT_NEAR(back.y, p.y, 1e-12);
}

TEST(Pose, ForwardLeftOrthogonal) {
  const Pose pose{{0.0, 0.0}, 1.1};
  EXPECT_NEAR(pose.forward().dot(pose.left()), 0.0, 1e-12);
  EXPECT_NEAR(pose.forward().cross(pose.left()), 1.0, 1e-12);
}

TEST(Pose, LocalFrameConvention) {
  // +x forward, +y left.
  const Pose pose{{0.0, 0.0}, 0.0};
  const Vec2 ahead = pose.to_local({5.0, 0.0});
  EXPECT_NEAR(ahead.x, 5.0, 1e-12);
  const Vec2 left = pose.to_local({0.0, 2.0});
  EXPECT_NEAR(left.y, 2.0, 1e-12);
}

}  // namespace
}  // namespace rdsim::util
