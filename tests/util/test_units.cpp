// Known-answer tests for the dimensional-unit strong types. Each case pins a
// conversion factor the paper's analysis depends on (ms-vs-s, km/h-vs-m/s,
// kbit-vs-bytes/s); getting one of these wrong is exactly the bug class the
// units layer exists to make impossible.
#include <gtest/gtest.h>

#include "check/contracts.hpp"
#include "util/units.hpp"

namespace rdsim::units {
namespace {

TEST(Units, DistanceOverSpeedIsTime) {
  EXPECT_EQ(Meters{100.0} / MetersPerSecond{25.0}, Seconds{4.0});
  EXPECT_EQ(MetersPerSecond{25.0} * Seconds{4.0}, Meters{100.0});
  EXPECT_EQ(Seconds{4.0} * MetersPerSecond{25.0}, Meters{100.0});
  EXPECT_EQ(Meters{100.0} / Seconds{4.0}, MetersPerSecond{25.0});
}

TEST(Units, AccelerationRelations) {
  EXPECT_EQ(MetersPerSecond2{2.5} * Seconds{4.0}, MetersPerSecond{10.0});
  EXPECT_EQ(Seconds{4.0} * MetersPerSecond2{2.5}, MetersPerSecond{10.0});
  EXPECT_EQ(MetersPerSecond{10.0} / Seconds{4.0}, MetersPerSecond2{2.5});
  // Braking from 20 m/s at 8 m/s^2 takes 2.5 s.
  EXPECT_EQ(MetersPerSecond{20.0} / MetersPerSecond2{8.0}, Seconds{2.5});
}

TEST(Units, KmhRoundTrip) {
  EXPECT_EQ(MetersPerSecond::from_kmh(36.0), MetersPerSecond{10.0});
  EXPECT_DOUBLE_EQ(MetersPerSecond{10.0}.to_kmh(), 36.0);
  // The paper's 30 km/h urban speed limit.
  EXPECT_NEAR(MetersPerSecond::from_kmh(30.0).value(), 8.3333333333, 1e-9);
}

TEST(Units, MillisSecondsRoundTrip) {
  EXPECT_EQ(Millis{250.0}.to_seconds(), Seconds{0.25});
  EXPECT_EQ(Seconds{0.25}.to_millis(), Millis{250.0});
  EXPECT_EQ(Millis{1.0}.to_seconds().to_millis(), Millis{1.0});
  // Integration with the integer-microsecond virtual clock.
  EXPECT_EQ(Millis{12.0}.to_duration(), util::Duration::millis(12));
  EXPECT_EQ(Seconds{1.5}.to_duration(), util::Duration::millis(1500));
  EXPECT_EQ(Seconds::from_duration(util::Duration::millis(1500)), Seconds{1.5});
  EXPECT_EQ(Millis::from_duration(util::Duration::micros(2500)), Millis{2.5});
}

TEST(Units, BitRateConversions) {
  // tc's kbit is decimal: 8 kbit/s = 1000 bytes/s.
  EXPECT_EQ(BytesPerSecond::from_kbit(8.0), BytesPerSecond{1000.0});
  EXPECT_EQ(BytesPerSecond::from_bit(8.0), BytesPerSecond{1.0});
  EXPECT_EQ(BytesPerSecond::from_mbit(1.0), BytesPerSecond{125000.0});
  EXPECT_EQ(BytesPerSecond::from_gbit(1.0), BytesPerSecond{125000000.0});
  // ... while the bps family is bytes per second already.
  EXPECT_EQ(BytesPerSecond::from_bps(500.0), BytesPerSecond{500.0});
  EXPECT_EQ(BytesPerSecond::from_kbps(2.0), BytesPerSecond{2000.0});
  EXPECT_EQ(BytesPerSecond::from_mbps(3.0), BytesPerSecond{3000000.0});
  EXPECT_DOUBLE_EQ(BytesPerSecond{1000.0}.to_kbit(), 8.0);
  EXPECT_DOUBLE_EQ(BytesPerSecond{1.0}.to_bit(), 8.0);
}

TEST(Units, TransmitTime) {
  // A 1250-byte frame over 10 mbit/s serializes in 1 ms.
  EXPECT_EQ(transmit_time(1250.0, BytesPerSecond::from_mbit(10.0)),
            Seconds{0.001});
}

TEST(Units, SameUnitArithmetic) {
  Seconds t{1.0};
  t += Seconds{0.5};
  EXPECT_EQ(t, Seconds{1.5});
  t -= Seconds{1.0};
  EXPECT_EQ(t, Seconds{0.5});
  t *= 4.0;
  EXPECT_EQ(t, Seconds{2.0});
  t /= 2.0;
  EXPECT_EQ(t, Seconds{1.0});
  EXPECT_EQ(-t, Seconds{-1.0});
  EXPECT_EQ(Seconds{3.0} - Seconds{1.0}, Seconds{2.0});
  EXPECT_EQ(2.0 * Seconds{3.0}, Seconds{6.0});
  EXPECT_EQ(Seconds{3.0} * 2.0, Seconds{6.0});
  EXPECT_EQ(Seconds{3.0} / 2.0, Seconds{1.5});
  // Ratio of like quantities is dimensionless.
  EXPECT_DOUBLE_EQ(Meters{100.0} / Meters{25.0}, 4.0);
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
  EXPECT_GE(Meters{2.0}, Meters{2.0});
}

TEST(Units, FromRawRebuildsQuantities) {
  EXPECT_EQ(from_raw<Seconds>(1.5), Seconds{1.5});
  EXPECT_EQ(from_raw<Millis>(20.0), Millis{20.0});
  EXPECT_EQ(from_raw<BytesPerSecond>(125000.0), BytesPerSecond{125000.0});
  // from_raw deliberately bypasses the Probability contract (corrupt blobs
  // are rejected by the archive's embedded hash instead).
  EXPECT_DOUBLE_EQ(from_raw<Probability>(1.5).value(), 1.5);
}

// ---- Probability range contract ---------------------------------------------

class ProbabilityContract : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = check::Registry::instance().policy();
    check::Registry::instance().set_policy(check::Policy::kThrow);
  }
  void TearDown() override { check::Registry::instance().set_policy(saved_); }

 private:
  check::Policy saved_{};
};

TEST_F(ProbabilityContract, InRangeAccepted) {
  EXPECT_DOUBLE_EQ(Probability{0.0}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Probability{1.0}.value(), 1.0);
  EXPECT_DOUBLE_EQ(Probability{0.05}.value(), 0.05);
  EXPECT_DOUBLE_EQ(Probability{0.05}.percent(), 5.0);
  EXPECT_DOUBLE_EQ(Probability::from_percent(25.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(Probability{0.25}.complement().value(), 0.75);
}

TEST_F(ProbabilityContract, OutOfRangeRejectedAtConstruction) {
  EXPECT_THROW(Probability{1.5}, check::ContractViolation);
  EXPECT_THROW(Probability{-0.01}, check::ContractViolation);
  EXPECT_THROW(Probability::from_percent(150.0), check::ContractViolation);
}

TEST_F(ProbabilityContract, NonThrowingPoliciesClampIntoRange) {
  check::Registry::instance().set_policy(check::Policy::kCount);
  EXPECT_DOUBLE_EQ(Probability{1.5}.value(), 1.0);
  EXPECT_DOUBLE_EQ(Probability{-0.5}.value(), 0.0);
}

}  // namespace
}  // namespace rdsim::units
