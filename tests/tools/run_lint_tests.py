#!/usr/bin/env python3
"""Golden-fixture and unit tests for tools/rdsim_lint (ctest `lint_framework_tests`).

Two layers:

  * unit checks of the shared C++ tooling (cpp.clean views, the
    `lint:allow` escape grammar, include parsing, the struct extractor);
  * golden fixtures: each directory under tests/tools/fixtures/ is a
    miniature repo root whose `expected.json` freezes the exact
    (rule, file, line) set a rule must report — known-bad trees must yield
    exactly their violations, known-good trees must be clean.

Regenerate a golden after an intentional rule change with
`python3 tests/tools/run_lint_tests.py --regen`, then review the diff like
any other golden update.

Exit status: 0 all pass, 1 failures.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))

from tools.rdsim_lint import cpp  # noqa: E402
from tools.rdsim_lint.engine import SourceTree, run_rules  # noqa: E402
from tools.rdsim_lint.rules import determinism, fields, layering  # noqa: E402
from tools.rdsim_lint.rules import obs, threads, units  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "tools" / "fixtures"

#: fixture directory -> rule factory (fixture-sized configuration)
CASES = {
    "determinism_bad": lambda: determinism.DeterminismRule(
        {"src/sim/frame.hpp": ["Frame"]}),
    "determinism_good": lambda: determinism.DeterminismRule({}),
    "fields_bad": fields.FieldsRule,
    "fields_good": fields.FieldsRule,
    "layering_bad": layering.LayeringRule,
    "layering_good": layering.LayeringRule,
    "obs_bad": obs.ObsRule,
    "threads_bad": threads.ThreadsRule,
    "units_bad": lambda: units.UnitsRule(baseline={}),
    "units_stale": lambda: units.UnitsRule(
        baseline={"src/sim/speeds.cpp": 2}),
}

failures: list[str] = []


def check(ok: bool, label: str) -> None:
    if ok:
        print(f"  ok   {label}")
    else:
        failures.append(label)
        print(f"  FAIL {label}")


def unit_tests() -> None:
    print("unit: cpp.clean views")
    text = (
        'int a = 1; // trailing comment with rand()\n'
        'const char* s = "call rand() here";\n'
        "int sep = 1'000'000;\n"
        'const char* raw = R"x(std::mutex inside)x";\n'
        "char c = '\\'';\n"
        "/* block\n   comment */ int b = 2;\n"
    )
    cleaned = cpp.clean(text)
    masked = cleaned.masked_lines()
    code = cleaned.code_lines()
    check(len(masked) == len(code) == 7, "clean keeps line structure")
    check("rand()" not in masked[0] and "int a = 1;" in masked[0],
          "line comment stripped from masked view")
    check("rand()" not in masked[1], "string contents blanked in masked view")
    check("rand()" in code[1], "string contents kept in code view")
    check("1'000'000" in masked[2], "digit separators are not char literals")
    check("std::mutex" not in masked[3], "raw string contents blanked")
    check("int b = 2;" in masked[6], "code after block comment survives")

    print("unit: lint:allow grammar")
    check(cpp.allowed_rules("x; // lint:allow(raw-rand)") == {"raw-rand"},
          "bare escape")
    check(cpp.allowed_rules("x; // lint:allow(unhashed: mirror copy)")
          == {"unhashed"}, "escape with reason")
    check(cpp.allowed_rules(
        "// lint:allow(raw-rand: a) lint:allow(wall-clock)")
        == {"raw-rand", "wall-clock"}, "two escapes on one line")
    check(cpp.allowed_rules("// lint: allow(raw-rand)") == set(),
          "malformed escape ignored")

    print("unit: include parsing")
    inc = cpp.parse_includes(
        ['#include "net/packet.hpp"', "#include <vector>",
         '  #include "util/time.hpp"', "int x;"])
    check(inc == [(1, "net/packet.hpp"), (3, "util/time.hpp")],
          "quoted includes with line numbers")

    print("unit: struct extractor")
    masked_src = cpp.clean(
        "namespace rdsim::sim {\n"
        "struct Outer {\n"
        "  double vx{0.0}, vy{0.0}, vz;\n"
        "  std::vector<int> items{};\n"
        "  int method() const { return 0; }\n"
        "  struct Nested {\n"
        "    bool flag{false};\n"
        "  };\n"
        "  static int counter;\n"
        "  std::deque<int> q_ RDSIM_GUARDED_BY(mutex_);\n"
        "};\n"
        "enum class Color { kRed };\n"
        "}\n").masked
    index = cpp.StructIndex()
    index.add_file("src/sim/outer.hpp", masked_src)
    outer = index.find("Outer")[0]
    names = [m.name for m in outer.members]
    check(names == ["vx", "vy", "vz", "items", "q_"],
          f"members (multi-declarator, no methods/statics): {names}")
    inits = {m.name: m.has_init for m in outer.members}
    check(inits["vx"] and inits["vy"] and not inits["vz"],
          "per-declarator initializer detection")
    nested = index.find("Nested")
    check(len(nested) == 1 and nested[0].qualified
          == "rdsim::sim::Outer::Nested", "nested struct qualified name")
    check(index.find("Color") == [], "enum class is not a struct")
    check(cpp.element_type("std::vector<Item>") == "Item"
          and cpp.element_type("double") is None, "vector element type")


def fixture_tests(regen: bool) -> None:
    for name in sorted(CASES):
        fixture = FIXTURES / name
        print(f"fixture: {name}")
        rule = CASES[name]()
        report = run_rules(SourceTree(fixture), [rule])
        got = sorted((v.rule, v.file, v.line) for v in report.violations)
        expected_path = fixture / "expected.json"
        if regen:
            expected_path.write_text(json.dumps(
                [{"rule": r, "file": f, "line": l} for r, f, l in got],
                indent=2) + "\n")
            print(f"  wrote {len(got)} expected violation(s)")
            continue
        expected = sorted(
            (e["rule"], e["file"], e["line"])
            for e in json.loads(expected_path.read_text()))
        if got == expected:
            check(True, f"{len(got)} violation(s) match golden")
        else:
            check(False, f"{name}: got {got} expected {expected}")

        if name == "layering_bad":
            dot = rule.dot()
            check("color=red" in dot and '"util" -> "core"' in dot,
                  "DOT marks the seeded back-edge red")


def main() -> int:
    regen = "--regen" in sys.argv[1:]
    unit_tests()
    fixture_tests(regen)
    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall lint framework tests passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
