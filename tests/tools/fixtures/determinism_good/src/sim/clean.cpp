#include <map>

namespace rdsim::sim {

std::map<int, int> ordered_table;

int deterministic() { return 4; }

}  // namespace rdsim::sim
