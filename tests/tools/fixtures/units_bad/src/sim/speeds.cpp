namespace rdsim::sim {

double cruise_mps = 13.9;

double to_kmh(double mps) { return mps * 3.6; }

}  // namespace rdsim::sim
