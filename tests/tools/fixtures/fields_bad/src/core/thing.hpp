#pragma once

#include <vector>

namespace rdsim::core {

struct Item {
  double x{0.0};
  double y{0.0};
};

struct Thing {
  int a{0};
  int forgotten{0};
  int diagnostic{0};  // lint:allow(unhashed: fixture-only scratch value)
  std::vector<Item> items{};
};

}  // namespace rdsim::core
