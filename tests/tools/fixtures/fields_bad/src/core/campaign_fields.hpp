#pragma once

#include "core/thing.hpp"

namespace rdsim::core {

// T: [const] Thing
template <typename Ar, typename T>
void thing_fields(Ar& ar, T& t) {
  ar.field("a", t.a);
  ar.vec(t.items, [](Ar& a, auto& e) {
    a.field("x", e.x);
  });
}

}  // namespace rdsim::core
