namespace rdsim::sim {

double cruise_mps = 13.9;

}  // namespace rdsim::sim
