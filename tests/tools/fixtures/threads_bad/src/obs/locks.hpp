#pragma once

#include <condition_variable>
#include <mutex>

namespace rdsim::obs {

struct Locks {
  std::mutex raw_mutex;
  std::condition_variable raw_cv;
  std::condition_variable_any annotated_friendly_cv;
  std::mutex escaped;  // lint:allow(raw-mutex: fixture interop escape)
};

inline void locked(Locks& l) {
  const std::lock_guard<std::mutex> guard{l.raw_mutex};
}

}  // namespace rdsim::obs
