#pragma once

#include <vector>

namespace rdsim::core {

struct Inner {
  double depth{0.0};
};

struct Item {
  double x{0.0};
  double y{0.0};
};

struct Thing {
  int a{0};
  Inner nested{};
  int diagnostic{0};  // lint:allow(unhashed: not part of the wire format)
  std::vector<Item> items{};
};

}  // namespace rdsim::core
