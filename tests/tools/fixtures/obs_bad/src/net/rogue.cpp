namespace rdsim::net {

void instrument() {
  const auto id = obs::register_counter("net.rogue", "help", "1");
  RDSIM_OBS_COUNT("literal.name", 1);
  (void)id;
}

}  // namespace rdsim::net
