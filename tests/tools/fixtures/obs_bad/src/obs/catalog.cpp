#include "obs/catalog.hpp"

namespace rdsim::obs {
const MetricId kNetPackets = register_counter("net.packets", "help", "1");
const MetricId kNetBytes = register_counter("net.packets", "help", "1");
}  // namespace rdsim::obs
