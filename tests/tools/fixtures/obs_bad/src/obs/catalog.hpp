#pragma once

namespace rdsim::obs {
using MetricId = unsigned;
extern const MetricId kNetPackets;
}  // namespace rdsim::obs
