#pragma once

namespace rdsim::core {
struct Api {
  int version{1};
};
}  // namespace rdsim::core
