#pragma once

#include "core/api.hpp"

namespace rdsim::util {
core::Api borrowed_from_above();
}  // namespace rdsim::util
