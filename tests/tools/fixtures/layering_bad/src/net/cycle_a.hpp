#pragma once

#include "net/cycle_b.hpp"

namespace rdsim::net {
struct A {
  int a{0};
};
}  // namespace rdsim::net
