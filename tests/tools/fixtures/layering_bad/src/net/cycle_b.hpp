#pragma once

#include "net/cycle_a.hpp"

namespace rdsim::net {
struct B {
  int b{0};
};
}  // namespace rdsim::net
