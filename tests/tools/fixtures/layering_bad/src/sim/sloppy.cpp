#include "sim/missing.hpp"

namespace rdsim::sim {

int transitive_use() {
  net::A borrowed;
  return borrowed.a;
}

}  // namespace rdsim::sim
