#pragma once

namespace rdsim::util {
struct Base {
  int value{0};
};
}  // namespace rdsim::util
