#pragma once

#include "util/base.hpp"

namespace rdsim::net {
struct Wrapper {
  util::Base base{};
};
}  // namespace rdsim::net
