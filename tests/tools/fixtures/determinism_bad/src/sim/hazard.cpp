#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace rdsim::sim {

int bad_rand() { return rand(); }

std::unordered_map<int, int> table;

double bad_clock() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::random_device entropy;

int escaped_rand() { return rand(); }  // lint:allow(raw-rand: fixture escape)

// A comment mentioning rand() and std::random_device must not trigger.
const char* decoy = "calls rand() in a string literal";

}  // namespace rdsim::sim
