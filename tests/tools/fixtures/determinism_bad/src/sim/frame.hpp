#pragma once

namespace rdsim::sim {

struct Frame {
  int sequence{0};
  double timestamp_value;
  bool valid{false};
};

}  // namespace rdsim::sim
