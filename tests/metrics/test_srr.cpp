#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "metrics/srr.hpp"

namespace rdsim::metrics {
namespace {

/// A steering trace oscillating at `freq_hz` with amplitude `amp_frac`
/// (steering fraction), sampled at 20 Hz for `seconds`.
std::pair<std::vector<double>, std::vector<double>> sine_steering(double freq_hz,
                                                                  double amp_frac,
                                                                  double seconds) {
  std::vector<double> t;
  std::vector<double> steer;
  for (int i = 0; i <= static_cast<int>(seconds * 20); ++i) {
    const double tt = i * 0.05;
    t.push_back(tt);
    steer.push_back(amp_frac * std::sin(2.0 * std::numbers::pi * freq_hz * tt));
  }
  return {t, steer};
}

TEST(Srr, SineWaveCountsTwoReversalsPerPeriod) {
  // 0.2 Hz sine with amplitude well above threshold: every half period is a
  // reversal (after the first swing), so rate ~= 2 * freq * 60 = 24/min.
  const auto [t, steer] = sine_steering(0.2, 0.1, 60.0);
  SrrAnalyzer analyzer;
  const auto r = analyzer.analyze_series(t, steer);
  ASSERT_TRUE(r.valid());
  EXPECT_NEAR(r.rate_per_min, 24.0, 2.5);
}

TEST(Srr, SubThresholdAmplitudeCountsNothing) {
  // Amplitude 0.002 * 450 deg = 0.9 deg < 3 deg threshold.
  const auto [t, steer] = sine_steering(0.2, 0.002, 60.0);
  SrrAnalyzer analyzer;
  EXPECT_EQ(analyzer.analyze_series(t, steer).reversals, 0u);
}

TEST(Srr, ThresholdConfigurable) {
  const auto [t, steer] = sine_steering(0.2, 0.01, 60.0);  // 4.5 deg swings
  SrrConfig strict;
  strict.threshold_deg = 10.0;
  EXPECT_EQ(SrrAnalyzer{strict}.analyze_series(t, steer).reversals, 0u);
  SrrConfig loose;
  loose.threshold_deg = 2.0;
  EXPECT_GT(SrrAnalyzer{loose}.analyze_series(t, steer).reversals, 15u);
}

TEST(Srr, HighFrequencyDitherFilteredOut) {
  // 5 Hz dither at 4.5 deg would naively count ~600 reversals/min, but the
  // 0.6 Hz low-pass removes it entirely.
  const auto [t, steer] = sine_steering(5.0, 0.01, 60.0);
  SrrAnalyzer analyzer;
  EXPECT_EQ(analyzer.analyze_series(t, steer).reversals, 0u);
}

TEST(Srr, MixedSignalCountsOnlySlowComponent) {
  auto [t, slow] = sine_steering(0.2, 0.1, 60.0);
  auto [t2, fast] = sine_steering(6.0, 0.01, 60.0);
  std::vector<double> mixed(slow.size());
  for (std::size_t i = 0; i < slow.size(); ++i) mixed[i] = slow[i] + fast[i];
  SrrAnalyzer analyzer;
  const auto pure = analyzer.analyze_series(t, slow);
  const auto noisy = analyzer.analyze_series(t, mixed);
  EXPECT_NEAR(static_cast<double>(noisy.reversals), static_cast<double>(pure.reversals),
              2.0);
}

TEST(Srr, ConstantSteeringHasNoReversals) {
  std::vector<double> t;
  std::vector<double> steer;
  for (int i = 0; i < 400; ++i) {
    t.push_back(i * 0.05);
    steer.push_back(0.25);
  }
  SrrAnalyzer analyzer;
  EXPECT_EQ(analyzer.analyze_series(t, steer).reversals, 0u);
}

TEST(Srr, SingleSwingIsNotAReversal) {
  // One lane-change-like S: left then hold. The first directed swing sets
  // the direction; only the swing back counts.
  std::vector<double> t;
  std::vector<double> steer;
  for (int i = 0; i <= 400; ++i) {
    t.push_back(i * 0.05);
    const double tt = i * 0.05;
    steer.push_back(tt < 5.0 ? 0.1 * std::sin(std::numbers::pi * tt / 5.0) : 0.0);
  }
  SrrAnalyzer analyzer;
  EXPECT_LE(analyzer.analyze_series(t, steer).reversals, 1u);
}

TEST(Srr, TooShortWindowInvalid) {
  const auto [t, steer] = sine_steering(0.2, 0.1, 2.0);
  SrrAnalyzer analyzer;
  const auto r = analyzer.analyze_series(t, steer);
  EXPECT_EQ(r.reversals, 0u);
  EXPECT_DOUBLE_EQ(r.rate_per_min, 0.0);
}

TEST(Srr, DegenerateInputs) {
  SrrAnalyzer analyzer;
  EXPECT_FALSE(analyzer.analyze_series({}, {}).valid());
  EXPECT_FALSE(analyzer.analyze_series({1.0, 2.0}, {0.0, 0.0}).valid());
  EXPECT_FALSE(analyzer.analyze_series({1.0, 2.0, 3.0}, {0.0, 0.0}).valid());  // size mismatch
}

TEST(Srr, AnalyzeWindowExtractsSubRange) {
  trace::RunTrace run;
  for (int i = 0; i <= 1200; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    // Quiet for 30 s, oscillating for 30 s.
    e.steer = e.t < 30.0 ? 0.0
                         : 0.1 * std::sin(2.0 * std::numbers::pi * 0.25 * e.t);
    run.ego.push_back(e);
  }
  SrrAnalyzer analyzer;
  const auto quiet = analyzer.analyze_window(run, units::Seconds{0.0}, units::Seconds{30.0});
  const auto busy = analyzer.analyze_window(run, units::Seconds{30.0}, units::Seconds{60.0});
  EXPECT_EQ(quiet.reversals, 0u);
  EXPECT_NEAR(busy.rate_per_min, 30.0, 4.0);  // 2 * 0.25 Hz * 60
}

}  // namespace
}  // namespace rdsim::metrics
