#include <gtest/gtest.h>

#include <cmath>

#include "metrics/safety.hpp"

namespace rdsim::metrics {
namespace {

trace::RunTrace trace_with_faults() {
  trace::RunTrace t;
  for (int i = 0; i <= 2000; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.x = 10.0 * e.t;
    e.vx = 10.0;
    e.brake = (i / 100) % 2 == 0 ? 0.0 : 0.3;  // braking phases
    t.ego.push_back(e);
  }
  t.faults.push_back({10.0, "delay", 50.0, true, "50ms"});
  t.faults.push_back({20.0, "delay", 50.0, false, "50ms"});
  t.faults.push_back({40.0, "loss", 0.05, true, "5%"});
  t.faults.push_back({55.0, "loss", 0.05, false, "5%"});
  return t;
}

TEST(FaultWindows, PairsAddAndDelete) {
  const auto t = trace_with_faults();
  const auto windows = t.fault_windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].label, "50ms");
  EXPECT_DOUBLE_EQ(windows[0].start, 10.0);
  EXPECT_DOUBLE_EQ(windows[0].stop, 20.0);
  EXPECT_EQ(windows[1].label, "5%");
  EXPECT_DOUBLE_EQ(windows[1].stop, 55.0);
}

TEST(FaultWindows, UnclosedWindowExtendsToEnd) {
  trace::RunTrace t;
  trace::EgoSample e;
  e.t = 0.0;
  t.ego.push_back(e);
  e.t = 30.0;
  t.ego.push_back(e);
  t.faults.push_back({12.0, "loss", 0.02, true, "2%"});
  const auto windows = t.fault_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].stop, 30.0);
}

TEST(CollisionAnalysis, AttributesToActiveFault) {
  auto t = trace_with_faults();
  t.collisions.push_back({15.0, 300, 7, "static_vehicle", 4.0});   // during 50ms
  t.collisions.push_back({45.0, 900, 8, "vehicle", 2.0});          // during 5%
  t.collisions.push_back({56.5, 1130, 9, "vehicle", 1.0});         // 1.5 s after 5% ended
  t.collisions.push_back({80.0, 1600, 10, "cyclist", 3.0});        // no fault
  const auto analysis = analyze_collisions(t);
  EXPECT_EQ(analysis.total, 4u);
  EXPECT_TRUE(analysis.collisions[0].fault_active);
  EXPECT_EQ(analysis.collisions[0].fault_label, "50ms");
  EXPECT_EQ(analysis.collisions[1].fault_label, "5%");
  // Spillover: shortly after the window still counts as fault-related.
  EXPECT_TRUE(analysis.collisions[2].fault_active);
  EXPECT_FALSE(analysis.collisions[3].fault_active);
  const auto by_label = analysis.by_fault_label();
  EXPECT_EQ(by_label.at("50ms"), 1u);
  EXPECT_EQ(by_label.at("5%"), 2u);
  EXPECT_EQ(by_label.at("none"), 1u);
}

TEST(Headway, ComputesTimeGap) {
  trace::RunTrace t;
  for (int i = 0; i <= 100; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.x = 10.0 * e.t;
    e.vx = 10.0;
    t.ego.push_back(e);
    trace::OtherSample o;
    o.actor = 2;
    o.t = e.t;
    o.x = e.x + 24.6;  // bumper gap 20 m at 10 m/s => headway 2.0 s
    o.vx = 10.0;
    o.distance = 24.6;
    t.others.push_back(o);
  }
  const auto h = analyze_headway(t);
  ASSERT_TRUE(h.valid());
  EXPECT_NEAR(h.avg.value(), 2.0, 0.05);
  EXPECT_LT(h.below_2s_fraction, 0.6);
}

TEST(TimeExposedTtc, SumsViolationTime) {
  std::vector<TtcSample> series;
  for (int i = 0; i < 100; ++i) {
    series.push_back({units::Seconds{i * 0.05}, units::Seconds{i < 40 ? 3.0 : 10.0},
                      units::Meters{30.0}, 2});
  }
  EXPECT_NEAR(time_exposed_ttc(series, units::Seconds{6.0}, units::Seconds{0.05}).value(),
              2.0, 1e-9);
  EXPECT_DOUBLE_EQ(
      time_exposed_ttc(series, units::Seconds{1.0}, units::Seconds{0.05}).value(), 0.0);
}

TEST(DrivingStats, AggregatesChannels) {
  trace::RunTrace t;
  for (int i = 0; i <= 200; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.vx = 8.0;
    e.ax = 0.5;
    e.throttle = 0.3;
    e.brake = i > 100 ? 0.5 : 0.0;
    t.ego.push_back(e);
  }
  t.lane_invasions.push_back({1.0, 20, "broken", 0, 1});
  t.lane_invasions.push_back({2.0, 40, "solid", 0, 1});
  const auto stats = analyze_driving(t);
  EXPECT_NEAR(stats.speed.mean(), 8.0, 1e-9);
  EXPECT_EQ(stats.brake_applications, 1u);
  EXPECT_EQ(stats.lane_invasions, 2u);
  EXPECT_EQ(stats.solid_line_invasions, 1u);
  EXPECT_NEAR(stats.accel_long.mean(), 0.5, 1e-9);
}

TEST(DrivingStats, WindowRestricts) {
  trace::RunTrace t;
  for (int i = 0; i <= 200; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.vx = i <= 100 ? 5.0 : 15.0;
    t.ego.push_back(e);
  }
  EXPECT_NEAR(analyze_driving(t, units::Seconds{0.0}, units::Seconds{5.0}).speed.mean(), 5.0, 0.1);
  EXPECT_NEAR(analyze_driving(t, units::Seconds{5.05}, units::Seconds{10.1}).speed.mean(), 15.0, 0.1);
}

TEST(TraversalTime, MeasuresSegmentDuration) {
  trace::RunTrace t;
  for (int i = 0; i <= 400; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    // 10 m/s for 10 s, then 5 m/s.
    e.x = e.t <= 10.0 ? 10.0 * e.t : 100.0 + 5.0 * (e.t - 10.0);
    t.ego.push_back(e);
  }
  // Distance 50..100 m at 10 m/s takes 5 s.
  auto fast = traversal_time(t, units::Meters{50.0}, units::Meters{100.0});
  ASSERT_TRUE(fast.has_value());
  EXPECT_NEAR(fast->value(), 5.0, 0.2);
  // Distance 100..130 m at 5 m/s takes 6 s.
  auto slow = traversal_time(t, units::Meters{100.0}, units::Meters{130.0});
  ASSERT_TRUE(slow.has_value());
  EXPECT_NEAR(slow->value(), 6.0, 0.3);
  EXPECT_FALSE(traversal_time(t, units::Meters{100.0}, units::Meters{5000.0}).has_value());
  EXPECT_FALSE(traversal_time(t, units::Meters{50.0}, units::Meters{40.0}).has_value());
}

TEST(StandstillTime, CountsMidRunStopsOnly) {
  trace::RunTrace t;
  for (int i = 0; i <= 600; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    // Parked for 2 s (pre-drive standstill: excluded), drives for 10 s,
    // stops for 8 s (an MRM hold: counted), drives again.
    if (e.t < 2.0 || (e.t >= 12.0 && e.t < 20.0)) {
      e.vx = 0.0;
    } else {
      e.vx = 8.0;
    }
    t.ego.push_back(e);
  }
  EXPECT_NEAR(standstill_time(t).value(), 8.0, 0.1);
}

TEST(StandstillTime, ZeroWhenNeverStoppingAndOnEmptyTraces) {
  trace::RunTrace moving;
  for (int i = 0; i <= 100; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.vx = 6.0;
    moving.ego.push_back(e);
  }
  EXPECT_DOUBLE_EQ(standstill_time(moving).value(), 0.0);
  EXPECT_DOUBLE_EQ(standstill_time(trace::RunTrace{}).value(), 0.0);
}

TEST(StandstillTime, ThresholdSelectsWhatCountsAsStopped) {
  trace::RunTrace t;
  for (int i = 0; i <= 200; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.vx = e.t < 5.0 ? 8.0 : 1.0;  // crawls at 1 m/s after 5 s
    t.ego.push_back(e);
  }
  EXPECT_DOUBLE_EQ(standstill_time(t, units::MetersPerSecond{0.3}).value(), 0.0);
  EXPECT_NEAR(standstill_time(t, units::MetersPerSecond{1.5}).value(), 5.0, 0.1);
}

}  // namespace
}  // namespace rdsim::metrics
