#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "metrics/extended.hpp"

namespace rdsim::metrics {
namespace {

trace::RunTrace straight_drive(double lateral_amp, double noise_freq = 0.3,
                               double seconds = 60.0) {
  // Ego driving along the Town05 route's initial straight with a sinusoidal
  // lane-keeping error of amplitude `lateral_amp`.
  const auto road = sim::make_town05_route();
  trace::RunTrace t;
  for (int i = 0; i <= static_cast<int>(seconds * 20); ++i) {
    const double tt = i * 0.05;
    const double s = 10.0 * tt;
    const double offset =
        lateral_amp * std::sin(2.0 * std::numbers::pi * noise_freq * tt);
    const auto pose = road.sample_offset(s, offset);
    trace::EgoSample e;
    e.t = tt;
    e.x = pose.position.x;
    e.y = pose.position.y;
    e.vx = 10.0;
    e.steer = 0.05 * std::sin(2.0 * std::numbers::pi * noise_freq * tt);
    t.ego.push_back(e);
  }
  return t;
}

TEST(Sdlp, MeasuresLateralWander) {
  const auto road = sim::make_town05_route();
  const auto tight = lane_position_deviation(straight_drive(0.1), road);
  const auto sloppy = lane_position_deviation(straight_drive(0.6), road);
  ASSERT_TRUE(tight.valid());
  ASSERT_TRUE(sloppy.valid());
  // SDLP of a sine of amplitude A is A/sqrt(2).
  EXPECT_NEAR(tight.sdlp.value(), 0.1 / std::numbers::sqrt2, 0.03);
  EXPECT_NEAR(sloppy.sdlp.value(), 0.6 / std::numbers::sqrt2, 0.08);
  EXPECT_GT(sloppy.mean_abs_offset, tight.mean_abs_offset);
}

TEST(Sdlp, EmptyTraceInvalid) {
  const auto road = sim::make_town05_route();
  EXPECT_FALSE(lane_position_deviation(trace::RunTrace{}, road).valid());
}

TEST(SteeringEntropy, SmoothSteeringLowErraticHigh) {
  // Both drivers carry motor noise (as real steering signals do); the
  // disturbed one carries ~2.5x more. Entropy scored against the baseline
  // alpha must rise — the regime the Nakayama metric is designed for.
  trace::RunTrace smooth;
  trace::RunTrace erratic;
  util::Random rng{4, 2};
  for (int i = 0; i <= 1200; ++i) {
    const double tt = i * 0.05;
    trace::EgoSample s;
    s.t = tt;
    const double wave = 0.1 * std::sin(2.0 * std::numbers::pi * 0.1 * tt);
    s.steer = wave + 0.004 * rng.normal();
    smooth.ego.push_back(s);
    trace::EgoSample e;
    e.t = tt;
    e.steer = wave + 0.010 * rng.normal();
    erratic.ego.push_back(e);
  }
  // Calibrate alpha on the smooth (baseline) run, as the method prescribes,
  // then score both runs against it.
  const double alpha = steering_entropy_alpha(smooth);
  const auto se_smooth = steering_entropy(smooth, alpha);
  const auto se_erratic = steering_entropy(erratic, alpha);
  ASSERT_TRUE(se_smooth.valid());
  ASSERT_TRUE(se_erratic.valid());
  EXPECT_GT(se_erratic.entropy, se_smooth.entropy);
  EXPECT_GT(steering_entropy_alpha(erratic), alpha);
  EXPECT_LE(se_erratic.entropy, std::log2(9.0) + 1e-9);  // 9-bin ceiling
}

TEST(SteeringEntropy, ConstantSteeringIsZero) {
  trace::RunTrace t;
  for (int i = 0; i <= 500; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.steer = 0.2;
    t.ego.push_back(e);
  }
  const auto se = steering_entropy(t);
  EXPECT_DOUBLE_EQ(se.entropy, 0.0);
}

TEST(BrakeReactions, MeasuresResponseDelay) {
  trace::RunTrace t;
  // Lead cruises at 10 m/s, brakes hard at t=5 s; ego brakes at t=5.8 s.
  for (int i = 0; i <= 300; ++i) {
    const double tt = i * 0.05;
    trace::EgoSample e;
    e.t = tt;
    e.x = 10.0 * tt;
    e.vx = 10.0;
    e.brake = tt >= 5.8 ? 0.6 : 0.0;
    t.ego.push_back(e);
    trace::OtherSample o;
    o.actor = 2;
    o.role = "lead-1";
    o.t = tt;
    const double lead_speed = tt < 5.0 ? 10.0 : std::max(0.0, 10.0 - 4.0 * (tt - 5.0));
    o.vx = lead_speed;
    o.x = e.x + 25.0;
    o.distance = 25.0;
    t.others.push_back(o);
  }
  const auto reactions = brake_reactions(t);
  ASSERT_EQ(reactions.size(), 1u);
  EXPECT_NEAR(reactions[0].lead_onset.value(), 5.0, 0.2);
  EXPECT_NEAR(reactions[0].reaction.value(), 0.8, 0.25);
}

TEST(BrakeReactions, IgnoresNonLeadActorsAndGentleSlowing) {
  trace::RunTrace t;
  for (int i = 0; i <= 200; ++i) {
    const double tt = i * 0.05;
    trace::EgoSample e;
    e.t = tt;
    e.vx = 10.0;
    e.brake = 0.5;  // ego always braking; irrelevant without a lead onset
    t.ego.push_back(e);
    trace::OtherSample parked;
    parked.actor = 3;
    parked.role = "parked-1";
    parked.t = tt;
    parked.vx = tt < 5.0 ? 10.0 : 0.0;  // "brakes" but is not a lead
    parked.distance = 20.0;
    t.others.push_back(parked);
    trace::OtherSample lead;
    lead.actor = 4;
    lead.role = "lead-1";
    lead.t = tt;
    lead.vx = 10.0 - 0.5 * tt / 10.0;  // gentle drift, below onset threshold
    lead.distance = 20.0;
    t.others.push_back(lead);
  }
  EXPECT_TRUE(brake_reactions(t).empty());
}

TEST(HeadwayDistribution, FractionsAndMedian) {
  trace::RunTrace t;
  for (int i = 0; i <= 400; ++i) {
    const double tt = i * 0.05;
    trace::EgoSample e;
    e.t = tt;
    e.x = 10.0 * tt;
    e.vx = 10.0;
    t.ego.push_back(e);
    trace::OtherSample o;
    o.actor = 2;
    o.role = "lead";
    o.t = tt;
    // First half: 1.5 s headway (bumper 15 m); second half: 3 s.
    const double gap = tt < 10.0 ? 15.0 : 30.0;
    o.x = e.x + gap + 4.6;
    o.vx = 10.0;
    o.distance = gap + 4.6;
    t.others.push_back(o);
  }
  const auto dist = headway_distribution(t);
  ASSERT_TRUE(dist.valid());
  EXPECT_NEAR(dist.below_2s, 0.5, 0.05);
  EXPECT_DOUBLE_EQ(dist.below_1s, 0.0);
  EXPECT_GT(dist.median, units::Seconds{1.2});
  EXPECT_LT(dist.median, units::Seconds{3.2});
}

}  // namespace
}  // namespace rdsim::metrics
