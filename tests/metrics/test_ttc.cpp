#include <gtest/gtest.h>

#include "metrics/ttc.hpp"

namespace rdsim::metrics {
namespace {

/// Build a trace of an ego at `ego_speed` following a lead `gap_center` m
/// ahead at `lead_speed`, sampled at 20 Hz for `seconds`.
trace::RunTrace two_car_trace(double ego_speed, double lead_speed, double gap_center,
                              double seconds = 10.0, double lateral = 0.0) {
  trace::RunTrace t;
  for (int i = 0; i <= static_cast<int>(seconds * 20); ++i) {
    const double tt = i * 0.05;
    trace::EgoSample e;
    e.t = tt;
    e.x = ego_speed * tt;
    e.vx = ego_speed;
    t.ego.push_back(e);
    trace::OtherSample o;
    o.actor = 2;
    o.t = tt;
    o.x = gap_center + lead_speed * tt;
    o.y = lateral;
    o.vx = lead_speed;
    o.distance = std::hypot(o.x - e.x, o.y);
    t.others.push_back(o);
  }
  return t;
}

TEST(Ttc, AnalyticTwoCarValue) {
  // Gap 50 m centre-to-centre, closing 5 m/s: with the 4.6 m length
  // correction, TTC = (50 - 4.6) / 5 = 9.08 s at t=0 and shrinking.
  const auto run = two_car_trace(15.0, 10.0, 50.0, 2.0);
  TtcAnalyzer analyzer;
  const auto series = analyzer.series(run);
  ASSERT_FALSE(series.empty());
  EXPECT_NEAR(series.front().ttc.value(), (50.0 - 4.6) / 5.0, 0.05);
  EXPECT_LT(series.back().ttc, series.front().ttc);
  EXPECT_EQ(series.front().lead, 2u);
}

TEST(Ttc, NoSamplesWhenNotClosing) {
  const auto run = two_car_trace(10.0, 10.0, 30.0);
  TtcAnalyzer analyzer;
  EXPECT_TRUE(analyzer.series(run).empty());
  const auto opening = two_car_trace(10.0, 12.0, 30.0);
  EXPECT_TRUE(analyzer.series(opening).empty());
}

TEST(Ttc, HundredMetreCutoff) {
  // Paper §VI.C: only relative distances <= 100 m are evaluated.
  const auto far = two_car_trace(15.0, 10.0, 150.0, 2.0);
  TtcAnalyzer analyzer;
  EXPECT_TRUE(analyzer.series(far).empty());
  const auto near = two_car_trace(15.0, 10.0, 90.0, 2.0);
  EXPECT_FALSE(analyzer.series(near).empty());
}

TEST(Ttc, LateralCorridorFilters) {
  // A vehicle in the adjacent lane (3.5 m lateral) is not a TTC lead.
  const auto adjacent = two_car_trace(15.0, 10.0, 40.0, 2.0, 3.5);
  TtcAnalyzer analyzer;
  EXPECT_TRUE(analyzer.series(adjacent).empty());
  const auto same_lane = two_car_trace(15.0, 10.0, 40.0, 2.0, 1.0);
  EXPECT_FALSE(analyzer.series(same_lane).empty());
}

TEST(Ttc, VehiclesBehindIgnored) {
  const auto run = two_car_trace(15.0, 10.0, -30.0, 2.0);
  TtcAnalyzer analyzer;
  EXPECT_TRUE(analyzer.series(run).empty());
}

TEST(Ttc, NearestLeadWins) {
  auto run = two_car_trace(15.0, 10.0, 60.0, 1.0);
  // Add a second, closer lead.
  const std::size_t n = run.others.size();
  for (std::size_t i = 0; i < n; ++i) {
    trace::OtherSample o = run.others[i];
    o.actor = 3;
    o.x -= 30.0;  // 30 m closer
    run.others.push_back(o);
  }
  TtcAnalyzer analyzer;
  const auto series = analyzer.series(run);
  ASSERT_FALSE(series.empty());
  for (const auto& s : series) EXPECT_EQ(s.lead, 3u);
}

TEST(Ttc, SummaryStatistics) {
  const auto run = two_car_trace(15.0, 10.0, 60.0, 8.0);
  TtcAnalyzer analyzer;
  const auto series = analyzer.series(run);
  const auto stats = analyzer.summarize(series);
  ASSERT_TRUE(stats.valid());
  EXPECT_NEAR(stats.max.value(), (60.0 - 4.6) / 5.0, 0.1);
  EXPECT_LT(stats.min, stats.avg);
  EXPECT_LT(stats.avg, stats.max);
  // TTC drops below 6 s once the gap falls under 34.6 m, i.e. after ~5 s.
  EXPECT_GT(stats.violations, 0u);
}

TEST(Ttc, WindowedSummary) {
  const auto run = two_car_trace(15.0, 10.0, 60.0, 8.0);
  TtcAnalyzer analyzer;
  const auto series = analyzer.series(run);
  const auto early = analyzer.summarize_window(series, units::Seconds{0.0}, units::Seconds{2.0});
  const auto late = analyzer.summarize_window(series, units::Seconds{6.0}, units::Seconds{8.0});
  ASSERT_TRUE(early.valid());
  ASSERT_TRUE(late.valid());
  EXPECT_GT(early.avg, late.avg);  // the gap shrinks over time
  const auto none = analyzer.summarize_window(series, units::Seconds{100.0}, units::Seconds{200.0});
  EXPECT_FALSE(none.valid());
}

TEST(Ttc, StoppedEgoYieldsNothing) {
  const auto run = two_car_trace(0.0, 0.0, 20.0);
  TtcAnalyzer analyzer;
  EXPECT_TRUE(analyzer.series(run).empty());
}

}  // namespace
}  // namespace rdsim::metrics
