#include <gtest/gtest.h>

#include "sim/frame.hpp"

namespace rdsim::sim {
namespace {

WorldFrame sample_frame() {
  WorldFrame f;
  f.frame_id = 1234;
  f.sim_time_us = 5678901;
  f.weather.night = true;
  f.weather.fog_density = 0.25;
  f.ego.id = 1;
  f.ego.kind = ActorKind::kVehicle;
  f.ego.state.position = {12.5, -3.25};
  f.ego.state.heading = 0.75;
  f.ego.state.velocity = {9.0, 1.0};
  f.ego.state.accel = {0.5, -0.25};
  f.ego.control.throttle = 0.4;
  f.ego.control.steer = -0.2;
  f.ego.control.brake = 0.0;
  ActorSnapshot other;
  other.id = 2;
  other.kind = ActorKind::kCyclist;
  other.state.position = {40.0, 1.5};
  other.bbox = BoundingBox{0.9, 0.35};
  f.others.push_back(other);
  return f;
}

TEST(WorldFrame, EncodeDecodeRoundTrip) {
  const WorldFrame f = sample_frame();
  const auto decoded = WorldFrame::decode(f.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->frame_id, f.frame_id);
  EXPECT_EQ(decoded->sim_time_us, f.sim_time_us);
  EXPECT_TRUE(decoded->weather.night);
  EXPECT_DOUBLE_EQ(decoded->weather.fog_density, 0.25);
  EXPECT_EQ(decoded->ego.id, 1u);
  EXPECT_DOUBLE_EQ(decoded->ego.state.position.x, 12.5);
  EXPECT_DOUBLE_EQ(decoded->ego.state.heading, 0.75);
  EXPECT_DOUBLE_EQ(decoded->ego.control.steer, -0.2);
  ASSERT_EQ(decoded->others.size(), 1u);
  EXPECT_EQ(decoded->others[0].kind, ActorKind::kCyclist);
  EXPECT_DOUBLE_EQ(decoded->others[0].bbox.half_width, 0.35);
}

TEST(WorldFrame, SimTimeConversion) {
  WorldFrame f;
  f.sim_time_us = 2500000;
  EXPECT_DOUBLE_EQ(f.sim_time_s(), 2.5);
}

TEST(WorldFrame, DecodeTruncatedFails) {
  const auto bytes = sample_frame().encode();
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
    net::Payload partial(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(WorldFrame::decode(partial).has_value()) << cut;
  }
}

TEST(WorldFrame, DecodeBogusActorCountFails) {
  // A corrupted count field must not trigger a huge allocation.
  WorldFrame f = sample_frame();
  f.others.clear();
  auto bytes = f.encode();
  // The actor-count u32 sits right after the fixed ego block; patch the last
  // four bytes (count is the final field when others is empty).
  bytes[bytes.size() - 4] = 0xFF;
  bytes[bytes.size() - 3] = 0xFF;
  bytes[bytes.size() - 2] = 0xFF;
  bytes[bytes.size() - 1] = 0x7F;
  EXPECT_FALSE(WorldFrame::decode(bytes).has_value());
}

TEST(WorldFrame, EmptyOthersRoundTrip) {
  WorldFrame f = sample_frame();
  f.others.clear();
  const auto decoded = WorldFrame::decode(f.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->others.empty());
}

}  // namespace
}  // namespace rdsim::sim
