#include <gtest/gtest.h>

#include "sim/types.hpp"

namespace rdsim::sim {
namespace {

TEST(ActorKind, Names) {
  EXPECT_EQ(to_string(ActorKind::kVehicle), "vehicle");
  EXPECT_EQ(to_string(ActorKind::kStaticVehicle), "static_vehicle");
  EXPECT_EQ(to_string(ActorKind::kCyclist), "cyclist");
  EXPECT_EQ(to_string(ActorKind::kWalker), "walker");
}

TEST(VehicleControl, ClampedRanges) {
  VehicleControl c;
  c.throttle = 2.0;
  c.steer = -5.0;
  c.brake = 1.5;
  const auto cl = c.clamped();
  EXPECT_DOUBLE_EQ(cl.throttle, 1.0);
  EXPECT_DOUBLE_EQ(cl.steer, -1.0);
  EXPECT_DOUBLE_EQ(cl.brake, 1.0);
}

TEST(BoundingBox, CornersAxisAligned) {
  BoundingBox box{2.0, 1.0};
  util::Vec2 corners[4];
  box.corners(util::Pose{{10.0, 5.0}, 0.0}, corners);
  EXPECT_NEAR(corners[0].x, 12.0, 1e-12);  // front-left
  EXPECT_NEAR(corners[0].y, 6.0, 1e-12);
  EXPECT_NEAR(corners[2].x, 8.0, 1e-12);  // rear-right
  EXPECT_NEAR(corners[2].y, 4.0, 1e-12);
}

struct OverlapCase {
  double dx, dy, heading_b;
  bool expect_overlap;
};

class BoxOverlapTest : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(BoxOverlapTest, Sat) {
  const auto& c = GetParam();
  const BoundingBox box{2.3, 0.95};  // default car
  const util::Pose a{{0.0, 0.0}, 0.0};
  const util::Pose b{{c.dx, c.dy}, c.heading_b};
  EXPECT_EQ(boxes_overlap(box, a, box, b), c.expect_overlap);
  EXPECT_EQ(boxes_overlap(box, b, box, a), c.expect_overlap);  // symmetric
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BoxOverlapTest,
    ::testing::Values(
        OverlapCase{0.0, 0.0, 0.0, true},     // coincident
        OverlapCase{4.5, 0.0, 0.0, true},     // nose-to-tail touching
        OverlapCase{4.7, 0.0, 0.0, false},    // just clear ahead
        OverlapCase{0.0, 1.8, 0.0, true},     // side-by-side overlapping
        OverlapCase{0.0, 2.0, 0.0, false},    // side-by-side clear
        OverlapCase{3.0, 1.5, 0.0, true},     // corner clip
        OverlapCase{10.0, 10.0, 0.0, false},  // far away
        OverlapCase{0.0, 2.6, 1.5708, true},  // T-bone within reach
        OverlapCase{0.0, 3.4, 1.5708, false},  // T-bone clear
        OverlapCase{3.2, 2.2, 0.7854, true},    // rotated corner reaches in
        OverlapCase{4.4, 3.2, 0.7854, false}    // rotated but clear
        ));

TEST(Weather, PerceptionNoiseFactor) {
  WeatherConfig clear;
  EXPECT_DOUBLE_EQ(clear.perception_noise_factor(), 1.0);
  WeatherConfig night;
  night.night = true;
  EXPECT_GT(night.perception_noise_factor(), 1.0);
  WeatherConfig foggy;
  foggy.fog_density = 1.0;
  EXPECT_GT(foggy.perception_noise_factor(), night.perception_noise_factor());
}

}  // namespace
}  // namespace rdsim::sim
