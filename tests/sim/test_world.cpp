#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace rdsim::sim {
namespace {

using units::Meters;
using units::MetersPerSecond;
using units::Seconds;

World make_world() { return World{make_town05_route()}; }

TEST(World, SpawnAndFind) {
  World w = make_world();
  const ActorId id = w.spawn_on_road(ActorKind::kVehicle, Meters{100.0}, 0, {},
                                     MetersPerSecond{5.0}, "ego");
  ASSERT_NE(w.find(id), nullptr);
  EXPECT_EQ(w.find(id)->role(), "ego");
  EXPECT_EQ(w.actor_count(), 1u);
  EXPECT_NEAR(w.find(id)->vehicle().forward_speed(), 5.0, 1e-9);
  EXPECT_NEAR(w.find(id)->track_position().value(), 100.0, 1e-6);
  EXPECT_EQ(w.find(999), nullptr);
}

TEST(World, SpawnAtOffsetPlacesLaterally) {
  World w = make_world();
  const ActorId id = w.spawn_at_offset(ActorKind::kCyclist, Meters{50.0}, -1.45);
  const auto proj = w.road().project(w.find(id)->state().position);
  EXPECT_NEAR(proj.lateral, -1.45, 0.05);
}

TEST(World, DestroyRemovesActor) {
  World w = make_world();
  const ActorId id = w.spawn_on_road(ActorKind::kVehicle, Meters{0.0}, 0);
  w.destroy(id);
  EXPECT_EQ(w.find(id), nullptr);
  EXPECT_EQ(w.actor_count(), 0u);
}

TEST(World, EgoRequiredForEgoAccessors) {
  World w = make_world();
  EXPECT_THROW(w.ego(), std::logic_error);
  EXPECT_THROW(w.designate_ego(42), std::invalid_argument);
  const ActorId id = w.spawn_on_road(ActorKind::kVehicle, Meters{0.0}, 0);
  w.designate_ego(id);
  EXPECT_EQ(w.ego().id(), id);
}

TEST(World, StepAdvancesTimeAndFrames) {
  World w = make_world();
  const ActorId id = w.spawn_on_road(ActorKind::kVehicle, Meters{0.0}, 0);
  w.designate_ego(id);
  for (int i = 0; i < 10; ++i) w.step(Seconds{0.01});
  EXPECT_NEAR(w.now().to_seconds(), 0.1, 1e-9);
  EXPECT_EQ(w.frame_counter(), 10u);
}

TEST(World, CollisionSensorFiresOncePerEpisode) {
  World w = make_world();
  const ActorId ego = w.spawn_on_road(ActorKind::kVehicle, Meters{0.0}, 0, {},
                                      MetersPerSecond{10.0});
  w.designate_ego(ego);
  VehicleControl c;
  c.throttle = 0.6;
  w.apply_ego_control(c);
  w.spawn_on_road(ActorKind::kStaticVehicle, Meters{20.0}, 0, {},
                  MetersPerSecond{0.0}, "wall");
  for (int i = 0; i < 500 && w.collisions().empty(); ++i) w.step(Seconds{0.01});
  ASSERT_EQ(w.collisions().size(), 1u);
  EXPECT_GT(w.collisions()[0].relative_speed, 1.0);
  EXPECT_EQ(w.collisions()[0].other_kind, ActorKind::kStaticVehicle);
  // Remaining in contact must not create further events.
  for (int i = 0; i < 100; ++i) w.step(Seconds{0.01});
  EXPECT_EQ(w.collisions().size(), 1u);
  EXPECT_TRUE(w.ego_in_contact());
}

TEST(World, CollisionZeroesEgoSpeed) {
  World w = make_world();
  const ActorId ego = w.spawn_on_road(ActorKind::kVehicle, Meters{0.0}, 0, {},
                                      MetersPerSecond{15.0});
  w.designate_ego(ego);
  w.spawn_on_road(ActorKind::kStaticVehicle, Meters{25.0}, 0);
  for (int i = 0; i < 500 && w.collisions().empty(); ++i) w.step(Seconds{0.01});
  ASSERT_FALSE(w.collisions().empty());
  EXPECT_NEAR(w.ego().vehicle().forward_speed(), 0.0, 0.3);
}

TEST(World, LaneInvasionDetected) {
  World w = make_world();
  const ActorId ego = w.spawn_on_road(ActorKind::kVehicle, Meters{0.0}, 0, {},
                                      MetersPerSecond{10.0});
  w.designate_ego(ego);
  // Steer left until the vehicle crosses into lane 1.
  VehicleControl c;
  c.throttle = 0.3;
  c.steer = 0.15;
  w.apply_ego_control(c);
  for (int i = 0; i < 300 && w.lane_invasions().empty(); ++i) w.step(Seconds{0.01});
  ASSERT_FALSE(w.lane_invasions().empty());
  const auto& ev = w.lane_invasions().front();
  EXPECT_EQ(ev.from_lane, 0);
  EXPECT_EQ(ev.to_lane, 1);
  EXPECT_EQ(ev.marking, LaneMarking::kBroken);
}

TEST(World, SnapshotContainsEgoAndOthers) {
  World w = make_world();
  const ActorId ego = w.spawn_on_road(ActorKind::kVehicle, Meters{10.0}, 0, {},
                                      MetersPerSecond{3.0}, "ego");
  w.designate_ego(ego);
  w.spawn_on_road(ActorKind::kStaticVehicle, Meters{50.0}, 1, {},
                  MetersPerSecond{0.0}, "parked");
  w.set_weather({.night = true, .fog_density = 0.2});
  w.step(Seconds{0.01});
  const WorldFrame f = w.snapshot();
  EXPECT_EQ(f.ego.id, ego);
  ASSERT_EQ(f.others.size(), 1u);
  EXPECT_EQ(f.others[0].kind, ActorKind::kStaticVehicle);
  EXPECT_TRUE(f.weather.night);
  EXPECT_EQ(f.frame_id, 1u);
}

TEST(LaneFollowController, TracksLaneAndSpeedProfile) {
  World w = make_world();
  const ActorId ego = w.spawn_on_road(ActorKind::kVehicle, Meters{2000.0}, 1);  // out of the way
  w.designate_ego(ego);
  const ActorId lead = w.spawn_on_road(ActorKind::kVehicle, Meters{0.0}, 0, {},
                                       MetersPerSecond{8.0}, "lead");
  auto ctl = std::make_unique<LaneFollowController>(0, MetersPerSecond{8.0});
  ctl->set_speed_profile({{Meters{0.0}, MetersPerSecond{8.0}},
                          {Meters{100.0}, MetersPerSecond{4.0}}});
  w.set_controller(lead, std::move(ctl));
  for (int i = 0; i < 1200; ++i) w.step(Seconds{0.02});  // 24 s
  const Actor* a = w.find(lead);
  ASSERT_NE(a, nullptr);
  EXPECT_GT(a->track_position(), Meters{100.0});
  EXPECT_NEAR(a->vehicle().forward_speed(), 4.0, 0.6);
  const auto proj = w.road().project(a->state().position, a->track_position().value());
  EXPECT_NEAR(proj.lane_offset, 0.0, 0.4);
  EXPECT_EQ(proj.lane, 0);
}

TEST(CyclistController, StaysNearEdgeAtTargetSpeed) {
  World w = make_world();
  const ActorId ego = w.spawn_on_road(ActorKind::kVehicle, Meters{2000.0}, 1);
  w.designate_ego(ego);
  const ActorId cyc = w.spawn_at_offset(ActorKind::kCyclist, Meters{0.0}, -1.45, {},
                                        MetersPerSecond{4.0});
  w.set_controller(cyc, std::make_unique<CyclistController>(MetersPerSecond{4.0},
                                                            Meters{-1.45}));
  for (int i = 0; i < 1000; ++i) w.step(Seconds{0.02});
  const Actor* a = w.find(cyc);
  EXPECT_NEAR(a->vehicle().forward_speed(), 4.0, 0.5);
  const auto proj = w.road().project(a->state().position, a->track_position().value());
  EXPECT_NEAR(proj.lateral, -1.45, 0.45);  // wobble stays near the edge line
}

}  // namespace
}  // namespace rdsim::sim
