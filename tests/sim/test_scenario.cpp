#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace rdsim::sim {
namespace {

using units::Meters;
using units::MetersPerSecond;
using units::Seconds;

TEST(Scenario, InstructionLookupPicksContainingWindow) {
  Scenario sc;
  sc.ego_start_lane = 0;
  sc.instructions.push_back(
      {Meters{0.0}, Meters{100.0}, 0, MetersPerSecond{10.0}, Meters{0.0}, "a"});
  sc.instructions.push_back(
      {Meters{100.0}, Meters{200.0}, 1, MetersPerSecond{8.0}, Meters{0.5}, "b"});
  EXPECT_EQ(sc.instruction_at(Meters{50.0}).target_lane, 0);
  EXPECT_EQ(sc.instruction_at(Meters{150.0}).target_lane, 1);
  EXPECT_DOUBLE_EQ(sc.instruction_at(Meters{150.0}).lateral_bias.value(), 0.5);
  // Outside all windows: defaults to the starting lane at 10 m/s.
  EXPECT_EQ(sc.instruction_at(Meters{500.0}).target_lane, 0);
  EXPECT_DOUBLE_EQ(sc.instruction_at(Meters{500.0}).target_speed.value(), 10.0);
}

TEST(Scenario, PoiLookup) {
  Scenario sc;
  sc.pois.push_back({"x", Meters{10.0}, Meters{20.0}});
  EXPECT_TRUE(sc.poi_at(Meters{15.0}).has_value());
  EXPECT_EQ(sc.poi_at(Meters{15.0})->name, "x");
  EXPECT_FALSE(sc.poi_at(Meters{25.0}).has_value());
  EXPECT_FALSE(sc.poi_at(Meters{5.0}).has_value());
}

TEST(ScenarioRuntime, SpawnsEgoAndPopulates) {
  World world{make_town05_route()};
  Scenario sc = make_test_route_scenario();
  ScenarioRuntime runtime{sc, world};
  EXPECT_NE(runtime.ego_id(), kInvalidActor);
  EXPECT_EQ(world.ego_id(), runtime.ego_id());
  // The test route starts with a lead vehicle, three parked cars and a
  // cyclist besides the ego.
  EXPECT_EQ(world.actor_count(), 6u);
}

TEST(ScenarioRuntime, TriggersFireOnceAtPosition) {
  World world{make_town05_route()};
  Scenario sc;
  sc.ego_start = Meters{0.0};
  sc.end = Meters{400.0};
  int fired = 0;
  sc.triggers.push_back({Meters{100.0}, "test", [&fired](World&) { ++fired; }});
  ScenarioRuntime runtime{sc, world};
  VehicleControl c;
  c.throttle = 0.8;
  for (int i = 0; i < 3000 && !runtime.complete(); ++i) {
    world.apply_ego_control(c);
    world.step(Seconds{0.02});
    runtime.step();
  }
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(runtime.complete());
}

TEST(ScenarioRuntime, TimeoutDetected) {
  World world{make_town05_route()};
  Scenario sc;
  sc.end = Meters{1000.0};
  sc.time_limit = Seconds{1.0};
  ScenarioRuntime runtime{sc, world};
  for (int i = 0; i < 60; ++i) world.step(Seconds{0.02});
  EXPECT_TRUE(runtime.timed_out());
  EXPECT_FALSE(runtime.complete());
}

TEST(TestRouteScenario, IsWellFormed) {
  const Scenario sc = make_test_route_scenario();
  EXPECT_EQ(sc.name, "test-route");
  EXPECT_GT(sc.end, Meters{2000.0});
  EXPECT_GE(sc.pois.size(), 10u);  // enough slots for 10-14 faults per run
  // POIs ordered and inside the route.
  for (std::size_t i = 0; i < sc.pois.size(); ++i) {
    EXPECT_LT(sc.pois[i].from, sc.pois[i].to);
    EXPECT_LE(sc.pois[i].to, sc.end);
    if (i > 0) {
      EXPECT_GE(sc.pois[i].from.value(), sc.pois[i - 1].to.value() - 1e-9);
    }
  }
  // Instructions cover the route without gaps up to the end position.
  for (double s = 0.0; s < sc.end.value(); s += 10.0) {
    const auto instr = sc.instruction_at(Meters{s});
    EXPECT_GE(instr.target_speed, MetersPerSecond{1.0}) << s;
    EXPECT_LT(instr.target_lane, 2) << s;
  }
}

TEST(ScenarioLibrary, FocusedScenariosWellFormed) {
  for (const Scenario& sc : {make_following_scenario(), make_slalom_scenario(),
                             make_overtake_scenario(), make_training_scenario()}) {
    EXPECT_FALSE(sc.name.empty());
    EXPECT_GT(sc.end, Meters{100.0});
    EXPECT_GT(sc.time_limit, Seconds{30.0});
  }
  // The slalom scenario must actually contain parked vehicles.
  World world{make_town05_route()};
  ScenarioRuntime runtime{make_slalom_scenario(), world};
  int parked = 0;
  for (const Actor* a : world.actors()) {
    if (a->kind() == ActorKind::kStaticVehicle) ++parked;
  }
  EXPECT_EQ(parked, 3);
}

TEST(TestRouteScenario, FollowingPoisCoverBrakingZone) {
  const Scenario sc = make_test_route_scenario();
  bool covered = false;
  for (const auto& poi : sc.pois) {
    if (poi.from <= Meters{2240.0} && poi.to >= Meters{2250.0}) covered = true;
  }
  EXPECT_TRUE(covered);
}

TEST(PedestrianCrossing, WalkerCrossesWhenTriggered) {
  World world{make_town05_route()};
  Scenario sc = make_pedestrian_crossing_scenario();
  ScenarioRuntime runtime{sc, world};
  VehicleControl c;
  c.throttle = 0.5;
  const Actor* walker = nullptr;
  for (const Actor* a : world.actors()) {
    if (a->kind() == ActorKind::kWalker) walker = a;
  }
  ASSERT_NE(walker, nullptr);
  const double start_lateral = world.road().project(walker->state().position).lateral;
  EXPECT_NEAR(start_lateral, -2.2, 0.1);
  for (int i = 0; i < 6000 && !runtime.complete(); ++i) {
    world.apply_ego_control(c);
    world.step(Seconds{0.02});
    runtime.step();
  }
  // After the run the walker must have crossed to the far kerb.
  const double end_lateral = world.road().project(walker->state().position).lateral;
  EXPECT_NEAR(end_lateral, 5.3, 0.2);
  EXPECT_NEAR(walker->state().velocity.norm(), 0.0, 1e-6);  // stopped there
}

}  // namespace
}  // namespace rdsim::sim
