// The CARLA-style RPC layer, including its behaviour under injected faults.
#include <gtest/gtest.h>

#include "sim/rpc.hpp"

namespace rdsim::sim {
namespace {

using util::Duration;
using util::TimePoint;

struct RpcFixture : public ::testing::Test {
  RpcFixture()
      : world{make_town05_route()},
        channel{tc, "lo"},
        router{channel},
        transport{router, channel},
        server{world, transport},
        client{transport} {}

  /// Advance virtual time, pumping the whole stack each millisecond.
  void pump(Duration d) {
    const TimePoint end = now + d;
    while (now < end) {
      now += Duration::millis(1);
      router.poll(now);
      server.step(now);
      client.step(now);
    }
  }

  /// Issue-and-wait helper: pumps until the response arrives (or 5 s).
  RpcResponse roundtrip(std::uint32_t request_id) {
    for (int i = 0; i < 5000; ++i) {
      if (auto resp = client.take_response(request_id)) return *resp;
      pump(Duration::millis(1));
    }
    ADD_FAILURE() << "rpc timeout";
    return {};
  }

  World world;
  net::TrafficControl tc;
  net::Channel channel;
  net::PacketRouter router;
  RpcTransport transport;
  SimServer server;
  SimClient client;
  TimePoint now;
};

TEST_F(RpcFixture, HelloRoundTrip) {
  const auto resp = roundtrip(client.hello());
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(client.pending_requests(), 0u);
}

TEST_F(RpcFixture, SpawnControlSnapshotCycle) {
  const auto spawn = roundtrip(client.spawn_vehicle(ActorKind::kVehicle, 100.0, 0.0,
                                                    5.0, "remote"));
  ASSERT_TRUE(spawn.ok);
  ASSERT_NE(spawn.actor, kInvalidActor);
  EXPECT_NE(world.find(spawn.actor), nullptr);

  VehicleControl c;
  c.throttle = 0.8;
  ASSERT_TRUE(roundtrip(client.apply_control(spawn.actor, c)).ok);
  EXPECT_DOUBLE_EQ(world.find(spawn.actor)->vehicle().control().throttle, 0.8);

  // Let physics run, then fetch a snapshot over the wire.
  for (int i = 0; i < 100; ++i) world.step(units::Seconds{0.01});
  const auto snap = roundtrip(client.get_snapshot());
  ASSERT_TRUE(snap.ok);
  ASSERT_TRUE(snap.snapshot.has_value());
  // No ego designated: every actor appears in `others`.
  ASSERT_EQ(snap.snapshot->others.size(), world.actor_count());
  EXPECT_EQ(snap.snapshot->others[0].id, spawn.actor);
  EXPECT_GT(snap.snapshot->others[0].state.velocity.norm(), 1.0);
}

TEST_F(RpcFixture, MetaCommandSetsWeather) {
  WeatherConfig weather;
  weather.night = true;
  weather.fog_density = 0.4;
  ASSERT_TRUE(roundtrip(client.set_weather(weather)).ok);
  EXPECT_TRUE(world.weather().night);
  EXPECT_DOUBLE_EQ(world.weather().fog_density, 0.4);
}

TEST_F(RpcFixture, DestroyActorAndErrors) {
  const auto spawn = roundtrip(client.spawn_vehicle(ActorKind::kStaticVehicle, 50.0, 0.0));
  ASSERT_TRUE(spawn.ok);
  ASSERT_TRUE(roundtrip(client.destroy_actor(spawn.actor)).ok);
  EXPECT_EQ(world.find(spawn.actor), nullptr);
  const auto again = roundtrip(client.destroy_actor(spawn.actor));
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.error, "no such actor");
  const auto bad_ctl = roundtrip(client.apply_control(9999, VehicleControl{}));
  EXPECT_FALSE(bad_ctl.ok);
}

TEST_F(RpcFixture, FrameSubscriptionStreams) {
  const auto spawn = roundtrip(client.spawn_vehicle(ActorKind::kVehicle, 10.0, 0.0));
  ASSERT_TRUE(spawn.ok);
  world.designate_ego(spawn.actor);
  server.set_frame_wire_bytes(100000);
  ASSERT_TRUE(roundtrip(client.subscribe_frames(20.0)).ok);
  int frames = 0;
  for (int i = 0; i < 1000; ++i) {
    world.step(units::Seconds{0.001});
    pump(Duration::millis(1));
    if (client.take_frame()) ++frames;
  }
  // 1 s at 20 fps.
  EXPECT_NEAR(frames, 20, 4);
  EXPECT_FALSE(roundtrip(client.subscribe_frames(-1.0)).ok);
}

TEST_F(RpcFixture, MetaCommandsSufferInjectedDelay) {
  // §III.C: the fault injector disturbs everything on the device — RPC too.
  tc.add("lo", net::parse_netem("delay 80ms"));
  const TimePoint before = now;
  const auto resp = roundtrip(client.hello());
  EXPECT_TRUE(resp.ok);
  EXPECT_GE((now - before).to_seconds(), 0.16);  // 80 ms each way
}

TEST_F(RpcFixture, SurvivesPacketLoss) {
  tc.add("lo", net::parse_netem("loss 20%"));
  const auto spawn = roundtrip(client.spawn_vehicle(ActorKind::kVehicle, 25.0, 3.5));
  EXPECT_TRUE(spawn.ok);  // the reliable stream retransmits through the loss
}

TEST(RpcMessages, RequestEncodeDecodeAllOpcodes) {
  RpcRequest req;
  req.request_id = 9;
  req.opcode = RpcOpcode::kSpawnVehicle;
  req.kind = ActorKind::kCyclist;
  req.spawn_s = 12.5;
  req.spawn_lateral = -1.45;
  req.initial_speed = 4.0;
  req.role = "cyclist-1";
  const auto decoded = RpcRequest::decode(req.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 9u);
  EXPECT_EQ(decoded->kind, ActorKind::kCyclist);
  EXPECT_EQ(decoded->role, "cyclist-1");
  EXPECT_DOUBLE_EQ(decoded->spawn_lateral, -1.45);

  RpcRequest ctl;
  ctl.opcode = RpcOpcode::kApplyControl;
  ctl.actor = 3;
  ctl.control.steer = -0.5;
  ctl.control.reverse = true;
  const auto ctl2 = RpcRequest::decode(ctl.encode());
  ASSERT_TRUE(ctl2.has_value());
  EXPECT_DOUBLE_EQ(ctl2->control.steer, -0.5);
  EXPECT_TRUE(ctl2->control.reverse);

  EXPECT_FALSE(RpcRequest::decode({1, 2}).has_value());
  net::Payload bogus_opcode{0, 0, 0, 0, 99};
  EXPECT_FALSE(RpcRequest::decode(bogus_opcode).has_value());
}

TEST(RpcMessages, ResponseEncodeDecodeWithSnapshot) {
  RpcResponse resp;
  resp.request_id = 5;
  resp.ok = true;
  WorldFrame frame;
  frame.frame_id = 77;
  resp.snapshot = frame;
  const auto decoded = RpcResponse::decode(resp.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->snapshot.has_value());
  EXPECT_EQ(decoded->snapshot->frame_id, 77u);

  RpcResponse err;
  err.request_id = 6;
  err.ok = false;
  err.error = "nope";
  const auto decoded_err = RpcResponse::decode(err.encode());
  ASSERT_TRUE(decoded_err.has_value());
  EXPECT_FALSE(decoded_err->ok);
  EXPECT_EQ(decoded_err->error, "nope");
  EXPECT_FALSE(decoded_err->snapshot.has_value());
}

}  // namespace
}  // namespace rdsim::sim
