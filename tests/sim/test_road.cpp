#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/road.hpp"

namespace rdsim::sim {
namespace {

TEST(PathBuilder, StraightLength) {
  PathBuilder b{util::Pose{{0, 0}, 0.0}, 1.0};
  b.straight(100.0);
  const auto s = b.build();
  EXPECT_NEAR(s.arclength.back(), 100.0, 1e-9);
  EXPECT_NEAR(s.points.back().x, 100.0, 1e-9);
  EXPECT_NEAR(s.points.back().y, 0.0, 1e-9);
}

TEST(PathBuilder, ArcGeometry) {
  // Quarter circle of radius 100 turning left: ends at (100, 100) heading
  // +90 degrees, length pi*50.
  PathBuilder b{util::Pose{{0, 0}, 0.0}, 0.5};
  b.arc(100.0, util::deg_to_rad(90.0));
  const auto s = b.build();
  EXPECT_NEAR(s.arclength.back(), 100.0 * std::numbers::pi / 2.0, 0.1);
  EXPECT_NEAR(s.points.back().x, 100.0, 0.5);
  EXPECT_NEAR(s.points.back().y, 100.0, 0.5);
  EXPECT_NEAR(s.headings.back(), util::deg_to_rad(90.0), 1e-6);
}

TEST(PathBuilder, RightTurnCurvesNegative) {
  PathBuilder b{util::Pose{{0, 0}, 0.0}, 0.5};
  b.arc(50.0, util::deg_to_rad(-90.0));
  const auto s = b.build();
  EXPECT_NEAR(s.points.back().y, -50.0, 0.5);
}

TEST(PathBuilder, IgnoresDegenerateSegments) {
  PathBuilder b{util::Pose{}, 1.0};
  b.straight(-5.0).arc(0.0, 1.0).arc(10.0, 0.0).straight(10.0);
  const auto s = b.build();
  EXPECT_NEAR(s.arclength.back(), 10.0, 1e-9);
}

RoadNetwork simple_road() {
  PathBuilder b{util::Pose{{0, 0}, 0.0}, 1.0};
  b.straight(200.0).arc(100.0, util::deg_to_rad(45.0)).straight(200.0);
  return RoadNetwork{b.build(), 2, 3.5};
}

TEST(RoadNetwork, RejectsMalformedInput) {
  PathBuilder b{util::Pose{}, 1.0};
  b.straight(10.0);
  EXPECT_THROW(RoadNetwork(b.build(), 0, 3.5), std::invalid_argument);
  EXPECT_THROW(RoadNetwork(b.build(), 2, 0.0), std::invalid_argument);
  EXPECT_THROW(RoadNetwork(PathBuilder::Sampled{}, 2, 3.5), std::invalid_argument);
}

TEST(RoadNetwork, SampleOnStraight) {
  const auto road = simple_road();
  const auto p = road.sample(50.0, 0);
  EXPECT_NEAR(p.position.x, 50.0, 1e-6);
  EXPECT_NEAR(p.position.y, 0.0, 1e-6);
  const auto lane1 = road.sample(50.0, 1);
  EXPECT_NEAR(lane1.position.y, 3.5, 1e-6);  // lane 1 centre is 3.5 m left
}

TEST(RoadNetwork, SampleClampsOutOfRange) {
  const auto road = simple_road();
  const auto before = road.sample(-10.0, 0);
  EXPECT_NEAR(before.position.x, 0.0, 1e-6);
  const auto at_end = road.sample(road.length(), 0);
  const auto after = road.sample(road.length() + 50.0, 0);
  EXPECT_NEAR((after.position - at_end.position).norm(), 0.0, 1e-6);
}

TEST(RoadNetwork, CurvatureSigns) {
  const auto road = simple_road();
  EXPECT_NEAR(road.curvature_at(100.0), 0.0, 1e-4);          // straight
  EXPECT_NEAR(road.curvature_at(230.0), 1.0 / 100.0, 2e-3);  // left arc
}

class ProjectionRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ProjectionRoundTrip, RecoversArcLengthAndLateral) {
  const auto road = simple_road();
  const auto [s, lateral] = GetParam();
  const util::Pose pose = road.sample_offset(s, lateral);
  const auto proj = road.project(pose.position);
  EXPECT_NEAR(proj.s, s, 0.6);
  EXPECT_NEAR(proj.lateral, lateral, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProjectionRoundTrip,
    ::testing::Combine(::testing::Values(10.0, 100.0, 220.0, 300.0, 400.0),
                       ::testing::Values(-1.5, 0.0, 1.75, 3.5, 5.0)));

TEST(RoadNetwork, ProjectionLaneAssignment) {
  const auto road = simple_road();
  EXPECT_EQ(road.project(road.sample(100.0, 0).position).lane, 0);
  EXPECT_EQ(road.project(road.sample(100.0, 1).position).lane, 1);
  // Beyond the last lane the index clamps.
  const auto far_left = road.sample_offset(100.0, 9.0);
  EXPECT_EQ(road.project(far_left.position).lane, 1);
}

TEST(RoadNetwork, HintAcceleratedProjectionMatchesGlobal) {
  const auto road = simple_road();
  for (double s = 5.0; s < road.length(); s += 13.0) {
    const auto pose = road.sample_offset(s, 1.0);
    const auto global = road.project(pose.position);
    const auto hinted = road.project(pose.position, s - 3.0);
    EXPECT_NEAR(global.s, hinted.s, 0.6) << s;
    EXPECT_NEAR(global.lateral, hinted.lateral, 0.06) << s;
  }
}

TEST(RoadNetwork, StaleHintStillFindsTruePosition) {
  const auto road = simple_road();
  const auto pose = road.sample_offset(350.0, 0.0);
  const auto proj = road.project(pose.position, /*badly stale hint=*/5.0);
  EXPECT_NEAR(proj.s, 350.0, 1.0);
}

TEST(RoadNetwork, Markings) {
  const auto road = simple_road();
  EXPECT_EQ(road.marking_right_of(0), LaneMarking::kSolid);  // road edge
  EXPECT_EQ(road.marking_left_of(0), LaneMarking::kBroken);  // between lanes
  EXPECT_EQ(road.marking_left_of(1), LaneMarking::kSolid);   // far edge
  EXPECT_DOUBLE_EQ(road.right_edge_offset(), -1.75);
  EXPECT_DOUBLE_EQ(road.left_edge_offset(), 5.25);
}

TEST(Town05Route, HasExpectedScale) {
  const auto road = make_town05_route();
  EXPECT_GT(road.length(), 2400.0);
  EXPECT_LT(road.length(), 3000.0);
  EXPECT_EQ(road.lane_count(), 2);
  EXPECT_DOUBLE_EQ(road.lane_width(), 3.5);
  bool has_curve = false;
  bool has_straight = false;
  for (double s = 10.0; s < road.length(); s += 20.0) {
    const double k = std::fabs(road.curvature_at(s));
    if (k > 1e-3) has_curve = true;
    if (k < 1e-5) has_straight = true;
  }
  EXPECT_TRUE(has_curve);
  EXPECT_TRUE(has_straight);
}

TEST(Town05Route, ScaledVariantShrinksEverything) {
  const auto full = make_town05_route();
  const auto quarter = make_town05_route(0.25);
  EXPECT_NEAR(quarter.length(), full.length() * 0.25, full.length() * 0.01);
  EXPECT_DOUBLE_EQ(quarter.lane_width(), full.lane_width() * 0.25);
  EXPECT_EQ(quarter.lane_count(), full.lane_count());
  // Curvature scales inversely with length.
  EXPECT_NEAR(quarter.curvature_at(550.0 * 0.25),
              4.0 * full.curvature_at(550.0), 6e-3);
  // Nonsense scale falls back to full size.
  EXPECT_NEAR(make_town05_route(-3.0).length(), full.length(), 1.0);
}

}  // namespace
}  // namespace rdsim::sim
