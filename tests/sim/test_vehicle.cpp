#include <gtest/gtest.h>

#include <cmath>

#include "sim/vehicle.hpp"

namespace rdsim::sim {
namespace {

constexpr units::Seconds kDt{0.01};

Vehicle stationary_vehicle() {
  Vehicle v{VehicleParams{}};
  KinematicState st;
  v.set_state(st);
  return v;
}

void run(Vehicle& v, double seconds) {
  const int steps = static_cast<int>(seconds / kDt.value());
  for (int i = 0; i < steps; ++i) v.step(kDt);
}

TEST(Vehicle, AcceleratesUnderThrottle) {
  Vehicle v = stationary_vehicle();
  VehicleControl c;
  c.throttle = 1.0;
  v.apply_control(c);
  run(v, 3.0);
  EXPECT_GT(v.forward_speed(), 5.0);
  EXPECT_LT(v.forward_speed(), 10.0);  // drag + lag keep it sane
  EXPECT_GT(v.state().position.x, 5.0);
  EXPECT_NEAR(v.state().position.y, 0.0, 1e-9);  // straight line
}

TEST(Vehicle, BrakingStopsButDoesNotReverse) {
  Vehicle v = stationary_vehicle();
  KinematicState st;
  st.velocity = {15.0, 0.0};
  v.set_state(st);
  EXPECT_NEAR(v.forward_speed(), 15.0, 1e-9);
  VehicleControl c;
  c.brake = 1.0;
  v.apply_control(c);
  run(v, 5.0);
  EXPECT_NEAR(v.forward_speed(), 0.0, 1e-6);
}

TEST(Vehicle, FullBrakeStoppingDistancePlausible) {
  // ~8 m/s^2 peak decel from 20 m/s: v^2/(2a) = 25 m plus actuation lag.
  Vehicle v = stationary_vehicle();
  KinematicState st;
  st.velocity = {20.0, 0.0};
  v.set_state(st);
  VehicleControl c;
  c.brake = 1.0;
  v.apply_control(c);
  run(v, 6.0);
  EXPECT_GT(v.state().position.x, 24.0);
  EXPECT_LT(v.state().position.x, 36.0);
}

TEST(Vehicle, TopSpeedLimited) {
  Vehicle v = stationary_vehicle();
  VehicleControl c;
  c.throttle = 1.0;
  v.apply_control(c);
  run(v, 120.0);
  EXPECT_LT(v.forward_speed(), v.params().max_speed.value() + 0.5);
  EXPECT_GT(v.forward_speed(), 20.0);
}

TEST(Vehicle, ReverseDrivesBackwards) {
  Vehicle v = stationary_vehicle();
  VehicleControl c;
  c.throttle = 0.6;
  c.reverse = true;
  v.apply_control(c);
  run(v, 3.0);
  EXPECT_LT(v.forward_speed(), -0.5);
  EXPECT_LT(v.state().position.x, -0.5);
}

TEST(Vehicle, TurningRadiusMatchesBicycleModel) {
  // At constant speed and steering angle, radius = wheelbase / tan(delta).
  VehicleParams params;
  Vehicle v{params};
  KinematicState st;
  st.velocity = {8.0, 0.0};
  v.set_state(st);
  VehicleControl c;
  c.steer = 0.5;  // half of max steer
  c.throttle = 0.35;
  v.apply_control(c);
  run(v, 1.0);  // let the wheel settle
  const double delta = v.steer_angle();
  const double expected_radius = params.wheelbase.value() / std::tan(delta);
  // Measure the turn radius from yaw rate: R = v / yaw_rate.
  const double h0 = v.state().heading;
  const double speed = v.forward_speed();
  run(v, 0.5);
  const double yaw_rate = util::wrap_angle(v.state().heading - h0) / 0.5;
  EXPECT_NEAR(speed / yaw_rate, expected_radius, expected_radius * 0.1);
}

TEST(Vehicle, SteeringRateLimited) {
  Vehicle v = stationary_vehicle();
  VehicleControl c;
  c.steer = 1.0;
  v.apply_control(c);
  v.step(kDt);
  const double after_one = v.steer_angle();
  EXPECT_LE(after_one, util::deg_to_rad(v.params().max_steer_rate_deg) * kDt.value() + 1e-9);
  run(v, 1.0);
  EXPECT_NEAR(v.steer_angle(), util::deg_to_rad(v.params().max_steer_deg), 1e-6);
}

TEST(Vehicle, ControlClamped) {
  Vehicle v = stationary_vehicle();
  VehicleControl c;
  c.throttle = 7.0;
  c.steer = -3.0;
  c.brake = -1.0;
  v.apply_control(c);
  EXPECT_DOUBLE_EQ(v.control().throttle, 1.0);
  EXPECT_DOUBLE_EQ(v.control().steer, -1.0);
  EXPECT_DOUBLE_EQ(v.control().brake, 0.0);
}

TEST(Vehicle, HandBrakeStops) {
  Vehicle v = stationary_vehicle();
  KinematicState st;
  st.velocity = {10.0, 0.0};
  v.set_state(st);
  VehicleControl c;
  c.hand_brake = true;
  v.apply_control(c);
  run(v, 3.0);
  EXPECT_NEAR(v.forward_speed(), 0.0, 0.2);
}

TEST(Vehicle, CoastingDeceleratesSlowly) {
  Vehicle v = stationary_vehicle();
  KinematicState st;
  st.velocity = {10.0, 0.0};
  v.set_state(st);
  v.apply_control(VehicleControl{});
  run(v, 2.0);
  EXPECT_LT(v.forward_speed(), 10.0);
  EXPECT_GT(v.forward_speed(), 8.5);  // rolling resistance only
}

TEST(Vehicle, ZeroDtIsNoOp) {
  Vehicle v = stationary_vehicle();
  VehicleControl c;
  c.throttle = 1.0;
  v.apply_control(c);
  v.step(units::Seconds{0.0});
  v.step(units::Seconds{-1.0});
  EXPECT_DOUBLE_EQ(v.forward_speed(), 0.0);
}

TEST(VehicleParams, ScaledModelVehicleIsSmallerAndSlower) {
  const auto m = VehicleParams::scaled_model_vehicle();
  const VehicleParams full;
  EXPECT_LT(m.wheelbase.value(), full.wheelbase.value() / 4.0);
  EXPECT_LT(m.max_speed, units::MetersPerSecond{10.0});
  EXPECT_LT(m.bbox.half_length, 0.5);
}

}  // namespace
}  // namespace rdsim::sim
