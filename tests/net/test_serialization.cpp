#include <gtest/gtest.h>

#include "net/serialization.hpp"

namespace rdsim::net {
namespace {

TEST(ByteWriterReader, RoundTripsAllTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159);
  w.str("hello world");
  w.bytes({1, 2, 3});

  ByteReader r{w.data()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, TruncationSetsNotOk) {
  ByteWriter w;
  w.u32(7);
  ByteReader r{w.data()};
  r.u32();
  EXPECT_TRUE(r.ok());
  r.u32();  // nothing left
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // further reads return zero values
}

TEST(ByteReader, CorruptLengthPrefixIsSafe) {
  ByteWriter w;
  w.u32(1000000);  // claims a million bytes follow
  ByteReader r{w.data()};
  const auto s = r.str();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(s.empty());
}

TEST(ByteReader, EmptyStringAndBytes) {
  ByteWriter w;
  w.str("");
  w.bytes({});
  ByteReader r{w.data()};
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace rdsim::net
