#include <gtest/gtest.h>

#include <cstring>

#include "core/protocol.hpp"
#include "net/serialization.hpp"
#include "util/rng.hpp"

namespace rdsim::net {
namespace {

TEST(ByteWriterReader, RoundTripsAllTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159);
  w.str("hello world");
  w.bytes({1, 2, 3});

  ByteReader r{w.data()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, TruncationSetsNotOk) {
  ByteWriter w;
  w.u32(7);
  ByteReader r{w.data()};
  r.u32();
  EXPECT_TRUE(r.ok());
  r.u32();  // nothing left
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // further reads return zero values
}

TEST(ByteReader, CorruptLengthPrefixIsSafe) {
  ByteWriter w;
  w.u32(1000000);  // claims a million bytes follow
  ByteReader r{w.data()};
  const auto s = r.str();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(s.empty());
}

TEST(ByteReader, EmptyStringAndBytes) {
  ByteWriter w;
  w.str("");
  w.bytes({});
  ByteReader r{w.data()};
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.ok());
}

// ----- randomized round-trip (fuzz-style, seeded => reproducible) -----

// One randomly typed field. The same schedule drives the writer, the reader
// and the re-writer, so serialize -> deserialize -> re-serialize must be
// bit-identical.
struct FuzzField {
  int tag{0};  // 0=u8 1=u16 2=u32 3=u64 4=i32 5=i64 6=f64 7=str 8=bytes
  std::uint64_t integer{0};
  double real{0.0};
  std::string text;
  std::vector<std::uint8_t> blob;
};

std::vector<FuzzField> make_fuzz_fields(util::Random& rng) {
  const int n = rng.uniform_int(1, 12);
  std::vector<FuzzField> fields;
  for (int i = 0; i < n; ++i) {
    FuzzField f;
    f.tag = rng.uniform_int(0, 8);
    f.integer = (static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) << 32) ^
                static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    // Cover negatives, zeros, subnormal-ish and large magnitudes.
    switch (rng.uniform_int(0, 3)) {
      case 0: f.real = rng.normal(0.0, 1e-30); break;
      case 1: f.real = rng.normal(0.0, 1e30); break;
      case 2: f.real = 0.0; break;
      default: f.real = rng.uniform(-1e6, 1e6); break;
    }
    const int len = rng.uniform_int(0, 40);
    for (int c = 0; c < len; ++c) {
      f.text.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      f.blob.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    fields.push_back(std::move(f));
  }
  return fields;
}

void write_fields(ByteWriter& w, const std::vector<FuzzField>& fields) {
  for (const FuzzField& f : fields) {
    switch (f.tag) {
      case 0: w.u8(static_cast<std::uint8_t>(f.integer)); break;
      case 1: w.u16(static_cast<std::uint16_t>(f.integer)); break;
      case 2: w.u32(static_cast<std::uint32_t>(f.integer)); break;
      case 3: w.u64(f.integer); break;
      case 4: w.i32(static_cast<std::int32_t>(f.integer)); break;
      case 5: w.i64(static_cast<std::int64_t>(f.integer)); break;
      case 6: w.f64(f.real); break;
      case 7: w.str(f.text); break;
      default: w.bytes(f.blob); break;
    }
  }
}

TEST(SerializationFuzz, RandomFieldSequencesReserializeBitIdentically) {
  util::Random rng{20230612, 0xf022ULL};
  for (int iter = 0; iter < 1000; ++iter) {
    const std::vector<FuzzField> fields = make_fuzz_fields(rng);
    ByteWriter w;
    write_fields(w, fields);
    const std::vector<std::uint8_t> blob = w.data();

    // Deserialize with the same schedule, then re-serialize.
    ByteReader r{blob};
    ByteWriter w2;
    for (const FuzzField& f : fields) {
      switch (f.tag) {
        case 0: w2.u8(r.u8()); break;
        case 1: w2.u16(r.u16()); break;
        case 2: w2.u32(r.u32()); break;
        case 3: w2.u64(r.u64()); break;
        case 4: w2.i32(r.i32()); break;
        case 5: w2.i64(r.i64()); break;
        case 6: w2.f64(r.f64()); break;
        case 7: w2.str(r.str()); break;
        default: w2.bytes(r.bytes()); break;
      }
    }
    ASSERT_TRUE(r.ok()) << "iteration " << iter;
    ASSERT_EQ(r.remaining(), 0u) << "iteration " << iter;
    ASSERT_EQ(blob, w2.data()) << "iteration " << iter;
  }
}

TEST(SerializationFuzz, TruncatedBuffersAreRejectedWithoutUb) {
  util::Random rng{99, 0xf022ULL};
  for (int iter = 0; iter < 1000; ++iter) {
    const std::vector<FuzzField> fields = make_fuzz_fields(rng);
    ByteWriter w;
    write_fields(w, fields);
    const std::vector<std::uint8_t>& blob = w.data();
    if (blob.empty()) continue;

    // Read the full schedule from a random strict prefix: the reader must
    // flag the truncation (not necessarily at the first field) and keep
    // returning zero values, never touching memory past the prefix.
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(blob.size()) - 1));
    ByteReader r{blob.data(), cut};
    for (const FuzzField& f : fields) {
      switch (f.tag) {
        case 0: r.u8(); break;
        case 1: r.u16(); break;
        case 2: r.u32(); break;
        case 3: r.u64(); break;
        case 4: r.i32(); break;
        case 5: r.i64(); break;
        case 6: r.f64(); break;
        case 7: r.str(); break;
        default: r.bytes(); break;
      }
    }
    ASSERT_FALSE(r.ok()) << "iteration " << iter << " cut " << cut;
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_TRUE(r.str().empty());
  }
}

TEST(SerializationFuzz, CommandMsgRoundTripsBitIdentically) {
  util::Random rng{4242, 0xf022ULL};
  for (int iter = 0; iter < 1000; ++iter) {
    core::CommandMsg m;
    m.sequence = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
    m.control.throttle = rng.uniform(0.0, 1.0);
    m.control.steer = rng.uniform(-1.0, 1.0);
    m.control.brake = rng.uniform(0.0, 1.0);
    m.control.reverse = rng.bernoulli(0.5);
    m.control.hand_brake = rng.bernoulli(0.1);
    m.sent_at_us = static_cast<std::int64_t>(rng.uniform_int(0, 1 << 30)) * 1000;
    m.based_on_frame = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));

    const Payload wire = m.encode();
    const auto decoded = core::CommandMsg::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << iter;
    ASSERT_EQ(decoded->encode(), wire) << "iteration " << iter;

    // Every strict prefix must be rejected cleanly.
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(wire.size()) - 1));
    EXPECT_FALSE(core::CommandMsg::decode(
                     Payload{wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut)})
                     .has_value())
        << "iteration " << iter << " cut " << cut;
  }
}

}  // namespace
}  // namespace rdsim::net
