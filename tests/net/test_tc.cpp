// The tc rule language and traffic-control table.
#include <gtest/gtest.h>

#include "net/tc.hpp"

namespace rdsim::net {
namespace {

using util::Duration;

TEST(ParseDuration, Units) {
  EXPECT_EQ(parse_duration("50ms"), Duration::millis(50));
  EXPECT_EQ(parse_duration("5"), Duration::millis(5));  // bare = ms, tc style
  EXPECT_EQ(parse_duration("200us"), Duration::micros(200));
  EXPECT_EQ(parse_duration("1.5s"), Duration::seconds(1.5));
  EXPECT_EQ(parse_duration("2.5ms"), Duration::micros(2500));
  EXPECT_THROW(parse_duration("10parsecs"), TcParseError);
  EXPECT_THROW(parse_duration("fast"), TcParseError);
}

TEST(ParsePercent, Forms) {
  EXPECT_DOUBLE_EQ(parse_percent("5%").value(), 0.05);
  EXPECT_DOUBLE_EQ(parse_percent("2.5%").value(), 0.025);
  EXPECT_DOUBLE_EQ(parse_percent("0.05").value(), 0.05);  // bare fraction
  EXPECT_DOUBLE_EQ(parse_percent("100%").value(), 1.0);
  EXPECT_THROW(parse_percent("150%"), TcParseError);
  EXPECT_THROW(parse_percent("-1%"), TcParseError);
  EXPECT_THROW(parse_percent("5pc"), TcParseError);
}

TEST(ParseRate, Units) {
  EXPECT_DOUBLE_EQ(parse_rate("1mbit").value(), 125000.0);
  EXPECT_DOUBLE_EQ(parse_rate("8kbit").value(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_rate("1gbit").value(), 125000000.0);
  EXPECT_DOUBLE_EQ(parse_rate("500bps").value(), 500.0);
  EXPECT_DOUBLE_EQ(parse_rate("2kbps").value(), 2000.0);
  EXPECT_THROW(parse_rate("1lightyear"), TcParseError);
}

// Every rate suffix tc accepts round-trips: the parsed value matches the
// corresponding units::BytesPerSecond constructor, and converting back to
// the suffix's own unit reproduces the input numeral.
TEST(ParseRate, RoundTripEverySuffix) {
  EXPECT_EQ(parse_rate("320bit"), units::BytesPerSecond::from_bit(320.0));
  EXPECT_DOUBLE_EQ(parse_rate("320bit").to_bit(), 320.0);

  EXPECT_EQ(parse_rate("7kbit"), units::BytesPerSecond::from_kbit(7.0));
  EXPECT_DOUBLE_EQ(parse_rate("7kbit").to_kbit(), 7.0);

  EXPECT_EQ(parse_rate("3mbit"), units::BytesPerSecond::from_mbit(3.0));
  EXPECT_DOUBLE_EQ(parse_rate("3mbit").to_bit(), 3e6);

  EXPECT_EQ(parse_rate("2gbit"), units::BytesPerSecond::from_gbit(2.0));
  EXPECT_DOUBLE_EQ(parse_rate("2gbit").to_bit(), 2e9);

  EXPECT_EQ(parse_rate("640bps"), units::BytesPerSecond::from_bps(640.0));
  EXPECT_DOUBLE_EQ(parse_rate("640bps").value(), 640.0);

  EXPECT_EQ(parse_rate("5kbps"), units::BytesPerSecond::from_kbps(5.0));
  EXPECT_DOUBLE_EQ(parse_rate("5kbps").value(), 5000.0);

  EXPECT_EQ(parse_rate("4mbps"), units::BytesPerSecond::from_mbps(4.0));
  EXPECT_DOUBLE_EQ(parse_rate("4mbps").value(), 4e6);

  // Bare numbers are bytes per second, tc style.
  EXPECT_EQ(parse_rate("1500"), units::BytesPerSecond{1500.0});
}

TEST(ParseNetem, DelayOnly) {
  const auto cfg = parse_netem("netem delay 50ms");
  EXPECT_EQ(cfg.delay, Duration::millis(50));
  EXPECT_TRUE(cfg.jitter.is_zero());
  EXPECT_FALSE(cfg.has_loss());
}

TEST(ParseNetem, DelayWithJitterAndCorrelation) {
  const auto cfg = parse_netem("delay 100ms 10ms 25%");
  EXPECT_EQ(cfg.delay, Duration::millis(100));
  EXPECT_EQ(cfg.jitter, Duration::millis(10));
  EXPECT_DOUBLE_EQ(cfg.delay_correlation.value(), 0.25);
}

TEST(ParseNetem, Distribution) {
  EXPECT_EQ(parse_netem("delay 10ms 2ms distribution normal").distribution,
            DelayDistribution::kNormal);
  EXPECT_EQ(parse_netem("delay 10ms 2ms distribution pareto").distribution,
            DelayDistribution::kPareto);
  EXPECT_EQ(parse_netem("delay 10ms 2ms distribution paretonormal").distribution,
            DelayDistribution::kParetoNormal);
  EXPECT_THROW(parse_netem("delay 10ms distribution cauchy"), TcParseError);
}

TEST(ParseNetem, Loss) {
  const auto cfg = parse_netem("loss 5%");
  EXPECT_DOUBLE_EQ(cfg.loss_probability.value(), 0.05);
  const auto corr = parse_netem("loss 5% 25%");
  EXPECT_DOUBLE_EQ(corr.loss_correlation.value(), 0.25);
}

TEST(ParseNetem, LossGemodel) {
  const auto cfg = parse_netem("loss gemodel 1% 10%");
  ASSERT_TRUE(cfg.gemodel.has_value());
  EXPECT_DOUBLE_EQ(cfg.gemodel->p.value(), 0.01);
  EXPECT_DOUBLE_EQ(cfg.gemodel->r.value(), 0.10);
}

TEST(ParseNetem, CombinedRule) {
  const auto cfg = parse_netem(
      "delay 50ms 10ms loss 2% duplicate 1% corrupt 0.5% reorder 25% gap 5 "
      "rate 10mbit limit 500");
  EXPECT_EQ(cfg.delay, Duration::millis(50));
  EXPECT_DOUBLE_EQ(cfg.loss_probability.value(), 0.02);
  EXPECT_DOUBLE_EQ(cfg.duplicate_probability.value(), 0.01);
  EXPECT_DOUBLE_EQ(cfg.corrupt_probability.value(), 0.005);
  EXPECT_DOUBLE_EQ(cfg.reorder_probability.value(), 0.25);
  EXPECT_EQ(cfg.reorder_gap, 5u);
  EXPECT_DOUBLE_EQ(cfg.rate.value(), 1250000.0);
  EXPECT_EQ(cfg.limit, 500u);
}

TEST(ParseNetem, UnknownKeywordThrows) {
  EXPECT_THROW(parse_netem("warp 9"), TcParseError);
  EXPECT_THROW(parse_netem("delay"), TcParseError);  // missing value
}

TEST(TrafficControl, DefaultDeviceIsPfifo) {
  TrafficControl tc;
  EXPECT_EQ(tc.root("lo").kind(), "pfifo");
  EXPECT_FALSE(tc.has_netem("lo"));
}

TEST(TrafficControl, AddInstallsNetem) {
  TrafficControl tc;
  tc.add("lo", parse_netem("delay 50ms"));
  EXPECT_TRUE(tc.has_netem("lo"));
  EXPECT_EQ(tc.root("lo").kind(), "netem");
  ASSERT_TRUE(tc.netem_config("lo").has_value());
  EXPECT_EQ(tc.netem_config("lo")->delay, Duration::millis(50));
}

TEST(TrafficControl, DoubleAddFails) {
  TrafficControl tc;
  tc.add("lo", parse_netem("delay 5ms"));
  EXPECT_THROW(tc.add("lo", parse_netem("delay 10ms")), TcParseError);
}

TEST(TrafficControl, ChangeRequiresExistingRule) {
  TrafficControl tc;
  EXPECT_THROW(tc.change("lo", parse_netem("delay 5ms")), TcParseError);
  tc.add("lo", parse_netem("delay 5ms"));
  tc.change("lo", parse_netem("loss 5%"));
  EXPECT_DOUBLE_EQ(tc.netem_config("lo")->loss_probability.value(), 0.05);
}

TEST(TrafficControl, DelRevertsToPfifoAndDropsQueue) {
  TrafficControl tc;
  tc.add("lo", parse_netem("delay 1000ms"));
  Packet p;
  p.id = 1;
  p.wire_size = 10;
  tc.root("lo").enqueue(std::move(p), util::TimePoint{});
  EXPECT_EQ(tc.root("lo").backlog(), 1u);
  tc.del("lo");
  EXPECT_FALSE(tc.has_netem("lo"));
  EXPECT_EQ(tc.root("lo").backlog(), 0u);  // kernel drops queued packets
  EXPECT_THROW(tc.del("lo"), TcParseError);
}

TEST(TrafficControl, ExecuteFullCommandStrings) {
  TrafficControl tc;
  EXPECT_EQ(tc.execute("tc qdisc add dev lo root netem delay 50ms"), "lo");
  EXPECT_TRUE(tc.has_netem("lo"));
  tc.execute("qdisc change dev lo root netem loss 5%");
  EXPECT_DOUBLE_EQ(tc.netem_config("lo")->loss_probability.value(), 0.05);
  tc.execute("tc qdisc del dev lo root");
  EXPECT_FALSE(tc.has_netem("lo"));
}

TEST(TrafficControl, ExecuteRejectsMalformedCommands) {
  TrafficControl tc;
  EXPECT_THROW(tc.execute("qdisc add dev"), TcParseError);
  EXPECT_THROW(tc.execute("qdisc frobnicate dev lo root netem delay 1ms"), TcParseError);
  EXPECT_THROW(tc.execute("tc filter add dev lo"), TcParseError);
}

TEST(TrafficControl, IndependentDevices) {
  TrafficControl tc;
  tc.add("eth0", parse_netem("delay 5ms"));
  tc.root("lo");  // materialize the default qdisc on a second device
  EXPECT_TRUE(tc.has_netem("eth0"));
  EXPECT_FALSE(tc.has_netem("lo"));
  EXPECT_EQ(tc.devices().size(), 2u);
}

}  // namespace
}  // namespace rdsim::net
