// TCP-analogue semantics: ordering, retransmission, head-of-line blocking.
#include <gtest/gtest.h>

#include "net/reliable_stream.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

struct StreamFixture : public ::testing::Test {
  StreamFixture()
      : channel{tc, "lo"}, router{channel},
        stream{router, channel, 1, LinkDirection::kDownlink, config()} {}

  static StreamConfig config() {
    StreamConfig cfg;
    cfg.mtu = 1000;
    return cfg;
  }

  /// Run the virtual clock forward, polling every millisecond.
  void run_for(Duration d) {
    const TimePoint end = now + d;
    while (now < end) {
      now += Duration::millis(1);
      router.poll(now);
      stream.step(now);
    }
  }

  Payload make_message(std::size_t bytes) {
    Payload p(bytes);
    for (std::size_t i = 0; i < bytes; ++i) p[i] = static_cast<std::uint8_t>(i * 7);
    return p;
  }

  TrafficControl tc;
  Channel channel;
  PacketRouter router;
  ReliableStream stream;
  TimePoint now;
};

TEST_F(StreamFixture, DeliversSingleMessage) {
  const Payload msg = make_message(100);
  stream.send_message(msg, 100, now);
  run_for(Duration::millis(5));
  const auto delivered = stream.pop_delivered();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->bytes, msg);
  EXPECT_EQ(stream.stats().messages_delivered, 1u);
}

TEST_F(StreamFixture, SegmentsLargeMessages) {
  // 10 KB at MTU 1000 = 10 segments.
  stream.send_message(make_message(500), 10000, now);
  run_for(Duration::millis(5));
  EXPECT_EQ(stream.stats().segments_sent, 10u);
  const auto delivered = stream.pop_delivered();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->bytes.size(), 500u);  // payload reassembled exactly
}

TEST_F(StreamFixture, InOrderDeliveryOfManyMessages) {
  for (int i = 0; i < 20; ++i) {
    Payload msg{static_cast<std::uint8_t>(i)};
    stream.send_message(msg, 100, now);
  }
  run_for(Duration::millis(10));
  for (int i = 0; i < 20; ++i) {
    const auto d = stream.pop_delivered();
    ASSERT_TRUE(d.has_value()) << i;
    EXPECT_EQ(d->bytes[0], static_cast<std::uint8_t>(i));
  }
}

TEST_F(StreamFixture, RecoversFromLossViaRetransmission) {
  tc.add("lo", parse_netem("loss 30%"));
  for (int i = 0; i < 50; ++i) {
    stream.send_message({static_cast<std::uint8_t>(i)}, 100, now);
  }
  run_for(Duration::seconds(10.0));
  int received = 0;
  while (auto d = stream.pop_delivered()) {
    EXPECT_EQ(d->bytes[0], static_cast<std::uint8_t>(received));
    ++received;
  }
  EXPECT_EQ(received, 50);
  EXPECT_GT(stream.stats().retransmits_rto + stream.stats().retransmits_fast, 0u);
}

TEST_F(StreamFixture, LossCausesHeadOfLineStall) {
  // With 200 ms min RTO, a lost segment stalls delivery of everything behind
  // it for on the order of the RTO.
  tc.add("lo", parse_netem("loss 100%"));
  stream.send_message({1}, 100, now);
  run_for(Duration::millis(50));
  tc.del("lo");
  stream.send_message({2}, 100, now);
  run_for(Duration::millis(50));
  // Message 2's segment arrived, but message 1 blocks delivery.
  EXPECT_FALSE(stream.pop_delivered().has_value());
  run_for(Duration::millis(400));  // let the RTO fire and retransmit
  auto first = stream.pop_delivered();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->bytes[0], 1);
  auto second = stream.pop_delivered();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->bytes[0], 2);
  EXPECT_GE(first->latency(), Duration::millis(200));  // paid at least one RTO
}

TEST_F(StreamFixture, FastRetransmitBeatsRtoWhenTrafficFlows) {
  // Drop exactly one segment, then keep sending: dup-ACKs should trigger a
  // fast retransmit well before the 200 ms RTO.
  tc.add("lo", parse_netem("loss 100%"));
  stream.send_message({9}, 100, now);
  run_for(Duration::millis(2));
  tc.del("lo");
  for (int i = 0; i < 6; ++i) {
    stream.send_message({static_cast<std::uint8_t>(i)}, 100, now);
    run_for(Duration::millis(5));
  }
  run_for(Duration::millis(60));
  EXPECT_GE(stream.stats().retransmits_fast, 1u);
  auto d = stream.pop_delivered();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->bytes[0], 9);
  EXPECT_LT(d->latency(), Duration::millis(150));
}

TEST_F(StreamFixture, DelayInflatesMessageLatency) {
  tc.add("lo", parse_netem("delay 50ms"));
  stream.send_message({1}, 100, now);
  run_for(Duration::millis(200));
  const auto d = stream.pop_delivered();
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(d->latency(), Duration::millis(50));
  EXPECT_LT(d->latency(), Duration::millis(60));
}

TEST_F(StreamFixture, DuplicatesAreDiscardedByReceiver) {
  tc.add("lo", parse_netem("duplicate 100%"));
  for (int i = 0; i < 10; ++i) stream.send_message({static_cast<std::uint8_t>(i)}, 100, now);
  run_for(Duration::millis(20));
  int received = 0;
  while (stream.pop_delivered()) ++received;
  EXPECT_EQ(received, 10);
  EXPECT_GT(stream.stats().stale_segments, 0u);
}

TEST_F(StreamFixture, CorruptionBehavesAsLoss) {
  tc.add("lo", parse_netem("corrupt 100%"));
  stream.send_message({42}, 100, now);
  run_for(Duration::millis(100));
  EXPECT_FALSE(stream.pop_delivered().has_value());  // every copy mangled
  tc.del("lo");
  run_for(Duration::millis(500));  // retransmission over the clean link
  const auto d = stream.pop_delivered();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->bytes[0], 42);
}

TEST_F(StreamFixture, WindowLimitsInFlightSegments) {
  StreamConfig cfg = config();
  cfg.window_segments = 4;
  ReliableStream small{router, channel, 2, LinkDirection::kDownlink, cfg};
  tc.add("lo", parse_netem("delay 500ms"));  // keep ACKs away
  for (int i = 0; i < 20; ++i) small.send_message({static_cast<std::uint8_t>(i)}, 100, now);
  small.step(now);
  EXPECT_EQ(small.unacked_segments(), 4u);
  EXPECT_EQ(small.send_backlog(), 16u);
}

TEST_F(StreamFixture, RtoBacksOffExponentially) {
  tc.add("lo", parse_netem("loss 100%"));
  stream.send_message({1}, 100, now);
  run_for(Duration::seconds(3.0));
  // With min RTO 200 ms, max 2 s and doubling, ~5-7 attempts fit in 3 s;
  // without backoff there would be ~15.
  EXPECT_LE(stream.stats().retransmits_rto, 8u);
  EXPECT_GE(stream.stats().retransmits_rto, 3u);
}

TEST_F(StreamFixture, SrttTracksPathDelay) {
  tc.add("lo", parse_netem("delay 20ms"));
  for (int i = 0; i < 20; ++i) {
    stream.send_message({1}, 100, now);
    run_for(Duration::millis(60));
    stream.pop_delivered();
  }
  EXPECT_NEAR(stream.stats().srtt.value(), 40.0, 10.0);  // both directions delayed
}

TEST_F(StreamFixture, BidirectionalFaultHitsAcks) {
  // Even if only data gets through untouched, delayed ACKs stretch the
  // sender's RTT estimate — both directions share the device.
  tc.add("lo", parse_netem("delay 100ms"));
  stream.send_message({1}, 100, now);
  run_for(Duration::millis(500));
  EXPECT_GE(stream.stats().srtt.value(), 190.0);
}

}  // namespace
}  // namespace rdsim::net
