#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "net/tc.hpp"

namespace rdsim::net {
namespace {

using util::TimePoint;

TEST(QdiscStats, SummaryMentionsAllCounters) {
  QdiscStats s;
  s.enqueued = 10;
  s.dequeued = 7;
  s.dropped_loss = 2;
  s.dropped_overlimit = 1;
  s.duplicated = 3;
  s.corrupted = 4;
  s.reordered = 5;
  s.bytes_sent = 700;
  const std::string text = s.summary();
  EXPECT_NE(text.find("sent 7"), std::string::npos);
  EXPECT_NE(text.find("700 bytes"), std::string::npos);
  EXPECT_NE(text.find("dropped 3"), std::string::npos);
  EXPECT_NE(text.find("loss 2"), std::string::npos);
  EXPECT_NE(text.find("duplicated 3"), std::string::npos);
  EXPECT_NE(text.find("corrupted 4"), std::string::npos);
  EXPECT_NE(text.find("reordered 5"), std::string::npos);
  EXPECT_EQ(s.total_dropped(), 3u);
}

TEST(NetemDescribe, RoundTripsThroughParser) {
  // describe() must emit a string parse_netem accepts, with the same
  // semantics — the property that makes fault logs replayable.
  for (const char* spec :
       {"delay 50ms", "delay 100ms 10ms 25%", "loss 5%", "loss 2% 50%",
        "delay 20ms loss 1% duplicate 2% corrupt 0.5%",
        "delay 10ms 2ms distribution normal"}) {
    const NetemConfig original = parse_netem(spec);
    const NetemConfig reparsed = parse_netem(original.describe());
    EXPECT_EQ(reparsed.delay, original.delay) << spec;
    EXPECT_EQ(reparsed.jitter, original.jitter) << spec;
    EXPECT_DOUBLE_EQ(reparsed.loss_probability.value(), original.loss_probability.value()) << spec;
    EXPECT_DOUBLE_EQ(reparsed.duplicate_probability.value(),
                     original.duplicate_probability.value())
        << spec;
    EXPECT_DOUBLE_EQ(reparsed.corrupt_probability.value(),
                     original.corrupt_probability.value())
        << spec;
    EXPECT_EQ(reparsed.distribution, original.distribution) << spec;
  }
}

TEST(Channel, StatsSeparatedByDirection) {
  TrafficControl tc;
  Channel ch{tc, "lo"};
  for (int i = 0; i < 3; ++i) ch.send(LinkDirection::kDownlink, {1}, 100, TimePoint{});
  ch.send(LinkDirection::kUplink, {2}, 50, TimePoint{});
  ch.step(TimePoint{});
  EXPECT_EQ(ch.stats(LinkDirection::kDownlink).packets_sent, 3u);
  EXPECT_EQ(ch.stats(LinkDirection::kUplink).packets_sent, 1u);
  EXPECT_EQ(ch.stats(LinkDirection::kDownlink).bytes_sent, 300u);
  EXPECT_EQ(ch.stats(LinkDirection::kUplink).bytes_sent, 50u);
}

TEST(Packet, EffectiveWireSizeUsesMax) {
  Packet p;
  p.payload.assign(500, 0);
  p.wire_size = 100;  // declared smaller than the actual payload
  EXPECT_EQ(p.effective_wire_size(), 500u);
  p.wire_size = 9000;
  EXPECT_EQ(p.effective_wire_size(), 9000u);
}

}  // namespace
}  // namespace rdsim::net
