#include <gtest/gtest.h>

#include "net/datagram.hpp"
#include "net/serialization.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

struct DgramFixture : public ::testing::Test {
  DgramFixture()
      : channel{tc, "lo"},
        router{channel},
        sock{router, channel, 3, LinkDirection::kUplink} {}

  TrafficControl tc;
  Channel channel;
  PacketRouter router;
  DatagramSocket sock;
};

TEST_F(DgramFixture, DeliversInSendOrderOnCleanLink) {
  for (int i = 0; i < 5; ++i) sock.send({static_cast<std::uint8_t>(i)}, 50, TimePoint{});
  router.poll(TimePoint{});
  for (int i = 0; i < 5; ++i) {
    const auto m = sock.receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->bytes[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ(m->sequence, static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(sock.receive().has_value());
}

TEST_F(DgramFixture, LossIsSilent) {
  tc.add("lo", parse_netem("loss 100%"));
  sock.send({1}, 50, TimePoint{});
  router.poll(TimePoint::from_seconds(1.0));
  EXPECT_FALSE(sock.receive().has_value());
  EXPECT_EQ(sock.sent_count(), 1u);
  EXPECT_EQ(sock.received_count(), 0u);
}

TEST_F(DgramFixture, ReceiveLatestSkipsBacklog) {
  for (int i = 0; i < 10; ++i) sock.send({static_cast<std::uint8_t>(i)}, 50, TimePoint{});
  router.poll(TimePoint{});
  const auto m = sock.receive_latest();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->bytes[0], 9);
  EXPECT_EQ(sock.stale_discarded(), 9u);
  EXPECT_FALSE(sock.receive_latest().has_value());
}

TEST_F(DgramFixture, ReceiveLatestIgnoresReorderedOldPackets) {
  // Reordering makes an old datagram arrive after a newer one; latest-wins
  // must not step backwards.
  tc.add("lo", parse_netem("delay 50ms reorder 50% gap 2"));
  for (int i = 0; i < 30; ++i) {
    sock.send({static_cast<std::uint8_t>(i)}, 50,
              TimePoint::from_micros(i * 1000));
  }
  std::uint32_t last_seq = 0;
  bool any = false;
  for (int ms = 0; ms < 120; ms += 5) {
    router.poll(TimePoint::from_micros(ms * 1000));
    if (const auto m = sock.receive_latest()) {
      if (any) {
        EXPECT_GE(m->sequence, last_seq);
      }
      last_seq = m->sequence;
      any = true;
    }
  }
  EXPECT_TRUE(any);
}

TEST_F(DgramFixture, WrongDirectionPacketsIgnored) {
  // A datagram with our stream id arriving from the *receive* direction
  // (i.e. looped back) must not be delivered as incoming data.
  ByteWriter w;
  w.u32(0);
  w.u64(0);
  w.bytes({1});
  channel.send(LinkDirection::kDownlink,
               ProtocolHeader::seal(3, SegmentType::kDatagram, w.take()), 50, TimePoint{});
  router.poll(TimePoint{});
  EXPECT_FALSE(sock.receive().has_value());
}

}  // namespace
}  // namespace rdsim::net
