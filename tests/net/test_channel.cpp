// Channel, router and checksum semantics.
#include <gtest/gtest.h>

#include "net/router.hpp"
#include "net/tbf.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

TEST(Channel, DeliversBothDirections) {
  TrafficControl tc;
  Channel ch{tc, "lo"};
  ch.send(LinkDirection::kDownlink, {1, 2, 3}, 100, TimePoint{});
  ch.send(LinkDirection::kUplink, {4, 5}, 50, TimePoint{});
  ch.step(TimePoint{});
  auto down = ch.receive(LinkDirection::kDownlink);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->payload, (Payload{1, 2, 3}));
  auto up = ch.receive(LinkDirection::kUplink);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->payload, (Payload{4, 5}));
  EXPECT_FALSE(ch.receive(LinkDirection::kDownlink).has_value());
}

TEST(Channel, SharedQdiscAffectsBothDirections) {
  // The paper's loopback setup: one netem rule disturbs video *and* commands.
  TrafficControl tc;
  Channel ch{tc, "lo"};
  tc.add("lo", parse_netem("delay 30ms"));
  ch.send(LinkDirection::kDownlink, {1}, 10, TimePoint{});
  ch.send(LinkDirection::kUplink, {2}, 10, TimePoint{});
  ch.step(TimePoint::from_micros(29000));
  EXPECT_FALSE(ch.has_pending(LinkDirection::kDownlink));
  EXPECT_FALSE(ch.has_pending(LinkDirection::kUplink));
  ch.step(TimePoint::from_micros(30000));
  EXPECT_TRUE(ch.has_pending(LinkDirection::kDownlink));
  EXPECT_TRUE(ch.has_pending(LinkDirection::kUplink));
}

TEST(Channel, TracksLatencyStats) {
  TrafficControl tc;
  Channel ch{tc, "lo"};
  tc.add("lo", parse_netem("delay 10ms"));
  ch.send(LinkDirection::kDownlink, {1}, 10, TimePoint{});
  ch.step(TimePoint::from_micros(10000));
  const auto& stats = ch.stats(LinkDirection::kDownlink);
  EXPECT_EQ(stats.packets_sent, 1u);
  EXPECT_EQ(stats.packets_delivered, 1u);
  EXPECT_NEAR(stats.mean_latency().value(), 10.0, 1e-9);
}

TEST(Channel, InFlightCountsQueuedPackets) {
  TrafficControl tc;
  Channel ch{tc, "lo"};
  tc.add("lo", parse_netem("delay 1000ms"));
  ch.send(LinkDirection::kDownlink, {1}, 10, TimePoint{});
  ch.send(LinkDirection::kDownlink, {2}, 10, TimePoint{});
  ch.step(TimePoint{});
  EXPECT_EQ(ch.in_flight(), 2u);
}

TEST(ProtocolHeader, SealAndOpenRoundTrip) {
  const Payload body{10, 20, 30};
  const Payload sealed = ProtocolHeader::seal(7, SegmentType::kAck, body);
  const auto parsed = open_packet(sealed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.stream_id, 7);
  EXPECT_EQ(parsed->header.type, SegmentType::kAck);
  EXPECT_EQ(parsed->body, body);
}

TEST(ProtocolHeader, DetectsCorruption) {
  Payload sealed = ProtocolHeader::seal(1, SegmentType::kData, {1, 2, 3, 4});
  sealed[ProtocolHeader::kSize + 1] ^= 0x10;  // flip a payload bit
  EXPECT_FALSE(open_packet(sealed).has_value());
}

TEST(ProtocolHeader, DetectsHeaderDamage) {
  Payload sealed = ProtocolHeader::seal(1, SegmentType::kData, {1, 2, 3, 4});
  sealed[3] ^= 0x01;  // flip a checksum bit
  EXPECT_FALSE(open_packet(sealed).has_value());
  EXPECT_FALSE(open_packet({1, 2}).has_value());  // truncated
}

TEST(PacketRouter, RoutesByStreamId) {
  TrafficControl tc;
  Channel ch{tc, "lo"};
  PacketRouter router{ch};
  int got_a = 0;
  int got_b = 0;
  router.register_stream(1, [&](const ProtocolHeader&, ByteReader, LinkDirection,
                                TimePoint) { ++got_a; });
  router.register_stream(2, [&](const ProtocolHeader&, ByteReader, LinkDirection,
                                TimePoint) { ++got_b; });
  ch.send(LinkDirection::kDownlink, ProtocolHeader::seal(1, SegmentType::kData, {1}), 10,
          TimePoint{});
  ch.send(LinkDirection::kUplink, ProtocolHeader::seal(2, SegmentType::kData, {2}), 10,
          TimePoint{});
  ch.send(LinkDirection::kDownlink, ProtocolHeader::seal(9, SegmentType::kData, {3}), 10,
          TimePoint{});
  router.poll(TimePoint{});
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(router.unroutable(), 1u);
}

TEST(PacketRouter, DropsCorruptedPacketsLikeTcpChecksum) {
  // A corrupt qdisc plus the router checksum turns corruption into loss —
  // the §V.C observation that corruption has no distinct user-visible effect.
  TrafficControl tc;
  Channel ch{tc, "lo"};
  PacketRouter router{ch};
  int delivered = 0;
  router.register_stream(1, [&](const ProtocolHeader&, ByteReader, LinkDirection,
                                TimePoint) { ++delivered; });
  tc.add("lo", parse_netem("corrupt 100%"));
  for (int i = 0; i < 50; ++i) {
    ch.send(LinkDirection::kDownlink,
            ProtocolHeader::seal(1, SegmentType::kData, {1, 2, 3, 4, 5}), 10, TimePoint{});
  }
  router.poll(TimePoint{});
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(router.checksum_failures(), 50u);
}

TEST(Tbf, EnforcesSustainedRate) {
  TbfConfig cfg;
  cfg.rate = units::BytesPerSecond{1000.0};
  cfg.burst_bytes = 100.0;
  TbfQdisc q{cfg};
  // 10 packets of 100 bytes = 1000 bytes; at 1000 B/s it takes ~0.9 s after
  // the initial burst.
  for (std::uint64_t i = 0; i < 10; ++i) {
    Packet p;
    p.id = i;
    p.wire_size = 100;
    q.enqueue(std::move(p), TimePoint{});
  }
  // Polling every 50 ms, packets emerge at ~1 per 100 ms (rate / size).
  std::size_t total = q.drain(TimePoint{}).size();
  EXPECT_EQ(total, 1u);  // initial burst
  for (int ms = 50; ms <= 1000; ms += 50) {
    total += q.drain(TimePoint::from_seconds(ms / 1000.0)).size();
  }
  EXPECT_GE(total, 9u);
  EXPECT_LE(q.backlog(), 1u);
}

TEST(Tbf, BurstAllowsInitialSpike) {
  TbfConfig cfg;
  cfg.rate = units::BytesPerSecond{100.0};
  cfg.burst_bytes = 1000.0;
  TbfQdisc q{cfg};
  for (std::uint64_t i = 0; i < 10; ++i) {
    Packet p;
    p.id = i;
    p.wire_size = 100;
    q.enqueue(std::move(p), TimePoint{});
  }
  EXPECT_EQ(q.drain(TimePoint{}).size(), 10u);
}

}  // namespace
}  // namespace rdsim::net
