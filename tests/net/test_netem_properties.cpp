// Parameterized property sweeps over the netem qdisc: statistical
// conformance of the configured rates across the whole operating range.
#include <gtest/gtest.h>

#include <cmath>

#include "net/tc.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

class LossRateProperty : public ::testing::TestWithParam<double> {};

TEST_P(LossRateProperty, EmpiricalRateMatchesConfigured) {
  const double p = GetParam();
  NetemConfig cfg;
  cfg.loss_probability = units::Probability{p};
  cfg.limit = 100000;
  NetemQdisc q{cfg, 1234};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.wire_size = 100;
    q.enqueue(std::move(pkt), TimePoint{});
  }
  const double observed = static_cast<double>(q.stats().dropped_loss) / n;
  // Binomial 4-sigma band.
  const double sigma = std::sqrt(p * (1.0 - p) / n);
  EXPECT_NEAR(observed, p, 4.0 * sigma + 1e-9) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(PaperRatesAndBeyond, LossRateProperty,
                         ::testing::Values(0.01, 0.02, 0.05, 0.07, 0.10, 0.25, 0.50));

class DelayProperty : public ::testing::TestWithParam<int> {};

TEST_P(DelayProperty, AllPacketsDelayedExactly) {
  const int ms = GetParam();
  NetemConfig cfg;
  cfg.delay = Duration::millis(ms);
  cfg.limit = 10000;
  NetemQdisc q{cfg, 5};
  for (int i = 0; i < 200; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.wire_size = 100;
    q.enqueue(std::move(pkt), TimePoint::from_micros(i * 500));
  }
  // The last packet was enqueued at t = 99.5 ms; everything must be out by
  // that time plus the delay, and nothing before the delay has elapsed for
  // the first packet.
  EXPECT_TRUE(q.drain(TimePoint::from_micros(ms * 1000 - 1)).empty());
  const auto all = q.drain(
      TimePoint::from_micros((ms + 100) * 1000));
  EXPECT_EQ(all.size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(PaperDelays, DelayProperty,
                         ::testing::Values(5, 25, 50, 100, 200));

class CorrelatedLossProperty : public ::testing::TestWithParam<double> {};

TEST_P(CorrelatedLossProperty, MarginalRatePreservedAtAnyCorrelation) {
  const double rho = GetParam();
  NetemConfig cfg;
  cfg.loss_probability = units::Probability{0.1};
  cfg.loss_correlation = units::Probability{rho};
  cfg.limit = 100000;
  NetemQdisc q{cfg, 99};
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.wire_size = 10;
    q.enqueue(std::move(pkt), TimePoint{});
  }
  const double observed = static_cast<double>(q.stats().dropped_loss) / n;
  // Correlated draws converge slower: widen the tolerance with rho.
  EXPECT_NEAR(observed, 0.1, 0.01 + 0.02 * rho) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Correlations, CorrelatedLossProperty,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.9));

class RateControlProperty : public ::testing::TestWithParam<double> {};

TEST_P(RateControlProperty, ThroughputMatchesConfiguredRate) {
  const double rate = GetParam();  // bytes per second
  NetemConfig cfg;
  cfg.rate = units::BytesPerSecond{rate};
  cfg.limit = 100000;
  NetemQdisc q{cfg, 3};
  const int n = 500;
  const std::uint32_t size = 1000;
  for (int i = 0; i < n; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.wire_size = size;
    q.enqueue(std::move(pkt), TimePoint{});
  }
  // Time for all n packets: n * size / rate.
  const double total_s = n * static_cast<double>(size) / rate;
  const auto almost = q.drain(TimePoint::from_seconds(total_s * 0.95));
  EXPECT_LT(almost.size(), static_cast<std::size_t>(n));
  const auto rest = q.drain(TimePoint::from_seconds(total_s * 1.001));
  EXPECT_EQ(almost.size() + rest.size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Rates, RateControlProperty,
                         ::testing::Values(1e4, 1e5, 1e6, 1e7));

class GeModelProperty
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GeModelProperty, StationaryLossMatchesTheory) {
  const auto [p, r] = GetParam();
  NetemConfig cfg;
  GilbertElliott ge;
  ge.p = units::Probability{p};
  ge.r = units::Probability{r};
  ge.h = units::Probability{0.0};
  ge.k = units::Probability{1.0};
  cfg.gemodel = ge;
  cfg.limit = 200000;
  NetemQdisc q{cfg, 321};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.wire_size = 10;
    q.enqueue(std::move(pkt), TimePoint{});
  }
  const double expected = p / (p + r);
  const double observed = static_cast<double>(q.stats().dropped_loss) / n;
  EXPECT_NEAR(observed, expected, 0.25 * expected + 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, GeModelProperty,
    ::testing::Values(std::make_pair(0.01, 0.3), std::make_pair(0.05, 0.2),
                      std::make_pair(0.002, 0.05)));

// ----- ordering: zero jitter must preserve FIFO order -----

class ZeroJitterOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZeroJitterOrderProperty, DelayedPacketsNeverReorder) {
  // With a fixed delay and no jitter every packet keeps its enqueue order:
  // netem's tfifo has nothing to resort. Drain in many small time slices so
  // an ordering bug inside any single release batch would also surface.
  const int ms = GetParam();
  NetemConfig cfg;
  cfg.delay = Duration::millis(ms);
  cfg.jitter = Duration{};
  cfg.limit = 100000;
  NetemQdisc q{cfg, 77};
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.wire_size = 100;
    q.enqueue(std::move(pkt), TimePoint::from_micros(i * 37));
  }
  std::uint64_t next_expected = 0;
  const std::int64_t horizon_us = (ms + 200) * 1000;
  for (std::int64_t t = 0; t <= horizon_us; t += 500) {
    for (const Packet& out : q.drain(TimePoint::from_micros(t))) {
      ASSERT_EQ(out.id, next_expected) << "reordered at t=" << t << "us";
      ++next_expected;
    }
  }
  EXPECT_EQ(next_expected, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(PaperDelays, ZeroJitterOrderProperty,
                         ::testing::Values(5, 25, 50));

// ----- the paper's loss grades: empirical convergence across seeds -----

class PaperLossConvergence
    : public ::testing::TestWithParam<std::pair<double, std::uint64_t>> {};

TEST_P(PaperLossConvergence, EmpiricalRateWithinBandForEverySeed) {
  // Table II injects exactly 2 % and 5 % loss; the emulation must converge
  // to the configured rate for any RNG seed, not just a lucky one.
  const auto [p, seed] = GetParam();
  NetemConfig cfg;
  cfg.loss_probability = units::Probability{p};
  cfg.limit = 200000;
  NetemQdisc q{cfg, seed};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Packet pkt;
    pkt.id = static_cast<std::uint64_t>(i);
    pkt.wire_size = 100;
    q.enqueue(std::move(pkt), TimePoint::from_micros(i * 10));
  }
  const double observed = static_cast<double>(q.stats().dropped_loss) / n;
  const double sigma = std::sqrt(p * (1.0 - p) / n);
  EXPECT_NEAR(observed, p, 4.0 * sigma) << "p=" << p << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    TwoAndFivePercent, PaperLossConvergence,
    ::testing::Values(std::make_pair(0.02, 11ULL), std::make_pair(0.02, 222ULL),
                      std::make_pair(0.02, 3333ULL), std::make_pair(0.05, 11ULL),
                      std::make_pair(0.05, 222ULL), std::make_pair(0.05, 3333ULL)));

// ----- Gilbert–Elliott state occupancy -----

TEST(GeModelOccupancy, MatchesStationaryDistributionWithPartialLossRates) {
  // With per-state loss probabilities h (good) and k (bad), the observed
  // rate is h*pi_good + k*pi_bad for the chain's stationary distribution
  // pi = (r, p)/(p+r). Unlike the h=0,k=1 regime tests, this confirms the
  // *state occupancy* itself: matching the mixed rate for distinct (h, k)
  // pairs over the same chain requires the chain to spend the right
  // fraction of time in each state.
  const double p = 0.02;  // good -> bad
  const double r = 0.10;  // bad -> good
  const double pi_bad = p / (p + r);
  const double pi_good = 1.0 - pi_bad;
  const struct { double h, k; } regimes[] = {{0.05, 0.80}, {0.10, 0.60}, {0.0, 1.0}};
  for (const auto& regime : regimes) {
    NetemConfig cfg;
    GilbertElliott ge;
    ge.p = units::Probability{p};
    ge.r = units::Probability{r};
    ge.h = units::Probability{regime.h};
    ge.k = units::Probability{regime.k};
    cfg.gemodel = ge;
    cfg.limit = 300000;
    NetemQdisc q{cfg, 4242};
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      Packet pkt;
      pkt.id = static_cast<std::uint64_t>(i);
      pkt.wire_size = 10;
      q.enqueue(std::move(pkt), TimePoint{});
    }
    const double expected = regime.h * pi_good + regime.k * pi_bad;
    const double observed = static_cast<double>(q.stats().dropped_loss) / n;
    // The chain mixes slowly (mean sojourns 1/p and 1/r packets); allow a
    // generous but still discriminating band around the stationary value.
    EXPECT_NEAR(observed, expected, 0.15 * expected + 0.004)
        << "h=" << regime.h << " k=" << regime.k;
  }
}

}  // namespace
}  // namespace rdsim::net
