// Zero-allocation packet path: pool semantics, heap tie-break, move-vs-copy
// byte identity, idle-tick allocation gate, and the unified qdisc
// introspection surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/hash.hpp"
#include "net/reliable_stream.hpp"
#include "util/alloc_hook.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------- PayloadPool

TEST(PayloadPool, ReusesReleasedBuffers) {
  PayloadPool pool;
  Payload a = pool.acquire(100);
  a.assign(100, 0xab);
  const std::uint8_t* const data = a.data();
  pool.release(std::move(a));
  EXPECT_EQ(pool.cached(), 1u);

  Payload b = pool.acquire(200);  // same 256-byte class as the released buffer
  EXPECT_EQ(b.data(), data);      // LIFO freelist handed the same buffer back
  EXPECT_TRUE(b.empty());         // ...cleared
  EXPECT_GE(b.capacity(), 200u);
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().fresh, 1u);
}

TEST(PayloadPool, AcquireReservesBucketCapacity) {
  PayloadPool pool;
  Payload p = pool.acquire(1000);
  EXPECT_GE(p.capacity(), 1024u);  // rounded up to the size class
  EXPECT_TRUE(p.empty());
}

TEST(PayloadPool, OversizedRequestsBypassTheBuckets) {
  PayloadPool pool;
  Payload big = pool.acquire(2u << 20);  // 2 MiB > largest class
  EXPECT_GE(big.capacity(), 2u << 20);
  pool.release(std::move(big));
  // An over-large buffer lands in the largest class it can serve (1 MiB),
  // so it is still recycled rather than freed.
  EXPECT_EQ(pool.stats().recycled, 1u);

  Payload tiny;  // capacity 0: below every class, discarded on release
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.stats().discarded, 1u);
}

TEST(PayloadPool, PerBucketCapIsEnforced) {
  // Release four distinct buffers into one size class; only two may be kept.
  PayloadPool capped{2};
  std::vector<Payload> buffers;
  for (int i = 0; i < 4; ++i) buffers.push_back(capped.acquire(64));
  for (auto& b : buffers) capped.release(std::move(b));
  EXPECT_EQ(capped.cached(), 2u);
  EXPECT_EQ(capped.stats().recycled, 2u);
  EXPECT_EQ(capped.stats().discarded, 2u);
}

// -------------------------------------------------------------------- Packet

TEST(Packet, EffectiveWireSizeTakesTheLargerOfWireAndPayload) {
  Packet p;
  p.payload = {1, 2, 3};
  p.wire_size = 0;
  EXPECT_EQ(p.effective_wire_size(), 3u);  // payload dominates
  p.wire_size = 1500;
  EXPECT_EQ(p.effective_wire_size(), 1500u);  // declared size dominates
  p.payload.clear();
  EXPECT_EQ(p.effective_wire_size(), 1500u);
  p.wire_size = 0;
  EXPECT_EQ(p.effective_wire_size(), 0u);  // both empty
}

TEST(Packet, CloneCopiesEveryField) {
  Packet p;
  p.id = 7;
  p.flow = 1;
  p.payload = {9, 8, 7};
  p.wire_size = 44;
  p.enqueued_at = TimePoint::from_micros(123);
  const Packet c = p.clone();
  EXPECT_EQ(c.id, 7u);
  EXPECT_EQ(c.flow, 1u);
  EXPECT_EQ(c.payload, p.payload);
  EXPECT_NE(c.payload.data(), p.payload.data());  // deep copy
  EXPECT_EQ(c.wire_size, 44u);
  EXPECT_EQ(c.enqueued_at.count_micros(), 123);
}

// -------------------------------------------- netem heap order / tfifo pin

/// With a fixed delay and no jitter, every packet enqueued at the same tick
/// has an identical release time: the binary heap must break the tie by
/// insertion sequence, reproducing tfifo (and the old sorted-vector) order.
TEST(NetemHeap, EqualReleaseTimesPreserveInsertionOrder) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(10);
  NetemQdisc q{cfg, 1};
  for (std::uint64_t i = 0; i < 100; ++i) {
    Packet p;
    p.id = i;
    q.enqueue(std::move(p), TimePoint{});
  }
  const auto out = q.drain(TimePoint::from_micros(10000));
  ASSERT_EQ(out.size(), 100u);
  for (std::uint64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].id, i);
}

/// Mixed release times: the released order must equal a stable sort of the
/// enqueue order by release time — exactly what the old sorted vector
/// produced. Staggered enqueues with decreasing delays create inversions.
TEST(NetemHeap, MatchesStableSortByReleaseTime) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(50);
  NetemQdisc q{cfg, 1};

  struct Expected {
    std::int64_t release_us;
    std::uint64_t id;
  };
  std::vector<Expected> expected;
  std::uint64_t id = 0;
  // Two config changes mid-stream give three delay regimes, so later
  // packets overtake earlier ones (tc change keeps queued packets).
  for (const std::int64_t delay_ms : {50, 10, 30}) {
    NetemConfig c;
    c.delay = Duration::millis(delay_ms);
    q.change(c);
    for (int i = 0; i < 10; ++i) {
      const std::int64_t t_us = static_cast<std::int64_t>(id) * 1000;
      Packet p;
      p.id = id;
      q.enqueue(std::move(p), TimePoint::from_micros(t_us));
      expected.push_back({t_us + delay_ms * 1000, id});
      ++id;
    }
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.release_us < b.release_us;
                   });
  const auto out = q.drain(TimePoint::from_micros(1000000));
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, expected[i].id) << "position " << i;
  }
}

TEST(NetemHeap, DuplicateIsReleasedBeforeTheOriginal) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(5);
  cfg.duplicate_probability = units::Probability{1.0};
  NetemQdisc q{cfg, 3};
  Packet p;
  p.id = 1;
  p.payload = {42};
  q.enqueue(std::move(p), TimePoint{});
  const auto out = q.drain(TimePoint::from_micros(5000));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].duplicate);   // clone was scheduled first
  EXPECT_FALSE(out[1].duplicate);
  EXPECT_EQ(out[0].payload, out[1].payload);
}

// ------------------------------------------------- move vs copy byte identity

std::uint64_t delivered_digest(std::uint64_t seed, const std::string& rule,
                               bool use_move_path) {
  TrafficControl tc{seed};
  Channel ch{tc, "lo"};
  tc.execute("qdisc add dev lo root " + rule);
  check::Fnv1a h;
  std::uint32_t fill = 0x12345u;
  for (std::int64_t tick = 0; tick < 500; ++tick) {
    const TimePoint now = TimePoint::from_micros(tick * 1000);
    Payload bytes(64 + static_cast<std::size_t>(tick % 700));
    for (auto& b : bytes) {
      fill = fill * 1664525u + 1013904223u;
      b = static_cast<std::uint8_t>(fill >> 24);
    }
    const LinkDirection dir =
        tick % 3 == 0 ? LinkDirection::kUplink : LinkDirection::kDownlink;
    if (use_move_path) {
      Packet p;
      p.payload = ch.acquire_payload(bytes.size());
      p.payload.assign(bytes.begin(), bytes.end());
      p.wire_size = static_cast<std::uint32_t>(bytes.size()) + 40;
      ch.send(dir, std::move(p), now);
    } else {
      ch.send(dir, bytes, static_cast<std::uint32_t>(bytes.size()) + 40, now);
    }
    ch.step(now);
    for (const LinkDirection d : {LinkDirection::kDownlink, LinkDirection::kUplink}) {
      while (auto got = ch.receive(d)) {
        h.u64(got->id);
        h.u32(got->flow);
        h.u64(got->payload.size());
        h.update(got->payload.data(), got->payload.size());
        if (use_move_path) ch.recycle(std::move(got->payload));
      }
    }
  }
  return h.digest();
}

TEST(PacketPath, MovedAndCopiedSendsDeliverIdenticalBytes) {
  for (const std::uint64_t seed : {11ull, 222ull, 3333ull}) {
    for (const std::string& rule :
         {std::string{"netem delay 20ms 5ms loss 2%"},
          std::string{"netem delay 20ms 5ms loss 5% reorder 10%"}}) {
      const std::uint64_t moved = delivered_digest(seed, rule, true);
      const std::uint64_t copied = delivered_digest(seed, rule, false);
      EXPECT_EQ(moved, copied) << "seed " << seed << " rule " << rule;
    }
  }
}

// ------------------------------------------------------ idle-tick allocation

TEST(PacketPath, IdleTicksDoNotAllocate) {
  TrafficControl tc{5};
  Channel ch{tc, "lo"};
  PacketRouter router{ch};
  ReliableStream stream{router, ch, 1, LinkDirection::kDownlink};
  // Prime: move one message through so every lazy structure exists, then
  // drain to quiescence.
  stream.send_message(Payload(512, 7), 512, TimePoint{});
  for (std::int64_t t = 0; t <= 500000; t += 5000) {
    router.poll(TimePoint::from_micros(t));
    stream.step(TimePoint::from_micros(t));
    while (stream.pop_delivered()) {
    }
  }
  ASSERT_EQ(stream.unacked_segments(), 0u);

  util::AllocCounter allocs;
  for (std::int64_t t = 500000; t <= 5500000; t += 5000) {
    router.poll(TimePoint::from_micros(t));
    stream.step(TimePoint::from_micros(t));
  }
  EXPECT_EQ(allocs.delta(), 0u) << "idle packet path must not touch the heap";
}

TEST(PacketPath, WarmStreamTickReusesPooledPayloads) {
  TrafficControl tc{5};
  Channel ch{tc, "lo"};
  PacketRouter router{ch};
  ReliableStream stream{router, ch, 1, LinkDirection::kDownlink};
  const Payload msg(2000, 9);
  std::int64_t t = 0;
  auto tick = [&](int n) {
    for (int i = 0; i < n; ++i) {
      t += 5000;
      const TimePoint now = TimePoint::from_micros(t);
      stream.send_message(msg, 2000, now);
      router.poll(now);
      stream.step(now);
      while (stream.pop_delivered()) {
      }
    }
  };
  tick(200);  // warm pools, maps and deques
  const auto before = ch.pool().stats();
  tick(200);
  const auto after = ch.pool().stats();
  // Steady state: every wire packet (DATA + ACK per tick) is served from the
  // freelist; no fresh payload allocations once warm.
  EXPECT_EQ(after.fresh, before.fresh);
  EXPECT_GT(after.reused, before.reused);
}

// ------------------------------------------------------ introspection surface

TEST(QdiscIntrospection, SummaryAndBacklogBytesAreConsistent) {
  FifoQdisc fifo;
  NetemConfig ncfg;
  ncfg.delay = Duration::millis(10);
  NetemQdisc netem{ncfg, 1};
  TbfQdisc tbf{TbfConfig{}};
  Qdisc* const qdiscs[] = {&fifo, &netem, &tbf};
  for (Qdisc* q : qdiscs) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      Packet p;
      p.id = i;
      p.payload = {1, 2, 3, 4};
      p.wire_size = 100;
      q->enqueue(std::move(p), TimePoint{});
    }
    EXPECT_EQ(q->backlog(), 3u) << q->kind();
    EXPECT_EQ(q->backlog_bytes(), 300u) << q->kind();
    EXPECT_TRUE(q->next_event_at().has_value()) << q->kind();
    const std::string s = q->summary();
    EXPECT_NE(s.find("qdisc " + q->kind()), std::string::npos) << s;
    EXPECT_NE(s.find("backlog 300b 3p"), std::string::npos) << s;
    q->clear();
    EXPECT_EQ(q->backlog(), 0u) << q->kind();
    EXPECT_EQ(q->backlog_bytes(), 0u) << q->kind();
    EXPECT_FALSE(q->next_event_at().has_value()) << q->kind();
  }
}

TEST(QdiscIntrospection, FifoNextEventIsTheHeadEnqueueTime) {
  FifoQdisc q;
  EXPECT_FALSE(q.next_event_at().has_value());
  Packet p;
  q.enqueue(std::move(p), TimePoint::from_micros(777));
  ASSERT_TRUE(q.next_event_at().has_value());
  EXPECT_EQ(q.next_event_at()->count_micros(), 777);
}

TEST(ChannelNextEvent, TracksTheRootQdisc) {
  TrafficControl tc;
  Channel ch{tc, "lo"};
  tc.add("lo", parse_netem("delay 30ms"));
  EXPECT_FALSE(ch.next_event_at().has_value());
  ch.send(LinkDirection::kDownlink, {1}, 10, TimePoint{});
  ASSERT_TRUE(ch.next_event_at().has_value());
  EXPECT_EQ(ch.next_event_at()->count_micros(), 30000);
  ASSERT_TRUE(tc.next_event_at("lo").has_value());
  EXPECT_EQ(tc.next_event_at("lo")->count_micros(), 30000);
  ch.step(TimePoint::from_micros(30000));
  EXPECT_FALSE(ch.next_event_at().has_value());
}

}  // namespace
}  // namespace rdsim::net
