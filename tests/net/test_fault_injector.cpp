#include <gtest/gtest.h>

#include "net/fault_injector.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

TEST(FaultSpec, RendersNetemArgs) {
  EXPECT_EQ((FaultSpec{FaultKind::kDelay, 50.0}).to_netem_args(), "delay 50ms");
  EXPECT_EQ((FaultSpec{FaultKind::kPacketLoss, 0.05}).to_netem_args(), "loss 5%");
  EXPECT_EQ((FaultSpec{FaultKind::kCorruption, 0.01}).to_netem_args(), "corrupt 1%");
  EXPECT_EQ((FaultSpec{FaultKind::kDuplication, 0.02}).to_netem_args(), "duplicate 2%");
}

TEST(FaultSpec, LabelsMatchPaperTables) {
  EXPECT_EQ((FaultSpec{FaultKind::kDelay, 5.0}).label(), "5ms");
  EXPECT_EQ((FaultSpec{FaultKind::kDelay, 25.0}).label(), "25ms");
  EXPECT_EQ((FaultSpec{FaultKind::kPacketLoss, 0.02}).label(), "2%");
  EXPECT_EQ((FaultSpec{FaultKind::kPacketLoss, 0.05}).label(), "5%");
}

TEST(FaultSpec, ConfigRoundTrip) {
  const auto cfg = FaultSpec{FaultKind::kDelay, 25.0}.to_config();
  EXPECT_EQ(cfg.delay, Duration::millis(25));
  const auto loss = FaultSpec{FaultKind::kPacketLoss, 0.02}.to_config();
  EXPECT_DOUBLE_EQ(loss.loss_probability.value(), 0.02);
}

TEST(PaperFaultModel, HasTheFivePaperFaults) {
  const auto model = paper_fault_model();
  ASSERT_EQ(model.size(), 5u);
  EXPECT_EQ(model[0].label(), "5ms");
  EXPECT_EQ(model[1].label(), "25ms");
  EXPECT_EQ(model[2].label(), "50ms");
  EXPECT_EQ(model[3].label(), "2%");
  EXPECT_EQ(model[4].label(), "5%");
}

TEST(FaultInjector, InjectAndRemoveLogsEvents) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  EXPECT_FALSE(inj.active());
  inj.inject({FaultKind::kDelay, 50.0}, TimePoint::from_seconds(1.0));
  EXPECT_TRUE(inj.active());
  EXPECT_TRUE(tc.has_netem("lo"));
  inj.remove(TimePoint::from_seconds(2.0));
  EXPECT_FALSE(inj.active());
  EXPECT_FALSE(tc.has_netem("lo"));

  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_TRUE(inj.log()[0].added);
  EXPECT_DOUBLE_EQ(inj.log()[0].timestamp.to_seconds(), 1.0);
  EXPECT_FALSE(inj.log()[1].added);
  EXPECT_EQ(inj.injections(), 1u);
}

TEST(FaultInjector, InjectReplacesActiveFault) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.inject({FaultKind::kDelay, 5.0}, TimePoint{});
  inj.inject({FaultKind::kPacketLoss, 0.05}, TimePoint::from_seconds(1.0));
  EXPECT_EQ(inj.active_fault()->kind, FaultKind::kPacketLoss);
  EXPECT_DOUBLE_EQ(tc.netem_config("lo")->loss_probability.value(), 0.05);
  EXPECT_EQ(inj.injections(), 2u);
  // Log shows: add(5ms), delete(5ms), add(5%).
  ASSERT_EQ(inj.log().size(), 3u);
  EXPECT_FALSE(inj.log()[1].added);
  EXPECT_EQ(inj.log()[1].fault.kind, FaultKind::kDelay);
}

TEST(FaultInjector, RemoveWithoutActiveIsNoOp) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.remove(TimePoint{});
  EXPECT_TRUE(inj.log().empty());
}

TEST(FaultInjector, ScheduledWindowAppliesAndExpires) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.schedule({FaultKind::kDelay, 25.0}, TimePoint::from_seconds(1.0),
               TimePoint::from_seconds(2.0));
  inj.step(TimePoint::from_seconds(0.5));
  EXPECT_FALSE(inj.active());
  inj.step(TimePoint::from_seconds(1.0));
  EXPECT_TRUE(inj.active());
  inj.step(TimePoint::from_seconds(1.5));
  EXPECT_TRUE(inj.active());
  inj.step(TimePoint::from_seconds(2.0));
  EXPECT_FALSE(inj.active());
  EXPECT_EQ(inj.log().size(), 2u);
}

TEST(FaultInjector, MultipleWindowsInSequence) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.schedule({FaultKind::kDelay, 5.0}, TimePoint::from_seconds(1.0),
               TimePoint::from_seconds(2.0));
  inj.schedule({FaultKind::kPacketLoss, 0.02}, TimePoint::from_seconds(3.0),
               TimePoint::from_seconds(4.0));
  for (double t = 0.0; t <= 5.0; t += 0.25) inj.step(TimePoint::from_seconds(t));
  EXPECT_EQ(inj.injections(), 2u);
  EXPECT_FALSE(inj.active());
  ASSERT_EQ(inj.log().size(), 4u);
  EXPECT_EQ(inj.log()[2].fault.kind, FaultKind::kPacketLoss);
}

// ---- scheduled-window edge cases --------------------------------------
// The window predicate is [start, stop): these tests pin the boundary
// semantics the campaign relies on — a tick landing exactly on `stop` ends
// the fault, a zero-duration window can never start, and overlapping
// windows follow change semantics without the earlier window's expiry
// tearing down the later fault.

TEST(FaultInjectorWindows, ZeroDurationWindowNeverStarts) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.schedule({FaultKind::kDelay, 25.0}, TimePoint::from_seconds(1.0),
               TimePoint::from_seconds(1.0));
  // Even a tick landing exactly on the degenerate instant must not inject:
  // now >= start but now < stop is already false.
  for (double t : {0.5, 1.0, 1.5}) {
    inj.step(TimePoint::from_seconds(t));
    EXPECT_FALSE(inj.active()) << "t=" << t;
  }
  EXPECT_EQ(inj.injections(), 0u);
  EXPECT_TRUE(inj.log().empty());
}

TEST(FaultInjectorWindows, WindowEndingExactlyOnTickBoundaryRemoves) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  // stop = 2.0 is an exact multiple of the 0.25 s stepping below: the fault
  // must be gone *at* the boundary tick, not one tick later.
  inj.schedule({FaultKind::kDelay, 25.0}, TimePoint::from_seconds(1.0),
               TimePoint::from_seconds(2.0));
  for (double t = 0.0; t < 2.0; t += 0.25) {
    inj.step(TimePoint::from_seconds(t));
    EXPECT_EQ(inj.active(), t >= 1.0) << "t=" << t;
  }
  inj.step(TimePoint::from_seconds(2.0));
  EXPECT_FALSE(inj.active());
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_DOUBLE_EQ(inj.log()[1].timestamp.to_seconds(), 2.0);
}

TEST(FaultInjectorWindows, StartEqualToTickBoundaryStarts) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.schedule({FaultKind::kDelay, 5.0}, TimePoint::from_seconds(1.0),
               TimePoint::from_seconds(3.0));
  inj.step(TimePoint::from_seconds(1.0));  // now == start is inside [start, stop)
  EXPECT_TRUE(inj.active());
}

TEST(FaultInjectorWindows, OverlappingWindowsFollowChangeSemantics) {
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.schedule({FaultKind::kDelay, 25.0}, TimePoint::from_seconds(1.0),
               TimePoint::from_seconds(3.0));
  inj.schedule({FaultKind::kPacketLoss, 0.05}, TimePoint::from_seconds(2.0),
               TimePoint::from_seconds(4.0));

  inj.step(TimePoint::from_seconds(1.0));
  ASSERT_TRUE(inj.active());
  EXPECT_EQ(inj.active_fault()->kind, FaultKind::kDelay);

  // Second window opens while the first is live: the later fault replaces
  // the earlier one on the device (tc change, not add).
  inj.step(TimePoint::from_seconds(2.0));
  ASSERT_TRUE(inj.active());
  EXPECT_EQ(inj.active_fault()->kind, FaultKind::kPacketLoss);
  EXPECT_DOUBLE_EQ(tc.netem_config("lo")->loss_probability.value(), 0.05);

  // First window expires at 3.0 — but its fault is no longer the active
  // one, so the expiry must NOT tear down the loss fault.
  inj.step(TimePoint::from_seconds(3.0));
  ASSERT_TRUE(inj.active());
  EXPECT_EQ(inj.active_fault()->kind, FaultKind::kPacketLoss);

  inj.step(TimePoint::from_seconds(4.0));
  EXPECT_FALSE(inj.active());
  EXPECT_EQ(inj.injections(), 2u);
}

TEST(FaultInjectorWindows, IdenticalOverlappingFaultsExpireWithTheFirstStop) {
  // Pathological but allowed: two overlapping windows carrying the *same*
  // fault. The first expiry removes the rule (the specs compare equal);
  // the still-open second window does not resurrect it — schedule() windows
  // inject on their start tick only. This pins the current semantics so a
  // refactor cannot silently change them.
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  const FaultSpec spec{FaultKind::kDelay, 25.0};
  inj.schedule(spec, TimePoint::from_seconds(1.0), TimePoint::from_seconds(3.0));
  inj.schedule(spec, TimePoint::from_seconds(2.0), TimePoint::from_seconds(5.0));
  inj.step(TimePoint::from_seconds(1.0));
  inj.step(TimePoint::from_seconds(2.0));  // second window starts: change to same
  EXPECT_EQ(inj.injections(), 2u);
  inj.step(TimePoint::from_seconds(3.0));
  EXPECT_FALSE(inj.active());  // first stop removes the (equal) active fault
  inj.step(TimePoint::from_seconds(4.0));
  EXPECT_FALSE(inj.active());  // the open second window does not re-inject
  inj.step(TimePoint::from_seconds(5.0));
  EXPECT_FALSE(inj.active());
  EXPECT_FALSE(tc.has_netem("lo"));
}

TEST(FaultInjectorWindows, StepPastWholeWindowInOneTickStillInjects) {
  // A coarse stepper can jump from before the window to inside it; the
  // injector must catch up on the first tick at-or-after start.
  TrafficControl tc;
  FaultInjector inj{tc, "lo"};
  inj.schedule({FaultKind::kDelay, 5.0}, TimePoint::from_seconds(1.0),
               TimePoint::from_seconds(1.2));
  inj.step(TimePoint::from_seconds(0.0));
  inj.step(TimePoint::from_seconds(1.1));  // lands inside the window
  EXPECT_TRUE(inj.active());
  inj.step(TimePoint::from_seconds(1.2));
  EXPECT_FALSE(inj.active());
}

}  // namespace
}  // namespace rdsim::net
