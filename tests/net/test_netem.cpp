// Semantics of the NETEM queueing-discipline reimplementation.
#include <gtest/gtest.h>

#include "check/contracts.hpp"
#include "net/netem.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

Packet make_packet(std::uint64_t id, std::uint32_t bytes = 100) {
  Packet p;
  p.id = id;
  p.payload.assign(bytes, static_cast<std::uint8_t>(id & 0xff));
  p.wire_size = bytes;
  return p;
}

TEST(FifoQdisc, PassesThroughImmediately) {
  FifoQdisc q{10};
  q.enqueue(make_packet(1), TimePoint{});
  auto out = q.drain(TimePoint{});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(q.stats().dequeued, 1u);
}

TEST(FifoQdisc, TailDropsOverLimit) {
  FifoQdisc q{2};
  for (int i = 0; i < 5; ++i) q.enqueue(make_packet(static_cast<std::uint64_t>(i)), TimePoint{});
  EXPECT_EQ(q.stats().dropped_overlimit, 3u);
  EXPECT_EQ(q.drain(TimePoint{}).size(), 2u);
}

TEST(Netem, FixedDelayHoldsPacket) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(50);
  NetemQdisc q{cfg};
  q.enqueue(make_packet(1), TimePoint{});
  EXPECT_TRUE(q.drain(TimePoint::from_micros(49999)).empty());
  auto out = q.drain(TimePoint::from_micros(50000));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(q.backlog(), 0u);
}

TEST(Netem, NextEventReportsRelease) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(5);
  NetemQdisc q{cfg};
  EXPECT_FALSE(q.next_event_at().has_value());
  q.enqueue(make_packet(1), TimePoint::from_micros(1000));
  ASSERT_TRUE(q.next_event_at().has_value());
  EXPECT_EQ(q.next_event_at()->count_micros(), 6000);
}

TEST(Netem, PreservesFifoOrderForEqualDelay) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(10);
  NetemQdisc q{cfg};
  for (std::uint64_t i = 0; i < 20; ++i) q.enqueue(make_packet(i), TimePoint{});
  const auto out = q.drain(TimePoint::from_micros(10000));
  ASSERT_EQ(out.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(out[i].id, i);
}

TEST(Netem, JitterStaysWithinBounds) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(20);
  cfg.jitter = Duration::millis(5);
  NetemQdisc q{cfg, /*seed=*/3};
  for (std::uint64_t i = 0; i < 500; ++i) q.enqueue(make_packet(i), TimePoint{});
  // Nothing before 15 ms, everything by 25 ms.
  EXPECT_TRUE(q.drain(TimePoint::from_micros(14999)).empty());
  const auto out = q.drain(TimePoint::from_micros(25000));
  EXPECT_EQ(out.size(), 500u);
}

TEST(Netem, LossRateApproximatesConfiguration) {
  NetemConfig cfg;
  cfg.loss_probability = units::Probability{0.2};
  NetemQdisc q{cfg, 7};
  const int n = 20000;
  for (int i = 0; i < n; ++i) q.enqueue(make_packet(static_cast<std::uint64_t>(i)), TimePoint{});
  const double loss_rate = static_cast<double>(q.stats().dropped_loss) / n;
  EXPECT_NEAR(loss_rate, 0.2, 0.015);
  EXPECT_EQ(q.stats().enqueued, static_cast<std::uint64_t>(n));
}

TEST(Netem, ZeroLossDropsNothing) {
  NetemConfig cfg;
  NetemQdisc q{cfg, 7};
  for (int i = 0; i < 1000; ++i) q.enqueue(make_packet(static_cast<std::uint64_t>(i)), TimePoint{});
  EXPECT_EQ(q.stats().dropped_loss, 0u);
  EXPECT_EQ(q.drain(TimePoint{}).size(), 1000u);
}

TEST(Netem, CorrelatedLossClustersBursts) {
  NetemConfig cfg;
  cfg.loss_probability = units::Probability{0.2};
  cfg.loss_correlation = units::Probability{0.9};
  NetemQdisc q{cfg, 11};
  int transitions = 0;
  bool prev_dropped = false;
  std::uint64_t prev_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    q.enqueue(make_packet(static_cast<std::uint64_t>(i)), TimePoint{});
    const bool dropped = q.stats().dropped_loss > prev_count;
    prev_count = q.stats().dropped_loss;
    if (i > 0 && dropped != prev_dropped) ++transitions;
    prev_dropped = dropped;
  }
  // Independent losses at p=0.2 would transition ~2*0.2*0.8*n = 6400 times;
  // strong correlation should produce far fewer, longer bursts, while the
  // marginal rate stays at p.
  EXPECT_LT(transitions, 3000);
  EXPECT_NEAR(static_cast<double>(q.stats().dropped_loss) / n, 0.2, 0.03);
}

TEST(Netem, GilbertElliottProducesBurstyLoss) {
  NetemConfig cfg;
  GilbertElliott ge;
  ge.p = units::Probability{0.02};  // rarely enter the bad state
  ge.r = units::Probability{0.2};  // stay there for ~5 packets
  ge.h = units::Probability{0.0};  // lossless when good
  ge.k = units::Probability{1.0};  // everything lost when bad
  cfg.gemodel = ge;
  NetemQdisc q{cfg, 5};
  const int n = 50000;
  for (int i = 0; i < n; ++i) q.enqueue(make_packet(static_cast<std::uint64_t>(i)), TimePoint{});
  // Stationary loss rate = p / (p + r) ~= 0.0909.
  const double rate = static_cast<double>(q.stats().dropped_loss) / n;
  EXPECT_NEAR(rate, 0.02 / 0.22, 0.02);
}

TEST(Netem, DuplicationCreatesCopies) {
  NetemConfig cfg;
  cfg.duplicate_probability = units::Probability{0.5};
  cfg.limit = 10000;
  NetemQdisc q{cfg, 13};
  const int n = 2000;
  for (int i = 0; i < n; ++i) q.enqueue(make_packet(static_cast<std::uint64_t>(i)), TimePoint{});
  const auto out = q.drain(TimePoint{});
  EXPECT_NEAR(static_cast<double>(out.size()), n * 1.5, n * 0.06);
  EXPECT_GT(q.stats().duplicated, 0u);
  std::size_t dup_flagged = 0;
  for (const auto& p : out) {
    if (p.duplicate) ++dup_flagged;
  }
  EXPECT_EQ(dup_flagged, q.stats().duplicated);
}

TEST(Netem, CorruptionFlipsExactlyOneBit) {
  NetemConfig cfg;
  cfg.corrupt_probability = units::Probability{1.0};
  NetemQdisc q{cfg, 17};
  Packet p = make_packet(1, 64);
  const Payload original = p.payload;
  q.enqueue(std::move(p), TimePoint{});
  auto out = q.drain(TimePoint{});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].corrupted);
  int bit_diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t x = static_cast<std::uint8_t>(original[i] ^ out[0].payload[i]);
    while (x != 0) {
      bit_diffs += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(bit_diffs, 1);
}

TEST(Netem, ReorderSendsSelectedPacketsImmediately) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(100);
  cfg.reorder_probability = units::Probability{1.0};
  cfg.reorder_gap = 5;  // every 5th packet jumps the queue
  NetemQdisc q{cfg, 19};
  for (std::uint64_t i = 1; i <= 10; ++i) q.enqueue(make_packet(i), TimePoint{});
  const auto early = q.drain(TimePoint{});
  ASSERT_EQ(early.size(), 2u);  // packets 5 and 10
  EXPECT_EQ(early[0].id, 5u);
  EXPECT_EQ(early[1].id, 10u);
  const auto late = q.drain(TimePoint::from_micros(100000));
  EXPECT_EQ(late.size(), 8u);
}

TEST(Netem, RateControlSpacesPackets) {
  NetemConfig cfg;
  cfg.rate = units::BytesPerSecond{1000.0};  // 1 KB/s; 100-byte packet = 100 ms each
  NetemQdisc q{cfg, 23};
  for (std::uint64_t i = 0; i < 3; ++i) q.enqueue(make_packet(i, 100), TimePoint{});
  EXPECT_EQ(q.drain(TimePoint::from_micros(99000)).size(), 0u);
  EXPECT_EQ(q.drain(TimePoint::from_micros(100000)).size(), 1u);
  EXPECT_EQ(q.drain(TimePoint::from_micros(200000)).size(), 1u);
  EXPECT_EQ(q.drain(TimePoint::from_micros(300000)).size(), 1u);
}

TEST(Netem, LimitDropsWhenFull) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(1000);
  cfg.limit = 10;
  NetemQdisc q{cfg, 29};
  for (std::uint64_t i = 0; i < 20; ++i) q.enqueue(make_packet(i), TimePoint{});
  EXPECT_EQ(q.backlog(), 10u);
  EXPECT_EQ(q.stats().dropped_overlimit, 10u);
}

TEST(Netem, ChangeKeepsQueuedReleaseTimes) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(100);
  NetemQdisc q{cfg};
  q.enqueue(make_packet(1), TimePoint{});
  NetemConfig faster;
  faster.delay = Duration::millis(1);
  q.change(faster);
  // The queued packet keeps its 100 ms schedule...
  EXPECT_TRUE(q.drain(TimePoint::from_micros(50000)).empty());
  // ...while new packets use the new delay.
  q.enqueue(make_packet(2), TimePoint::from_micros(50000));
  const auto out = q.drain(TimePoint::from_micros(51000));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2u);
}

TEST(Netem, DeterministicForSameSeed) {
  NetemConfig cfg;
  cfg.loss_probability = units::Probability{0.3};
  cfg.delay = Duration::millis(10);
  cfg.jitter = Duration::millis(5);
  NetemQdisc q1{cfg, 99};
  NetemQdisc q2{cfg, 99};
  for (std::uint64_t i = 0; i < 500; ++i) {
    q1.enqueue(make_packet(i), TimePoint{});
    q2.enqueue(make_packet(i), TimePoint{});
  }
  EXPECT_EQ(q1.stats().dropped_loss, q2.stats().dropped_loss);
  const auto o1 = q1.drain(TimePoint::from_micros(7000));
  const auto o2 = q2.drain(TimePoint::from_micros(7000));
  ASSERT_EQ(o1.size(), o2.size());
  for (std::size_t i = 0; i < o1.size(); ++i) EXPECT_EQ(o1[i].id, o2[i].id);
}

TEST(Netem, DescribeRendersConfiguration) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(50);
  EXPECT_EQ(cfg.describe(), "netem delay 50ms");
  NetemConfig loss;
  loss.loss_probability = units::Probability{0.05};
  EXPECT_EQ(loss.describe(), "netem loss 5%");
}

class JitterDistributionTest : public ::testing::TestWithParam<DelayDistribution> {};

TEST_P(JitterDistributionTest, DelaysNeverNegativeAndMeanNearBase) {
  NetemConfig cfg;
  cfg.delay = Duration::millis(20);
  cfg.jitter = Duration::millis(4);
  cfg.distribution = GetParam();
  cfg.limit = 10000;
  NetemQdisc q{cfg, 31};
  const int n = 2000;
  for (int i = 0; i < n; ++i) q.enqueue(make_packet(static_cast<std::uint64_t>(i)), TimePoint{});
  // All packets released eventually, none before t=0.
  std::size_t total = 0;
  double sum_ms = 0.0;
  for (int ms = 0; ms <= 60; ++ms) {
    const auto out = q.drain(TimePoint::from_micros(ms * 1000));
    total += out.size();
    sum_ms += static_cast<double>(out.size()) * ms;
  }
  EXPECT_EQ(total, static_cast<std::size_t>(n));
  EXPECT_NEAR(sum_ms / n, 20.0, 3.0);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, JitterDistributionTest,
                         ::testing::Values(DelayDistribution::kUniform,
                                           DelayDistribution::kNormal,
                                           DelayDistribution::kPareto,
                                           DelayDistribution::kParetoNormal));

TEST(DelayDistributionTable, ParsesDistFormatAndSamples) {
  // A tiny two-sided table in the .dist convention (values = sigma * 8192).
  const auto table = DelayDistributionTable::parse(
      "# test table\n-8192 -4096 0 4096 8192\n");
  EXPECT_EQ(table.size(), 5u);
  EXPECT_DOUBLE_EQ(table.sample(0.0), -1.0);
  EXPECT_DOUBLE_EQ(table.sample(0.5), 0.0);
  EXPECT_DOUBLE_EQ(table.sample(0.9999), 1.0);
  EXPECT_THROW(DelayDistributionTable::parse(""), std::invalid_argument);
  EXPECT_THROW(DelayDistributionTable::parse("12 potato"), std::invalid_argument);
}

TEST(Netem, CustomDistributionTableShapesJitter) {
  // A one-sided table: all deviates at +1 sigma. Every packet then takes
  // exactly base + jitter.
  NetemConfig cfg;
  cfg.delay = Duration::millis(20);
  cfg.jitter = Duration::millis(5);
  cfg.distribution = DelayDistribution::kTable;
  cfg.distribution_table = std::make_shared<DelayDistributionTable>(
      DelayDistributionTable::from_values({8192}));
  NetemQdisc q{cfg, 77};
  for (std::uint64_t i = 0; i < 50; ++i) q.enqueue(make_packet(i), TimePoint{});
  EXPECT_TRUE(q.drain(TimePoint::from_micros(24999)).empty());
  EXPECT_EQ(q.drain(TimePoint::from_micros(25000)).size(), 50u);
}

TEST(Netem, TableDistributionWithoutTableThrows) {
  NetemConfig cfg;
  cfg.distribution = DelayDistribution::kTable;
  EXPECT_THROW(NetemQdisc(cfg, 1), std::invalid_argument);
}

// Every probability/correlation knob on NetemConfig is a units::Probability:
// an out-of-range value is rejected when the field is built, not when a
// packet eventually rolls the bad dice mid-campaign.
TEST(NetemConfig, OutOfRangeProbabilityRejectedAtConstruction) {
  const auto saved = check::Registry::instance().policy();
  check::Registry::instance().set_policy(check::Policy::kThrow);
  NetemConfig cfg;
  EXPECT_THROW(cfg.loss_probability = units::Probability{1.5},
               check::ContractViolation);
  EXPECT_THROW(cfg.loss_correlation = units::Probability{-0.25},
               check::ContractViolation);
  EXPECT_THROW(cfg.duplicate_probability = units::Probability{2.0},
               check::ContractViolation);
  EXPECT_THROW(cfg.corrupt_probability = units::Probability{1.01},
               check::ContractViolation);
  EXPECT_THROW(cfg.reorder_correlation = units::Probability{-1e-9},
               check::ContractViolation);
  GilbertElliott ge;
  EXPECT_THROW(ge.p = units::Probability{1.5}, check::ContractViolation);
  EXPECT_THROW(ge.k = units::Probability{100.0}, check::ContractViolation);
  // In-range assignments still work, including the boundaries.
  cfg.loss_probability = units::Probability{0.0};
  cfg.delay_correlation = units::Probability{1.0};
  check::Registry::instance().set_policy(saved);
}

}  // namespace
}  // namespace rdsim::net
