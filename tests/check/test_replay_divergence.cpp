// Replay-divergence detector: hash primitives, recorder diffing, and the
// end-to-end reproducibility contract of a full teleoperation run.
#include <gtest/gtest.h>

#include "check/frame_hash.hpp"
#include "check/replay.hpp"
#include "core/teleop.hpp"

namespace rdsim::check {
namespace {

TEST(Fnv1a, IsDeterministicAndOrderSensitive) {
  Fnv1a a;
  a.u64(1);
  a.f64(2.5);
  Fnv1a b;
  b.u64(1);
  b.f64(2.5);
  EXPECT_EQ(a.digest(), b.digest());

  Fnv1a c;
  c.f64(2.5);
  c.u64(1);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Fnv1a, DistinguishesDoubleBitPatterns) {
  Fnv1a pos, neg;
  pos.f64(0.0);
  neg.f64(-0.0);  // same value, different bits: replay wants bit-exactness
  EXPECT_NE(pos.digest(), neg.digest());
}

TEST(FrameHash, SensitiveToEveryActorField) {
  sim::WorldFrame frame;
  frame.frame_id = 42;
  frame.sim_time_us = 1000000;
  frame.ego.id = 1;
  frame.ego.state.position = {10.0, 5.0};
  const std::uint64_t base = hash_frame(frame);

  sim::WorldFrame moved = frame;
  moved.ego.state.position.x += 1e-12;
  EXPECT_NE(hash_frame(moved), base);

  sim::WorldFrame extra = frame;
  extra.others.push_back(sim::ActorSnapshot{});
  EXPECT_NE(hash_frame(extra), base);

  EXPECT_EQ(hash_frame(frame), base);  // hashing is pure
}

TEST(ReplayRecorder, ChainDigestMatchesChainEquality) {
  ReplayRecorder a, b;
  for (std::uint64_t tick = 0; tick < 100; ++tick) {
    a.record_tick(tick, tick * 31, tick * 17);
    b.record_tick(tick, tick * 31, tick * 17);
  }
  EXPECT_EQ(a.chain_digest(), b.chain_digest());
  EXPECT_EQ(a.size(), 100u);

  b.record_tick(100, 1, 1);
  EXPECT_NE(a.chain_digest(), b.chain_digest());
}

TEST(DiffReplays, IdenticalRecordingsDoNotDiverge) {
  ReplayRecorder a, b;
  for (std::uint64_t tick = 0; tick < 10; ++tick) {
    a.record_tick(tick, tick, tick);
    b.record_tick(tick, tick, tick);
  }
  const DivergenceReport report = diff_replays(a, b);
  EXPECT_FALSE(report.diverged);
  EXPECT_EQ(report.summary(), "replays identical");
}

TEST(DiffReplays, PinpointsFirstDivergentTick) {
  ReplayRecorder a, b;
  for (std::uint64_t tick = 0; tick < 50; ++tick) {
    a.record_tick(tick, tick * 7, 99);
    // Frame hash diverges from tick 23 onward; net state stays equal.
    b.record_tick(tick, tick >= 23 ? tick * 7 + 1 : tick * 7, 99);
  }
  const DivergenceReport report = diff_replays(a, b);
  ASSERT_TRUE(report.diverged);
  EXPECT_EQ(report.first_divergent_tick, 23u);
  EXPECT_EQ(report.first_divergent_index, 23u);
  EXPECT_TRUE(report.frame_differs);
  EXPECT_FALSE(report.net_differs);
  EXPECT_NE(report.summary().find("tick 23"), std::string::npos) << report.summary();
}

TEST(DiffReplays, ReportsLengthMismatchWhenPrefixAgrees) {
  ReplayRecorder a, b;
  for (std::uint64_t tick = 0; tick < 10; ++tick) {
    a.record_tick(tick, 1, 2);
    if (tick < 7) b.record_tick(tick, 1, 2);
  }
  const DivergenceReport report = diff_replays(a, b);
  ASSERT_TRUE(report.diverged);
  EXPECT_TRUE(report.length_mismatch);
  EXPECT_EQ(report.first_divergent_index, 7u);
  EXPECT_EQ(report.first_divergent_tick, 7u);
}

// ----- end-to-end: the simulator's reproducibility contract -----

ReplayRecorder record_run(std::uint64_t seed) {
  ReplayRecorder recorder;
  core::RunConfig rc;
  rc.run_id = "replay";
  rc.subject_id = "T0";
  rc.seed = seed;
  rc.fault_injected = true;
  rc.plan.push_back({"following", {net::FaultKind::kPacketLoss, 0.02}});
  rc.replay = &recorder;
  core::TeleopSession session{std::move(rc), sim::make_following_scenario()};
  session.run();
  return recorder;
}

TEST(ReplayEndToEnd, SameSeedRunsHashIdentically) {
  const ReplayRecorder a = record_run(11);
  const ReplayRecorder b = record_run(11);
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a.chain_digest(), b.chain_digest());
  const DivergenceReport report = diff_replays(a, b);
  EXPECT_FALSE(report.diverged) << report.summary();
}

TEST(ReplayEndToEnd, PerturbedSeedIsFlaggedAtFirstDivergentTick) {
  const ReplayRecorder a = record_run(11);
  const ReplayRecorder b = record_run(12);
  const DivergenceReport report = diff_replays(a, b);
  ASSERT_TRUE(report.diverged);
  if (!report.length_mismatch) {
    // The runs share the fault plan structure, so early ticks (before the
    // first randomized event lands) agree and the detector names the exact
    // tick where the seed first matters.
    EXPECT_GT(a.chain()[report.first_divergent_index].tick, 0u);
    EXPECT_TRUE(report.frame_differs || report.net_differs);
  }
  EXPECT_NE(report.summary(), "replays identical");
}

}  // namespace
}  // namespace rdsim::check
