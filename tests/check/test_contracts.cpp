// Contract layer: violation counting, policy dispatch, and the release/debug
// default behaviour.
#include <gtest/gtest.h>

#include "check/contracts.hpp"

namespace rdsim::check {
namespace {

/// Every test restores the policy and zeroes the shared registry counters so
/// contract hits from other suites in the same binary cannot leak across.
class ContractsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_policy_ = Registry::instance().policy();
    Registry::instance().set_policy(Policy::kCount);
    Registry::instance().reset_counts();
  }
  void TearDown() override {
    Registry::instance().set_policy(saved_policy_);
    Registry::instance().reset_counts();
  }

 private:
  Policy saved_policy_{default_policy()};
};

TEST_F(ContractsTest, PassingContractsCostNothing) {
  const std::uint64_t before = Registry::instance().total_violations();
  RDSIM_REQUIRE(1 + 1 == 2, "arithmetic works");
  RDSIM_ENSURE(true, "trivially true");
  RDSIM_INVARIANT(2 > 1, "ordering works");
  EXPECT_EQ(Registry::instance().total_violations(), before);
}

TEST_F(ContractsTest, FailingContractIncrementsItsSiteCounter) {
  const std::uint64_t before = Registry::instance().total_violations();
  for (int i = 0; i < 3; ++i) {
    RDSIM_REQUIRE(i < 0, "never holds in this loop");
  }
  EXPECT_EQ(Registry::instance().total_violations(), before + 3);
}

TEST_F(ContractsTest, SnapshotDescribesTheFailingSite) {
  RDSIM_INVARIANT(false, "snapshot probe");
  bool found = false;
  for (const ViolationRecord& record : Registry::instance().snapshot()) {
    if (std::string_view{record.message} != "snapshot probe") continue;
    found = true;
    EXPECT_STREQ(record.kind, "INVARIANT");
    EXPECT_STREQ(record.expression, "false");
    EXPECT_NE(std::string_view{record.file}.find("test_contracts.cpp"),
              std::string_view::npos);
    EXPECT_GE(record.count, 1u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ContractsTest, ResetCountsZeroesButKeepsSites) {
  RDSIM_ENSURE(false, "reset probe");
  ASSERT_GT(Registry::instance().total_violations(), 0u);
  Registry::instance().reset_counts();
  EXPECT_EQ(Registry::instance().total_violations(), 0u);
  bool still_registered = false;
  for (const ViolationRecord& record : Registry::instance().snapshot()) {
    if (std::string_view{record.message} == "reset probe") {
      still_registered = true;
      EXPECT_EQ(record.count, 0u);
    }
  }
  EXPECT_TRUE(still_registered);
}

TEST_F(ContractsTest, ThrowPolicyRaisesContractViolation) {
  Registry::instance().set_policy(Policy::kThrow);
  const auto failing_require = [] { RDSIM_REQUIRE(false, "throws"); };
  EXPECT_THROW(failing_require(), ContractViolation);
  try {
    RDSIM_ENSURE(false, "informative message");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ENSURE failed"), std::string::npos) << what;
    EXPECT_NE(what.find("informative message"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
  }
}

TEST_F(ContractsTest, ThrowPolicyStillCounts) {
  Registry::instance().set_policy(Policy::kThrow);
  const std::uint64_t before = Registry::instance().total_violations();
  const auto failing_invariant = [] { RDSIM_INVARIANT(false, "throw counts"); };
  EXPECT_THROW(failing_invariant(), ContractViolation);
  EXPECT_EQ(Registry::instance().total_violations(), before + 1);
}

TEST_F(ContractsTest, ConditionIsAlwaysEvaluated) {
  // Contracts guard release builds too, so side effects of the condition
  // must happen exactly once regardless of policy.
  int evaluations = 0;
  RDSIM_REQUIRE((++evaluations, true), "condition with a side effect");
  EXPECT_EQ(evaluations, 1);
}

TEST(ContractsDefaults, DefaultPolicyMatchesBuildMode) {
  // Release builds (NDEBUG) count silently; debug builds log each failure.
#ifdef NDEBUG
  EXPECT_EQ(default_policy(), Policy::kCount);
#else
  EXPECT_EQ(default_policy(), Policy::kLog);
#endif
}

}  // namespace
}  // namespace rdsim::check
