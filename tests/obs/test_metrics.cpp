// Known-answer and algebraic tests for the obs metrics layer: registry
// invariants, exact histogram bucketing/quantiles against the registered
// bucket bounds (no floating-point slop — quantiles return bound values),
// and merge associativity/commutativity across shards.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace rdsim::obs {
namespace {

// Test-local metrics. Registration is process-global, so names are
// namespaced under test.* and registered once via function-local statics.
MetricId test_counter() {
  static const MetricId id = register_counter("test.counter", "test");
  return id;
}
MetricId test_gauge() {
  static const MetricId id = register_gauge("test.gauge", "test");
  return id;
}
MetricId test_histogram() {
  // 4 geometric buckets over [1, 16): bounds exactly 1, 2, 4, 8, 16.
  static const MetricId id = register_histogram(
      "test.histogram", "test", "", HistogramSpec{1.0, 16.0, 4});
  return id;
}

TEST(ObsRegistry, RegistersKindsAndDefinitions) {
  const MetricDef& counter = metric_def(test_counter());
  EXPECT_EQ(counter.kind, MetricKind::kCounter);
  EXPECT_EQ(counter.name, "test.counter");
  EXPECT_EQ(find_metric("test.counter"), test_counter());
  EXPECT_EQ(find_metric("test.definitely_not_registered"), metric_count());
}

TEST(ObsRegistry, RejectsDuplicateAndInvalidNames) {
  test_counter();  // ensure registered
  EXPECT_THROW(register_counter("test.counter", "dup"), std::logic_error);
  EXPECT_THROW(register_counter("Bad Name!", "x"), std::invalid_argument);
  EXPECT_THROW(register_counter("", "x"), std::invalid_argument);
  EXPECT_THROW(register_histogram("test.badspec", "x", "", {4.0, 2.0, 8}),
               std::invalid_argument);
}

TEST(ObsRegistry, CatalogIsRegistered) {
  // The first-party catalog registers during static init; spot-check identity
  // and that histogram bounds are pinned exactly at the spec endpoints.
  EXPECT_EQ(metric_def(metric::kNetemEnqueued).name, "qdisc.netem.enqueued");
  const MetricDef& age = metric_def(metric::kOpFrameAgeMillis);
  ASSERT_EQ(age.kind, MetricKind::kHistogram);
  ASSERT_EQ(age.bounds.size(), 49u);
  EXPECT_EQ(age.bounds.front(), 1.0);
  EXPECT_EQ(age.bounds.back(), 1e4);
}

TEST(ObsHistogram, GeometricBoundsAreExactPowersForPowerOfTwoSpan) {
  const MetricDef& def = metric_def(test_histogram());
  const std::vector<double> expected{1.0, 2.0, 4.0, 8.0, 16.0};
  ASSERT_EQ(def.bounds.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(def.bounds[i], expected[i]) << "bound " << i;
  }
}

TEST(ObsHistogram, KnownAnswerBucketingAndQuantiles) {
  const MetricDef& def = metric_def(test_histogram());
  // Bucket layout: [underflow)<1, [1,2), [2,4), [4,8), [8,16), overflow>=16.
  EXPECT_EQ(histogram_bucket(def, 0.5), 0u);   // underflow
  EXPECT_EQ(histogram_bucket(def, 1.0), 1u);
  EXPECT_EQ(histogram_bucket(def, 1.999), 1u);
  EXPECT_EQ(histogram_bucket(def, 2.0), 2u);
  EXPECT_EQ(histogram_bucket(def, 7.999), 3u);
  EXPECT_EQ(histogram_bucket(def, 8.0), 4u);
  EXPECT_EQ(histogram_bucket(def, 16.0), 5u);  // overflow (>= max)
  EXPECT_EQ(histogram_bucket(def, 1e9), 5u);
  EXPECT_EQ(histogram_bucket(def, std::numeric_limits<double>::quiet_NaN()), 0u);

  Context ctx;
  // 10 samples: 4 in [1,2), 3 in [2,4), 2 in [4,8), 1 in [8,16).
  for (const double v : {1.0, 1.2, 1.5, 1.9}) ctx.observe(test_histogram(), v);
  for (const double v : {2.0, 3.0, 3.9}) ctx.observe(test_histogram(), v);
  for (const double v : {4.5, 7.0}) ctx.observe(test_histogram(), v);
  ctx.observe(test_histogram(), 9.0);

  const HistogramCell* cell = ctx.histogram(test_histogram());
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count, 10u);
  const std::vector<std::uint64_t> expected_counts{0, 4, 3, 2, 1, 0};
  EXPECT_EQ(cell->counts, expected_counts);

  // Quantiles resolve to the exact upper bound of the rank's bucket:
  // ranks 1-4 -> bound 2, ranks 5-7 -> bound 4, 8-9 -> 8, 10 -> 16.
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 0.10), 2.0);
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 0.40), 2.0);
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 0.50), 4.0);
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 0.70), 4.0);
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 0.90), 8.0);
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 1.00), 16.0);
}

TEST(ObsHistogram, UnderflowAndOverflowQuantileEndpoints) {
  Context ctx;
  ctx.observe(test_histogram(), 0.01);  // underflow
  ctx.observe(test_histogram(), 99.0);  // overflow
  const HistogramCell* cell = ctx.histogram(test_histogram());
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->counts.front(), 1u);
  EXPECT_EQ(cell->counts.back(), 1u);
  // Underflow rank resolves to the min bound; overflow clamps to the max.
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 0.25), 1.0);
  EXPECT_EQ(histogram_quantile(*cell->def, *cell, 1.0), 16.0);
}

Context make_shard(unsigned salt) {
  Context ctx;
  for (unsigned i = 0; i <= salt; ++i) {
    ctx.count(test_counter(), i + 1);
    ctx.gauge_set(test_gauge(), static_cast<double>(salt * 10 + i));
    ctx.observe(test_histogram(), 1.0 + static_cast<double>((salt + i) % 20));
    ctx.timer_add(test_counter(), 100 * (salt + 1));
  }
  return ctx;
}

std::vector<std::uint64_t> histogram_counts(const Context& ctx) {
  const HistogramCell* cell = ctx.histogram(test_histogram());
  return cell != nullptr ? cell->counts : std::vector<std::uint64_t>{};
}

TEST(ObsMerge, AssociativeAndCommutativeAcrossShards) {
  // (a + b) + c == a + (b + c) and order does not matter for every
  // deterministic aggregate (counters, histogram counts, gauge min/max/sum).
  const Context a = make_shard(0), b = make_shard(3), c = make_shard(7);

  Context left;  // (a + b) + c
  left.merge_from(a);
  left.merge_from(b);
  left.merge_from(c);

  Context bc;  // a + (b + c)
  bc.merge_from(b);
  bc.merge_from(c);
  Context right;
  right.merge_from(a);
  right.merge_from(bc);

  Context reversed;  // c + b + a
  reversed.merge_from(c);
  reversed.merge_from(b);
  reversed.merge_from(a);

  for (const Context* other : {&right, &reversed}) {
    EXPECT_EQ(left.counter(test_counter()), other->counter(test_counter()));
    EXPECT_EQ(histogram_counts(left), histogram_counts(*other));
    const GaugeCell* lg = left.gauge(test_gauge());
    const GaugeCell* og = other->gauge(test_gauge());
    ASSERT_NE(lg, nullptr);
    ASSERT_NE(og, nullptr);
    EXPECT_EQ(lg->min, og->min);
    EXPECT_EQ(lg->max, og->max);
    EXPECT_EQ(lg->count, og->count);
    const TimerCell* lt = left.timer(test_counter());
    const TimerCell* ot = other->timer(test_counter());
    ASSERT_NE(lt, nullptr);
    ASSERT_NE(ot, nullptr);
    EXPECT_EQ(lt->total_ns, ot->total_ns);
    EXPECT_EQ(lt->count, ot->count);
  }
}

TEST(ObsMerge, MergeEqualsSingleContextObservingEverything) {
  // Sharding must be invisible: observing the same samples in one context or
  // split across N merged shards yields identical deterministic state.
  Context merged;
  for (const unsigned salt : {0u, 3u, 7u}) merged.merge_from(make_shard(salt));

  Context single;
  for (const unsigned salt : {0u, 3u, 7u}) {
    for (unsigned i = 0; i <= salt; ++i) {
      single.count(test_counter(), i + 1);
      single.gauge_set(test_gauge(), static_cast<double>(salt * 10 + i));
      single.observe(test_histogram(), 1.0 + static_cast<double>((salt + i) % 20));
      single.timer_add(test_counter(), 100 * (salt + 1));
    }
  }

  EXPECT_EQ(merged.counter(test_counter()), single.counter(test_counter()));
  EXPECT_EQ(histogram_counts(merged), histogram_counts(single));
  ASSERT_NE(merged.gauge(test_gauge()), nullptr);
  EXPECT_EQ(merged.gauge(test_gauge())->min, single.gauge(test_gauge())->min);
  EXPECT_EQ(merged.gauge(test_gauge())->max, single.gauge(test_gauge())->max);
  EXPECT_EQ(merged.gauge(test_gauge())->sum, single.gauge(test_gauge())->sum);
}

TEST(ObsContext, GaugeTracksLastMinMaxMeanCount) {
  Context ctx;
  EXPECT_EQ(ctx.gauge(test_gauge()), nullptr);  // untouched -> null
  for (const double v : {5.0, 1.0, 9.0, 3.0}) ctx.gauge_set(test_gauge(), v);
  const GaugeCell* g = ctx.gauge(test_gauge());
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->last, 3.0);
  EXPECT_EQ(g->min, 1.0);
  EXPECT_EQ(g->max, 9.0);
  EXPECT_EQ(g->count, 4u);
  EXPECT_DOUBLE_EQ(g->mean(), 4.5);
}

TEST(ObsContext, EmptyDetectsAnyActivity) {
  Context ctx;
  EXPECT_TRUE(ctx.empty());
  ctx.count(test_counter(), 1);
  EXPECT_FALSE(ctx.empty());

  Context with_span;
  const std::size_t h = with_span.span_open(test_counter(), util::TimePoint{});
  with_span.span_close(h, util::TimePoint::from_micros(10));
  EXPECT_FALSE(with_span.empty());
}

}  // namespace
}  // namespace rdsim::obs
