// Scoped-timer and context-installation semantics: RAII accumulation, scope
// nesting/restoration, the runtime enable switch, and worker-count
// independence of per-task context aggregation on the real ThreadPool.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "util/thread_pool.hpp"

namespace rdsim::obs {
namespace {

MetricId scope_timer() {
  static const MetricId id = register_timer("test.scope_timer", "test");
  return id;
}
MetricId pool_counter() {
  static const MetricId id = register_counter("test.pool_counter", "test");
  return id;
}

TEST(ObsProfile, ScopedTimerAccumulatesIntoCurrentContext) {
#if RDSIM_OBS
  Context ctx;
  {
    ContextScope scope{&ctx};
    { RDSIM_OBS_TIMER(scope_timer()); }
    { RDSIM_OBS_TIMER(scope_timer()); }
  }
  const TimerCell* cell = ctx.timer(scope_timer());
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count, 2u);
#else
  GTEST_SKIP() << "observability compiled out";
#endif
}

TEST(ObsProfile, NoContextMeansNoRecording) {
  ASSERT_EQ(Context::current(), nullptr);
  // Must be safe and free-standing with no context installed.
  RDSIM_OBS_COUNT(pool_counter(), 1);
  { RDSIM_OBS_TIMER(scope_timer()); }
}

TEST(ObsProfile, ContextScopesNestAndRestore) {
#if RDSIM_OBS
  Context outer, inner;
  {
    ContextScope outer_scope{&outer};
    EXPECT_EQ(Context::current(), &outer);
    {
      ContextScope inner_scope{&inner};
      EXPECT_EQ(Context::current(), &inner);
      RDSIM_OBS_COUNT(pool_counter(), 5);
    }
    EXPECT_EQ(Context::current(), &outer);
    RDSIM_OBS_COUNT(pool_counter(), 2);
  }
  EXPECT_EQ(Context::current(), nullptr);
  EXPECT_EQ(inner.counter(pool_counter()), 5u);
  EXPECT_EQ(outer.counter(pool_counter()), 2u);
#else
  GTEST_SKIP() << "observability compiled out";
#endif
}

TEST(ObsProfile, RuntimeDisableBlocksContextInstallation) {
#if RDSIM_OBS
  Context ctx;
  set_enabled(false);
  {
    ContextScope scope{&ctx};
    EXPECT_EQ(Context::current(), nullptr);
    RDSIM_OBS_COUNT(pool_counter(), 1);
  }
  set_enabled(true);
  EXPECT_TRUE(ctx.empty());
  {
    ContextScope scope{&ctx};
    RDSIM_OBS_COUNT(pool_counter(), 1);
  }
  EXPECT_EQ(ctx.counter(pool_counter()), 1u);
#else
  GTEST_SKIP() << "observability compiled out";
#endif
}

TEST(ObsProfile, PoolAggregationIsWorkerCountIndependent) {
#if RDSIM_OBS
  // One context per task (the harness discipline), submitted under a stable
  // task id: the merged rollup must not depend on how many workers executed
  // the tasks or in what order they finished.
  constexpr std::size_t kTasks = 24;
  auto run = [](std::size_t workers) {
    auto collector = std::make_unique<CampaignCollector>();
    std::vector<Context> contexts(kTasks);
    util::ThreadPool pool{workers};
    pool.parallel_for(kTasks, [&](std::size_t i) {
      ContextScope scope{&contexts[i]};
      for (std::size_t k = 0; k <= i; ++k) {
        RDSIM_OBS_COUNT(pool_counter(), k + 1);
        { RDSIM_OBS_TIMER(scope_timer()); }
      }
    });
    for (std::size_t i = 0; i < kTasks; ++i) {
      char id[16];
      std::snprintf(id, sizeof id, "task-%02zu", i);
      collector->submit_run(id, std::move(contexts[i]));
    }
    return collector;
  };

  const auto reference = run(1);
  const Context ref_merged = reference->merged();
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const auto other = run(workers);
    ASSERT_EQ(other->run_count(), kTasks);
    // Per-run deterministic state identical...
    auto ref_it = reference->runs().begin();
    for (const auto& [run_id, ctx] : other->runs()) {
      EXPECT_EQ(run_id, ref_it->first);
      EXPECT_EQ(ctx.counter(pool_counter()), ref_it->second.counter(pool_counter()))
          << run_id;
      ++ref_it;
    }
    // ...and so is the merged rollup (timer counts too — only the measured
    // nanoseconds are nondeterministic, never the structure).
    const Context merged = other->merged();
    EXPECT_EQ(merged.counter(pool_counter()), ref_merged.counter(pool_counter()));
    ASSERT_NE(merged.timer(scope_timer()), nullptr);
    EXPECT_EQ(merged.timer(scope_timer())->count,
              ref_merged.timer(scope_timer())->count);
  }
#else
  GTEST_SKIP() << "observability compiled out";
#endif
}

TEST(ObsProfile, WallclockIsMonotone) {
  const std::uint64_t a = wallclock_ns();
  const std::uint64_t b = wallclock_ns();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace rdsim::obs
