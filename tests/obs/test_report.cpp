// CampaignCollector and report export: run-id ordering, duplicate-id
// folding, and a full parse of report_json() through json_check — the same
// artifact the bench writes as BENCH_obs.json.
#include <gtest/gtest.h>

#include <string>

#include "json_check.hpp"
#include "obs/report.hpp"

namespace rdsim::obs {
namespace {

MetricId report_counter() {
  static const MetricId id = register_counter("test.report_counter", "test");
  return id;
}
MetricId report_gauge() {
  static const MetricId id = register_gauge("test.report_gauge", "test");
  return id;
}
MetricId report_histogram() {
  static const MetricId id = register_histogram("test.report_histogram", "test",
                                                "", HistogramSpec{1.0, 16.0, 4});
  return id;
}

Context run_context(std::uint64_t n) {
  Context ctx;
  ctx.count(report_counter(), n);
  ctx.gauge_set(report_gauge(), static_cast<double>(n));
  ctx.observe(report_histogram(), static_cast<double>(n));
  return ctx;
}

TEST(ObsReport, RunsIterateInRunIdOrderRegardlessOfSubmitOrder) {
  CampaignCollector collector;
  collector.submit_run("run-09", run_context(9));
  collector.submit_run("run-01", run_context(1));
  collector.submit_run("run-05", run_context(5));
  ASSERT_EQ(collector.run_count(), 3u);
  std::string previous;
  for (const auto& [id, ctx] : collector.runs()) {
    EXPECT_LT(previous, id);
    previous = id;
  }
  EXPECT_EQ(collector.merged().counter(report_counter()), 15u);
}

TEST(ObsReport, DuplicateRunIdFoldsViaMerge) {
  CampaignCollector collector;
  collector.submit_run("run-01", run_context(3));
  collector.submit_run("run-01", run_context(4));
  ASSERT_EQ(collector.run_count(), 1u);
  EXPECT_EQ(collector.runs().at("run-01").counter(report_counter()), 7u);
}

TEST(ObsReport, EmptyContextIsStillARun) {
  CampaignCollector collector;
  collector.submit_run("run-empty", Context{});
  EXPECT_EQ(collector.run_count(), 1u);
  EXPECT_TRUE(collector.runs().at("run-empty").empty());
}

TEST(ObsReport, ReportJsonParsesAndCarriesKnownValues) {
  CampaignCollector collector;
  collector.submit_run("run-01", run_context(2));
  collector.submit_run("run-02", run_context(4));

  const json_check::Value root = json_check::parse(collector.report_json());
  EXPECT_EQ(root.at("schema").str(), "rdsim.obs.report/1");
  EXPECT_EQ(root.at("compiled_in").boolean(), compiled_in());
  EXPECT_EQ(static_cast<int>(root.at("runs").num()), 2);

  const json_check::Value& campaign = root.at("campaign");
  EXPECT_EQ(static_cast<int>(campaign.at("test.report_counter").num()), 6);
  const json_check::Value& gauge = campaign.at("test.report_gauge");
  EXPECT_EQ(gauge.at("min").num(), 2.0);
  EXPECT_EQ(gauge.at("max").num(), 4.0);
  EXPECT_EQ(static_cast<int>(gauge.at("count").num()), 2);
  const json_check::Value& histogram = campaign.at("test.report_histogram");
  EXPECT_EQ(static_cast<int>(histogram.at("count").num()), 2);
  EXPECT_EQ(histogram.at("sum").num(), 6.0);

  const json_check::Value& per_run = root.at("per_run");
  EXPECT_EQ(static_cast<int>(
                per_run.at("run-01").at("test.report_counter").num()),
            2);
  EXPECT_EQ(static_cast<int>(
                per_run.at("run-02").at("test.report_counter").num()),
            4);
}

TEST(ObsReport, ZeroCountersAreOmittedFromTheReport) {
  CampaignCollector collector;
  Context ctx;
  ctx.gauge_set(report_gauge(), 1.0);  // counter never touched
  collector.submit_run("run-01", std::move(ctx));
  const json_check::Value root = json_check::parse(collector.report_json());
  EXPECT_FALSE(root.at("campaign").has("test.report_counter"));
  EXPECT_TRUE(root.at("campaign").has("test.report_gauge"));
}

}  // namespace
}  // namespace rdsim::obs
