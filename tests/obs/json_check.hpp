// Minimal recursive-descent JSON parser for validating exported artifacts
// (Chrome traces, obs reports) in tests. Supports the full value grammar the
// exporters emit: objects, arrays, strings with escapes, numbers, booleans,
// null. Throws std::runtime_error with a byte offset on malformed input —
// a test that feeds it exporter output is a round-trip check.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace json_check {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<Object>,
               std::shared_ptr<Array>>
      v{nullptr};

  bool is_object() const { return std::holds_alternative<std::shared_ptr<Object>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<Array>>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }

  const Object& object() const { return *std::get<std::shared_ptr<Object>>(v); }
  const Array& array() const { return *std::get<std::shared_ptr<Array>>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  double num() const { return std::get<double>(v); }
  bool boolean() const { return std::get<bool>(v); }

  /// Object member access; throws when missing (tests want loud failures).
  const Value& at(const std::string& key) const {
    const Object& o = object();
    const auto it = o.find(key);
    if (it == o.end()) throw std::runtime_error{"json: missing key '" + key + "'"};
    return it->second;
  }
  bool has(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_{text} {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error{"json: " + why + " at byte " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value{std::string{string()}};
      case 't': literal("true"); return Value{true};
      case 'f': literal("false"); return Value{false};
      case 'n': literal("null"); return Value{nullptr};
      default: return number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }

  Value object() {
    expect('{');
    auto out = std::make_shared<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{out};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*out)[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{out};
    }
  }

  Value array() {
    expect('[');
    auto out = std::make_shared<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{out};
    }
    while (true) {
      out->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{out};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            if (code > 0x7F) fail("non-ASCII \\u escape unsupported in tests");
            out += static_cast<char>(code);
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  Value number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                           c == '.' || c == 'e' || c == 'E';
      if (!numeric) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    try {
      return Value{std::stod(text_.substr(start, pos_ - start))};
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  const std::string& text_;
  std::size_t pos_{0};
};

inline Value parse(const std::string& text) { return Parser{text}.parse(); }

}  // namespace json_check
