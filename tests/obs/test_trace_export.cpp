// Chrome trace-event exporter tests: structural round-trip through a real
// JSON parse, the per-thread invariants the format demands (monotone ts,
// balanced B/E), determinism, and a randomized-span fuzz over 1000 seeded
// iterations — every generated trace must parse and satisfy the invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rdsim::obs {
namespace {

MetricId trace_span() {
  static const MetricId id = register_timer("test.trace_span", "test");
  return id;
}
MetricId trace_span_b() {
  static const MetricId id = register_timer("test.trace_span_b", "test");
  return id;
}
MetricId trace_instant() {
  static const MetricId id = register_counter("test.trace_instant", "test");
  return id;
}

util::TimePoint at(std::int64_t us) { return util::TimePoint::from_micros(us); }

/// Parse a trace and check the invariants chrome://tracing enforces: within
/// each (pid, tid), timestamps are non-decreasing and B/E events balance like
/// parentheses. Returns the parsed event array for further inspection.
json_check::Value parse_and_check(const std::string& text) {
  const json_check::Value root = json_check::parse(text);
  EXPECT_TRUE(root.is_object());
  const json_check::Value& events = root.at("traceEvents");
  EXPECT_TRUE(events.is_array());

  struct ThreadState {
    std::int64_t last_ts{-1};
    int depth{0};
  };
  std::map<std::pair<double, double>, ThreadState> threads;
  for (const json_check::Value& ev : events.array()) {
    const std::string& ph = ev.at("ph").str();
    if (ph == "M") continue;  // metadata carries no timestamp
    const std::pair<double, double> key{ev.at("pid").num(), ev.at("tid").num()};
    ThreadState& ts = threads[key];
    const auto stamp = static_cast<std::int64_t>(ev.at("ts").num());
    EXPECT_GE(stamp, ts.last_ts) << "non-monotone ts on tid " << key.second;
    ts.last_ts = stamp;
    if (ph == "B") ++ts.depth;
    if (ph == "E") {
      --ts.depth;
      EXPECT_GE(ts.depth, 0) << "E without matching B on tid " << key.second;
    }
  }
  for (const auto& [key, ts] : threads) {
    EXPECT_EQ(ts.depth, 0) << "unbalanced B/E on tid " << key.second;
  }
  return root;
}

TEST(ObsTrace, EmptyTrackSetIsValidJson) {
  const json_check::Value root = parse_and_check(chrome_trace_json({}));
  EXPECT_TRUE(root.at("traceEvents").array().empty());
  EXPECT_EQ(root.at("displayTimeUnit").str(), "ms");
}

TEST(ObsTrace, RoundTripsSpansAndInstants) {
  Context ctx;
  const std::size_t s1 = ctx.span_open(trace_span(), at(100));
  ctx.span_close(s1, at(400));
  const std::size_t s2 = ctx.span_open(trace_span(), at(500));
  ctx.span_close(s2, at(650));
  ctx.instant(trace_instant(), at(123));

  const json_check::Value root =
      parse_and_check(chrome_trace_json({{"run-a", &ctx}}));
  const json_check::Array& events = root.at("traceEvents").array();

  std::size_t begins = 0, ends = 0, instants = 0, metadata = 0;
  for (const json_check::Value& ev : events) {
    const std::string& ph = ev.at("ph").str();
    if (ph == "B") {
      ++begins;
      EXPECT_EQ(ev.at("name").str(), "test.trace_span");
    } else if (ph == "E") {
      ++ends;
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(ev.at("name").str(), "test.trace_instant");
      EXPECT_EQ(static_cast<std::int64_t>(ev.at("ts").num()), 123);
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(instants, 1u);
  // process_name for the track + a thread_name per (metric, lane) group.
  EXPECT_GE(metadata, 3u);

  // The track name round-trips through the process_name metadata event.
  bool saw_track_name = false;
  for (const json_check::Value& ev : events) {
    if (ev.at("ph").str() == "M" && ev.at("name").str() == "process_name") {
      saw_track_name =
          saw_track_name || ev.at("args").at("name").str() == "run-a";
    }
  }
  EXPECT_TRUE(saw_track_name);
}

TEST(ObsTrace, OverlappingSpansSplitAcrossSubThreads) {
  Context ctx;
  // Three mutually-overlapping spans of one (metric, lane): the B/E format
  // cannot express that on one thread, so the exporter must use >= 3 tids.
  const std::size_t a = ctx.span_open(trace_span(), at(0));
  const std::size_t b = ctx.span_open(trace_span(), at(10));
  const std::size_t c = ctx.span_open(trace_span(), at(20));
  ctx.span_close(a, at(100));
  ctx.span_close(b, at(110));
  ctx.span_close(c, at(120));

  const json_check::Value root =
      parse_and_check(chrome_trace_json({{"run", &ctx}}));
  std::map<double, int> begins_per_tid;
  for (const json_check::Value& ev : root.at("traceEvents").array()) {
    if (ev.at("ph").str() == "B") ++begins_per_tid[ev.at("tid").num()];
  }
  EXPECT_EQ(begins_per_tid.size(), 3u);
  for (const auto& [tid, n] : begins_per_tid) EXPECT_EQ(n, 1);
}

TEST(ObsTrace, OpenSpanExportsClampedNotNegative) {
  Context ctx;
  ctx.span_open(trace_span(), at(42));  // never closed
  const json_check::Value root =
      parse_and_check(chrome_trace_json({{"run", &ctx}}));
  // parse_and_check already verifies the B/E pair balances and stays
  // monotone; both events must clamp to the begin timestamp.
  for (const json_check::Value& ev : root.at("traceEvents").array()) {
    const std::string& ph = ev.at("ph").str();
    if (ph == "B" || ph == "E") {
      EXPECT_EQ(static_cast<std::int64_t>(ev.at("ts").num()), 42);
    }
  }
}

TEST(ObsTrace, LanesGetDistinctThreads) {
  Context ctx;
  for (const std::uint32_t lane : {1u, 2u, 3u}) {
    const std::size_t h = ctx.span_open(trace_span(), at(0), lane);
    ctx.span_close(h, at(50));
  }
  const json_check::Value root =
      parse_and_check(chrome_trace_json({{"run", &ctx}}));
  std::map<double, int> tids;
  for (const json_check::Value& ev : root.at("traceEvents").array()) {
    if (ev.at("ph").str() == "B") ++tids[ev.at("tid").num()];
  }
  // Same virtual interval, but different lanes -> no sub-thread splitting
  // needed, one thread per lane.
  EXPECT_EQ(tids.size(), 3u);
}

TEST(ObsTrace, ExportIsDeterministic) {
  auto build = [] {
    Context ctx;
    util::Random rng{2026, 7};
    for (int i = 0; i < 64; ++i) {
      const auto begin = static_cast<std::int64_t>(rng.uniform_int(0, 10000));
      const std::size_t h = ctx.span_open(
          rng.bernoulli(0.5) ? trace_span() : trace_span_b(), at(begin),
          static_cast<std::uint32_t>(rng.uniform_int(0, 3)));
      ctx.span_close(h, at(begin + rng.uniform_int(0, 500)));
    }
    return ctx;
  };
  const Context a = build();
  const Context b = build();
  EXPECT_EQ(chrome_trace_json({{"run", &a}}), chrome_trace_json({{"run", &b}}));
}

TEST(ObsTrace, EscapesControlAndQuoteCharactersInTrackNames) {
  Context ctx;
  ctx.instant(trace_instant(), at(0));
  const std::string text =
      chrome_trace_json({{"we\"ird\\name\nwith\tctrl\x01", &ctx}});
  const json_check::Value root = parse_and_check(text);
  bool found = false;
  for (const json_check::Value& ev : root.at("traceEvents").array()) {
    if (ev.at("ph").str() == "M" && ev.at("name").str() == "process_name") {
      EXPECT_EQ(ev.at("args").at("name").str(), "we\"ird\\name\nwith\tctrl\x01");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsTrace, FuzzRandomizedSpansAlwaysProduceValidTraces) {
  // 1000 seeded iterations of arbitrary span/instant soup — overlapping,
  // nested, open, zero-length, multi-lane, multi-metric, multi-track. Every
  // output must parse and satisfy the per-thread invariants.
  for (std::uint64_t iter = 0; iter < 1000; ++iter) {
    util::Random rng{0x0b5e55ed ^ iter, iter + 1};
    std::vector<Context> contexts(static_cast<std::size_t>(rng.uniform_int(1, 3)));
    std::vector<TraceTrack> tracks;
    std::size_t expected_spans = 0, expected_instants = 0;
    for (std::size_t t = 0; t < contexts.size(); ++t) {
      Context& ctx = contexts[t];
      const int ops = rng.uniform_int(0, 20);
      std::vector<std::size_t> open;
      for (int op = 0; op < ops; ++op) {
        const auto ts = static_cast<std::int64_t>(rng.uniform_int(0, 100000));
        const MetricId metric = rng.bernoulli(0.5) ? trace_span() : trace_span_b();
        const auto lane = static_cast<std::uint32_t>(rng.uniform_int(0, 4));
        const double dice = rng.uniform();
        if (dice < 0.5) {
          const std::size_t h = ctx.span_open(metric, at(ts), lane);
          ++expected_spans;
          if (rng.bernoulli(0.8)) {
            // Close at, before, or after begin — exporter must clamp.
            ctx.span_close(h, at(ts + rng.uniform_int(-100, 2000)));
          } else {
            open.push_back(h);  // leave open
          }
        } else if (dice < 0.75 && !open.empty()) {
          ctx.span_close(open.back(), at(ts));
          open.pop_back();
        } else {
          ctx.instant(metric, at(ts), lane);
          ++expected_instants;
        }
      }
      tracks.push_back({"track-" + std::to_string(t), &ctx});
    }

    const json_check::Value root =
        parse_and_check(chrome_trace_json(tracks));
    std::size_t begins = 0, instants = 0;
    for (const json_check::Value& ev : root.at("traceEvents").array()) {
      const std::string& ph = ev.at("ph").str();
      if (ph == "B") ++begins;
      if (ph == "i") ++instants;
    }
    ASSERT_EQ(begins, expected_spans) << "iteration " << iter;
    ASSERT_EQ(instants, expected_instants) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace rdsim::obs
