// Property tests for the ReliableStream instrumentation: conservation laws
// that must hold for *any* loss pattern, checked across several netem seeds
// and loss rates. These are the counters the paper-facing reports aggregate,
// so their semantics are pinned here rather than in prose.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/reliable_stream.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace rdsim::net {
namespace {

using util::Duration;
using util::TimePoint;

/// StreamFixture from test_reliable_stream.cpp, parameterized on the netem
/// seed and wrapped in an obs context so every instrument records.
struct ObservedStream {
  explicit ObservedStream(std::uint64_t tc_seed)
      : tc{tc_seed}, channel{tc, "lo"}, router{channel},
        stream{router, channel, 1, LinkDirection::kDownlink, config()},
        scope{&ctx} {}

  static StreamConfig config() {
    StreamConfig cfg;
    cfg.mtu = 1000;
    return cfg;
  }

  void run_for(Duration d) {
    const TimePoint end = now + d;
    while (now < end) {
      now += Duration::millis(1);
      router.poll(now);
      stream.step(now);
      // Cumulative-ack monotonicity, sampled every virtual millisecond.
      const std::uint32_t ack = stream.last_cum_ack();
      EXPECT_GE(ack, last_seen_ack) << "cum-ack went backwards";
      last_seen_ack = ack;
    }
  }

  std::uint64_t counter(obs::MetricId id) const { return ctx.counter(id); }

  obs::Context ctx;
  TrafficControl tc;
  Channel channel;
  PacketRouter router;
  ReliableStream stream;
  obs::ContextScope scope;
  TimePoint now;
  std::uint32_t last_seen_ack{0};
};

#if RDSIM_OBS

TEST(ObsStreamCounters, CleanLinkCountsTxEqualsRxAndNoRetransmits) {
  ObservedStream s{1};
  for (int i = 0; i < 30; ++i) {
    s.stream.send_message({static_cast<std::uint8_t>(i)}, 100, s.now);
  }
  s.run_for(Duration::seconds(2.0));
  const std::uint64_t tx = s.counter(obs::metric::kStreamSegmentsTx);
  EXPECT_GE(tx, 30u);
  EXPECT_EQ(tx, s.counter(obs::metric::kStreamSegmentsRx));
  EXPECT_EQ(s.counter(obs::metric::kStreamRetransmittedSegments), 0u);
  EXPECT_EQ(s.counter(obs::metric::kStreamHolStallMicros), 0u);
  EXPECT_TRUE(s.ctx.spans().empty());
}

TEST(ObsStreamCounters, RetransmitsCoverLossesUnderNetemLoss) {
  // Conservation argument: tx = unique + retransmitted, rx = tx - lost.
  // Completion requires rx >= unique, hence retransmitted >= lost, i.e.
  //   retransmitted >= tx - rx
  // for every seed and loss rate — not just on average.
  for (const char* loss : {"loss 2%", "loss 5%", "loss 20%"}) {
    for (const std::uint64_t seed : {7ull, 11ull, 42ull}) {
      ObservedStream s{seed};
      s.tc.add("lo", parse_netem(loss));
      constexpr int kMessages = 40;
      for (int i = 0; i < kMessages; ++i) {
        s.stream.send_message({static_cast<std::uint8_t>(i)}, 100, s.now);
      }
      s.run_for(Duration::seconds(30.0));

      int received = 0;
      while (s.stream.pop_delivered()) ++received;
      ASSERT_EQ(received, kMessages) << loss << " seed " << seed;

      const std::uint64_t tx = s.counter(obs::metric::kStreamSegmentsTx);
      const std::uint64_t rx = s.counter(obs::metric::kStreamSegmentsRx);
      const std::uint64_t retx =
          s.counter(obs::metric::kStreamRetransmittedSegments);
      ASSERT_GE(tx, rx) << loss << " seed " << seed;
      EXPECT_GE(retx, tx - rx) << loss << " seed " << seed;

      // The obs counters and the stream's own stats must agree where they
      // count the same thing. (stats_.retransmits_rto counts RTO *events*,
      // which can each retransmit several segments, so it only lower-bounds
      // the segment counter.)
      EXPECT_EQ(s.counter(obs::metric::kStreamFastRetransmits),
                s.stream.stats().retransmits_fast);
      EXPECT_EQ(s.counter(obs::metric::kStreamRtoEvents),
                s.stream.stats().retransmits_rto);
      EXPECT_GE(retx, s.stream.stats().retransmits_fast);
    }
  }
}

TEST(ObsStreamCounters, HolStallMicrosEqualsSumOfTracedStallSpans) {
  // The stall counter and the stall spans are recorded from the same
  // endpoints, so the microsecond total must equal the span-duration sum
  // exactly — and the span count must match the windows counter.
  ObservedStream s{42};
  s.tc.add("lo", parse_netem("loss 30%"));
  for (int i = 0; i < 40; ++i) {
    s.stream.send_message({static_cast<std::uint8_t>(i)}, 100, s.now);
  }
  s.run_for(Duration::seconds(30.0));

  const std::uint64_t stall_us = s.counter(obs::metric::kStreamHolStallMicros);
  const std::uint64_t windows = s.counter(obs::metric::kStreamHolStallSpan);
  ASSERT_GT(windows, 0u) << "30% loss should have produced HOL stalls";

  std::uint64_t span_sum_us = 0;
  std::uint64_t span_count = 0;
  for (const obs::Span& span : s.ctx.spans()) {
    if (span.metric != obs::metric::kStreamHolStallSpan) continue;
    ASSERT_GE(span.end_us, span.begin_us) << "stall span left open";
    span_sum_us += static_cast<std::uint64_t>(span.end_us - span.begin_us);
    ++span_count;
  }
  EXPECT_EQ(span_count, windows);
  EXPECT_EQ(span_sum_us, stall_us);
}

TEST(ObsStreamCounters, RtoEventsMatchStreamStats) {
  ObservedStream s{7};
  // Total blackout long enough that only RTO can recover the segment.
  s.tc.add("lo", parse_netem("loss 100%"));
  s.stream.send_message({1}, 100, s.now);
  s.run_for(Duration::millis(300));
  s.tc.del("lo");
  s.run_for(Duration::seconds(2.0));
  ASSERT_TRUE(s.stream.pop_delivered().has_value());
  EXPECT_GT(s.counter(obs::metric::kStreamRtoEvents), 0u);
  EXPECT_EQ(s.counter(obs::metric::kStreamRtoEvents),
            s.stream.stats().retransmits_rto);
}

#else

TEST(ObsStreamCounters, CompiledOut) { GTEST_SKIP() << "observability compiled out"; }

#endif  // RDSIM_OBS

}  // namespace
}  // namespace rdsim::net
