#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "trace/trace.hpp"

namespace rdsim::trace {
namespace {

TEST(TraceRecorder, SamplesAtConfiguredRate) {
  sim::World world{sim::make_town05_route()};
  const auto ego = world.spawn_on_road(sim::ActorKind::kVehicle, units::Meters{0.0}, 0, {},
                                      units::MetersPerSecond{10.0}, "ego");
  world.designate_ego(ego);
  world.spawn_on_road(sim::ActorKind::kStaticVehicle, units::Meters{100.0}, 1, {},
                      units::MetersPerSecond{0.0}, "parked");

  TraceRecorder rec{"run", "T1", false, /*sample_hz=*/10.0};
  for (int i = 0; i < 100; ++i) {  // 1 s at 100 Hz physics
    world.step(units::Seconds{0.01});
    rec.step(world);
  }
  const RunTrace& t = rec.trace();
  EXPECT_NEAR(static_cast<double>(t.ego.size()), 10.0, 2.0);
  EXPECT_EQ(t.others.size(), t.ego.size());  // one other actor per tick
  EXPECT_EQ(t.others.front().role, "parked");
  EXPECT_GT(t.others.front().distance, 90.0);
}

TEST(TraceRecorder, CapturesSensorEvents) {
  sim::World world{sim::make_town05_route()};
  const auto ego = world.spawn_on_road(sim::ActorKind::kVehicle, units::Meters{0.0}, 0, {},
                                      units::MetersPerSecond{12.0}, "ego");
  world.designate_ego(ego);
  world.spawn_on_road(sim::ActorKind::kStaticVehicle, units::Meters{30.0}, 0, {},
                      units::MetersPerSecond{0.0}, "wall");
  sim::VehicleControl c;
  c.throttle = 0.5;
  world.apply_ego_control(c);

  TraceRecorder rec{"run", "T1", true};
  for (int i = 0; i < 600; ++i) {
    world.step(units::Seconds{0.01});
    rec.step(world);
  }
  EXPECT_FALSE(rec.trace().collisions.empty());
  EXPECT_EQ(rec.trace().collisions.front().other_kind, "static_vehicle");
}

TEST(TraceRecorder, IngestsFaultLog) {
  net::TrafficControl tc;
  net::FaultInjector inj{tc, "lo"};
  inj.inject({net::FaultKind::kDelay, 50.0}, util::TimePoint::from_seconds(1.0));
  inj.remove(util::TimePoint::from_seconds(2.5));

  TraceRecorder rec{"run", "T1", true};
  rec.ingest_fault_log(inj.log());
  const RunTrace t = rec.take();
  ASSERT_EQ(t.faults.size(), 2u);
  EXPECT_EQ(t.faults[0].fault_type, "delay");
  EXPECT_EQ(t.faults[0].label, "50ms");
  EXPECT_TRUE(t.faults[0].added);
  EXPECT_DOUBLE_EQ(t.faults[1].t, 2.5);
}

RunTrace make_rich_trace() {
  RunTrace t;
  t.run_id = "T5-FI";
  t.subject = "T5";
  t.fault_injected_run = true;
  for (int i = 0; i < 50; ++i) {
    trace::EgoSample e;
    e.t = i * 0.05;
    e.frame = static_cast<std::uint32_t>(i);
    e.x = i * 0.5;
    e.y = -1.0;
    e.vx = 10.0;
    e.ax = 0.1;
    e.throttle = 0.3;
    e.steer = 0.01 * i;
    e.brake = 0.0;
    t.ego.push_back(e);
    trace::OtherSample o;
    o.actor = 2;
    o.role = "lead";
    o.t = e.t;
    o.distance = 25.0;
    o.x = e.x + 25.0;
    o.vx = 10.0;
    t.others.push_back(o);
  }
  t.collisions.push_back({1.5, 30, 2, "vehicle", 3.5});
  t.lane_invasions.push_back({0.8, 16, "broken", 0, 1});
  t.faults.push_back({0.5, "loss", 0.05, true, "5%"});
  t.faults.push_back({1.9, "loss", 0.05, false, "5%"});
  return t;
}

TEST(RunTrace, CsvRoundTrip) {
  const RunTrace original = make_rich_trace();
  const RunTrace parsed = RunTrace::from_csv(original.ego_csv(), original.others_csv(),
                                             original.events_csv());
  ASSERT_EQ(parsed.ego.size(), original.ego.size());
  EXPECT_NEAR(parsed.ego[10].x, original.ego[10].x, 1e-6);
  EXPECT_NEAR(parsed.ego[10].steer, original.ego[10].steer, 1e-6);
  ASSERT_EQ(parsed.others.size(), original.others.size());
  EXPECT_EQ(parsed.others[0].role, "lead");
  EXPECT_NEAR(parsed.others[0].distance, 25.0, 1e-6);
  ASSERT_EQ(parsed.collisions.size(), 1u);
  EXPECT_EQ(parsed.collisions[0].other_kind, "vehicle");
  ASSERT_EQ(parsed.lane_invasions.size(), 1u);
  EXPECT_EQ(parsed.lane_invasions[0].marking, "broken");
  ASSERT_EQ(parsed.faults.size(), 2u);
  EXPECT_EQ(parsed.faults[0].label, "5%");
  EXPECT_TRUE(parsed.faults[0].added);
  EXPECT_FALSE(parsed.faults[1].added);
}

TEST(RunTrace, SteeringSeriesExtraction) {
  const RunTrace t = make_rich_trace();
  const auto steer = t.steering_series();
  const auto time = t.time_series();
  ASSERT_EQ(steer.size(), t.ego.size());
  ASSERT_EQ(time.size(), t.ego.size());
  EXPECT_DOUBLE_EQ(steer[20], 0.2);
  EXPECT_NEAR(t.duration_s(), 49 * 0.05, 1e-9);
}

}  // namespace
}  // namespace rdsim::trace
