#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

namespace rdsim::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

void append_metadata(std::string& out, std::string_view what, int pid, int tid,
                     std::string_view name, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"ph":"M","name":")";
  out += what;
  out += R"(","pid":)" + std::to_string(pid);
  out += R"(,"tid":)" + std::to_string(tid);
  out += R"(,"args":{"name":")";
  append_escaped(out, name);
  out += R"("}})";
}

struct NormalizedSpan {
  std::int64_t begin_us{0};
  std::int64_t end_us{0};
};

/// Greedy interval partitioning: spans sorted by begin are packed into the
/// first sub-thread whose previous span has already ended, so spans within a
/// sub-thread never overlap and B/E events stay properly nested.
std::vector<std::vector<NormalizedSpan>> partition_sub_threads(
    std::vector<NormalizedSpan> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const NormalizedSpan& a, const NormalizedSpan& b) {
              return a.begin_us != b.begin_us ? a.begin_us < b.begin_us
                                              : a.end_us < b.end_us;
            });
  std::vector<std::vector<NormalizedSpan>> sub_threads;
  for (const NormalizedSpan& span : spans) {
    bool placed = false;
    for (std::vector<NormalizedSpan>& lane : sub_threads) {
      if (lane.back().end_us <= span.begin_us) {
        lane.push_back(span);
        placed = true;
        break;
      }
    }
    if (!placed) sub_threads.push_back({span});
  }
  return sub_threads;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceTrack>& tracks) {
  std::string events;
  bool first = true;

  int pid = 0;
  for (const TraceTrack& track : tracks) {
    ++pid;
    append_metadata(events, "process_name", pid, 0, track.name, first);
    if (track.context == nullptr) continue;

    // Group by (metric name, lane). std::map keeps thread order stable and
    // sorted regardless of the order events were recorded in.
    std::map<std::pair<std::string, std::uint32_t>, std::vector<NormalizedSpan>>
        span_groups;
    for (const Span& span : track.context->spans()) {
      NormalizedSpan n;
      n.begin_us = span.begin_us;
      n.end_us = std::max(span.end_us, span.begin_us);  // clamp open spans
      span_groups[{metric_def(span.metric).name, span.lane}].push_back(n);
    }
    std::map<std::pair<std::string, std::uint32_t>, std::vector<std::int64_t>>
        instant_groups;
    for (const Instant& ev : track.context->instants()) {
      instant_groups[{metric_def(ev.metric).name, ev.lane}].push_back(ev.ts_us);
    }

    int tid = 0;
    for (auto& [key, spans] : span_groups) {
      const auto sub_threads = partition_sub_threads(std::move(spans));
      for (std::size_t sub = 0; sub < sub_threads.size(); ++sub) {
        ++tid;
        std::string thread_name = key.first + "#" + std::to_string(key.second);
        if (sub > 0) thread_name += "/" + std::to_string(sub);
        append_metadata(events, "thread_name", pid, tid, thread_name, first);
        for (const NormalizedSpan& span : sub_threads[sub]) {
          events += ",\n";
          events += R"({"ph":"B","name":")";
          append_escaped(events, key.first);
          events += R"(","pid":)" + std::to_string(pid);
          events += R"(,"tid":)" + std::to_string(tid);
          events += R"(,"ts":)" + std::to_string(span.begin_us) + "}";
          events += ",\n";
          events += R"({"ph":"E","name":")";
          append_escaped(events, key.first);
          events += R"(","pid":)" + std::to_string(pid);
          events += R"(,"tid":)" + std::to_string(tid);
          events += R"(,"ts":)" + std::to_string(span.end_us) + "}";
        }
      }
    }
    for (auto& [key, stamps] : instant_groups) {
      ++tid;
      std::sort(stamps.begin(), stamps.end());
      append_metadata(events, "thread_name", pid, tid,
                      key.first + "#" + std::to_string(key.second), first);
      for (const std::int64_t ts : stamps) {
        events += ",\n";
        events += R"({"ph":"i","s":"t","name":")";
        append_escaped(events, key.first);
        events += R"(","pid":)" + std::to_string(pid);
        events += R"(,"tid":)" + std::to_string(tid);
        events += R"(,"ts":)" + std::to_string(ts) + "}";
      }
    }
  }

  std::string out = "{\"traceEvents\":[\n";
  out += events;
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceTrack>& tracks) {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) {
    throw std::runtime_error{"obs: cannot open trace file: " + path};
  }
  file << chrome_trace_json(tracks);
  if (!file.good()) {
    throw std::runtime_error{"obs: failed writing trace file: " + path};
  }
}

}  // namespace rdsim::obs
