// The ONLY translation unit that registers first-party metrics (enforced by
// tools/lint_obs.py). Registration runs during static initialization, before
// main() and before the thread pool exists, so ids are stable process-wide
// and hot paths never touch the registry lock.
#include "obs/catalog.hpp"

namespace rdsim::obs::metric {

namespace {

// Frame ages and staleness live in roughly [5 ms, 2 s] under the paper's
// disturbance grid; a 1 ms .. 10 s log-scale layout brackets that with
// headroom for freeze-heavy runs.
HistogramSpec millis_spec() {
  HistogramSpec spec;
  spec.min_value = 1.0;
  spec.max_value = 1e4;
  spec.bucket_count = 48;
  return spec;
}

}  // namespace

// ---- qdisc layer ----
const MetricId kFifoEnqueued =
    register_counter("qdisc.fifo.enqueued", "Packets accepted by FifoQdisc");
const MetricId kFifoDequeued =
    register_counter("qdisc.fifo.dequeued", "Packets released by FifoQdisc");
const MetricId kFifoDroppedOverlimit = register_counter(
    "qdisc.fifo.dropped_overlimit", "Packets tail-dropped at the FIFO limit");
const MetricId kFifoDepth =
    register_gauge("qdisc.fifo.depth", "FIFO backlog after each op", "packets");
const MetricId kNetemEnqueued =
    register_counter("qdisc.netem.enqueued", "Packets accepted by NetemQdisc");
const MetricId kNetemDequeued =
    register_counter("qdisc.netem.dequeued", "Packets released by NetemQdisc");
const MetricId kNetemDroppedLoss = register_counter(
    "qdisc.netem.dropped_loss", "Packets dropped by the loss model");
const MetricId kNetemDroppedOverlimit = register_counter(
    "qdisc.netem.dropped_overlimit", "Packets tail-dropped at the netem limit");
const MetricId kNetemDuplicated =
    register_counter("qdisc.netem.duplicated", "Packets duplicated by netem");
const MetricId kNetemCorrupted =
    register_counter("qdisc.netem.corrupted", "Packets corrupted by netem");
const MetricId kNetemReordered =
    register_counter("qdisc.netem.reordered", "Packets sent ahead of queue order");
const MetricId kNetemDepth = register_gauge(
    "qdisc.netem.depth", "Netem backlog after each op", "packets");
const MetricId kTbfEnqueued =
    register_counter("qdisc.tbf.enqueued", "Packets accepted by TbfQdisc");
const MetricId kTbfDequeued =
    register_counter("qdisc.tbf.dequeued", "Packets released by TbfQdisc");
const MetricId kTbfDroppedOverlimit = register_counter(
    "qdisc.tbf.dropped_overlimit", "Packets tail-dropped at the TBF limit");
const MetricId kTbfDepth =
    register_gauge("qdisc.tbf.depth", "TBF backlog after each op", "packets");

// ---- payload pool ----
const MetricId kPoolFresh = register_counter(
    "pool.fresh", "Payload acquisitions that fell back to the heap");
const MetricId kPoolReused = register_counter(
    "pool.reused", "Payload acquisitions served from the freelist");
const MetricId kPoolRecycled =
    register_counter("pool.recycled", "Released payload buffers kept for reuse");
const MetricId kPoolDiscarded = register_counter(
    "pool.discarded", "Released payload buffers dropped (bucket full or undersized)");

// ---- reliable stream ----
const MetricId kStreamSegmentsTx = register_counter(
    "stream.segments_tx", "DATA segment transmissions (incl. retransmits)");
const MetricId kStreamSegmentsRx =
    register_counter("stream.segments_rx", "DATA segments decoded on arrival");
const MetricId kStreamRetransmittedSegments = register_counter(
    "stream.segments_retransmitted", "DATA transmissions that were retries");
const MetricId kStreamRtoEvents =
    register_counter("stream.rto_events", "Retransmission-timeout firings");
const MetricId kStreamFastRetransmits = register_counter(
    "stream.fast_retransmits", "Retransmits triggered by duplicate ACKs");
const MetricId kStreamDupAcks =
    register_counter("stream.dup_acks", "Duplicate cumulative ACKs received");
const MetricId kStreamStaleSegments = register_counter(
    "stream.stale_segments", "Received segments at or below the cumulative ack");
const MetricId kStreamHolStallMicros = register_counter(
    "stream.hol_stall_us",
    "Virtual microseconds with delivery blocked head-of-line", "us");
const MetricId kStreamHolStallSpan = register_counter(
    "stream.hol_stall_windows", "Distinct head-of-line stall windows");

// ---- fault injection ----
const MetricId kFaultsInjected =
    register_counter("fault.injected", "Network disturbances activated");
const MetricId kFaultWindowSpan =
    register_counter("fault.windows", "Disturbance windows traced");

// ---- operator / driver path ----
const MetricId kOpFramesDisplayed =
    register_counter("operator.frames_displayed", "Frames shown to the operator");
const MetricId kOpFramesSuperseded = register_counter(
    "operator.frames_superseded", "Frames replaced before display");
const MetricId kOpFrameAgeMillis = register_histogram(
    "operator.frame_age_ms", "Capture-to-display age of displayed frames", "ms",
    millis_spec());
const MetricId kOpStalenessMillis = register_histogram(
    "operator.staleness_ms", "Age of the displayed frame at each poll", "ms",
    millis_spec());
const MetricId kOpFreezeSpan =
    register_counter("operator.freezes", "Display freeze episodes traced");

// ---- simulation ----
const MetricId kSimWorldStep =
    register_timer("sim.world_step", "Wall time inside World::step");
const MetricId kSimCollision =
    register_counter("sim.collisions", "Collision events sensed");

// ---- mitigation ----
const MetricId kMitStateTransitions = register_counter(
    "mitigate.state_transitions", "DegradationGovernor state changes");
const MetricId kMitState = register_gauge(
    "mitigate.state", "Current governor LinkState (0=NOMINAL..3=LINK_LOSS)",
    "state");
const MetricId kMitInterventions = register_counter(
    "mitigate.interventions", "Outgoing commands the governor modified");
const MetricId kMitWatchdogFired = register_counter(
    "mitigate.watchdog_fired", "Vehicle-side command-stale deadline crossings");
const MetricId kMitMrmActivations = register_counter(
    "mitigate.mrm_activations", "Minimal-risk maneuvers started");
const MetricId kMitStateSpan = register_counter(
    "mitigate.state_windows", "Traced non-NOMINAL governor windows");
const MetricId kMitMrmSpan =
    register_counter("mitigate.mrm_windows", "Traced MRM windows");

// ---- teleop tick phases ----
const MetricId kPhaseStep =
    register_timer("teleop.phase.step", "Wall time of a whole session tick");
const MetricId kPhasePhysics =
    register_timer("teleop.phase.physics", "Wall time in the physics sub-loop");
const MetricId kPhaseFaults = register_timer(
    "teleop.phase.faults", "Wall time in fault-plan updates and injection");
const MetricId kPhaseVideo =
    register_timer("teleop.phase.video", "Wall time in the video pipeline");
const MetricId kPhaseRouter =
    register_timer("teleop.phase.router", "Wall time in packet routing");
const MetricId kPhaseCommands =
    register_timer("teleop.phase.commands", "Wall time in the command pipeline");
const MetricId kPhaseMitigate = register_timer(
    "teleop.phase.mitigate", "Wall time in link estimation and the governor");

// ---- per-run rollup ----
const MetricId kRunWall =
    register_timer("run.wall", "Wall time of one full teleop run");

}  // namespace rdsim::obs::metric
