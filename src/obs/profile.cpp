#include "obs/profile.hpp"

#include <chrono>

namespace rdsim::obs {

std::uint64_t wallclock_ns() {
  // Profiling-only wall clock; see the header for why this is exempt from
  // the repository's no-wall-clock rule.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();  // lint:allow(wall-clock)
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace rdsim::obs
