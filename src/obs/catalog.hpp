// The metric-name catalog: every first-party instrumentation id, declared
// here and registered exactly once in catalog.cpp. Hot paths refer to these
// ids only — never to name strings — which is what tools/lint_obs.py
// enforces (`metric-registration` / `hot-path-literal` rules). The full
// metric reference with units and semantics lives in docs/observability.md.
#pragma once

#include "obs/metrics.hpp"

namespace rdsim::obs::metric {

// ---- qdisc layer (netem / tbf / pfifo) ----
extern const MetricId kFifoEnqueued;
extern const MetricId kFifoDequeued;
extern const MetricId kFifoDroppedOverlimit;
extern const MetricId kFifoDepth;
extern const MetricId kNetemEnqueued;
extern const MetricId kNetemDequeued;
extern const MetricId kNetemDroppedLoss;
extern const MetricId kNetemDroppedOverlimit;
extern const MetricId kNetemDuplicated;
extern const MetricId kNetemCorrupted;
extern const MetricId kNetemReordered;
extern const MetricId kNetemDepth;
extern const MetricId kTbfEnqueued;
extern const MetricId kTbfDequeued;
extern const MetricId kTbfDroppedOverlimit;
extern const MetricId kTbfDepth;

// ---- payload pool (per-channel buffer freelist) ----
extern const MetricId kPoolFresh;       ///< acquisitions that heap-allocated
extern const MetricId kPoolReused;      ///< acquisitions served from the freelist
extern const MetricId kPoolRecycled;    ///< released buffers kept for reuse
extern const MetricId kPoolDiscarded;   ///< released buffers dropped (cap/odd size)

// ---- reliable stream (TCP analogue) ----
extern const MetricId kStreamSegmentsTx;          ///< every DATA transmission
extern const MetricId kStreamSegmentsRx;          ///< every decoded DATA arrival
extern const MetricId kStreamRetransmittedSegments;
extern const MetricId kStreamRtoEvents;
extern const MetricId kStreamFastRetransmits;
extern const MetricId kStreamDupAcks;
extern const MetricId kStreamStaleSegments;
extern const MetricId kStreamHolStallMicros;      ///< virtual µs blocked head-of-line
extern const MetricId kStreamHolStallSpan;        ///< traced stall windows

// ---- fault injection ----
extern const MetricId kFaultsInjected;
extern const MetricId kFaultWindowSpan;           ///< traced active-fault windows

// ---- operator / driver path ----
extern const MetricId kOpFramesDisplayed;
extern const MetricId kOpFramesSuperseded;
extern const MetricId kOpFrameAgeMillis;          ///< capture-to-display age
extern const MetricId kOpStalenessMillis;         ///< displayed-frame age per poll
extern const MetricId kOpFreezeSpan;              ///< traced display freezes

// ---- simulation ----
extern const MetricId kSimWorldStep;              ///< wall time in World::step
extern const MetricId kSimCollision;              ///< instant collision markers

// ---- mitigation (rdsim::mitigate) ----
extern const MetricId kMitStateTransitions;       ///< governor state changes
extern const MetricId kMitState;                  ///< current LinkState (gauge)
extern const MetricId kMitInterventions;          ///< commands the governor shaped
extern const MetricId kMitWatchdogFired;          ///< command-stale deadline crossings
extern const MetricId kMitMrmActivations;         ///< minimal-risk maneuvers started
extern const MetricId kMitStateSpan;              ///< traced non-NOMINAL windows (lane = state)
extern const MetricId kMitMrmSpan;                ///< traced MRM windows

// ---- teleop session tick phases (wall time) ----
extern const MetricId kPhaseStep;
extern const MetricId kPhasePhysics;
extern const MetricId kPhaseFaults;
extern const MetricId kPhaseVideo;
extern const MetricId kPhaseRouter;
extern const MetricId kPhaseCommands;
extern const MetricId kPhaseMitigate;

// ---- per-run rollup ----
extern const MetricId kRunWall;                   ///< wall time of a whole run

}  // namespace rdsim::obs::metric
