// RAII scoped wall-clock timers.
//
// This is the ONE place in src/ where a wall clock is legitimate: profiling
// where real time goes inside a tick. The measured nanosecond values are
// inherently nondeterministic — they never feed the simulation, a hash, or
// any trace keyed to the virtual clock; they only accumulate into the
// thread-local obs::Context as (total_ns, count) pairs whose *structure*
// (which timers exist, how per-run cells merge into the campaign rollup) is
// deterministic and worker-count independent.
//
// A ScopedTimer latches Context::current() at construction: zero clock reads
// happen when no context is installed, which is what keeps the disabled-path
// overhead at a TLS load plus a branch.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace rdsim::obs {

/// Monotonic wall-clock nanoseconds (for profiling only — never sim logic).
std::uint64_t wallclock_ns();

class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId id) : context_{Context::current()}, id_{id} {
    if (context_ != nullptr) start_ns_ = wallclock_ns();
  }

  ~ScopedTimer() {
    if (context_ != nullptr) {
      context_->timer_add(id_, wallclock_ns() - start_ns_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Context* context_;
  MetricId id_;
  std::uint64_t start_ns_{0};
};

}  // namespace rdsim::obs
