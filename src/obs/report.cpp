#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/trace_export.hpp"
#include "util/thread_annotations.hpp"

namespace rdsim::obs {

namespace {

constexpr double kNanosPerMilli = 1e6;

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

/// Emit `context`'s metrics as one JSON object, keys in metric-name order.
/// Metric ids are registration-ordered, so gather (name, payload) pairs
/// first and sort by name for a stable export independent of link order.
void append_metrics_object(std::string& out, const Context& context) {
  std::vector<std::pair<std::string, std::string>> entries;
  const std::size_t n = metric_count();
  for (MetricId id = 0; id < n; ++id) {
    const MetricDef& def = metric_def(id);
    std::string payload;
    switch (def.kind) {
      case MetricKind::kCounter: {
        const std::uint64_t value = context.counter(id);
        if (value == 0) continue;
        payload = std::to_string(value);
        break;
      }
      case MetricKind::kGauge: {
        const GaugeCell* cell = context.gauge(id);
        if (cell == nullptr) continue;
        payload = "{\"last\":" + format_double(cell->last) +
                  ",\"min\":" + format_double(cell->min) +
                  ",\"max\":" + format_double(cell->max) +
                  ",\"mean\":" + format_double(cell->mean()) +
                  ",\"count\":" + std::to_string(cell->count) + "}";
        break;
      }
      case MetricKind::kHistogram: {
        const HistogramCell* cell = context.histogram(id);
        if (cell == nullptr) continue;
        payload = "{\"count\":" + std::to_string(cell->count) +
                  ",\"sum\":" + format_double(cell->sum) +
                  ",\"p50\":" + format_double(histogram_quantile(def, *cell, 0.5)) +
                  ",\"p90\":" + format_double(histogram_quantile(def, *cell, 0.9)) +
                  ",\"p99\":" + format_double(histogram_quantile(def, *cell, 0.99)) +
                  ",\"underflow\":" + std::to_string(cell->counts.front()) +
                  ",\"overflow\":" + std::to_string(cell->counts.back()) + "}";
        break;
      }
      case MetricKind::kTimer: {
        const TimerCell* cell = context.timer(id);
        if (cell == nullptr) continue;
        const double total_millis =
            static_cast<double>(cell->total_ns) / kNanosPerMilli;
        payload = "{\"total_ms\":" + format_double(total_millis) +
                  ",\"count\":" + std::to_string(cell->count) + "}";
        break;
      }
    }
    entries.emplace_back(def.name, std::move(payload));
  }
  std::sort(entries.begin(), entries.end());

  out += "{";
  bool first = true;
  for (const auto& [name, payload] : entries) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"";
    append_escaped(out, name);
    out += "\": " + payload;
  }
  out += first ? "}" : "\n  }";
}

}  // namespace

void CampaignCollector::submit_run(std::string_view run_id, Context context) {
  const util::MutexLock lock{mutex_};
  auto [it, inserted] = runs_.try_emplace(std::string{run_id});
  if (inserted) {
    it->second = std::move(context);
  } else {
    it->second.merge_from(context);
  }
}

Context CampaignCollector::merged() const {
  const util::MutexLock lock{mutex_};
  Context total;
  for (const auto& [run_id, context] : runs_) total.merge_from(context);
  return total;
}

std::string CampaignCollector::report_json() const {
  const Context total = merged();
  const util::MutexLock lock{mutex_};
  std::string out = "{\n";
  out += "  \"schema\": \"rdsim.obs.report/1\",\n";
  out += "  \"compiled_in\": " + std::string{compiled_in() ? "true" : "false"} +
         ",\n";
  out += "  \"runs\": " + std::to_string(runs_.size()) + ",\n";
  out += "  \"campaign\": ";
  append_metrics_object(out, total);
  out += ",\n  \"per_run\": {";
  bool first = true;
  for (const auto& [run_id, context] : runs_) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"";
    append_escaped(out, run_id);
    out += "\": ";
    append_metrics_object(out, context);
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

void CampaignCollector::write_report(const std::string& path) const {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) {
    throw std::runtime_error{"obs: cannot open report file: " + path};
  }
  file << report_json();
  if (!file.good()) {
    throw std::runtime_error{"obs: failed writing report file: " + path};
  }
}

void CampaignCollector::write_trace(const std::string& path) const {
  std::vector<TraceTrack> tracks;
  {
    const util::MutexLock lock{mutex_};
    tracks.reserve(runs_.size());
    for (const auto& [run_id, context] : runs_) {
      tracks.push_back(TraceTrack{run_id, &context});
    }
  }
  write_chrome_trace(path, tracks);
}

}  // namespace rdsim::obs
