#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "util/thread_annotations.hpp"
#include "util/time.hpp"

namespace rdsim::obs {

namespace {

struct RegistryState {
  util::Mutex mutex;
  /// deque: references stay valid on append
  std::deque<MetricDef> defs RDSIM_GUARDED_BY(mutex);
};

RegistryState& registry() {
  static RegistryState state;
  return state;
}

std::atomic<bool> g_enabled{true};

#if RDSIM_OBS
thread_local Context* t_current = nullptr;
#endif

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

/// Index of `name` in state.defs, or defs.size() when absent.
MetricId find_def(const RegistryState& state, std::string_view name)
    RDSIM_REQUIRES(state.mutex) {
  for (std::size_t i = 0; i < state.defs.size(); ++i) {
    if (state.defs[i].name == name) return static_cast<MetricId>(i);
  }
  return static_cast<MetricId>(state.defs.size());
}

MetricId register_metric(MetricKind kind, std::string_view name,
                         std::string_view help, std::string_view unit,
                         std::vector<double> bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument{"obs: metric name must match [a-z0-9_.]+: '" +
                                std::string{name} + "'"};
  }
  RegistryState& state = registry();
  const util::MutexLock lock{state.mutex};
  if (find_def(state, name) != state.defs.size()) {
    throw std::logic_error{"obs: metric '" + std::string{name} +
                           "' registered twice"};
  }
  MetricDef def;
  def.kind = kind;
  def.name = std::string{name};
  def.help = std::string{help};
  def.unit = std::string{unit};
  def.bounds = std::move(bounds);
  state.defs.push_back(std::move(def));
  return static_cast<MetricId>(state.defs.size() - 1);
}

}  // namespace

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kTimer: return "timer";
  }
  return "unknown";
}

MetricId register_counter(std::string_view name, std::string_view help,
                          std::string_view unit) {
  return register_metric(MetricKind::kCounter, name, help, unit, {});
}

MetricId register_gauge(std::string_view name, std::string_view help,
                        std::string_view unit) {
  return register_metric(MetricKind::kGauge, name, help, unit, {});
}

MetricId register_timer(std::string_view name, std::string_view help) {
  return register_metric(MetricKind::kTimer, name, help, "ns", {});
}

MetricId register_histogram(std::string_view name, std::string_view help,
                            std::string_view unit, HistogramSpec spec) {
  if (!(spec.min_value > 0.0) || !(spec.max_value > spec.min_value) ||
      spec.bucket_count == 0) {
    throw std::invalid_argument{
        "obs: histogram spec needs 0 < min < max and >= 1 bucket"};
  }
  // Geometric boundaries; the first and last are pinned exactly so
  // underflow/overflow classification never depends on std::pow rounding.
  std::vector<double> bounds(spec.bucket_count + 1);
  const double n = static_cast<double>(spec.bucket_count);
  for (std::size_t i = 1; i + 1 < bounds.size(); ++i) {
    bounds[i] = spec.min_value * std::pow(spec.max_value / spec.min_value,
                                          static_cast<double>(i) / n);
  }
  bounds.front() = spec.min_value;
  bounds.back() = spec.max_value;
  return register_metric(MetricKind::kHistogram, name, help, unit,
                         std::move(bounds));
}

std::size_t metric_count() {
  RegistryState& state = registry();
  const util::MutexLock lock{state.mutex};
  return state.defs.size();
}

const MetricDef& metric_def(MetricId id) {
  RegistryState& state = registry();
  const util::MutexLock lock{state.mutex};
  // The deque is append-only: the returned reference stays valid after the
  // lock is released, even while other threads keep registering.
  return state.defs.at(id);
}

MetricId find_metric(std::string_view name) {
  RegistryState& state = registry();
  const util::MutexLock lock{state.mutex};
  return find_def(state, name);
}

void set_enabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

namespace {

template <typename T>
T& slot(std::vector<T>& cells, MetricId id) {
  if (cells.size() <= id) cells.resize(id + 1);
  return cells[id];
}

template <typename T>
const T* slot_if(const std::vector<T>& cells, MetricId id) {
  return id < cells.size() ? &cells[id] : nullptr;
}

}  // namespace

void Context::count(MetricId id, std::uint64_t delta) {
  slot(counters_, id) += delta;
}

void Context::gauge_set(MetricId id, double value) {
  GaugeCell& cell = slot(gauges_, id);
  if (cell.count == 0) {
    cell.min = value;
    cell.max = value;
  } else {
    cell.min = std::min(cell.min, value);
    cell.max = std::max(cell.max, value);
  }
  cell.last = value;
  cell.sum += value;
  ++cell.count;
}

void Context::observe(MetricId id, double value) {
  HistogramCell& cell = slot(histograms_, id);
  if (cell.def == nullptr) {
    cell.def = &metric_def(id);
    cell.counts.assign(cell.def->bounds.size() + 1, 0);
  }
  ++cell.counts[histogram_bucket(*cell.def, value)];
  ++cell.count;
  cell.sum += value;
}

void Context::timer_add(MetricId id, std::uint64_t ns) {
  TimerCell& cell = slot(timers_, id);
  cell.total_ns += ns;
  ++cell.count;
}

std::size_t Context::span_open(MetricId id, util::TimePoint begin,
                               std::uint32_t lane) {
  Span span;
  span.metric = id;
  span.lane = lane;
  span.begin_us = begin.count_micros();
  span.end_us = span.begin_us - 1;  // open until span_close
  spans_.push_back(span);
  return spans_.size() - 1;
}

void Context::span_close(std::size_t handle, util::TimePoint end) {
  if (handle >= spans_.size()) return;
  spans_[handle].end_us = end.count_micros();
}

void Context::instant(MetricId id, util::TimePoint ts, std::uint32_t lane) {
  Instant ev;
  ev.metric = id;
  ev.lane = lane;
  ev.ts_us = ts.count_micros();
  instants_.push_back(ev);
}

std::uint64_t Context::counter(MetricId id) const {
  const std::uint64_t* cell = slot_if(counters_, id);
  return cell != nullptr ? *cell : 0;
}

const GaugeCell* Context::gauge(MetricId id) const {
  const GaugeCell* cell = slot_if(gauges_, id);
  return cell != nullptr && cell->count > 0 ? cell : nullptr;
}

const HistogramCell* Context::histogram(MetricId id) const {
  const HistogramCell* cell = slot_if(histograms_, id);
  return cell != nullptr && !cell->counts.empty() ? cell : nullptr;
}

const TimerCell* Context::timer(MetricId id) const {
  const TimerCell* cell = slot_if(timers_, id);
  return cell != nullptr && cell->count > 0 ? cell : nullptr;
}

bool Context::empty() const {
  const auto nonzero = [](std::uint64_t v) { return v != 0; };
  if (std::any_of(counters_.begin(), counters_.end(), nonzero)) return false;
  for (const GaugeCell& g : gauges_) {
    if (g.count > 0) return false;
  }
  for (const HistogramCell& h : histograms_) {
    if (h.count > 0) return false;
  }
  for (const TimerCell& t : timers_) {
    if (t.count > 0) return false;
  }
  return spans_.empty() && instants_.empty();
}

void Context::merge_from(const Context& other) {
  if (counters_.size() < other.counters_.size()) {
    counters_.resize(other.counters_.size());
  }
  for (std::size_t i = 0; i < other.counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }

  if (gauges_.size() < other.gauges_.size()) gauges_.resize(other.gauges_.size());
  for (std::size_t i = 0; i < other.gauges_.size(); ++i) {
    const GaugeCell& b = other.gauges_[i];
    if (b.count == 0) continue;
    GaugeCell& a = gauges_[i];
    if (a.count == 0) {
      a = b;
      continue;
    }
    a.min = std::min(a.min, b.min);
    a.max = std::max(a.max, b.max);
    a.sum += b.sum;
    a.count += b.count;
    a.last = b.last;
  }

  if (histograms_.size() < other.histograms_.size()) {
    histograms_.resize(other.histograms_.size());
  }
  for (std::size_t i = 0; i < other.histograms_.size(); ++i) {
    const HistogramCell& b = other.histograms_[i];
    if (b.counts.empty()) continue;
    HistogramCell& a = histograms_[i];
    if (a.def == nullptr) a.def = b.def;
    if (a.counts.size() < b.counts.size()) a.counts.resize(b.counts.size());
    for (std::size_t k = 0; k < b.counts.size(); ++k) a.counts[k] += b.counts[k];
    a.count += b.count;
    a.sum += b.sum;
  }

  if (timers_.size() < other.timers_.size()) timers_.resize(other.timers_.size());
  for (std::size_t i = 0; i < other.timers_.size(); ++i) {
    timers_[i].total_ns += other.timers_[i].total_ns;
    timers_[i].count += other.timers_[i].count;
  }

  spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
  instants_.insert(instants_.end(), other.instants_.begin(), other.instants_.end());
}

Context* Context::current() {
#if RDSIM_OBS
  return t_current;
#else
  return nullptr;
#endif
}

ContextScope::ContextScope(Context* context) {
#if RDSIM_OBS
  previous_ = t_current;
  t_current = enabled() ? context : nullptr;
#else
  (void)context;
#endif
}

ContextScope::~ContextScope() {
#if RDSIM_OBS
  t_current = previous_;
#endif
}

std::size_t histogram_bucket(const MetricDef& def, double value) {
  const std::vector<double>& bounds = def.bounds;
  if (!(value >= bounds.front())) return 0;  // below min, or NaN
  if (value >= bounds.back()) return bounds.size();
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

double histogram_quantile(const MetricDef& def, const HistogramCell& cell,
                          double q) {
  if (cell.count == 0 || cell.counts.empty()) return 0.0;
  const double clamped_q = std::min(std::max(q, 0.0), 1.0);
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(clamped_q * static_cast<double>(cell.count))));
  std::uint64_t cumulative = 0;
  for (std::size_t bucket = 0; bucket < cell.counts.size(); ++bucket) {
    cumulative += cell.counts[bucket];
    if (cumulative >= rank) {
      if (bucket == 0) return def.bounds.front();
      const std::size_t bound = std::min(bucket, def.bounds.size() - 1);
      return def.bounds[bound];
    }
  }
  return def.bounds.back();
}

}  // namespace rdsim::obs
