// Metrics registry and per-run collection context.
//
// Metric *identity* is global and static: register_counter() & friends
// append to a process-wide registry (names unique, registration happens in
// obs/catalog.cpp for all first-party instrumentation — enforced by
// tools/lint_obs.py) and hand back a small integer MetricId. Metric *values*
// live in Context objects: one per observed unit of work (one teleop run in
// the campaign harness), installed thread-locally via ContextScope so hot
// paths reach it with a single TLS load. This split is what makes
// aggregation worker-count independent: each run accumulates into its own
// context on whatever pool thread executes it, and the campaign collector
// merges the finished contexts in run-id order, never completion order.
//
// Everything here is deterministic given deterministic inputs: histograms
// use fixed log-scale buckets (no adaptive resizing), merges are elementwise
// integer adds (associative and commutative), and exports iterate metrics in
// sorted-name order — see docs/observability.md.
#pragma once

#ifndef RDSIM_OBS
#define RDSIM_OBS 1
#endif

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace rdsim::obs {

using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram, kTimer };

std::string_view to_string(MetricKind kind);

/// Log-scale bucket layout: `bucket_count` geometric buckets spanning
/// [min_value, max_value), plus an underflow bucket (index 0, values below
/// min_value — NaN included) and an overflow bucket (last index, values at or
/// above max_value).
struct HistogramSpec {
  double min_value{1e-3};
  double max_value{1e4};
  std::size_t bucket_count{48};
};

struct MetricDef {
  MetricKind kind{MetricKind::kCounter};
  std::string name;
  std::string help;
  std::string unit;
  /// Histogram bucket boundaries (size bucket_count + 1; bounds.front() ==
  /// min_value and bounds.back() == max_value exactly). Empty for other
  /// kinds.
  std::vector<double> bounds;
};

/// Register a metric. Names must be unique process-wide (std::logic_error on
/// a duplicate) and match [a-z0-9_.]+; they are the stable export identity.
/// Registration is cheap but takes a lock — never call from a hot path; all
/// first-party ids live in obs/catalog.hpp.
MetricId register_counter(std::string_view name, std::string_view help,
                          std::string_view unit = "");
MetricId register_gauge(std::string_view name, std::string_view help,
                        std::string_view unit = "");
MetricId register_timer(std::string_view name, std::string_view help);
MetricId register_histogram(std::string_view name, std::string_view help,
                            std::string_view unit, HistogramSpec spec);

/// Number of metrics registered so far.
std::size_t metric_count();

/// Definition for `id`; throws std::out_of_range for unknown ids.
const MetricDef& metric_def(MetricId id);

/// Id registered under `name`, or metric_count() when unknown.
MetricId find_metric(std::string_view name);

/// Runtime master switch (default on). When off, ContextScope installs no
/// context, so every instrumentation site reduces to a TLS load + branch.
void set_enabled(bool enabled);
bool enabled();

/// True when the instrumentation macros are compiled in (RDSIM_OBS != 0).
constexpr bool compiled_in() { return RDSIM_OBS != 0; }

struct GaugeCell {
  double last{0.0};
  double min{0.0};
  double max{0.0};
  double sum{0.0};
  std::uint64_t count{0};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct TimerCell {
  std::uint64_t total_ns{0};
  std::uint64_t count{0};
};

struct HistogramCell {
  std::vector<std::uint64_t> counts;  ///< size bucket_count + 2 once touched
  std::uint64_t count{0};
  double sum{0.0};
  /// Cached registry entry (stable storage), so the hot observe() path pays
  /// the registry lock once per (context, histogram), not once per sample.
  const MetricDef* def{nullptr};
};

/// One closed (or still-open) virtual-time span. `lane` disambiguates
/// concurrent spans of the same metric (e.g. per stream id); an open span
/// has end_us < begin_us and is clamped to zero length at export.
struct Span {
  MetricId metric{0};
  std::uint32_t lane{0};
  std::int64_t begin_us{0};
  std::int64_t end_us{-1};
};

/// Instant event on the virtual clock.
struct Instant {
  MetricId metric{0};
  std::uint32_t lane{0};
  std::int64_t ts_us{0};
};

/// Sentinel returned by span_open when no span was recorded.
inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

/// Value store for one observed unit of work. Not thread-safe: exactly one
/// thread writes a context at a time (the ContextScope discipline).
class Context {
 public:
  Context() = default;

  // ---- hot-path update API ----
  void count(MetricId id, std::uint64_t delta = 1);
  void gauge_set(MetricId id, double value);
  void observe(MetricId id, double value);
  void timer_add(MetricId id, std::uint64_t ns);
  std::size_t span_open(MetricId id, util::TimePoint begin, std::uint32_t lane = 0);
  void span_close(std::size_t handle, util::TimePoint end);
  void instant(MetricId id, util::TimePoint ts, std::uint32_t lane = 0);

  // ---- read API ----
  std::uint64_t counter(MetricId id) const;
  /// nullptr when the gauge/histogram/timer was never touched in this context.
  const GaugeCell* gauge(MetricId id) const;
  const HistogramCell* histogram(MetricId id) const;
  const TimerCell* timer(MetricId id) const;
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  bool empty() const;

  /// Fold `other` into this context. Counter/histogram/timer merges are
  /// elementwise integer (or order-fixed double) adds — associative and
  /// commutative — so any merge tree over the same shard set yields the same
  /// totals. Gauge `last` keeps the operand that has samples (preferring
  /// `other`); min/max/sum/count combine commutatively. Spans and instants
  /// append in operand order.
  void merge_from(const Context& other);

  /// The context installed on this thread, or nullptr (always nullptr when
  /// observability is compiled out).
  static Context* current();

 private:
  friend class ContextScope;

  std::vector<std::uint64_t> counters_;
  std::vector<GaugeCell> gauges_;
  std::vector<HistogramCell> histograms_;
  std::vector<TimerCell> timers_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
};

/// RAII thread-local installer. Passing nullptr (or constructing while
/// obs::enabled() is false) installs no context, which disables every
/// instrument on this thread for the scope's lifetime. Restores the previous
/// context on destruction, so scopes nest.
class ContextScope {
 public:
  explicit ContextScope(Context* context);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  Context* previous_{nullptr};
};

/// Bucket index in [0, bucket_count + 1] for `value` under `def`'s bounds:
/// 0 = underflow (value < min or NaN), bucket_count + 1 = overflow.
std::size_t histogram_bucket(const MetricDef& def, double value);

/// Quantile by bucket upper bound: the smallest boundary b such that at
/// least ceil(q * count) samples fell in buckets with upper bound <= b.
/// Underflow resolves to bounds.front(), overflow clamps to bounds.back().
/// Returns 0 for an empty cell.
double histogram_quantile(const MetricDef& def, const HistogramCell& cell, double q);

}  // namespace rdsim::obs
