// Chrome trace-event export (the JSON array format Perfetto and
// chrome://tracing load directly). Timestamps are the *virtual* simulation
// clock in microseconds — a trace of what the simulated system did, not of
// where wall time went — so traces are bit-identical across reruns and
// worker counts.
//
// Layout: each TraceTrack becomes one trace "process"; inside it, every
// (metric, lane) pair gets its own "thread" so per-thread timestamps are
// monotone and B/E pairs balance. Spans of one pair that overlap in virtual
// time (e.g. nested disturbance windows) are split greedily across numbered
// sub-threads, because the B/E format cannot represent overlap on a single
// thread.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rdsim::obs {

/// One exported trace process: a name (e.g. the run id) and the context
/// whose spans and instants to emit. The context must outlive the call.
struct TraceTrack {
  std::string name;
  const Context* context{nullptr};
};

/// Serialize `tracks` as a Chrome trace-event JSON object. Deterministic:
/// tracks keep their given order, threads are ordered by (metric name, lane,
/// sub-thread), events by virtual timestamp within each thread. Open spans
/// (never closed) export with zero duration at their begin time.
std::string chrome_trace_json(const std::vector<TraceTrack>& tracks);

/// Write chrome_trace_json(tracks) to `path`; throws std::runtime_error when
/// the file cannot be written.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceTrack>& tracks);

}  // namespace rdsim::obs
