// Campaign-level rollup of per-run observability contexts.
//
// The harness runs one Context per subject run (on whatever pool worker the
// scheduler picked) and submits it here under the run's stable id. The
// collector stores runs in a std::map keyed by that id, so iteration —
// and therefore every merge and every exported report — happens in run-id
// order, never completion order. That is the whole worker-count-independence
// argument: merges are associative/commutative AND applied in a fixed order.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace rdsim::obs {

class CampaignCollector {
 public:
  /// Move `context` in under `run_id`. Thread-safe; empty contexts are kept
  /// (a run that recorded nothing is still a run). A duplicate id folds into
  /// the existing entry via Context::merge_from.
  void submit_run(std::string_view run_id, Context context)
      RDSIM_EXCLUDES(mutex_);

  /// Per-run contexts in run-id order. Not thread-safe against concurrent
  /// submit_run — read after the campaign joins its workers; that contract
  /// is why the deliberately-unlocked access is exempt from the analysis.
  const std::map<std::string, Context>& runs() const
      RDSIM_NO_THREAD_SAFETY_ANALYSIS {
    return runs_;
  }

  /// All runs folded into one context, merging in run-id order.
  Context merged() const RDSIM_EXCLUDES(mutex_);

  std::size_t run_count() const RDSIM_EXCLUDES(mutex_) {
    const util::MutexLock lock{mutex_};
    return runs_.size();
  }

  /// JSON report: campaign-wide totals plus per-run sections, every metric
  /// map sorted by metric name. Shape documented in docs/observability.md.
  std::string report_json() const RDSIM_EXCLUDES(mutex_);

  /// Write report_json() to `path`; throws std::runtime_error on I/O failure.
  void write_report(const std::string& path) const;

  /// Write one Chrome trace with a track per run (run-id order) to `path`.
  void write_trace(const std::string& path) const RDSIM_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, Context> runs_ RDSIM_GUARDED_BY(mutex_);
};

}  // namespace rdsim::obs
