// Campaign-level rollup of per-run observability contexts.
//
// The harness runs one Context per subject run (on whatever pool worker the
// scheduler picked) and submits it here under the run's stable id. The
// collector stores runs in a std::map keyed by that id, so iteration —
// and therefore every merge and every exported report — happens in run-id
// order, never completion order. That is the whole worker-count-independence
// argument: merges are associative/commutative AND applied in a fixed order.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace rdsim::obs {

class CampaignCollector {
 public:
  /// Move `context` in under `run_id`. Thread-safe; empty contexts are kept
  /// (a run that recorded nothing is still a run). A duplicate id folds into
  /// the existing entry via Context::merge_from.
  void submit_run(std::string_view run_id, Context context);

  /// Per-run contexts in run-id order. Not thread-safe against concurrent
  /// submit_run — read after the campaign joins its workers.
  const std::map<std::string, Context>& runs() const { return runs_; }

  /// All runs folded into one context, merging in run-id order.
  Context merged() const;

  std::size_t run_count() const { return runs_.size(); }

  /// JSON report: campaign-wide totals plus per-run sections, every metric
  /// map sorted by metric name. Shape documented in docs/observability.md.
  std::string report_json() const;

  /// Write report_json() to `path`; throws std::runtime_error on I/O failure.
  void write_report(const std::string& path) const;

  /// Write one Chrome trace with a track per run (run-id order) to `path`.
  void write_trace(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Context> runs_;
};

}  // namespace rdsim::obs
