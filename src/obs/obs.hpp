// rdsim::obs — zero-cost-when-disabled observability.
//
// Three layers, all deterministic in *structure* (metric identity, iteration
// order, aggregation order) even where the measured *values* are wall-clock
// noise by nature (profiling timers):
//
//   1. a metrics registry (counters, gauges, fixed-bucket log-scale
//      histograms) with a static catalog of metric names (obs/catalog.hpp) —
//      names are registered exactly once, never concatenated in hot paths;
//   2. RAII scoped wall-clock timers (obs/profile.hpp) accumulating into the
//      thread-local context, merged across util::ThreadPool workers in
//      worker-count-independent order;
//   3. a span/event tracer keyed to the *virtual* simulation clock, exported
//      as Chrome trace-event JSON (obs/trace_export.hpp) loadable in
//      Perfetto.
//
// Two switches gate every instrumentation site:
//
//   - compile time: the RDSIM_OBS macro (default 1; `cmake -DRDSIM_OBS_ENABLED=OFF`
//     defines it to 0 globally). At 0 the RDSIM_OBS_* macros expand to
//     nothing and Context::current() is a constant nullptr.
//   - run time: obs::set_enabled(false) keeps ContextScope from installing a
//     context, and with no context installed every instrumentation site is a
//     single thread-local load plus a predictable branch.
//
// The cardinal rule — enforced by the golden-hash regression suite — is that
// observation NEVER perturbs the simulation: instruments only read sim
// state; they never touch an RNG stream, the virtual clock, or any value
// that feeds check::campaign_hash.
#pragma once

#ifndef RDSIM_OBS
#define RDSIM_OBS 1
#endif

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

// Token pasting for unique RAII timer names.
#define RDSIM_OBS_CONCAT2(a, b) a##b
#define RDSIM_OBS_CONCAT(a, b) RDSIM_OBS_CONCAT2(a, b)

#if RDSIM_OBS

/// Increment a registered counter by `delta` (a no-op without a context).
#define RDSIM_OBS_COUNT(id, delta)                                    \
  do {                                                                \
    if (::rdsim::obs::Context* rdsim_obs_ctx_ =                       \
            ::rdsim::obs::Context::current()) {                       \
      rdsim_obs_ctx_->count((id), (delta));                           \
    }                                                                 \
  } while (0)

/// Record the current value of a registered gauge.
#define RDSIM_OBS_GAUGE_SET(id, value)                                \
  do {                                                                \
    if (::rdsim::obs::Context* rdsim_obs_ctx_ =                       \
            ::rdsim::obs::Context::current()) {                       \
      rdsim_obs_ctx_->gauge_set((id), (value));                       \
    }                                                                 \
  } while (0)

/// Record one sample into a registered histogram.
#define RDSIM_OBS_OBSERVE(id, value)                                  \
  do {                                                                \
    if (::rdsim::obs::Context* rdsim_obs_ctx_ =                       \
            ::rdsim::obs::Context::current()) {                       \
      rdsim_obs_ctx_->observe((id), (value));                         \
    }                                                                 \
  } while (0)

/// RAII wall-clock timer over the rest of the enclosing scope.
#define RDSIM_OBS_TIMER(id) \
  ::rdsim::obs::ScopedTimer RDSIM_OBS_CONCAT(rdsim_obs_timer_, __COUNTER__){(id)}

/// Instant event on the virtual clock (shows as a marker in the trace).
#define RDSIM_OBS_EVENT(id, tp)                                       \
  do {                                                                \
    if (::rdsim::obs::Context* rdsim_obs_ctx_ =                       \
            ::rdsim::obs::Context::current()) {                       \
      rdsim_obs_ctx_->instant((id), (tp));                            \
    }                                                                 \
  } while (0)

#else  // RDSIM_OBS compiled out: the macros vanish entirely.

#define RDSIM_OBS_COUNT(id, delta) ((void)0)
#define RDSIM_OBS_GAUGE_SET(id, value) ((void)0)
#define RDSIM_OBS_OBSERVE(id, value) ((void)0)
#define RDSIM_OBS_TIMER(id) ((void)0)
#define RDSIM_OBS_EVENT(id, tp) ((void)0)

#endif  // RDSIM_OBS
