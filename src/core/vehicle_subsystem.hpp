// Vehicle subsystem (§III.A): owns the simulated world, renders video
// frames for the operator, applies received driving commands, and tracks
// the QoS information (command age) that safety measures can act on.
#pragma once

#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "mitigate/mrm.hpp"
#include "net/packet.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace rdsim::core {

/// Optional safety measure evaluated in the ablation benches. The paper's
/// test setup deliberately ran *without* any such measure (§I: "a test setup
/// without any safety measures to counteract network disturbances"); this
/// hook is the "design loop" extension the methodology is meant to support:
/// when the vehicle has not received a fresh command for `max_command_age`,
/// it ramps in autonomous braking until contact with the operator resumes.
struct SafetyMonitorConfig {
  bool enabled{false};
  units::Seconds max_command_age{0.35};
  double brake_level{0.6};
  units::MetersPerSecond speed_cap{4.0};  ///< degraded-mode crawl speed
};

class VehicleSubsystem {
 public:
  VehicleSubsystem(const RdsConfig& config, sim::Scenario scenario,
                   SafetyMonitorConfig safety = {}, std::uint64_t seed = 1);

  sim::World& world() { return world_; }
  const sim::World& world() const { return world_; }
  sim::ScenarioRuntime& runtime() { return runtime_; }
  const sim::ScenarioRuntime& runtime() const { return runtime_; }

  /// Advance physics by dt. The currently latched command keeps acting.
  void step_physics(units::Seconds dt);

  /// If a video frame is due at `now`, encode it. Frame cadence follows the
  /// configured fps with the 25-30 fps jitter the paper reports.
  struct EncodedFrame {
    net::Payload payload;
    std::uint32_t wire_size{0};
  };
  std::optional<EncodedFrame> maybe_encode_frame(util::TimePoint now);

  /// Apply a received command (latest-wins by sequence number).
  void on_command(const CommandMsg& msg, util::TimePoint now);

  /// Time since the newest applied command was *sent* by the operator —
  /// the vehicle's QoS view of the uplink (§III.A).
  units::Seconds command_age(util::TimePoint now) const;

  std::uint64_t frames_encoded() const { return frames_encoded_; }
  std::uint64_t commands_applied() const { return commands_applied_; }
  std::uint64_t commands_stale() const { return commands_stale_; }
  std::uint64_t safety_activations() const { return safety_activations_; }
  bool safety_engaged() const { return safety_engaged_; }

  /// Arm the vehicle-side command watchdog + MRM controller (rdsim::mitigate).
  /// Never called when mitigation is disabled, keeping disabled runs
  /// bit-identical to builds without the subsystem.
  void enable_mitigation(const mitigate::WatchdogConfig& watchdog);
  /// The armed MRM controller, or nullptr.
  const mitigate::MrmController* mrm() const { return mrm_.get(); }

 private:
  void apply_safety(util::TimePoint now);
  void apply_mrm(util::TimePoint now, units::Seconds dt);

  RdsConfig config_;
  SafetyMonitorConfig safety_;
  sim::World world_;
  sim::ScenarioRuntime runtime_;
  util::Random rng_;

  util::TimePoint next_frame_{};
  std::uint64_t frames_encoded_{0};

  std::uint32_t last_command_seq_{0};
  bool any_command_{false};
  std::int64_t last_command_sent_us_{0};
  sim::VehicleControl latched_control_{};
  std::uint64_t commands_applied_{0};
  std::uint64_t commands_stale_{0};

  bool safety_engaged_{false};
  std::uint64_t safety_activations_{0};

  std::unique_ptr<mitigate::MrmController> mrm_;  ///< null unless mitigating
};

}  // namespace rdsim::core
