// Report builders: regenerate the paper's tables from a campaign result.
//
// Each render_* function returns the table as text; the *_rows/_summary
// functions expose the underlying numbers so tests and benches can assert
// on them. The mask_like_paper options blank exactly the cells the paper
// could not report due to data-collection mistakes (§VI.A), which makes
// side-by-side shape comparison easier.
#pragma once

#include "core/experiment.hpp"
#include "metrics/safety.hpp"
#include "metrics/srr.hpp"
#include "metrics/ttc.hpp"

namespace rdsim::core::report {

/// The Table II/III/IV column labels, in order.
std::vector<std::string> fault_labels();

// ----- Table I: driving-station technical specification -----
std::string render_table1(const StationConfig& station);

// ----- Table II: summary of faults injected -----
struct FaultCountRow {
  std::string subject;
  std::map<std::string, int> counts;  ///< label -> injections
  int total{0};
};
std::vector<FaultCountRow> fault_count_rows(const CampaignResult& campaign);
std::string render_table2(const CampaignResult& campaign);

// ----- Table III: TTC statistics -----
struct TtcRow {
  std::string subject;
  std::optional<metrics::TtcStats> nfi;                         ///< golden run
  std::map<std::string, std::optional<metrics::TtcStats>> cells; ///< per label
};
std::vector<TtcRow> ttc_rows(const CampaignResult& campaign,
                             const metrics::TtcConfig& config = {});
std::string render_table3(const CampaignResult& campaign, bool mask_like_paper = false,
                          const metrics::TtcConfig& config = {});

// ----- Table IV: SRR statistics -----
struct SrrRow {
  std::string subject;
  std::optional<double> nfi;  ///< golden run, rev/min
  std::optional<double> fi;   ///< faulty run, whole
  std::map<std::string, std::optional<double>> cells;
  std::optional<double> avg;  ///< mean of the fault columns
};
std::vector<SrrRow> srr_rows(const CampaignResult& campaign,
                             const metrics::SrrConfig& config = {});
std::string render_table4(const CampaignResult& campaign, bool mask_like_paper = false,
                          const metrics::SrrConfig& config = {});

// ----- §VI.E collision analysis -----
struct CollisionSummary {
  std::size_t included_subjects{0};
  std::size_t golden_subjects_collided{0};
  std::size_t faulty_subjects_collided{0};
  std::size_t golden_total_collisions{0};
  std::size_t faulty_total_collisions{0};
  /// Collisions in the faulty runs by active-fault label ("none" possible).
  std::map<std::string, std::size_t> faulty_by_label;
};
CollisionSummary collision_summary(const CampaignResult& campaign);
std::string render_collision_analysis(const CampaignResult& campaign);

// ----- §VI.F questionnaire -----
std::string render_questionnaire(const CampaignResult& campaign);

// ----- mitigation outcome (rdsim::mitigate ablation) -----
/// Per-subject mitigation columns of the faulty (FI) run: governor state
/// dwell times, command interventions, and MRM episodes. Meaningful only
/// for campaigns run with ExperimentConfig::mitigation.enabled.
struct MitigationRow {
  std::string subject;
  units::Seconds dwell_nominal{};
  units::Seconds dwell_degraded{};
  units::Seconds dwell_impaired{};
  units::Seconds dwell_link_loss{};
  std::uint64_t interventions{0};
  std::uint64_t mrm_activations{0};
  units::Seconds mrm_time{};
  units::Seconds standstill{};  ///< metrics::standstill_time of the FI trace
  std::size_t collisions{0};    ///< FI-run collisions
};
std::vector<MitigationRow> mitigation_rows(const CampaignResult& campaign);
std::string render_mitigation(const CampaignResult& campaign);

/// Side-by-side safety outcome of a mitigated campaign and its unmitigated
/// twin (same seed => identical fault plans, so rows pair exactly).
std::string render_mitigation_ablation(const CampaignResult& baseline,
                                       const CampaignResult& mitigated);

/// The subjects whose steering (Table IV) / lead-velocity (Table III) data
/// the paper lost; used by the masking options.
bool paper_missing_srr(const std::string& subject, bool faulty_run);
bool paper_missing_ttc(const std::string& subject);

}  // namespace rdsim::core::report
