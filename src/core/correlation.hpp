// Questionnaire-performance correlation — the paper's second research
// question (§III, §VII): how to use driving tests during the design phase.
//
// §V.G: "Answers from the questionnaire can be used to correlate the driving
// performance with a RDS setup. For example, if experience with video games
// positively correlates with better performance even in the presence of
// faults, it could be used to influence the remote driver training." The
// paper could not run this analysis (homogeneous subjects, limited time,
// §VI.F); the testbed can.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace rdsim::core {

/// Per-subject scalar features extracted from a campaign.
struct SubjectFeatures {
  std::string subject;
  // Experience (questionnaire questions 1-3).
  double gaming{0.0};             ///< 0/1
  double racing{0.0};             ///< 0/1
  double station_experience{0.0}; ///< 0..2
  // Performance.
  double faulty_srr{0.0};         ///< rev/min over the FI run
  double srr_increase{0.0};       ///< FI minus NFI
  double faulty_collisions{0.0};
  double min_ttc_faulty{0.0};
  double qoe{0.0};
};

std::vector<SubjectFeatures> extract_features(const CampaignResult& campaign);

/// One correlation row: Pearson r between an experience feature and a
/// performance feature across subjects; nullopt when degenerate (e.g. all
/// subjects share the same experience level — the paper's situation).
struct CorrelationRow {
  std::string experience;
  std::string performance;
  std::optional<double> r;
  std::size_t n{0};
};

std::vector<CorrelationRow> correlate(const CampaignResult& campaign);

/// Human-readable report of the full correlation matrix.
std::string render_correlations(const CampaignResult& campaign);

}  // namespace rdsim::core
