#include "core/subjects.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace rdsim::core {

std::vector<SubjectProfile> make_roster(std::uint64_t campaign_seed) {
  std::vector<SubjectProfile> roster;
  roster.reserve(12);

  for (int i = 1; i <= 12; ++i) {
    SubjectProfile s;
    s.index = i;
    s.id = "T" + std::to_string(i);
    // SplitMix sub-seeding: each subject's seed is a pure function of
    // (campaign seed, subject index), with no generator state shared between
    // subjects. Subject i's profile and runs are therefore identical no
    // matter which order — or on which thread — the roster is evaluated,
    // which is what makes the parallel campaign runner bit-identical to the
    // serial one (docs/parallel_campaign.md).
    s.seed = util::splitmix64(campaign_seed ^ util::splitmix64(static_cast<std::uint64_t>(i)));
    util::Random srng{s.seed, /*stream=*/0x726f73746572ULL};

    // Experience attributes drawn to match the §VI.F distribution:
    // 10/11 gaming (one without), 1 recent, 9/11 racing games, 6 with no
    // station experience / 3 a few times / 2 once.
    s.gaming_experience = i != 4;           // one subject without
    s.recent_gaming = i == 9;               // exactly one recent gamer
    s.racing_game_experience = s.gaming_experience && i != 11;
    // §VI.F among the 11 analysed subjects: 6 none, 3 a few times, 2 once.
    // T7 is excluded from analysis, so it can sit in any bucket.
    if (i <= 6) {
      s.station_experience = 0;
    } else if (i <= 10) {
      s.station_experience = 2;
    } else {
      s.station_experience = 1;
    }
    s.left_hand_driving = i == 7;           // T7, excluded in §VI.A

    // Skill parameters: experience shifts the distributions.
    DriverParams d;
    const double skill = (s.gaming_experience ? 0.25 : 0.0) +
                         (s.recent_gaming ? 0.25 : 0.0) +
                         0.18 * s.station_experience + srng.uniform(0.0, 0.45);
    d.reaction_time_s = util::clamp(0.45 - 0.18 * skill + srng.normal(0.0, 0.035),
                                    0.2, 0.6);
    d.steer_noise = util::clamp(0.0009 - 0.0004 * skill + srng.normal(0.0, 0.00015),
                                0.0003, 0.0016);
    d.near_gain = util::clamp(0.008 + srng.normal(0.0, 0.0015), 0.004, 0.012);
    d.control_rate_hz = util::clamp(10.0 + 4.0 * skill + srng.normal(0.0, 1.0),
                                    7.0, 16.0);
    d.lookahead_time_s = util::clamp(1.0 + 0.3 * skill + srng.normal(0.0, 0.08),
                                     0.8, 1.6);
    d.idm_time_headway_s = util::clamp(srng.normal(1.05, 0.18), 0.7, 1.5);
    d.speed_compliance = util::clamp(srng.normal(1.0, 0.06), 0.85, 1.15);
    d.caution_gain = util::clamp(srng.normal(0.55, 0.12), 0.25, 0.85);
    d.emergency_ttc_s = util::clamp(srng.normal(1.6, 0.2), 1.1, 2.2);
    d.mirrored_steering = s.left_hand_driving;

    // Two risk-prone subjects (tight headway, slow reaction) so that the
    // golden run is not collision-free for everyone, as in §VI.E where two
    // of eleven subjects collided with no faults injected.
    if (i == 6 || i == 10) {
      d.idm_time_headway_s = 0.5;
      d.idm_min_gap_m = 2.6;
      d.reaction_time_s = std::max(d.reaction_time_s, 0.58);
      d.emergency_ttc_s = 0.8;
      d.speed_compliance = 1.05;
      d.near_gain = 0.015;
      d.position_noise_m = 0.16;
    }

    s.driver = d;
    roster.push_back(std::move(s));
  }
  return roster;
}

QuestionnaireSummary summarize(const std::vector<QuestionnaireResponse>& responses) {
  QuestionnaireSummary sum;
  sum.respondents = responses.size();
  if (responses.empty()) return sum;
  double qoe_total = 0.0;
  sum.min_qoe = responses.front().q4_qoe;
  sum.max_qoe = responses.front().q4_qoe;
  for (const QuestionnaireResponse& r : responses) {
    if (r.q1_gaming) ++sum.gaming;
    if (r.q1_recent) ++sum.recent_gaming;
    if (r.q2_racing) ++sum.racing;
    if (r.q3_station_experience == 0) ++sum.no_station_experience;
    if (r.q3_station_experience == 1) ++sum.station_once;
    if (r.q3_station_experience == 2) ++sum.station_few_times;
    qoe_total += r.q4_qoe;
    sum.min_qoe = std::min(sum.min_qoe, r.q4_qoe);
    sum.max_qoe = std::max(sum.max_qoe, r.q4_qoe);
    if (r.q5_virtual_testing_useful) ++sum.virtual_testing_useful;
    if (r.q6_felt_difference) ++sum.felt_difference;
  }
  sum.mean_qoe = qoe_total / static_cast<double>(responses.size());
  return sum;
}

}  // namespace rdsim::core
