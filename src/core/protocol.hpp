// Teleoperation application protocol: the command message the operator
// station sends to the vehicle subsystem, and stream-id assignments.
#pragma once

#include <optional>

#include "net/packet.hpp"
#include "net/serialization.hpp"
#include "sim/types.hpp"

namespace rdsim::core {

/// Stream ids on the teleoperation channel.
inline constexpr std::uint16_t kVideoStreamId = 1;
inline constexpr std::uint16_t kCommandStreamId = 2;

/// One driving command (steer / throttle / brake / reverse) stamped with the
/// operator's send time and the id of the video frame the operator was
/// looking at — the latter gives the vehicle subsystem its QoS estimate of
/// how stale the operator's view is (§III.A, vehicle subsystem duties).
struct CommandMsg {
  std::uint32_t sequence{0};
  sim::VehicleControl control{};
  std::int64_t sent_at_us{0};
  std::uint32_t based_on_frame{0};

  net::Payload encode() const;
  static std::optional<CommandMsg> decode(const net::Payload& bytes);
};

}  // namespace rdsim::core
