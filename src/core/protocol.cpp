#include "core/protocol.hpp"

#include "net/packet.hpp"
#include "net/serialization.hpp"

namespace rdsim::core {

net::Payload CommandMsg::encode() const {
  net::ByteWriter w;
  w.u32(sequence);
  w.f64(control.throttle);
  w.f64(control.steer);
  w.f64(control.brake);
  w.u8(control.reverse ? 1 : 0);
  w.u8(control.hand_brake ? 1 : 0);
  w.i64(sent_at_us);
  w.u32(based_on_frame);
  return w.take();
}

std::optional<CommandMsg> CommandMsg::decode(const net::Payload& bytes) {
  net::ByteReader r{bytes};
  CommandMsg m;
  m.sequence = r.u32();
  m.control.throttle = r.f64();
  m.control.steer = r.f64();
  m.control.brake = r.f64();
  m.control.reverse = r.u8() != 0;
  m.control.hand_brake = r.u8() != 0;
  m.sent_at_us = r.i64();
  m.based_on_frame = r.u32();
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace rdsim::core
