#include "core/campaign_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "check/hash.hpp"
#include "core/campaign_fields.hpp"
#include "core/campaign_hash.hpp"
#include "mitigate/mitigation.hpp"
#include "net/serialization.hpp"
#include "util/units.hpp"

namespace rdsim::core {

namespace {

constexpr std::uint32_t kMagic = 0x52444331;  // "RDC1"
// v2: opt_block presence bytes for the mitigation config/summary fields.
constexpr std::uint32_t kVersion = 2;

/// Archive writing the visited fields through a net::ByteWriter.
struct WriteArchive {
  net::ByteWriter& w;

  void f64(const double& v) { w.f64(v); }
  template <typename Q>
  void qty(const Q& v) {
    w.f64(v.value());  // typed quantities serialize as their raw double
  }
  void u32(const std::uint32_t& v) { w.u32(v); }
  void u64(const std::uint64_t& v) { w.u64(v); }
  void i32(const int& v) { w.i32(v); }
  void sz(const std::size_t& v) { w.u64(static_cast<std::uint64_t>(v)); }
  void b(const bool& v) { w.u8(v ? 1 : 0); }
  void str(const std::string& s) { w.str(s); }
  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn fn) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const T& e : v) fn(*this, e);
  }
  /// Conditional block. Unlike the hash archive (which must stay silent when
  /// disabled, to preserve pre-existing digests) the wire format always
  /// carries a presence byte — that is the v1 → v2 format change.
  template <typename Fn>
  void opt_block(const bool& flag, Fn fn) {
    w.u8(flag ? 1 : 0);
    if (flag) fn(*this);
  }
};

/// Archive reading the visited fields back out of a net::ByteReader.
struct ReadArchive {
  net::ByteReader& r;
  /// Canonical-form violations (e.g. a bool byte that is neither 0 nor 1).
  /// The reader's own ok() only tracks truncation; a non-canonical byte
  /// would otherwise decode to a value that re-hashes consistently, letting
  /// a corrupt blob slip past the embedded-hash check.
  bool canonical{true};

  void f64(double& v) { v = r.f64(); }
  template <typename Q>
  void qty(Q& v) {
    v = units::from_raw<Q>(r.f64());
  }
  void u32(std::uint32_t& v) { v = r.u32(); }
  void u64(std::uint64_t& v) { v = r.u64(); }
  void i32(int& v) { v = r.i32(); }
  void sz(std::size_t& v) { v = static_cast<std::size_t>(r.u64()); }
  void b(bool& v) {
    const std::uint8_t raw = r.u8();
    if (raw > 1) canonical = false;
    v = raw != 0;
  }
  void str(std::string& s) { s = r.str(); }
  template <typename T, typename Fn>
  void vec(std::vector<T>& v, Fn fn) {
    const std::uint32_t n = r.u32();
    v.clear();
    // Stop on the first truncated element instead of trusting a (possibly
    // corrupt) length header with a huge up-front reserve.
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      T e{};
      fn(*this, e);
      v.push_back(std::move(e));
    }
  }
  template <typename Fn>
  void opt_block(bool& flag, Fn fn) {
    const std::uint8_t raw = r.u8();
    if (raw > 1) canonical = false;
    flag = raw != 0;
    if (flag) fn(*this);
  }
};

}  // namespace

std::vector<std::uint8_t> serialize_campaign(const CampaignResult& campaign) {
  net::ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(check::campaign_hash(campaign));
  WriteArchive ar{w};
  detail::campaign_fields(ar, campaign);
  return w.take();
}

std::optional<CampaignResult> deserialize_campaign(const std::uint8_t* data,
                                                   std::size_t size) {
  net::ByteReader r{data, size};
  if (r.u32() != kMagic || r.u32() != kVersion) return std::nullopt;
  const std::uint64_t stored_hash = r.u64();
  CampaignResult campaign;
  ReadArchive ar{r};
  detail::campaign_fields(ar, campaign);
  if (!r.ok() || !ar.canonical || r.remaining() != 0) return std::nullopt;
  if (check::campaign_hash(campaign) != stored_hash) return std::nullopt;
  return campaign;
}

std::optional<CampaignResult> deserialize_campaign(const std::vector<std::uint8_t>& blob) {
  return deserialize_campaign(blob.data(), blob.size());
}

bool save_campaign(const std::string& path, const CampaignResult& campaign) {
  const std::vector<std::uint8_t> blob = serialize_campaign(campaign);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
  return !ec;
}

std::optional<CampaignResult> load_campaign(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>{in},
                                 std::istreambuf_iterator<char>{}};
  return deserialize_campaign(blob);
}

std::uint64_t experiment_config_fingerprint(const ExperimentConfig& config) {
  check::Fnv1a h;
  h.u64(config.seed);
  h.f64(config.poi_fault_probability);
  h.u64(config.fault_weights.size());
  for (const double w : config.fault_weights) h.f64(w);
  h.f64(config.run_time_limit.value());

  // RDS numerics (hardware strings are documentation, not behaviour).
  const RdsConfig& rds = config.rds;
  h.f64(rds.station.video_fps);
  h.f64(rds.station.display_latency.value());
  h.f64(rds.station.input_latency.value());
  h.f64(rds.station.wheel_range_deg);
  h.f64(rds.station.command_rate_hz);
  h.u32(rds.video.frame_wire_bytes);
  h.u32(rds.video.command_wire_bytes);
  h.u64(rds.video.sender_backlog_limit);
  h.u32(rds.transport.mtu);
  h.u32(rds.transport.header_overhead);
  h.i64(rds.transport.rto_initial.count_micros());
  h.i64(rds.transport.rto_min.count_micros());
  h.i64(rds.transport.rto_max.count_micros());
  h.u32(rds.transport.window_segments);
  h.boolean(rds.transport.fast_retransmit);
  h.i64(rds.transport.ack_delay.count_micros());
  h.f64(rds.vehicle.wheelbase.value());
  h.f64(rds.vehicle.max_steer_deg);
  h.f64(rds.vehicle.max_steer_rate_deg);
  h.f64(rds.vehicle.max_engine_accel.value());
  h.f64(rds.vehicle.max_brake_decel.value());
  h.f64(rds.vehicle.drag_coeff);
  h.f64(rds.vehicle.rolling_resist.value());
  h.f64(rds.vehicle.max_speed.value());
  h.f64(rds.vehicle.throttle_tau.value());
  h.f64(rds.vehicle.brake_tau.value());
  h.f64(rds.vehicle.bbox.half_length);
  h.f64(rds.vehicle.bbox.half_width);
  h.f64(rds.road_scale);
  h.str(rds.device);
  h.f64(rds.physics_hz);
  h.f64(rds.comms_hz);
  h.f64(rds.log_hz);
  h.boolean(rds.datagram_video);
  h.boolean(rds.datagram_commands);

  h.boolean(config.safety.enabled);
  h.f64(config.safety.max_command_age.value());
  h.f64(config.safety.brake_level);
  h.f64(config.safety.speed_cap.value());

  // Mitigation knobs fold unconditionally (the cache key must separate an
  // enabled campaign from its disabled twin, and two enabled campaigns with
  // different thresholds from each other).
  const mitigate::MitigationConfig& mit = config.mitigation;
  h.boolean(mit.enabled);
  h.f64(mit.estimator.update_period.value());
  h.f64(mit.estimator.rtt_alpha);
  h.f64(mit.estimator.loss_alpha);
  h.f64(mit.governor.degraded_rtt.value());
  h.f64(mit.governor.degraded_loss);
  h.f64(mit.governor.degraded_staleness.value());
  h.f64(mit.governor.impaired_rtt.value());
  h.f64(mit.governor.impaired_loss);
  h.f64(mit.governor.impaired_staleness.value());
  h.f64(mit.governor.link_loss_staleness.value());
  h.f64(mit.governor.exit_margin);
  h.f64(mit.governor.min_dwell.value());
  for (const mitigate::StateLimits* lim :
       {&mit.governor.degraded, &mit.governor.impaired, &mit.governor.link_loss}) {
    h.f64(lim->speed_cap.value());
    h.f64(lim->steer_rate_limit);
    h.f64(lim->throttle_scale);
  }
  h.f64(mit.watchdog.deadline.value());
  h.f64(mit.watchdog.recover_age.value());
  h.f64(mit.watchdog.decel.value());
  h.f64(mit.watchdog.lane_gain);
  h.f64(mit.watchdog.heading_gain);
  h.f64(mit.watchdog.max_steer);
  h.f64(mit.watchdog.standstill.value());
  h.f64(mit.watchdog.hold_brake);
  return h.digest();
}

std::string campaign_cache_path(const ExperimentConfig& config,
                                bool obs_instrumented) {
  std::filesystem::path dir;
  if (const char* env = std::getenv("RDSIM_CAMPAIGN_CACHE"); env != nullptr && *env != '\0') {
    dir = env;
  } else {
    std::error_code ec;
    dir = std::filesystem::temp_directory_path(ec);
    if (ec) dir = ".";
  }
  char name[64];
  std::snprintf(name, sizeof name, "rdsim_campaign_%016llx%s.bin",
                static_cast<unsigned long long>(experiment_config_fingerprint(config)),
                obs_instrumented ? "_obs" : "");
  return (dir / name).string();
}

}  // namespace rdsim::core
