#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "check/replay.hpp"
#include "net/fault_injector.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"
#include "util/thread_pool.hpp"

namespace rdsim::core {

std::vector<const SubjectResult*> CampaignResult::included() const {
  std::vector<const SubjectResult*> out;
  for (const SubjectResult& s : subjects) {
    if (!s.profile.excluded()) out.push_back(&s);
  }
  return out;
}

ExperimentHarness::ExperimentHarness(ExperimentConfig config)
    : config_{std::move(config)} {}

std::vector<FaultAssignment> ExperimentHarness::make_fault_plan(
    const sim::Scenario& scenario, util::Random& rng) const {
  const std::vector<net::FaultSpec> model = net::paper_fault_model();
  std::vector<FaultAssignment> plan;
  for (const sim::PoiWindow& poi : scenario.pois) {
    if (!rng.bernoulli(config_.poi_fault_probability)) continue;
    const std::size_t pick = rng.weighted_index(config_.fault_weights);
    plan.push_back({poi.name, model[pick % model.size()]});
  }
  return plan;
}

sim::Scenario ExperimentHarness::make_run_scenario() const {
  sim::Scenario scenario = sim::make_test_route_scenario();
  if (config_.run_time_limit > units::Seconds{}) {
    scenario.time_limit = std::min(scenario.time_limit, config_.run_time_limit);
  }
  return scenario;
}

SubjectResult ExperimentHarness::run_subject(const SubjectProfile& profile,
                                             check::ReplayRecorder* golden_replay,
                                             check::ReplayRecorder* faulty_replay) const {
  SubjectResult result;
  result.profile = profile;
  // All streams below are SplitMix-derived from (profile seed, purpose), so a
  // subject's result depends on nothing outside its own profile — required
  // for run_campaign_parallel to be bit-identical to the serial runner.
  util::Random rng{profile.seed, /*stream=*/0x706c616eULL};

  // Golden run (§V.E.2): baseline reference of the subject's behaviour.
  {
    RunConfig rc;
    rc.run_id = profile.id + "-NFI";
    rc.subject_id = profile.id;
    rc.fault_injected = false;
    rc.rds = config_.rds;
    rc.safety = config_.safety;
    rc.driver = profile.driver;
    rc.mitigation = config_.mitigation;
    rc.seed = util::splitmix64(profile.seed ^ 0x9e3779b97f4a7c15ULL);
    rc.replay = golden_replay;
    const std::string run_id = rc.run_id;
    TeleopSession session{std::move(rc), make_run_scenario()};
    // One obs context per run, installed thread-locally for the duration:
    // whichever pool worker executes this subject accumulates into it, and
    // the collector merges finished runs in run-id order.
    obs::Context obs_ctx;
    {
      obs::ContextScope obs_scope{collector_ != nullptr ? &obs_ctx : nullptr};
      RDSIM_OBS_TIMER(obs::metric::kRunWall);
      result.golden = session.run();
    }
    if (collector_ != nullptr) collector_->submit_run(run_id, std::move(obs_ctx));
  }

  // Faulty run: randomized plan over the points of interest.
  {
    RunConfig rc;
    rc.run_id = profile.id + "-FI";
    rc.subject_id = profile.id;
    rc.fault_injected = true;
    rc.rds = config_.rds;
    rc.safety = config_.safety;
    rc.driver = profile.driver;
    rc.mitigation = config_.mitigation;
    rc.seed = util::splitmix64(profile.seed ^ 0xc2b2ae3d27d4eb4fULL);
    rc.replay = faulty_replay;
    const sim::Scenario scenario = make_run_scenario();
    rc.plan = make_fault_plan(scenario, rng);
    const std::string run_id = rc.run_id;
    TeleopSession session{std::move(rc), scenario};
    obs::Context obs_ctx;
    {
      obs::ContextScope obs_scope{collector_ != nullptr ? &obs_ctx : nullptr};
      RDSIM_OBS_TIMER(obs::metric::kRunWall);
      result.faulty = session.run();
    }
    if (collector_ != nullptr) collector_->submit_run(run_id, std::move(obs_ctx));
  }

  result.questionnaire = make_questionnaire(profile, result.faulty, rng);
  return result;
}

QuestionnaireResponse ExperimentHarness::make_questionnaire(
    const SubjectProfile& profile, const RunResult& faulty, util::Random& rng) const {
  QuestionnaireResponse q;
  q.subject = profile.id;
  q.q1_gaming = profile.gaming_experience;
  q.q1_recent = profile.recent_gaming;
  q.q2_racing = profile.racing_game_experience;
  q.q3_station_experience = profile.station_experience;
  // Subjects reported integer scores; the measured QoE drives the answer.
  q.q4_qoe = std::round(faulty.qoe.score());
  q.q5_virtual_testing_useful = true;  // unanimous in §VI.F
  // Whether the subject consciously noticed the faults: more freeze time
  // makes the disturbance more noticeable; perceptive (skilled) subjects
  // notice more. ~5/11 reported noticing in the paper.
  const double noticeability =
      0.08 + 3.5 * faulty.qoe.frozen_fraction() +
      (profile.recent_gaming ? 0.15 : 0.0) + 0.04 * profile.station_experience;
  q.q6_felt_difference = rng.bernoulli(util::clamp(noticeability, 0.0, 0.9));
  return q;
}

CampaignResult ExperimentHarness::run_campaign() const {
  CampaignResult out;
  out.config = config_;
  for (const SubjectProfile& profile : make_roster(config_.seed)) {
    out.subjects.push_back(run_subject(profile));
  }
  return out;
}

CampaignResult ExperimentHarness::run_campaign_parallel(std::size_t n_workers) const {
  CampaignResult out;
  out.config = config_;
  const std::vector<SubjectProfile> roster = make_roster(config_.seed);
  out.subjects.resize(roster.size());
  util::ThreadPool pool{n_workers};
  // One task per subject; each writes only its own slot, so aggregation is
  // in subject order no matter how the pool schedules the work.
  pool.parallel_for(roster.size(), [&](std::size_t i) {
    out.subjects[i] = run_subject(roster[i]);
  });
  return out;
}

}  // namespace rdsim::core
