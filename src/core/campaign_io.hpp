// Campaign result serialization and the on-disk bench cache.
//
// A CampaignResult round-trips through the same little-endian byte format
// the protocol layer uses; the blob embeds its own check::campaign_hash, and
// load verifies it after deserializing, so a stale or corrupt artifact can
// never masquerade as a fresh campaign. bench/campaign.hpp uses this to run
// the 12-subject campaign once for the whole bench suite instead of once per
// binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace rdsim::core {

/// Serialize to the versioned binary blob (magic + version + embedded
/// campaign hash + payload).
std::vector<std::uint8_t> serialize_campaign(const CampaignResult& campaign);

/// Parse a blob produced by serialize_campaign. Returns nullopt on a bad
/// magic/version, truncation, trailing bytes, or when the recomputed
/// campaign hash does not match the embedded one. The deserialized result
/// carries default rds/safety sub-configs (only the campaign-level fields
/// are stored); callers that need them exact should key their artifacts with
/// experiment_config_fingerprint.
std::optional<CampaignResult> deserialize_campaign(const std::uint8_t* data,
                                                   std::size_t size);
std::optional<CampaignResult> deserialize_campaign(const std::vector<std::uint8_t>& blob);

/// Atomically write the blob to `path` (temp file + rename). Returns false
/// on any I/O failure.
bool save_campaign(const std::string& path, const CampaignResult& campaign);

/// Load + verify; nullopt when the file is missing, unreadable or fails
/// deserialize_campaign's checks.
std::optional<CampaignResult> load_campaign(const std::string& path);

/// Fingerprint of every ExperimentConfig field that shapes a campaign
/// (including the rds/safety numerics that are not serialized), used to key
/// cache artifacts: configs with different fingerprints can never share one.
std::uint64_t experiment_config_fingerprint(const ExperimentConfig& config);

/// Cache artifact path for `config`: $RDSIM_CAMPAIGN_CACHE (a directory) or
/// the system temp directory, plus a fingerprint-keyed filename.
/// `obs_instrumented` marks artifacts produced by a campaign that ran with
/// an observability collector attached: the CampaignResult bytes are
/// bit-identical either way (the golden suite proves it), but an
/// obs-instrumented bench run also produces side artifacts (BENCH_obs.json,
/// traces) that a plain cache hit could not regenerate, so the two must
/// never share a cache entry.
std::string campaign_cache_path(const ExperimentConfig& config,
                                bool obs_instrumented = false);

}  // namespace rdsim::core
