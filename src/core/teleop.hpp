// TeleopSession: one complete remote-driving run.
//
// Wires the full loop of Fig. 3: the vehicle subsystem (CARLA-server role)
// streams video frames through the emulated loopback device; NETEM-style
// faults are injected on that device; the operator subsystem displays the
// frames to the synthetic driver and sends commands back through the same
// device. Both directions traverse the same root qdisc, so injection is
// bidirectional exactly as in the paper's localhost setup (§V.D).
//
// The loop runs on a fine communication tick (default 2.5 ms — enough
// resolution for the 5 ms delay fault) with physics sub-sampled at 100 Hz,
// video at 25-30 fps and commands at the client rate.
#pragma once

#include "check/replay.hpp"
#include "core/operator_subsystem.hpp"
#include "core/subjects.hpp"
#include "core/vehicle_subsystem.hpp"
#include "mitigate/governor.hpp"
#include "mitigate/link_quality.hpp"
#include "net/datagram.hpp"
#include "net/fault_injector.hpp"
#include "net/reliable_stream.hpp"
#include "sim/scenario.hpp"
#include "trace/trace.hpp"
#include "util/time.hpp"

namespace rdsim::core {

/// One planned injection: when the ego is inside the named POI window, the
/// fault is active (§V.C: injection at points of interest, duration
/// dependent on the situation).
struct FaultAssignment {
  std::string poi;
  net::FaultSpec fault;
};

struct RunConfig {
  std::string run_id{"run"};
  std::string subject_id{"T0"};
  bool fault_injected{false};
  std::vector<FaultAssignment> plan;
  RdsConfig rds{};
  SafetyMonitorConfig safety{};
  DriverParams driver{};
  /// Opt-in graceful-degradation + MRM stack (rdsim::mitigate). Disabled by
  /// default and bit-exactly inert when disabled: no component is built and
  /// the run's hash is unchanged.
  mitigate::MitigationConfig mitigation{};
  std::uint64_t seed{1};
  /// When set, every physics tick appends a (frame hash, network hash) pair
  /// so two runs can be diffed to the first divergent tick. Borrowed; must
  /// outlive the session. Off (null) by default — recording costs one world
  /// snapshot per physics tick.
  check::ReplayRecorder* replay{nullptr};
};

struct RunResult {
  trace::RunTrace trace;
  QoeStats qoe{};
  bool completed{false};
  bool timed_out{false};
  units::Seconds duration{};

  // Network-side observables.
  net::StreamStats video_stats{};
  net::StreamStats command_stats{};
  units::Millis mean_downlink_latency{};
  units::Millis mean_uplink_latency{};
  std::uint64_t frames_encoded{0};
  std::uint64_t frames_displayed{0};
  std::uint64_t frames_skipped_sender{0};
  std::uint64_t safety_activations{0};
  std::size_t faults_injected{0};

  /// Mitigation outcome; `enabled` false (and all fields zero) unless the
  /// run was configured with RunConfig::mitigation.enabled.
  mitigate::MitigationSummary mitigation{};
};

class TeleopSession {
 public:
  TeleopSession(RunConfig config, sim::Scenario scenario);

  /// Advance one communication tick. Returns false once the run is over.
  bool step();

  /// Run to completion and return the results.
  RunResult run();

  // Introspection for examples and tests.
  util::TimePoint now() const { return clock_.now(); }
  VehicleSubsystem& vehicle() { return vehicle_; }
  OperatorSubsystem& station() { return *operator_; }
  net::FaultInjector& injector() { return injector_; }
  const net::Channel& channel() const { return channel_; }
  bool finished() const { return finished_; }
  /// The operator-side governor, or nullptr when mitigation is disabled.
  const mitigate::DegradationGovernor* governor() const { return governor_.get(); }

 private:
  void update_fault_plan();
  void pump_video(util::TimePoint now);
  void pump_commands(util::TimePoint now);
  void update_mitigation(util::TimePoint now);

  RunConfig config_;
  util::VirtualClock clock_;

  net::TrafficControl tc_;
  net::Channel channel_;
  net::PacketRouter router_;
  std::unique_ptr<net::ReliableStream> video_stream_;
  std::unique_ptr<net::ReliableStream> command_stream_;
  std::unique_ptr<net::DatagramSocket> video_dgram_;
  std::unique_ptr<net::DatagramSocket> command_dgram_;
  net::FaultInjector injector_;

  VehicleSubsystem vehicle_;
  std::unique_ptr<OperatorSubsystem> operator_;
  trace::TraceRecorder recorder_;

  // Mitigation (operator side); null unless config_.mitigation.enabled.
  std::unique_ptr<mitigate::LinkQualityEstimator> estimator_;
  std::unique_ptr<mitigate::DegradationGovernor> governor_;
  units::MetersPerSecond perceived_speed_{};  ///< ego speed of the last decoded frame

  util::Duration comms_dt_{};
  util::Duration physics_dt_{};
  util::TimePoint next_physics_{};
  std::optional<std::size_t> active_assignment_;
  std::uint64_t frames_skipped_sender_{0};
  bool finished_{false};
};

}  // namespace rdsim::core
