#include "core/driver.hpp"

#include <algorithm>
#include <cmath>

#include "sim/frame.hpp"
#include "sim/road.hpp"
#include "sim/scenario.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace rdsim::core {

DriverModel::DriverModel(DriverParams params, const sim::Scenario* scenario,
                         const sim::RoadNetwork* road, util::Random rng)
    : params_{params},
      scenario_{scenario},
      road_{road},
      rng_{std::move(rng)},
      perception_{util::Duration::seconds(params.reaction_time_s)} {}

void DriverModel::observe(const DisplayedView& view) {
  perception_.push(view.displayed_at, view);
  if (view.frame.frame_id != last_frame_id_) {
    if (last_display_change_) {
      const double frozen = (view.displayed_at - *last_display_change_).to_seconds();
      if (frozen > params_.startle_threshold_s) {
        startle_until_ =
            view.displayed_at + util::Duration::seconds(params_.startle_duration_s);
        // The scene jumps on unfreeze; sometimes the driver's position
        // estimate takes the hit immediately.
        if (rng_.bernoulli(params_.startle_jump_prob)) {
          pos_noise_ += rng_.normal(
              0.0, params_.startle_jump_m_per_s * std::min(frozen, 1.0));
        }
      }
    }
    last_frame_id_ = view.frame.frame_id;
    last_display_change_ = view.displayed_at;
  }
}

units::Seconds DriverModel::display_staleness(util::TimePoint now) const {
  if (!last_display_change_) {
    return units::Seconds{std::numeric_limits<double>::infinity()};
  }
  return units::Seconds::from_duration(now - *last_display_change_);
}

double DriverModel::idm_accel(double speed, double target_speed,
                              std::optional<std::pair<double, double>> lead) const {
  const double v0 = std::max(target_speed, 0.5);
  const double free = 1.0 - std::pow(std::max(speed, 0.0) / v0, 4.0);
  double interaction = 0.0;
  if (lead) {
    const auto [gap, lead_speed] = *lead;
    const double dv = speed - lead_speed;
    const double s_star =
        params_.idm_min_gap_m +
        std::max(0.0, speed * params_.idm_time_headway_s +
                          speed * dv / (2.0 * std::sqrt(params_.idm_max_accel *
                                                        params_.idm_comfort_brake)));
    const double ratio = s_star / std::max(gap, 0.5);
    interaction = ratio * ratio;
  }
  return params_.idm_max_accel * (free - interaction);
}

DriverModel::Decision DriverModel::decide(util::TimePoint now) {
  Decision d = decision_;  // default: hold the previous decision

  const auto view = perception_.read(now);
  if (!view) return d;
  const sim::WorldFrame& frame = view->frame;

  // ---- build the perceived ego state ----
  sim::KinematicState ego = frame.ego.state;
  const double speed = ego.speed();
  // Self-motion compensation: drivers dead-reckon their own vehicle through
  // their *internal* latency (reaction time plus the nominal display/command
  // path) using proprioception — they feel where the wheel is (wheel_) and
  // predict the yaw it produces. Latency added by the network is unknown to
  // them and stays uncompensated; that asymmetry is what makes injected
  // delay and frozen frames degrade control.
  const double t_pred =
      params_.prediction_gain * (params_.reaction_time_s + 0.12);
  const double yaw_est =
      speed * std::tan(wheel_ * util::deg_to_rad(params_.vehicle_max_steer_deg)) /
      params_.vehicle_wheelbase_m;
  const double mid_heading = ego.heading + 0.5 * yaw_est * t_pred;
  ego.position += util::Vec2::from_heading(mid_heading) * (speed * t_pred);
  ego.heading = util::wrap_angle(ego.heading + yaw_est * t_pred);

  auto proj = road_->project(ego.position, track_hint_s_);
  track_hint_s_ = proj.s;
  const sim::DriveInstruction instr = scenario_->instruction_at(units::Meters{proj.s});

  // Perceptual position error: slow wander whose magnitude grows with the
  // display's staleness and with poor visibility.
  {
    // Two sources of degraded precision: a *stuttering* display (time since
    // the image last changed) and *stale content* (the scene is older than
    // the driver's internal model expects — constant added network delay
    // does this even when the display updates smoothly).
    const double staleness = display_staleness(now).value();
    const double content_age =
        (now - util::TimePoint::from_micros(frame.sim_time_us)).to_seconds();
    const double nominal_stutter = 0.06;  // one frame period + display latency
    // Expected content age of a healthy feed as this driver experiences it:
    // their own reaction time plus the frame/display pipeline.
    const double nominal_age = params_.reaction_time_s + 0.08;
    double extra = 0.0;
    if (std::isfinite(staleness)) {
      extra += params_.staleness_noise_gain * std::max(0.0, staleness - nominal_stutter);
    }
    extra += params_.staleness_noise_gain * std::max(0.0, content_age - nominal_age);
    const double sigma = (params_.position_noise_m + extra) *
                         frame.weather.perception_noise_factor();
    const double dt_dec = 1.0 / params_.control_rate_hz;
    const double theta = dt_dec / params_.position_noise_tau_s;
    pos_noise_ = pos_noise_ * (1.0 - theta) + std::sqrt(2.0 * theta) * rng_.normal() *
                                                  sigma * 0.6;
    // Bound the wander to physically plausible misjudgement. The bound must
    // not collapse right after an unfreeze (staleness resets small) or it
    // would erase the scene-jump error the unfreeze just caused.
    const double bound = std::max(3.0 * sigma, 2.0);
    pos_noise_ = util::clamp(pos_noise_, -bound, bound);
    proj.lateral += pos_noise_;
    proj.lane_offset += pos_noise_;
  }

  // ---- lateral: two-point steering (far anticipation + near compensation) ----
  // Vulnerable road users get extra berth regardless of instructions: if a
  // cyclist is near the intended path ahead, shift left while passing.
  double cyclist_bias = 0.0;
  {
    const util::Vec2 fwd0 = util::Vec2::from_heading(ego.heading);
    for (const sim::ActorSnapshot& a : frame.others) {
      if (a.kind != sim::ActorKind::kCyclist) continue;
      const util::Vec2 rel = a.state.position - ego.position;
      const double ahead = rel.dot(fwd0);
      const double lateral = rel.dot(fwd0.perp());
      if (ahead > -6.0 && ahead < 50.0 && std::fabs(lateral) < 3.0) {
        cyclist_bias = std::max(cyclist_bias, 1.1);
      }
    }
  }
  double target_lateral = road_->lane_center_offset(instr.target_lane) +
                          instr.lateral_bias.value() + cyclist_bias + unstick_bias_;

  // Merge safety (the mirror check): never converge onto a line that is
  // currently occupied alongside or just ahead — hold the present lane until
  // the other vehicle is passed.
  if (std::fabs(target_lateral - proj.lateral) > 1.2) {
    const util::Vec2 fwd0 = util::Vec2::from_heading(ego.heading);
    for (const sim::ActorSnapshot& a : frame.others) {
      const util::Vec2 rel = a.state.position - ego.position;
      const double ahead = rel.dot(fwd0);
      const double lateral = rel.dot(fwd0.perp());
      const double target_rel = target_lateral - proj.lateral;
      if (ahead > -8.0 && ahead < 14.0 && std::fabs(lateral - target_rel) < 1.8) {
        target_lateral = road_->lane_center_offset(proj.lane);
        break;
      }
    }
  }

  // Far point: pure pursuit toward the instructed line well ahead. During an
  // active line change (large lateral error) drivers pull their gaze in and
  // steer with a shorter preview — quicker, but the mode that extra latency
  // destabilizes first.
  const double lat_err_mag = std::fabs(target_lateral - proj.lateral);
  const double urgency = util::clamp(lat_err_mag / 1.5, 0.0, 1.0);
  const double look_time = util::lerp(params_.lookahead_time_s,
                                      params_.manoeuvre_lookahead_s, urgency);
  const double lookahead = std::max(params_.min_lookahead_m, look_time * speed);
  const util::Pose target = road_->sample_offset(proj.s + lookahead, target_lateral);
  const util::Pose perceived_pose{ego.position, ego.heading};
  const util::Vec2 local = perceived_pose.to_local(target.position);
  const double d2 = std::max(local.norm_sq(), 1.0);
  const double curvature = 2.0 * local.y / d2;
  const double wheel_angle = std::atan(curvature * params_.vehicle_wheelbase_m);
  const double max_angle = util::deg_to_rad(params_.vehicle_max_steer_deg);
  double steer = util::clamp(wheel_angle / max_angle, -1.0, 1.0);

  // Near point: proportional-plus-lead compensation of the lateral error
  // seen *on the display*. This loop's bandwidth is what extra dead time
  // (network delay, frozen frames) pushes toward instability — the paper's
  // SRR increase under disturbance emerges here.
  const double e_near = target_lateral - proj.lateral;
  // d(error)/dt: the error shrinks while the vehicle heads toward the
  // target line; heading_err > 0 means the road (and target) bear left.
  const double heading_err = util::wrap_angle(road_->heading_at(proj.s) - ego.heading);
  const double e_near_dot = speed * std::sin(heading_err);
  const bool startled = now < startle_until_;
  const double near_gain =
      params_.near_gain * (startled ? params_.startle_gain : 1.0);
  steer += near_gain * (e_near + params_.near_lead_s * e_near_dot);
  steer = util::clamp(steer, -1.0, 1.0);
  if (params_.mirrored_steering) {
    // Left-hand-traffic habit: systematic bias toward the wrong lane edge
    // plus occasional inverted corrections under pressure.
    steer = steer * 0.8 - 0.04;
  }

  // Dead-zone: don't bother with corrections smaller than the driver notices.
  if (std::fabs(steer - decision_.steer_target) < params_.steer_deadzone) {
    steer = decision_.steer_target;
  }
  d.steer_target = steer;

  // ---- longitudinal ----
  // Perceived lead: nearest frame actor ahead in the target corridor.
  std::optional<std::pair<double, double>> lead;
  const util::Vec2 fwd = util::Vec2::from_heading(ego.heading);
  for (const sim::ActorSnapshot& a : frame.others) {
    const util::Vec2 rel = a.state.position - ego.position;
    const double ahead = rel.dot(fwd);
    const double lateral = rel.dot(fwd.perp());
    if (ahead <= 0.0 || ahead > 90.0) continue;
    // The driver worries about anything close to the path they will
    // actually sweep. Lateral convergence toward the intended line is
    // bounded (~1 m/s of lateral motion), so a vehicle just ahead stays a
    // hazard through the early part of a lane change.
    const double intended_lateral = target_lateral - proj.lateral;
    const double clear_dist =
        std::max(10.0, speed * std::fabs(intended_lateral) / 1.0);
    const double progress = util::clamp(ahead / clear_dist, 0.0, 1.0);
    if (std::fabs(lateral - intended_lateral * progress) > 1.8) continue;
    const double gap = std::max(ahead - 4.6, 0.2);
    const double lead_speed = a.state.velocity.dot(fwd);
    if (!lead || gap < lead->first) lead = std::make_pair(gap, lead_speed);
  }

  // Unstick: a driver boxed in behind a stationary obstacle (e.g. after a
  // bump) steers around it rather than waiting forever.
  const double decision_dt = 1.0 / params_.control_rate_hz;
  if (speed < 0.8 && lead && lead->second < 0.3 && lead->first < 12.0) {
    stuck_time_s_ += decision_dt;
  } else if (speed > 2.0 || !lead) {
    stuck_time_s_ = 0.0;
    unstick_bias_ = 0.0;
  }
  if (stuck_time_s_ > 4.0 && unstick_bias_ == 0.0) {
    // Steer a full lane's width toward whichever side has room.
    unstick_bias_ = proj.lane_offset >= 0.0 ? 2.6 : -2.6;
  }
  if (unstick_bias_ != 0.0 && lead && lead->first < 12.0) {
    // While squeezing past, treat the blocking obstacle as shifted aside.
    lead.reset();
  }

  double target_speed = instr.target_speed.value() * params_.speed_compliance;
  if (unstick_bias_ != 0.0) target_speed = std::min(target_speed, 2.0);
  if (frame.weather.night) target_speed *= 0.92;

  // Caution: a frozen or stuttering display makes the driver ease off.
  const double staleness = display_staleness(now).value();
  if (staleness > params_.freeze_caution_s && std::isfinite(staleness)) {
    const double severity =
        util::clamp((staleness - params_.freeze_caution_s) / 1.5, 0.0, 1.0);
    target_speed *= 1.0 - params_.caution_gain * severity;
  }

  double accel = idm_accel(speed, target_speed, lead);

  // Emergency reflex on short perceived TTC.
  if (lead) {
    const auto [gap, lead_speed] = *lead;
    const double closing = speed - lead_speed;
    if (closing > 0.3 && gap / closing < params_.emergency_ttc_s) {
      accel = -8.0;
    }
  }

  // Attention single-channeling: while startled by a display freeze the
  // driver's capacity goes to re-acquiring lateral control; pedal inputs are
  // held at their previous values unless the emergency reflex fires.
  if (startled && accel > -6.0) {
    return d;  // keep previous throttle/brake, new steering already set
  }

  if (accel >= 0.0) {
    d.throttle = util::clamp(accel / 2.5, 0.0, 1.0);
    d.brake = 0.0;
  } else {
    d.throttle = 0.0;
    d.brake = util::clamp(-accel / 7.0, 0.0, 1.0);
  }
  return d;
}

sim::VehicleControl DriverModel::actuate(util::TimePoint now) {
  double dt = 0.0;
  if (!first_actuate_) dt = (now - last_actuate_).to_seconds();
  first_actuate_ = false;
  last_actuate_ = now;

  if (now >= next_decision_) {
    decision_ = decide(now);
    // Jittered intermittent decisions (humans are not metronomes).
    const double period = 1.0 / params_.control_rate_hz;
    next_decision_ = now + util::Duration::seconds(period * rng_.uniform(0.85, 1.15));
  }

  if (dt > 0.0) {
    // Ornstein-Uhlenbeck steering noise: the micro-corrections real drivers
    // inject continuously.
    const double theta = dt / params_.noise_tau_s;
    const double sigma = params_.steer_noise *
                         (now < startle_until_ ? params_.startle_noise_mult : 1.0);
    ou_noise_ += -theta * ou_noise_ + sigma * std::sqrt(2.0 * theta) * rng_.normal();

    // Neuromuscular lag toward the decided target plus noise.
    const double target = util::clamp(decision_.steer_target + ou_noise_, -1.0, 1.0);
    const double alpha = dt / (params_.neuromuscular_tau_s + dt);
    double next = wheel_ + alpha * (target - wheel_);
    const double max_step = params_.wheel_rate_limit * dt;
    next = util::clamp(next, wheel_ - max_step, wheel_ + max_step);
    wheel_ = next;
  }

  sim::VehicleControl out;
  out.steer = wheel_;
  out.throttle = decision_.throttle;
  out.brake = decision_.brake;
  return out;
}

}  // namespace rdsim::core
