// Bit-exact fingerprints of campaign results.
//
// campaign_hash() folds every observable of a CampaignResult — traces, QoE,
// stream statistics, questionnaires, profiles — into one FNV-1a digest, so
// "the parallel runner equals the serial runner" and "this build still
// reproduces the golden corpus" are each a one-line assertion. Doubles hash
// by bit pattern: equal hashes mean bit-identical results.
//
// Declared in rdsim::check like the frame/qdisc hashes, but owned by the
// core library because it hashes core types (the check library must stay
// below core in the dependency order).
#pragma once

#include <cstdint>

#include "core/experiment.hpp"

namespace rdsim::check {

/// Fingerprint of a single run (trace + QoE + network observables).
std::uint64_t hash_run(const core::RunResult& run);

/// Fingerprint of one subject: profile, golden run, faulty run,
/// questionnaire.
std::uint64_t hash_subject(const core::SubjectResult& subject);

/// Fingerprint of the whole campaign, including the campaign-level
/// configuration (seed, fault weights, run-time cap).
std::uint64_t campaign_hash(const core::CampaignResult& campaign);

}  // namespace rdsim::check
