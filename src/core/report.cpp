#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "metrics/safety.hpp"
#include "metrics/srr.hpp"
#include "metrics/ttc.hpp"
#include "mitigate/mitigation.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace rdsim::core::report {

namespace {

/// Merged [start, stop) windows in the faulty run during which the fault
/// with `label` was active.
std::vector<std::pair<units::Seconds, units::Seconds>> label_windows(
    const trace::RunTrace& run, const std::string& label) {
  std::vector<std::pair<units::Seconds, units::Seconds>> out;
  for (const auto& w : run.fault_windows()) {
    if (w.label == label) out.emplace_back(units::Seconds{w.start}, units::Seconds{w.stop});
  }
  return out;
}

std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace

std::vector<std::string> fault_labels() { return {"5ms", "25ms", "50ms", "2%", "5%"}; }

bool paper_missing_srr(const std::string& subject, bool faulty_run) {
  if (!faulty_run) return subject == "T3";
  return subject == "T8" || subject == "T10" || subject == "T12";
}

bool paper_missing_ttc(const std::string& subject) {
  return subject == "T1" || subject == "T2" || subject == "T3" || subject == "T4";
}

std::string render_table1(const StationConfig& s) {
  std::ostringstream os;
  os << "TABLE I: Technical Specifications for Driving Station\n";
  os << "  CPU and RAM      " << s.cpu_ram << "\n";
  os << "  Monitor          " << s.monitor << "\n";
  os << "  Input device     " << s.input_device << "\n";
  os << "  GPU              " << s.gpu << "\n";
  os << "  Operating system " << s.operating_system << "\n";
  os << "  NVIDIA driver    " << s.nvidia_driver << "\n";
  os << "  Video frame rate " << fmt(s.video_fps, 0) << " fps (25-30 as in the paper)\n";
  os << "  Command rate     " << fmt(s.command_rate_hz, 0) << " Hz\n";
  return os.str();
}

std::vector<FaultCountRow> fault_count_rows(const CampaignResult& campaign) {
  std::vector<FaultCountRow> rows;
  for (const SubjectResult* s : campaign.included()) {
    FaultCountRow row;
    row.subject = s->profile.id;
    for (const std::string& label : fault_labels()) row.counts[label] = 0;
    for (const trace::FaultRecord& f : s->faulty.trace.faults) {
      if (f.added) {
        ++row.counts[f.label];
        ++row.total;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_table2(const CampaignResult& campaign) {
  const auto rows = fault_count_rows(campaign);
  const auto labels = fault_labels();
  std::ostringstream os;
  os << "TABLE II: Summary for Faults Injected (frequency per test)\n";
  os << pad("Test", 6);
  for (const auto& l : labels) os << pad(l, 7);
  os << pad("Total", 7) << "\n";
  std::map<std::string, int> totals;
  int grand = 0;
  for (const auto& row : rows) {
    os << pad(row.subject, 6);
    for (const auto& l : labels) {
      const int c = row.counts.at(l);
      totals[l] += c;
      os << pad(std::to_string(c), 7);
    }
    grand += row.total;
    os << pad(std::to_string(row.total), 7) << "\n";
  }
  os << pad("Total", 6);
  for (const auto& l : labels) os << pad(std::to_string(totals[l]), 7);
  os << pad(std::to_string(grand), 7) << "\n";
  return os.str();
}

std::vector<TtcRow> ttc_rows(const CampaignResult& campaign,
                             const metrics::TtcConfig& config) {
  metrics::TtcAnalyzer analyzer{config};
  std::vector<TtcRow> rows;
  for (const SubjectResult* s : campaign.included()) {
    TtcRow row;
    row.subject = s->profile.id;

    const auto golden_series = analyzer.series(s->golden.trace);
    const auto g = analyzer.summarize(golden_series);
    if (g.valid()) row.nfi = g;

    const auto faulty_series = analyzer.series(s->faulty.trace);
    for (const std::string& label : fault_labels()) {
      metrics::TtcStats merged{};
      util::RunningStats acc;
      std::size_t violations = 0;
      for (const auto& [start, stop] : label_windows(s->faulty.trace, label)) {
        const auto st = analyzer.summarize_window(faulty_series, start, stop);
        if (!st.valid()) continue;
        // Merge via the series directly for exact stats.
        for (const auto& sample : faulty_series) {
          if (sample.t >= start && sample.t < stop) acc.add(sample.ttc.value());
        }
        violations += st.violations;
      }
      if (!acc.empty()) {
        merged.samples = acc.count();
        merged.min = units::Seconds{acc.min()};
        merged.avg = units::Seconds{acc.mean()};
        merged.max = units::Seconds{acc.max()};
        merged.violations = violations;
        row.cells[label] = merged;
      } else {
        row.cells[label] = std::nullopt;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_table3(const CampaignResult& campaign, bool mask_like_paper,
                          const metrics::TtcConfig& config) {
  const auto rows = ttc_rows(campaign, config);
  const auto labels = fault_labels();
  std::ostringstream os;
  os << "TABLE III: Statistics for TTC (in sec)"
     << (mask_like_paper ? "  [cells the paper could not record are hidden]" : "")
     << "\n";
  const char* sections[3] = {"Maximum TTC", "Average TTC", "Minimum TTC"};
  for (int section = 0; section < 3; ++section) {
    os << "-- " << sections[section] << " --\n";
    os << pad("Test", 6) << pad("NFI", 8);
    for (const auto& l : labels) os << pad(l, 8);
    os << "\n";
    for (const auto& row : rows) {
      if (mask_like_paper && paper_missing_ttc(row.subject)) continue;
      os << pad(row.subject, 6);
      auto cell = [&](const std::optional<metrics::TtcStats>& st) {
        if (!st) {
          os << pad("-", 8);
          return;
        }
        const units::Seconds v =
            section == 0 ? st->max : (section == 1 ? st->avg : st->min);
        os << pad(fmt(v.value()), 8);
      };
      cell(row.nfi);
      for (const auto& l : labels) cell(row.cells.at(l));
      os << "\n";
    }
  }
  return os.str();
}

std::vector<SrrRow> srr_rows(const CampaignResult& campaign,
                             const metrics::SrrConfig& config) {
  metrics::SrrAnalyzer analyzer{config};
  std::vector<SrrRow> rows;
  for (const SubjectResult* s : campaign.included()) {
    SrrRow row;
    row.subject = s->profile.id;

    const auto g = analyzer.analyze(s->golden.trace);
    if (g.valid() && g.duration >= config.min_duration) row.nfi = g.rate_per_min;
    const auto f = analyzer.analyze(s->faulty.trace);
    if (f.valid() && f.duration >= config.min_duration) row.fi = f.rate_per_min;

    double sum = 0.0;
    int n = 0;
    for (const std::string& label : fault_labels()) {
      std::size_t reversals = 0;
      units::Seconds duration{};
      for (const auto& [start, stop] : label_windows(s->faulty.trace, label)) {
        const auto r = analyzer.analyze_window(s->faulty.trace, start, stop);
        reversals += r.reversals;
        duration += r.duration;
      }
      if (duration >= config.min_duration) {
        const double rate = static_cast<double>(reversals) / (duration.value() / 60.0);
        row.cells[label] = rate;
        sum += rate;
        ++n;
      } else {
        row.cells[label] = std::nullopt;
      }
    }
    if (n > 0) row.avg = sum / n;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_table4(const CampaignResult& campaign, bool mask_like_paper,
                          const metrics::SrrConfig& config) {
  const auto rows = srr_rows(campaign, config);
  const auto labels = fault_labels();
  std::ostringstream os;
  os << "TABLE IV: Statistics for SRR (in reversals per minute)"
     << (mask_like_paper ? "  [x = not recorded in the paper]" : "") << "\n";
  os << pad("Test", 6) << pad("NFI", 7) << pad("FI", 7);
  for (const auto& l : labels) os << pad(l, 7);
  os << pad("Avg", 7) << "\n";

  std::map<std::string, util::RunningStats> col_stats;
  util::RunningStats nfi_stats, fi_stats, avg_stats;
  for (const auto& row : rows) {
    os << pad(row.subject, 6);
    const bool mask_nfi = mask_like_paper && paper_missing_srr(row.subject, false);
    const bool mask_fi = mask_like_paper && paper_missing_srr(row.subject, true);
    auto cell = [&](const std::optional<double>& v, bool masked,
                    util::RunningStats* acc) {
      if (masked || !v) {
        os << pad(masked ? "x" : "-", 7);
        return;
      }
      if (acc != nullptr) acc->add(*v);
      os << pad(fmt(*v, 1), 7);
    };
    cell(row.nfi, mask_nfi, &nfi_stats);
    cell(row.fi, mask_fi, &fi_stats);
    for (const auto& l : labels) cell(row.cells.at(l), mask_fi, &col_stats[l]);
    cell(row.avg, mask_fi, &avg_stats);
    os << "\n";
  }
  os << pad("Avg", 6) << pad(nfi_stats.empty() ? "-" : fmt(nfi_stats.mean(), 2), 7)
     << pad(fi_stats.empty() ? "-" : fmt(fi_stats.mean(), 2), 7);
  for (const auto& l : labels) {
    os << pad(col_stats[l].empty() ? "-" : fmt(col_stats[l].mean(), 2), 7);
  }
  os << pad(avg_stats.empty() ? "-" : fmt(avg_stats.mean(), 2), 7) << "\n";
  return os.str();
}

CollisionSummary collision_summary(const CampaignResult& campaign) {
  CollisionSummary sum;
  const auto included = campaign.included();
  sum.included_subjects = included.size();
  for (const SubjectResult* s : included) {
    const auto golden = metrics::analyze_collisions(s->golden.trace);
    const auto faulty = metrics::analyze_collisions(s->faulty.trace);
    if (golden.any()) ++sum.golden_subjects_collided;
    if (faulty.any()) ++sum.faulty_subjects_collided;
    sum.golden_total_collisions += golden.total;
    sum.faulty_total_collisions += faulty.total;
    for (const auto& [label, count] : faulty.by_fault_label()) {
      sum.faulty_by_label[label] += count;
    }
  }
  return sum;
}

std::string render_collision_analysis(const CampaignResult& campaign) {
  const CollisionSummary sum = collision_summary(campaign);
  std::ostringstream os;
  os << "Collision analysis (sec. VI.E)\n";
  os << "  participants analysed:            " << sum.included_subjects << "\n";
  os << "  collided in golden run:           " << sum.golden_subjects_collided << " of "
     << sum.included_subjects << "\n";
  os << "  collided in faulty run:           " << sum.faulty_subjects_collided << " of "
     << sum.included_subjects << "\n";
  os << "  total collisions golden / faulty: " << sum.golden_total_collisions << " / "
     << sum.faulty_total_collisions << "\n";
  os << "  faulty-run collisions by active fault:\n";
  for (const auto& [label, count] : sum.faulty_by_label) {
    os << "    " << pad(label, 6) << count << "\n";
  }
  return os.str();
}

std::string render_questionnaire(const CampaignResult& campaign) {
  std::vector<QuestionnaireResponse> responses;
  for (const SubjectResult* s : campaign.included()) {
    responses.push_back(s->questionnaire);
  }
  const QuestionnaireSummary sum = summarize(responses);
  std::ostringstream os;
  os << "Questionnaire summary (sec. VI.F), " << sum.respondents << " respondents\n";
  os << "  1) gaming experience:        " << sum.gaming << " (recent: " << sum.recent_gaming
     << ")\n";
  os << "  2) car-racing games:         " << sum.racing << "\n";
  os << "  3) no driving-station exp.:  " << sum.no_station_experience
     << " (a few times: " << sum.station_few_times << ", once: " << sum.station_once
     << ")\n";
  os << "  4) QoE of faulty run:        mean " << fmt(sum.mean_qoe) << ", min "
     << fmt(sum.min_qoe, 0) << ", max " << fmt(sum.max_qoe, 0) << "\n";
  os << "  5) virtual testing useful:   " << sum.virtual_testing_useful << "\n";
  os << "  6) felt the faults:          " << sum.felt_difference << "\n";
  return os.str();
}

std::vector<MitigationRow> mitigation_rows(const CampaignResult& campaign) {
  std::vector<MitigationRow> rows;
  for (const SubjectResult* s : campaign.included()) {
    const mitigate::MitigationSummary& m = s->faulty.mitigation;
    MitigationRow row;
    row.subject = s->profile.id;
    row.dwell_nominal = m.dwell_nominal;
    row.dwell_degraded = m.dwell_degraded;
    row.dwell_impaired = m.dwell_impaired;
    row.dwell_link_loss = m.dwell_link_loss;
    row.interventions = m.interventions;
    row.mrm_activations = m.mrm_activations;
    row.mrm_time = m.mrm_time;
    row.standstill = metrics::standstill_time(s->faulty.trace);
    row.collisions = s->faulty.trace.collisions.size();
    rows.push_back(row);
  }
  return rows;
}

std::string render_mitigation(const CampaignResult& campaign) {
  std::ostringstream os;
  os << "Mitigation outcome (rdsim::mitigate, FI runs)\n";
  if (!campaign.config.mitigation.enabled) {
    os << "  mitigation disabled for this campaign\n";
    return os.str();
  }
  os << "  " << pad("subj", 5) << pad("nominal", 9) << pad("degraded", 9)
     << pad("impaired", 9) << pad("linkloss", 9) << pad("shaped", 8)
     << pad("MRM", 5) << pad("MRM[s]", 8) << pad("stop[s]", 8) << "crash\n";
  for (const MitigationRow& r : mitigation_rows(campaign)) {
    os << "  " << pad(r.subject, 5) << pad(fmt(r.dwell_nominal.value(), 1), 9)
       << pad(fmt(r.dwell_degraded.value(), 1), 9)
       << pad(fmt(r.dwell_impaired.value(), 1), 9)
       << pad(fmt(r.dwell_link_loss.value(), 1), 9)
       << pad(std::to_string(r.interventions), 8)
       << pad(std::to_string(r.mrm_activations), 5)
       << pad(fmt(r.mrm_time.value(), 1), 8)
       << pad(fmt(r.standstill.value(), 1), 8) << r.collisions << "\n";
  }
  return os.str();
}

std::string render_mitigation_ablation(const CampaignResult& baseline,
                                       const CampaignResult& mitigated) {
  const CollisionSummary base = collision_summary(baseline);
  const CollisionSummary mit = collision_summary(mitigated);
  std::ostringstream os;
  os << "Mitigation ablation (same seed: paired fault plans)\n";
  os << "  " << pad("", 26) << pad("baseline", 10) << "mitigated\n";
  os << "  " << pad("faulty-run collisions", 26)
     << pad(std::to_string(base.faulty_total_collisions), 10)
     << mit.faulty_total_collisions << "\n";
  os << "  " << pad("subjects that crashed", 26)
     << pad(std::to_string(base.faulty_subjects_collided), 10)
     << mit.faulty_subjects_collided << "\n";
  // Per-fault attribution: the paper's crash faults are the interesting rows.
  for (const std::string& label : fault_labels()) {
    const auto b = base.faulty_by_label.find(label);
    const auto m = mit.faulty_by_label.find(label);
    const std::size_t bc = b == base.faulty_by_label.end() ? 0 : b->second;
    const std::size_t mc = m == mit.faulty_by_label.end() ? 0 : m->second;
    if (bc == 0 && mc == 0) continue;
    os << "  " << pad("  collisions under " + label, 26)
       << pad(std::to_string(bc), 10) << mc << "\n";
  }
  // Completion cost: mitigation trades time for safety.
  auto mean_duration = [](const CampaignResult& c) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const SubjectResult* s : c.included()) {
      sum += s->faulty.duration.value();
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };
  auto completed = [](const CampaignResult& c) {
    std::size_t n = 0;
    for (const SubjectResult* s : c.included()) n += s->faulty.completed ? 1 : 0;
    return n;
  };
  os << "  " << pad("mean FI duration [s]", 26)
     << pad(fmt(mean_duration(baseline), 1), 10) << fmt(mean_duration(mitigated), 1)
     << "\n";
  os << "  " << pad("FI runs completed", 26) << pad(std::to_string(completed(baseline)), 10)
     << completed(mitigated) << "\n";
  return os.str();
}

}  // namespace rdsim::core::report
