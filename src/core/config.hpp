// Configuration of the remote driving system under test.
//
// StationConfig captures Table I (the driving station) plus the timing
// characteristics that matter to the closed loop: video frame rate (the
// paper reports 25–30 fps), display latency, input-device latency and the
// command rate of the CARLA client. RdsConfig assembles the full system:
// transports, frame sizes and the loop rates of the testbed.
#pragma once

#include <string>

#include "net/reliable_stream.hpp"
#include "sim/vehicle.hpp"
#include "util/units.hpp"

namespace rdsim::core {

/// Table I — Technical Specifications for Driving Station. The hardware
/// strings are documentation; the numeric fields feed the models.
struct StationConfig {
  std::string cpu_ram{"Intel Core i7-12700K (12-core), 16 Gb RAM"};
  std::string monitor{"34\" Samsung WQHD (3440x1440) curved"};
  std::string input_device{"Logitech G27 steering wheel and pedals"};
  std::string gpu{"NVIDIA GeForce RTX 3080, 10 Gb"};
  std::string operating_system{"Ubuntu 18.04"};
  std::string nvidia_driver{"470.103.01"};

  double video_fps{27.0};                  ///< §V.A: 25-30 fps
  units::Millis display_latency{12.0};     ///< scan-out + panel latency
  units::Millis input_latency{8.0};        ///< USB polling + driver
  double wheel_range_deg{900.0};           ///< G27 lock-to-lock
  double command_rate_hz{30.0};            ///< CARLA client control loop
};

/// Video encoding model: frames are semantic snapshots but their declared
/// wire size models the transported bitstream so the network treats them
/// like real traffic. CARLA's sensor stream ships *uncompressed* images, so
/// one camera frame is megabytes: ~6 MB here, i.e. ~92 TCP segments on a
/// 64 KB-MTU loopback. That multiplicity is what makes the paper's loss
/// grades so different: at loss rate p virtually every frame loses a
/// segment once 31p >~ 1 (brief fast-retransmit stutter), and a frame takes
/// a full RTO freeze (200 ms+) when a retransmission is lost too, at rate
/// ~92 p^2 per frame — negligible at 1 %, every few seconds at 2 %, several
/// times per second at 5 %, and continuous at 10 %.
struct VideoConfig {
  std::uint32_t frame_wire_bytes{6000000};
  std::uint32_t command_wire_bytes{200};
  /// Drop frames at the sender when this many segments are still queued
  /// un-transmitted (CARLA's sensor stream slows down rather than queueing
  /// unboundedly when the transport falls behind).
  std::size_t sender_backlog_limit{96};
};

/// The full RDS assembly.
struct RdsConfig {
  StationConfig station{};
  VideoConfig video{};
  net::StreamConfig transport{};        ///< shared by video & command streams
  sim::VehicleParams vehicle{};
  double road_scale{1.0};               ///< world geometry scale (model rig: 0.25)
  std::string device{"lo"};             ///< emulated interface under tc control

  double physics_hz{100.0};
  double comms_hz{400.0};               ///< network/operator sub-tick rate
  double log_hz{20.0};                  ///< trace sampling rate

  /// Use unreliable datagrams instead of the TCP-like stream (ablation).
  bool datagram_video{false};
  bool datagram_commands{false};

  /// Configuration approximating the remotely operated scaled-down model
  /// vehicle used for the §VIII validity comparison: faster plant, lower
  /// resolution / rate camera link, snappier control loop.
  static RdsConfig scaled_model_vehicle();
};

}  // namespace rdsim::core
