// Experiment harness: the paper's test process (§V.E).
//
// Each subject performs a golden run (no faults) and a faulty run where
// faults from the §V.C model are injected at points of interest. The fault
// assigned to a given POI is randomized per subject ("if a 5 ms delay was
// injected for one test subject, a 5 % packet loss might have been injected
// in the same scenario for another"), then the subject answers the §V.E.3
// questionnaire. The harness runs the whole campaign deterministically from
// one seed.
#pragma once

#include "check/replay.hpp"
#include "core/teleop.hpp"
#include "mitigate/mitigation.hpp"
#include "obs/report.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace rdsim::core {

struct ExperimentConfig {
  /// Campaign seed. The default realization was selected (from a sweep of
  /// 24 seeds, see EXPERIMENTS.md) as the one whose collision pattern best
  /// matches the paper's single human realization: crashes only under
  /// 50 ms delay and 5 % loss, with golden-run crashes present. Any other
  /// seed gives a statistically equivalent campaign.
  std::uint64_t seed{14};
  // Folded by experiment_config_fingerprint(), not the campaign field
  // lists: these sub-configs predate campaign_fields.hpp and keep their
  // own fingerprint so goldens stay stable.
  RdsConfig rds{};                   // lint:allow(unhashed: experiment_config_fingerprint covers it)
  SafetyMonitorConfig safety{};      // lint:allow(unhashed: experiment_config_fingerprint covers it)
  /// Fraction of POIs that receive a fault in the faulty run.
  double poi_fault_probability{0.95};
  /// Relative weights of the five faults, in paper_fault_model() order
  /// (defaults approximate the Table II totals 20/30/24/31/29).
  std::vector<double> fault_weights{20, 30, 24, 31, 29};
  /// When positive, caps each run's simulated duration below the scenario's
  /// own time limit. The default 0 runs the full route; tests use small caps
  /// to exercise the whole pipeline on miniature campaigns.
  units::Seconds run_time_limit{};
  /// Opt-in graceful-degradation + MRM stack, applied to every run of the
  /// campaign. A mitigated campaign at the same seed keeps the exact fault
  /// plans of its unmitigated twin (the plan RNG stream is independent of
  /// mitigation), so the two form a paired ablation.
  mitigate::MitigationConfig mitigation{};
};

struct SubjectResult {
  SubjectProfile profile;
  RunResult golden;   ///< NFI run
  RunResult faulty;   ///< FI run
  QuestionnaireResponse questionnaire;
};

struct CampaignResult {
  ExperimentConfig config;
  std::vector<SubjectResult> subjects;  ///< all 12, including the excluded T7

  /// Subjects retained for analysis (§VI.A drops T7).
  std::vector<const SubjectResult*> included() const;
};

class ExperimentHarness {
 public:
  explicit ExperimentHarness(ExperimentConfig config = {});

  /// Fault plan for one subject: one weighted-random fault per selected POI.
  std::vector<FaultAssignment> make_fault_plan(const sim::Scenario& scenario,
                                               util::Random& rng) const;

  /// Golden + faulty run for one subject on the standard test route. The
  /// optional recorders capture per-tick replay hashes of the two runs, for
  /// pinpointing determinism failures via check::diff_replays.
  SubjectResult run_subject(const SubjectProfile& profile,
                            check::ReplayRecorder* golden_replay = nullptr,
                            check::ReplayRecorder* faulty_replay = nullptr) const;

  /// The full 12-subject campaign, serially.
  CampaignResult run_campaign() const;

  /// The same campaign executed on a fixed-size thread pool, one task per
  /// subject, results aggregated in subject order. Every RNG stream is
  /// derived from (campaign seed, subject, purpose) by SplitMix sub-seeding
  /// rather than drawn from a shared sequence, so the result — and its
  /// check::campaign_hash — is bit-identical to run_campaign() for every
  /// worker count. `n_workers` 0 means hardware concurrency.
  CampaignResult run_campaign_parallel(std::size_t n_workers) const;

  const ExperimentConfig& config() const { return config_; }

  /// Attach an observability collector. Each run (golden and faulty) then
  /// executes under its own obs::Context — installed thread-locally, so this
  /// works identically for serial and pooled campaigns — and is submitted
  /// under its run id ("T01-NFI"). Pass nullptr to detach. The collector
  /// must outlive every campaign call.
  void set_collector(obs::CampaignCollector* collector) { collector_ = collector; }
  obs::CampaignCollector* collector() const { return collector_; }

 private:
  QuestionnaireResponse make_questionnaire(const SubjectProfile& profile,
                                           const RunResult& faulty,
                                           util::Random& rng) const;

  /// The test-route scenario with the configured run-time cap applied.
  sim::Scenario make_run_scenario() const;

  ExperimentConfig config_;
  obs::CampaignCollector* collector_{nullptr};
};

}  // namespace rdsim::core
