#include "core/vehicle_subsystem.hpp"

#include "mitigate/mitigation.hpp"
#include "mitigate/mrm.hpp"
#include "sim/frame.hpp"
#include "sim/road.hpp"
#include "sim/scenario.hpp"
#include "sim/types.hpp"
#include "util/time.hpp"

namespace rdsim::core {

VehicleSubsystem::VehicleSubsystem(const RdsConfig& config, sim::Scenario scenario,
                                   SafetyMonitorConfig safety, std::uint64_t seed)
    : config_{config},
      safety_{safety},
      world_{sim::make_town05_route(config.road_scale), config.vehicle},
      runtime_{std::move(scenario), world_},
      rng_{seed, /*stream=*/0x76656869636c65ULL} {}

void VehicleSubsystem::step_physics(units::Seconds dt) {
  world_.step(dt);
  runtime_.step();
  if (safety_.enabled) apply_safety(world_.now());
  if (mrm_ != nullptr) apply_mrm(world_.now(), dt);
}

void VehicleSubsystem::enable_mitigation(const mitigate::WatchdogConfig& watchdog) {
  mrm_ = std::make_unique<mitigate::MrmController>(watchdog,
                                                   config_.vehicle.max_brake_decel);
}

std::optional<VehicleSubsystem::EncodedFrame> VehicleSubsystem::maybe_encode_frame(
    util::TimePoint now) {
  if (now < next_frame_) return std::nullopt;
  // 25-30 fps: jitter the frame interval around the configured rate.
  const double base_period = 1.0 / config_.station.video_fps;
  const double period = base_period * rng_.uniform(0.93, 1.09);
  next_frame_ = now + util::Duration::seconds(period);

  const sim::WorldFrame frame = world_.snapshot();
  EncodedFrame out;
  out.payload = frame.encode();
  out.wire_size = config_.video.frame_wire_bytes;
  ++frames_encoded_;
  return out;
}

void VehicleSubsystem::on_command(const CommandMsg& msg, util::TimePoint now) {
  if (any_command_ && msg.sequence <= last_command_seq_) {
    ++commands_stale_;
    return;
  }
  any_command_ = true;
  last_command_seq_ = msg.sequence;
  last_command_sent_us_ = msg.sent_at_us;
  latched_control_ = msg.control;
  ++commands_applied_;

  // While the MRM holds the vehicle the remote command is latched (so the
  // operator resumes from their latest input on release) but not applied.
  if (mrm_ != nullptr && mrm_->engaged()) return;

  sim::VehicleControl applied = latched_control_;
  if (safety_.enabled && safety_engaged_) {
    // Remote throttle is suppressed while the monitor holds the vehicle.
    applied.throttle = 0.0;
    applied.brake = std::max(applied.brake, safety_.brake_level);
  }
  world_.apply_ego_control(applied);
  (void)now;
}

units::Seconds VehicleSubsystem::command_age(util::TimePoint now) const {
  if (!any_command_) return units::Seconds{std::numeric_limits<double>::infinity()};
  return units::Seconds{
      (now - util::TimePoint::from_micros(last_command_sent_us_)).to_seconds()};
}

void VehicleSubsystem::apply_safety(util::TimePoint now) {
  const units::Seconds age = command_age(now);
  const units::MetersPerSecond speed{world_.ego().vehicle().forward_speed()};
  const bool should_engage = std::isfinite(age.value()) &&
                             age > safety_.max_command_age && speed > safety_.speed_cap;
  if (should_engage && !safety_engaged_) {
    safety_engaged_ = true;
    ++safety_activations_;
  } else if (safety_engaged_ && std::isfinite(age.value()) &&
             age < safety_.max_command_age / 2.0 && speed <= safety_.speed_cap) {
    safety_engaged_ = false;
  }
  if (safety_engaged_) {
    sim::VehicleControl degraded = latched_control_;
    degraded.throttle = 0.0;
    degraded.brake = std::max(degraded.brake, safety_.brake_level);
    world_.apply_ego_control(degraded);
  }
}

void VehicleSubsystem::apply_mrm(util::TimePoint now, units::Seconds dt) {
  const units::MetersPerSecond speed{world_.ego().vehicle().forward_speed()};
  if (auto control = mrm_->update(command_age(now), speed, world_.project_ego(),
                                  dt, now)) {
    world_.apply_ego_control(*control);
  }
}

}  // namespace rdsim::core
