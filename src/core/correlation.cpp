#include "core/correlation.hpp"

#include <sstream>

#include "metrics/srr.hpp"
#include "metrics/ttc.hpp"
#include "util/stats.hpp"

namespace rdsim::core {

std::vector<SubjectFeatures> extract_features(const CampaignResult& campaign) {
  metrics::SrrAnalyzer srr;
  metrics::TtcAnalyzer ttc;
  std::vector<SubjectFeatures> out;
  for (const SubjectResult* s : campaign.included()) {
    SubjectFeatures f;
    f.subject = s->profile.id;
    f.gaming = s->profile.gaming_experience ? 1.0 : 0.0;
    f.racing = s->profile.racing_game_experience ? 1.0 : 0.0;
    f.station_experience = static_cast<double>(s->profile.station_experience);

    const auto srr_g = srr.analyze(s->golden.trace);
    const auto srr_f = srr.analyze(s->faulty.trace);
    f.faulty_srr = srr_f.rate_per_min;
    f.srr_increase = srr_f.rate_per_min - srr_g.rate_per_min;
    f.faulty_collisions = static_cast<double>(s->faulty.trace.collisions.size());
    const auto ttc_f = ttc.summarize(ttc.series(s->faulty.trace));
    f.min_ttc_faulty = ttc_f.valid() ? ttc_f.min.value() : 0.0;
    f.qoe = s->faulty.qoe.score();
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<CorrelationRow> correlate(const CampaignResult& campaign) {
  const auto features = extract_features(campaign);
  struct Axis {
    std::string name;
    double SubjectFeatures::* member;
  };
  const Axis experience[] = {
      {"gaming", &SubjectFeatures::gaming},
      {"racing games", &SubjectFeatures::racing},
      {"station experience", &SubjectFeatures::station_experience},
  };
  const Axis performance[] = {
      {"faulty-run SRR", &SubjectFeatures::faulty_srr},
      {"SRR increase", &SubjectFeatures::srr_increase},
      {"faulty collisions", &SubjectFeatures::faulty_collisions},
      {"min TTC (faulty)", &SubjectFeatures::min_ttc_faulty},
      {"QoE", &SubjectFeatures::qoe},
  };
  std::vector<CorrelationRow> rows;
  for (const Axis& e : experience) {
    std::vector<double> xs;
    for (const auto& f : features) xs.push_back(f.*(e.member));
    for (const Axis& p : performance) {
      std::vector<double> ys;
      for (const auto& f : features) ys.push_back(f.*(p.member));
      CorrelationRow row;
      row.experience = e.name;
      row.performance = p.name;
      row.n = features.size();
      row.r = util::pearson(xs, ys);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string render_correlations(const CampaignResult& campaign) {
  std::ostringstream os;
  os << "Experience vs performance correlations (Pearson r, n = "
     << campaign.included().size() << " subjects)\n";
  os << "  '-' means undefined: no variance in the experience feature,\n"
     << "  which is exactly the homogeneity problem the paper reports.\n";
  for (const auto& row : correlate(campaign)) {
    os << "  " << row.experience << " x " << row.performance << ": ";
    if (row.r) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%+.2f", *row.r);
      os << buf;
    } else {
      os << "-";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rdsim::core
