#include "core/teleop.hpp"

#include "check/frame_hash.hpp"
#include "mitigate/governor.hpp"
#include "mitigate/link_quality.hpp"
#include "mitigate/mitigation.hpp"
#include "mitigate/mrm.hpp"
#include "net/datagram.hpp"
#include "net/packet.hpp"
#include "net/reliable_stream.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "sim/frame.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rdsim::core {

namespace {

DriverParams with_station_latencies(DriverParams d, const StationConfig& station) {
  // Input-device latency adds dead time between the driver's hand and the
  // client sampling it; fold it into the perception-action dead time (the
  // display latency is modelled explicitly in OperatorSubsystem::on_frame).
  d.reaction_time_s += station.input_latency.to_seconds().value();
  return d;
}

}  // namespace

TeleopSession::TeleopSession(RunConfig config, sim::Scenario scenario)
    : config_{std::move(config)},
      tc_{config_.seed},
      channel_{tc_, config_.rds.device},
      router_{channel_},
      injector_{tc_, config_.rds.device},
      vehicle_{config_.rds, std::move(scenario), config_.safety, config_.seed},
      recorder_{config_.run_id, config_.subject_id, config_.fault_injected,
                config_.rds.log_hz} {
  const auto& rds = config_.rds;
  if (rds.datagram_video) {
    video_dgram_ = std::make_unique<net::DatagramSocket>(
        router_, channel_, kVideoStreamId, net::LinkDirection::kDownlink);
  } else {
    video_stream_ = std::make_unique<net::ReliableStream>(
        router_, channel_, kVideoStreamId, net::LinkDirection::kDownlink, rds.transport);
  }
  if (rds.datagram_commands) {
    command_dgram_ = std::make_unique<net::DatagramSocket>(
        router_, channel_, kCommandStreamId, net::LinkDirection::kUplink);
  } else {
    command_stream_ = std::make_unique<net::ReliableStream>(
        router_, channel_, kCommandStreamId, net::LinkDirection::kUplink, rds.transport);
  }

  operator_ = std::make_unique<OperatorSubsystem>(
      rds.station,
      DriverModel{with_station_latencies(config_.driver, rds.station),
                  &vehicle_.runtime().scenario(), &vehicle_.world().road(),
                  util::Random{config_.seed, 0x647269766572ULL}});

  if (config_.mitigation.enabled) {
    estimator_ = std::make_unique<mitigate::LinkQualityEstimator>(
        config_.mitigation.estimator);
    governor_ = std::make_unique<mitigate::DegradationGovernor>(
        config_.mitigation.governor);
    vehicle_.enable_mitigation(config_.mitigation.watchdog);
  }

  comms_dt_ = util::Duration::seconds(1.0 / rds.comms_hz);
  physics_dt_ = util::Duration::seconds(1.0 / rds.physics_hz);
  next_physics_ = clock_.now();
}

void TeleopSession::update_fault_plan() {
  const units::Meters s = vehicle_.runtime().ego_position();
  const sim::Scenario& scenario = vehicle_.runtime().scenario();

  // Find the planned assignment whose POI contains the ego position.
  std::optional<std::size_t> due;
  for (std::size_t i = 0; i < config_.plan.size(); ++i) {
    for (const sim::PoiWindow& poi : scenario.pois) {
      if (poi.name == config_.plan[i].poi && s >= poi.from && s < poi.to) {
        due = i;
        break;
      }
    }
    if (due) break;
  }

  if (due != active_assignment_) {
    if (active_assignment_ && injector_.active()) injector_.remove(clock_.now());
    if (due) injector_.inject(config_.plan[*due].fault, clock_.now());
    active_assignment_ = due;
  }
}

void TeleopSession::pump_video(util::TimePoint now) {
  if (auto frame = vehicle_.maybe_encode_frame(now)) {
    if (video_stream_) {
      if (video_stream_->send_backlog() > config_.rds.video.sender_backlog_limit) {
        ++frames_skipped_sender_;  // transport is behind: drop, don't queue
      } else {
        video_stream_->send_message(std::move(frame->payload), frame->wire_size, now);
      }
    } else {
      video_dgram_->send(std::move(frame->payload), frame->wire_size, now);
    }
  }
  if (video_stream_) {
    video_stream_->step(now);
    while (auto msg = video_stream_->pop_delivered()) {
      if (auto decoded = sim::WorldFrame::decode(msg->bytes)) {
        if (governor_) perceived_speed_ = units::MetersPerSecond{decoded->ego.state.speed()};
        operator_->on_frame(*decoded, now);
      }
    }
  } else {
    while (auto msg = video_dgram_->receive_latest()) {
      if (auto decoded = sim::WorldFrame::decode(msg->bytes)) {
        if (governor_) perceived_speed_ = units::MetersPerSecond{decoded->ego.state.speed()};
        operator_->on_frame(*decoded, now);
      }
    }
  }
}

void TeleopSession::update_mitigation(util::TimePoint now) {
  // Estimation reads only observables that already exist: the transports'
  // own stats and the display staleness the driver model experiences. With
  // datagram transports there is no SRTT/retransmit telemetry and the
  // governor acts on staleness alone.
  const bool refreshed = estimator_->update(
      video_stream_ ? &video_stream_->stats() : nullptr,
      command_stream_ ? &command_stream_->stats() : nullptr,
      operator_->driver().display_staleness(now), now);
  if (refreshed) governor_->update(estimator_->quality(), now);
}

void TeleopSession::pump_commands(util::TimePoint now) {
  if (auto cmd = operator_->poll(now)) {
    // The governor sits between the driver's wheel and the uplink: in any
    // state but NOMINAL it shapes the command under the state's limits.
    if (governor_) cmd->control = governor_->shape(cmd->control, perceived_speed_, now);
    if (command_stream_) {
      command_stream_->send_message(cmd->encode(),
                                    config_.rds.video.command_wire_bytes, now);
    } else {
      command_dgram_->send(cmd->encode(), config_.rds.video.command_wire_bytes, now);
    }
  }
  if (command_stream_) {
    command_stream_->step(now);
    while (auto msg = command_stream_->pop_delivered()) {
      if (auto decoded = CommandMsg::decode(msg->bytes)) {
        vehicle_.on_command(*decoded, now);
      }
    }
  } else {
    while (auto msg = command_dgram_->receive_latest()) {
      if (auto decoded = CommandMsg::decode(msg->bytes)) {
        vehicle_.on_command(*decoded, now);
      }
    }
  }
}

bool TeleopSession::step() {
  if (finished_) return false;
  RDSIM_OBS_TIMER(obs::metric::kPhaseStep);
  const util::TimePoint now = clock_.now();

  // Physics sub-steps due at this tick.
  {
    RDSIM_OBS_TIMER(obs::metric::kPhasePhysics);
    while (next_physics_ <= now) {
      vehicle_.step_physics(units::Seconds::from_duration(physics_dt_));
      recorder_.step(vehicle_.world());
      if (config_.replay != nullptr) {
        check::Fnv1a net;
        net.u64(check::hash_channel(channel_));
        net.u64(check::hash_qdisc(tc_.root(config_.rds.device)));
        config_.replay->record_tick(vehicle_.world().frame_counter(),
                                    check::hash_frame(vehicle_.world().snapshot()),
                                    net.digest());
      }
      next_physics_ += physics_dt_;
    }
  }

  {
    RDSIM_OBS_TIMER(obs::metric::kPhaseFaults);
    update_fault_plan();
    injector_.step(now);
  }

  {
    RDSIM_OBS_TIMER(obs::metric::kPhaseVideo);
    pump_video(now);
  }
  {
    RDSIM_OBS_TIMER(obs::metric::kPhaseRouter);
    router_.poll(now);
  }
  if (estimator_) {
    RDSIM_OBS_TIMER(obs::metric::kPhaseMitigate);
    update_mitigation(now);
  }
  {
    RDSIM_OBS_TIMER(obs::metric::kPhaseCommands);
    pump_commands(now);
  }

  clock_.advance(comms_dt_);

  if (vehicle_.runtime().complete() || vehicle_.runtime().timed_out()) {
    if (injector_.active()) injector_.remove(clock_.now());
    finished_ = true;
    return false;
  }
  return true;
}

RunResult TeleopSession::run() {
  while (step()) {
  }
  recorder_.ingest_fault_log(injector_.log());

  RunResult result;
  result.completed = vehicle_.runtime().complete();
  result.timed_out = vehicle_.runtime().timed_out();
  result.duration = units::Seconds{clock_.now().to_seconds()};
  result.qoe = operator_->qoe();
  if (video_stream_) result.video_stats = video_stream_->stats();
  if (command_stream_) result.command_stats = command_stream_->stats();
  result.mean_downlink_latency =
      channel_.stats(net::LinkDirection::kDownlink).mean_latency();
  result.mean_uplink_latency =
      channel_.stats(net::LinkDirection::kUplink).mean_latency();
  result.frames_encoded = vehicle_.frames_encoded();
  result.frames_displayed = operator_->frames_displayed();
  result.frames_skipped_sender = frames_skipped_sender_;
  result.safety_activations = vehicle_.safety_activations();
  result.faults_injected = injector_.injections();

  // Transport QoE: one source of truth — the streams' own StreamStats,
  // summed over both directions (zero with datagram transports).
  result.qoe.transport.retransmits_rto =
      result.video_stats.retransmits_rto + result.command_stats.retransmits_rto;
  result.qoe.transport.retransmits_fast =
      result.video_stats.retransmits_fast + result.command_stats.retransmits_fast;
  result.qoe.transport.stale_segments =
      result.video_stats.stale_segments + result.command_stats.stale_segments;

  if (governor_) {
    governor_->finalize(clock_.now());
    mitigate::MitigationSummary& m = result.mitigation;
    m.enabled = true;
    m.dwell_nominal = governor_->dwell(mitigate::LinkState::kNominal);
    m.dwell_degraded = governor_->dwell(mitigate::LinkState::kDegraded);
    m.dwell_impaired = governor_->dwell(mitigate::LinkState::kImpaired);
    m.dwell_link_loss = governor_->dwell(mitigate::LinkState::kLinkLoss);
    m.transitions = governor_->transitions();
    m.interventions = governor_->interventions();
    const mitigate::MrmController* mrm = vehicle_.mrm();
    m.watchdog_firings = mrm->watchdog_firings();
    m.mrm_activations = mrm->activations();
    m.mrm_time = mrm->engaged_time();
    m.mrm_standstill = mrm->reached_standstill();
    m.final_rtt = estimator_->quality().rtt;
    m.final_loss = estimator_->quality().loss;
  }

  result.trace = recorder_.take();
  return result;
}

}  // namespace rdsim::core
