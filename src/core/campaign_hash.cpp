#include "core/campaign_hash.hpp"

#include "check/hash.hpp"
#include "core/campaign_fields.hpp"

namespace rdsim::check {

namespace {

/// Archive that folds the visited fields into an FNV-1a digest.
struct HashArchive {
  Fnv1a h;

  void f64(const double& v) { h.f64(v); }
  template <typename Q>
  void qty(const Q& v) {
    h.f64(v.value());  // typed quantities hash as their raw double
  }
  void u32(const std::uint32_t& v) { h.u32(v); }
  void u64(const std::uint64_t& v) { h.u64(v); }
  void i32(const int& v) { h.i64(v); }
  void sz(const std::size_t& v) { h.u64(static_cast<std::uint64_t>(v)); }
  void b(const bool& v) { h.boolean(v); }
  void str(const std::string& s) { h.str(s); }
  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn fn) {
    h.u64(v.size());
    for (const T& e : v) fn(*this, e);
  }
  /// Conditional block: folds nothing when the flag is false, so objects
  /// with the feature disabled hash exactly as they did before the block's
  /// fields existed. When enabled, the flag itself is folded first so an
  /// enabled-but-all-zero block cannot collide with a disabled one.
  template <typename Fn>
  void opt_block(const bool& flag, Fn fn) {
    if (flag) {
      h.boolean(true);
      fn(*this);
    }
  }
};

}  // namespace

std::uint64_t hash_run(const core::RunResult& run) {
  HashArchive ar;
  core::detail::run_fields(ar, run);
  return ar.h.digest();
}

std::uint64_t hash_subject(const core::SubjectResult& subject) {
  HashArchive ar;
  core::detail::subject_fields(ar, subject);
  return ar.h.digest();
}

std::uint64_t campaign_hash(const core::CampaignResult& campaign) {
  HashArchive ar;
  core::detail::campaign_fields(ar, campaign);
  return ar.h.digest();
}

}  // namespace rdsim::check
