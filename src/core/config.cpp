#include "core/config.hpp"

#include "sim/vehicle.hpp"

namespace rdsim::core {

RdsConfig RdsConfig::scaled_model_vehicle() {
  RdsConfig cfg;
  cfg.station.video_fps = 30.0;
  cfg.station.display_latency = units::Millis{8.0};
  cfg.station.command_rate_hz = 50.0;
  // Smartphone-class camera link (§II.A, Liu et al.): smaller frames, still
  // split into a couple of radio-sized packets.
  cfg.video.frame_wire_bytes = 60000;
  cfg.transport.mtu = 8000;        // radio-sized packets: 8 per frame
  cfg.transport.window_segments = 32;  // small radio link buffer
  cfg.vehicle = sim::VehicleParams::scaled_model_vehicle();
  cfg.road_scale = 0.25;  // quarter-scale course to match the vehicle
  return cfg;
}

}  // namespace rdsim::core
