// Synthetic human operator — the substitute for the paper's test subjects.
//
// The paper's causal chain is: network fault -> the operator's displayed
// view is stale or frozen and commands arrive late -> degraded control ->
// lower TTC, higher SRR, crashes. The driver model reproduces the human
// half of that chain with well-established components:
//
//   perception  — the driver acts on the *displayed* frame (whatever the
//                 video stream last delivered), passed through a reaction-
//                 time dead time. Humans do not extrapolate scene motion at
//                 these timescales, so a frozen display means frozen input.
//   lateral     — pure-pursuit preview steering toward the instructed lane,
//                 a neuromuscular first-order lag with rate limiting,
//                 an error dead-zone (drivers do not correct imperceptible
//                 errors) and Ornstein-Uhlenbeck correction noise. The
//                 dead-zone plus noise produce the characteristic ~5 rev/min
//                 baseline steering reversal rate of Table IV.
//   longitudinal— Intelligent-Driver-Model car following on the perceived
//                 lead gap, an emergency-brake reflex at short perceived
//                 TTC, and a caution response that eases off the pedals
//                 when the display freezes (the paper's subjects "drove
//                 more cautiously in presence of network disturbances").
//   intermittency — decisions update at ~10-15 Hz, not continuously.
//
// All parameters vary per test subject (see subjects.hpp).
#pragma once

#include <optional>

#include "sim/frame.hpp"
#include "sim/scenario.hpp"
#include "util/delay_line.hpp"
#include "util/rng.hpp"

namespace rdsim::core {

struct DriverParams {
  double reaction_time_s{0.28};       ///< perception-action dead time
  double prediction_gain{0.85};       ///< fraction of internal latency the
                                      ///< driver compensates by dead-reckoning
  double neuromuscular_tau_s{0.12};   ///< steering output lag
  double wheel_rate_limit{1.6};       ///< steer fraction per second
  double steer_noise{0.0006};         ///< OU noise sigma, steer fraction
  double noise_tau_s{0.7};            ///< OU time constant
  double steer_deadzone{0.002};       ///< ignore corrections below this
  double control_rate_hz{12.0};       ///< decision update rate
  double lookahead_time_s{2.2};       ///< far-point preview horizon, cruising
  double manoeuvre_lookahead_s{1.15}; ///< preview while actively changing line
  double min_lookahead_m{6.0};
  // Two-point steering (Salvucci & Gray): the far point gives stable
  // anticipatory steering; the near-point compensatory loop keeps the car
  // centred and is the part that added latency destabilizes.
  double near_gain{0.010};            ///< steer fraction per metre of error
  double near_lead_s{0.8};            ///< anticipation on the error rate
  // Freeze-recovery startle: when the display unfreezes after a stall the
  // driver re-acquires the scene with an over-vigorous correction — the
  // dominant source of extra steering reversals under packet loss.
  double startle_threshold_s{0.18};   ///< freeze length that startles
  double startle_duration_s{1.0};     ///< how long the over-correction lasts
  double startle_gain{2.5};           ///< near-loop gain multiplier
  double startle_noise_mult{2.5};     ///< noise burst multiplier

  // Car-following: remote drivers in the paper ran visibly tight margins
  // (golden-run minimum TTC of 0.85-3.8 s in Table III), so the defaults
  // follow closer than a textbook IDM would.
  double idm_time_headway_s{1.0};
  double idm_max_accel{1.8};
  double idm_comfort_brake{2.4};
  double idm_min_gap_m{5.0};
  double emergency_ttc_s{1.5};        ///< perceived TTC triggering full brake

  // Perceptual precision: the driver's estimate of their lateral position
  // wanders (slow OU process). A single flat screen gives ~decimetre
  // precision; staleness degrades it sharply because the scene the driver
  // reasons about is no longer where the vehicle is.
  double position_noise_m{0.07};
  double staleness_noise_gain{3.0};   ///< extra sigma per second of staleness
  double position_noise_tau_s{0.8};
  /// Instantaneous misjudgement ("scene jump") when the display unfreezes:
  /// with probability `startle_jump_prob` the driver re-acquires the scene
  /// wrongly, by ~`startle_jump_m_per_s` metres per second of freeze. Rare
  /// but large errors: they drive the crash tail without flooding the
  /// steering signal (SRR) the way continuous noise would.
  double startle_jump_prob{0.8};
  double startle_jump_m_per_s{3.0};

  // The driver's internal model of the plant they are steering (learned in
  // training): used for pursuit gains and self-motion dead-reckoning. Must
  // match the actual vehicle for stable control.
  double vehicle_wheelbase_m{2.7};
  double vehicle_max_steer_deg{40.0};

  double speed_compliance{1.0};       ///< multiplies the instructed speed
  double freeze_caution_s{0.6};      ///< display staleness that worries the driver
  double caution_gain{0.55};          ///< how strongly the driver slows down then
  bool mirrored_steering{false};      ///< subject T7's left-hand-drive habit
};

/// What the operator's display shows the driver.
struct DisplayedView {
  sim::WorldFrame frame{};
  util::TimePoint displayed_at{};   ///< when this frame appeared on screen
};

class DriverModel {
 public:
  DriverModel(DriverParams params, const sim::Scenario* scenario,
              const sim::RoadNetwork* road, util::Random rng);

  /// Feed a newly displayed frame (call whenever the display updates).
  void observe(const DisplayedView& view);

  /// Produce the wheel/pedal state at time `now`. Call at the operator tick
  /// rate; decisions refresh internally at control_rate_hz.
  sim::VehicleControl actuate(util::TimePoint now);

  const DriverParams& params() const { return params_; }

  /// Time since the display last changed (inf if never updated). Also the
  /// staleness observable the mitigation link-quality estimator consumes.
  units::Seconds display_staleness(util::TimePoint now) const;

 private:
  struct Decision {
    double steer_target{0.0};
    double throttle{0.0};
    double brake{0.0};
  };

  Decision decide(util::TimePoint now);
  /// IDM acceleration toward `target_speed` given an optional perceived
  /// lead (gap m, closing-relevant lead speed m/s).
  double idm_accel(double speed, double target_speed,
                   std::optional<std::pair<double, double>> lead) const;

  DriverParams params_;
  const sim::Scenario* scenario_;
  const sim::RoadNetwork* road_;
  util::Random rng_;

  util::DelayLine<DisplayedView> perception_;
  std::optional<util::TimePoint> last_display_change_;
  std::uint32_t last_frame_id_{0};
  util::TimePoint startle_until_{};

  util::TimePoint next_decision_{};
  Decision decision_{};
  double wheel_{0.0};          ///< neuromuscular output state
  double ou_noise_{0.0};
  double pos_noise_{0.0};      ///< perceived lateral position error, m
  double stuck_time_s_{0.0};
  double unstick_bias_{0.0};   ///< temporary lateral target shift, m
  double track_hint_s_{0.0};
  util::TimePoint last_actuate_{};
  bool first_actuate_{true};
};

}  // namespace rdsim::core
