// Training step (§V.E.1): every subject drives freely for three to five
// minutes in an empty town before the measured runs, to get familiar with
// the driving station — "especially the sensitivity of the steering wheel
// and the pedals".
//
// The model: familiarization shrinks the operator's motor noise and
// perception-action dead time toward an asymptote with a ~2-minute time
// constant. The returned profile is what the measured runs should use; the
// training trace itself is also returned so the familiarization curve can be
// inspected (SRR decreasing over the training drive).
#pragma once

#include "core/teleop.hpp"

namespace rdsim::core {

struct TrainingConfig {
  double minutes{4.0};            ///< §V.E.1: minimum 3, maximum 5
  double adaptation_tau_min{2.0}; ///< familiarization time constant
  /// Fractions of each parameter that training can remove at the asymptote.
  double noise_trainable{0.25};
  double reaction_trainable{0.12};
  RdsConfig rds{};
};

struct TrainingResult {
  SubjectProfile adapted;          ///< profile with post-training parameters
  RunResult run;                   ///< the free-drive session
  double improvement{0.0};         ///< fraction of trainable gap closed
  /// SRR over the first and last thirds of the training drive; a decreasing
  /// pair is the observable signature of familiarization.
  double early_srr{0.0};
  double late_srr{0.0};
};

/// Run the §V.E.1 training session for one subject. Deterministic.
TrainingResult run_training(const SubjectProfile& profile,
                            const TrainingConfig& config = {});

}  // namespace rdsim::core
