// Internal field lists over the campaign result types.
//
// One template per struct enumerates its fields exactly once; the archives in
// campaign_hash.cpp / campaign_io.cpp (hashing, serialization and
// deserialization) all walk the same lists, so the three views can never
// drift apart: any field added here is automatically hashed by
// check::campaign_hash and round-tripped by the campaign cache.
//
// The object type is a template parameter so the same list instantiates over
// `T&` (reading into) and `const T&` (hashing / writing out). Archives
// provide: f64, u32, u64, i32, sz (std::size_t), b (bool), str,
// vec(v, element_fn), and opt_block(flag, fn) — a conditional block keyed on
// a bool field. opt_block is how opt-in subsystems (mitigation) extend the
// result types without perturbing existing golden hashes: the HashArchive
// folds *nothing at all* when the flag is false, so a run with the
// subsystem disabled hashes bit-identically to a build that predates it.
// (The serialized blob always carries the presence byte — that format
// change is what the campaign_io version bump covers.)
#pragma once

#include "core/experiment.hpp"

namespace rdsim::core::detail {

template <typename Ar, typename T>  // T: [const] DriverParams
void driver_fields(Ar& ar, T& d) {
  ar.f64(d.reaction_time_s);
  ar.f64(d.prediction_gain);
  ar.f64(d.neuromuscular_tau_s);
  ar.f64(d.wheel_rate_limit);
  ar.f64(d.steer_noise);
  ar.f64(d.noise_tau_s);
  ar.f64(d.steer_deadzone);
  ar.f64(d.control_rate_hz);
  ar.f64(d.lookahead_time_s);
  ar.f64(d.manoeuvre_lookahead_s);
  ar.f64(d.min_lookahead_m);
  ar.f64(d.near_gain);
  ar.f64(d.near_lead_s);
  ar.f64(d.startle_threshold_s);
  ar.f64(d.startle_duration_s);
  ar.f64(d.startle_gain);
  ar.f64(d.startle_noise_mult);
  ar.f64(d.idm_time_headway_s);
  ar.f64(d.idm_max_accel);
  ar.f64(d.idm_comfort_brake);
  ar.f64(d.idm_min_gap_m);
  ar.f64(d.emergency_ttc_s);
  ar.f64(d.position_noise_m);
  ar.f64(d.staleness_noise_gain);
  ar.f64(d.position_noise_tau_s);
  ar.f64(d.startle_jump_prob);
  ar.f64(d.startle_jump_m_per_s);
  ar.f64(d.vehicle_wheelbase_m);
  ar.f64(d.vehicle_max_steer_deg);
  ar.f64(d.speed_compliance);
  ar.f64(d.freeze_caution_s);
  ar.f64(d.caution_gain);
  ar.b(d.mirrored_steering);
}

template <typename Ar, typename T>  // T: [const] SubjectProfile
void profile_fields(Ar& ar, T& p) {
  ar.str(p.id);
  ar.i32(p.index);
  driver_fields(ar, p.driver);
  ar.u64(p.seed);
  ar.b(p.gaming_experience);
  ar.b(p.recent_gaming);
  ar.b(p.racing_game_experience);
  ar.i32(p.station_experience);
  ar.b(p.left_hand_driving);
}

template <typename Ar, typename T>  // T: [const] QoeStats
void qoe_fields(Ar& ar, T& q) {
  ar.qty(q.watch_time);
  ar.qty(q.frozen_time);
  ar.sz(q.freeze_episodes);
  ar.qty(q.longest_freeze);
  ar.qty(q.staleness_sum);
  ar.sz(q.staleness_samples);
  // QoeStats::transport is deliberately absent: it is a verbatim copy of
  // the stream counters already folded by stream_stats_fields below, and
  // double-hashing the copy would change every pre-existing golden hash.
}

template <typename Ar, typename T>  // T: [const] net::StreamStats
void stream_stats_fields(Ar& ar, T& s) {
  ar.u64(s.messages_sent);
  ar.u64(s.messages_delivered);
  ar.u64(s.segments_sent);
  ar.u64(s.retransmits_rto);
  ar.u64(s.retransmits_fast);
  ar.u64(s.acks_sent);
  ar.u64(s.dup_acks_seen);
  ar.u64(s.stale_segments);
  ar.qty(s.srtt);
  ar.qty(s.rto);
}

template <typename Ar, typename T>  // T: [const] trace::EgoSample
void ego_sample_fields(Ar& ar, T& e) {
  ar.f64(e.t);
  ar.u32(e.frame);
  ar.f64(e.x);
  ar.f64(e.y);
  ar.f64(e.z);
  ar.f64(e.vx);
  ar.f64(e.vy);
  ar.f64(e.vz);
  ar.f64(e.ax);
  ar.f64(e.ay);
  ar.f64(e.az);
  ar.f64(e.throttle);
  ar.f64(e.steer);
  ar.f64(e.brake);
}

template <typename Ar, typename T>  // T: [const] trace::OtherSample
void other_sample_fields(Ar& ar, T& o) {
  ar.u32(o.actor);
  ar.str(o.role);
  ar.f64(o.t);
  ar.f64(o.distance);
  ar.f64(o.x);
  ar.f64(o.y);
  ar.f64(o.z);
  ar.f64(o.vx);
  ar.f64(o.vy);
  ar.f64(o.vz);
  ar.f64(o.throttle);
  ar.f64(o.steer);
  ar.f64(o.brake);
}

template <typename Ar, typename T>  // T: [const] trace::RunTrace
void trace_fields(Ar& ar, T& t) {
  ar.str(t.run_id);
  ar.str(t.subject);
  ar.b(t.fault_injected_run);
  ar.vec(t.ego, [](Ar& a, auto& e) { ego_sample_fields(a, e); });
  ar.vec(t.others, [](Ar& a, auto& o) { other_sample_fields(a, o); });
  ar.vec(t.collisions, [](Ar& a, auto& c) {
    a.f64(c.t);
    a.u32(c.frame);
    a.u32(c.other);
    a.str(c.other_kind);
    a.f64(c.relative_speed);
  });
  ar.vec(t.lane_invasions, [](Ar& a, auto& l) {
    a.f64(l.t);
    a.u32(l.frame);
    a.str(l.marking);
    a.i32(l.from_lane);
    a.i32(l.to_lane);
  });
  ar.vec(t.faults, [](Ar& a, auto& f) {
    a.f64(f.t);
    a.str(f.fault_type);
    a.f64(f.value);
    a.b(f.added);
    a.str(f.label);
  });
}

template <typename Ar, typename T>  // T: [const] mitigate::MitigationSummary
void mitigation_summary_fields(Ar& ar, T& m) {
  ar.qty(m.dwell_nominal);
  ar.qty(m.dwell_degraded);
  ar.qty(m.dwell_impaired);
  ar.qty(m.dwell_link_loss);
  ar.u64(m.transitions);
  ar.u64(m.interventions);
  ar.u64(m.watchdog_firings);
  ar.u64(m.mrm_activations);
  ar.qty(m.mrm_time);
  ar.b(m.mrm_standstill);
  ar.qty(m.final_rtt);
  ar.f64(m.final_loss);
}

template <typename Ar, typename T>  // T: [const] mitigate::MitigationConfig
void mitigation_config_fields(Ar& ar, T& m) {
  ar.qty(m.estimator.update_period);
  ar.f64(m.estimator.rtt_alpha);
  ar.f64(m.estimator.loss_alpha);
  ar.qty(m.governor.degraded_rtt);
  ar.f64(m.governor.degraded_loss);
  ar.qty(m.governor.degraded_staleness);
  ar.qty(m.governor.impaired_rtt);
  ar.f64(m.governor.impaired_loss);
  ar.qty(m.governor.impaired_staleness);
  ar.qty(m.governor.link_loss_staleness);
  ar.f64(m.governor.exit_margin);
  ar.qty(m.governor.min_dwell);
  ar.qty(m.governor.degraded.speed_cap);
  ar.f64(m.governor.degraded.steer_rate_limit);
  ar.f64(m.governor.degraded.throttle_scale);
  ar.qty(m.governor.impaired.speed_cap);
  ar.f64(m.governor.impaired.steer_rate_limit);
  ar.f64(m.governor.impaired.throttle_scale);
  ar.qty(m.governor.link_loss.speed_cap);
  ar.f64(m.governor.link_loss.steer_rate_limit);
  ar.f64(m.governor.link_loss.throttle_scale);
  ar.qty(m.watchdog.deadline);
  ar.qty(m.watchdog.recover_age);
  ar.qty(m.watchdog.decel);
  ar.f64(m.watchdog.lane_gain);
  ar.f64(m.watchdog.heading_gain);
  ar.f64(m.watchdog.max_steer);
  ar.qty(m.watchdog.standstill);
  ar.f64(m.watchdog.hold_brake);
}

template <typename Ar, typename T>  // T: [const] RunResult
void run_fields(Ar& ar, T& r) {
  trace_fields(ar, r.trace);
  qoe_fields(ar, r.qoe);
  ar.b(r.completed);
  ar.b(r.timed_out);
  ar.qty(r.duration);
  stream_stats_fields(ar, r.video_stats);
  stream_stats_fields(ar, r.command_stats);
  ar.qty(r.mean_downlink_latency);
  ar.qty(r.mean_uplink_latency);
  ar.u64(r.frames_encoded);
  ar.u64(r.frames_displayed);
  ar.u64(r.frames_skipped_sender);
  ar.u64(r.safety_activations);
  ar.sz(r.faults_injected);
  ar.opt_block(r.mitigation.enabled,
               [&r](Ar& a) { mitigation_summary_fields(a, r.mitigation); });
}

template <typename Ar, typename T>  // T: [const] QuestionnaireResponse
void questionnaire_fields(Ar& ar, T& q) {
  ar.str(q.subject);
  ar.b(q.q1_gaming);
  ar.b(q.q1_recent);
  ar.b(q.q2_racing);
  ar.i32(q.q3_station_experience);
  ar.f64(q.q4_qoe);
  ar.b(q.q5_virtual_testing_useful);
  ar.b(q.q6_felt_difference);
}

template <typename Ar, typename T>  // T: [const] SubjectResult
void subject_fields(Ar& ar, T& s) {
  profile_fields(ar, s.profile);
  run_fields(ar, s.golden);
  run_fields(ar, s.faulty);
  questionnaire_fields(ar, s.questionnaire);
}

/// The campaign-level ExperimentConfig fields that shape the result (the
/// full RdsConfig / SafetyMonitorConfig are covered separately by
/// experiment_config_fingerprint, which keys the bench cache).
template <typename Ar, typename T>  // T: [const] ExperimentConfig
void experiment_config_fields(Ar& ar, T& c) {
  ar.u64(c.seed);
  ar.f64(c.poi_fault_probability);
  ar.vec(c.fault_weights, [](Ar& a, auto& w) { a.f64(w); });
  ar.qty(c.run_time_limit);
  ar.opt_block(c.mitigation.enabled,
               [&c](Ar& a) { mitigation_config_fields(a, c.mitigation); });
}

template <typename Ar, typename T>  // T: [const] CampaignResult
void campaign_fields(Ar& ar, T& c) {
  experiment_config_fields(ar, c.config);
  ar.vec(c.subjects, [](Ar& a, auto& s) { subject_fields(a, s); });
}

}  // namespace rdsim::core::detail
