#include "core/training.hpp"

#include <cmath>

#include "metrics/srr.hpp"
#include "sim/scenario.hpp"
#include "util/vec2.hpp"

namespace rdsim::core {

TrainingResult run_training(const SubjectProfile& profile, const TrainingConfig& config) {
  const double minutes = util::clamp(config.minutes, 3.0, 5.0);  // §V.E.1 bounds

  // The training drive itself: free driving in the empty town. The subject
  // drives with their *pre-training* parameters; what we observe here is the
  // unadapted behaviour.
  TrainingResult result;
  {
    RunConfig rc;
    rc.run_id = profile.id + "-training";
    rc.subject_id = profile.id;
    rc.driver = profile.driver;
    rc.rds = config.rds;
    rc.seed = profile.seed ^ 0x747261696eULL;
    sim::Scenario scenario = sim::make_training_scenario();
    scenario.time_limit = units::Seconds{minutes * 60.0};
    TeleopSession session{std::move(rc), scenario};
    result.run = session.run();
  }

  // Familiarization: exponential approach to the trainable asymptote.
  result.improvement = 1.0 - std::exp(-minutes / config.adaptation_tau_min);

  result.adapted = profile;
  DriverParams& d = result.adapted.driver;
  d.steer_noise *= 1.0 - config.noise_trainable * result.improvement;
  d.reaction_time_s *= 1.0 - config.reaction_trainable * result.improvement;
  // Prior station experience means less left to learn: the adaptation only
  // closes the gap the subject actually had.
  const double prior = 0.25 * static_cast<double>(profile.station_experience);
  d.steer_noise = profile.driver.steer_noise * prior +
                  d.steer_noise * (1.0 - prior);
  d.reaction_time_s = profile.driver.reaction_time_s * prior +
                      d.reaction_time_s * (1.0 - prior);

  // Observable familiarization curve from the training trace.
  metrics::SrrAnalyzer srr;
  const double dur = result.run.trace.duration_s();
  if (dur > 30.0) {
    result.early_srr = srr.analyze_window(result.run.trace, units::Seconds{0.0},
                                          units::Seconds{dur / 3.0})
                           .rate_per_min;
    result.late_srr = srr.analyze_window(result.run.trace, units::Seconds{2.0 * dur / 3.0},
                                         units::Seconds{dur})
                          .rate_per_min;
  }
  return result;
}

}  // namespace rdsim::core
