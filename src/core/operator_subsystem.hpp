// Operator subsystem (§III.A): the remote control station. Presents the
// video feed to the driver (with display latency), samples the driver's
// wheel and pedals at the client command rate, and accumulates the Quality
// of Experience measures behind questionnaire question 4.
#pragma once

#include "core/config.hpp"
#include "core/driver.hpp"
#include "core/protocol.hpp"
#include "sim/frame.hpp"
#include "util/time.hpp"

namespace rdsim::core {

/// QoE bookkeeping over a run: how often and how long the display froze.
struct QoeStats {
  /// Transport-side health counters, copied verbatim at run end from the
  /// ReliableStream's own StreamStats (video + command) — the single source
  /// of truth that reports and the mitigation link-quality estimator share.
  /// Deliberately NOT part of campaign_fields' qoe_fields: the same counters
  /// are already hashed via stream_stats_fields, and re-folding a copy would
  /// change every existing golden hash for no information gain.
  struct Transport {
    std::uint64_t retransmits_rto{0};
    std::uint64_t retransmits_fast{0};
    std::uint64_t stale_segments{0};

    std::uint64_t retransmits() const { return retransmits_rto + retransmits_fast; }
  };

  units::Seconds watch_time{};
  units::Seconds frozen_time{};       ///< staleness beyond one frame period
  std::size_t freeze_episodes{0};     ///< freezes longer than 300 ms
  units::Seconds longest_freeze{};
  units::Seconds staleness_sum{};
  std::size_t staleness_samples{0};
  // Diagnostic-only mirror of net::StreamStats; the authoritative copy is
  // hashed via stream_stats_fields, so folding this too would double-count.
  Transport transport{};  // lint:allow(unhashed: diagnostic mirror of hashed StreamStats)

  double frozen_fraction() const {
    return watch_time.value() > 0.0 ? frozen_time.value() / watch_time.value() : 0.0;
  }
  units::Seconds mean_staleness() const {
    return staleness_samples > 0
               ? units::Seconds{staleness_sum.value() /
                                static_cast<double>(staleness_samples)}
               : units::Seconds{};
  }

  /// 1..5 subjective score: 5 = indistinguishable from local driving.
  double score() const;
};

class OperatorSubsystem {
 public:
  OperatorSubsystem(const StationConfig& station, DriverModel driver);

  /// A decoded video frame arrived from the network at `now`; it reaches
  /// the driver's eyes after the display latency.
  void on_frame(const sim::WorldFrame& frame, util::TimePoint now);

  /// Sample the station at `now`: updates QoE accounting and, when a
  /// command is due, returns it for transmission.
  std::optional<CommandMsg> poll(util::TimePoint now);

  DriverModel& driver() { return driver_; }
  const QoeStats& qoe() const { return qoe_; }
  std::uint32_t displayed_frame_id() const { return displayed_frame_id_; }
  std::uint64_t frames_displayed() const { return frames_displayed_; }
  std::uint64_t frames_superseded() const { return frames_superseded_; }

 private:
  StationConfig station_;
  DriverModel driver_;

  std::uint32_t displayed_frame_id_{0};
  bool any_frame_{false};
  util::TimePoint last_display_update_{};
  std::uint64_t frames_displayed_{0};
  std::uint64_t frames_superseded_{0};

  util::TimePoint next_command_{};
  std::uint32_t next_seq_{1};
  util::TimePoint last_poll_{};
  bool first_poll_{true};
  units::Seconds current_freeze_{};

  QoeStats qoe_;
};

}  // namespace rdsim::core
