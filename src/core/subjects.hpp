// Test subjects T1..T12 and the post-test questionnaire (§V.E.3, §VI.F).
//
// The paper recruited 12 RISE employees; subject diversity shows up in the
// questionnaire (10/11 with gaming experience, 9/11 with racing games, 6
// with no prior driving-station exposure) and in the data (T7 excluded for
// a left-hand-driving habit; two subjects collided even in the golden run).
// We substitute that population with parameter diversity: each subject's
// driver-model parameters are drawn deterministically from a per-subject
// seed, with experience attributes that shift skill the way the paper's
// discussion suggests (gaming experience -> faster reaction, steadier hand).
#pragma once

#include <string>
#include <vector>

#include "core/driver.hpp"

namespace rdsim::core {

struct SubjectProfile {
  std::string id;                 ///< "T1".."T12"
  int index{0};                   ///< 1..12
  DriverParams driver{};
  std::uint64_t seed{0};          ///< per-subject RNG stream

  // Questionnaire ground truth (§V.E.3 questions 1-3).
  bool gaming_experience{true};
  bool recent_gaming{false};
  bool racing_game_experience{true};
  int station_experience{0};      ///< 0 = none, 1 = once, 2 = a few times
  bool left_hand_driving{false};  ///< T7

  /// Excluded from analysis, as the paper excluded T7 (§VI.A).
  bool excluded() const { return left_hand_driving; }
};

/// The experiment roster. Deterministic in `campaign_seed`.
std::vector<SubjectProfile> make_roster(std::uint64_t campaign_seed = 20230612);

/// Questionnaire answers for one subject after the test (§V.E.3).
struct QuestionnaireResponse {
  std::string subject;
  bool q1_gaming{false};
  bool q1_recent{false};
  bool q2_racing{false};
  int q3_station_experience{0};
  double q4_qoe{3.0};            ///< 1..5, second run vs first
  bool q5_virtual_testing_useful{true};
  bool q6_felt_difference{false};
};

/// Aggregate summary matching the §VI.F bullet list.
struct QuestionnaireSummary {
  std::size_t respondents{0};
  std::size_t gaming{0};
  std::size_t recent_gaming{0};
  std::size_t racing{0};
  std::size_t no_station_experience{0};
  std::size_t station_few_times{0};
  std::size_t station_once{0};
  double mean_qoe{0.0};
  double min_qoe{0.0};
  double max_qoe{0.0};
  std::size_t virtual_testing_useful{0};
  std::size_t felt_difference{0};
};

QuestionnaireSummary summarize(const std::vector<QuestionnaireResponse>& responses);

}  // namespace rdsim::core
