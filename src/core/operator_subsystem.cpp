#include "core/operator_subsystem.hpp"

#include <algorithm>
#include <cmath>

#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "sim/frame.hpp"
#include "util/time.hpp"

namespace rdsim::core {

double QoeStats::score() const {
  // Map freeze fraction and staleness into the 1..5 scale used in §VI.F
  // (reported mean 2.81, range 2..4 for the faulty runs). The mapping is
  // monotone: more frozen time and more lag mean a worse experience.
  const double freeze_penalty = 22.0 * frozen_fraction();
  const double lag_penalty = 8.0 * std::max(0.0, mean_staleness().value() - 0.05);
  const double episodes_penalty =
      0.22 * static_cast<double>(std::min<std::size_t>(freeze_episodes, 20));
  const double worst_penalty = 1.0 * std::min(longest_freeze.value(), 2.5);
  const double raw =
      5.0 - freeze_penalty - lag_penalty - episodes_penalty - worst_penalty;
  return std::clamp(raw, 1.0, 5.0);
}

OperatorSubsystem::OperatorSubsystem(const StationConfig& station, DriverModel driver)
    : station_{station}, driver_{std::move(driver)} {}

void OperatorSubsystem::on_frame(const sim::WorldFrame& frame, util::TimePoint now) {
  if (any_frame_ && frame.frame_id <= displayed_frame_id_) {
    ++frames_superseded_;  // late frame, already superseded on screen
    RDSIM_OBS_COUNT(obs::metric::kOpFramesSuperseded, 1);
    return;
  }
  any_frame_ = true;
  displayed_frame_id_ = frame.frame_id;
  ++frames_displayed_;
  last_display_update_ = now;
  RDSIM_OBS_COUNT(obs::metric::kOpFramesDisplayed, 1);
  RDSIM_OBS_OBSERVE(
      obs::metric::kOpFrameAgeMillis,
      units::Millis::from_duration(now - util::TimePoint::from_micros(frame.sim_time_us))
          .value());

  DisplayedView view;
  view.frame = frame;
  view.displayed_at = now + station_.display_latency.to_duration();
  driver_.observe(view);
}

std::optional<CommandMsg> OperatorSubsystem::poll(util::TimePoint now) {
  // ---- QoE accounting ----
  if (!first_poll_) {
    const units::Seconds dt{(now - last_poll_).to_seconds()};
    if (any_frame_ && dt > units::Seconds{}) {
      qoe_.watch_time += dt;
      const units::Seconds staleness{(now - last_display_update_).to_seconds()};
      const double frame_period = 1.0 / station_.video_fps;
      if (staleness.value() > 1.6 * frame_period) {
        qoe_.frozen_time += dt;
        current_freeze_ += dt;
      } else {
        if (current_freeze_ > units::Seconds{0.3}) {
          ++qoe_.freeze_episodes;
#if RDSIM_OBS
          // Record the finished freeze window (span endpoints reconstructed
          // from the accumulated freeze duration) together with its counter.
          if (obs::Context* ctx = obs::Context::current()) {
            const std::size_t span = ctx->span_open(
                obs::metric::kOpFreezeSpan, now - current_freeze_.to_duration());
            ctx->span_close(span, now);
            ctx->count(obs::metric::kOpFreezeSpan, 1);
          }
#endif
        }
        qoe_.longest_freeze = std::max(qoe_.longest_freeze, current_freeze_);
        current_freeze_ = units::Seconds{};
      }
      qoe_.staleness_sum += staleness;
      ++qoe_.staleness_samples;
      RDSIM_OBS_OBSERVE(obs::metric::kOpStalenessMillis,
                        units::Millis::from_duration(now - last_display_update_)
                            .value());
    }
  }
  first_poll_ = false;
  last_poll_ = now;

  // ---- command pacing ----
  if (now < next_command_) return std::nullopt;
  next_command_ = now + util::Duration::seconds(1.0 / station_.command_rate_hz);
  if (!any_frame_) return std::nullopt;  // nothing on screen yet: hands off

  CommandMsg msg;
  msg.sequence = next_seq_++;
  msg.control = driver_.actuate(now);
  // Input-device latency: the wheel position the client reads lags the
  // driver's hand; stamping the send time earlier models the same thing the
  // QoS accounting sees.
  msg.sent_at_us = now.count_micros();
  msg.based_on_frame = displayed_frame_id_;
  return msg;
}

}  // namespace rdsim::core
