#include "mitigate/governor.hpp"

#include <algorithm>

#include "check/contracts.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "sim/types.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace rdsim::mitigate {

const char* to_string(LinkState state) {
  switch (state) {
    case LinkState::kNominal: return "NOMINAL";
    case LinkState::kDegraded: return "DEGRADED";
    case LinkState::kImpaired: return "IMPAIRED";
    case LinkState::kLinkLoss: return "LINK_LOSS";
  }
  return "?";
}

DegradationGovernor::DegradationGovernor(GovernorConfig config)
    : config_{config} {
  RDSIM_REQUIRE(config_.min_dwell >= units::Seconds{},
                "min_dwell cannot be negative");
  RDSIM_REQUIRE(config_.exit_margin > 0.0 && config_.exit_margin <= 1.0,
                "exit_margin must be in (0, 1]");
  RDSIM_REQUIRE(config_.degraded_rtt < config_.impaired_rtt &&
                    config_.degraded_loss < config_.impaired_loss &&
                    config_.degraded_staleness < config_.impaired_staleness &&
                    config_.impaired_staleness < config_.link_loss_staleness,
                "state thresholds must be strictly ordered by severity");
}

LinkState DegradationGovernor::enter_severity(const LinkQuality& q) const {
  const bool rtt = q.rtt_valid;
  const bool st = q.staleness_valid;
  if (st && q.staleness >= config_.link_loss_staleness) return LinkState::kLinkLoss;
  if ((rtt && q.rtt >= config_.impaired_rtt) || q.loss >= config_.impaired_loss ||
      (st && q.staleness >= config_.impaired_staleness)) {
    return LinkState::kImpaired;
  }
  if ((rtt && q.rtt >= config_.degraded_rtt) || q.loss >= config_.degraded_loss ||
      (st && q.staleness >= config_.degraded_staleness)) {
    return LinkState::kDegraded;
  }
  return LinkState::kNominal;
}

LinkState DegradationGovernor::hold_severity(const LinkQuality& q) const {
  const double m = config_.exit_margin;
  const bool rtt = q.rtt_valid;
  const bool st = q.staleness_valid;
  if (st && q.staleness >= m * config_.link_loss_staleness) return LinkState::kLinkLoss;
  if ((rtt && q.rtt >= m * config_.impaired_rtt) || q.loss >= m * config_.impaired_loss ||
      (st && q.staleness >= m * config_.impaired_staleness)) {
    return LinkState::kImpaired;
  }
  if ((rtt && q.rtt >= m * config_.degraded_rtt) || q.loss >= m * config_.degraded_loss ||
      (st && q.staleness >= m * config_.degraded_staleness)) {
    return LinkState::kDegraded;
  }
  return LinkState::kNominal;
}

const StateLimits& DegradationGovernor::limits(LinkState s) const {
  switch (s) {
    case LinkState::kDegraded: return config_.degraded;
    case LinkState::kImpaired: return config_.impaired;
    case LinkState::kLinkLoss: return config_.link_loss;
    case LinkState::kNominal: break;
  }
  RDSIM_REQUIRE(false, "NOMINAL has no limits");
  return config_.degraded;
}

void DegradationGovernor::transition_to(LinkState next, util::TimePoint now) {
  RDSIM_REQUIRE(next != state_, "transition must change state");
  state_ = next;
  last_change_ = now;
  ++transitions_;
  RDSIM_OBS_COUNT(obs::metric::kMitStateTransitions, 1);
  RDSIM_OBS_GAUGE_SET(obs::metric::kMitState,
                      static_cast<double>(static_cast<std::uint8_t>(next)));
#if RDSIM_OBS
  if (obs::Context* ctx = obs::Context::current()) {
    if (state_span_ != obs::kNoSpan) {
      ctx->span_close(state_span_, now);
      state_span_ = obs::kNoSpan;
    }
    if (next != LinkState::kNominal) {
      state_span_ = ctx->span_open(obs::metric::kMitStateSpan, now,
                                   static_cast<std::uint32_t>(next));
      ctx->count(obs::metric::kMitStateSpan, 1);
    }
  }
#endif
}

LinkState DegradationGovernor::update(const LinkQuality& q, util::TimePoint now) {
  if (first_update_) {
    last_update_ = now;
    last_change_ = now;
    first_update_ = false;
  }
  RDSIM_REQUIRE(now >= last_update_, "governor time must be monotone");
  dwell_[static_cast<std::size_t>(state_)] +=
      units::Seconds::from_duration(now - last_update_);
  last_update_ = now;

  const LinkState enter = enter_severity(q);
  const LinkState hold = hold_severity(q);
  // Stay at the current level while its exit thresholds are still exceeded;
  // otherwise fall back to whatever the hysteresis will hold, but never
  // below what the enter thresholds currently demand.
  const auto desired = std::max(enter, std::min(state_, hold));
  // min_dwell spaces *transitions*: the first departure from the initial
  // state has nothing to flap against and is allowed immediately.
  if (desired != state_ &&
      (transitions_ == 0 ||
       units::Seconds::from_duration(now - last_change_) >= config_.min_dwell)) {
    if (desired > state_) {
      transition_to(desired, now);  // escalation may jump levels
    } else {
      // De-escalate one level at a time: recovery is re-verified for a full
      // dwell period at each intermediate level.
      transition_to(static_cast<LinkState>(static_cast<std::uint8_t>(state_) - 1),
                    now);
    }
  }
  return state_;
}

sim::VehicleControl DegradationGovernor::shape(const sim::VehicleControl& in,
                                               units::MetersPerSecond perceived_speed,
                                               util::TimePoint now) {
  const units::Seconds dt = first_shape_
                                ? units::Seconds{}
                                : units::Seconds::from_duration(now - last_shape_);
  RDSIM_REQUIRE(dt >= units::Seconds{}, "shape time must be monotone");
  if (state_ == LinkState::kNominal) {
    // Bit-exact pass-through; still track the wheel so a later rate limit
    // starts from the driver's actual position, not a stale value.
    last_steer_ = in.steer;
    last_shape_ = now;
    first_shape_ = false;
    return in;
  }

  const StateLimits& lim = limits(state_);
  sim::VehicleControl out = in;
  out.throttle *= lim.throttle_scale;
  if (perceived_speed > lim.speed_cap) {
    // Over the cap: lift the throttle entirely and brake proportionally to
    // the excess so the hand-over is a ramp, not a step.
    const double excess = (perceived_speed - lim.speed_cap).value();
    out.throttle = 0.0;
    out.brake = std::max(out.brake, std::min(1.0, 0.2 + 0.15 * excess));
  }
  if (!first_shape_) {
    const double max_delta = lim.steer_rate_limit * dt.value();
    out.steer = util::clamp(out.steer, last_steer_ - max_delta,
                            last_steer_ + max_delta);
  }
  out = out.clamped();
  if (out != in) {
    ++interventions_;
    RDSIM_OBS_COUNT(obs::metric::kMitInterventions, 1);
  }
  last_steer_ = out.steer;
  last_shape_ = now;
  first_shape_ = false;
  return out;
}

void DegradationGovernor::finalize(util::TimePoint now) {
  if (first_update_) return;
  RDSIM_REQUIRE(now >= last_update_, "finalize time must be monotone");
  dwell_[static_cast<std::size_t>(state_)] +=
      units::Seconds::from_duration(now - last_update_);
  last_update_ = now;
#if RDSIM_OBS
  if (state_span_ != obs::kNoSpan) {
    if (obs::Context* ctx = obs::Context::current()) {
      ctx->span_close(state_span_, now);
    }
    state_span_ = obs::kNoSpan;
  }
#endif
}

}  // namespace rdsim::mitigate
