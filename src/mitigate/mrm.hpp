// CommandWatchdog + minimal-risk-maneuver controller.
//
// Runs on the *vehicle* side of the link, so it keeps working precisely
// when the network does not. Every physics tick it is fed the vehicle's own
// QoS view of the uplink (command age, §III.A) plus the ego's road
// projection; when commands go stale beyond the deadline it takes over with
// a deterministic controlled in-lane stop: service-level braking plus
// lane-hold steering from the road projection, holding the vehicle at
// standstill until the operator's commands flow again.
#pragma once

#include <optional>

#include "mitigate/mitigation.hpp"
#include "obs/metrics.hpp"
#include "sim/road.hpp"
#include "sim/types.hpp"
#include "util/time.hpp"

namespace rdsim::mitigate {

class MrmController {
 public:
  /// `max_brake_decel` is the plant's full-brake deceleration, used to map
  /// the configured MRM decel onto a pedal fraction.
  MrmController(WatchdogConfig config, units::MetersPerSecond2 max_brake_decel);

  /// One physics tick. `command_age` may be +inf before the first command
  /// (pre-handover grace: the watchdog only arms once the operator has ever
  /// been in control). `proj` must carry a caller-filled heading_error.
  /// Returns the override control while the MRM is engaged, nullopt when
  /// the operator is in control.
  std::optional<sim::VehicleControl> update(units::Seconds command_age,
                                            units::MetersPerSecond forward_speed,
                                            const sim::RoadProjection& proj,
                                            units::Seconds dt,
                                            util::TimePoint now);

  bool engaged() const { return engaged_; }
  std::uint64_t watchdog_firings() const { return firings_; }
  std::uint64_t activations() const { return activations_; }
  units::Seconds engaged_time() const { return engaged_time_; }
  bool reached_standstill() const { return reached_standstill_; }
  const WatchdogConfig& config() const { return config_; }

 private:
  sim::VehicleControl mrm_control(units::MetersPerSecond forward_speed,
                                  const sim::RoadProjection& proj) const;

  WatchdogConfig config_;
  units::MetersPerSecond2 max_brake_decel_;
  bool engaged_{false};
  bool was_stale_{false};
  bool stop_complete_{false};  ///< this MRM has reached standstill
  bool reached_standstill_{false};
  std::uint64_t firings_{0};
  std::uint64_t activations_{0};
  units::Seconds engaged_time_{};
#if RDSIM_OBS
  std::size_t mrm_span_{obs::kNoSpan};  ///< open MRM trace span
#endif
};

}  // namespace rdsim::mitigate
