#include "mitigate/mrm.hpp"

#include <algorithm>
#include <cmath>

#include "check/contracts.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "sim/road.hpp"
#include "sim/types.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace rdsim::mitigate {

MrmController::MrmController(WatchdogConfig config,
                             units::MetersPerSecond2 max_brake_decel)
    : config_{config}, max_brake_decel_{max_brake_decel} {
  RDSIM_REQUIRE(config_.deadline > units::Seconds{}, "deadline must be positive");
  RDSIM_REQUIRE(config_.recover_age < config_.deadline,
                "recover_age must undercut the deadline (hysteresis)");
  RDSIM_REQUIRE(config_.decel > units::MetersPerSecond2{} &&
                    max_brake_decel_ > units::MetersPerSecond2{},
                "braking levels must be positive");
}

sim::VehicleControl MrmController::mrm_control(units::MetersPerSecond forward_speed,
                                               const sim::RoadProjection& proj) const {
  sim::VehicleControl out;
  out.throttle = 0.0;
  if (forward_speed > config_.standstill) {
    // Service braking at the configured decel, mapped onto the pedal via
    // the plant's full-brake capability.
    out.brake = std::min(1.0, config_.decel / max_brake_decel_);
  } else {
    out.brake = config_.hold_brake;
  }
  // Lane-hold steering while the vehicle rolls out: PD on the lane-centre
  // offset and the heading error. Positive lane_offset / heading_error mean
  // left of centre / pointing left, so both corrections steer right.
  const double steer = -(config_.lane_gain * proj.lane_offset +
                         config_.heading_gain * proj.heading_error);
  out.steer = util::clamp(steer, -config_.max_steer, config_.max_steer);
  return out;
}

std::optional<sim::VehicleControl> MrmController::update(
    units::Seconds command_age, units::MetersPerSecond forward_speed,
    const sim::RoadProjection& proj, units::Seconds dt, util::TimePoint now) {
  RDSIM_REQUIRE(dt >= units::Seconds{}, "dt cannot be negative");
  (void)now;  // span timestamps only; unused when obs is compiled out
  // +inf age = no command ever received: the watchdog arms only after the
  // operator has been in control (mirrors the safety monitor's semantics).
  const bool stale = std::isfinite(command_age.value()) &&
                     command_age > config_.deadline;
  if (stale && !was_stale_) {
    ++firings_;
    RDSIM_OBS_COUNT(obs::metric::kMitWatchdogFired, 1);
  }
  was_stale_ = stale;

  if (!engaged_) {
    if (!stale) return std::nullopt;
    engaged_ = true;
    stop_complete_ = false;
    ++activations_;
    RDSIM_OBS_COUNT(obs::metric::kMitMrmActivations, 1);
#if RDSIM_OBS
    if (obs::Context* ctx = obs::Context::current()) {
      mrm_span_ = ctx->span_open(obs::metric::kMitMrmSpan, now);
      ctx->count(obs::metric::kMitMrmSpan, 1);
    }
#endif
  } else {
    // Release only once the stop is complete AND fresh commands flow again:
    // an MRM is a committed maneuver, not a speed limiter, and handing back
    // mid-deceleration to a link that just came back would re-create the
    // hazard the stop was avoiding.
    const bool fresh = std::isfinite(command_age.value()) &&
                       command_age < config_.recover_age;
    if (fresh && (stop_complete_ || forward_speed <= config_.standstill)) {
      engaged_ = false;
#if RDSIM_OBS
      if (mrm_span_ != obs::kNoSpan) {
        if (obs::Context* ctx = obs::Context::current()) {
          ctx->span_close(mrm_span_, now);
        }
        mrm_span_ = obs::kNoSpan;
      }
#endif
      return std::nullopt;
    }
  }

  engaged_time_ += dt;
  if (forward_speed <= config_.standstill) {
    stop_complete_ = true;
    reached_standstill_ = true;
  }
  return mrm_control(forward_speed, proj);
}

}  // namespace rdsim::mitigate
