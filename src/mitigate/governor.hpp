// DegradationGovernor: operator-side hysteresis state machine that shapes
// the driver's commands before they enter the uplink.
//
//   NOMINAL --> DEGRADED --> IMPAIRED --> LINK_LOSS
//
// A state is entered when any of its thresholds (RTT, loss, staleness) is
// exceeded; it is held until quality recovers below `exit_margin` times the
// enter threshold (hysteresis), and no transition — in either direction —
// happens sooner than `min_dwell` after the previous one, so a noisy
// estimate can never flap the limits. Escalation may jump levels (a dead
// link should not have to pass through DEGRADED); de-escalation steps back
// one level at a time.
//
// In every state except NOMINAL the governor applies the state's actuation
// limits between DriverModel output and the command channel: throttle
// ramp-down, a steering-rate limit, and a perceived-speed cap enforced by
// braking. NOMINAL is bit-exact pass-through.
#pragma once

#include "mitigate/link_quality.hpp"
#include "obs/metrics.hpp"
#include "sim/types.hpp"
#include "util/time.hpp"

namespace rdsim::mitigate {

class DegradationGovernor {
 public:
  explicit DegradationGovernor(GovernorConfig config);

  /// Re-evaluate the state machine against the latest estimate. Call at the
  /// estimator cadence. Returns the (possibly new) state.
  LinkState update(const LinkQuality& q, util::TimePoint now);

  /// Shape one outgoing command under the current state's limits.
  /// `perceived_speed` is the ego speed of the operator's displayed frame —
  /// the governor runs on the station and only knows what the station sees.
  sim::VehicleControl shape(const sim::VehicleControl& in,
                            units::MetersPerSecond perceived_speed,
                            util::TimePoint now);

  /// Close the dwell accounting at session end.
  void finalize(util::TimePoint now);

  LinkState state() const { return state_; }
  units::Seconds dwell(LinkState s) const {
    return dwell_[static_cast<std::size_t>(s)];
  }
  std::uint64_t transitions() const { return transitions_; }
  std::uint64_t interventions() const { return interventions_; }
  const GovernorConfig& config() const { return config_; }

 private:
  /// Highest state whose enter thresholds `q` currently exceeds.
  LinkState enter_severity(const LinkQuality& q) const;
  /// Highest state whose exit thresholds (enter * exit_margin) `q` still
  /// exceeds — the level the hysteresis is willing to hold.
  LinkState hold_severity(const LinkQuality& q) const;
  const StateLimits& limits(LinkState s) const;
  void transition_to(LinkState next, util::TimePoint now);

  GovernorConfig config_;
  LinkState state_{LinkState::kNominal};
  units::Seconds dwell_[kLinkStateCount]{};
  util::TimePoint last_update_{};
  util::TimePoint last_change_{};
  bool first_update_{true};

  double last_steer_{0.0};
  util::TimePoint last_shape_{};
  bool first_shape_{true};

  std::uint64_t transitions_{0};
  std::uint64_t interventions_{0};
#if RDSIM_OBS
  std::size_t state_span_{obs::kNoSpan};  ///< open non-NOMINAL trace span
#endif
};

}  // namespace rdsim::mitigate
