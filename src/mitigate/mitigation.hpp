// rdsim::mitigate — network-aware graceful degradation and minimal-risk
// maneuver (MRM) for the remote-driving loop.
//
// The paper quantifies how delay/loss degrade remote-driving safety but its
// test setup deliberately runs without countermeasures (§I). This subsystem
// is the production-style mitigation stack that design loop asks for,
// built so every existing fault campaign doubles as a paired
// mitigated-vs-unmitigated ablation:
//
//   LinkQualityEstimator   operator-side; EWMA RTT / loss fraction /
//                          displayed-frame staleness from observables the
//                          transports already expose (link_quality.hpp).
//   DegradationGovernor    operator-side hysteresis state machine
//                          NOMINAL -> DEGRADED -> IMPAIRED -> LINK_LOSS with
//                          per-state actuation limits applied between the
//                          DriverModel output and the command channel
//                          (governor.hpp).
//   CommandWatchdog + MRM  vehicle-side; a deterministic controlled in-lane
//                          stop when commands go stale beyond a deadline —
//                          it runs on the far side of the link, so it works
//                          precisely when the network does not (mrm.hpp).
//
// Everything is deterministic (no RNG, virtual-clock driven) and the whole
// stack is bit-exactly inert when `MitigationConfig::enabled` is false: no
// component is constructed, no observable changes, and the campaign golden
// hashes are unchanged (see docs/mitigation.md for the golden-hash policy).
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace rdsim::mitigate {

/// Governor link state, ordered by severity. The numeric values are stable:
/// they are exported as an obs gauge and index the dwell accounting.
enum class LinkState : std::uint8_t {
  kNominal = 0,
  kDegraded = 1,
  kImpaired = 2,
  kLinkLoss = 3,
};
inline constexpr std::size_t kLinkStateCount = 4;

const char* to_string(LinkState state);

/// Link-quality estimator knobs. The estimator samples at a fixed virtual
/// cadence so its EWMA folding is independent of the comms tick rate.
struct EstimatorConfig {
  units::Seconds update_period{0.05};  ///< 20 Hz estimate refresh
  double rtt_alpha{0.25};              ///< EWMA gain over the transport SRTT
  double loss_alpha{0.20};             ///< EWMA gain over the retransmit fraction
};

/// Actuation limits for one degraded state (NOMINAL is always pass-through).
struct StateLimits {
  units::MetersPerSecond speed_cap{};  ///< brake in when perceived speed exceeds
  double steer_rate_limit{0.0};        ///< steer fraction per second
  double throttle_scale{0.0};          ///< multiplies the driver's throttle
};

/// Hysteresis state machine thresholds. A state is *entered* when any of its
/// enter thresholds is exceeded and *held* until quality recovers below
/// `exit_margin` times the enter threshold; no transition happens sooner
/// than `min_dwell` after the previous one. Escalation can jump levels;
/// de-escalation steps one level at a time.
struct GovernorConfig {
  units::Millis degraded_rtt{40.0};
  double degraded_loss{0.015};
  units::Seconds degraded_staleness{0.30};

  units::Millis impaired_rtt{80.0};
  double impaired_loss{0.04};
  units::Seconds impaired_staleness{0.70};

  units::Seconds link_loss_staleness{1.50};

  double exit_margin{0.7};
  units::Seconds min_dwell{1.0};

  // Tuned on the full-campaign paired ablation (bench_mitigation_ablation):
  // tighter steer-rate limits cause low-speed scrapes against the slalom's
  // parked vehicles (the driver cannot steer around them), and caps much
  // below ~8 m/s stretch runs so far that fault-window exposure grows and
  // two subjects time out. These values recover the 50 ms / 5 % crash cases
  // (campaign collisions 4 -> 1) at ~12 % completion-time cost.
  StateLimits degraded{units::MetersPerSecond{13.0}, 2.5, 0.85};
  StateLimits impaired{units::MetersPerSecond{8.0}, 1.5, 0.55};
  StateLimits link_loss{units::MetersPerSecond{0.0}, 0.8, 0.0};
};

/// Vehicle-side command watchdog + minimal-risk-maneuver controller.
struct WatchdogConfig {
  units::Seconds deadline{0.5};        ///< command age that trips the watchdog
  units::Seconds recover_age{0.2};     ///< age considered "fresh again"
  units::MetersPerSecond2 decel{3.5};  ///< MRM service braking level
  double lane_gain{0.06};              ///< steer fraction per metre of lane offset
  double heading_gain{0.5};            ///< steer fraction per radian of heading error
  double max_steer{0.35};              ///< MRM steer authority clamp
  units::MetersPerSecond standstill{0.15};  ///< speed counting as stopped
  double hold_brake{0.35};             ///< brake holding the vehicle once stopped
};

/// Opt-in configuration carried by RunConfig / ExperimentConfig. When
/// `enabled` is false nothing is constructed and the run is bit-identical
/// to a build without the subsystem.
struct MitigationConfig {
  bool enabled{false};
  EstimatorConfig estimator{};
  GovernorConfig governor{};
  WatchdogConfig watchdog{};
};

/// Per-run outcome of the mitigation stack, reported on RunResult. Hashed
/// and serialized by campaign_fields.hpp *only when enabled* so disabled
/// runs keep their pre-mitigation golden hashes.
struct MitigationSummary {
  bool enabled{false};
  units::Seconds dwell_nominal{};
  units::Seconds dwell_degraded{};
  units::Seconds dwell_impaired{};
  units::Seconds dwell_link_loss{};
  std::uint64_t transitions{0};
  std::uint64_t interventions{0};     ///< commands the governor modified
  std::uint64_t watchdog_firings{0};  ///< stale-deadline crossings
  std::uint64_t mrm_activations{0};
  units::Seconds mrm_time{};          ///< total time under MRM control
  bool mrm_standstill{false};         ///< an MRM reached a full stop
  units::Millis final_rtt{};          ///< estimator EWMA at run end
  double final_loss{0.0};             ///< estimator EWMA at run end
};

}  // namespace rdsim::mitigate
