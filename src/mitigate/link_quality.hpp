// LinkQualityEstimator: the operator-side view of how healthy the link is,
// computed purely from observables that already flow through the transports
// and the frame path — the transport's smoothed RTT, the retransmit
// fraction over the estimation window, and the displayed-frame staleness.
// No probe traffic, no RNG: estimation never perturbs the simulation.
#pragma once

#include "mitigate/mitigation.hpp"
#include "net/reliable_stream.hpp"
#include "util/time.hpp"

namespace rdsim::mitigate {

/// One smoothed link-quality estimate.
struct LinkQuality {
  units::Millis rtt{};         ///< EWMA over the transport SRTT
  double loss{0.0};            ///< EWMA retransmit fraction, [0, 1]
  units::Seconds staleness{};  ///< displayed-frame age (instantaneous)
  bool rtt_valid{false};       ///< any RTT sample folded yet
  bool staleness_valid{false}; ///< a frame has been displayed
};

class LinkQualityEstimator {
 public:
  explicit LinkQualityEstimator(EstimatorConfig config);

  /// Fold the current observables at `now`. Either stream pointer may be
  /// null (datagram transport: no SRTT / retransmit telemetry; the governor
  /// then acts on staleness alone). `staleness` is the displayed-frame age;
  /// pass +inf while no frame has been displayed yet. Samples are taken at
  /// the configured cadence; returns true when an estimate was refreshed.
  bool update(const net::StreamStats* video, const net::StreamStats* command,
              units::Seconds staleness, util::TimePoint now);

  const LinkQuality& quality() const { return quality_; }
  const EstimatorConfig& config() const { return config_; }

 private:
  EstimatorConfig config_;
  LinkQuality quality_{};
  util::TimePoint next_update_{};
  bool first_update_{true};
  bool rtt_seeded_{false};
  bool loss_seeded_{false};
  std::uint64_t prev_first_tx_{0};
  std::uint64_t prev_retx_{0};
};

}  // namespace rdsim::mitigate
