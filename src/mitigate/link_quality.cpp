#include "mitigate/link_quality.hpp"

#include <algorithm>
#include <cmath>

#include "check/contracts.hpp"
#include "net/reliable_stream.hpp"
#include "util/time.hpp"

namespace rdsim::mitigate {

namespace {

/// Sum of first transmissions over the present streams.
std::uint64_t total_first_tx(const net::StreamStats* a, const net::StreamStats* b) {
  std::uint64_t n = 0;
  if (a != nullptr) n += a->segments_sent;
  if (b != nullptr) n += b->segments_sent;
  return n;
}

std::uint64_t total_retx(const net::StreamStats* a, const net::StreamStats* b) {
  std::uint64_t n = 0;
  if (a != nullptr) n += a->retransmits_rto + a->retransmits_fast;
  if (b != nullptr) n += b->retransmits_rto + b->retransmits_fast;
  return n;
}

}  // namespace

LinkQualityEstimator::LinkQualityEstimator(EstimatorConfig config)
    : config_{config} {
  RDSIM_REQUIRE(config_.update_period > units::Seconds{},
                "estimator update period must be positive");
  RDSIM_REQUIRE(config_.rtt_alpha > 0.0 && config_.rtt_alpha <= 1.0,
                "rtt_alpha must be in (0, 1]");
  RDSIM_REQUIRE(config_.loss_alpha > 0.0 && config_.loss_alpha <= 1.0,
                "loss_alpha must be in (0, 1]");
}

bool LinkQualityEstimator::update(const net::StreamStats* video,
                                  const net::StreamStats* command,
                                  units::Seconds staleness, util::TimePoint now) {
  if (first_update_) {
    next_update_ = now;
    first_update_ = false;
  }
  if (now < next_update_) return false;
  next_update_ += config_.update_period.to_duration();

  // Staleness is an instantaneous observable: +inf means no frame has been
  // displayed yet (cold start, not a network fault) — report it invalid so
  // the governor does not escalate before the pipeline has produced output.
  if (std::isfinite(staleness.value())) {
    RDSIM_REQUIRE(staleness >= units::Seconds{}, "staleness cannot be negative");
    quality_.staleness = staleness;
    quality_.staleness_valid = true;
  }

  // RTT: the transports already smooth their RTT estimate (RFC 6298 SRTT);
  // fold the worst live stream through a second, slower EWMA so the
  // governor sees a stable signal rather than per-ACK jitter.
  units::Millis srtt_sample{};
  if (video != nullptr) srtt_sample = std::max(srtt_sample, video->srtt);
  if (command != nullptr) srtt_sample = std::max(srtt_sample, command->srtt);
  if (srtt_sample > units::Millis{}) {
    quality_.rtt = rtt_seeded_
                       ? quality_.rtt + config_.rtt_alpha * (srtt_sample - quality_.rtt)
                       : srtt_sample;
    rtt_seeded_ = true;
    quality_.rtt_valid = true;
  }

  // Loss: retransmit fraction over this estimation window. Retransmissions
  // are the transport's own reaction to loss, so the fraction tracks the
  // injected loss rate without any second tally (one source of truth).
  const std::uint64_t first_tx = total_first_tx(video, command);
  const std::uint64_t retx = total_retx(video, command);
  RDSIM_REQUIRE(first_tx >= prev_first_tx_ && retx >= prev_retx_,
                "stream counters must be monotone");
  const std::uint64_t d_first = first_tx - prev_first_tx_;
  const std::uint64_t d_retx = retx - prev_retx_;
  prev_first_tx_ = first_tx;
  prev_retx_ = retx;
  if (d_first + d_retx > 0) {
    const double sample = static_cast<double>(d_retx) /
                          static_cast<double>(d_first + d_retx);
    quality_.loss = loss_seeded_
                        ? quality_.loss + config_.loss_alpha * (sample - quality_.loss)
                        : sample;
    loss_seeded_ = true;
  }
  RDSIM_ENSURE(quality_.loss >= 0.0 && quality_.loss <= 1.0,
               "loss fraction must stay in [0, 1]");
  return true;
}

}  // namespace rdsim::mitigate
