// Driving scenarios.
//
// §V.B: scenarios were designed from Swedish driving-licence proficiency
// requirements — follow a vehicle, lane change past stationary vehicles
// (slalom), overtake — on a route with day and night conditions, one dynamic
// and a few static road users, plus two "false" cases (cyclists where the
// driver might think intervention is needed but it is not).
//
// A Scenario is data: where the ego starts, the instructions the test leader
// gives ("take the left lane now", §V.E.2), the points of interest where the
// fault injector may strike, and triggered events (spawns, weather changes,
// lead-vehicle braking). ScenarioRuntime executes the triggers against a
// World as the ego progresses.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace rdsim::sim {

/// One leg of the route instruction sheet: between arc positions `from` and
/// `to` the subject is asked to keep `target_lane` (with an optional lateral
/// bias for e.g. giving a cyclist room) at roughly `target_speed`.
struct DriveInstruction {
  units::Meters from{};
  units::Meters to{};
  int target_lane{0};
  units::MetersPerSecond target_speed{10.0};
  units::Meters lateral_bias{};  ///< + left of the lane centre
  std::string note{};
};

/// A point of interest where faults are injected (§V.C: "points of interest
/// while following a vehicle, and when performing lane change operations").
struct PoiWindow {
  std::string name;
  units::Meters from{};
  units::Meters to{};
};

/// Deferred world mutation fired when the ego reaches arc position `at`.
struct Trigger {
  units::Meters at{};
  std::string description;
  std::function<void(World&)> action;
};

struct Scenario {
  std::string name;
  units::Meters ego_start{};
  int ego_start_lane{0};
  units::MetersPerSecond ego_initial_speed{};
  units::Meters end{};              ///< run completes when the ego passes this
  units::Seconds time_limit{600.0}; ///< hard stop (subject lost / stuck)
  WeatherConfig weather{};
  std::vector<DriveInstruction> instructions;
  std::vector<PoiWindow> pois;
  std::vector<Trigger> triggers;
  /// Actors present from the start (the triggers add the rest).
  std::function<void(World&)> populate;

  /// Instruction in force at route position `s` (the latest one whose window
  /// contains s; defaults keep lane 0 at 10 m/s).
  DriveInstruction instruction_at(units::Meters s) const;

  /// The POI containing `s`, if any.
  std::optional<PoiWindow> poi_at(units::Meters s) const;
};

/// Executes a scenario against a world: spawns the ego and initial actors,
/// fires triggers, tracks completion.
class ScenarioRuntime {
 public:
  ScenarioRuntime(Scenario scenario, World& world);

  /// Fire any triggers due at the ego's current position. Call every step.
  void step();

  bool complete() const;
  bool timed_out() const;
  const Scenario& scenario() const { return scenario_; }
  ActorId ego_id() const { return ego_id_; }
  /// Ego arc position along the route.
  units::Meters ego_position() const;

 private:
  Scenario scenario_;
  World* world_;
  ActorId ego_id_{kInvalidActor};
  std::vector<bool> fired_;
};

// ----- scenario library -----

/// The full test route used in the experiments: following + slalom +
/// cyclists + overtake + night section + second following leg. ~2.4 km.
Scenario make_test_route_scenario();

/// Isolated legs, used by unit tests and the focused examples.
Scenario make_following_scenario();
Scenario make_slalom_scenario();
Scenario make_overtake_scenario();

/// Empty town for the training step (§V.E.1).
Scenario make_training_scenario();

/// Extension beyond the paper's operational domain: a pedestrian steps off
/// the kerb and crosses as the ego approaches. The paper's introduction
/// motivates exactly this risk ("environments with manual vehicles or
/// pedestrians"); its Town 5 OD contained no walkers.
Scenario make_pedestrian_crossing_scenario();

}  // namespace rdsim::sim
