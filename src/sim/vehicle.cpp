#include "sim/vehicle.hpp"

#include <cmath>

#include "check/contracts.hpp"
#include "util/vec2.hpp"

namespace rdsim::sim {

VehicleParams VehicleParams::scaled_model_vehicle() {
  VehicleParams p;
  p.wheelbase = units::Meters{0.35};
  p.max_steer_deg = 30.0;
  p.max_steer_rate_deg = 500.0;
  p.max_engine_accel = units::MetersPerSecond2{2.5};
  p.max_brake_decel = units::MetersPerSecond2{5.0};
  p.drag_coeff = 0.02;
  p.rolling_resist = units::MetersPerSecond2{0.15};
  p.max_speed = units::MetersPerSecond{4.0};
  p.throttle_tau = units::Seconds{0.08};
  p.brake_tau = units::Seconds{0.05};
  p.bbox = BoundingBox{0.25, 0.12};
  return p;
}

void Vehicle::step(units::Seconds dt_step) {
  const double dt = dt_step.value();
  RDSIM_REQUIRE(std::isfinite(dt), "vehicle step size must be finite");
  if (dt <= 0.0) return;

  // Actuator lags (first order).
  const double engine_target = control_.throttle * params_.max_engine_accel.value();
  const double brake_target = control_.brake * params_.max_brake_decel.value();
  const double ea = dt / (params_.throttle_tau.value() + dt);
  const double ba = dt / (params_.brake_tau.value() + dt);
  engine_accel_ += ea * (engine_target - engine_accel_);
  brake_decel_ += ba * (brake_target - brake_decel_);

  // Steering with rate limit.
  const double max_angle = util::deg_to_rad(params_.max_steer_deg);
  const double target_angle = control_.steer * max_angle;
  const double max_step = util::deg_to_rad(params_.max_steer_rate_deg) * dt;
  const double delta = util::clamp(target_angle - steer_angle_, -max_step, max_step);
  steer_angle_ += delta;

  // Longitudinal: engine force fades as speed approaches the power limit.
  const double speed_abs = std::fabs(forward_speed_);
  const double power_fade =
      util::clamp(1.0 - speed_abs / params_.max_speed.value(), 0.0, 1.0);
  double accel = engine_accel_ * power_fade * (control_.reverse ? -0.5 : 1.0);
  const double resist = params_.drag_coeff * speed_abs * speed_abs +
                        (speed_abs > 0.01 ? params_.rolling_resist.value() : 0.0);
  const double sign = forward_speed_ >= 0.0 ? 1.0 : -1.0;
  accel -= sign * resist;
  accel -= sign * brake_decel_;
  if (control_.hand_brake) accel -= sign * params_.max_brake_decel.value();

  double new_speed = forward_speed_ + accel * dt;
  // Brakes stop the car; they do not push it backwards.
  if (forward_speed_ > 0.0 && new_speed < 0.0 && !control_.reverse) new_speed = 0.0;
  if (forward_speed_ < 0.0 && new_speed > 0.0 && control_.reverse) new_speed = 0.0;
  const double actual_accel = (new_speed - forward_speed_) / dt;
  forward_speed_ = new_speed;

  // Kinematic bicycle.
  const double yaw_rate =
      forward_speed_ * std::tan(steer_angle_) / params_.wheelbase.value();
  const double mid_heading = state_.heading + yaw_rate * dt / 2.0;
  state_.position += util::Vec2::from_heading(mid_heading) * (forward_speed_ * dt);
  state_.heading = util::wrap_angle(state_.heading + yaw_rate * dt);

  const util::Vec2 fwd = util::Vec2::from_heading(state_.heading);
  state_.velocity = fwd * forward_speed_;
  state_.accel = fwd * actual_accel +
                 fwd.perp() * (forward_speed_ * yaw_rate);  // centripetal

  RDSIM_ENSURE(std::isfinite(state_.position.x) && std::isfinite(state_.position.y) &&
                   std::isfinite(state_.heading) && std::isfinite(forward_speed_),
               "vehicle state must stay finite after integration");
}

}  // namespace rdsim::sim
