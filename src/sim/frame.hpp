// World snapshot frames — the simulator's "camera".
//
// In the paper the CARLA server streams rendered video to the driving
// station at 25–30 fps (§V.A). The operator model does not consume pixels;
// what the remote driver extracts from the video is the state of the scene.
// A WorldFrame is therefore the semantic content of one video frame: the ego
// state plus every visible road user, timestamped with simulation time. Its
// *declared wire size* models the encoded video bitrate so the network layer
// accounts it like real traffic.
#pragma once

#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/serialization.hpp"
#include "sim/types.hpp"

namespace rdsim::sim {

struct ActorSnapshot {
  ActorId id{kInvalidActor};
  ActorKind kind{ActorKind::kVehicle};
  KinematicState state{};
  BoundingBox bbox{};
  VehicleControl control{};
};

struct WorldFrame {
  std::uint32_t frame_id{0};
  std::int64_t sim_time_us{0};
  ActorSnapshot ego{};
  std::vector<ActorSnapshot> others{};
  WeatherConfig weather{};

  double sim_time_s() const { return static_cast<double>(sim_time_us) / 1e6; }

  net::Payload encode() const;
  static std::optional<WorldFrame> decode(const net::Payload& bytes);
};

}  // namespace rdsim::sim
