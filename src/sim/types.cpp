#include "sim/types.hpp"

#include <cmath>

#include "util/vec2.hpp"

namespace rdsim::sim {

std::string to_string(ActorKind kind) {
  switch (kind) {
    case ActorKind::kVehicle: return "vehicle";
    case ActorKind::kStaticVehicle: return "static_vehicle";
    case ActorKind::kCyclist: return "cyclist";
    case ActorKind::kWalker: return "walker";
  }
  return "unknown";
}

void BoundingBox::corners(const util::Pose& pose, util::Vec2 out[4]) const {
  const util::Vec2 f = pose.forward() * half_length;
  const util::Vec2 l = pose.left() * half_width;
  out[0] = pose.position + f + l;
  out[1] = pose.position + f - l;
  out[2] = pose.position - f - l;
  out[3] = pose.position - f + l;
}

namespace {

/// Project corners of both boxes onto `axis` and test interval overlap.
bool overlap_on_axis(const util::Vec2 a[4], const util::Vec2 b[4], util::Vec2 axis) {
  double amin = a[0].dot(axis);
  double amax = amin;
  double bmin = b[0].dot(axis);
  double bmax = bmin;
  for (int i = 1; i < 4; ++i) {
    const double pa = a[i].dot(axis);
    amin = std::min(amin, pa);
    amax = std::max(amax, pa);
    const double pb = b[i].dot(axis);
    bmin = std::min(bmin, pb);
    bmax = std::max(bmax, pb);
  }
  return amax >= bmin && bmax >= amin;
}

}  // namespace

bool boxes_overlap(const BoundingBox& a, const util::Pose& pa, const BoundingBox& b,
                   const util::Pose& pb) {
  util::Vec2 ca[4];
  util::Vec2 cb[4];
  a.corners(pa, ca);
  b.corners(pb, cb);
  const util::Vec2 axes[4] = {pa.forward(), pa.left(), pb.forward(), pb.left()};
  for (const util::Vec2& axis : axes) {
    if (!overlap_on_axis(ca, cb, axis)) return false;
  }
  return true;
}

}  // namespace rdsim::sim
