#include "sim/scenario.hpp"

#include <algorithm>

namespace rdsim::sim {

DriveInstruction Scenario::instruction_at(double s) const {
  DriveInstruction current;
  current.target_lane = ego_start_lane;
  current.target_speed = 10.0;
  for (const DriveInstruction& instr : instructions) {
    if (s >= instr.from_s && s < instr.to_s) current = instr;
  }
  return current;
}

std::optional<PoiWindow> Scenario::poi_at(double s) const {
  for (const PoiWindow& poi : pois) {
    if (s >= poi.from_s && s < poi.to_s) return poi;
  }
  return std::nullopt;
}

ScenarioRuntime::ScenarioRuntime(Scenario scenario, World& world)
    : scenario_{std::move(scenario)}, world_{&world} {
  world_->set_weather(scenario_.weather);
  ego_id_ = world_->spawn_on_road(ActorKind::kVehicle, scenario_.ego_start_s,
                                  scenario_.ego_start_lane, {},
                                  scenario_.ego_initial_speed, "ego");
  world_->designate_ego(ego_id_);
  if (scenario_.populate) scenario_.populate(*world_);
  fired_.assign(scenario_.triggers.size(), false);
}

double ScenarioRuntime::ego_s() const { return world_->ego().track_s(); }

void ScenarioRuntime::step() {
  const double s = ego_s();
  for (std::size_t i = 0; i < scenario_.triggers.size(); ++i) {
    if (!fired_[i] && s >= scenario_.triggers[i].ego_s) {
      scenario_.triggers[i].action(*world_);
      fired_[i] = true;
    }
  }
}

bool ScenarioRuntime::complete() const { return ego_s() >= scenario_.end_s; }

bool ScenarioRuntime::timed_out() const {
  return world_->now().to_seconds() >= scenario_.time_limit_s;
}

namespace {

/// Spawn the lead vehicle for a following leg: starts `gap` ahead of
/// `ego_anchor_s`, follows lane 0 with the given speed profile.
void spawn_lead(World& world, double s, std::vector<LaneFollowController::SpeedPoint> profile,
                double initial_speed, const std::string& role) {
  const ActorId id =
      world.spawn_on_road(ActorKind::kVehicle, s, 0, {}, initial_speed, role);
  auto ctl = std::make_unique<LaneFollowController>(0, initial_speed);
  ctl->set_speed_profile(std::move(profile));
  world.set_controller(id, std::move(ctl));
}

void spawn_parked(World& world, double s, int lane, const std::string& role,
                  double sloppy_offset = 0.0) {
  // Broken-down vehicles rarely sit dead-centre; `sloppy_offset` shifts
  // them toward the passing lane, tightening the gap the subject must
  // thread (positive = left).
  const double lateral = world.road().lane_center_offset(lane) + sloppy_offset;
  world.spawn_at_offset(ActorKind::kStaticVehicle, s, lateral, {}, 0.0, role);
}

void spawn_cyclist(World& world, double s, const std::string& role) {
  // Near the right road edge: visible, uncomfortable, but no intervention
  // actually required — the §V.B "false test case".
  const ActorId id =
      world.spawn_at_offset(ActorKind::kCyclist, s, -1.45, {}, 4.0, role);
  world.set_controller(id, std::make_unique<CyclistController>(4.0, -1.45));
}

}  // namespace

Scenario make_test_route_scenario() {
  Scenario sc;
  sc.name = "test-route";
  sc.ego_start_s = 0.0;
  sc.ego_start_lane = 0;
  sc.ego_initial_speed = 8.0;
  sc.end_s = 2400.0;
  sc.time_limit_s = 420.0;

  // ---- instruction sheet ----
  // Leg 1 (0-600): follow the lead vehicle in lane 0.
  sc.instructions.push_back({0.0, 600.0, 0, 11.0, 0.0, "follow lead vehicle"});
  // Leg 2 (600-980): slalom between sloppily parked vehicles, 70 m apart —
  // one continuous weave, each obstacle passed mid-transition. Nominal
  // clearance ~1.3 m: comfortable with a live view, tight when the view
  // stalls mid-lane-change.
  sc.instructions.push_back({600.0, 660.0, 1, 10.5, 0.0, "left past parked #1"});
  sc.instructions.push_back({660.0, 730.0, 0, 10.5, 0.0, "right past parked #2"});
  sc.instructions.push_back({730.0, 830.0, 1, 10.5, 0.0, "left past parked #3"});
  sc.instructions.push_back({830.0, 980.0, 0, 10.0, 0.0, "back to lane 0"});
  // Leg 3 (980-1150): cruise; give cyclist #1 room.
  sc.instructions.push_back({980.0, 1150.0, 0, 11.0, 0.8, "pass cyclist with margin"});
  // Leg 4 (1150-1500): overtake the slow vehicle.
  sc.instructions.push_back({1150.0, 1250.0, 0, 11.0, 0.0, "approach slow vehicle"});
  sc.instructions.push_back({1250.0, 1450.0, 1, 12.0, 0.0, "overtake via lane 1"});
  sc.instructions.push_back({1450.0, 1600.0, 0, 11.0, 0.0, "merge back"});
  // Leg 5 (1600-2100): night section with cyclist #2.
  sc.instructions.push_back({1600.0, 1950.0, 0, 10.0, 0.0, "night cruise"});
  sc.instructions.push_back({1950.0, 2100.0, 0, 10.0, 0.8, "pass cyclist with margin"});
  // Leg 6 (2100-2400): second following leg with a braking lead.
  sc.instructions.push_back({2100.0, 2400.0, 0, 10.0, 0.0, "follow braking lead"});

  // ---- points of interest for fault injection ----
  sc.pois.push_back({"following-1", 120.0, 280.0});
  sc.pois.push_back({"following-2", 300.0, 460.0});
  sc.pois.push_back({"curve-1", 460.0, 600.0});
  sc.pois.push_back({"slalom-1", 600.0, 700.0});
  sc.pois.push_back({"slalom-2", 700.0, 840.0});
  sc.pois.push_back({"cyclist-1", 1000.0, 1130.0});
  sc.pois.push_back({"overtake-1", 1180.0, 1330.0});
  sc.pois.push_back({"overtake-2", 1330.0, 1500.0});
  sc.pois.push_back({"night-curve", 1620.0, 1800.0});
  sc.pois.push_back({"cyclist-2", 1950.0, 2080.0});
  sc.pois.push_back({"following-3", 2120.0, 2230.0});
  sc.pois.push_back({"following-4", 2230.0, 2390.0});

  // ---- world population ----
  sc.populate = [](World& world) {
    // Lead vehicle for leg 1: cruises at 10, dips to 6.5 (forces the subject
    // to modulate the gap), recovers, then accelerates away before the
    // slalom zone.
    spawn_lead(world, 60.0,
               {{0.0, 10.0}, {250.0, 6.5}, {350.0, 11.0}, {480.0, 16.0}},
               10.0, "lead-1");
    // Parked vehicles for the slalom, shifted toward the passing lane.
    spawn_parked(world, 645.0, 0, "parked-1", +1.15);
    spawn_parked(world, 715.0, 1, "parked-2", -1.15);
    spawn_parked(world, 785.0, 0, "parked-3", +1.15);
    // Cyclist #1 rides ahead; the ego catches up in leg 3.
    spawn_cyclist(world, 620.0, "cyclist-1");
  };

  // ---- triggered events ----
  sc.triggers.push_back(
      {1100.0, "spawn slow vehicle for the overtake leg", [](World& world) {
         spawn_lead(world, 1260.0, {{0.0, 5.0}}, 5.0, "slow-lead");
       }});
  sc.triggers.push_back({1600.0, "nightfall", [](World& world) {
                           WeatherConfig w = world.weather();
                           w.night = true;
                           world.set_weather(w);
                         }});
  sc.triggers.push_back(
      {1500.0, "spawn cyclist #2 on the night section", [](World& world) {
         spawn_cyclist(world, 1760.0, "cyclist-2");
       }});
  sc.triggers.push_back(
      {2020.0, "spawn braking lead for the final following leg", [](World& world) {
         // Dips hard to near-standstill — the leg that stresses braking
         // response the way a city shuttle stop would.
         // Staged braking, ~3 m/s^2 overall: hard enough to demand a prompt
         // response, soft enough that an undisturbed driver always stops.
         spawn_lead(world, 2065.0,
                    {{0.0, 9.0},
                     {2240.0, 6.0},
                     {2244.0, 3.0},
                     {2248.0, 0.8},
                     {2252.0, 0.3},
                     {2258.0, 12.0}},
                    9.0, "lead-2");
       }});
  return sc;
}

Scenario make_following_scenario() {
  Scenario sc;
  sc.name = "following";
  sc.ego_initial_speed = 8.0;
  sc.end_s = 500.0;
  sc.time_limit_s = 120.0;
  sc.instructions.push_back({0.0, 500.0, 0, 11.0, 0.0, "follow the lead vehicle"});
  sc.pois.push_back({"following", 100.0, 450.0});
  sc.populate = [](World& world) {
    spawn_lead(world, 60.0, {{0.0, 10.0}, {250.0, 6.5}, {350.0, 11.0}}, 10.0, "lead");
  };
  return sc;
}

Scenario make_slalom_scenario() {
  Scenario sc;
  sc.name = "slalom";
  sc.ego_initial_speed = 8.0;
  sc.end_s = 450.0;
  sc.time_limit_s = 120.0;
  sc.instructions.push_back({0.0, 162.0, 0, 9.5, 0.0, "approach"});
  sc.instructions.push_back({162.0, 232.0, 1, 9.5, 0.0, "left past parked #1"});
  sc.instructions.push_back({232.0, 302.0, 0, 9.5, 0.0, "right past parked #2"});
  sc.instructions.push_back({302.0, 450.0, 1, 9.5, 0.0, "left past parked #3"});
  sc.pois.push_back({"slalom", 160.0, 420.0});
  sc.populate = [](World& world) {
    spawn_parked(world, 200.0, 0, "parked-1", +0.3);
    spawn_parked(world, 270.0, 1, "parked-2", -0.3);
    spawn_parked(world, 340.0, 0, "parked-3", +0.3);
  };
  return sc;
}

Scenario make_overtake_scenario() {
  Scenario sc;
  sc.name = "overtake";
  sc.ego_initial_speed = 10.0;
  sc.end_s = 500.0;
  sc.time_limit_s = 120.0;
  sc.instructions.push_back({0.0, 120.0, 0, 11.0, 0.0, "approach slow vehicle"});
  sc.instructions.push_back({120.0, 320.0, 1, 12.0, 0.0, "overtake via lane 1"});
  sc.instructions.push_back({320.0, 500.0, 0, 11.0, 0.0, "merge back"});
  sc.pois.push_back({"overtake", 80.0, 350.0});
  sc.populate = [](World& world) {
    spawn_lead(world, 130.0, {{0.0, 5.0}}, 5.0, "slow-lead");
  };
  return sc;
}

Scenario make_pedestrian_crossing_scenario() {
  Scenario sc;
  sc.name = "pedestrian-crossing";
  sc.ego_initial_speed = 8.0;
  sc.end_s = 400.0;
  sc.time_limit_s = 120.0;
  sc.instructions.push_back({0.0, 400.0, 0, 10.0, 0.0, "watch for pedestrians"});
  sc.pois.push_back({"crossing", 120.0, 260.0});
  sc.populate = [](World& world) {
    // Waiting at the right kerb, 200 m in.
    const ActorId id =
        world.spawn_at_offset(ActorKind::kWalker, 200.0, -2.2, {}, 0.0, "walker-1");
    world.set_controller(
        id, std::make_unique<WalkerController>(/*walk_speed=*/1.4,
                                               /*target_lateral=*/5.3));
  };
  // The pedestrian commits when the ego is ~3.5 s away at the instructed
  // speed: a classic conflict the remote driver must brake for.
  sc.triggers.push_back({165.0, "pedestrian steps off the kerb", [](World& world) {
                           for (const Actor* a : world.actors()) {
                             if (a->kind() != ActorKind::kWalker) continue;
                             // Controllers are owned by the actor; install a
                             // crossing controller in place of the waiting one.
                             auto ctl = std::make_unique<WalkerController>(1.4, 5.3);
                             ctl->start_crossing();
                             world.set_controller(a->id(), std::move(ctl));
                           }
                         }});
  return sc;
}

Scenario make_training_scenario() {
  Scenario sc;
  sc.name = "training";
  sc.ego_initial_speed = 0.0;
  sc.end_s = 800.0;
  sc.time_limit_s = 300.0;  // three to five minutes of free driving (§V.E.1)
  sc.instructions.push_back({0.0, 800.0, 0, 12.0, 0.0, "drive freely"});
  return sc;
}

}  // namespace rdsim::sim
