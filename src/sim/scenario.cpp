#include "sim/scenario.hpp"

#include <algorithm>

namespace rdsim::sim {

namespace {
// The scenario library below is dense data entry; short aliases keep the
// typed literals readable.
using M = units::Meters;
using Mps = units::MetersPerSecond;
}  // namespace

DriveInstruction Scenario::instruction_at(units::Meters s) const {
  DriveInstruction current;
  current.target_lane = ego_start_lane;
  current.target_speed = Mps{10.0};
  for (const DriveInstruction& instr : instructions) {
    if (s >= instr.from && s < instr.to) current = instr;
  }
  return current;
}

std::optional<PoiWindow> Scenario::poi_at(units::Meters s) const {
  for (const PoiWindow& poi : pois) {
    if (s >= poi.from && s < poi.to) return poi;
  }
  return std::nullopt;
}

ScenarioRuntime::ScenarioRuntime(Scenario scenario, World& world)
    : scenario_{std::move(scenario)}, world_{&world} {
  world_->set_weather(scenario_.weather);
  ego_id_ = world_->spawn_on_road(ActorKind::kVehicle, scenario_.ego_start,
                                  scenario_.ego_start_lane, {},
                                  scenario_.ego_initial_speed, "ego");
  world_->designate_ego(ego_id_);
  if (scenario_.populate) scenario_.populate(*world_);
  fired_.assign(scenario_.triggers.size(), false);
}

units::Meters ScenarioRuntime::ego_position() const {
  return world_->ego().track_position();
}

void ScenarioRuntime::step() {
  const units::Meters s = ego_position();
  for (std::size_t i = 0; i < scenario_.triggers.size(); ++i) {
    if (!fired_[i] && s >= scenario_.triggers[i].at) {
      scenario_.triggers[i].action(*world_);
      fired_[i] = true;
    }
  }
}

bool ScenarioRuntime::complete() const { return ego_position() >= scenario_.end; }

bool ScenarioRuntime::timed_out() const {
  return world_->now().to_seconds() >= scenario_.time_limit.value();
}

namespace {

/// Spawn the lead vehicle for a following leg: starts `gap` ahead of
/// `ego_anchor_s`, follows lane 0 with the given speed profile.
void spawn_lead(World& world, M s, std::vector<LaneFollowController::SpeedPoint> profile,
                Mps initial_speed, const std::string& role) {
  const ActorId id =
      world.spawn_on_road(ActorKind::kVehicle, s, 0, {}, initial_speed, role);
  auto ctl = std::make_unique<LaneFollowController>(0, initial_speed);
  ctl->set_speed_profile(std::move(profile));
  world.set_controller(id, std::move(ctl));
}

void spawn_parked(World& world, M s, int lane, const std::string& role,
                  double sloppy_offset = 0.0) {
  // Broken-down vehicles rarely sit dead-centre; `sloppy_offset` shifts
  // them toward the passing lane, tightening the gap the subject must
  // thread (positive = left).
  const double lateral = world.road().lane_center_offset(lane) + sloppy_offset;
  world.spawn_at_offset(ActorKind::kStaticVehicle, s, lateral, {}, Mps{}, role);
}

void spawn_cyclist(World& world, M s, const std::string& role) {
  // Near the right road edge: visible, uncomfortable, but no intervention
  // actually required — the §V.B "false test case".
  const ActorId id =
      world.spawn_at_offset(ActorKind::kCyclist, s, -1.45, {}, Mps{4.0}, role);
  world.set_controller(id,
                       std::make_unique<CyclistController>(Mps{4.0}, M{-1.45}));
}

}  // namespace

Scenario make_test_route_scenario() {
  Scenario sc;
  sc.name = "test-route";
  sc.ego_start = M{0.0};
  sc.ego_start_lane = 0;
  sc.ego_initial_speed = Mps{8.0};
  sc.end = M{2400.0};
  sc.time_limit = units::Seconds{420.0};

  // ---- instruction sheet ----
  // Leg 1 (0-600): follow the lead vehicle in lane 0.
  sc.instructions.push_back(
      {M{0.0}, M{600.0}, 0, Mps{11.0}, M{0.0}, "follow lead vehicle"});
  // Leg 2 (600-980): slalom between sloppily parked vehicles, 70 m apart —
  // one continuous weave, each obstacle passed mid-transition. Nominal
  // clearance ~1.3 m: comfortable with a live view, tight when the view
  // stalls mid-lane-change.
  sc.instructions.push_back(
      {M{600.0}, M{660.0}, 1, Mps{10.5}, M{0.0}, "left past parked #1"});
  sc.instructions.push_back(
      {M{660.0}, M{730.0}, 0, Mps{10.5}, M{0.0}, "right past parked #2"});
  sc.instructions.push_back(
      {M{730.0}, M{830.0}, 1, Mps{10.5}, M{0.0}, "left past parked #3"});
  sc.instructions.push_back(
      {M{830.0}, M{980.0}, 0, Mps{10.0}, M{0.0}, "back to lane 0"});
  // Leg 3 (980-1150): cruise; give cyclist #1 room.
  sc.instructions.push_back(
      {M{980.0}, M{1150.0}, 0, Mps{11.0}, M{0.8}, "pass cyclist with margin"});
  // Leg 4 (1150-1500): overtake the slow vehicle.
  sc.instructions.push_back(
      {M{1150.0}, M{1250.0}, 0, Mps{11.0}, M{0.0}, "approach slow vehicle"});
  sc.instructions.push_back(
      {M{1250.0}, M{1450.0}, 1, Mps{12.0}, M{0.0}, "overtake via lane 1"});
  sc.instructions.push_back(
      {M{1450.0}, M{1600.0}, 0, Mps{11.0}, M{0.0}, "merge back"});
  // Leg 5 (1600-2100): night section with cyclist #2.
  sc.instructions.push_back(
      {M{1600.0}, M{1950.0}, 0, Mps{10.0}, M{0.0}, "night cruise"});
  sc.instructions.push_back(
      {M{1950.0}, M{2100.0}, 0, Mps{10.0}, M{0.8}, "pass cyclist with margin"});
  // Leg 6 (2100-2400): second following leg with a braking lead.
  sc.instructions.push_back(
      {M{2100.0}, M{2400.0}, 0, Mps{10.0}, M{0.0}, "follow braking lead"});

  // ---- points of interest for fault injection ----
  sc.pois.push_back({"following-1", M{120.0}, M{280.0}});
  sc.pois.push_back({"following-2", M{300.0}, M{460.0}});
  sc.pois.push_back({"curve-1", M{460.0}, M{600.0}});
  sc.pois.push_back({"slalom-1", M{600.0}, M{700.0}});
  sc.pois.push_back({"slalom-2", M{700.0}, M{840.0}});
  sc.pois.push_back({"cyclist-1", M{1000.0}, M{1130.0}});
  sc.pois.push_back({"overtake-1", M{1180.0}, M{1330.0}});
  sc.pois.push_back({"overtake-2", M{1330.0}, M{1500.0}});
  sc.pois.push_back({"night-curve", M{1620.0}, M{1800.0}});
  sc.pois.push_back({"cyclist-2", M{1950.0}, M{2080.0}});
  sc.pois.push_back({"following-3", M{2120.0}, M{2230.0}});
  sc.pois.push_back({"following-4", M{2230.0}, M{2390.0}});

  // ---- world population ----
  sc.populate = [](World& world) {
    // Lead vehicle for leg 1: cruises at 10, dips to 6.5 (forces the subject
    // to modulate the gap), recovers, then accelerates away before the
    // slalom zone.
    spawn_lead(world, M{60.0},
               {{M{0.0}, Mps{10.0}},
                {M{250.0}, Mps{6.5}},
                {M{350.0}, Mps{11.0}},
                {M{480.0}, Mps{16.0}}},
               Mps{10.0}, "lead-1");
    // Parked vehicles for the slalom, shifted toward the passing lane.
    spawn_parked(world, M{645.0}, 0, "parked-1", +1.15);
    spawn_parked(world, M{715.0}, 1, "parked-2", -1.15);
    spawn_parked(world, M{785.0}, 0, "parked-3", +1.15);
    // Cyclist #1 rides ahead; the ego catches up in leg 3.
    spawn_cyclist(world, M{620.0}, "cyclist-1");
  };

  // ---- triggered events ----
  sc.triggers.push_back(
      {M{1100.0}, "spawn slow vehicle for the overtake leg", [](World& world) {
         spawn_lead(world, M{1260.0}, {{M{0.0}, Mps{5.0}}}, Mps{5.0}, "slow-lead");
       }});
  sc.triggers.push_back({M{1600.0}, "nightfall", [](World& world) {
                           WeatherConfig w = world.weather();
                           w.night = true;
                           world.set_weather(w);
                         }});
  sc.triggers.push_back(
      {M{1500.0}, "spawn cyclist #2 on the night section", [](World& world) {
         spawn_cyclist(world, M{1760.0}, "cyclist-2");
       }});
  sc.triggers.push_back(
      {M{2020.0}, "spawn braking lead for the final following leg", [](World& world) {
         // Dips hard to near-standstill — the leg that stresses braking
         // response the way a city shuttle stop would.
         // Staged braking, ~3 m/s^2 overall: hard enough to demand a prompt
         // response, soft enough that an undisturbed driver always stops.
         spawn_lead(world, M{2065.0},
                    {{M{0.0}, Mps{9.0}},
                     {M{2240.0}, Mps{6.0}},
                     {M{2244.0}, Mps{3.0}},
                     {M{2248.0}, Mps{0.8}},
                     {M{2252.0}, Mps{0.3}},
                     {M{2258.0}, Mps{12.0}}},
                    Mps{9.0}, "lead-2");
       }});
  return sc;
}

Scenario make_following_scenario() {
  Scenario sc;
  sc.name = "following";
  sc.ego_initial_speed = Mps{8.0};
  sc.end = M{500.0};
  sc.time_limit = units::Seconds{120.0};
  sc.instructions.push_back(
      {M{0.0}, M{500.0}, 0, Mps{11.0}, M{0.0}, "follow the lead vehicle"});
  sc.pois.push_back({"following", M{100.0}, M{450.0}});
  sc.populate = [](World& world) {
    spawn_lead(world, M{60.0},
               {{M{0.0}, Mps{10.0}}, {M{250.0}, Mps{6.5}}, {M{350.0}, Mps{11.0}}},
               Mps{10.0}, "lead");
  };
  return sc;
}

Scenario make_slalom_scenario() {
  Scenario sc;
  sc.name = "slalom";
  sc.ego_initial_speed = Mps{8.0};
  sc.end = M{450.0};
  sc.time_limit = units::Seconds{120.0};
  sc.instructions.push_back({M{0.0}, M{162.0}, 0, Mps{9.5}, M{0.0}, "approach"});
  sc.instructions.push_back(
      {M{162.0}, M{232.0}, 1, Mps{9.5}, M{0.0}, "left past parked #1"});
  sc.instructions.push_back(
      {M{232.0}, M{302.0}, 0, Mps{9.5}, M{0.0}, "right past parked #2"});
  sc.instructions.push_back(
      {M{302.0}, M{450.0}, 1, Mps{9.5}, M{0.0}, "left past parked #3"});
  sc.pois.push_back({"slalom", M{160.0}, M{420.0}});
  sc.populate = [](World& world) {
    spawn_parked(world, M{200.0}, 0, "parked-1", +0.3);
    spawn_parked(world, M{270.0}, 1, "parked-2", -0.3);
    spawn_parked(world, M{340.0}, 0, "parked-3", +0.3);
  };
  return sc;
}

Scenario make_overtake_scenario() {
  Scenario sc;
  sc.name = "overtake";
  sc.ego_initial_speed = Mps{10.0};
  sc.end = M{500.0};
  sc.time_limit = units::Seconds{120.0};
  sc.instructions.push_back(
      {M{0.0}, M{120.0}, 0, Mps{11.0}, M{0.0}, "approach slow vehicle"});
  sc.instructions.push_back(
      {M{120.0}, M{320.0}, 1, Mps{12.0}, M{0.0}, "overtake via lane 1"});
  sc.instructions.push_back({M{320.0}, M{500.0}, 0, Mps{11.0}, M{0.0}, "merge back"});
  sc.pois.push_back({"overtake", M{80.0}, M{350.0}});
  sc.populate = [](World& world) {
    spawn_lead(world, M{130.0}, {{M{0.0}, Mps{5.0}}}, Mps{5.0}, "slow-lead");
  };
  return sc;
}

Scenario make_pedestrian_crossing_scenario() {
  Scenario sc;
  sc.name = "pedestrian-crossing";
  sc.ego_initial_speed = Mps{8.0};
  sc.end = M{400.0};
  sc.time_limit = units::Seconds{120.0};
  sc.instructions.push_back(
      {M{0.0}, M{400.0}, 0, Mps{10.0}, M{0.0}, "watch for pedestrians"});
  sc.pois.push_back({"crossing", M{120.0}, M{260.0}});
  sc.populate = [](World& world) {
    // Waiting at the right kerb, 200 m in.
    const ActorId id =
        world.spawn_at_offset(ActorKind::kWalker, M{200.0}, -2.2, {}, Mps{}, "walker-1");
    world.set_controller(
        id, std::make_unique<WalkerController>(/*walk_speed=*/Mps{1.4},
                                               /*target_lateral=*/M{5.3}));
  };
  // The pedestrian commits when the ego is ~3.5 s away at the instructed
  // speed: a classic conflict the remote driver must brake for.
  sc.triggers.push_back({M{165.0}, "pedestrian steps off the kerb", [](World& world) {
                           for (const Actor* a : world.actors()) {
                             if (a->kind() != ActorKind::kWalker) continue;
                             // Controllers are owned by the actor; install a
                             // crossing controller in place of the waiting one.
                             auto ctl =
                                 std::make_unique<WalkerController>(Mps{1.4}, M{5.3});
                             ctl->start_crossing();
                             world.set_controller(a->id(), std::move(ctl));
                           }
                         }});
  return sc;
}

Scenario make_training_scenario() {
  Scenario sc;
  sc.name = "training";
  sc.ego_initial_speed = Mps{};
  sc.end = M{800.0};
  // Three to five minutes of free driving (§V.E.1).
  sc.time_limit = units::Seconds{300.0};
  sc.instructions.push_back({M{0.0}, M{800.0}, 0, Mps{12.0}, M{0.0}, "drive freely"});
  return sc;
}

}  // namespace rdsim::sim
