// Actors: every dynamic or static object in the world that the sensors can
// see and the ego vehicle can hit. Non-ego road users are driven by small
// behaviour controllers (CARLA's "autopilot" role in the paper's scenarios).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/road.hpp"
#include "sim/vehicle.hpp"
#include "util/vec2.hpp"

namespace rdsim::sim {

class Actor;

/// Behaviour controller for scripted road users.
class ActorController {
 public:
  virtual ~ActorController() = default;
  virtual void update(Actor& actor, const RoadNetwork& road, units::Seconds dt) = 0;
};

class Actor {
 public:
  Actor(ActorId id, ActorKind kind, VehicleParams params)
      : id_{id}, kind_{kind}, vehicle_{params} {}

  ActorId id() const { return id_; }
  ActorKind kind() const { return kind_; }
  const std::string& role() const { return role_; }
  void set_role(std::string role) { role_ = std::move(role); }

  Vehicle& vehicle() { return vehicle_; }
  const Vehicle& vehicle() const { return vehicle_; }
  const KinematicState& state() const { return vehicle_.state(); }
  const BoundingBox& bbox() const { return vehicle_.params().bbox; }
  util::Pose pose() const { return vehicle_.state().pose(); }

  void set_controller(std::unique_ptr<ActorController> controller) {
    controller_ = std::move(controller);
  }
  bool has_controller() const { return controller_ != nullptr; }

  /// Track-position cache (arc length along the route), maintained by the
  /// world for cheap projection.
  units::Meters track_position() const { return track_position_; }
  void set_track_position(units::Meters s) { track_position_ = s; }

  void step(const RoadNetwork& road, units::Seconds dt) {
    if (controller_) controller_->update(*this, road, dt);
    // Static vehicles don't move; walkers are integrated by their
    // controller, not by the wheeled-plant dynamics.
    if (kind_ != ActorKind::kStaticVehicle && kind_ != ActorKind::kWalker) {
      vehicle_.step(dt);
    }
  }

 private:
  ActorId id_;
  ActorKind kind_;
  std::string role_;
  Vehicle vehicle_;
  std::unique_ptr<ActorController> controller_;
  units::Meters track_position_{};
};

/// Follows a lane at a scripted speed profile — the "dynamic vehicle" the
/// test subjects follow and overtake (§V.B). Speed breakpoints are linear in
/// the controller's own track position.
class LaneFollowController final : public ActorController {
 public:
  struct SpeedPoint {
    units::Meters s;              ///< breakpoint position along the route
    units::MetersPerSecond speed; ///< target from this position on
  };

  LaneFollowController(int lane, units::MetersPerSecond cruise_speed);

  /// Replace the constant cruise speed with a piecewise profile.
  void set_speed_profile(std::vector<SpeedPoint> profile);
  void set_lane(int lane) { lane_ = lane; }

  void update(Actor& actor, const RoadNetwork& road, units::Seconds dt) override;

 private:
  units::MetersPerSecond target_speed_at(units::Meters s) const;

  int lane_;
  units::MetersPerSecond cruise_speed_;
  std::vector<SpeedPoint> profile_;
};

/// A pedestrian crossing the carriageway at walking pace. Starts parked at
/// the roadside; once switched to crossing (typically by a scenario
/// trigger when the ego approaches) it walks laterally across the lanes and
/// stops on the far side. Motion is integrated directly — walkers are not
/// wheeled plants.
class WalkerController final : public ActorController {
 public:
  /// `target_lateral` is where the walker stops (far kerb).
  WalkerController(units::MetersPerSecond walk_speed, units::Meters target_lateral);

  void start_crossing() { crossing_ = true; }
  bool crossing() const { return crossing_; }
  bool done() const { return done_; }

  void update(Actor& actor, const RoadNetwork& road, units::Seconds dt) override;

 private:
  units::MetersPerSecond walk_speed_;
  units::Meters target_lateral_;
  bool crossing_{false};
  bool done_{false};
};

/// Rides near the right road edge at cycling speed with a gentle wobble —
/// the "false test case" road users a remote driver might misread (§V.B).
class CyclistController final : public ActorController {
 public:
  CyclistController(units::MetersPerSecond speed, units::Meters edge_offset,
                    double wobble_amp = 0.15,
                    units::Seconds wobble_period = units::Seconds{3.0});

  void update(Actor& actor, const RoadNetwork& road, units::Seconds dt) override;

 private:
  units::MetersPerSecond speed_;
  units::Meters edge_offset_;
  double wobble_amp_;
  units::Seconds wobble_period_;
  units::Seconds phase_{};
};

}  // namespace rdsim::sim
