// Road network: a multi-lane carriageway along a curved reference line.
//
// The paper's operational domain is CARLA Town 5 — "a highway and multi-lane
// road network" (§V.B). We model the test route as one continuous multi-lane
// road whose reference line is built from straight and circular-arc segments,
// densely sampled so that arc-length parameterisation, lane projection and
// lane-marking queries are cheap and exact enough for control and metrics.
//
// Conventions: lane 0 is the rightmost driving lane; lane centre offsets grow
// to the left. Arc length `s` runs from 0 at the route start.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/vec2.hpp"

namespace rdsim::sim {

/// Lane-marking classes, as reported by CARLA's lane-invasion sensor.
enum class LaneMarking : std::uint8_t {
  kBroken,      ///< between same-direction lanes, legal to cross
  kSolid,       ///< road edge / opposing separation
};

/// Builds the reference line from primitive segments.
class PathBuilder {
 public:
  /// Start pose of the path.
  explicit PathBuilder(util::Pose start = {}, double sample_step_m = 1.0);

  PathBuilder& straight(double length_m);
  /// Circular arc; positive `angle_rad` curves left, radius > 0.
  PathBuilder& arc(double radius_m, double angle_rad);

  /// Sampled points and headings, one per ~sample_step.
  struct Sampled {
    std::vector<util::Vec2> points;
    std::vector<double> headings;
    std::vector<double> arclength;  ///< cumulative, same size
  };
  Sampled build() const;

 private:
  struct Segment {
    bool is_arc{false};
    double length{0.0};
    double radius{0.0};
    double angle{0.0};
  };
  util::Pose start_;
  double step_;
  std::vector<Segment> segments_;
};

/// Result of projecting a world point onto the road.
struct RoadProjection {
  double s{0.0};               ///< arc length along the reference line
  double lateral{0.0};         ///< signed offset, + to the left of lane 0 centre
  int lane{0};                 ///< nearest lane index (clamped to valid lanes)
  double lane_offset{0.0};     ///< lateral offset from that lane's centre
  double heading_error{0.0};   ///< vehicle heading minus road heading (set by caller)
};

class RoadNetwork {
 public:
  /// `reference` is the centreline of lane 0.
  RoadNetwork(PathBuilder::Sampled reference, int lane_count, double lane_width_m);

  int lane_count() const { return lane_count_; }
  double lane_width() const { return lane_width_; }
  double length() const { return arclength_.empty() ? 0.0 : arclength_.back(); }

  /// World pose of (s, lane) on the lane centre; s clamped to [0, length].
  util::Pose sample(double s, int lane) const;
  /// World pose at arbitrary lateral offset from the lane-0 centreline.
  util::Pose sample_offset(double s, double lateral) const;
  double heading_at(double s) const;
  /// Signed curvature at s (1/m, + left).
  double curvature_at(double s) const;

  /// Project a world point; `hint_s` (if given) makes the search local and
  /// O(1) for the forward-moving actors that dominate the workload.
  RoadProjection project(util::Vec2 point, std::optional<double> hint_s = {}) const;

  /// Lateral offset of the centre of lane `lane` from the reference line.
  double lane_center_offset(int lane) const {
    return static_cast<double>(lane) * lane_width_;
  }

  /// The marking to the left/right of `lane`. Right edge of lane 0 and left
  /// edge of the last lane are solid; interior markings are broken.
  LaneMarking marking_left_of(int lane) const {
    return lane == lane_count_ - 1 ? LaneMarking::kSolid : LaneMarking::kBroken;
  }
  LaneMarking marking_right_of(int lane) const {
    return lane == 0 ? LaneMarking::kSolid : LaneMarking::kBroken;
  }

  /// Lateral bounds of the drivable surface relative to the reference line.
  double right_edge_offset() const { return -lane_width_ / 2.0; }
  double left_edge_offset() const {
    return lane_width_ * (static_cast<double>(lane_count_) - 0.5);
  }

 private:
  std::size_t nearest_index(util::Vec2 point, std::optional<double> hint_s) const;

  std::vector<util::Vec2> points_;
  std::vector<double> headings_;
  std::vector<double> arclength_;
  int lane_count_;
  double lane_width_;
};

/// The test route used in our experiments: a Town05-like course with long
/// straights, sweeping curves and two same-direction lanes. ~2.6 km.
/// `scale` shrinks every length (segment lengths, radii, lane width) —
/// scale 0.25 gives the kind of course a scaled-down model vehicle drives.
RoadNetwork make_town05_route(double scale = 1.0);

}  // namespace rdsim::sim
