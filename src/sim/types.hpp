// Fundamental simulator types, mirroring the CARLA client API surface the
// paper's test rig uses: actors with ids and bounding boxes, and the vehicle
// control tuple (steer / throttle / brake / reverse) that the remote station
// transmits (§II.B, §V.D).
#pragma once

#include <cstdint>
#include <string>

#include "util/vec2.hpp"

namespace rdsim::sim {

using ActorId = std::uint32_t;
inline constexpr ActorId kInvalidActor = 0;

enum class ActorKind : std::uint8_t {
  kVehicle,
  kStaticVehicle,  ///< parked / broken-down vehicles (lane-change scenario)
  kCyclist,        ///< the false-positive road users of §V.B
  kWalker,
};

std::string to_string(ActorKind kind);

/// The control tuple a CARLA client sends. Ranges follow CARLA:
/// throttle/brake in [0,1], steer in [-1,1] (fraction of max wheel angle).
struct VehicleControl {
  double throttle{0.0};
  double steer{0.0};
  double brake{0.0};
  bool reverse{false};
  bool hand_brake{false};

  VehicleControl clamped() const {
    return {util::clamp(throttle, 0.0, 1.0), util::clamp(steer, -1.0, 1.0),
            util::clamp(brake, 0.0, 1.0), reverse, hand_brake};
  }
  friend bool operator==(const VehicleControl&, const VehicleControl&) = default;
};

/// Full kinematic state logged for every actor (§V.F: x, y, z, v*, a*).
struct KinematicState {
  util::Vec2 position{};
  double z{0.0};
  double heading{0.0};    ///< radians, CCW from +x
  util::Vec2 velocity{};  ///< world frame, m/s
  util::Vec2 accel{};     ///< world frame, m/s^2

  double speed() const { return velocity.norm(); }
  util::Pose pose() const { return {position, heading}; }
};

/// Axis-aligned-in-body-frame bounding box (half extents), as CARLA exposes.
struct BoundingBox {
  double half_length{2.3};  ///< along heading
  double half_width{0.95};

  /// The four corners in world coordinates for a given pose.
  void corners(const util::Pose& pose, util::Vec2 out[4]) const;
};

/// Oriented-rectangle overlap via the separating axis theorem.
bool boxes_overlap(const BoundingBox& a, const util::Pose& pa, const BoundingBox& b,
                   const util::Pose& pb);

/// Weather / lighting configuration — a CARLA meta-command. Only visibility
/// matters to the operator model (night driving adds perceptual noise).
struct WeatherConfig {
  bool night{false};
  double fog_density{0.0};  ///< [0,1]

  /// Multiplier >= 1 applied to the operator's perceptual noise.
  double perception_noise_factor() const {
    return 1.0 + (night ? 0.25 : 0.0) + 0.5 * fog_density;
  }
};

}  // namespace rdsim::sim
