#include "sim/rpc.hpp"

#include "net/packet.hpp"
#include "net/serialization.hpp"
#include "util/time.hpp"

namespace rdsim::sim {

namespace {

void encode_control(net::ByteWriter& w, const VehicleControl& c) {
  w.f64(c.throttle);
  w.f64(c.steer);
  w.f64(c.brake);
  w.u8(c.reverse ? 1 : 0);
  w.u8(c.hand_brake ? 1 : 0);
}

VehicleControl decode_control(net::ByteReader& r) {
  VehicleControl c;
  c.throttle = r.f64();
  c.steer = r.f64();
  c.brake = r.f64();
  c.reverse = r.u8() != 0;
  c.hand_brake = r.u8() != 0;
  return c;
}

}  // namespace

net::Payload RpcRequest::encode() const {
  net::ByteWriter w;
  w.u32(request_id);
  w.u8(static_cast<std::uint8_t>(opcode));
  switch (opcode) {
    case RpcOpcode::kHello:
      break;
    case RpcOpcode::kSpawnVehicle:
      w.u8(static_cast<std::uint8_t>(kind));
      w.f64(spawn_s);
      w.f64(spawn_lateral);
      w.f64(initial_speed);
      w.str(role);
      break;
    case RpcOpcode::kDestroyActor:
      w.u32(actor);
      break;
    case RpcOpcode::kSetWeather:
      w.u8(weather.night ? 1 : 0);
      w.f64(weather.fog_density);
      break;
    case RpcOpcode::kApplyControl:
      w.u32(actor);
      encode_control(w, control);
      break;
    case RpcOpcode::kGetSnapshot:
      break;
    case RpcOpcode::kSubscribeFrames:
      w.f64(fps);
      break;
  }
  return w.take();
}

std::optional<RpcRequest> RpcRequest::decode(const net::Payload& bytes) {
  net::ByteReader r{bytes};
  RpcRequest req;
  req.request_id = r.u32();
  const std::uint8_t op = r.u8();
  if (!r.ok() || op > static_cast<std::uint8_t>(RpcOpcode::kSubscribeFrames)) {
    return std::nullopt;
  }
  req.opcode = static_cast<RpcOpcode>(op);
  switch (req.opcode) {
    case RpcOpcode::kHello:
      break;
    case RpcOpcode::kSpawnVehicle:
      req.kind = static_cast<ActorKind>(r.u8());
      req.spawn_s = r.f64();
      req.spawn_lateral = r.f64();
      req.initial_speed = r.f64();
      req.role = r.str();
      break;
    case RpcOpcode::kDestroyActor:
      req.actor = r.u32();
      break;
    case RpcOpcode::kSetWeather:
      req.weather.night = r.u8() != 0;
      req.weather.fog_density = r.f64();
      break;
    case RpcOpcode::kApplyControl:
      req.actor = r.u32();
      req.control = decode_control(r);
      break;
    case RpcOpcode::kGetSnapshot:
      break;
    case RpcOpcode::kSubscribeFrames:
      req.fps = r.f64();
      break;
  }
  if (!r.ok()) return std::nullopt;
  return req;
}

net::Payload RpcResponse::encode() const {
  net::ByteWriter w;
  w.u32(request_id);
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.u32(actor);
  if (snapshot) {
    w.u8(1);
    w.bytes(snapshot->encode());
  } else {
    w.u8(0);
  }
  return w.take();
}

std::optional<RpcResponse> RpcResponse::decode(const net::Payload& bytes) {
  net::ByteReader r{bytes};
  RpcResponse resp;
  resp.request_id = r.u32();
  resp.ok = r.u8() != 0;
  resp.error = r.str();
  resp.actor = r.u32();
  if (r.u8() != 0) {
    resp.snapshot = WorldFrame::decode(r.bytes());
    if (!resp.snapshot) return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return resp;
}

// ----- server -----

SimServer::SimServer(World& world, RpcTransport& transport)
    : world_{&world}, transport_{&transport} {}

RpcResponse SimServer::execute(const RpcRequest& request) {
  RpcResponse resp;
  resp.request_id = request.request_id;
  resp.ok = true;
  switch (request.opcode) {
    case RpcOpcode::kHello:
      break;
    case RpcOpcode::kSpawnVehicle:
      resp.actor = world_->spawn_at_offset(
          request.kind, units::Meters{request.spawn_s}, request.spawn_lateral, {},
          units::MetersPerSecond{request.initial_speed}, request.role);
      break;
    case RpcOpcode::kDestroyActor:
      if (world_->find(request.actor) == nullptr) {
        resp.ok = false;
        resp.error = "no such actor";
      } else {
        world_->destroy(request.actor);
      }
      break;
    case RpcOpcode::kSetWeather:
      world_->set_weather(request.weather);
      break;
    case RpcOpcode::kApplyControl:
      if (Actor* a = world_->find(request.actor)) {
        a->vehicle().apply_control(request.control);
      } else {
        resp.ok = false;
        resp.error = "no such actor";
      }
      break;
    case RpcOpcode::kGetSnapshot:
      resp.snapshot = world_->snapshot();
      break;
    case RpcOpcode::kSubscribeFrames:
      if (request.fps <= 0.0 || request.fps > 120.0) {
        resp.ok = false;
        resp.error = "fps out of range";
      } else {
        frame_interval_ = util::Duration::seconds(1.0 / request.fps);
      }
      break;
  }
  return resp;
}

void SimServer::step(util::TimePoint now) {
  transport_->step(now);
  while (auto msg = transport_->requests.pop_delivered()) {
    const auto request = RpcRequest::decode(msg->bytes);
    RpcResponse resp;
    if (request) {
      resp = execute(*request);
    } else {
      resp.ok = false;
      resp.error = "malformed request";
    }
    ++requests_served_;
    transport_->responses.send_message(resp.encode(), 256, now);
  }
  if (frame_interval_ && now >= next_frame_) {
    next_frame_ = now + *frame_interval_;
    transport_->frames.send_message(world_->snapshot().encode(), frame_wire_bytes_, now);
    ++frames_streamed_;
  }
}

// ----- client -----

SimClient::SimClient(RpcTransport& transport) : transport_{&transport} {}

std::uint32_t SimClient::send(RpcRequest request) {
  request.request_id = next_request_++;
  transport_->requests.send_message(request.encode(), 256, now_);
  ++pending_;
  return request.request_id;
}

std::uint32_t SimClient::hello() { return send({}); }

std::uint32_t SimClient::spawn_vehicle(ActorKind kind, double s, double lateral,
                                       double initial_speed, std::string role) {
  RpcRequest req;
  req.opcode = RpcOpcode::kSpawnVehicle;
  req.kind = kind;
  req.spawn_s = s;
  req.spawn_lateral = lateral;
  req.initial_speed = initial_speed;
  req.role = std::move(role);
  return send(std::move(req));
}

std::uint32_t SimClient::destroy_actor(ActorId id) {
  RpcRequest req;
  req.opcode = RpcOpcode::kDestroyActor;
  req.actor = id;
  return send(std::move(req));
}

std::uint32_t SimClient::set_weather(const WeatherConfig& weather) {
  RpcRequest req;
  req.opcode = RpcOpcode::kSetWeather;
  req.weather = weather;
  return send(std::move(req));
}

std::uint32_t SimClient::apply_control(ActorId actor, const VehicleControl& control) {
  RpcRequest req;
  req.opcode = RpcOpcode::kApplyControl;
  req.actor = actor;
  req.control = control;
  return send(std::move(req));
}

std::uint32_t SimClient::get_snapshot() {
  RpcRequest req;
  req.opcode = RpcOpcode::kGetSnapshot;
  return send(std::move(req));
}

std::uint32_t SimClient::subscribe_frames(double fps) {
  RpcRequest req;
  req.opcode = RpcOpcode::kSubscribeFrames;
  req.fps = fps;
  return send(std::move(req));
}

void SimClient::step(util::TimePoint now) {
  now_ = now;
  while (auto msg = transport_->responses.pop_delivered()) {
    if (auto resp = RpcResponse::decode(msg->bytes)) {
      if (pending_ > 0) --pending_;
      arrived_[resp->request_id] = std::move(*resp);
    }
  }
  while (auto msg = transport_->frames.pop_delivered()) {
    if (auto frame = WorldFrame::decode(msg->bytes)) {
      if (!latest_frame_ || frame->frame_id >= latest_frame_->frame_id) {
        latest_frame_ = std::move(frame);
      }
    }
  }
}

std::optional<RpcResponse> SimClient::take_response(std::uint32_t request_id) {
  const auto it = arrived_.find(request_id);
  if (it == arrived_.end()) return std::nullopt;
  RpcResponse resp = std::move(it->second);
  arrived_.erase(it);
  return resp;
}

std::optional<WorldFrame> SimClient::take_frame() {
  std::optional<WorldFrame> out;
  out.swap(latest_frame_);
  return out;
}

}  // namespace rdsim::sim
