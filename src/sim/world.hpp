// The simulated world: actors on a road network plus the CARLA-style sensor
// suite (collision sensor, lane-invasion sensor) whose events the paper's
// data logging records (§V.F).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/actor.hpp"
#include "sim/frame.hpp"
#include "util/time.hpp"

namespace rdsim::sim {

/// Collision sensor event. One event per contact episode: the sensor
/// re-arms only after the bodies separate, matching CARLA's behaviour of a
/// burst per impact rather than one event per physics tick.
struct CollisionEvent {
  util::TimePoint time{};
  std::uint32_t frame{0};
  ActorId other{kInvalidActor};
  ActorKind other_kind{ActorKind::kVehicle};
  double relative_speed{0.0};  ///< closing speed at impact, m/s
};

/// Lane-invasion sensor event: the ego crossed a lane marking.
struct LaneInvasionEvent {
  util::TimePoint time{};
  std::uint32_t frame{0};
  LaneMarking marking{LaneMarking::kBroken};
  int from_lane{0};
  int to_lane{0};
};

class World {
 public:
  explicit World(RoadNetwork road, VehicleParams default_params = {});

  const RoadNetwork& road() const { return road_; }

  // ----- actor management (CARLA spawn API analogue) -----

  /// Spawn at (s, lane) on the road, heading along the lane.
  ActorId spawn_on_road(ActorKind kind, units::Meters s, int lane,
                        std::optional<VehicleParams> params = {},
                        units::MetersPerSecond initial_speed = {},
                        std::string role = {});
  /// Spawn at an arbitrary offset from the reference line (road users that
  /// are not lane-centred, e.g. cyclists near the edge).
  ActorId spawn_at_offset(ActorKind kind, units::Meters s, double lateral,
                          std::optional<VehicleParams> params = {},
                          units::MetersPerSecond initial_speed = {},
                          std::string role = {});
  void set_controller(ActorId id, std::unique_ptr<ActorController> controller);
  void destroy(ActorId id);

  Actor* find(ActorId id);
  const Actor* find(ActorId id) const;
  std::vector<const Actor*> actors() const;
  std::size_t actor_count() const { return actors_.size(); }

  // ----- ego -----

  void designate_ego(ActorId id);
  ActorId ego_id() const { return ego_; }
  Actor& ego();
  const Actor& ego() const;
  void apply_ego_control(const VehicleControl& control);

  // ----- meta-commands -----

  void set_weather(const WeatherConfig& weather) { weather_ = weather; }
  const WeatherConfig& weather() const { return weather_; }

  // ----- stepping & sensing -----

  /// Advance physics and sensors by one step.
  void step(units::Seconds dt);

  util::TimePoint now() const { return now_; }
  std::uint32_t frame_counter() const { return physics_frame_; }

  /// Semantic camera frame of the current state.
  WorldFrame snapshot() const;

  /// The ego's road projection with heading_error filled in — the pose
  /// information a vehicle-side fallback controller (e.g. the mitigation
  /// MRM's in-lane stop) needs to hold its lane without the operator.
  RoadProjection project_ego() const;

  /// Events recorded since construction (the trace logger drains copies).
  const std::vector<CollisionEvent>& collisions() const { return collisions_; }
  const std::vector<LaneInvasionEvent>& lane_invasions() const { return invasions_; }

  /// True while the ego is in contact with another actor.
  bool ego_in_contact() const { return !contact_set_.empty(); }

 private:
  void sense_collisions();
  void sense_lane_invasion();
  static ActorSnapshot snapshot_actor(const Actor& actor);

  RoadNetwork road_;
  VehicleParams default_params_;
  std::map<ActorId, std::unique_ptr<Actor>> actors_;
  ActorId next_id_{1};
  ActorId ego_{kInvalidActor};
  WeatherConfig weather_{};
  util::TimePoint now_{};
  std::uint32_t physics_frame_{0};

  std::vector<CollisionEvent> collisions_;
  std::vector<LaneInvasionEvent> invasions_;
  std::map<ActorId, bool> contact_set_;  ///< actors currently touching ego
  std::map<ActorId, util::TimePoint> collision_cooldown_;
  int last_ego_lane_{0};
  bool ego_lane_valid_{false};
};

}  // namespace rdsim::sim
