#include "sim/road.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/vec2.hpp"

namespace rdsim::sim {

PathBuilder::PathBuilder(util::Pose start, double sample_step_m)
    : start_{start}, step_{sample_step_m > 0.0 ? sample_step_m : 1.0} {}

PathBuilder& PathBuilder::straight(double length_m) {
  if (length_m > 0.0) segments_.push_back({false, length_m, 0.0, 0.0});
  return *this;
}

PathBuilder& PathBuilder::arc(double radius_m, double angle_rad) {
  if (radius_m > 0.0 && angle_rad != 0.0) {
    segments_.push_back({true, radius_m * std::fabs(angle_rad), radius_m, angle_rad});
  }
  return *this;
}

PathBuilder::Sampled PathBuilder::build() const {
  Sampled out;
  util::Pose pose = start_;
  double s = 0.0;
  out.points.push_back(pose.position);
  out.headings.push_back(pose.heading);
  out.arclength.push_back(0.0);

  for (const Segment& seg : segments_) {
    const int steps = std::max(1, static_cast<int>(std::ceil(seg.length / step_)));
    const double ds = seg.length / steps;
    for (int i = 0; i < steps; ++i) {
      if (seg.is_arc) {
        const double dtheta = (seg.angle > 0 ? 1.0 : -1.0) * ds / seg.radius;
        // Advance along the chord of the small arc step.
        const double mid_heading = pose.heading + dtheta / 2.0;
        pose.position += util::Vec2::from_heading(mid_heading) * ds;
        pose.heading = util::wrap_angle(pose.heading + dtheta);
      } else {
        pose.position += pose.forward() * ds;
      }
      s += ds;
      out.points.push_back(pose.position);
      out.headings.push_back(pose.heading);
      out.arclength.push_back(s);
    }
  }
  return out;
}

RoadNetwork::RoadNetwork(PathBuilder::Sampled reference, int lane_count,
                         double lane_width_m)
    : points_{std::move(reference.points)},
      headings_{std::move(reference.headings)},
      arclength_{std::move(reference.arclength)},
      lane_count_{lane_count},
      lane_width_{lane_width_m} {
  if (points_.size() < 2 || points_.size() != headings_.size() ||
      points_.size() != arclength_.size()) {
    throw std::invalid_argument{"RoadNetwork: malformed reference line"};
  }
  if (lane_count_ < 1 || lane_width_ <= 0.0) {
    throw std::invalid_argument{"RoadNetwork: invalid lane geometry"};
  }
}

namespace {

std::size_t index_for_s(const std::vector<double>& arclength, double s) {
  const auto it = std::lower_bound(arclength.begin(), arclength.end(), s);
  if (it == arclength.begin()) return 0;
  if (it == arclength.end()) return arclength.size() - 1;
  return static_cast<std::size_t>(it - arclength.begin());
}

}  // namespace

util::Pose RoadNetwork::sample(double s, int lane) const {
  return sample_offset(s, lane_center_offset(std::clamp(lane, 0, lane_count_ - 1)));
}

util::Pose RoadNetwork::sample_offset(double s, double lateral) const {
  s = util::clamp(s, 0.0, length());
  const std::size_t hi = index_for_s(arclength_, s);
  const std::size_t lo = hi > 0 ? hi - 1 : 0;
  const double span = arclength_[hi] - arclength_[lo];
  const double t = span > 0.0 ? (s - arclength_[lo]) / span : 0.0;
  const util::Vec2 base = util::lerp(points_[lo], points_[hi], t);
  double h0 = headings_[lo];
  double h1 = headings_[hi];
  // Interpolate headings through the short way around.
  const double dh = util::wrap_angle(h1 - h0);
  const double heading = util::wrap_angle(h0 + dh * t);
  const util::Vec2 left = util::Vec2::from_heading(heading).perp();
  return {base + left * lateral, heading};
}

double RoadNetwork::heading_at(double s) const { return sample_offset(s, 0.0).heading; }

double RoadNetwork::curvature_at(double s) const {
  const double ds = 2.0;
  const double h1 = heading_at(util::clamp(s - ds, 0.0, length()));
  const double h2 = heading_at(util::clamp(s + ds, 0.0, length()));
  return util::wrap_angle(h2 - h1) / (2.0 * ds);
}

std::size_t RoadNetwork::nearest_index(util::Vec2 point,
                                       std::optional<double> hint_s) const {
  if (hint_s) {
    // Local search around the hint: actors move forward a few metres per
    // step, so scanning a +/- 50 m window is both fast and safe.
    const std::size_t centre = index_for_s(arclength_, *hint_s);
    const std::size_t window = 60;
    const std::size_t lo = centre > window ? centre - window : 0;
    const std::size_t hi = std::min(centre + window, points_.size() - 1);
    std::size_t best = lo;
    double best_d = (points_[lo] - point).norm_sq();
    for (std::size_t i = lo + 1; i <= hi; ++i) {
      const double d = (points_[i] - point).norm_sq();
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    // If the best is interior to the window, trust it; otherwise fall back
    // to the global search below (the hint was stale).
    if (best > lo && best < hi) return best;
  }
  std::size_t best = 0;
  double best_d = (points_[0] - point).norm_sq();
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double d = (points_[i] - point).norm_sq();
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

RoadProjection RoadNetwork::project(util::Vec2 point, std::optional<double> hint_s) const {
  const std::size_t i = nearest_index(point, hint_s);
  const util::Vec2 base = points_[i];
  const double heading = headings_[i];
  const util::Vec2 tangent = util::Vec2::from_heading(heading);
  const util::Vec2 d = point - base;

  RoadProjection proj;
  proj.s = arclength_[i] + d.dot(tangent);
  proj.lateral = d.dot(tangent.perp());
  const double lane_f = proj.lateral / lane_width_;
  proj.lane = std::clamp(static_cast<int>(std::lround(lane_f)), 0, lane_count_ - 1);
  proj.lane_offset = proj.lateral - lane_center_offset(proj.lane);
  return proj;
}

RoadNetwork make_town05_route(double scale) {
  // Two same-direction lanes, 3.5 m wide, ~2.6 km: straights for the
  // car-following sections, sweeping curves between them, matching the
  // highway/multi-lane character of CARLA Town 5.
  if (scale <= 0.0) scale = 1.0;
  PathBuilder builder{util::Pose{{0.0, 0.0}, 0.0}, std::min(1.0, scale)};
  builder.straight(500.0 * scale)
      .arc(250.0 * scale, util::deg_to_rad(35.0))
      .straight(450.0 * scale)
      .arc(220.0 * scale, util::deg_to_rad(-40.0))
      .straight(500.0 * scale)
      .arc(300.0 * scale, util::deg_to_rad(25.0))
      .straight(400.0 * scale)
      .arc(200.0 * scale, util::deg_to_rad(-30.0))
      .straight(450.0 * scale);
  return RoadNetwork{builder.build(), /*lane_count=*/2,
                     /*lane_width_m=*/3.5 * scale};
}

}  // namespace rdsim::sim
