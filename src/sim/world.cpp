#include "sim/world.hpp"

#include <stdexcept>

#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace rdsim::sim {

World::World(RoadNetwork road, VehicleParams default_params)
    : road_{std::move(road)}, default_params_{default_params} {}

ActorId World::spawn_on_road(ActorKind kind, units::Meters s, int lane,
                             std::optional<VehicleParams> params,
                             units::MetersPerSecond initial_speed, std::string role) {
  return spawn_at_offset(kind, s, road_.lane_center_offset(lane), params, initial_speed,
                         std::move(role));
}

ActorId World::spawn_at_offset(ActorKind kind, units::Meters s, double lateral,
                               std::optional<VehicleParams> params,
                               units::MetersPerSecond initial_speed, std::string role) {
  const ActorId id = next_id_++;
  VehicleParams p = params.value_or(default_params_);
  if (kind == ActorKind::kCyclist) {
    p.bbox = BoundingBox{0.9, 0.35};
    p.wheelbase = units::Meters{1.1};
    p.max_speed = units::MetersPerSecond{9.0};
  } else if (kind == ActorKind::kWalker) {
    p.bbox = BoundingBox{0.25, 0.25};
    p.max_speed = units::MetersPerSecond{3.0};
  }
  auto actor = std::make_unique<Actor>(id, kind, p);
  actor->set_role(std::move(role));

  const util::Pose pose = road_.sample_offset(s.value(), lateral);
  KinematicState state;
  state.position = pose.position;
  state.heading = pose.heading;
  state.velocity = pose.forward() * initial_speed.value();
  actor->vehicle().set_state(state);
  actor->set_track_position(s);
  actors_.emplace(id, std::move(actor));
  return id;
}

void World::set_controller(ActorId id, std::unique_ptr<ActorController> controller) {
  if (Actor* a = find(id)) a->set_controller(std::move(controller));
}

void World::destroy(ActorId id) {
  actors_.erase(id);
  contact_set_.erase(id);
  if (ego_ == id) ego_ = kInvalidActor;
}

Actor* World::find(ActorId id) {
  const auto it = actors_.find(id);
  return it == actors_.end() ? nullptr : it->second.get();
}

const Actor* World::find(ActorId id) const {
  const auto it = actors_.find(id);
  return it == actors_.end() ? nullptr : it->second.get();
}

std::vector<const Actor*> World::actors() const {
  std::vector<const Actor*> out;
  out.reserve(actors_.size());
  for (const auto& [_, a] : actors_) out.push_back(a.get());
  return out;
}

void World::designate_ego(ActorId id) {
  if (!find(id)) throw std::invalid_argument{"designate_ego: unknown actor"};
  ego_ = id;
  ego_lane_valid_ = false;
}

Actor& World::ego() {
  Actor* a = find(ego_);
  if (!a) throw std::logic_error{"World has no ego actor"};
  return *a;
}

const Actor& World::ego() const {
  const Actor* a = find(ego_);
  if (!a) throw std::logic_error{"World has no ego actor"};
  return *a;
}

void World::apply_ego_control(const VehicleControl& control) {
  ego().vehicle().apply_control(control);
}

void World::step(units::Seconds dt) {
  RDSIM_OBS_TIMER(obs::metric::kSimWorldStep);
  for (auto& [_, actor] : actors_) {
    actor->step(road_, dt);
    // Keep the track-position cache warm for every actor.
    const auto proj =
        road_.project(actor->state().position, actor->track_position().value());
    actor->set_track_position(units::Meters{proj.s});
  }
  now_ += dt.to_duration();
  ++physics_frame_;
  if (ego_ != kInvalidActor) {
    sense_collisions();
    sense_lane_invasion();
  }
}

void World::sense_collisions() {
  const Actor& e = ego();
  for (auto& [id, actor] : actors_) {
    if (id == ego_) continue;
    const bool touching =
        boxes_overlap(e.bbox(), e.pose(), actor->bbox(), actor->pose());
    const bool was_touching = contact_set_.count(id) != 0;
    // Debounce: scraping along an obstacle produces contact chatter; CARLA's
    // sensor reports a burst per impact, so re-arm only after a cooldown.
    const auto cool_it = collision_cooldown_.find(id);
    const bool cooling =
        cool_it != collision_cooldown_.end() &&
        (now_ - cool_it->second) < util::Duration::seconds(5.0);
    if (touching && !was_touching && !cooling) {
      CollisionEvent ev;
      ev.time = now_;
      ev.frame = physics_frame_;
      ev.other = id;
      ev.other_kind = actor->kind();
      ev.relative_speed = (e.state().velocity - actor->state().velocity).norm();
      collisions_.push_back(ev);
      RDSIM_OBS_COUNT(obs::metric::kSimCollision, 1);
      RDSIM_OBS_EVENT(obs::metric::kSimCollision, now_);
      contact_set_[id] = true;
      collision_cooldown_[id] = now_;
      // Crude inelastic response: the ego loses its speed into the obstacle,
      // which keeps it from driving through and ends the manoeuvre, as a
      // real crash would end a test run.
      KinematicState st = e.state();
      st.velocity = {};
      ego().vehicle().set_state(st);
    } else if (touching && !was_touching && cooling) {
      contact_set_[id] = true;  // still in the same scrape episode
    } else if (!touching && was_touching) {
      contact_set_.erase(id);
    }
  }
}

void World::sense_lane_invasion() {
  const auto proj =
      road_.project(ego().state().position, ego().track_position().value());
  if (!ego_lane_valid_) {
    last_ego_lane_ = proj.lane;
    ego_lane_valid_ = true;
    return;
  }
  if (proj.lane != last_ego_lane_) {
    LaneInvasionEvent ev;
    ev.time = now_;
    ev.frame = physics_frame_;
    ev.from_lane = last_ego_lane_;
    ev.to_lane = proj.lane;
    ev.marking = proj.lane > last_ego_lane_ ? road_.marking_left_of(last_ego_lane_)
                                            : road_.marking_right_of(last_ego_lane_);
    invasions_.push_back(ev);
    last_ego_lane_ = proj.lane;
  }
}

ActorSnapshot World::snapshot_actor(const Actor& actor) {
  ActorSnapshot s;
  s.id = actor.id();
  s.kind = actor.kind();
  s.state = actor.state();
  s.bbox = actor.bbox();
  s.control = actor.vehicle().control();
  return s;
}

WorldFrame World::snapshot() const {
  WorldFrame f;
  f.frame_id = physics_frame_;
  f.sim_time_us = now_.count_micros();
  f.weather = weather_;
  if (const Actor* e = find(ego_)) f.ego = snapshot_actor(*e);
  for (const auto& [id, actor] : actors_) {
    if (id == ego_) continue;
    f.others.push_back(snapshot_actor(*actor));
  }
  return f;
}

RoadProjection World::project_ego() const {
  const Actor& e = ego();
  RoadProjection proj =
      road_.project(e.state().position, e.track_position().value());
  proj.heading_error = util::wrap_angle(e.state().heading - road_.heading_at(proj.s));
  return proj;
}

}  // namespace rdsim::sim
