// Vehicle dynamics: kinematic bicycle with a simple powertrain/brake model.
//
// The paper uses CARLA's default vehicle physics. For the causal chain under
// study (network disturbance -> stale perception -> degraded control) what
// matters is that the plant has realistic time constants: bounded engine
// force, stronger brakes, drag, steering-angle and steering-rate limits. The
// kinematic bicycle with first-order actuator lags captures that at urban
// speeds and keeps the model analytically checkable in tests.
#pragma once

#include "sim/types.hpp"
#include "util/units.hpp"

namespace rdsim::sim {

struct VehicleParams {
  units::Meters wheelbase{2.7};
  double max_steer_deg{40.0};       ///< road-wheel angle at |steer| = 1
  double max_steer_rate_deg{220.0}; ///< road-wheel slew limit, deg/s
  units::MetersPerSecond2 max_engine_accel{3.0};  ///< full throttle, low speed
  units::MetersPerSecond2 max_brake_decel{8.0};   ///< full brake
  double drag_coeff{0.0008};        ///< quadratic drag, 1/m (a = -c v^2)
  units::MetersPerSecond2 rolling_resist{0.08};   ///< constant when moving
  units::MetersPerSecond max_speed{38.0};         ///< power-limited top speed
  units::Seconds throttle_tau{0.25};              ///< powertrain response lag
  units::Seconds brake_tau{0.10};                 ///< hydraulic response lag
  BoundingBox bbox{};

  /// Faster, twitchier plant approximating the scaled-down model vehicle
  /// used for the paper's §VIII validity comparison.
  static VehicleParams scaled_model_vehicle();
};

/// Integrates one vehicle. Forward Euler at the simulator step (20 ms) is
/// adequate: eigenfrequencies of the model are far below the Nyquist rate.
class Vehicle {
 public:
  Vehicle() = default;
  explicit Vehicle(VehicleParams params) : params_{params} {}

  /// Overwrite the kinematic state; forward speed is re-derived from the
  /// velocity so controllers and dynamics stay consistent.
  void set_state(const KinematicState& state) {
    state_ = state;
    forward_speed_ = state.velocity.dot(util::Vec2::from_heading(state.heading));
  }
  const KinematicState& state() const { return state_; }
  const VehicleParams& params() const { return params_; }
  const VehicleControl& control() const { return control_; }

  /// Latch the control that will act during subsequent steps (the vehicle
  /// subsystem applies the most recent command received from the station).
  void apply_control(const VehicleControl& control) { control_ = control.clamped(); }

  /// Advance dynamics by one integration step.
  void step(units::Seconds dt);

  /// Longitudinal speed (signed: negative in reverse), m/s.
  double forward_speed() const { return forward_speed_; }
  /// Current road-wheel steering angle, radians.
  double steer_angle() const { return steer_angle_; }

 private:
  VehicleParams params_{};
  KinematicState state_{};
  VehicleControl control_{};
  double forward_speed_{0.0};
  double steer_angle_{0.0};
  double engine_accel_{0.0};  ///< lagged actuator states
  double brake_decel_{0.0};
};

}  // namespace rdsim::sim
