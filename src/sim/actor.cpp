#include "sim/actor.hpp"

#include <algorithm>
#include <cmath>

#include "util/vec2.hpp"

namespace rdsim::sim {

namespace {

/// Pure-pursuit steering towards a point ahead on the target line.
double pursuit_steer(const Actor& actor, const RoadNetwork& road, double target_lateral,
                     units::Meters lookahead) {
  const units::Meters s = actor.track_position();
  const util::Pose target = road.sample_offset((s + lookahead).value(), target_lateral);
  const util::Vec2 local = actor.pose().to_local(target.position);
  const double d2 = std::max(local.norm_sq(), 1.0);
  const double curvature = 2.0 * local.y / d2;
  const double wheel_angle =
      std::atan(curvature * actor.vehicle().params().wheelbase.value());
  const double max_angle = util::deg_to_rad(actor.vehicle().params().max_steer_deg);
  return util::clamp(wheel_angle / max_angle, -1.0, 1.0);
}

/// Longitudinal P control producing throttle/brake.
void speed_control(VehicleControl& control, double current, double target) {
  const double err = target - current;
  if (err >= 0.0) {
    control.throttle = util::clamp(0.5 * err, 0.0, 1.0);
    control.brake = 0.0;
  } else {
    control.throttle = 0.0;
    control.brake = util::clamp(-0.4 * err, 0.0, 1.0);
  }
}

}  // namespace

LaneFollowController::LaneFollowController(int lane, units::MetersPerSecond cruise_speed)
    : lane_{lane}, cruise_speed_{cruise_speed} {}

void LaneFollowController::set_speed_profile(std::vector<SpeedPoint> profile) {
  profile_ = std::move(profile);
  std::sort(profile_.begin(), profile_.end(),
            [](const SpeedPoint& a, const SpeedPoint& b) { return a.s < b.s; });
}

units::MetersPerSecond LaneFollowController::target_speed_at(units::Meters s) const {
  if (profile_.empty()) return cruise_speed_;
  units::MetersPerSecond speed = profile_.front().speed;
  for (const SpeedPoint& p : profile_) {
    if (s >= p.s) {
      speed = p.speed;
    } else {
      break;
    }
  }
  return speed;
}

void LaneFollowController::update(Actor& actor, const RoadNetwork& road,
                                  units::Seconds dt) {
  (void)dt;
  const auto proj = road.project(actor.state().position, actor.track_position().value());
  actor.set_track_position(units::Meters{proj.s});

  VehicleControl control;
  const double speed = actor.vehicle().forward_speed();
  const units::Meters lookahead{std::max(6.0, 1.2 * speed)};
  control.steer =
      pursuit_steer(actor, road, road.lane_center_offset(lane_), lookahead);
  speed_control(control, speed, target_speed_at(units::Meters{proj.s}).value());
  actor.vehicle().apply_control(control);
}

WalkerController::WalkerController(units::MetersPerSecond walk_speed,
                                   units::Meters target_lateral)
    : walk_speed_{walk_speed}, target_lateral_{target_lateral} {}

void WalkerController::update(Actor& actor, const RoadNetwork& road, units::Seconds dt) {
  if (!crossing_ || done_ || dt.value() <= 0.0) return;
  const auto proj = road.project(actor.state().position, actor.track_position().value());
  actor.set_track_position(units::Meters{proj.s});
  const double remaining = target_lateral_.value() - proj.lateral;
  const double dir = remaining >= 0.0 ? 1.0 : -1.0;
  const double step =
      std::min((walk_speed_ * dt).value(), std::fabs(remaining));
  const util::Vec2 left = util::Vec2::from_heading(road.heading_at(proj.s)).perp();

  KinematicState st = actor.state();
  st.position += left * (dir * step);
  st.velocity = left * (dir * walk_speed_.value());
  st.heading = (left * dir).heading();
  if (std::fabs(remaining) <= step + 1e-9) {
    done_ = true;
    st.velocity = {};
  }
  actor.vehicle().set_state(st);
}

CyclistController::CyclistController(units::MetersPerSecond speed,
                                     units::Meters edge_offset, double wobble_amp,
                                     units::Seconds wobble_period)
    : speed_{speed},
      edge_offset_{edge_offset},
      wobble_amp_{wobble_amp},
      wobble_period_{wobble_period} {}

void CyclistController::update(Actor& actor, const RoadNetwork& road, units::Seconds dt) {
  phase_ += dt;
  const auto proj = road.project(actor.state().position, actor.track_position().value());
  actor.set_track_position(units::Meters{proj.s});

  const double wobble = wobble_amp_ * std::sin(2.0 * std::numbers::pi *
                                               phase_.value() / wobble_period_.value());
  VehicleControl control;
  const double speed = actor.vehicle().forward_speed();
  control.steer = pursuit_steer(actor, road, edge_offset_.value() + wobble,
                                units::Meters{4.0});
  speed_control(control, speed, speed_.value());
  actor.vehicle().apply_control(control);
}

}  // namespace rdsim::sim
