#include "sim/actor.hpp"

#include <algorithm>
#include <cmath>

namespace rdsim::sim {

namespace {

/// Pure-pursuit steering towards a point ahead on the target line.
double pursuit_steer(const Actor& actor, const RoadNetwork& road, double target_lateral,
                     double lookahead_m) {
  const double s = actor.track_s();
  const util::Pose target = road.sample_offset(s + lookahead_m, target_lateral);
  const util::Vec2 local = actor.pose().to_local(target.position);
  const double d2 = std::max(local.norm_sq(), 1.0);
  const double curvature = 2.0 * local.y / d2;
  const double wheel_angle =
      std::atan(curvature * actor.vehicle().params().wheelbase);
  const double max_angle = util::deg_to_rad(actor.vehicle().params().max_steer_deg);
  return util::clamp(wheel_angle / max_angle, -1.0, 1.0);
}

/// Longitudinal P control producing throttle/brake.
void speed_control(VehicleControl& control, double current, double target) {
  const double err = target - current;
  if (err >= 0.0) {
    control.throttle = util::clamp(0.5 * err, 0.0, 1.0);
    control.brake = 0.0;
  } else {
    control.throttle = 0.0;
    control.brake = util::clamp(-0.4 * err, 0.0, 1.0);
  }
}

}  // namespace

LaneFollowController::LaneFollowController(int lane, double cruise_speed)
    : lane_{lane}, cruise_speed_{cruise_speed} {}

void LaneFollowController::set_speed_profile(std::vector<SpeedPoint> profile) {
  profile_ = std::move(profile);
  std::sort(profile_.begin(), profile_.end(),
            [](const SpeedPoint& a, const SpeedPoint& b) { return a.s < b.s; });
}

double LaneFollowController::target_speed_at(double s) const {
  if (profile_.empty()) return cruise_speed_;
  double speed = profile_.front().speed;
  for (const SpeedPoint& p : profile_) {
    if (s >= p.s) {
      speed = p.speed;
    } else {
      break;
    }
  }
  return speed;
}

void LaneFollowController::update(Actor& actor, const RoadNetwork& road, double dt) {
  (void)dt;
  const auto proj = road.project(actor.state().position, actor.track_s());
  actor.set_track_s(proj.s);

  VehicleControl control;
  const double speed = actor.vehicle().forward_speed();
  const double lookahead = std::max(6.0, 1.2 * speed);
  control.steer =
      pursuit_steer(actor, road, road.lane_center_offset(lane_), lookahead);
  speed_control(control, speed, target_speed_at(proj.s));
  actor.vehicle().apply_control(control);
}

WalkerController::WalkerController(double walk_speed, double target_lateral)
    : walk_speed_{walk_speed}, target_lateral_{target_lateral} {}

void WalkerController::update(Actor& actor, const RoadNetwork& road, double dt) {
  if (!crossing_ || done_ || dt <= 0.0) return;
  const auto proj = road.project(actor.state().position, actor.track_s());
  actor.set_track_s(proj.s);
  const double remaining = target_lateral_ - proj.lateral;
  const double dir = remaining >= 0.0 ? 1.0 : -1.0;
  const double step = std::min(walk_speed_ * dt, std::fabs(remaining));
  const util::Vec2 left = util::Vec2::from_heading(road.heading_at(proj.s)).perp();

  KinematicState st = actor.state();
  st.position += left * (dir * step);
  st.velocity = left * (dir * walk_speed_);
  st.heading = (left * dir).heading();
  if (std::fabs(remaining) <= step + 1e-9) {
    done_ = true;
    st.velocity = {};
  }
  actor.vehicle().set_state(st);
}

CyclistController::CyclistController(double speed, double edge_offset, double wobble_amp,
                                     double wobble_period_s)
    : speed_{speed},
      edge_offset_{edge_offset},
      wobble_amp_{wobble_amp},
      wobble_period_{wobble_period_s} {}

void CyclistController::update(Actor& actor, const RoadNetwork& road, double dt) {
  phase_ += dt;
  const auto proj = road.project(actor.state().position, actor.track_s());
  actor.set_track_s(proj.s);

  const double wobble =
      wobble_amp_ * std::sin(2.0 * std::numbers::pi * phase_ / wobble_period_);
  VehicleControl control;
  const double speed = actor.vehicle().forward_speed();
  control.steer = pursuit_steer(actor, road, edge_offset_ + wobble, 4.0);
  speed_control(control, speed, speed_);
  actor.vehicle().apply_control(control);
}

}  // namespace rdsim::sim
