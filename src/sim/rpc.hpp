// CARLA-style RPC layer: the simulator as a server, the remote station as a
// client, talking over the same reliable transport the video uses.
//
// The paper's §II.B describes CARLA's engine as "a server-client
// architecture with communication over TCP" where the client controls the
// actors by sending commands (steer, reverse, brake, accelerate) and
// meta-commands that affect the server's behaviour such as weather, sensor
// properties and road users. This module reproduces that programmable
// surface: a SimServer owns the World and executes requests; a SimClient
// offers a typed API and matches responses to requests. Both ends are
// driven by the shared virtual clock, and because the RPC stream crosses the
// same emulated device as everything else, *meta-commands are disturbed by
// injected faults too* — spawning an actor under 200 ms delay takes visibly
// longer, exactly like the real rig.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "net/reliable_stream.hpp"
#include "sim/world.hpp"
#include "util/time.hpp"

namespace rdsim::sim {

/// Stream ids used by the RPC layer (video/commands use 1 and 2).
inline constexpr std::uint16_t kRpcRequestStreamId = 3;   ///< client -> server
inline constexpr std::uint16_t kRpcResponseStreamId = 4;  ///< server -> client
inline constexpr std::uint16_t kRpcFrameStreamId = 5;     ///< streamed frames

enum class RpcOpcode : std::uint8_t {
  kHello = 0,
  kSpawnVehicle = 1,
  kDestroyActor = 2,
  kSetWeather = 3,
  kApplyControl = 4,
  kGetSnapshot = 5,
  kSubscribeFrames = 6,
};

/// A client request. Fields are a union-of-needs across opcodes; encode()
/// serializes only what the opcode uses.
struct RpcRequest {
  std::uint32_t request_id{0};
  RpcOpcode opcode{RpcOpcode::kHello};

  // kSpawnVehicle
  ActorKind kind{ActorKind::kVehicle};
  double spawn_s{0.0};
  double spawn_lateral{0.0};
  double initial_speed{0.0};
  std::string role{};

  // kDestroyActor / kApplyControl
  ActorId actor{kInvalidActor};
  VehicleControl control{};

  // kSetWeather
  WeatherConfig weather{};

  // kSubscribeFrames
  double fps{0.0};

  net::Payload encode() const;
  static std::optional<RpcRequest> decode(const net::Payload& bytes);
};

struct RpcResponse {
  std::uint32_t request_id{0};
  bool ok{false};
  std::string error{};
  ActorId actor{kInvalidActor};            ///< spawn result
  std::optional<WorldFrame> snapshot{};    ///< kGetSnapshot result

  net::Payload encode() const;
  static std::optional<RpcResponse> decode(const net::Payload& bytes);
};

/// The three reliable streams the RPC layer runs on. One instance is shared
/// by the server and the client: each ReliableStream object serves both of
/// its endpoints (its sender half lives at one end of the channel, its
/// receiver half at the other), mirroring how the teleop loop shares the
/// video/command streams.
struct RpcTransport {
  RpcTransport(net::PacketRouter& router, net::Channel& channel,
               net::StreamConfig config = {})
      : requests{router, channel, kRpcRequestStreamId, net::LinkDirection::kUplink,
                 config},
        responses{router, channel, kRpcResponseStreamId, net::LinkDirection::kDownlink,
                  config},
        frames{router, channel, kRpcFrameStreamId, net::LinkDirection::kDownlink,
               config} {}

  void step(util::TimePoint now) {
    requests.step(now);
    responses.step(now);
    frames.step(now);
  }

  net::ReliableStream requests;
  net::ReliableStream responses;
  net::ReliableStream frames;
};

/// Server half: executes decoded requests against a World.
class SimServer {
 public:
  /// `world` and `transport` are borrowed and must outlive the server.
  SimServer(World& world, RpcTransport& transport);

  /// Process incoming requests and send any due subscribed frames. The
  /// router's poll() must run each tick before this.
  void step(util::TimePoint now);

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t frames_streamed() const { return frames_streamed_; }
  bool has_subscriber() const { return frame_interval_.has_value(); }

  /// Wire size used for streamed frames (same raw-video model as teleop).
  void set_frame_wire_bytes(std::uint32_t bytes) { frame_wire_bytes_ = bytes; }

 private:
  RpcResponse execute(const RpcRequest& request);

  World* world_;
  RpcTransport* transport_;
  std::optional<util::Duration> frame_interval_;
  util::TimePoint next_frame_{};
  std::uint32_t frame_wire_bytes_{6000000};
  std::uint64_t requests_served_{0};
  std::uint64_t frames_streamed_{0};
};

/// Client half: typed, asynchronous request API (the virtual clock makes
/// blocking awkward; tests step the loop and poll).
class SimClient {
 public:
  /// `transport` is borrowed and must outlive the client.
  explicit SimClient(RpcTransport& transport);

  // ----- request issue (returns the request id) -----
  std::uint32_t hello();
  std::uint32_t spawn_vehicle(ActorKind kind, double s, double lateral,
                              double initial_speed = 0.0, std::string role = {});
  std::uint32_t destroy_actor(ActorId id);
  std::uint32_t set_weather(const WeatherConfig& weather);
  std::uint32_t apply_control(ActorId actor, const VehicleControl& control);
  std::uint32_t get_snapshot();
  std::uint32_t subscribe_frames(double fps);

  /// Drive timers and collect responses/frames. Call once per tick after the
  /// router's poll().
  void step(util::TimePoint now);

  /// Response for `request_id` if it has arrived (consumed on read).
  std::optional<RpcResponse> take_response(std::uint32_t request_id);
  /// Newest streamed frame, if any arrived since the last call.
  std::optional<WorldFrame> take_frame();

  std::size_t pending_requests() const { return pending_; }

 private:
  std::uint32_t send(RpcRequest request);

  RpcTransport* transport_;
  util::TimePoint now_{};
  std::uint32_t next_request_{1};
  std::size_t pending_{0};
  std::map<std::uint32_t, RpcResponse> arrived_;
  std::optional<WorldFrame> latest_frame_;
};

}  // namespace rdsim::sim
