#include "sim/frame.hpp"

#include "net/packet.hpp"
#include "net/serialization.hpp"

namespace rdsim::sim {

namespace {

void encode_actor(net::ByteWriter& w, const ActorSnapshot& a) {
  w.u32(a.id);
  w.u8(static_cast<std::uint8_t>(a.kind));
  w.f64(a.state.position.x);
  w.f64(a.state.position.y);
  w.f64(a.state.z);
  w.f64(a.state.heading);
  w.f64(a.state.velocity.x);
  w.f64(a.state.velocity.y);
  w.f64(a.state.accel.x);
  w.f64(a.state.accel.y);
  w.f64(a.bbox.half_length);
  w.f64(a.bbox.half_width);
  w.f64(a.control.throttle);
  w.f64(a.control.steer);
  w.f64(a.control.brake);
  w.u8(a.control.reverse ? 1 : 0);
}

ActorSnapshot decode_actor(net::ByteReader& r) {
  ActorSnapshot a;
  a.id = r.u32();
  a.kind = static_cast<ActorKind>(r.u8());
  a.state.position.x = r.f64();
  a.state.position.y = r.f64();
  a.state.z = r.f64();
  a.state.heading = r.f64();
  a.state.velocity.x = r.f64();
  a.state.velocity.y = r.f64();
  a.state.accel.x = r.f64();
  a.state.accel.y = r.f64();
  a.bbox.half_length = r.f64();
  a.bbox.half_width = r.f64();
  a.control.throttle = r.f64();
  a.control.steer = r.f64();
  a.control.brake = r.f64();
  a.control.reverse = r.u8() != 0;
  return a;
}

}  // namespace

net::Payload WorldFrame::encode() const {
  net::ByteWriter w;
  w.u32(frame_id);
  w.i64(sim_time_us);
  w.u8(weather.night ? 1 : 0);
  w.f64(weather.fog_density);
  encode_actor(w, ego);
  w.u32(static_cast<std::uint32_t>(others.size()));
  for (const auto& a : others) encode_actor(w, a);
  return w.take();
}

std::optional<WorldFrame> WorldFrame::decode(const net::Payload& bytes) {
  net::ByteReader r{bytes};
  WorldFrame f;
  f.frame_id = r.u32();
  f.sim_time_us = r.i64();
  f.weather.night = r.u8() != 0;
  f.weather.fog_density = r.f64();
  f.ego = decode_actor(r);
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > 10000) return std::nullopt;
  f.others.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) f.others.push_back(decode_actor(r));
  if (!r.ok()) return std::nullopt;
  return f;
}

}  // namespace rdsim::sim
