// Runtime contract layer: RDSIM_REQUIRE / RDSIM_ENSURE / RDSIM_INVARIANT.
//
// The simulator's safety conclusions (TTC, SRR, collision counts) are only as
// trustworthy as its numerics, so the hot boundaries — qdisc scheduling,
// vehicle integration, metric inputs, stream sequencing — carry executable
// contracts. A failed contract is dispatched through a process-wide policy:
//
//   kCount  – bump a per-site atomic counter and continue (release default;
//             the check itself is a branch on an already-computed value)
//   kLog    – count + one line to stderr per failure (debug default)
//   kThrow  – count + throw check::ContractViolation (tests)
//   kAbort  – count + print + std::abort (hard CI runs)
//
// Every failing site self-registers in the global Registry on first failure,
// so post-run code can enumerate exactly which contracts fired and how often
// without paying any bookkeeping on the non-failing path.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rdsim::check {

enum class Policy : std::uint8_t { kCount, kLog, kThrow, kAbort };

/// Policy selected at compile time when nobody calls set_policy():
/// silent counting in release builds, logging in debug builds.
constexpr Policy default_policy() {
#ifdef NDEBUG
  return Policy::kCount;
#else
  return Policy::kLog;
#endif
}

/// Thrown under Policy::kThrow.
class ContractViolation : public std::runtime_error {
 public:
  explicit ContractViolation(const std::string& what) : std::runtime_error{what} {}
};

/// Snapshot of one failing contract site.
struct ViolationRecord {
  const char* kind;        ///< "REQUIRE" | "ENSURE" | "INVARIANT"
  const char* expression;  ///< stringified condition
  const char* file;
  int line;
  const char* message;
  std::uint64_t count;  ///< failures observed at this site
};

/// One static instance per macro expansion point. Constructed lazily (magic
/// static) on the site's first failure; lives for the rest of the process.
class Site {
 public:
  Site(const char* kind, const char* expression, const char* file, int line,
       const char* message);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Record one failure and dispatch the active policy.
  void fail();

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset() { count_.store(0, std::memory_order_relaxed); }
  ViolationRecord record() const;

 private:
  std::string format() const;

  const char* kind_;
  const char* expression_;
  const char* file_;
  int line_;
  const char* message_;
  std::atomic<std::uint64_t> count_{0};
};

/// Process-wide registry of contract sites that have failed at least once.
class Registry {
 public:
  static Registry& instance();

  Policy policy() const { return policy_.load(std::memory_order_relaxed); }
  void set_policy(Policy p) { policy_.store(p, std::memory_order_relaxed); }

  /// Total failures across all registered sites.
  std::uint64_t total_violations() const RDSIM_EXCLUDES(mutex_);

  /// Records for every site that has ever failed (count may be zero again
  /// after reset_counts()).
  std::vector<ViolationRecord> snapshot() const RDSIM_EXCLUDES(mutex_);

  /// Zero all per-site counters. Sites stay registered.
  void reset_counts() RDSIM_EXCLUDES(mutex_);

  // Called by Site's constructor; not for user code.
  void register_site(Site* site) RDSIM_EXCLUDES(mutex_);

 private:
  Registry() = default;

  mutable util::Mutex mutex_;
  std::vector<Site*> sites_ RDSIM_GUARDED_BY(mutex_);
  std::atomic<Policy> policy_{default_policy()};
};

}  // namespace rdsim::check

// The condition is always evaluated (contracts guard release-mode runs too);
// it must therefore be cheap. The Site is constructed only on first failure,
// so the passing path costs one predictable branch.
#define RDSIM_CHECK_IMPL(KIND, condition, msg)                                        \
  do {                                                                                \
    if (!(condition)) [[unlikely]] {                                                  \
      static ::rdsim::check::Site rdsim_check_site{KIND, #condition, __FILE__,        \
                                                   __LINE__, msg};                    \
      rdsim_check_site.fail();                                                        \
    }                                                                                 \
  } while (false)

/// Precondition on a function's inputs.
#define RDSIM_REQUIRE(condition, msg) RDSIM_CHECK_IMPL("REQUIRE", condition, msg)
/// Postcondition on a function's results.
#define RDSIM_ENSURE(condition, msg) RDSIM_CHECK_IMPL("ENSURE", condition, msg)
/// Invariant that must hold at a program point.
#define RDSIM_INVARIANT(condition, msg) RDSIM_CHECK_IMPL("INVARIANT", condition, msg)
