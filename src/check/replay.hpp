// Replay-divergence detection.
//
// Determinism is the testbed's core promise: two runs with the same seed
// must produce bit-identical trajectories, or every downstream safety metric
// is noise. A ReplayRecorder captures a per-tick fingerprint — one hash of
// the world frame, one of the network-link state — and diff_replays() finds
// the *first* tick where two recordings disagree, turning "the campaigns
// differ somewhere" into "tick 1742, frame state diverged".
//
// This header is dependency-free; hashes of concrete simulator types live in
// check/frame_hash.hpp so low-level libraries can link the contract layer
// without pulling in sim/net.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/hash.hpp"

namespace rdsim::check {

/// Fingerprint of one simulation tick.
struct TickHash {
  std::uint64_t tick{0};        ///< physics frame counter
  std::uint64_t frame_hash{0};  ///< world snapshot fingerprint
  std::uint64_t net_hash{0};    ///< qdisc/channel state fingerprint

  friend bool operator==(const TickHash&, const TickHash&) = default;
};

/// Accumulates the per-tick hash chain of one run.
class ReplayRecorder {
 public:
  void record_tick(std::uint64_t tick, std::uint64_t frame_hash, std::uint64_t net_hash);

  const std::vector<TickHash>& chain() const { return chain_; }
  std::size_t size() const { return chain_.size(); }
  void clear();

  /// Order-sensitive digest of the whole chain; equal digests <=> equal chains.
  std::uint64_t chain_digest() const { return running_.digest(); }

 private:
  std::vector<TickHash> chain_;
  Fnv1a running_;
};

/// Where and how two recordings first disagree.
struct DivergenceReport {
  bool diverged{false};
  bool length_mismatch{false};  ///< one run recorded more ticks, common prefix equal
  std::size_t first_divergent_index{0};
  std::uint64_t first_divergent_tick{0};
  bool frame_differs{false};
  bool net_differs{false};

  std::string summary() const;
};

/// Compare two recordings; pinpoints the first divergent tick.
DivergenceReport diff_replays(const ReplayRecorder& a, const ReplayRecorder& b);

}  // namespace rdsim::check
