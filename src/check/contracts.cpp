#include "check/contracts.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/thread_annotations.hpp"

namespace rdsim::check {

Site::Site(const char* kind, const char* expression, const char* file, int line,
           const char* message)
    : kind_{kind}, expression_{expression}, file_{file}, line_{line}, message_{message} {
  Registry::instance().register_site(this);
}

std::string Site::format() const {
  std::ostringstream os;
  os << kind_ << " failed: " << expression_ << " (" << message_ << ") at " << file_
     << ':' << line_;
  return os.str();
}

void Site::fail() {
  count_.fetch_add(1, std::memory_order_relaxed);
  switch (Registry::instance().policy()) {
    case Policy::kCount:
      break;
    case Policy::kLog:
      std::fprintf(stderr, "[rdsim::check] %s\n", format().c_str());
      break;
    case Policy::kThrow:
      throw ContractViolation{format()};
    case Policy::kAbort:
      std::fprintf(stderr, "[rdsim::check] %s\n", format().c_str());
      std::abort();
  }
}

ViolationRecord Site::record() const {
  return ViolationRecord{kind_, expression_, file_, line_, message_, count()};
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::register_site(Site* site) {
  const util::MutexLock lock{mutex_};
  sites_.push_back(site);
}

std::uint64_t Registry::total_violations() const {
  const util::MutexLock lock{mutex_};
  std::uint64_t total = 0;
  for (const Site* site : sites_) total += site->count();
  return total;
}

std::vector<ViolationRecord> Registry::snapshot() const {
  const util::MutexLock lock{mutex_};
  std::vector<ViolationRecord> records;
  records.reserve(sites_.size());
  for (const Site* site : sites_) records.push_back(site->record());
  return records;
}

void Registry::reset_counts() {
  const util::MutexLock lock{mutex_};
  for (Site* site : sites_) site->reset();
}

}  // namespace rdsim::check
