#include "check/frame_hash.hpp"

#include "check/hash.hpp"
#include "net/channel.hpp"
#include "net/packet.hpp"
#include "net/qdisc.hpp"
#include "sim/frame.hpp"
#include "sim/types.hpp"

namespace rdsim::check {

namespace {

void hash_state(Fnv1a& h, const sim::KinematicState& state) {
  h.f64(state.position.x);
  h.f64(state.position.y);
  h.f64(state.z);
  h.f64(state.heading);
  h.f64(state.velocity.x);
  h.f64(state.velocity.y);
  h.f64(state.accel.x);
  h.f64(state.accel.y);
}

void hash_control(Fnv1a& h, const sim::VehicleControl& control) {
  h.f64(control.throttle);
  h.f64(control.steer);
  h.f64(control.brake);
  h.boolean(control.reverse);
  h.boolean(control.hand_brake);
}

void hash_actor(Fnv1a& h, const sim::ActorSnapshot& actor) {
  h.u32(actor.id);
  h.u8(static_cast<std::uint8_t>(actor.kind));
  hash_state(h, actor.state);
  h.f64(actor.bbox.half_length);
  h.f64(actor.bbox.half_width);
  hash_control(h, actor.control);
}

}  // namespace

std::uint64_t hash_frame(const sim::WorldFrame& frame) {
  Fnv1a h;
  h.u32(frame.frame_id);
  h.i64(frame.sim_time_us);
  hash_actor(h, frame.ego);
  h.u64(frame.others.size());
  for (const sim::ActorSnapshot& actor : frame.others) hash_actor(h, actor);
  h.boolean(frame.weather.night);
  h.f64(frame.weather.fog_density);
  return h.digest();
}

std::uint64_t hash_qdisc(const net::Qdisc& qdisc) {
  Fnv1a h;
  const net::QdiscStats& s = qdisc.stats();
  h.u64(s.enqueued);
  h.u64(s.dequeued);
  h.u64(s.dropped_overlimit);
  h.u64(s.dropped_loss);
  h.u64(s.duplicated);
  h.u64(s.corrupted);
  h.u64(s.reordered);
  h.u64(s.bytes_sent);
  h.u64(qdisc.backlog());
  if (const auto next = qdisc.next_event_at()) h.i64(next->count_micros());
  return h.digest();
}

std::uint64_t hash_channel(const net::Channel& channel) {
  Fnv1a h;
  for (const net::LinkDirection dir :
       {net::LinkDirection::kDownlink, net::LinkDirection::kUplink}) {
    const net::DirectionStats& s = channel.stats(dir);
    h.u64(s.packets_sent);
    h.u64(s.packets_delivered);
    h.u64(s.bytes_sent);
    h.i64(s.total_latency.count_micros());
    h.u64(channel.inbox_size(dir));
  }
  h.u64(channel.in_flight());
  return h.digest();
}

}  // namespace rdsim::check
