// Deterministic 64-bit streaming hash (FNV-1a) for replay fingerprints.
//
// Doubles are hashed by bit pattern (std::bit_cast), so two runs hash equal
// iff their states are bit-identical — which is exactly the reproducibility
// contract the virtual clock and PCG32 RNG are supposed to give us.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rdsim::check {

class Fnv1a {
 public:
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
  }

  void u8(std::uint8_t v) { update(&v, sizeof v); }
  void u32(std::uint32_t v) { update(&v, sizeof v); }
  void u64(std::uint64_t v) { update(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    update(s.data(), s.size());
  }

  std::uint64_t digest() const { return state_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t state_{kOffsetBasis};
};

}  // namespace rdsim::check
