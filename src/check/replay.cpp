#include "check/replay.hpp"

#include <algorithm>
#include <sstream>

#include "check/contracts.hpp"

namespace rdsim::check {

void ReplayRecorder::record_tick(std::uint64_t tick, std::uint64_t frame_hash,
                                 std::uint64_t net_hash) {
  RDSIM_REQUIRE(chain_.empty() || tick >= chain_.back().tick,
                "replay ticks must be recorded in non-decreasing order");
  chain_.push_back(TickHash{tick, frame_hash, net_hash});
  running_.u64(tick);
  running_.u64(frame_hash);
  running_.u64(net_hash);
}

void ReplayRecorder::clear() {
  chain_.clear();
  running_ = Fnv1a{};
}

std::string DivergenceReport::summary() const {
  if (!diverged) return "replays identical";
  std::ostringstream os;
  if (length_mismatch) {
    os << "replays agree on the common prefix but differ in length from index "
       << first_divergent_index;
    return os.str();
  }
  os << "first divergence at tick " << first_divergent_tick << " (index "
     << first_divergent_index << "):";
  if (frame_differs) os << " frame state differs";
  if (net_differs) os << (frame_differs ? "," : "") << " network state differs";
  return os.str();
}

DivergenceReport diff_replays(const ReplayRecorder& a, const ReplayRecorder& b) {
  DivergenceReport report;
  const auto& ca = a.chain();
  const auto& cb = b.chain();
  const std::size_t common = std::min(ca.size(), cb.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (ca[i] == cb[i]) continue;
    report.diverged = true;
    report.first_divergent_index = i;
    report.first_divergent_tick = ca[i].tick;
    report.frame_differs =
        ca[i].frame_hash != cb[i].frame_hash || ca[i].tick != cb[i].tick;
    report.net_differs = ca[i].net_hash != cb[i].net_hash;
    return report;
  }
  if (ca.size() != cb.size()) {
    report.diverged = true;
    report.length_mismatch = true;
    report.first_divergent_index = common;
    report.first_divergent_tick =
        common < ca.size() ? ca[common].tick : cb[common].tick;
  }
  return report;
}

}  // namespace rdsim::check
