// Fingerprints of concrete simulator state, for the replay detector.
//
// Lives apart from check/replay.hpp so the dependency arrow stays one-way:
// sim/net link the contract layer, and only this translation unit (linked by
// the session layer) knows how to hash their types.
#pragma once

#include <cstdint>

#include "net/channel.hpp"
#include "net/qdisc.hpp"
#include "sim/frame.hpp"

namespace rdsim::check {

/// Bit-exact fingerprint of one world snapshot (ego + all other actors +
/// weather + timestamps).
std::uint64_t hash_frame(const sim::WorldFrame& frame);

/// Fingerprint of a qdisc's externally visible state (counters + backlog +
/// next release time).
std::uint64_t hash_qdisc(const net::Qdisc& qdisc);

/// Fingerprint of a channel's delivery state (per-direction stats, inbox
/// depths, packets in flight).
std::uint64_t hash_channel(const net::Channel& channel);

}  // namespace rdsim::check
