#include "net/datagram.hpp"

#include <algorithm>

#include "net/serialization.hpp"
#include "util/time.hpp"

namespace rdsim::net {

DatagramSocket::DatagramSocket(PacketRouter& router, Channel& channel,
                               std::uint16_t stream_id, LinkDirection send_direction)
    : channel_{&channel}, stream_id_{stream_id}, send_dir_{send_direction} {
  router.register_stream(
      stream_id_, [this](const ProtocolHeader& h, ByteReader body, LinkDirection via,
                         util::TimePoint now) { on_packet(h, body, via, now); });
}

std::uint32_t DatagramSocket::send(Payload bytes, std::uint32_t declared_wire_size,
                                   util::TimePoint now) {
  const std::uint32_t seq = next_seq_++;
  // One datagram = one packet, framed directly in a pooled buffer.
  ByteWriter w{channel_->acquire_payload(ProtocolHeader::kSize + 4 + 8 + 4 +
                                         bytes.size())};
  ProtocolHeader::begin(w, stream_id_, SegmentType::kDatagram);
  w.u32(seq);
  w.u64(static_cast<std::uint64_t>(now.count_micros()));
  w.bytes(bytes);
  Packet p;
  p.payload = ProtocolHeader::finish(w);
  p.wire_size = std::max<std::uint32_t>(
      declared_wire_size, static_cast<std::uint32_t>(bytes.size()) + 28);
  channel_->send(send_dir_, std::move(p), now);
  ++sent_;
  return seq;
}

void DatagramSocket::on_packet(const ProtocolHeader& header, ByteReader r,
                               LinkDirection via, util::TimePoint now) {
  if (header.type != SegmentType::kDatagram || via != send_dir_) return;
  DatagramMessage msg;
  msg.sequence = r.u32();
  msg.sent_at = util::TimePoint::from_micros(static_cast<std::int64_t>(r.u64()));
  msg.bytes = r.bytes();
  msg.delivered_at = now;
  if (!r.ok()) return;
  ++received_;
  inbox_.push_back(std::move(msg));
}

std::optional<DatagramMessage> DatagramSocket::receive() {
  if (inbox_.empty()) return std::nullopt;
  DatagramMessage msg = std::move(inbox_.front());
  inbox_.pop_front();
  return msg;
}

std::optional<DatagramMessage> DatagramSocket::receive_latest() {
  std::optional<DatagramMessage> newest;
  while (!inbox_.empty()) {
    DatagramMessage msg = std::move(inbox_.front());
    inbox_.pop_front();
    if (!any_seen_ || msg.sequence >= newest_seen_) {
      newest_seen_ = msg.sequence;
      any_seen_ = true;
      if (newest) ++stale_;
      newest = std::move(msg);
    } else {
      ++stale_;
    }
  }
  return newest;
}

}  // namespace rdsim::net
