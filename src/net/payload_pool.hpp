// Deterministic freelist of size-bucketed payload buffers.
//
// The packet hot path used to allocate one payload vector per packet sent
// and free it once the router parsed the delivery. A PayloadPool recycles
// those buffers instead: acquire() hands out a cleared buffer whose capacity
// covers the requested size, release() returns it to a per-size-class LIFO
// freelist. Each Channel owns one pool, so recycling is single-threaded and
// fully deterministic — the pool affects *where* bytes live, never what they
// are, and the golden campaign hashes are bit-identical with or without it.
#pragma once

#include <array>
#include <cstdint>

#include "net/packet.hpp"

namespace rdsim::net {

class PayloadPool {
 public:
  struct Stats {
    std::uint64_t fresh{0};      ///< acquire() had to heap-allocate
    std::uint64_t reused{0};     ///< acquire() served from a freelist
    std::uint64_t recycled{0};   ///< release() kept the buffer
    std::uint64_t discarded{0};  ///< release() dropped it (full/odd-sized)
  };

  /// `max_per_bucket` bounds the buffers cached per size class, which caps
  /// pool memory at roughly max_per_bucket * sum(bucket sizes).
  explicit PayloadPool(std::size_t max_per_bucket = 64)
      : max_per_bucket_{max_per_bucket} {}

  /// A cleared buffer with capacity >= size_hint (when size_hint fits the
  /// largest size class; bigger requests fall through to a plain allocation).
  Payload acquire(std::size_t size_hint);

  /// Return a buffer to the freelist of the largest size class its capacity
  /// covers. Undersized or surplus buffers are freed normally.
  void release(Payload&& payload);

  const Stats& stats() const { return stats_; }

  /// Buffers currently cached across all size classes.
  std::size_t cached() const;

  static constexpr std::size_t kNumBuckets = 8;
  /// Size classes, geometric: 64 B .. 1 MiB.
  static constexpr std::array<std::size_t, kNumBuckets> kBucketBytes{
      64, 256, 1024, 4096, 16384, 65536, 262144, 1048576};

 private:
  std::size_t max_per_bucket_;
  std::array<std::vector<Payload>, kNumBuckets> free_;
  Stats stats_;
};

}  // namespace rdsim::net
