// Queueing-discipline interface, modelled on Linux traffic control.
//
// A qdisc receives packets on enqueue and releases them at (virtual) times of
// its choosing. dequeue_ready() pops every packet whose release time has
// passed, in release order — the link emulator drives this from the shared
// virtual clock.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/time.hpp"

namespace rdsim::net {

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Hand a packet to the discipline at time `now`. The qdisc may drop it
  /// (loss model or over-limit), duplicate it, corrupt it, or schedule it.
  virtual void enqueue(Packet packet, util::TimePoint now) = 0;

  /// Pop every packet whose scheduled release time is <= now.
  virtual std::vector<Packet> dequeue_ready(util::TimePoint now) = 0;

  /// Earliest pending release time, or nullopt when idle. Lets callers skip
  /// polling idle links.
  virtual std::optional<util::TimePoint> next_event() const = 0;

  /// Packets currently queued.
  virtual std::size_t backlog() const = 0;

  /// Drop all queued packets (used when a tc rule is deleted).
  virtual void clear() = 0;

  virtual const QdiscStats& stats() const = 0;
  virtual std::string kind() const = 0;
};

using QdiscPtr = std::unique_ptr<Qdisc>;

/// pfifo: plain FIFO with a packet-count limit and tail drop. This is the
/// Linux default qdisc the paper's loopback interface runs when no netem
/// rule is installed — packets pass through with zero added latency.
class FifoQdisc final : public Qdisc {
 public:
  explicit FifoQdisc(std::size_t limit_packets = 1000) : limit_{limit_packets} {}

  void enqueue(Packet packet, util::TimePoint now) override;
  std::vector<Packet> dequeue_ready(util::TimePoint now) override;
  std::optional<util::TimePoint> next_event() const override;
  std::size_t backlog() const override { return queue_.size(); }
  void clear() override { queue_.clear(); }
  const QdiscStats& stats() const override { return stats_; }
  std::string kind() const override { return "pfifo"; }

 private:
  std::size_t limit_;
  std::vector<Packet> queue_;
  QdiscStats stats_;
};

}  // namespace rdsim::net
