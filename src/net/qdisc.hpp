// Queueing-discipline interface, modelled on Linux traffic control.
//
// A qdisc receives packets on enqueue and releases them at (virtual) times of
// its choosing. dequeue_ready() pushes every packet whose release time has
// passed, in release order, into a PacketSink — the link emulator drives this
// from the shared virtual clock and early-outs on next_event_at(), so idle
// links cost one comparison per tick and busy links move packets without a
// per-tick vector allocation.
//
// Every qdisc exposes the same introspection surface:
//   stats()          cumulative tc -s counters
//   backlog()        packets currently queued
//   backlog_bytes()  wire bytes currently queued (effective_wire_size sum)
//   next_event_at()  earliest pending release time, nullopt when idle
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/time.hpp"

namespace rdsim::net {

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Hand a packet to the discipline at time `now`. The qdisc may drop it
  /// (loss model or over-limit), duplicate it, corrupt it, or schedule it.
  virtual void enqueue(Packet packet, util::TimePoint now) = 0;

  /// Push every packet whose scheduled release time is <= now into `sink`,
  /// in release order.
  virtual void dequeue_ready(util::TimePoint now, PacketSink& sink) = 0;

  /// Earliest pending release time, or nullopt when idle. The contract that
  /// makes event-driven stepping sound: while now < next_event_at(), a call
  /// to dequeue_ready() would release nothing and have no observable effect,
  /// so callers may skip it entirely.
  virtual std::optional<util::TimePoint> next_event_at() const = 0;

  /// Packets currently queued.
  virtual std::size_t backlog() const = 0;

  /// Wire bytes currently queued (sum of effective_wire_size).
  virtual std::uint64_t backlog_bytes() const = 0;

  /// Drop all queued packets (used when a tc rule is deleted).
  virtual void clear() = 0;

  virtual const QdiscStats& stats() const = 0;
  virtual std::string kind() const = 0;

  /// Convenience for tests and tooling: drain ready packets into a fresh
  /// vector. The production path is the sink overload.
  std::vector<Packet> drain(util::TimePoint now);

  /// `tc -s qdisc show`-style one-liner: kind, counters, live backlog.
  std::string summary() const;
};

using QdiscPtr = std::unique_ptr<Qdisc>;

/// pfifo: plain FIFO with a packet-count limit and tail drop. This is the
/// Linux default qdisc the paper's loopback interface runs when no netem
/// rule is installed — packets pass through with zero added latency.
class FifoQdisc final : public Qdisc {
 public:
  explicit FifoQdisc(std::size_t limit_packets = 1000) : limit_{limit_packets} {}

  void enqueue(Packet packet, util::TimePoint now) override;
  void dequeue_ready(util::TimePoint now, PacketSink& sink) override;
  std::optional<util::TimePoint> next_event_at() const override;
  std::size_t backlog() const override { return queue_.size(); }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  void clear() override {
    queue_.clear();
    backlog_bytes_ = 0;
  }
  const QdiscStats& stats() const override { return stats_; }
  std::string kind() const override { return "pfifo"; }

 private:
  std::size_t limit_;
  std::vector<Packet> queue_;
  std::uint64_t backlog_bytes_{0};
  QdiscStats stats_;
};

}  // namespace rdsim::net
