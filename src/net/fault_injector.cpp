#include "net/fault_injector.hpp"

#include <sstream>

#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "util/time.hpp"

namespace rdsim::net {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kPacketLoss: return "loss";
    case FaultKind::kCorruption: return "corrupt";
    case FaultKind::kDuplication: return "duplicate";
  }
  return "unknown";
}

std::string FaultSpec::to_netem_args() const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDelay:
      os << "delay " << value << "ms";
      break;
    case FaultKind::kPacketLoss:
      os << "loss " << value * 100.0 << "%";
      break;
    case FaultKind::kCorruption:
      os << "corrupt " << value * 100.0 << "%";
      break;
    case FaultKind::kDuplication:
      os << "duplicate " << value * 100.0 << "%";
      break;
  }
  return os.str();
}

NetemConfig FaultSpec::to_config() const { return parse_netem(to_netem_args()); }

std::string FaultSpec::label() const {
  std::ostringstream os;
  if (kind == FaultKind::kDelay) {
    os << value << "ms";
  } else {
    os << value * 100.0 << "%";
  }
  return os.str();
}

std::vector<FaultSpec> paper_fault_model() {
  return {
      {FaultKind::kDelay, 5.0},
      {FaultKind::kDelay, 25.0},
      {FaultKind::kDelay, 50.0},
      {FaultKind::kPacketLoss, 0.02},
      {FaultKind::kPacketLoss, 0.05},
  };
}

FaultInjector::FaultInjector(TrafficControl& tc, std::string device)
    : tc_{&tc}, device_{std::move(device)} {}

void FaultInjector::inject(const FaultSpec& fault, util::TimePoint now) {
  if (active_) {
    tc_->change(device_, fault.to_config());
    log_.push_back({now, *active_, /*added=*/false});
  } else {
    tc_->add(device_, fault.to_config());
  }
  active_ = fault;
  log_.push_back({now, fault, /*added=*/true});
  ++injections_;
  RDSIM_OBS_COUNT(obs::metric::kFaultsInjected, 1);
#if RDSIM_OBS
  if (obs::Context* ctx = obs::Context::current()) {
    window_span_ = ctx->span_open(obs::metric::kFaultWindowSpan, now);
    ctx->count(obs::metric::kFaultWindowSpan, 1);
  }
#endif
}

void FaultInjector::remove(util::TimePoint now) {
  if (!active_) return;
  tc_->del(device_);
  log_.push_back({now, *active_, /*added=*/false});
  active_.reset();
#if RDSIM_OBS
  if (window_span_ != obs::kNoSpan) {
    if (obs::Context* ctx = obs::Context::current()) {
      ctx->span_close(window_span_, now);
    }
    window_span_ = obs::kNoSpan;
  }
#endif
}

void FaultInjector::schedule(const FaultSpec& fault, util::TimePoint start,
                             util::TimePoint stop) {
  schedule_.push_back({fault, start, stop, false, false});
}

void FaultInjector::step(util::TimePoint now) {
  for (Window& w : schedule_) {
    if (!w.started && now >= w.start && now < w.stop) {
      inject(w.fault, now);
      w.started = true;
    }
    if (w.started && !w.finished && now >= w.stop) {
      // Only remove if this window's fault is still the active one.
      if (active_ && *active_ == w.fault) remove(now);
      w.finished = true;
    }
  }
}

}  // namespace rdsim::net
