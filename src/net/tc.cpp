#include "net/tc.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

#include "util/time.hpp"

namespace rdsim::net {

namespace {

/// Split on whitespace.
std::vector<std::string> tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is{s};
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Leading numeric part of a token; returns consumed length.
double leading_number(const std::string& token, std::size_t& consumed) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  const auto res = std::from_chars(begin, end, value);
  if (res.ec != std::errc{} || res.ptr == begin) {
    throw TcParseError{"expected a number in token '" + token + "'"};
  }
  consumed = static_cast<std::size_t>(res.ptr - begin);
  return value;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool looks_numeric(const std::string& token) {
  return !token.empty() &&
         (std::isdigit(static_cast<unsigned char>(token[0])) || token[0] == '.' ||
          token[0] == '-');
}

}  // namespace

util::Duration parse_duration(const std::string& token) {
  std::size_t consumed = 0;
  const double value = leading_number(token, consumed);
  const std::string unit = lower(token.substr(consumed));
  if (unit.empty() || unit == "ms" || unit == "msec" || unit == "msecs") {
    return units::Millis{value}.to_duration();
  }
  if (unit == "us" || unit == "usec" || unit == "usecs") {
    return util::Duration::micros(static_cast<std::int64_t>(value));
  }
  if (unit == "s" || unit == "sec" || unit == "secs") {
    return util::Duration::seconds(value);
  }
  throw TcParseError{"unknown time unit in '" + token + "'"};
}

units::Probability parse_percent(const std::string& token) {
  std::size_t consumed = 0;
  const double value = leading_number(token, consumed);
  const std::string suffix = token.substr(consumed);
  double p = 0.0;
  if (suffix == "%") {
    p = value / 100.0;
  } else if (suffix.empty()) {
    p = value;  // bare fraction
  } else {
    throw TcParseError{"expected percentage, got '" + token + "'"};
  }
  if (p < 0.0 || p > 1.0) {
    throw TcParseError{"percentage out of range in '" + token + "'"};
  }
  return units::Probability{p};
}

units::BytesPerSecond parse_rate(const std::string& token) {
  std::size_t consumed = 0;
  const double value = leading_number(token, consumed);
  const std::string unit = lower(token.substr(consumed));
  if (unit == "bit") return units::BytesPerSecond::from_bit(value);
  if (unit == "kbit") return units::BytesPerSecond::from_kbit(value);
  if (unit == "mbit") return units::BytesPerSecond::from_mbit(value);
  if (unit == "gbit") return units::BytesPerSecond::from_gbit(value);
  if (unit == "bps" || unit.empty()) return units::BytesPerSecond::from_bps(value);
  if (unit == "kbps") return units::BytesPerSecond::from_kbps(value);
  if (unit == "mbps") return units::BytesPerSecond::from_mbps(value);
  throw TcParseError{"unknown rate unit in '" + token + "'"};
}

NetemConfig parse_netem_args(const std::vector<std::string>& args) {
  NetemConfig cfg;
  std::size_t i = 0;
  auto next = [&]() -> const std::string& {
    if (i >= args.size()) throw TcParseError{"unexpected end of netem arguments"};
    return args[i++];
  };
  auto peek_numeric = [&]() { return i < args.size() && looks_numeric(args[i]); };

  while (i < args.size()) {
    const std::string key = lower(next());
    if (key == "delay") {
      cfg.delay = parse_duration(next());
      if (peek_numeric()) cfg.jitter = parse_duration(next());
      if (peek_numeric()) cfg.delay_correlation = parse_percent(next());
    } else if (key == "distribution") {
      const std::string d = lower(next());
      if (d == "uniform") {
        cfg.distribution = DelayDistribution::kUniform;
      } else if (d == "normal") {
        cfg.distribution = DelayDistribution::kNormal;
      } else if (d == "pareto") {
        cfg.distribution = DelayDistribution::kPareto;
      } else if (d == "paretonormal") {
        cfg.distribution = DelayDistribution::kParetoNormal;
      } else {
        throw TcParseError{"unknown distribution '" + d + "'"};
      }
    } else if (key == "loss") {
      if (i < args.size() && lower(args[i]) == "gemodel") {
        ++i;
        GilbertElliott ge;
        ge.p = parse_percent(next());
        if (peek_numeric()) ge.r = parse_percent(next());
        if (peek_numeric()) ge.h = parse_percent(next()).complement();  // tc: 1-h
        if (peek_numeric()) ge.k = parse_percent(next());
        cfg.gemodel = ge;
      } else {
        cfg.loss_probability = parse_percent(next());
        if (peek_numeric()) cfg.loss_correlation = parse_percent(next());
      }
    } else if (key == "duplicate") {
      cfg.duplicate_probability = parse_percent(next());
      if (peek_numeric()) cfg.duplicate_correlation = parse_percent(next());
    } else if (key == "corrupt") {
      cfg.corrupt_probability = parse_percent(next());
      if (peek_numeric()) cfg.corrupt_correlation = parse_percent(next());
    } else if (key == "reorder") {
      cfg.reorder_probability = parse_percent(next());
      if (peek_numeric()) cfg.reorder_correlation = parse_percent(next());
    } else if (key == "gap") {
      const std::string g = next();
      std::size_t consumed = 0;
      cfg.reorder_gap = static_cast<std::uint32_t>(leading_number(g, consumed));
      if (cfg.reorder_gap == 0) cfg.reorder_gap = 1;
    } else if (key == "rate") {
      cfg.rate = parse_rate(next());
    } else if (key == "limit") {
      const std::string l = next();
      std::size_t consumed = 0;
      cfg.limit = static_cast<std::size_t>(leading_number(l, consumed));
    } else {
      throw TcParseError{"unknown netem keyword '" + key + "'"};
    }
  }
  return cfg;
}

NetemConfig parse_netem(const std::string& spec) {
  auto tokens = tokenize(spec);
  if (!tokens.empty() && lower(tokens.front()) == "netem") {
    tokens.erase(tokens.begin());
  }
  return parse_netem_args(tokens);
}

TrafficControl::Entry& TrafficControl::entry(const std::string& device) {
  auto it = table_.find(device);
  if (it == table_.end()) {
    Entry e;
    e.qdisc = std::make_unique<FifoQdisc>();
    it = table_.emplace(device, std::move(e)).first;
  }
  return it->second;
}

void TrafficControl::add(const std::string& device, const NetemConfig& config) {
  Entry& e = entry(device);
  if (e.is_netem) {
    throw TcParseError{"RTNETLINK answers: File exists (netem already installed on " +
                       device + ")"};
  }
  e.qdisc = std::make_unique<NetemQdisc>(config, seed_ + next_stream_++);
  e.is_netem = true;
}

void TrafficControl::change(const std::string& device, const NetemConfig& config) {
  Entry& e = entry(device);
  if (!e.is_netem) {
    throw TcParseError{"cannot change: no netem qdisc installed on " + device};
  }
  static_cast<NetemQdisc&>(*e.qdisc).change(config);
}

void TrafficControl::del(const std::string& device) {
  Entry& e = entry(device);
  if (!e.is_netem) {
    throw TcParseError{"RTNETLINK answers: No such file or directory (no netem on " +
                       device + ")"};
  }
  e.qdisc = std::make_unique<FifoQdisc>();
  e.is_netem = false;
}

std::string TrafficControl::execute(const std::string& command) {
  auto tokens = tokenize(command);
  // Accept an optional leading "tc".
  std::size_t i = 0;
  if (i < tokens.size() && lower(tokens[i]) == "tc") ++i;
  auto expect = [&](const std::string& word) {
    if (i >= tokens.size() || lower(tokens[i]) != word) {
      throw TcParseError{"expected '" + word + "' in tc command"};
    }
    ++i;
  };
  expect("qdisc");
  if (i >= tokens.size()) throw TcParseError{"missing verb in tc command"};
  const std::string verb = lower(tokens[i++]);
  expect("dev");
  if (i >= tokens.size()) throw TcParseError{"missing device in tc command"};
  const std::string device = tokens[i++];
  expect("root");

  if (verb == "del") {
    del(device);
    return device;
  }
  expect("netem");
  const std::vector<std::string> rest{tokens.begin() + static_cast<std::ptrdiff_t>(i),
                                      tokens.end()};
  const NetemConfig cfg = parse_netem_args(rest);
  if (verb == "add") {
    add(device, cfg);
  } else if (verb == "change") {
    change(device, cfg);
  } else {
    throw TcParseError{"unknown tc verb '" + verb + "'"};
  }
  return device;
}

Qdisc& TrafficControl::root(const std::string& device) { return *entry(device).qdisc; }

bool TrafficControl::has_netem(const std::string& device) const {
  const auto it = table_.find(device);
  return it != table_.end() && it->second.is_netem;
}

std::optional<NetemConfig> TrafficControl::netem_config(const std::string& device) const {
  const auto it = table_.find(device);
  if (it == table_.end() || !it->second.is_netem) return std::nullopt;
  return static_cast<const NetemQdisc&>(*it->second.qdisc).config();
}

std::vector<std::string> TrafficControl::devices() const {
  std::vector<std::string> out;
  out.reserve(table_.size());
  for (const auto& [name, _] : table_) out.push_back(name);
  return out;
}

}  // namespace rdsim::net
