#include "net/payload_pool.hpp"

#include "obs/catalog.hpp"
#include "obs/obs.hpp"

namespace rdsim::net {

namespace {

/// Index of the smallest size class covering `n`, or kNumBuckets when `n`
/// exceeds the largest class.
std::size_t bucket_covering(std::size_t n) {
  for (std::size_t i = 0; i < PayloadPool::kNumBuckets; ++i) {
    if (PayloadPool::kBucketBytes[i] >= n) return i;
  }
  return PayloadPool::kNumBuckets;
}

/// Index of the largest size class a capacity of `n` can serve, or
/// kNumBuckets when `n` is below the smallest class.
std::size_t bucket_served_by(std::size_t n) {
  for (std::size_t i = PayloadPool::kNumBuckets; i-- > 0;) {
    if (n >= PayloadPool::kBucketBytes[i]) return i;
  }
  return PayloadPool::kNumBuckets;
}

}  // namespace

Payload PayloadPool::acquire(std::size_t size_hint) {
  const std::size_t b = bucket_covering(size_hint);
  if (b < kNumBuckets && !free_[b].empty()) {
    Payload out = std::move(free_[b].back());
    free_[b].pop_back();
    out.clear();
    ++stats_.reused;
    RDSIM_OBS_COUNT(obs::metric::kPoolReused, 1);
    return out;
  }
  ++stats_.fresh;
  RDSIM_OBS_COUNT(obs::metric::kPoolFresh, 1);
  Payload out;
  out.reserve(b < kNumBuckets ? kBucketBytes[b] : size_hint);
  return out;
}

void PayloadPool::release(Payload&& payload) {
  const std::size_t b = bucket_served_by(payload.capacity());
  if (b >= kNumBuckets || free_[b].size() >= max_per_bucket_) {
    ++stats_.discarded;
    RDSIM_OBS_COUNT(obs::metric::kPoolDiscarded, 1);
    return;  // payload freed normally as it goes out of scope
  }
  payload.clear();
  free_[b].push_back(std::move(payload));
  ++stats_.recycled;
  RDSIM_OBS_COUNT(obs::metric::kPoolRecycled, 1);
}

std::size_t PayloadPool::cached() const {
  std::size_t total = 0;
  for (const auto& bucket : free_) total += bucket.size();
  return total;
}

}  // namespace rdsim::net
