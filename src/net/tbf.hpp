// Token Bucket Filter qdisc (`tc qdisc add ... tbf rate ... burst ...`).
//
// Included because the paper's related work shapes bandwidth; our default
// experiments do not rate-limit but the ablation benches exercise it.
#pragma once

#include <deque>
#include <optional>

#include "net/qdisc.hpp"
#include "util/units.hpp"

namespace rdsim::net {

struct TbfConfig {
  units::BytesPerSecond rate{125000.0};  ///< sustained rate (default 1 Mbit/s)
  double burst_bytes{16000.0};           ///< bucket depth
  std::size_t limit{1000};               ///< queue limit, packets
};

class TbfQdisc final : public Qdisc {
 public:
  explicit TbfQdisc(TbfConfig config) : config_{config}, tokens_{config.burst_bytes} {}

  const TbfConfig& config() const { return config_; }

  void enqueue(Packet packet, util::TimePoint now) override;
  void dequeue_ready(util::TimePoint now, PacketSink& sink) override;
  std::optional<util::TimePoint> next_event_at() const override;
  std::size_t backlog() const override { return queue_.size(); }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  void clear() override {
    queue_.clear();
    backlog_bytes_ = 0;
  }
  const QdiscStats& stats() const override { return stats_; }
  std::string kind() const override { return "tbf"; }

 private:
  void refill(util::TimePoint now);

  TbfConfig config_;
  double tokens_;
  util::TimePoint last_refill_{};
  std::deque<Packet> queue_;
  std::uint64_t backlog_bytes_{0};
  QdiscStats stats_;
};

}  // namespace rdsim::net
