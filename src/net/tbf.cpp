#include "net/tbf.hpp"

#include <algorithm>

#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "util/time.hpp"

namespace rdsim::net {

void TbfQdisc::refill(util::TimePoint now) {
  const double dt = (now - last_refill_).to_seconds();
  if (dt > 0.0) {
    tokens_ = std::min(config_.burst_bytes, tokens_ + dt * config_.rate.value());
    last_refill_ = now;
  }
}

void TbfQdisc::enqueue(Packet packet, util::TimePoint now) {
  ++stats_.enqueued;
  RDSIM_OBS_COUNT(obs::metric::kTbfEnqueued, 1);
  packet.enqueued_at = now;
  if (queue_.size() >= config_.limit) {
    ++stats_.dropped_overlimit;
    RDSIM_OBS_COUNT(obs::metric::kTbfDroppedOverlimit, 1);
    return;
  }
  refill(now);
  backlog_bytes_ += packet.effective_wire_size();
  queue_.push_back(std::move(packet));
  RDSIM_OBS_GAUGE_SET(obs::metric::kTbfDepth, static_cast<double>(queue_.size()));
}

void TbfQdisc::dequeue_ready(util::TimePoint now, PacketSink& sink) {
  refill(now);
  std::size_t n = 0;
  while (!queue_.empty()) {
    const std::uint32_t bytes = queue_.front().effective_wire_size();
    if (tokens_ < static_cast<double>(bytes)) break;
    tokens_ -= static_cast<double>(bytes);
    ++stats_.dequeued;
    stats_.bytes_sent += bytes;
    backlog_bytes_ -= bytes;
    sink.accept(std::move(queue_.front()));
    queue_.pop_front();
    ++n;
  }
  if (n > 0) {
    RDSIM_OBS_COUNT(obs::metric::kTbfDequeued, n);
    RDSIM_OBS_GAUGE_SET(obs::metric::kTbfDepth,
                        static_cast<double>(queue_.size()));
  }
}

std::optional<util::TimePoint> TbfQdisc::next_event_at() const {
  if (queue_.empty()) return std::nullopt;
  const double deficit =
      static_cast<double>(queue_.front().effective_wire_size()) - tokens_;
  if (deficit <= 0.0) return last_refill_;
  const units::Seconds wait = units::transmit_time(deficit, config_.rate);
  return last_refill_ + wait.to_duration();
}

}  // namespace rdsim::net
