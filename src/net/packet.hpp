// Network packet model.
//
// Packets carry an opaque payload plus a declared wire size. The wire size is
// what the queueing disciplines account (serialization time under rate
// limiting, corruption probability scaling), which lets large video frames be
// modelled faithfully without megabytes of padding bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace rdsim::net {

using Payload = std::vector<std::uint8_t>;

/// Direction of travel through the teleoperation link, for logging. The
/// paper's loopback setup makes fault injection bidirectional: the same
/// egress qdisc disturbs both.
enum class LinkDirection : std::uint8_t {
  kDownlink,  ///< vehicle -> operator (video/sensor frames)
  kUplink,    ///< operator -> vehicle (driving commands)
};

struct Packet {
  std::uint64_t id{0};             ///< globally unique, assigned by the link
  std::uint32_t flow{0};           ///< flow/classifier id (e.g. per stream)
  Payload payload{};               ///< protocol bytes
  std::uint32_t wire_size{0};      ///< bytes on the wire (>= payload size)
  util::TimePoint enqueued_at{};   ///< when the sender handed it to the link
  bool corrupted{false};           ///< payload damaged by the corrupt qdisc
  bool duplicate{false};           ///< this copy was created by duplication

  std::uint32_t effective_wire_size() const {
    return wire_size > payload.size() ? wire_size
                                      : static_cast<std::uint32_t>(payload.size());
  }
};

/// Counters exported by every qdisc and link, mirroring `tc -s qdisc show`.
struct QdiscStats {
  std::uint64_t enqueued{0};
  std::uint64_t dequeued{0};
  std::uint64_t dropped_overlimit{0};  ///< tail drops (queue limit)
  std::uint64_t dropped_loss{0};       ///< netem loss model drops
  std::uint64_t duplicated{0};
  std::uint64_t corrupted{0};
  std::uint64_t reordered{0};
  std::uint64_t bytes_sent{0};

  std::uint64_t total_dropped() const { return dropped_overlimit + dropped_loss; }
  std::string summary() const;
};

}  // namespace rdsim::net
