// Network packet model.
//
// Packets carry an opaque payload plus a declared wire size. The wire size is
// what the queueing disciplines account (serialization time under rate
// limiting, corruption probability scaling), which lets large video frames be
// modelled faithfully without megabytes of padding bytes.
//
// Packets are move-only: a payload buffer is handed from the sender through
// the qdisc chain to the receiving inbox without ever being copied, and the
// Channel recycles it through a PayloadPool once the router has parsed it.
// The one legitimate copy — netem duplication — is spelled explicitly with
// clone().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace rdsim::net {

using Payload = std::vector<std::uint8_t>;

/// Direction of travel through the teleoperation link, for logging. The
/// paper's loopback setup makes fault injection bidirectional: the same
/// egress qdisc disturbs both.
enum class LinkDirection : std::uint8_t {
  kDownlink,  ///< vehicle -> operator (video/sensor frames)
  kUplink,    ///< operator -> vehicle (driving commands)
};

struct Packet {
  std::uint64_t id{0};             ///< globally unique, assigned by the link
  std::uint32_t flow{0};           ///< flow/classifier id (e.g. per stream)
  Payload payload{};               ///< protocol bytes
  std::uint32_t wire_size{0};      ///< bytes on the wire (>= payload size)
  util::TimePoint enqueued_at{};   ///< when the sender handed it to the link
  bool corrupted{false};           ///< payload damaged by the corrupt qdisc
  bool duplicate{false};           ///< this copy was created by duplication

  Packet() = default;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  /// Deep copy, for netem duplication (the only place a packet forks).
  Packet clone() const {
    Packet copy;
    copy.id = id;
    copy.flow = flow;
    copy.payload = payload;
    copy.wire_size = wire_size;
    copy.enqueued_at = enqueued_at;
    copy.corrupted = corrupted;
    copy.duplicate = duplicate;
    return copy;
  }

  std::uint32_t effective_wire_size() const {
    const auto payload_bytes = static_cast<std::uint32_t>(payload.size());
    return wire_size > payload_bytes ? wire_size : payload_bytes;
  }
};

/// Consumer of released packets. Qdiscs push ready packets straight into a
/// sink instead of materializing a per-tick std::vector, so a busy link moves
/// packets with zero intermediate allocations and an idle link costs one
/// next_event_at() comparison.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void accept(Packet&& packet) = 0;
};

/// PacketSink that appends to a vector — the test/tooling adaptor behind
/// Qdisc::drain().
class VectorSink final : public PacketSink {
 public:
  explicit VectorSink(std::vector<Packet>& out) : out_{&out} {}
  void accept(Packet&& packet) override { out_->push_back(std::move(packet)); }

 private:
  std::vector<Packet>* out_;
};

/// Counters exported by every qdisc and link, mirroring `tc -s qdisc show`.
struct QdiscStats {
  std::uint64_t enqueued{0};
  std::uint64_t dequeued{0};
  std::uint64_t dropped_overlimit{0};  ///< tail drops (queue limit)
  std::uint64_t dropped_loss{0};       ///< netem loss model drops
  std::uint64_t duplicated{0};
  std::uint64_t corrupted{0};
  std::uint64_t reordered{0};
  std::uint64_t bytes_sent{0};

  std::uint64_t total_dropped() const { return dropped_overlimit + dropped_loss; }
  std::string summary() const;
};

}  // namespace rdsim::net
