#include "net/netem.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/contracts.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "util/vec2.hpp"

namespace rdsim::net {

namespace {

void append_percent(std::ostringstream& os, const char* name, units::Probability p,
                    units::Probability corr) {
  os << ' ' << name << ' ' << p.percent() << '%';
  if (corr.value() > 0.0) os << ' ' << corr.percent() << '%';
}

}  // namespace

std::string NetemConfig::describe() const {
  std::ostringstream os;
  os << "netem";
  if (has_delay()) {
    os << " delay " << delay.to_millis() << "ms";
    if (jitter > util::Duration{}) {
      os << ' ' << jitter.to_millis() << "ms";
      if (delay_correlation.value() > 0.0) os << ' ' << delay_correlation.percent() << '%';
    }
    switch (distribution) {
      case DelayDistribution::kUniform: break;
      case DelayDistribution::kNormal: os << " distribution normal"; break;
      case DelayDistribution::kPareto: os << " distribution pareto"; break;
      case DelayDistribution::kParetoNormal: os << " distribution paretonormal"; break;
      case DelayDistribution::kTable: os << " distribution <table>"; break;
    }
  }
  if (gemodel) {
    os << " loss gemodel " << gemodel->p.percent() << '%' << ' ' << gemodel->r.percent()
       << '%';
  } else if (loss_probability.value() > 0.0) {
    append_percent(os, "loss", loss_probability, loss_correlation);
  }
  if (duplicate_probability.value() > 0.0) {
    append_percent(os, "duplicate", duplicate_probability, duplicate_correlation);
  }
  if (corrupt_probability.value() > 0.0) {
    append_percent(os, "corrupt", corrupt_probability, corrupt_correlation);
  }
  if (reorder_probability.value() > 0.0) {
    append_percent(os, "reorder", reorder_probability, reorder_correlation);
    if (reorder_gap > 1) os << " gap " << reorder_gap;
  }
  if (rate.value() > 0.0) os << " rate " << rate.to_kbit() << "kbit";
  return os.str();
}

DelayDistributionTable DelayDistributionTable::from_values(
    std::vector<std::int16_t> values) {
  if (values.empty()) {
    throw std::invalid_argument{"DelayDistributionTable: empty table"};
  }
  DelayDistributionTable t;
  t.values_ = std::move(values);
  return t;
}

DelayDistributionTable DelayDistributionTable::parse(const std::string& text) {
  std::vector<std::int16_t> values;
  std::istringstream is{text};
  std::string token;
  while (is >> token) {
    if (token.front() == '#') {
      std::string rest;
      std::getline(is, rest);  // drop the comment line
      continue;
    }
    try {
      values.push_back(static_cast<std::int16_t>(std::stoi(token)));
    } catch (const std::exception&) {
      throw std::invalid_argument{"DelayDistributionTable: bad token '" + token + "'"};
    }
  }
  return from_values(std::move(values));
}

double DelayDistributionTable::sample(double u) const {
  const auto idx = static_cast<std::size_t>(
      util::clamp(u, 0.0, 1.0 - 1e-12) * static_cast<double>(values_.size()));
  // NETEM_DIST_SCALE: table entries are deviates in sigmas times 8192.
  return static_cast<double>(values_[idx]) / 8192.0;
}

NetemQdisc::NetemQdisc(NetemConfig config, std::uint64_t seed)
    : config_{std::move(config)}, rng_{seed, /*stream=*/0x6e6574656dULL} {
  if (config_.distribution == DelayDistribution::kTable &&
      !config_.distribution_table) {
    throw std::invalid_argument{"netem: distribution table selected but not provided"};
  }
}

double NetemQdisc::correlated_uniform(double correlation, double& state) {
  // netem's get_crandom: blend the previous deviate with a fresh one.
  const double fresh = rng_.uniform();
  if (correlation <= 0.0) {
    state = fresh;
    return fresh;
  }
  const double rho = std::min(correlation, 1.0);
  state = rho * state + (1.0 - rho) * fresh;
  return state;
}

double NetemQdisc::sample_jitter_unit() {
  switch (config_.distribution) {
    case DelayDistribution::kUniform:
      return 2.0 * rng_.uniform() - 1.0;
    case DelayDistribution::kNormal: {
      // Truncate at 4 sigma as netem's table generation effectively does;
      // scale so jitter acts as one standard deviation.
      const double z = rng_.normal();
      return util::clamp(z, -4.0, 4.0) / 4.0;
    }
    case DelayDistribution::kPareto: {
      // One-sided heavy tail, shifted to zero mean-ish, clamped to [-1, 4].
      const double alpha = 3.0;
      const double u = std::max(rng_.uniform(), 1e-9);
      const double x = std::pow(u, -1.0 / alpha) - 1.0;  // >= 0, heavy tail
      return util::clamp(x - 0.5, -1.0, 4.0);
    }
    case DelayDistribution::kParetoNormal: {
      const double z = util::clamp(rng_.normal() / 4.0, -1.0, 1.0);
      const double alpha = 3.0;
      const double u = std::max(rng_.uniform(), 1e-9);
      const double x = util::clamp(std::pow(u, -1.0 / alpha) - 1.5, -1.0, 4.0);
      return 0.75 * z + 0.25 * x;
    }
    case DelayDistribution::kTable:
      return config_.distribution_table->sample(rng_.uniform());
  }
  return 0.0;
}

util::Duration NetemQdisc::sample_delay() {
  util::Duration d = config_.delay;
  if (config_.jitter > util::Duration{}) {
    double unit = 0.0;
    if (config_.delay_correlation.value() > 0.0) {
      // Correlated uniform mapped to [-1, 1].
      unit = 2.0 * correlated_uniform(config_.delay_correlation.value(),
                                      delay_corr_state_) -
             1.0;
    } else {
      unit = sample_jitter_unit();
    }
    const auto jitter_us = static_cast<std::int64_t>(
        unit * static_cast<double>(config_.jitter.count_micros()));
    d += util::Duration::micros(jitter_us);
  }
  if (d.is_negative()) d = util::Duration{};
  RDSIM_ENSURE(!d.is_negative(), "netem delay samples must be non-negative");
  return d;
}

bool NetemQdisc::sample_loss() {
  if (config_.gemodel) {
    const auto& ge = *config_.gemodel;
    // Transition first, then sample the state's loss probability.
    if (ge_in_bad_state_) {
      if (rng_.bernoulli(ge.r.value())) ge_in_bad_state_ = false;
    } else {
      if (rng_.bernoulli(ge.p.value())) ge_in_bad_state_ = true;
    }
    const double p_loss = ge_in_bad_state_ ? ge.k.value() : ge.h.value();
    return rng_.bernoulli(p_loss);
  }
  if (config_.loss_probability.value() <= 0.0) return false;
  const double p = config_.loss_probability.value();
  const double rho = util::clamp(config_.loss_correlation.value(), 0.0, 1.0);
  if (rho <= 0.0) {
    const bool lost = rng_.bernoulli(p);
    last_loss_ = lost;
    return lost;
  }
  // Correlated loss as a two-state chain that preserves the marginal rate p
  // exactly while clustering losses: P(loss|loss) = p + rho(1-p),
  // P(loss|ok) = p(1-rho). (The kernel's blended-uniform scheme distorts the
  // marginal badly at high correlation — a known netem quirk we fix here.)
  const double p_cond = last_loss_ ? p + rho * (1.0 - p) : p * (1.0 - rho);
  const bool lost = rng_.bernoulli(p_cond);
  last_loss_ = lost;
  return lost;
}

void NetemQdisc::enqueue(Packet packet, util::TimePoint now) {
  ++stats_.enqueued;
  RDSIM_OBS_COUNT(obs::metric::kNetemEnqueued, 1);
  packet.enqueued_at = now;

  if (sample_loss()) {
    ++stats_.dropped_loss;
    RDSIM_OBS_COUNT(obs::metric::kNetemDroppedLoss, 1);
    return;
  }

  bool duplicate = false;
  if (config_.duplicate_probability.value() > 0.0) {
    const double u =
        correlated_uniform(config_.duplicate_correlation.value(), dup_corr_state_);
    duplicate = u < config_.duplicate_probability.value();
  }

  if (config_.corrupt_probability.value() > 0.0) {
    const double u =
        correlated_uniform(config_.corrupt_correlation.value(), corrupt_corr_state_);
    if (u < config_.corrupt_probability.value() && !packet.payload.empty()) {
      // Flip one random bit, as sch_netem does.
      const auto byte_idx = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<int>(packet.payload.size()) - 1));
      const auto bit = static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
      packet.payload[byte_idx] ^= bit;
      packet.corrupted = true;
      ++stats_.corrupted;
      RDSIM_OBS_COUNT(obs::metric::kNetemCorrupted, 1);
    }
  }

  util::Duration delay = sample_delay();

  // Reordering: the selected packets jump the delay queue (sent "now"),
  // which makes them arrive ahead of earlier, still-delayed packets.
  bool send_immediately = false;
  if (config_.reorder_probability.value() > 0.0 && config_.has_delay()) {
    ++since_reorder_;
    if (since_reorder_ >= config_.reorder_gap) {
      const double u =
          correlated_uniform(config_.reorder_correlation.value(), reorder_corr_state_);
      if (u < config_.reorder_probability.value()) {
        send_immediately = true;
        since_reorder_ = 0;
      }
    }
  }
  if (send_immediately) {
    delay = util::Duration{};
    if (!queue_.empty()) {
      ++stats_.reordered;
      RDSIM_OBS_COUNT(obs::metric::kNetemReordered, 1);
    }
  }

  util::TimePoint release = now + delay;

  // Rate control: serialization starts when the previous packet finished.
  if (config_.rate.value() > 0.0) {
    const util::TimePoint start = std::max(release, last_tx_finish_);
    const units::Seconds tx = units::transmit_time(
        static_cast<double>(packet.effective_wire_size()), config_.rate);
    release = start + tx.to_duration();
    last_tx_finish_ = release;
  }

  if (queue_.size() >= config_.limit) {
    ++stats_.dropped_overlimit;
    RDSIM_OBS_COUNT(obs::metric::kNetemDroppedOverlimit, 1);
    return;
  }

  RDSIM_ENSURE(release >= now, "netem release time cannot precede enqueue time");

  if (duplicate && queue_.size() + 1 < config_.limit) {
    Packet copy = packet.clone();
    copy.duplicate = true;
    ++stats_.duplicated;
    RDSIM_OBS_COUNT(obs::metric::kNetemDuplicated, 1);
    schedule(std::move(copy), release);
  }
  schedule(std::move(packet), release);
  RDSIM_OBS_GAUGE_SET(obs::metric::kNetemDepth,
                      static_cast<double>(queue_.size()));
}

void NetemQdisc::schedule(Packet packet, util::TimePoint release) {
  backlog_bytes_ += packet.effective_wire_size();
  queue_.push_back(Scheduled{release, seq_++, std::move(packet)});
  std::push_heap(queue_.begin(), queue_.end(), ScheduledAfter{});
  // tfifo ordering: the heap root must be the earliest pending release.
  RDSIM_INVARIANT(!(release < queue_.front().release),
                  "netem heap root must be the earliest (release, seq)");
}

void NetemQdisc::dequeue_ready(util::TimePoint now, PacketSink& sink) {
  std::size_t n = 0;
  util::TimePoint last_release{};
  while (!queue_.empty() && queue_.front().release <= now) {
    std::pop_heap(queue_.begin(), queue_.end(), ScheduledAfter{});
    Scheduled s = std::move(queue_.back());
    queue_.pop_back();
    RDSIM_INVARIANT(n == 0 || !(s.release < last_release),
                    "netem must release packets in non-decreasing time order");
    last_release = s.release;
    ++stats_.dequeued;
    const std::uint32_t bytes = s.packet.effective_wire_size();
    stats_.bytes_sent += bytes;
    backlog_bytes_ -= bytes;
    sink.accept(std::move(s.packet));
    ++n;
  }
  if (n > 0) {
    RDSIM_OBS_COUNT(obs::metric::kNetemDequeued, n);
    RDSIM_OBS_GAUGE_SET(obs::metric::kNetemDepth,
                        static_cast<double>(queue_.size()));
  }
}

std::optional<util::TimePoint> NetemQdisc::next_event_at() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().release;
}

}  // namespace rdsim::net
