// Traffic-control front end.
//
// Fault campaigns in the paper are driven by NETEM command lines such as
// `tc qdisc add dev lo root netem delay 50ms` issued at points of interest.
// We reproduce that surface: rules are parsed from the same textual syntax,
// and a TrafficControl object manages the root qdisc per (virtual) device —
// add / change / del, exactly the verbs the experiment harness logs.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/netem.hpp"
#include "net/tbf.hpp"
#include "util/time.hpp"

namespace rdsim::net {

/// Error for malformed rule strings.
class TcParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a duration token: "50ms", "5ms", "1.5s", "200us". Bare numbers are
/// milliseconds, following tc conventions.
util::Duration parse_duration(const std::string& token);

/// Parse a percentage token: "5%", "2.5%", or a bare fraction "0.05".
/// Throws TcParseError when outside [0, 1].
units::Probability parse_percent(const std::string& token);

/// Parse a rate token: "1mbit", "500kbit", "125kbps" (bytes/s), "1gbit".
units::BytesPerSecond parse_rate(const std::string& token);

/// Parse the argument list after the `netem` keyword, e.g.
/// "delay 50ms 10ms 25% distribution normal loss 5% 25% reorder 25% gap 5".
NetemConfig parse_netem_args(const std::vector<std::string>& args);

/// Convenience: parse a full spec like "netem delay 50ms" or
/// "netem loss 5%". The leading "netem" keyword is optional.
NetemConfig parse_netem(const std::string& spec);

/// Per-device root qdisc registry, the analogue of the kernel's qdisc table.
class TrafficControl {
 public:
  explicit TrafficControl(std::uint64_t seed = 1) : seed_{seed} {}

  /// `tc qdisc add dev <device> root netem <args>`; throws if a root qdisc
  /// other than the default pfifo is already installed.
  void add(const std::string& device, const NetemConfig& config);

  /// `tc qdisc change dev <device> root netem <args>`.
  void change(const std::string& device, const NetemConfig& config);

  /// `tc qdisc del dev <device> root`; reverts to the default pfifo.
  /// Packets still queued in the old discipline are dropped, as the kernel
  /// does when it frees a qdisc — reliable transports above will retransmit.
  void del(const std::string& device);

  /// Execute a full command string:
  ///   "qdisc add dev lo root netem delay 50ms"
  /// Returns the device the command touched.
  std::string execute(const std::string& command);

  /// Root qdisc for `device`; a default pfifo is created on first use.
  Qdisc& root(const std::string& device);

  /// Earliest instant the root qdisc on `device` could release a packet;
  /// nullopt while it is empty. Lets callers skip dequeue work entirely
  /// between events instead of polling every tick.
  std::optional<util::TimePoint> next_event_at(const std::string& device) {
    return root(device).next_event_at();
  }

  /// True if a netem rule (not the default pfifo) is installed.
  bool has_netem(const std::string& device) const;

  /// The installed netem config, if any.
  std::optional<NetemConfig> netem_config(const std::string& device) const;

  std::vector<std::string> devices() const;

 private:
  struct Entry {
    QdiscPtr qdisc;
    bool is_netem{false};
  };

  Entry& entry(const std::string& device);

  std::uint64_t seed_;
  std::uint64_t next_stream_{0};
  std::map<std::string, Entry> table_;

  friend class LinkEmulator;
};

}  // namespace rdsim::net
