#include "net/channel.hpp"

#include "util/time.hpp"

namespace rdsim::net {

namespace {
// Flow ids: low bit encodes direction so the router can demultiplex.
constexpr std::uint32_t kDownFlow = 0;
constexpr std::uint32_t kUpFlow = 1;
}  // namespace

/// Routes packets released by the qdisc straight into the channel inboxes,
/// so dequeueing never stages through an intermediate vector.
class Channel::DeliverySink final : public PacketSink {
 public:
  DeliverySink(Channel& channel, util::TimePoint now) : channel_{channel}, now_{now} {}

  void accept(Packet&& packet) override { channel_.deliver(std::move(packet), now_); }

 private:
  Channel& channel_;
  util::TimePoint now_;
};

Channel::Channel(TrafficControl& tc, std::string device)
    : tc_{&tc}, device_{std::move(device)} {
  // Materialize the default pfifo so `in_flight` is valid immediately.
  tc_->root(device_);
}

std::uint64_t Channel::send(LinkDirection dir, Packet&& packet, util::TimePoint now) {
  packet.id = next_id_++;
  packet.flow = dir == LinkDirection::kDownlink ? kDownFlow : kUpFlow;
  DirectionStats& s = mutable_stats(dir);
  ++s.packets_sent;
  s.bytes_sent += packet.effective_wire_size();
  tc_->root(device_).enqueue(std::move(packet), now);
  return next_id_ - 1;
}

std::uint64_t Channel::send(LinkDirection dir, Payload payload, std::uint32_t wire_size,
                            util::TimePoint now) {
  Packet p;
  p.payload = std::move(payload);
  p.wire_size = wire_size;
  return send(dir, std::move(p), now);
}

void Channel::step(util::TimePoint now) {
  Qdisc& q = tc_->root(device_);
  const auto next = q.next_event_at();
  if (!next || *next > now) return;
  DeliverySink sink{*this, now};
  q.dequeue_ready(now, sink);
}

void Channel::deliver(Packet&& packet, util::TimePoint now) {
  const LinkDirection dir =
      packet.flow == kDownFlow ? LinkDirection::kDownlink : LinkDirection::kUplink;
  DirectionStats& s = mutable_stats(dir);
  ++s.packets_delivered;
  s.total_latency += now - packet.enqueued_at;
  inbox(dir).push_back(std::move(packet));
}

std::optional<Packet> Channel::receive(LinkDirection dir) {
  auto& box = inbox(dir);
  if (box.empty()) return std::nullopt;
  Packet p = std::move(box.front());
  box.pop_front();
  return p;
}

bool Channel::has_pending(LinkDirection dir) const { return !inbox(dir).empty(); }

std::size_t Channel::inbox_size(LinkDirection dir) const { return inbox(dir).size(); }

const DirectionStats& Channel::stats(LinkDirection dir) const {
  return dir == LinkDirection::kDownlink ? down_stats_ : up_stats_;
}

std::deque<Packet>& Channel::inbox(LinkDirection dir) {
  return dir == LinkDirection::kDownlink ? to_operator_ : to_vehicle_;
}

const std::deque<Packet>& Channel::inbox(LinkDirection dir) const {
  return dir == LinkDirection::kDownlink ? to_operator_ : to_vehicle_;
}

DirectionStats& Channel::mutable_stats(LinkDirection dir) {
  return dir == LinkDirection::kDownlink ? down_stats_ : up_stats_;
}

}  // namespace rdsim::net
