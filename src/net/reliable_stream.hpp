// Reliable, ordered message stream — the testbed's TCP analogue.
//
// CARLA's client/server protocol runs over TCP (§II.B of the paper), so the
// user-visible symptom of packet loss is not a missing video frame but a
// *stall*: the lost segment is retransmitted after an RTO (Linux clamps the
// TCP RTO to a 200 ms minimum) or after three duplicate ACKs, and every
// later frame is head-of-line blocked behind it. This class reproduces those
// semantics on the virtual clock:
//
//   - messages are segmented into MTU-sized wire segments with a global
//     sequence number,
//   - the receiver cumulatively ACKs the next expected sequence (with
//     SACK-style hints for fast retransmit),
//   - the sender maintains an RFC 6298 RTT estimate, retransmits on RTO
//     with exponential backoff, and fast-retransmits on 3 dup-ACKs,
//   - delivery is strictly in order: a complete message is handed to the
//     application only after all earlier messages.
//
// Congestion control is deliberately omitted: the paper's transport runs on
// loopback where the congestion window never binds; netem disturbances, not
// queue buildup, are the object of study. ACKs travel the reverse direction
// of the same channel and suffer the same injected faults.
#pragma once

#include <deque>
#include <map>

#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace rdsim::net {

struct StreamConfig {
  std::uint32_t mtu{65000};           ///< max payload bytes per segment
                                      ///< (loopback-sized, as in the paper)
  std::uint32_t header_overhead{40};  ///< modelled TCP/IP header bytes
  util::Duration rto_initial{util::Duration::millis(200)};
  util::Duration rto_min{util::Duration::millis(200)};   ///< Linux TCP_RTO_MIN
  util::Duration rto_max{util::Duration::millis(2000)};
  /// Max unacked segments in flight. 128 segments x 64 KB ~= 8 MB, matching
  /// Linux's default TCP send-buffer autotuning ceiling. With megabyte video
  /// frames this window is what throttles the feed when injected delay
  /// stretches the RTT: at 100 ms RTT the stream can move ~80 MB/s — below
  /// the raw video rate — so frame latency grows and the sender starts
  /// dropping frames, reproducing the paper's observation that >100 ms
  /// delays made driving very hard and >200 ms stopped the feed entirely.
  std::uint32_t window_segments{128};
  bool fast_retransmit{true};
  util::Duration ack_delay{};          ///< 0 = ack immediately
};

/// A message handed up to the application by the receiver side.
struct DeliveredMessage {
  Payload bytes;
  std::uint32_t message_id{0};
  util::TimePoint sent_at{};       ///< when the sender queued the message
  util::TimePoint delivered_at{};  ///< when in-order delivery completed
  util::Duration latency() const { return delivered_at - sent_at; }
};

struct StreamStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t segments_sent{0};      ///< first transmissions
  std::uint64_t retransmits_rto{0};
  std::uint64_t retransmits_fast{0};
  std::uint64_t acks_sent{0};
  std::uint64_t dup_acks_seen{0};
  std::uint64_t stale_segments{0};     ///< duplicates discarded by receiver
  units::Millis srtt{};                ///< smoothed RTT estimate
  units::Millis rto{};                 ///< current retransmission timeout
};

/// One reliable stream. A single object serves both halves because the whole
/// experiment runs in-process; the DATA direction is fixed at construction
/// and ACKs flow the opposite way through the same faulted channel.
class ReliableStream {
 public:
  ReliableStream(PacketRouter& router, Channel& channel, std::uint16_t stream_id,
                 LinkDirection data_direction, StreamConfig config = {});

  /// Queue a message. `declared_wire_size` is the size the link should
  /// account for (e.g. the encoded video frame size); the actual payload
  /// can be much smaller. Returns the message id.
  std::uint32_t send_message(Payload bytes, std::uint32_t declared_wire_size,
                             util::TimePoint now);

  /// Drive timers: transmit window, retransmit on RTO. The router's poll()
  /// must run first each step so incoming ACKs/DATA are processed.
  void step(util::TimePoint now);

  /// Next in-order message, if any has completed.
  std::optional<DeliveredMessage> pop_delivered();

  const StreamStats& stats() const { return stats_; }
  std::size_t unacked_segments() const { return in_flight_.size(); }
  std::size_t send_backlog() const { return send_queue_.size(); }
  const StreamConfig& config() const { return config_; }
  /// Highest cumulative ACK the sender has seen (monotone non-decreasing).
  std::uint32_t last_cum_ack() const { return last_cum_ack_; }

 private:
  struct Segment {
    std::uint32_t seq{0};
    std::uint32_t message_id{0};
    std::uint16_t seg_index{0};
    std::uint16_t seg_count{0};
    std::uint32_t message_wire_size{0};
    std::uint64_t message_sent_us{0};
    Payload chunk;
  };

  struct InFlight {
    Segment segment;
    util::TimePoint first_sent{};
    util::TimePoint last_sent{};
    std::uint32_t transmissions{0};
  };

  struct PendingMessage {
    std::uint32_t message_id{0};
    std::uint16_t seg_count{0};
    std::uint32_t wire_size{0};
    std::uint64_t sent_us{0};
    std::map<std::uint16_t, Payload> chunks;
    bool complete() const { return chunks.size() == seg_count; }
  };

  void on_packet(const ProtocolHeader& header, ByteReader body, LinkDirection via,
                 util::TimePoint now);
  void on_data(ByteReader body, util::TimePoint now);
  void update_hol_obs(util::TimePoint now);
  void on_ack(ByteReader body, util::TimePoint now);
  void transmit_segment(const Segment& seg, util::TimePoint now, bool retransmission);
  void send_ack(util::TimePoint now);
  void update_rtt(util::Duration sample);
  util::Duration current_rto() const;
  static void encode_data(ByteWriter& w, const Segment& seg);
  static std::optional<Segment> decode_data(ByteReader& r);

  PacketRouter* router_;
  Channel* channel_;
  std::uint16_t stream_id_;
  LinkDirection data_dir_;
  StreamConfig config_;

  // Sender state.
  std::uint32_t next_seq_{0};
  std::uint32_t next_message_id_{0};
  std::deque<Segment> send_queue_;           ///< not yet transmitted
  std::map<std::uint32_t, InFlight> in_flight_;  ///< seq -> unacked segment
  std::uint32_t last_cum_ack_{0};
  std::uint32_t dup_ack_count_{0};
  std::uint32_t rto_backoff_{0};
  units::Millis srtt_{};
  units::Millis rttvar_{};
  bool rtt_valid_{false};

  // Receiver state.
  std::uint32_t rcv_next_{0};                        ///< next expected seq
  std::map<std::uint32_t, Segment> out_of_order_;    ///< seq -> buffered
  std::map<std::uint32_t, PendingMessage> reassembly_;
  std::uint32_t next_deliver_message_{0};
  std::deque<DeliveredMessage> delivered_;
  bool ack_pending_{false};
  util::TimePoint ack_due_{};
  std::uint64_t last_data_ts_us_{0};

#if RDSIM_OBS
  // Head-of-line stall tracking (observation only — never read by the
  // protocol). A stall is any period with out-of-order segments buffered;
  // the span and the microsecond counter are recorded together when the
  // stall closes, so the counter equals the span-duration sum exactly.
  bool hol_open_{false};
  util::TimePoint hol_begin_{};
#endif

  StreamStats stats_;
};

}  // namespace rdsim::net
