// NETEM: network emulation queueing discipline.
//
// Re-implements the semantics of the Linux `sch_netem` discipline at user
// level on the shared virtual clock. Supported, as in the paper (§II.C):
// fixed and variable delay (jitter with correlation and a choice of
// distributions), random and Gilbert–Elliott packet loss, duplication,
// corruption, re-ordering, rate control, and a queue limit.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/qdisc.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace rdsim::net {

/// Jitter distribution, mirroring netem's delay distribution tables.
enum class DelayDistribution : std::uint8_t {
  kUniform,        ///< uniform in [-jitter, +jitter] (netem default)
  kNormal,         ///< truncated normal, sigma = jitter
  kPareto,         ///< heavy-tailed, scaled to jitter
  kParetoNormal,   ///< netem's paretonormal mixture (0.75 normal + 0.25 pareto)
  kTable,          ///< custom empirical table (netem's /usr/lib/tc/*.dist)
};

/// An empirical jitter distribution in the format of netem's `.dist` files:
/// a quantized inverse CDF whose entries are deviates in units of sigma,
/// scaled by 1/8192 (NETEM_DIST_SCALE). Sampling picks a uniformly random
/// entry — exactly what the kernel does.
class DelayDistributionTable {
 public:
  /// Raw table values, each `value / 8192.0` being the deviate in sigmas.
  static DelayDistributionTable from_values(std::vector<std::int16_t> values);

  /// Parse the textual `.dist` format: whitespace-separated integers,
  /// '#' comments. Throws std::invalid_argument when empty/malformed.
  static DelayDistributionTable parse(const std::string& text);

  /// Deviate in units of the configured jitter, for a uniform u in [0,1).
  double sample(double u) const;

  std::size_t size() const { return values_.size(); }

 private:
  std::vector<std::int16_t> values_;
};

/// Two-state Gilbert–Elliott loss model parameters (netem `loss gemodel`).
struct GilbertElliott {
  units::Probability p{};                                ///< P(good -> bad)
  units::Probability r{units::Probability::unchecked(1.0)};  ///< P(bad -> good)
  units::Probability h{};  ///< loss probability in the good state (1-k in tc terms)
  units::Probability k{units::Probability::unchecked(1.0)};  ///< loss prob., bad state
};

/// Full parameter set of one netem rule, the analogue of a
/// `tc qdisc add dev lo root netem ...` command line.
struct NetemConfig {
  // Delay.
  util::Duration delay{};             ///< base one-way delay
  util::Duration jitter{};            ///< +/- variation
  units::Probability delay_correlation{};  ///< correlation of successive jitter
  DelayDistribution distribution{DelayDistribution::kUniform};
  std::shared_ptr<const DelayDistributionTable> distribution_table{};  ///< kTable

  // Loss.
  units::Probability loss_probability{};  ///< independent random loss
  units::Probability loss_correlation{};  ///< correlation of successive losses
  std::optional<GilbertElliott> gemodel{};  ///< takes precedence when set

  // Duplication / corruption.
  units::Probability duplicate_probability{};
  units::Probability duplicate_correlation{};
  units::Probability corrupt_probability{};
  units::Probability corrupt_correlation{};

  // Reordering: with probability `reorder_probability`, every `reorder_gap`-th
  // packet is transmitted immediately while the rest take the full delay.
  units::Probability reorder_probability{};
  units::Probability reorder_correlation{};
  std::uint32_t reorder_gap{1};

  // Rate control; zero rate disables the shaper.
  units::BytesPerSecond rate{};

  // Queue limit in packets (netem default 1000).
  std::size_t limit{1000};

  bool has_delay() const { return delay > util::Duration{} || jitter > util::Duration{}; }
  bool has_loss() const {
    return loss_probability > units::Probability{} || gemodel.has_value();
  }

  /// Render back to a `tc`-style argument string (for logs).
  std::string describe() const;
};

/// The netem discipline proper.
class NetemQdisc final : public Qdisc {
 public:
  explicit NetemQdisc(NetemConfig config, std::uint64_t seed = 1);

  /// Replace parameters in place (tc qdisc change); queued packets keep the
  /// release times they were assigned under the old parameters, exactly as
  /// the kernel behaves.
  void change(NetemConfig config) { config_ = std::move(config); }

  const NetemConfig& config() const { return config_; }

  void enqueue(Packet packet, util::TimePoint now) override;
  void dequeue_ready(util::TimePoint now, PacketSink& sink) override;
  std::optional<util::TimePoint> next_event_at() const override;
  std::size_t backlog() const override { return queue_.size(); }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  void clear() override {
    queue_.clear();
    backlog_bytes_ = 0;
  }
  const QdiscStats& stats() const override { return stats_; }
  std::string kind() const override { return "netem"; }

 private:
  /// AR(1)-correlated uniform deviate in [0,1), one state per fault class.
  double correlated_uniform(double correlation, double& state);
  util::Duration sample_delay();
  bool sample_loss();
  double sample_jitter_unit();  ///< in [-1, 1], per the configured distribution

  struct Scheduled {
    util::TimePoint release;
    std::uint64_t seq;  ///< tie-break to keep FIFO order for equal times
    Packet packet;
    bool operator<(const Scheduled& other) const {
      if (release != other.release) return release < other.release;
      return seq < other.seq;
    }
  };

  /// Min-heap comparator: the element releasing *later* sorts first so that
  /// std::push_heap/pop_heap keep the earliest (release, seq) at the root.
  struct ScheduledAfter {
    bool operator()(const Scheduled& a, const Scheduled& b) const { return b < a; }
  };

  void schedule(Packet packet, util::TimePoint release);

  NetemConfig config_;
  util::Random rng_;
  /// Timer structure: binary min-heap on (release, seq). The seq tie-break
  /// makes the pop order identical to the kernel's tfifo (stable FIFO among
  /// equal release times) and to the sorted-vector implementation this
  /// replaced — O(log n) insertion instead of O(n).
  std::vector<Scheduled> queue_;
  std::uint64_t backlog_bytes_{0};
  std::uint64_t seq_{0};
  std::uint64_t since_reorder_{0};

  // Correlation states.
  double delay_corr_state_{0.5};
  bool last_loss_{false};
  double dup_corr_state_{0.5};
  double corrupt_corr_state_{0.5};
  double reorder_corr_state_{0.5};
  bool ge_in_bad_state_{false};

  // Rate-control bookkeeping: when the previous packet finishes serializing.
  util::TimePoint last_tx_finish_{};

  QdiscStats stats_;
};

}  // namespace rdsim::net
