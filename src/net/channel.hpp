// Bidirectional communication channel over an emulated network device.
//
// Mirrors the paper's setup (§V.D): CARLA server and client both run on the
// same host and exchange traffic over the loopback interface, so a single
// egress qdisc on `lo` disturbs *both* the downlink video and the uplink
// driving commands. A Channel therefore owns one device in a TrafficControl
// table and pushes packets from both directions through the same root qdisc;
// delivered packets are routed to the destination endpoint's inbox.
//
// The packet path is allocation-free in steady state: senders build payloads
// in buffers leased from the channel's PayloadPool (acquire_payload), move
// the finished Packet into send(), and receivers hand parsed buffers back
// via recycle(). step() consults the qdisc's next_event_at() and returns
// without touching the queue while nothing can be released yet.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "net/payload_pool.hpp"
#include "net/tc.hpp"
#include "util/time.hpp"

namespace rdsim::net {

/// Per-direction delivery statistics.
struct DirectionStats {
  std::uint64_t packets_sent{0};
  std::uint64_t packets_delivered{0};
  std::uint64_t bytes_sent{0};
  util::Duration total_latency{};  ///< sum over delivered packets

  units::Millis mean_latency() const {
    return packets_delivered > 0
               ? units::Millis{total_latency.to_millis() /
                               static_cast<double>(packets_delivered)}
               : units::Millis{};
  }
};

class Channel {
 public:
  /// `tc` is borrowed and must outlive the channel. `device` names the
  /// emulated interface ("lo" in the paper's setup).
  Channel(TrafficControl& tc, std::string device);

  /// Queue `packet` for transmission at `now`. The channel assigns the
  /// packet id and flow from `dir`; everything else (payload, wire_size)
  /// is the caller's. This is the primary, allocation-free entry point.
  /// Returns the assigned packet id.
  std::uint64_t send(LinkDirection dir, Packet&& packet, util::TimePoint now);

  /// Convenience overload that wraps `payload` in a fresh Packet. Kept for
  /// tests and tooling; production senders should lease a buffer with
  /// acquire_payload() and use the Packet&& overload so buffers recycle.
  std::uint64_t send(LinkDirection dir, Payload payload, std::uint32_t wire_size,
                     util::TimePoint now);

  /// Move packets that have cleared the qdisc into the destination inboxes.
  /// Call once per simulation step (idempotent within a step). Early-outs
  /// without touching the qdisc while next_event_at() is in the future.
  void step(util::TimePoint now);

  /// Pop the next delivered packet travelling in `dir`, if any.
  std::optional<Packet> receive(LinkDirection dir);

  bool has_pending(LinkDirection dir) const;
  std::size_t inbox_size(LinkDirection dir) const;

  const DirectionStats& stats(LinkDirection dir) const;
  const std::string& device() const { return device_; }
  TrafficControl& traffic_control() { return *tc_; }

  /// Packets still inside the qdisc (in flight).
  std::size_t in_flight() const { return tc_->root(device_).backlog(); }

  /// Earliest instant the qdisc could release a packet; nullopt while idle.
  std::optional<util::TimePoint> next_event_at() const {
    return tc_->root(device_).next_event_at();
  }

  /// Lease a cleared payload buffer with capacity >= size_hint.
  Payload acquire_payload(std::size_t size_hint) { return pool_.acquire(size_hint); }

  /// Hand a parsed payload buffer back for reuse by future sends.
  void recycle(Payload&& payload) { pool_.release(std::move(payload)); }

  const PayloadPool& pool() const { return pool_; }

 private:
  class DeliverySink;

  void deliver(Packet&& packet, util::TimePoint now);
  std::deque<Packet>& inbox(LinkDirection dir);
  const std::deque<Packet>& inbox(LinkDirection dir) const;
  DirectionStats& mutable_stats(LinkDirection dir);

  TrafficControl* tc_;
  std::string device_;
  std::uint64_t next_id_{1};
  std::deque<Packet> to_operator_;  ///< downlink deliveries
  std::deque<Packet> to_vehicle_;   ///< uplink deliveries
  DirectionStats down_stats_;
  DirectionStats up_stats_;
  PayloadPool pool_;
};

}  // namespace rdsim::net
