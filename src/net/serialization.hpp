// Little-endian byte serialization for protocol messages.
//
// Deliberately tiny: fixed-width integers, doubles, strings and blobs.
// Readers are bounds-checked and report truncation instead of crashing,
// because the corrupt qdisc can hand us damaged bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace rdsim::net {

class ByteWriter {
 public:
  ByteWriter() = default;

  /// Reuse a leased buffer (e.g. from a PayloadPool): keeps its capacity,
  /// starts writing from offset zero.
  explicit ByteWriter(std::vector<std::uint8_t>&& reuse) : buf_{std::move(reuse)} {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i32(std::int32_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    append(b.data(), b.size());
  }
  /// Append raw bytes without a length prefix.
  void raw(const std::uint8_t* p, std::size_t n) { append(p, n); }

  /// Overwrite 4 already-written bytes at `offset` (for checksum back-patching).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    std::memcpy(buf_.data() + offset, &v, sizeof v);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  /// Empty view; every read fails with ok() == false.
  ByteReader() : buf_{nullptr}, size_{0} {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_{buf.data()}, size_{buf.size()} {}
  ByteReader(const std::uint8_t* data, std::size_t size) : buf_{data}, size_{size} {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> b(buf_ + pos_, buf_ + pos_ + n);
    pos_ += n;
    return b;
  }

 private:
  template <typename T>
  T get() {
    T v{};
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return v;
    }
    std::memcpy(&v, buf_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_{0};
  bool ok_{true};
};

}  // namespace rdsim::net
