// Demultiplexes packets arriving at the two channel endpoints to the
// transport streams that own them.
//
// Both endpoints' inboxes carry mixed traffic (the video stream's DATA and
// the command stream's ACKs both arrive at the operator, for instance), so
// every protocol packet starts with a common header:
//   u16 stream_id | u8 type | u32 checksum-of-rest
// The checksum models the TCP checksum: packets damaged by the corrupt
// qdisc fail verification and are treated as lost, which reproduces the
// paper's observation (§V.C) that corruption faults have no distinct
// user-visible effect under a reliable transport.
//
// Parsing is zero-copy: handlers receive a bounds-checked ByteReader view
// into the packet payload instead of an owning copy of the body, and the
// router hands the payload buffer back to the channel's pool after the
// handler returns.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/channel.hpp"
#include "net/serialization.hpp"
#include "util/time.hpp"

namespace rdsim::net {

enum class SegmentType : std::uint8_t { kData = 0, kAck = 1, kDatagram = 2 };

/// FNV-1a over a byte range; the protocol's checksum primitive. Pass a
/// previous result as `seed` to continue hashing across discontiguous ranges.
std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 2166136261u);

/// Common header helpers shared by the transports.
struct ProtocolHeader {
  std::uint16_t stream_id{0};
  SegmentType type{SegmentType::kData};

  static constexpr std::size_t kSize = 2 + 1 + 4;  // stream, type, checksum
  static constexpr std::size_t kChecksumOffset = 3;

  /// In-place framing for pooled buffers: begin() writes the header with a
  /// zero checksum placeholder, the caller appends the body to the same
  /// writer, and finish() back-patches the checksum and releases the buffer.
  /// Byte-for-byte identical to seal() without the intermediate body copy.
  static void begin(ByteWriter& w, std::uint16_t stream_id, SegmentType type);
  static Payload finish(ByteWriter& w);

  /// Serialize header + body, computing the checksum over `body`.
  static Payload seal(std::uint16_t stream_id, SegmentType type, const Payload& body);
};

/// Result of parsing and verifying a raw packet payload.
struct ParsedPacket {
  ProtocolHeader header;
  Payload body;
};

/// A verified packet viewed in place: `body` reads directly from the packet
/// payload and is valid only while that payload is alive.
struct PacketView {
  ProtocolHeader header;
  ByteReader body;
};

/// Parse and verify without copying; nullopt on checksum failure/truncation.
std::optional<PacketView> open_packet_view(const Payload& packet_payload);

/// Parse and verify; returns an owning copy of the body on success, nullopt
/// on a checksum failure or truncation. Prefer open_packet_view on hot paths.
std::optional<ParsedPacket> open_packet(const Payload& packet_payload);

/// Polls a channel and routes verified packets to registered streams.
class PacketRouter {
 public:
  explicit PacketRouter(Channel& channel) : channel_{&channel} {}

  /// `body` views the packet payload and is only valid during the call;
  /// handlers copy out whatever must outlive it.
  using Handler = std::function<void(const ProtocolHeader&, ByteReader body,
                                     LinkDirection arrived_via, util::TimePoint now)>;

  void register_stream(std::uint16_t stream_id, Handler handler);

  /// Steps the channel, then drains both inboxes. Packets failing checksum
  /// verification are counted and dropped. Payload buffers are recycled to
  /// the channel pool once handled.
  void poll(util::TimePoint now);

  std::uint64_t checksum_failures() const { return checksum_failures_; }
  std::uint64_t unroutable() const { return unroutable_; }
  Channel& channel() { return *channel_; }

 private:
  void drain(LinkDirection dir, util::TimePoint now);

  Channel* channel_;
  std::map<std::uint16_t, Handler> handlers_;
  std::uint64_t checksum_failures_{0};
  std::uint64_t unroutable_{0};
};

}  // namespace rdsim::net
