// Demultiplexes packets arriving at the two channel endpoints to the
// transport streams that own them.
//
// Both endpoints' inboxes carry mixed traffic (the video stream's DATA and
// the command stream's ACKs both arrive at the operator, for instance), so
// every protocol packet starts with a common header:
//   u16 stream_id | u8 type | u32 checksum-of-rest
// The checksum models the TCP checksum: packets damaged by the corrupt
// qdisc fail verification and are treated as lost, which reproduces the
// paper's observation (§V.C) that corruption faults have no distinct
// user-visible effect under a reliable transport.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/channel.hpp"

namespace rdsim::net {

enum class SegmentType : std::uint8_t { kData = 0, kAck = 1, kDatagram = 2 };

/// FNV-1a over a byte range; the protocol's checksum primitive.
std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size);

/// Common header helpers shared by the transports.
struct ProtocolHeader {
  std::uint16_t stream_id{0};
  SegmentType type{SegmentType::kData};

  static constexpr std::size_t kSize = 2 + 1 + 4;  // stream, type, checksum

  /// Serialize header + body, computing the checksum over `body`.
  static Payload seal(std::uint16_t stream_id, SegmentType type, const Payload& body);
};

/// Result of parsing and verifying a raw packet payload.
struct ParsedPacket {
  ProtocolHeader header;
  Payload body;
};

/// Parse and verify; returns the body on success, nullopt on a checksum
/// failure or truncation.
std::optional<ParsedPacket> open_packet(const Payload& packet_payload);

/// Polls a channel and routes verified packets to registered streams.
class PacketRouter {
 public:
  explicit PacketRouter(Channel& channel) : channel_{&channel} {}

  using Handler = std::function<void(const ProtocolHeader&, Payload body,
                                     LinkDirection arrived_via, util::TimePoint now)>;

  void register_stream(std::uint16_t stream_id, Handler handler);

  /// Steps the channel, then drains both inboxes. Packets failing checksum
  /// verification are counted and dropped.
  void poll(util::TimePoint now);

  std::uint64_t checksum_failures() const { return checksum_failures_; }
  std::uint64_t unroutable() const { return unroutable_; }
  Channel& channel() { return *channel_; }

 private:
  void drain(LinkDirection dir, util::TimePoint now);

  Channel* channel_;
  std::map<std::uint16_t, Handler> handlers_;
  std::uint64_t checksum_failures_{0};
  std::uint64_t unroutable_{0};
};

}  // namespace rdsim::net
