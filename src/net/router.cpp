#include "net/router.hpp"

#include "check/contracts.hpp"
#include "util/time.hpp"

namespace rdsim::net {

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size, std::uint32_t seed) {
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

namespace {

/// Checksum over everything the header protects: stream id, type, body —
/// like the TCP checksum, any single corrupted bit invalidates the packet.
/// The protected prefix {stream lo, stream hi, type} is exactly the first
/// three serialized header bytes, so a sealed packet can be verified (and
/// back-patched) straight from its buffer.
std::uint32_t packet_checksum(const std::uint8_t* packet, std::size_t size) {
  const std::uint32_t h = fnv1a(packet, ProtocolHeader::kChecksumOffset);
  return fnv1a(packet + ProtocolHeader::kSize, size - ProtocolHeader::kSize, h);
}

}  // namespace

void ProtocolHeader::begin(ByteWriter& w, std::uint16_t stream_id, SegmentType type) {
  RDSIM_REQUIRE(w.size() == 0, "ProtocolHeader::begin expects an empty writer");
  w.u16(stream_id);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(0);  // checksum placeholder, patched by finish()
}

Payload ProtocolHeader::finish(ByteWriter& w) {
  RDSIM_REQUIRE(w.size() >= kSize, "ProtocolHeader::finish before begin");
  w.patch_u32(kChecksumOffset, packet_checksum(w.data().data(), w.size()));
  return w.take();
}

Payload ProtocolHeader::seal(std::uint16_t stream_id, SegmentType type,
                             const Payload& body) {
  ByteWriter w;
  begin(w, stream_id, type);
  w.raw(body.data(), body.size());
  return finish(w);
}

std::optional<PacketView> open_packet_view(const Payload& packet_payload) {
  if (packet_payload.size() < ProtocolHeader::kSize) return std::nullopt;
  ByteReader r{packet_payload};
  PacketView view;
  view.header.stream_id = r.u16();
  const std::uint8_t type = r.u8();
  const std::uint32_t checksum = r.u32();
  if (!r.ok()) return std::nullopt;
  if (packet_checksum(packet_payload.data(), packet_payload.size()) != checksum) {
    return std::nullopt;
  }
  if (type > static_cast<std::uint8_t>(SegmentType::kDatagram)) return std::nullopt;
  view.header.type = static_cast<SegmentType>(type);
  view.body = ByteReader{packet_payload.data() + ProtocolHeader::kSize,
                         packet_payload.size() - ProtocolHeader::kSize};
  return view;
}

std::optional<ParsedPacket> open_packet(const Payload& packet_payload) {
  const auto view = open_packet_view(packet_payload);
  if (!view) return std::nullopt;
  ParsedPacket parsed;
  parsed.header = view->header;
  parsed.body.assign(packet_payload.begin() + ProtocolHeader::kSize,
                     packet_payload.end());
  return parsed;
}

void PacketRouter::register_stream(std::uint16_t stream_id, Handler handler) {
  handlers_[stream_id] = std::move(handler);
}

void PacketRouter::poll(util::TimePoint now) {
  channel_->step(now);
  drain(LinkDirection::kDownlink, now);
  drain(LinkDirection::kUplink, now);
}

void PacketRouter::drain(LinkDirection dir, util::TimePoint now) {
  while (auto packet = channel_->receive(dir)) {
    if (const auto view = open_packet_view(packet->payload); !view) {
      ++checksum_failures_;
    } else if (const auto it = handlers_.find(view->header.stream_id);
               it == handlers_.end()) {
      ++unroutable_;
    } else {
      it->second(view->header, view->body, dir, now);
    }
    // The view above reads from packet->payload; recycle only after handling.
    channel_->recycle(std::move(packet->payload));
  }
}

}  // namespace rdsim::net
