#include "net/router.hpp"

#include "net/serialization.hpp"

namespace rdsim::net {

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

namespace {

/// Checksum over everything the header protects: stream id, type, body —
/// like the TCP checksum, any single corrupted bit invalidates the packet.
std::uint32_t packet_checksum(std::uint16_t stream_id, std::uint8_t type,
                              const Payload& body) {
  const std::uint8_t prefix[3] = {static_cast<std::uint8_t>(stream_id & 0xff),
                                  static_cast<std::uint8_t>(stream_id >> 8), type};
  std::uint32_t h = fnv1a(prefix, sizeof prefix);
  for (std::uint8_t b : body) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

}  // namespace

Payload ProtocolHeader::seal(std::uint16_t stream_id, SegmentType type,
                             const Payload& body) {
  ByteWriter w;
  w.u16(stream_id);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(packet_checksum(stream_id, static_cast<std::uint8_t>(type), body));
  Payload out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<ParsedPacket> open_packet(const Payload& packet_payload) {
  if (packet_payload.size() < ProtocolHeader::kSize) return std::nullopt;
  ByteReader r{packet_payload};
  ParsedPacket parsed;
  parsed.header.stream_id = r.u16();
  const std::uint8_t type = r.u8();
  const std::uint32_t checksum = r.u32();
  if (!r.ok()) return std::nullopt;
  parsed.body.assign(packet_payload.begin() + ProtocolHeader::kSize, packet_payload.end());
  if (packet_checksum(parsed.header.stream_id, type, parsed.body) != checksum) {
    return std::nullopt;
  }
  if (type > static_cast<std::uint8_t>(SegmentType::kDatagram)) return std::nullopt;
  parsed.header.type = static_cast<SegmentType>(type);
  return parsed;
}

void PacketRouter::register_stream(std::uint16_t stream_id, Handler handler) {
  handlers_[stream_id] = std::move(handler);
}

void PacketRouter::poll(util::TimePoint now) {
  channel_->step(now);
  drain(LinkDirection::kDownlink, now);
  drain(LinkDirection::kUplink, now);
}

void PacketRouter::drain(LinkDirection dir, util::TimePoint now) {
  while (auto packet = channel_->receive(dir)) {
    auto parsed = open_packet(packet->payload);
    if (!parsed) {
      ++checksum_failures_;
      continue;
    }
    const auto it = handlers_.find(parsed->header.stream_id);
    if (it == handlers_.end()) {
      ++unroutable_;
      continue;
    }
    it->second(parsed->header, std::move(parsed->body), dir, now);
  }
}

}  // namespace rdsim::net
