#include "net/reliable_stream.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "check/contracts.hpp"
#include "net/serialization.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "util/time.hpp"

namespace rdsim::net {

namespace {
LinkDirection reverse(LinkDirection dir) {
  return dir == LinkDirection::kDownlink ? LinkDirection::kUplink
                                         : LinkDirection::kDownlink;
}
constexpr std::uint32_t kAckWireSize = 60;
/// Fixed bytes of the DATA segment encoding before the chunk:
/// seq u32 + message_id u32 + seg_index u16 + seg_count u16 +
/// message_wire_size u32 + message_sent_us u64 + chunk length prefix u32.
constexpr std::size_t kDataEncodingBytes = 4 + 4 + 2 + 2 + 4 + 8 + 4;
/// ACK encoding ceiling: cum_ack u32 + sack count u32 + <=8 SACKs + ts u64.
constexpr std::size_t kMaxSackHints = 8;
constexpr std::size_t kAckEncodingBytes = 4 + 4 + kMaxSackHints * 4 + 8;
}  // namespace

ReliableStream::ReliableStream(PacketRouter& router, Channel& channel,
                               std::uint16_t stream_id, LinkDirection data_direction,
                               StreamConfig config)
    : router_{&router},
      channel_{&channel},
      stream_id_{stream_id},
      data_dir_{data_direction},
      config_{config} {
  router_->register_stream(
      stream_id_, [this](const ProtocolHeader& h, ByteReader body, LinkDirection via,
                         util::TimePoint now) { on_packet(h, body, via, now); });
}

std::uint32_t ReliableStream::send_message(Payload bytes, std::uint32_t declared_wire_size,
                                           util::TimePoint now) {
  const std::uint32_t message_id = next_message_id_++;
  const std::uint32_t wire =
      std::max<std::uint32_t>(declared_wire_size, static_cast<std::uint32_t>(bytes.size()));
  const std::uint16_t seg_count = static_cast<std::uint16_t>(
      std::max<std::uint32_t>(1, (wire + config_.mtu - 1) / config_.mtu));

  // Slice the actual payload evenly across segments so that losing any one
  // segment blocks the whole message, as with real TCP segmentation.
  const std::size_t total = bytes.size();
  for (std::uint16_t i = 0; i < seg_count; ++i) {
    Segment seg;
    seg.seq = next_seq_++;
    seg.message_id = message_id;
    seg.seg_index = i;
    seg.seg_count = seg_count;
    seg.message_wire_size = wire;
    seg.message_sent_us = static_cast<std::uint64_t>(now.count_micros());
    const std::size_t lo = total * i / seg_count;
    const std::size_t hi = total * (i + 1) / seg_count;
    seg.chunk.assign(bytes.begin() + static_cast<std::ptrdiff_t>(lo),
                     bytes.begin() + static_cast<std::ptrdiff_t>(hi));
    send_queue_.push_back(std::move(seg));
  }
  ++stats_.messages_sent;
  return message_id;
}

void ReliableStream::encode_data(ByteWriter& w, const Segment& seg) {
  w.u32(seg.seq);
  w.u32(seg.message_id);
  w.u16(seg.seg_index);
  w.u16(seg.seg_count);
  w.u32(seg.message_wire_size);
  w.u64(seg.message_sent_us);
  w.bytes(seg.chunk);
}

std::optional<ReliableStream::Segment> ReliableStream::decode_data(ByteReader& r) {
  Segment seg;
  seg.seq = r.u32();
  seg.message_id = r.u32();
  seg.seg_index = r.u16();
  seg.seg_count = r.u16();
  seg.message_wire_size = r.u32();
  seg.message_sent_us = r.u64();
  seg.chunk = r.bytes();
  if (!r.ok() || seg.seg_count == 0 || seg.seg_index >= seg.seg_count) return std::nullopt;
  return seg;
}

void ReliableStream::transmit_segment(const Segment& seg, util::TimePoint now,
                                      bool retransmission) {
  // Frame the segment directly in a pooled buffer: header placeholder, DATA
  // encoding, checksum back-patch — no intermediate body copy.
  ByteWriter w{channel_->acquire_payload(ProtocolHeader::kSize + kDataEncodingBytes +
                                         seg.chunk.size())};
  ProtocolHeader::begin(w, stream_id_, SegmentType::kData);
  encode_data(w, seg);
  Packet p;
  p.payload = ProtocolHeader::finish(w);
  p.wire_size = seg.message_wire_size / seg.seg_count + config_.header_overhead;
  channel_->send(data_dir_, std::move(p), now);

  auto [it, inserted] = in_flight_.try_emplace(seg.seq);
  if (inserted) {
    it->second.segment = seg;
    it->second.first_sent = now;
  }
  it->second.last_sent = now;
  ++it->second.transmissions;
  if (!retransmission) ++stats_.segments_sent;
  RDSIM_OBS_COUNT(obs::metric::kStreamSegmentsTx, 1);
  if (retransmission) {
    RDSIM_OBS_COUNT(obs::metric::kStreamRetransmittedSegments, 1);
  }
}

void ReliableStream::step(util::TimePoint now) {
  // Transmit fresh segments while the window allows.
  while (!send_queue_.empty() && in_flight_.size() < config_.window_segments) {
    Segment seg = std::move(send_queue_.front());
    send_queue_.pop_front();
    transmit_segment(seg, now, /*retransmission=*/false);
  }

  // RTO: the timer runs on the earliest outstanding segment, per TCP. On
  // expiry we resend the head plus a small batch of other stale segments —
  // the practical effect of SACK-based recovery resuming after a timeout.
  if (!in_flight_.empty()) {
    const util::Duration rto = current_rto();
    if (now - in_flight_.begin()->second.last_sent >= rto) {
      int budget = 4;
      for (auto& [seq, inflight] : in_flight_) {
        if (budget == 0) break;
        if (now - inflight.last_sent < rto) continue;
        transmit_segment(inflight.segment, now, /*retransmission=*/true);
        --budget;
      }
      ++stats_.retransmits_rto;
      RDSIM_OBS_COUNT(obs::metric::kStreamRtoEvents, 1);
      rto_backoff_ = std::min(rto_backoff_ + 1, 3u);
    }
  } else {
    rto_backoff_ = 0;
  }

  // Delayed ack timer.
  if (ack_pending_ && now >= ack_due_) send_ack(now);
}

util::Duration ReliableStream::current_rto() const {
  util::Duration base = config_.rto_initial;
  if (rtt_valid_) {
    const units::Millis rto = srtt_ + units::Millis{std::max(4.0 * rttvar_.value(), 1.0)};
    base = rto.to_duration();
  }
  base = std::max(base, config_.rto_min);
  for (std::uint32_t i = 0; i < rto_backoff_; ++i) base = base * 2;
  return std::min(base, config_.rto_max);
}

void ReliableStream::update_rtt(util::Duration sample) {
  const units::Millis r = units::Millis::from_duration(sample);
  if (!rtt_valid_) {
    srtt_ = r;
    rttvar_ = r / 2.0;
    rtt_valid_ = true;
  } else {
    // RFC 6298 EWMA constants.
    rttvar_ = units::Millis{0.75 * rttvar_.value() +
                            0.25 * std::fabs(srtt_.value() - r.value())};
    srtt_ = 0.875 * srtt_ + 0.125 * r;
  }
  stats_.srtt = srtt_;
  stats_.rto = units::Millis::from_duration(current_rto());
}

void ReliableStream::on_packet(const ProtocolHeader& header, ByteReader body,
                               LinkDirection via, util::TimePoint now) {
  if (header.type == SegmentType::kData && via == data_dir_) {
    on_data(body, now);
  } else if (header.type == SegmentType::kAck && via == reverse(data_dir_)) {
    on_ack(body, now);
  }
  // Anything else (e.g. a duplicated packet that re-arrives on the wrong
  // path) is silently ignored, as a real socket would.
}

void ReliableStream::on_data(ByteReader body, util::TimePoint now) {
  auto seg = decode_data(body);
  if (!seg) return;
  RDSIM_OBS_COUNT(obs::metric::kStreamSegmentsRx, 1);

  if (seg->seq < rcv_next_ || out_of_order_.count(seg->seq) != 0) {
    // Duplicate (retransmission that raced the original, or netem duplicate).
    ++stats_.stale_segments;
    RDSIM_OBS_COUNT(obs::metric::kStreamStaleSegments, 1);
  } else {
    last_data_ts_us_ = seg->message_sent_us;
    out_of_order_.emplace(seg->seq, std::move(*seg));
    // Absorb the contiguous prefix.
    while (true) {
      auto it = out_of_order_.find(rcv_next_);
      if (it == out_of_order_.end()) break;
      Segment s = std::move(it->second);
      out_of_order_.erase(it);
      ++rcv_next_;

      auto [mit, _] = reassembly_.try_emplace(s.message_id);
      PendingMessage& pm = mit->second;
      pm.message_id = s.message_id;
      pm.seg_count = s.seg_count;
      pm.wire_size = s.message_wire_size;
      pm.sent_us = s.message_sent_us;
      pm.chunks.emplace(s.seg_index, std::move(s.chunk));
    }
    // Deliver complete messages in id order (stream order).
    while (true) {
      auto mit = reassembly_.find(next_deliver_message_);
      if (mit == reassembly_.end() || !mit->second.complete()) break;
      DeliveredMessage msg;
      RDSIM_INVARIANT(mit->second.message_id == next_deliver_message_,
                      "reliable stream must deliver message ids contiguously");
      msg.message_id = mit->second.message_id;
      msg.sent_at = util::TimePoint::from_micros(
          static_cast<std::int64_t>(mit->second.sent_us));
      msg.delivered_at = now;
      for (auto& [idx, chunk] : mit->second.chunks) {
        msg.bytes.insert(msg.bytes.end(), chunk.begin(), chunk.end());
      }
      reassembly_.erase(mit);
      delivered_.push_back(std::move(msg));
      ++next_deliver_message_;
      ++stats_.messages_delivered;
    }
  }

  update_hol_obs(now);

  if (config_.ack_delay.is_zero()) {
    send_ack(now);
  } else if (!ack_pending_) {
    ack_pending_ = true;
    ack_due_ = now + config_.ack_delay;
  }
}

void ReliableStream::update_hol_obs(util::TimePoint now) {
#if RDSIM_OBS
  const bool stalled = !out_of_order_.empty();
  if (stalled && !hol_open_) {
    hol_open_ = true;
    hol_begin_ = now;
  } else if (!stalled && hol_open_) {
    hol_open_ = false;
    if (obs::Context* ctx = obs::Context::current()) {
      // Record span and counter from the same endpoints, so the microsecond
      // total always equals the sum of traced stall-span durations.
      const std::size_t span =
          ctx->span_open(obs::metric::kStreamHolStallSpan, hol_begin_, stream_id_);
      ctx->span_close(span, now);
      ctx->count(obs::metric::kStreamHolStallMicros,
                 static_cast<std::uint64_t>((now - hol_begin_).count_micros()));
      ctx->count(obs::metric::kStreamHolStallSpan, 1);
    }
  }
#else
  (void)now;
#endif
}

void ReliableStream::send_ack(util::TimePoint now) {
  ByteWriter w{channel_->acquire_payload(ProtocolHeader::kSize + kAckEncodingBytes)};
  ProtocolHeader::begin(w, stream_id_, SegmentType::kAck);
  w.u32(rcv_next_);
  // SACK hints: up to 8 out-of-order sequence numbers.
  const std::uint32_t sack_count = static_cast<std::uint32_t>(
      std::min<std::size_t>(out_of_order_.size(), kMaxSackHints));
  w.u32(sack_count);
  std::uint32_t written = 0;
  for (const auto& [seq, _] : out_of_order_) {
    if (written++ >= sack_count) break;
    w.u32(seq);
  }
  w.u64(last_data_ts_us_);
  Packet p;
  p.payload = ProtocolHeader::finish(w);
  p.wire_size = kAckWireSize;
  channel_->send(reverse(data_dir_), std::move(p), now);
  ++stats_.acks_sent;
  ack_pending_ = false;
}

void ReliableStream::on_ack(ByteReader r, util::TimePoint now) {
  const std::uint32_t cum_ack = r.u32();
  const std::uint32_t sack_count = r.u32();
  // Our sender never writes more than kMaxSackHints; a larger count is a
  // malformed packet, discarded just as a truncated one would be.
  if (sack_count > kMaxSackHints) return;
  std::array<std::uint32_t, kMaxSackHints> sack_buf{};
  for (std::uint32_t i = 0; i < sack_count && r.ok(); ++i) sack_buf[i] = r.u32();
  r.u64();  // echoed timestamp, unused: RTT comes from transmission records
  if (!r.ok()) return;
  const auto sacks_begin = sack_buf.begin();
  const auto sacks_end = sack_buf.begin() + sack_count;

  if (cum_ack > last_cum_ack_) {
    // A valid cumulative ACK can never acknowledge sequences we have not
    // sent; a corrupt ACK that decodes plausibly would break window
    // accounting from here on.
    RDSIM_INVARIANT(cum_ack <= next_seq_,
                    "cumulative ACK must not exceed the highest sent sequence");
    // New data acknowledged: clear in-flight prefix and sample RTT from any
    // segment transmitted exactly once (Karn's algorithm).
    for (auto it = in_flight_.begin(); it != in_flight_.end() && it->first < cum_ack;) {
      if (it->second.transmissions == 1) update_rtt(now - it->second.first_sent);
      it = in_flight_.erase(it);
    }
    last_cum_ack_ = cum_ack;
    dup_ack_count_ = 0;
    rto_backoff_ = 0;
  } else if (cum_ack == last_cum_ack_ && !in_flight_.empty()) {
    ++dup_ack_count_;
    ++stats_.dup_acks_seen;
    RDSIM_OBS_COUNT(obs::metric::kStreamDupAcks, 1);
    // Re-arm every three further duplicate ACKs so multiple losses within a
    // window still recover without waiting for the RTO (SACK-era TCP).
    if (config_.fast_retransmit && dup_ack_count_ % 3 == 0) {
      auto it = in_flight_.find(cum_ack);
      if (it != in_flight_.end()) {
        transmit_segment(it->second.segment, now, /*retransmission=*/true);
        ++stats_.retransmits_fast;
        RDSIM_OBS_COUNT(obs::metric::kStreamFastRetransmits, 1);
      }
    }
  }

  // SACK-based loss recovery: every in-flight segment below the highest
  // SACKed sequence that is not itself SACKed has very likely been lost —
  // retransmit a bounded number of them immediately instead of waiting for
  // serial RTOs (this is what keeps sustained-loss links usable).
  if (sack_count > 0 && config_.fast_retransmit) {
    const std::uint32_t max_sack = *std::max_element(sacks_begin, sacks_end);
    const util::Duration hold_off = current_rto() / 2;
    int budget = 4;
    for (auto& [seq, inflight] : in_flight_) {
      if (seq >= max_sack || budget == 0) break;
      if (std::find(sacks_begin, sacks_end, seq) != sacks_end) {
        // Keep SACKed segments from driving the RTO timer.
        inflight.last_sent = std::max(inflight.last_sent, now);
        continue;
      }
      if (now - inflight.last_sent < hold_off) continue;
      transmit_segment(inflight.segment, now, /*retransmission=*/true);
      ++stats_.retransmits_fast;
      RDSIM_OBS_COUNT(obs::metric::kStreamFastRetransmits, 1);
      --budget;
    }
  }
}

std::optional<DeliveredMessage> ReliableStream::pop_delivered() {
  if (delivered_.empty()) return std::nullopt;
  DeliveredMessage msg = std::move(delivered_.front());
  delivered_.pop_front();
  return msg;
}

}  // namespace rdsim::net
