// Fault-injection campaign driver.
//
// The paper's §V.F logs every injection as
//   { timestamp, fault type, value, added/deleted }
// and §V.C defines the fault model: {5, 25, 50} ms delay and {2, 5} % packet
// loss, injected at points of interest with a situation-dependent duration.
// The FaultInjector executes tc rule strings against a TrafficControl table
// at scheduled virtual times (or on demand) and keeps exactly that event log.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/tc.hpp"
#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace rdsim::net {

/// The fault classes of the paper's fault model, plus the ones that were
/// screened out in §V.C (corruption, duplication) so the screening experiment
/// itself can be reproduced.
enum class FaultKind : std::uint8_t {
  kNone,
  kDelay,
  kPacketLoss,
  kCorruption,
  kDuplication,
};

std::string to_string(FaultKind kind);

/// One injectable fault: a kind plus magnitude. Delay magnitudes are
/// durations; probabilities are fractions.
struct FaultSpec {
  FaultKind kind{FaultKind::kNone};
  double value{0.0};  ///< ms for delay, fraction for probabilistic faults

  /// The tc netem argument string for this fault ("delay 50ms", "loss 5%").
  std::string to_netem_args() const;
  NetemConfig to_config() const;

  /// Human-readable label used in the tables ("50ms", "5%").
  std::string label() const;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// The paper's five-point fault model (Table II columns).
std::vector<FaultSpec> paper_fault_model();

/// §V.F fault log record.
struct FaultEvent {
  util::TimePoint timestamp{};
  FaultSpec fault{};
  bool added{false};  ///< true = rule added, false = rule deleted
};

class FaultInjector {
 public:
  FaultInjector(TrafficControl& tc, std::string device);

  /// Install `fault` now; replaces any active fault (change semantics).
  void inject(const FaultSpec& fault, util::TimePoint now);

  /// Remove the active fault, reverting the device to the default pfifo.
  void remove(util::TimePoint now);

  bool active() const { return active_.has_value(); }
  std::optional<FaultSpec> active_fault() const { return active_; }

  /// Schedule an injection window [start, stop).
  void schedule(const FaultSpec& fault, util::TimePoint start, util::TimePoint stop);

  /// Apply any scheduled transitions due at `now`.
  void step(util::TimePoint now);

  const std::vector<FaultEvent>& log() const { return log_; }
  std::size_t injections() const { return injections_; }

 private:
  struct Window {
    FaultSpec fault;
    util::TimePoint start;
    util::TimePoint stop;
    bool started{false};
    bool finished{false};
  };

  TrafficControl* tc_;
  std::string device_;
  std::optional<FaultSpec> active_;
  std::vector<Window> schedule_;
  std::vector<FaultEvent> log_;
  std::size_t injections_{0};
#if RDSIM_OBS
  std::size_t window_span_{obs::kNoSpan};  ///< open fault-window trace span
#endif
};

}  // namespace rdsim::net
