// Unreliable datagram transport (UDP analogue).
//
// Used by the ablation benches: some remote-driving stacks ship video and
// commands over UDP/RTP where a lost packet means a lost frame rather than a
// head-of-line stall. One message = one packet; no retransmission, no
// ordering guarantee beyond what the link provides.
#pragma once

#include <deque>

#include "net/router.hpp"
#include "util/time.hpp"

namespace rdsim::net {

struct DatagramMessage {
  Payload bytes;
  std::uint32_t sequence{0};       ///< sender-assigned, for staleness checks
  util::TimePoint sent_at{};
  util::TimePoint delivered_at{};
};

class DatagramSocket {
 public:
  DatagramSocket(PacketRouter& router, Channel& channel, std::uint16_t stream_id,
                 LinkDirection send_direction);

  /// Fire-and-forget. Returns the datagram sequence number.
  std::uint32_t send(Payload bytes, std::uint32_t declared_wire_size, util::TimePoint now);

  /// Pop the next received datagram (delivery order = arrival order, which
  /// may be reordered or have gaps).
  std::optional<DatagramMessage> receive();

  /// Drop everything older than the newest received sequence and return the
  /// newest message, if any arrived since the last call. This is the
  /// latest-wins mode used for command channels.
  std::optional<DatagramMessage> receive_latest();

  std::uint64_t sent_count() const { return sent_; }
  std::uint64_t received_count() const { return received_; }
  std::uint64_t stale_discarded() const { return stale_; }

 private:
  void on_packet(const ProtocolHeader& header, ByteReader body, LinkDirection via,
                 util::TimePoint now);

  Channel* channel_;
  std::uint16_t stream_id_;
  LinkDirection send_dir_;
  std::uint32_t next_seq_{0};
  std::uint32_t newest_seen_{0};
  bool any_seen_{false};
  std::deque<DatagramMessage> inbox_;
  std::uint64_t sent_{0};
  std::uint64_t received_{0};
  std::uint64_t stale_{0};
};

}  // namespace rdsim::net
