#include "net/qdisc.hpp"

#include <sstream>

#include "check/contracts.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "util/time.hpp"

namespace rdsim::net {

std::string QdiscStats::summary() const {
  std::ostringstream os;
  os << "sent " << dequeued << " pkt (" << bytes_sent << " bytes)"
     << " dropped " << total_dropped() << " (loss " << dropped_loss << ", overlimit "
     << dropped_overlimit << ")"
     << " duplicated " << duplicated << " corrupted " << corrupted << " reordered "
     << reordered;
  return os.str();
}

std::vector<Packet> Qdisc::drain(util::TimePoint now) {
  std::vector<Packet> out;
  VectorSink sink{out};
  dequeue_ready(now, sink);
  return out;
}

std::string Qdisc::summary() const {
  std::ostringstream os;
  os << "qdisc " << kind() << ": " << stats().summary() << " backlog "
     << backlog_bytes() << "b " << backlog() << "p";
  return os.str();
}

void FifoQdisc::enqueue(Packet packet, util::TimePoint now) {
  ++stats_.enqueued;
  RDSIM_OBS_COUNT(obs::metric::kFifoEnqueued, 1);
  packet.enqueued_at = now;
  if (queue_.size() >= limit_) {
    ++stats_.dropped_overlimit;
    RDSIM_OBS_COUNT(obs::metric::kFifoDroppedOverlimit, 1);
    return;
  }
  backlog_bytes_ += packet.effective_wire_size();
  queue_.push_back(std::move(packet));
  RDSIM_OBS_GAUGE_SET(obs::metric::kFifoDepth, static_cast<double>(queue_.size()));
  RDSIM_ENSURE(queue_.size() <= limit_, "pfifo backlog must respect its limit");
}

void FifoQdisc::dequeue_ready(util::TimePoint /*now*/, PacketSink& sink) {
  if (queue_.empty()) return;
  [[maybe_unused]] const std::size_t n = queue_.size();
  for (Packet& p : queue_) {
    ++stats_.dequeued;
    stats_.bytes_sent += p.effective_wire_size();
    sink.accept(std::move(p));
  }
  queue_.clear();
  backlog_bytes_ = 0;
  RDSIM_OBS_COUNT(obs::metric::kFifoDequeued, n);
  RDSIM_OBS_GAUGE_SET(obs::metric::kFifoDepth, 0.0);
  RDSIM_INVARIANT(stats_.dequeued + stats_.dropped_overlimit <= stats_.enqueued,
                  "pfifo cannot emit or drop more packets than were enqueued");
}

std::optional<util::TimePoint> FifoQdisc::next_event_at() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().enqueued_at;
}

}  // namespace rdsim::net
