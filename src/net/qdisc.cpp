#include "net/qdisc.hpp"

#include <sstream>

#include "check/contracts.hpp"

namespace rdsim::net {

std::string QdiscStats::summary() const {
  std::ostringstream os;
  os << "sent " << dequeued << " pkt (" << bytes_sent << " bytes)"
     << " dropped " << total_dropped() << " (loss " << dropped_loss << ", overlimit "
     << dropped_overlimit << ")"
     << " duplicated " << duplicated << " corrupted " << corrupted << " reordered "
     << reordered;
  return os.str();
}

void FifoQdisc::enqueue(Packet packet, util::TimePoint now) {
  ++stats_.enqueued;
  packet.enqueued_at = now;
  if (queue_.size() >= limit_) {
    ++stats_.dropped_overlimit;
    return;
  }
  queue_.push_back(std::move(packet));
  RDSIM_ENSURE(queue_.size() <= limit_, "pfifo backlog must respect its limit");
}

std::vector<Packet> FifoQdisc::dequeue_ready(util::TimePoint /*now*/) {
  std::vector<Packet> out;
  out.swap(queue_);
  for (const auto& p : out) {
    ++stats_.dequeued;
    stats_.bytes_sent += p.effective_wire_size();
  }
  RDSIM_INVARIANT(stats_.dequeued + stats_.dropped_overlimit <= stats_.enqueued,
                  "pfifo cannot emit or drop more packets than were enqueued");
  return out;
}

std::optional<util::TimePoint> FifoQdisc::next_event() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().enqueued_at;
}

}  // namespace rdsim::net
