// Extended driving-performance metrics.
//
// §II.B of the paper surveys a catalogue of candidate metrics beyond TTC and
// SRR — Jahangirova et al.'s statistical measures, SAE J2944's lateral
// measures, steering entropy as a workload proxy — and §VII explicitly asks
// for more metrics in future work. This module implements the commonly used
// ones so the testbed can evaluate which metrics separate faulty from golden
// runs best:
//
//   SDLP              standard deviation of lane position (lateral control)
//   steering entropy  Nakayama et al.'s unpredictability-of-steering measure
//   brake reaction    delay from a lead's brake onset to the ego's brake
//   THW distribution  time-headway histogram vs the 2 s European rule
#pragma once

#include "metrics/ttc.hpp"
#include "sim/road.hpp"
#include "trace/trace.hpp"

namespace rdsim::metrics {

/// Standard deviation of lane position, computed by projecting the ego path
/// onto the road and measuring the offset from the *nearest lane centre*
/// (instructed lane changes would otherwise dominate the figure).
struct SdlpResult {
  std::size_t samples{0};
  units::Meters sdlp{};
  units::Meters mean_abs_offset{};
  bool valid() const { return samples >= 10; }
};
SdlpResult lane_position_deviation(const trace::RunTrace& run,
                                   const sim::RoadNetwork& road,
                                   units::Seconds start = units::Seconds{-1e300},
                                   units::Seconds stop = units::Seconds{1e300});

/// Steering entropy (Nakayama/Boer): how poorly a second-order predictor
/// anticipates the next steering sample, binned into a 9-bin histogram
/// around the prediction-error scale alpha. As in the original method,
/// alpha is calibrated on a *baseline* (golden) run and then held fixed
/// when scoring disturbed runs — that is what makes entropy rise under
/// workload. Pass `baseline_alpha` = 0 to self-calibrate (shape-only).
struct SteeringEntropyResult {
  double entropy{0.0};   ///< in [0, ~3.17] bits (log2 of 9 bins)
  double alpha{0.0};     ///< the alpha actually used, steer fraction
  std::size_t samples{0};
  bool valid() const { return samples >= 50; }
};
SteeringEntropyResult steering_entropy(const trace::RunTrace& run,
                                       double baseline_alpha = 0.0,
                                       units::Seconds start = units::Seconds{-1e300},
                                       units::Seconds stop = units::Seconds{1e300});

/// The 90th-percentile prediction error of a run — the alpha to feed into
/// steering_entropy() for its disturbed counterparts.
double steering_entropy_alpha(const trace::RunTrace& run,
                              units::Seconds start = units::Seconds{-1e300},
                              units::Seconds stop = units::Seconds{1e300});

/// Brake-reaction events: for every episode where a followed lead starts
/// braking hard (decel beyond `onset_decel`), the time until the ego's brake
/// pedal exceeds `pedal_threshold`.
struct BrakeReaction {
  units::Seconds lead_onset{};
  units::Seconds ego_response{};
  units::Seconds reaction{};
};
std::vector<BrakeReaction> brake_reactions(const trace::RunTrace& run,
                                           double onset_decel = 2.0,
                                           double pedal_threshold = 0.15,
                                           units::Seconds max_window = units::Seconds{4.0});

/// Time-headway histogram against the followed lead.
struct HeadwayDistribution {
  std::size_t samples{0};
  double below_1s{0.0};   ///< fractions
  double below_2s{0.0};
  units::Seconds median{};
  bool valid() const { return samples >= 10; }
};
HeadwayDistribution headway_distribution(const trace::RunTrace& run,
                                         const TtcConfig& config = {});

}  // namespace rdsim::metrics
