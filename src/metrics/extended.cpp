#include "metrics/extended.hpp"

#include "metrics/safety.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "sim/road.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace rdsim::metrics {

SdlpResult lane_position_deviation(const trace::RunTrace& run,
                                   const sim::RoadNetwork& road, units::Seconds start,
                                   units::Seconds stop) {
  util::RunningStats offsets;
  util::RunningStats abs_offsets;
  double hint = 0.0;
  for (const trace::EgoSample& e : run.ego) {
    if (e.t < start.value() || e.t >= stop.value()) continue;
    const auto proj = road.project({e.x, e.y}, hint);
    hint = proj.s;
    offsets.add(proj.lane_offset);
    abs_offsets.add(std::fabs(proj.lane_offset));
  }
  SdlpResult out;
  out.samples = offsets.count();
  if (out.samples > 1) {
    out.sdlp = units::Meters{offsets.stddev()};
    out.mean_abs_offset = units::Meters{abs_offsets.mean()};
  }
  return out;
}

namespace {

/// Second-order Taylor prediction errors of the steering signal.
std::vector<double> prediction_errors(const trace::RunTrace& run, units::Seconds start,
                                      units::Seconds stop) {
  std::vector<double> steer;
  for (const trace::EgoSample& e : run.ego) {
    if (e.t >= start.value() && e.t < stop.value()) steer.push_back(e.steer);
  }
  std::vector<double> errors;
  if (steer.size() < 10) return errors;
  errors.reserve(steer.size());
  for (std::size_t i = 3; i < steer.size(); ++i) {
    const double predicted =
        steer[i - 1] + (steer[i - 1] - steer[i - 2]) +
        0.5 * ((steer[i - 1] - steer[i - 2]) - (steer[i - 2] - steer[i - 3]));
    errors.push_back(steer[i] - predicted);
  }
  return errors;
}

}  // namespace

double steering_entropy_alpha(const trace::RunTrace& run, units::Seconds start,
                              units::Seconds stop) {
  const auto errors = prediction_errors(run, start, stop);
  std::vector<double> abs_errors;
  abs_errors.reserve(errors.size());
  for (double e : errors) abs_errors.push_back(std::fabs(e));
  return util::percentile(abs_errors, 90.0).value_or(0.0);
}

SteeringEntropyResult steering_entropy(const trace::RunTrace& run,
                                       double baseline_alpha, units::Seconds start,
                                       units::Seconds stop) {
  SteeringEntropyResult out;
  const auto errors = prediction_errors(run, start, stop);
  out.samples = errors.size();
  if (errors.size() < 50) return out;

  const double alpha = baseline_alpha > 0.0
                           ? baseline_alpha
                           : steering_entropy_alpha(run, start, stop);
  if (alpha <= 0.0) {
    // Perfectly predictable steering: zero entropy by definition.
    return out;
  }
  out.alpha = alpha;

  // Bin edges (in units of alpha): the classic 9-bin layout.
  const double edges[8] = {-5.0, -2.5, -1.0, -0.5, 0.5, 1.0, 2.5, 5.0};
  std::array<double, 9> bins{};
  for (double e : errors) {
    const double u = e / alpha;
    std::size_t b = 0;
    while (b < 8 && u >= edges[b]) ++b;
    bins[b] += 1.0;
  }
  double entropy = 0.0;
  const double n = static_cast<double>(errors.size());
  for (double count : bins) {
    if (count <= 0.0) continue;
    const double p = count / n;
    entropy -= p * std::log2(p);  // log base 2: entropy in bits
  }
  out.entropy = entropy;
  return out;
}

std::vector<BrakeReaction> brake_reactions(const trace::RunTrace& run,
                                           double onset_decel, double pedal_threshold,
                                           units::Seconds max_window) {
  // Detect lead braking onsets from the nearest other vehicle's speed series
  // (role "lead*" preferred), then look for the ego's pedal response.
  std::map<sim::ActorId, std::vector<const trace::OtherSample*>> by_actor;
  for (const trace::OtherSample& o : run.others) by_actor[o.actor].push_back(&o);

  std::vector<BrakeReaction> out;
  for (const auto& [actor, samples] : by_actor) {
    if (samples.size() < 5) continue;
    if (!samples.front()->role.empty() &&
        samples.front()->role.rfind("lead", 0) != 0 &&
        samples.front()->role.rfind("slow", 0) != 0) {
      continue;  // only followed vehicles generate braking-response episodes
    }
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const double dt = samples[i]->t - samples[i - 1]->t;
      if (dt <= 0.0) continue;
      const double v1 = std::hypot(samples[i - 1]->vx, samples[i - 1]->vy);
      const double v2 = std::hypot(samples[i]->vx, samples[i]->vy);
      const double decel = (v1 - v2) / dt;
      if (decel < onset_decel || v1 < 2.0) continue;
      if (samples[i]->distance > 60.0) continue;  // too far to matter
      const double onset_t = samples[i]->t;
      // Skip onsets that belong to the same braking episode.
      if (!out.empty() && onset_t - out.back().lead_onset.value() < 3.0) continue;
      // Find the ego's brake response.
      for (const trace::EgoSample& e : run.ego) {
        if (e.t < onset_t) continue;
        if (e.t > onset_t + max_window.value()) break;
        if (e.brake >= pedal_threshold) {
          out.push_back({units::Seconds{onset_t}, units::Seconds{e.t},
                         units::Seconds{e.t - onset_t}});
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const BrakeReaction& a, const BrakeReaction& b) {
    return a.lead_onset < b.lead_onset;
  });
  return out;
}

HeadwayDistribution headway_distribution(const trace::RunTrace& run,
                                         const TtcConfig& config) {
  const HeadwayStats base = analyze_headway(run, config);
  HeadwayDistribution out;
  out.samples = base.samples;
  if (!base.valid()) return out;

  // Re-derive the full headway series for percentiles (analyze_headway only
  // keeps aggregates); cheap enough at trace sizes.
  std::multimap<std::int64_t, const trace::OtherSample*> by_time;
  for (const trace::OtherSample& o : run.others) {
    by_time.emplace(static_cast<std::int64_t>(std::llround(o.t * 1e6)), &o);
  }
  std::vector<double> headways;
  std::size_t below1 = 0;
  std::size_t below2 = 0;
  for (const trace::EgoSample& e : run.ego) {
    const double speed = std::hypot(e.vx, e.vy);
    if (speed < 0.5) continue;
    const double hx = e.vx / speed;
    const double hy = e.vy / speed;
    const auto key = static_cast<std::int64_t>(std::llround(e.t * 1e6));
    const auto [lo, hi] = by_time.equal_range(key);
    std::optional<double> nearest;
    for (auto it = lo; it != hi; ++it) {
      const trace::OtherSample& o = *it->second;
      const double dx = o.x - e.x;
      const double dy = o.y - e.y;
      const double ahead = dx * hx + dy * hy;
      const double lateral = -dx * hy + dy * hx;
      if (ahead <= 0.0 || ahead > config.max_distance.value()) continue;
      if (std::fabs(lateral) > config.max_lateral.value()) continue;
      const double gap = std::max(ahead - config.length_correction.value(), 0.1);
      if (!nearest || gap < *nearest) nearest = gap;
    }
    if (nearest) {
      const double headway = *nearest / speed;
      headways.push_back(headway);
      if (headway < 1.0) ++below1;
      if (headway < 2.0) ++below2;
    }
  }
  out.samples = headways.size();
  if (headways.empty()) return out;
  out.below_1s = static_cast<double>(below1) / static_cast<double>(headways.size());
  out.below_2s = static_cast<double>(below2) / static_cast<double>(headways.size());
  out.median = units::Seconds{util::percentile(headways, 50.0).value_or(0.0)};
  return out;
}

}  // namespace rdsim::metrics
