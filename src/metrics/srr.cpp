#include "metrics/srr.hpp"

#include <algorithm>
#include <cmath>

#include "check/contracts.hpp"
#include "trace/trace.hpp"
#include "util/filters.hpp"

namespace rdsim::metrics {

SrrResult SrrAnalyzer::analyze(const trace::RunTrace& run) const {
  return analyze_series(run.time_series(), run.steering_series());
}

SrrResult SrrAnalyzer::analyze_window(const trace::RunTrace& run, units::Seconds start,
                                      units::Seconds stop) const {
  std::vector<double> t;
  std::vector<double> steer;
  for (const trace::EgoSample& s : run.ego) {
    if (s.t >= start.value() && s.t < stop.value()) {
      t.push_back(s.t);
      steer.push_back(s.steer);
    }
  }
  return analyze_series(t, steer);
}

SrrResult SrrAnalyzer::analyze_series(const std::vector<double>& t,
                                      const std::vector<double>& steer_fraction) const {
  SrrResult result;
  RDSIM_REQUIRE(t.size() == steer_fraction.size(),
                "SRR input: time and steering series must be the same length");
  if (t.size() < 3 || t.size() != steer_fraction.size()) return result;
  RDSIM_REQUIRE(std::is_sorted(t.begin(), t.end()),
                "SRR input: time series must be non-decreasing");
  result.duration = units::Seconds{t.back() - t.front()};
  if (result.duration < config_.min_duration) {
    // Too short to yield a meaningful rate; report zero but keep duration.
    return result;
  }
  const double dt = result.duration.value() / static_cast<double>(t.size() - 1);
  if (dt <= 0.0) return result;
  const double fs = 1.0 / dt;
  if (config_.cutoff_hz >= fs / 2.0) return result;

  // 1. Convert to wheel degrees and low-pass (zero phase so reversal timing
  //    is unbiased).
  std::vector<double> wheel(steer_fraction.size());
  for (std::size_t i = 0; i < wheel.size(); ++i) {
    wheel[i] = steer_fraction[i] * config_.wheel_range_deg;
  }
  util::ButterworthLowPass lp{config_.cutoff_hz, fs};
  const std::vector<double> smooth = lp.filtfilt(wheel);

  // 2. Stationary points: indices where the first difference changes sign
  //    (plateaus collapse to their last index).
  std::vector<std::size_t> stationary;
  stationary.push_back(0);
  int prev_sign = 0;
  for (std::size_t i = 1; i < smooth.size(); ++i) {
    const double d = smooth[i] - smooth[i - 1];
    const int sign = d > 0.0 ? 1 : (d < 0.0 ? -1 : 0);
    if (sign != 0 && prev_sign != 0 && sign != prev_sign) {
      stationary.push_back(i - 1);
    }
    if (sign != 0) prev_sign = sign;
  }
  stationary.push_back(smooth.size() - 1);

  // 3. Count reversals: walk the stationary values; each swing of at least
  //    threshold degrees whose direction opposes the previous counted swing
  //    is one reversal (J2944 "gap" criterion).
  std::size_t reversals = 0;
  double anchor = smooth[stationary.front()];
  int last_dir = 0;
  for (std::size_t k = 1; k < stationary.size(); ++k) {
    const double v = smooth[stationary[k]];
    const double swing = v - anchor;
    if (std::fabs(swing) >= config_.threshold_deg) {
      const int dir = swing > 0.0 ? 1 : -1;
      if (last_dir != 0 && dir != last_dir) ++reversals;
      last_dir = dir;
      anchor = v;
    }
  }

  result.reversals = reversals;
  result.rate_per_min = static_cast<double>(reversals) / (result.duration.value() / 60.0);
  return result;
}

}  // namespace rdsim::metrics
