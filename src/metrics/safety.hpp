// Collision analysis and the paper's "other metrics" (§VI.E): lane
// invasions, headway time, Time Exposed TTC (TET), and speed/acceleration
// statistics.
#pragma once

#include <map>
#include <string>

#include "metrics/ttc.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace rdsim::metrics {

/// Attribution of a collision to the fault that was active when it happened
/// ("only two types of faults led to crashes: 50 ms delay and 5 % loss").
struct AttributedCollision {
  trace::CollisionRecord record{};
  bool fault_active{false};
  std::string fault_type;   ///< empty if no fault active
  double fault_value{0.0};
  std::string fault_label;
};

struct CollisionAnalysis {
  std::size_t total{0};
  std::vector<AttributedCollision> collisions;

  bool any() const { return total > 0; }
  /// Count per fault label ("50ms", "5%", ...); key "none" = no fault active.
  std::map<std::string, std::size_t> by_fault_label() const;
};

CollisionAnalysis analyze_collisions(const trace::RunTrace& run);

/// Headway time: bumper gap / ego speed, same lead-selection rules as TTC.
struct HeadwayStats {
  std::size_t samples{0};
  units::Seconds min{};
  units::Seconds avg{};
  /// Fraction of samples below the European two-second rule (§II.B / [14]).
  double below_2s_fraction{0.0};
  bool valid() const { return samples > 0; }
};
HeadwayStats analyze_headway(const trace::RunTrace& run, const TtcConfig& config = {});

/// Time Exposed TTC: time spent with 0 < TTC < threshold.
units::Seconds time_exposed_ttc(const std::vector<TtcSample>& series,
                                units::Seconds threshold,
                                units::Seconds sample_interval);

/// Speed / acceleration / pedal statistics over a run or window.
struct DrivingStats {
  util::RunningStats speed;
  util::RunningStats accel_long;
  util::RunningStats throttle;
  util::RunningStats brake;
  std::size_t brake_applications{0};  ///< rising edges of the brake pedal
  std::size_t lane_invasions{0};
  std::size_t solid_line_invasions{0};
};
DrivingStats analyze_driving(const trace::RunTrace& run,
                             units::Seconds start = units::Seconds{-1e300},
                             units::Seconds stop = units::Seconds{1e300});

/// Duration the ego needed to traverse [dist_from, dist_to] along its own
/// path — used for the Fig. 4 observation that manoeuvres take longer under
/// faults. Returns nullopt if the run never covers the interval. Positions
/// are measured as cumulative travelled distance.
std::optional<units::Seconds> traversal_time(const trace::RunTrace& run,
                                             units::Meters dist_from,
                                             units::Meters dist_to);

/// Total time the ego spent at or below `threshold` speed, excluding the
/// initial standstill before it first moves off. Quantifies what an MRM
/// costs: an unmitigated run rolls through an outage, a mitigated run parks
/// until the link returns. Sampled at the trace's log rate.
units::Seconds standstill_time(const trace::RunTrace& run,
                               units::MetersPerSecond threshold =
                                   units::MetersPerSecond{0.3});

}  // namespace rdsim::metrics
