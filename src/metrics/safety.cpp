#include "metrics/safety.hpp"

#include <cmath>

#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace rdsim::metrics {

std::map<std::string, std::size_t> CollisionAnalysis::by_fault_label() const {
  std::map<std::string, std::size_t> out;
  for (const AttributedCollision& c : collisions) {
    out[c.fault_active ? c.fault_label : std::string{"none"}]++;
  }
  return out;
}

CollisionAnalysis analyze_collisions(const trace::RunTrace& run) {
  CollisionAnalysis out;
  const auto windows = run.fault_windows();
  for (const trace::CollisionRecord& rec : run.collisions) {
    AttributedCollision ac;
    ac.record = rec;
    for (const auto& w : windows) {
      // A crash shortly after a fault window is still attributed to it: the
      // disturbance's effect (bad position, speed) outlives the rule.
      if (rec.t >= w.start && rec.t < w.stop + 2.0) {
        ac.fault_active = true;
        ac.fault_type = w.fault_type;
        ac.fault_value = w.value;
        ac.fault_label = w.label;
      }
    }
    out.collisions.push_back(std::move(ac));
  }
  out.total = out.collisions.size();
  return out;
}

HeadwayStats analyze_headway(const trace::RunTrace& run, const TtcConfig& config) {
  // Reuse the TTC lead-pairing logic but divide gap by ego speed.
  std::multimap<std::int64_t, const trace::OtherSample*> by_time;
  for (const trace::OtherSample& o : run.others) {
    by_time.emplace(static_cast<std::int64_t>(std::llround(o.t * 1e6)), &o);
  }
  util::RunningStats stats;
  std::size_t below = 0;
  for (const trace::EgoSample& e : run.ego) {
    const double ego_speed = std::hypot(e.vx, e.vy);
    if (ego_speed < 0.5) continue;
    const double hx = e.vx / ego_speed;
    const double hy = e.vy / ego_speed;
    const auto key = static_cast<std::int64_t>(std::llround(e.t * 1e6));
    const auto [lo, hi] = by_time.equal_range(key);
    std::optional<double> nearest_gap;
    for (auto it = lo; it != hi; ++it) {
      const trace::OtherSample& o = *it->second;
      const double dx = o.x - e.x;
      const double dy = o.y - e.y;
      const double ahead = dx * hx + dy * hy;
      const double lateral = -dx * hy + dy * hx;
      if (ahead <= 0.0 || ahead > config.max_distance.value()) continue;
      if (std::fabs(lateral) > config.max_lateral.value()) continue;
      const double gap = std::max(ahead - config.length_correction.value(), 0.1);
      if (!nearest_gap || gap < *nearest_gap) nearest_gap = gap;
    }
    if (nearest_gap) {
      const double headway = *nearest_gap / ego_speed;
      stats.add(headway);
      if (headway < 2.0) ++below;
    }
  }
  HeadwayStats out;
  out.samples = stats.count();
  if (!stats.empty()) {
    out.min = units::Seconds{stats.min()};
    out.avg = units::Seconds{stats.mean()};
    out.below_2s_fraction = static_cast<double>(below) / static_cast<double>(out.samples);
  }
  return out;
}

units::Seconds time_exposed_ttc(const std::vector<TtcSample>& series,
                                units::Seconds threshold,
                                units::Seconds sample_interval) {
  units::Seconds tet{};
  for (const TtcSample& s : series) {
    if (s.ttc > units::Seconds{} && s.ttc < threshold) tet += sample_interval;
  }
  return tet;
}

DrivingStats analyze_driving(const trace::RunTrace& run, units::Seconds start,
                             units::Seconds stop) {
  DrivingStats out;
  bool braking = false;
  const trace::EgoSample* prev = nullptr;
  for (const trace::EgoSample& e : run.ego) {
    if (e.t < start.value() || e.t >= stop.value()) continue;
    const double speed = std::hypot(e.vx, e.vy);
    out.speed.add(speed);
    if (prev != nullptr && speed > 0.1) {
      // Longitudinal acceleration projected on the direction of travel.
      const double along = (e.ax * e.vx + e.ay * e.vy) / speed;
      out.accel_long.add(along);
    }
    out.throttle.add(e.throttle);
    out.brake.add(e.brake);
    const bool now_braking = e.brake > 0.1;
    if (now_braking && !braking) ++out.brake_applications;
    braking = now_braking;
    prev = &e;
  }
  for (const trace::LaneInvasionRecord& l : run.lane_invasions) {
    if (l.t < start.value() || l.t >= stop.value()) continue;
    ++out.lane_invasions;
    if (l.marking == "solid") ++out.solid_line_invasions;
  }
  return out;
}

std::optional<units::Seconds> traversal_time(const trace::RunTrace& run,
                                             units::Meters dist_from,
                                             units::Meters dist_to) {
  if (run.ego.size() < 2 || dist_to <= dist_from) return std::nullopt;
  double travelled = 0.0;
  std::optional<double> t_enter;
  for (std::size_t i = 1; i < run.ego.size(); ++i) {
    const auto& a = run.ego[i - 1];
    const auto& b = run.ego[i];
    travelled += std::hypot(b.x - a.x, b.y - a.y);
    if (!t_enter && travelled >= dist_from.value()) t_enter = b.t;
    if (travelled >= dist_to.value()) {
      return units::Seconds{b.t - t_enter.value_or(run.ego.front().t)};
    }
  }
  return std::nullopt;
}

units::Seconds standstill_time(const trace::RunTrace& run,
                               units::MetersPerSecond threshold) {
  double total = 0.0;
  bool moved_off = false;
  for (std::size_t i = 1; i < run.ego.size(); ++i) {
    const auto& a = run.ego[i - 1];
    const auto& b = run.ego[i];
    const double speed = std::hypot(a.vx, a.vy);
    if (speed > threshold.value()) moved_off = true;
    // Interval [a, b] counts as stopped when it starts at/below threshold.
    if (moved_off && speed <= threshold.value()) total += b.t - a.t;
  }
  return units::Seconds{total};
}

}  // namespace rdsim::metrics
