// Steering Reversal Rate (SRR), the paper's lateral safety metric (§V.G.2).
//
// Implements the SAE J2944 algorithm the paper cites: low-pass filter the
// steering-wheel angle, locate the stationary points of the filtered signal,
// and count a reversal whenever the wheel swings by more than a threshold
// angle in one direction and then back within the observation window. The
// rate is reported in reversals per minute. Higher SRR indicates a
// distracted or disturbed driver (§VI.D).
#pragma once

#include <vector>

#include "trace/trace.hpp"
#include "util/units.hpp"

namespace rdsim::metrics {

struct SrrConfig {
  double cutoff_hz{0.6};          ///< low-pass cutoff (Markkula & Engström)
  double threshold_deg{3.0};      ///< minimum swing to count as a reversal
  double wheel_range_deg{450.0};  ///< steering value 1.0 = this many degrees
                                  ///< (Logitech G27: 900 degrees lock-to-lock)
  units::Seconds min_duration{5.0};  ///< shorter windows yield no rate
};

struct SrrResult {
  std::size_t reversals{0};
  units::Seconds duration{};
  double rate_per_min{0.0};
  bool valid() const { return duration.value() >= 1e-9; }
};

class SrrAnalyzer {
 public:
  explicit SrrAnalyzer(SrrConfig config = {}) : config_{config} {}

  /// SRR over the whole run.
  SrrResult analyze(const trace::RunTrace& run) const;

  /// SRR over the [start, stop) window of the run.
  SrrResult analyze_window(const trace::RunTrace& run, units::Seconds start,
                           units::Seconds stop) const;

  /// Core algorithm on a raw (time, steering-fraction) series sampled at a
  /// fixed rate. Exposed for tests and for externally recorded data.
  SrrResult analyze_series(const std::vector<double>& t,
                           const std::vector<double>& steer_fraction) const;

  const SrrConfig& config() const { return config_; }

 private:
  SrrConfig config_;
};

}  // namespace rdsim::metrics
