// Time-To-Collision (TTC), the paper's longitudinal safety metric (§V.G.1).
//
//   TTC = (X_L - X_F) / (v_F - v_L)
//
// computed against the lead vehicle while following, and only for samples
// where the relative distance is <= 100 m (§VI.C: at the study's low speeds,
// larger distances always produce a large TTC). A TTC in (0, threshold) is a
// violation; the paper uses threshold = 6 s after Vogel [13].
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace rdsim::metrics {

struct TtcConfig {
  units::Meters max_distance{100.0};  ///< ignore leads farther than this
  units::Meters max_lateral{1.9};     ///< lead must be in the ego's lane corridor
  units::MetersPerSecond min_closing_speed{1.0};  ///< below this the pair is not
                                                  ///< meaningfully closing and
                                                  ///< TTC is undefined
  units::Seconds violation_threshold{6.0};
  /// Bumper-to-bumper correction subtracted from the centre distance.
  units::Meters length_correction{4.6};
};

/// One TTC sample.
struct TtcSample {
  units::Seconds t{};
  units::Seconds ttc{};
  units::Meters distance{};
  sim::ActorId lead{sim::kInvalidActor};
};

/// Summary statistics over a set of samples (one Table III cell group).
struct TtcStats {
  std::size_t samples{0};
  units::Seconds min{};
  units::Seconds avg{};
  units::Seconds max{};
  std::size_t violations{0};  ///< samples with 0 < TTC < threshold
  bool valid() const { return samples > 0; }
};

/// Computes the TTC series for a run. Lead candidates are other samples of
/// kind vehicle that lie ahead of the ego along its heading within the
/// lateral corridor; the nearest qualifying one is the lead.
class TtcAnalyzer {
 public:
  explicit TtcAnalyzer(TtcConfig config = {}) : config_{config} {}

  std::vector<TtcSample> series(const trace::RunTrace& run) const;

  /// Stats over the full run.
  TtcStats summarize(const std::vector<TtcSample>& series) const;

  /// Stats restricted to [start, stop).
  TtcStats summarize_window(const std::vector<TtcSample>& series, units::Seconds start,
                            units::Seconds stop) const;

  const TtcConfig& config() const { return config_; }

 private:
  TtcConfig config_;
};

}  // namespace rdsim::metrics
