#include "metrics/ttc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "check/contracts.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace rdsim::metrics {

std::vector<TtcSample> TtcAnalyzer::series(const trace::RunTrace& run) const {
  // Group the other-vehicle samples by timestamp for pairing with ego rows.
  // Trace rows are emitted together per logging tick, so exact-time grouping
  // is reliable; we key by rounded microseconds to be safe against FP noise.
  std::multimap<std::int64_t, const trace::OtherSample*> by_time;
  for (const trace::OtherSample& o : run.others) {
    by_time.emplace(static_cast<std::int64_t>(std::llround(o.t * 1e6)), &o);
  }

  std::vector<TtcSample> out;
  double prev_t = -std::numeric_limits<double>::infinity();
  for (const trace::EgoSample& e : run.ego) {
    RDSIM_REQUIRE(e.t >= prev_t, "TTC input: ego samples must be time-ordered");
    prev_t = e.t;
    const auto key = static_cast<std::int64_t>(std::llround(e.t * 1e6));
    const auto [lo, hi] = by_time.equal_range(key);
    const double ego_speed = std::hypot(e.vx, e.vy);
    if (ego_speed < 1e-3) continue;
    const double hx = e.vx / ego_speed;
    const double hy = e.vy / ego_speed;

    std::optional<TtcSample> best;
    for (auto it = lo; it != hi; ++it) {
      const trace::OtherSample& o = *it->second;
      const double dx = o.x - e.x;
      const double dy = o.y - e.y;
      const double ahead = dx * hx + dy * hy;           // longitudinal gap
      const double lateral = -dx * hy + dy * hx;        // lateral offset
      if (ahead <= 0.0 || ahead > config_.max_distance.value()) continue;
      if (std::fabs(lateral) > config_.max_lateral.value()) continue;
      const double lead_speed_along = o.vx * hx + o.vy * hy;
      const double closing = ego_speed - lead_speed_along;
      if (closing < config_.min_closing_speed.value()) continue;
      const double gap = std::max(ahead - config_.length_correction.value(), 0.1);
      const double ttc = gap / closing;
      RDSIM_ENSURE(std::isfinite(ttc) && ttc > 0.0,
                   "TTC samples must be finite and positive");
      if (!best || ahead < best->distance.value()) {
        best = TtcSample{units::Seconds{e.t}, units::Seconds{ttc},
                         units::Meters{ahead}, o.actor};
      }
    }
    if (best) out.push_back(*best);
  }
  return out;
}

TtcStats TtcAnalyzer::summarize(const std::vector<TtcSample>& series) const {
  return summarize_window(series,
                          units::Seconds{-std::numeric_limits<double>::infinity()},
                          units::Seconds{std::numeric_limits<double>::infinity()});
}

TtcStats TtcAnalyzer::summarize_window(const std::vector<TtcSample>& series,
                                       units::Seconds start, units::Seconds stop) const {
  util::RunningStats stats;
  std::size_t violations = 0;
  for (const TtcSample& s : series) {
    if (s.t < start || s.t >= stop) continue;
    stats.add(s.ttc.value());
    if (s.ttc > units::Seconds{} && s.ttc < config_.violation_threshold) ++violations;
  }
  TtcStats out;
  out.samples = stats.count();
  if (!stats.empty()) {
    out.min = units::Seconds{stats.min()};
    out.avg = units::Seconds{stats.mean()};
    out.max = units::Seconds{stats.max()};
  }
  out.violations = violations;
  return out;
}

}  // namespace rdsim::metrics
