#include "util/csv.hpp"

#include <cmath>
#include <charconv>
#include <cstdio>

namespace rdsim::util {

namespace {

bool needs_quoting(std::string_view v) {
  return v.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quoted(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  for (char c : v) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void CsvWriter::write_cell(std::string_view v) {
  if (row_started_) *out_ << ',';
  if (needs_quoting(v)) {
    *out_ << quoted(v);
  } else {
    *out_ << v;
  }
  row_started_ = true;
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  for (const auto& c : columns) write_cell(c);
  end_row();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) write_cell(c);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view v) {
  write_cell(v);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  write_cell(format_number(v));
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  write_cell(std::to_string(v));
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_started_ = false;
  ++rows_;
}

CsvTable CsvTable::parse(std::string_view text) {
  CsvTable table;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool first_row = true;
  bool row_has_data = false;

  auto flush_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto flush_row = [&] {
    flush_cell();
    if (first_row) {
      table.header_ = std::move(row);
      first_row = false;
    } else {
      table.rows_.push_back(std::move(row));
    }
    row.clear();
    row_has_data = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
        row_has_data = true;
      }
    } else if (c == '"') {
      in_quotes = true;
      row_has_data = true;
    } else if (c == ',') {
      flush_cell();
      row_has_data = true;
    } else if (c == '\n') {
      if (row_has_data || !cell.empty() || !row.empty()) flush_row();
    } else if (c != '\r') {
      cell.push_back(c);
      row_has_data = true;
    }
  }
  if (row_has_data || !cell.empty() || !row.empty()) flush_row();
  return table;
}

int CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

double CsvTable::number(std::size_t row_idx, int col) const {
  if (col < 0 || row_idx >= rows_.size()) return 0.0;
  const auto& r = rows_[row_idx];
  const auto c = static_cast<std::size_t>(col);
  if (c >= r.size()) return 0.0;
  double out = 0.0;
  const auto& s = r[c];
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  if (res.ec != std::errc{}) return 0.0;
  return out;
}

std::string format_number(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == static_cast<std::int64_t>(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  std::string s{buf};
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace rdsim::util
