// Clang thread-safety annotations and the annotated lock types built on them.
//
// Clang's -Wthread-safety analysis (enabled by the `thread-safety` CMake
// preset) proves at compile time that every access to a RDSIM_GUARDED_BY
// member happens with its mutex held — but it can only reason about lock
// types that carry capability attributes, and libstdc++'s std::mutex carries
// none. So the repo routes every lock through two thin wrappers defined here:
//
//   util::Mutex      a std::mutex with RDSIM_CAPABILITY, lock()/unlock()
//                    annotated as acquire/release
//   util::MutexLock  the RAII guard (RDSIM_SCOPED_CAPABILITY). It is also
//                    BasicLockable, so std::condition_variable_any can wait
//                    on it directly — waits stay inside the annotated scope.
//
// Everything compiles to exactly the std:: equivalents on non-clang
// compilers (the macros expand to nothing). The threads lint (raw-mutex
// rule) keeps unannotated std:: primitives from creeping back into src/.
//
// This header is deliberately dependency-free (layer rank 0, see
// tools/rdsim_lint/rules/layering.py) so even the check-core contract layer
// can use the annotated types.
#pragma once

#include <mutex>

#if defined(__clang__)
#define RDSIM_THREAD_ATTR(x) __attribute__((x))
#else
#define RDSIM_THREAD_ATTR(x)
#endif

/// A type that acts as a lock: std::mutex-shaped wrappers.
#define RDSIM_CAPABILITY(x) RDSIM_THREAD_ATTR(capability(x))
/// A RAII type whose lifetime equals a critical section.
#define RDSIM_SCOPED_CAPABILITY RDSIM_THREAD_ATTR(scoped_lockable)
/// Data member readable/writable only with `x` held.
#define RDSIM_GUARDED_BY(x) RDSIM_THREAD_ATTR(guarded_by(x))
/// Pointee guarded by `x` (the pointer itself is not).
#define RDSIM_PT_GUARDED_BY(x) RDSIM_THREAD_ATTR(pt_guarded_by(x))
/// Function that must be called with the capability held.
#define RDSIM_REQUIRES(...) RDSIM_THREAD_ATTR(requires_capability(__VA_ARGS__))
/// Function that acquires the capability and holds it on return.
#define RDSIM_ACQUIRE(...) RDSIM_THREAD_ATTR(acquire_capability(__VA_ARGS__))
/// Function that releases a held capability.
#define RDSIM_RELEASE(...) RDSIM_THREAD_ATTR(release_capability(__VA_ARGS__))
/// Function that must NOT be called with the capability held (deadlock guard).
#define RDSIM_EXCLUDES(...) RDSIM_THREAD_ATTR(locks_excluded(__VA_ARGS__))
/// Returns a reference to the given capability.
#define RDSIM_RETURN_CAPABILITY(x) RDSIM_THREAD_ATTR(lock_returned(x))
/// Escape hatch: the function's locking is checked by other means. Every use
/// must document why (e.g. a read-after-join contract).
#define RDSIM_NO_THREAD_SAFETY_ANALYSIS \
  RDSIM_THREAD_ATTR(no_thread_safety_analysis)

namespace rdsim::util {

/// std::mutex with capability annotations. Same cost, same semantics.
class RDSIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RDSIM_ACQUIRE() { mu_.lock(); }
  void unlock() RDSIM_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over util::Mutex; the annotated std::lock_guard equivalent.
///
/// lock()/unlock() make it BasicLockable so a std::condition_variable_any
/// can wait on the guard itself; user code should not call them directly
/// (the wait re-acquires before returning, so the destructor's release
/// is always balanced).
class RDSIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RDSIM_ACQUIRE(mu) : mu_{mu} { mu_.lock(); }
  ~MutexLock() RDSIM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() RDSIM_ACQUIRE() { mu_.lock(); }
  void unlock() RDSIM_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace rdsim::util
