// Fixed-capacity ring buffer used by delay lines and network queues.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rdsim::util {

/// Bounded FIFO. push() on a full buffer drops the oldest element (tail-drop
/// variants are implemented at the qdisc layer, which checks full() first).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity > 0 ? capacity : 1) {}

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// Append; if full, overwrites (drops) the oldest element.
  void push(T value) {
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    if (full()) {
      head_ = (head_ + 1) % buf_.size();
    } else {
      ++size_;
    }
  }

  T& front() {
    if (empty()) throw std::out_of_range{"RingBuffer::front on empty buffer"};
    return buf_[head_];
  }
  const T& front() const {
    if (empty()) throw std::out_of_range{"RingBuffer::front on empty buffer"};
    return buf_[head_];
  }

  T pop() {
    if (empty()) throw std::out_of_range{"RingBuffer::pop on empty buffer"};
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return out;
  }

  /// Element i positions from the front (0 == oldest).
  const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range{"RingBuffer::at"};
    return buf_[(head_ + i) % buf_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace rdsim::util
