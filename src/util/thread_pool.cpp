#include "util/thread_pool.hpp"

#include <algorithm>

#include "check/contracts.hpp"

namespace rdsim::util {

ThreadPool::ThreadPool(std::size_t n_workers) {
  if (n_workers == 0) {
    n_workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock{mutex_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged{std::move(task)};
  std::future<void> future = packaged.get_future();
  {
    const MutexLock lock{mutex_};
    RDSIM_REQUIRE(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&body, i] { body(i); }));
  }
  // Wait for everything first: `body` is borrowed from the caller, so no
  // task may outlive this frame even when an early index throws.
  for (std::future<void>& f : futures) f.wait();
  std::exception_ptr first{};
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock{mutex_};
      // Hand-rolled wait loop (not the predicate overload): the predicate
      // would run inside std::condition_variable_any, outside the scope the
      // analysis can see, and every read of stopping_/queue_ would warn.
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace rdsim::util
