// Deterministic random number generation.
//
// Experiments must be reproducible across platforms, so we ship our own PCG32
// generator (O'Neill's pcg_oneseq_64_xsh_rr_32) and distribution helpers
// instead of relying on implementation-defined std::distribution behaviour.
#pragma once

#include <cstdint>
#include <vector>

namespace rdsim::util {

/// SplitMix64 output mix (Steele, Lea & Flood): one application maps a
/// counter-like input to a statistically independent 64-bit value. Used to
/// derive per-subject / per-run sub-seeds from one campaign seed, so every
/// RNG stream in a campaign is a pure function of (campaign seed, purpose) —
/// no shared-generator sequencing, hence order-independent and safe to
/// evaluate from any thread.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// PCG32: small, fast, statistically solid 32-bit generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()() { return next_u32(); }
  std::uint32_t next_u32();

  /// Unbiased integer in [0, bound) via Lemire rejection.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fork a statistically independent generator (distinct stream), e.g. one
  /// per test subject. Deterministic given the parent's current state.
  Pcg32 fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Distribution helpers over Pcg32. Stateless unless noted.
class Random {
 public:
  explicit Random(std::uint64_t seed, std::uint64_t stream = 1) : rng_{seed, stream} {}
  explicit Random(Pcg32 rng) : rng_{rng} {}

  double uniform() { return rng_.next_double(); }
  double uniform(double lo, double hi) { return lo + (hi - lo) * rng_.next_double(); }
  /// Integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  bool bernoulli(double p) { return rng_.next_double() < p; }
  /// Standard normal via Marsaglia polar method (cached second deviate).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  double exponential(double rate);
  /// Index drawn proportionally to non-negative weights; empty/zero-sum
  /// weights yield index 0.
  std::size_t weighted_index(const std::vector<double>& weights);
  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[rng_.next_below(static_cast<std::uint32_t>(i))]);
    }
  }

  Random fork() { return Random{rng_.fork()}; }
  Pcg32& engine() { return rng_; }

 private:
  Pcg32 rng_;
  bool has_spare_{false};
  double spare_{0.0};
};

}  // namespace rdsim::util
