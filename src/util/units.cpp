#include "util/units.hpp"

#include "check/contracts.hpp"

namespace rdsim::units {

Probability::Probability(double p) : v_{p} {
  RDSIM_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0, 1]");
  // Under non-throwing contract policies keep the invariant anyway.
  if (v_ < 0.0) v_ = 0.0;
  if (v_ > 1.0) v_ = 1.0;
}

}  // namespace rdsim::units
