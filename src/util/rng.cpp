#include "util/rng.hpp"

#include <cmath>

namespace rdsim::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) : state_{0}, inc_{(stream << 1u) | 1u} {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = static_cast<std::uint32_t>(-bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>(next_u32()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32u);
}

double Pcg32::next_double() {
  // 32 random bits scaled to [0,1): plenty of resolution for our purposes.
  return next_u32() * 0x1.0p-32;
}

Pcg32 Pcg32::fork() {
  const std::uint64_t seed = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  const std::uint64_t stream = (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Pcg32{seed, stream};
}

int Random::uniform_int(int lo, int hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint32_t>(hi - lo + 1);
  return lo + static_cast<int>(rng_.next_below(span));
}

double Random::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * rng_.next_double() - 1.0;
    v = 2.0 * rng_.next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Random::exponential(double rate) {
  if (rate <= 0.0) return 0.0;
  double u = rng_.next_double();
  if (u <= 0.0) u = 1e-12;
  return -std::log(u) / rate;
}

std::size_t Random::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0 || weights.empty()) return 0;
  double r = rng_.next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace rdsim::util
