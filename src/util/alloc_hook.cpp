#include "util/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: gates read the counter from the same thread that
// allocates, and cross-thread visibility is provided by the joins/barriers
// of whatever concurrency primitive handed the work over.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_deallocs.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace rdsim::util {

std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t dealloc_count() { return g_deallocs.load(std::memory_order_relaxed); }

}  // namespace rdsim::util

// Replace the global allocation functions. Sized and aligned variants all
// funnel through the two counted primitives; alignment requests beyond the
// default are satisfied with aligned_alloc on a rounded-up size.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return operator new(size, al);
}

// Nothrow forms must be replaced alongside the throwing ones: libstdc++'s
// std::get_temporary_buffer (used by stable_sort) allocates with
// new(nothrow) and frees through plain operator delete, and a half-replaced
// family trips ASan's alloc-dealloc-mismatch check.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t al, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded ? rounded : a);
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t& tag) noexcept {
  return operator new(size, al, tag);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
