// Time-indexed delay line.
//
// Models signals that are observed only after a latency — the operator's
// reaction time, display latency, and input-device latency in the remote
// station. Values are timestamped on push; read(t) returns the newest value
// whose timestamp is <= t - delay.
#pragma once

#include <deque>
#include <optional>

#include "util/time.hpp"

namespace rdsim::util {

template <typename T>
class DelayLine {
 public:
  explicit DelayLine(Duration delay) : delay_{delay} {}

  Duration delay() const { return delay_; }
  void set_delay(Duration delay) { delay_ = delay; }

  /// Record `value` as produced at time `t`. Timestamps must be monotone.
  void push(TimePoint t, T value) { entries_.push_back({t, std::move(value)}); }

  /// Newest value visible at time `now` (produced at or before now - delay).
  /// Consumed entries older than the visible one are discarded.
  std::optional<T> read(TimePoint now) {
    const TimePoint visible_until = now - delay_;
    std::optional<T> result;
    while (!entries_.empty() && entries_.front().t <= visible_until) {
      result = std::move(entries_.front().value);
      entries_.pop_front();
    }
    if (result) last_ = result;
    return last_;
  }

  void clear() {
    entries_.clear();
    last_.reset();
  }

  std::size_t pending() const { return entries_.size(); }

 private:
  struct Entry {
    TimePoint t;
    T value;
  };

  Duration delay_;
  std::deque<Entry> entries_;
  std::optional<T> last_;
};

}  // namespace rdsim::util
